// Fuzz target: the transport frame parser — the first code hostile bytes from a
// socket ever touch. Any input must produce ok-or-error, never a crash.
#include "fuzz/driver.h"
#include "src/wire/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ibus::Bytes input(data, data + size);
  (void)ibus::ParseFrame(input);
  return 0;
}
