// Fuzz target: the Message envelope decoder — every payload that survives
// framing lands here, so it must reject arbitrary bytes without crashing.
#include "fuzz/driver.h"
#include "src/bus/message.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ibus::Bytes input(data, data + size);
  (void)ibus::Message::Unmarshal(input);
  return 0;
}
