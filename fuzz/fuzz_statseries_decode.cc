// Fuzz target: the busstat keyframe/delta sample decoder — the most stateful
// codec on the bus (dictionary carry-over between samples). A fresh decoder per
// input keeps runs independent; a second pass feeds a keyframe first so the
// delta path (which needs prior dictionary state) gets fuzzed too.
#include "fuzz/driver.h"
#include "src/telemetry/busstat.h"
#include "src/telemetry/metrics.h"

namespace {

ibus::Bytes ValidKeyframe() {
  ibus::telemetry::MetricsRegistry registry;
  registry.GetCounter("bus.publishes")->Inc(3);
  ibus::telemetry::StatSeriesEncoder enc("fuzz-node", 4);
  return enc.EncodeSample(registry, nullptr, nullptr, 100, 1);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ibus::Bytes input(data, data + size);
  {
    ibus::telemetry::StatSeriesDecoder dec;
    (void)dec.DecodeSample(input);
  }
  {
    static const ibus::Bytes keyframe = ValidKeyframe();
    ibus::telemetry::StatSeriesDecoder dec;
    (void)dec.DecodeSample(keyframe);
    (void)dec.DecodeSample(input);
  }
  return 0;
}
