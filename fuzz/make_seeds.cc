// Regenerates the committed seed corpus under fuzz/corpus/. Run after a
// deliberate wire-format change (alongside `wirecheck --update`):
//
//   ./build/fuzz/fuzz_make_seeds fuzz/corpus
//
// Seeds are valid encodings — libFuzzer mutates from there, and the fallback
// driver derives prefixes and byte-flips from them.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/bus/message.h"
#include "src/telemetry/busstat.h"
#include "src/wire/wire.h"
#include "src/telemetry/metrics.h"

namespace {

void WriteSeed(const std::filesystem::path& dir, const std::string& name,
               const ibus::Bytes& bytes) {
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("  %s/%s (%zu bytes)\n", dir.string().c_str(), name.c_str(),
              bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root = argv[1];

  WriteSeed(root / "parse_frame", "frame_small",
            ibus::FrameMessage(5, {1, 2, 3}));
  WriteSeed(root / "parse_frame", "frame_empty", ibus::FrameMessage(7, {}));

  {
    ibus::Message m;
    m.subject = "market.equity.ibm";
    m.type_name = "quote";
    m.sender = "client-7";
    m.payload = {9, 8, 7, 6};
    WriteSeed(root / "message_unmarshal", "message_quote", m.Marshal());
  }
  {
    ibus::Message m;
    m.subject = "a";
    WriteSeed(root / "message_unmarshal", "message_minimal", m.Marshal());
  }

  {
    ibus::telemetry::MetricsRegistry registry;
    registry.GetCounter("bus.publishes")->Inc(3);
    registry.GetCounter("bus.deliveries")->Inc(7);
    ibus::telemetry::StatSeriesEncoder enc("seed-node", 2);
    WriteSeed(root / "statseries_decode", "sample_keyframe",
              enc.EncodeSample(registry, nullptr, nullptr, 100, 1));
    registry.GetCounter("bus.publishes")->Inc(1);
    WriteSeed(root / "statseries_decode", "sample_delta",
              enc.EncodeSample(registry, nullptr, nullptr, 200, 2));
  }
  return 0;
}
