// Entry-point shim for the fuzz harnesses. Under clang with -fsanitize=fuzzer
// the libFuzzer runtime provides main() and drives LLVMFuzzerTestOneInput with
// coverage-guided inputs. On toolchains without libFuzzer (the stock GCC image)
// the fallback main() below replays every corpus file passed on the command
// line — plus every strict prefix and a byte-flipped mutant at every position —
// so `IB_FUZZ=ON scripts/check.sh` still exercises the decoders deterministically.
#ifndef IBUS_FUZZ_DRIVER_H_
#define IBUS_FUZZ_DRIVER_H_

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#ifndef IB_HAVE_LIBFUZZER
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace ibus_fuzz {

inline std::vector<uint8_t> ReadAll(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

inline void Exercise(const std::vector<uint8_t>& seed) {
  LLVMFuzzerTestOneInput(seed.data(), seed.size());
  for (size_t len = 0; len < seed.size(); ++len) {
    LLVMFuzzerTestOneInput(seed.data(), len);  // strict prefix
  }
  std::vector<uint8_t> mutant = seed;
  for (size_t pos = 0; pos < seed.size(); ++pos) {
    for (uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xFF}}) {
      mutant[pos] = static_cast<uint8_t>(seed[pos] ^ mask);
      LLVMFuzzerTestOneInput(mutant.data(), mutant.size());
    }
    mutant[pos] = seed[pos];
  }
}

}  // namespace ibus_fuzz

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  size_t inputs = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') {
      continue;  // libFuzzer flags like -max_total_time=10: no-ops here
    }
    std::vector<fs::path> files;
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file()) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(arg)) {
      files.push_back(arg);
    }
    for (const auto& f : files) {
      ibus_fuzz::Exercise(ibus_fuzz::ReadAll(f));
      ++inputs;
    }
  }
  std::printf("fuzz fallback driver: replayed %zu corpus inputs "
              "(+ prefixes and byte-flip mutants) without crashing\n",
              inputs);
  return 0;
}
#endif  // IB_HAVE_LIBFUZZER

#endif  // IBUS_FUZZ_DRIVER_H_
