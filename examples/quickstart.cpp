// Quickstart: the Information Bus in ~80 lines.
//
//  1. Build a simulated LAN with a bus daemon per host.
//  2. Publish/subscribe with subjects and wildcards (anonymous communication, P4).
//  3. Ship a self-describing data object and print it with the generic printer (P2).
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/types/data_object.h"
#include "src/types/printer.h"

using namespace ibus;  // NOLINT: example brevity

int main() {
  // --- Substrate: a 10 Mbit/s Ethernet with three workstations -----------------------
  Simulator sim;
  Network net(&sim);
  SegmentId lan = net.AddSegment();
  HostId fab = net.AddHost("fab-controller", lan);
  HostId desk1 = net.AddHost("desk1", lan);
  HostId desk2 = net.AddHost("desk2", lan);

  auto d0 = BusDaemon::Start(&net, fab).take();
  auto d1 = BusDaemon::Start(&net, desk1).take();
  auto d2 = BusDaemon::Start(&net, desk2).take();

  // --- Applications connect to their local daemons ----------------------------------
  auto publisher = BusClient::Connect(&net, fab, "litho-station").take();
  auto operator_console = BusClient::Connect(&net, desk1, "operator").take();
  auto plant_monitor = BusClient::Connect(&net, desk2, "plant-monitor").take();

  // A subscriber names a subject, never a producer (P4).
  operator_console
      ->Subscribe("fab5.cc.litho8.thick",
                  [&](const Message& m) {
                    std::printf("[operator]      %s -> %s\n", m.subject.c_str(),
                                ToString(m.payload).c_str());
                  })
      .ok();

  // Wildcards subscribe to whole families of subjects.
  plant_monitor
      ->Subscribe("fab5.>",
                  [&](const Message& m) {
                    std::printf("[plant-monitor] %s (%zu bytes)\n", m.subject.c_str(),
                                m.payload.size());
                  })
      .ok();
  sim.RunFor(10 * kMillisecond);

  // --- Publish raw readings ---------------------------------------------------------
  publisher->Publish("fab5.cc.litho8.thick", ToBytes("8.1um")).ok();
  publisher->Publish("fab5.cc.etch2.temp", ToBytes("351C")).ok();
  sim.RunFor(kSecond);

  // --- Publish a self-describing object (P2) ----------------------------------------
  auto reading = MakeObject("wafer_reading", {{"station", Value("litho8")},
                                              {"thickness_um", Value(8.1)},
                                              {"wafer_ids", Value(Value::List{
                                                                Value("W-1041"),
                                                                Value("W-1042")})}});
  plant_monitor
      ->SubscribeObjects("fab5.objects.readings",
                         [&](const Message&, const DataObjectPtr& obj) {
                           // The receiver was never compiled against wafer_reading;
                           // the instance describes itself.
                           std::printf("\n[plant-monitor] received a '%s' object:\n%s\n",
                                       obj->type_name().c_str(), PrintObject(*obj).c_str());
                         })
      .ok();
  sim.RunFor(10 * kMillisecond);
  publisher->PublishObject("fab5.objects.readings", *reading).ok();
  sim.RunFor(kSecond);

  std::printf("\nquickstart done at simulated t=%.3f s\n",
              static_cast<double>(sim.Now()) / kSecond);
  return 0;
}
