// The brokerage trading floor from the paper's §5 (Figures 3 and 4), end to end:
//
//   Dow Jones feed --> news adapter --\                         /--> News Monitor
//                                      >== Information Bus ====<
//   Reuters feed  --> news adapter --/                          \--> Object Repository
//
// Then, live, the Keyword Generator service comes on-line (Figure 4): existing
// components start receiving Property annotations immediately, with zero
// reconfiguration — the paper's showcase of anonymous communication (P4).
//
// Run:  ./build/examples/trading_floor
#include <cstdio>

#include "src/adapters/feed_sim.h"
#include "src/adapters/news_adapter.h"
#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/repo/repository.h"
#include "src/rmi/client.h"
#include "src/rmi/directory.h"
#include "src/services/keyword_generator.h"
#include "src/services/news_monitor.h"

using namespace ibus;  // NOLINT: example brevity

int main() {
  // --- The trading floor LAN ---------------------------------------------------------
  Simulator sim;
  Network net(&sim);
  SegmentId lan = net.AddSegment();
  std::vector<HostId> hosts;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  for (const char* name : {"feeds", "trader-desk", "dbserver", "svcbox"}) {
    hosts.push_back(net.AddHost(name, lan));
    daemons.push_back(BusDaemon::Start(&net, hosts.back()).take());
  }

  TypeRegistry registry;
  NewsAdapter::RegisterStoryTypes(&registry).ok();

  // --- Feed adapters (Figure 3, left) -------------------------------------------------
  auto feeds_bus = BusClient::Connect(&net, hosts[0], "feed-adapters").take();
  NewsAdapter dj_adapter(feeds_bus.get(), &registry, NewsVendor::kDowJones);
  NewsAdapter rt_adapter(feeds_bus.get(), &registry, NewsVendor::kReuters);
  DowJonesFeed dj_feed(2024);
  ReutersFeed rt_feed(1993);

  // --- News Monitor on the trader's desk ---------------------------------------------
  auto desk_bus = BusClient::Connect(&net, hosts[1], "news-monitor").take();
  auto monitor = NewsMonitor::Create(desk_bus.get(), &registry, {"news.equity.>"},
                                     ViewDef{"Equity Headlines", {"ticker", "headline"}, 28})
                     .take();

  // --- Object Repository capturing all news into the relational store -----------------
  Database db;
  Repository repo(&registry, &db);
  auto db_bus = BusClient::Connect(&net, hosts[2], "object-repository").take();
  auto capture = CaptureServer::Create(db_bus.get(), &repo, {"news.>"}).take();
  auto query_server = QueryServer::Create(db_bus.get(), &repo, "svc.repository").take();
  sim.RunFor(50 * kMillisecond);

  // --- Morning: both wires light up ---------------------------------------------------
  std::printf("--- morning: 12 stories arrive on two vendor wires ---\n");
  for (int i = 0; i < 6; ++i) {
    dj_adapter.Ingest(dj_feed.NextRaw()).ok();
    rt_adapter.Ingest(rt_feed.NextRaw()).ok();
    sim.RunFor(100 * kMillisecond);
  }
  sim.RunFor(2 * kSecond);

  std::printf("%s\n", monitor->RenderSummary().c_str());
  std::printf("repository now holds %llu stories (dj_story + rt_story under the story "
              "supertype)\n\n",
              static_cast<unsigned long long>(repo.stored_count()));

  // --- Figure 4: the Keyword Generator comes on-line mid-day --------------------------
  std::printf("--- keyword generator service comes on-line (nobody is reconfigured) ---\n");
  auto svc_bus = BusClient::Connect(&net, hosts[3], "keyword-generator").take();
  auto generator =
      KeywordGenerator::Create(svc_bus.get(), &registry, "news.>",
                               {{"autos", {"strike", "recall", "vehicles", "production"}},
                                {"chips", {"fab", "yield", "wafer", "chips", "capacity"}},
                                {"markets", {"earnings", "merger", "upgrade", "downgrade"}}})
          .take();
  sim.RunFor(100 * kMillisecond);

  for (int i = 0; i < 6; ++i) {
    dj_adapter.Ingest(dj_feed.NextRaw()).ok();
    rt_adapter.Ingest(rt_feed.NextRaw()).ok();
    sim.RunFor(100 * kMillisecond);
  }
  sim.RunFor(2 * kSecond);

  std::printf("monitor: %zu stories, %zu now annotated with @keywords properties\n",
              monitor->story_count(), monitor->annotated_count());
  // Show one enriched story in full (metadata-driven display).
  bool shown = false;
  for (size_t serial = 7; serial <= 12 && !shown; ++serial) {
    for (const char* vendor : {"dj_story", "rt_story"}) {
      std::string ref = std::string(vendor) + ":" + std::to_string(serial);
      auto story = monitor->story(ref);
      if (story != nullptr && story->HasProperty("keywords")) {
        auto text = monitor->RenderStory(ref);
        std::printf("\n--- selected %s ---\n%s\n", ref.c_str(), text->c_str());
        shown = true;
        break;
      }
    }
  }

  // --- An analyst queries the repository over RMI -------------------------------------
  std::printf("\n--- analyst queries the repository over RMI ---\n");
  auto analyst_bus = BusClient::Connect(&net, hosts[1], "analyst").take();
  std::shared_ptr<RemoteService> repo_svc;
  RmiClient::Connect(analyst_bus.get(), "svc.repository", RmiClientConfig{},
                     [&](auto r) { repo_svc = r.take(); });
  sim.RunFor(kSecond);
  repo_svc->Call("count", {Value("story")}, [&](Result<Value> r) {
    std::printf("count(story) -> %lld (includes every vendor subtype)\n",
                static_cast<long long>(r->AsI64()));
  });
  repo_svc->Call("query", {Value("story"), Value("ticker"), Value("=="), Value("gmc")},
                 [&](Result<Value> r) {
                   std::printf("query(story, ticker == \"gmc\") -> %zu stories\n",
                               r->AsList().size());
                 });
  sim.RunFor(kSecond);

  // --- Service directory: what's on the bus right now? --------------------------------
  std::printf("\n--- services currently on the bus ---\n");
  ServiceDirectory::List(analyst_bus.get(), 100 * kMillisecond,
                         [&](std::vector<RmiAdvert> services) {
                           for (const RmiAdvert& s : services) {
                             std::printf("  %-18s %-20s interface=%s\n", s.subject.c_str(),
                                         s.server_name.c_str(), s.interface.name().c_str());
                           }
                         });
  sim.RunFor(kSecond);

  std::printf("\ntrading floor example done at simulated t=%.2f s\n",
              static_cast<double>(sim.Now()) / kSecond);
  return 0;
}
