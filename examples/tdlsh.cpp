// tdlsh — the TDL shell: evaluates TDL source from a file (or a built-in demo when no
// file is given) against a fresh bus-connected application. The closest thing to the
// paper's interpreter-driven development experience: write a script, run it against a
// live bus, no compilation.
//
// Run:  ./build/examples/tdlsh [script.tdl]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/appbuilder/app_builder.h"
#include "src/bus/daemon.h"

using namespace ibus;  // NOLINT: example brevity

namespace {

const char kDemoScript[] = R"tdl(
; --- tdlsh demo: classes, methods, and the bus, all interpreted -------------------
(defclass sensor-reading (object)
  ((station :type string) (value :type f64)))

(defmethod describe-reading ((r sensor-reading))
  (concat (slot-value r 'station) " = " (slot-value r 'value)))

; Subscribe before publishing; the handler fires as the simulator drives delivery.
(bus-subscribe "demo.readings"
  (lambda (subj obj) (print "received on" subj "->" (describe-reading obj))))

(dolist (v '(8.1 8.25 7.9))
  (bus-publish "demo.readings"
    (make-instance 'sensor-reading :station "litho8" :value v)))

(print "published 3 readings; waiting for delivery...")
)tdl";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDemoScript;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "tdlsh: cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  Simulator sim;
  Network net(&sim);
  SegmentId lan = net.AddSegment();
  HostId host = net.AddHost("tdlsh", lan);
  auto daemon = BusDaemon::Start(&net, host).take();
  auto bus = BusClient::Connect(&net, host, "tdlsh").take();
  TypeRegistry registry;
  AppBuilder app(bus.get(), &registry);

  auto result = app.RunScript(source);
  std::printf("%s", app.TakeOutput().c_str());
  if (!result.ok()) {
    std::fprintf(stderr, "tdlsh: %s\n", result.status().ToString().c_str());
    return 1;
  }
  // Drive the simulated world so subscriptions and replies fire.
  sim.RunFor(5 * kSecond);
  std::printf("%s", app.TakeOutput().c_str());
  std::printf("=> %s\n", result->ToString().c_str());
  return 0;
}
