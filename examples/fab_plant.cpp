// The IC fabrication plant scenario: "24 by 7" operation (R1), legacy integration
// (R3), and guaranteed delivery.
//
//  * A Cobol-era Work-In-Process system with only a green-screen terminal is wired
//    onto the bus by an adapter acting as a virtual user (paper §4).
//  * Equipment publishes telemetry; a cell controller moves lots with certified
//    (guaranteed) delivery — logged to stable storage, retried across a crash.
//  * A live software upgrade: the v2 WIP service transparently replaces v1 on the
//    same subject while the plant keeps running (paper §7 / R1).
//
// Run:  ./build/examples/fab_plant
#include <cstdio>

#include "src/adapters/legacy_wip.h"
#include "src/bus/certified.h"
#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/journal/journal.h"
#include "src/rmi/client.h"
#include "src/sim/stable_store.h"

using namespace ibus;  // NOLINT: example brevity

int main() {
  Simulator sim;
  Network net(&sim);
  SegmentId lan = net.AddSegment();
  std::vector<HostId> hosts;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  for (const char* name : {"wip-host", "cell-controller", "equipment", "spare"}) {
    hosts.push_back(net.AddHost(name, lan));
    daemons.push_back(BusDaemon::Start(&net, hosts.back()).take());
  }
  TypeRegistry registry;

  // --- The legacy WIP system and its adapter (R3) -------------------------------------
  GreenScreenWip legacy;
  legacy.SeedLot("L-1041", "etch2", 24);
  legacy.SeedLot("L-1042", "litho8", 25);
  std::printf("--- the legacy terminal, untouched since the 80s ---\n%s\n",
              legacy.ReadScreen().c_str());

  auto wip_bus = BusClient::Connect(&net, hosts[0], "wip-adapter").take();
  auto adapter = WipAdapter::Create(wip_bus.get(), &registry, &legacy).take();
  sim.RunFor(50 * kMillisecond);

  // --- Equipment publishes telemetry; the floor watches -------------------------------
  auto equipment_bus = BusClient::Connect(&net, hosts[2], "litho8-station").take();
  auto floor_bus = BusClient::Connect(&net, hosts[1], "floor-display").take();
  floor_bus
      ->SubscribeObjects("fab.wip.status.>",
                         [&](const Message& m, const DataObjectPtr& status) {
                           std::printf("[floor] %s: lot %s at %s qty %lld\n",
                                       m.subject.c_str(),
                                       status->Get("lot").AsString().c_str(),
                                       status->Get("station").AsString().c_str(),
                                       static_cast<long long>(
                                           status->Get("quantity").AsI64()));
                         })
      .ok();
  sim.RunFor(50 * kMillisecond);

  // --- Cell controller moves a lot with GUARANTEED delivery ---------------------------
  std::printf("--- cell controller issues a certified move (logged before send) ---\n");
  MemoryStableStore disk;  // the controller's disk: survives its crash
  journal::JournalConfig wal_config;
  wal_config.sim = &sim;  // write-through: every certified publish is one stable write
  // The WIP adapter's certified endpoint acknowledges moves (the "reply" the paper's
  // guaranteed delivery retransmits until it receives).
  auto wip_consumer =
      CertifiedSubscriber::Create(wip_bus.get(), "fab.wip.move", "wip-adapter-certified",
                                  [&](const Message&) {})
          .take();
  auto controller_bus = BusClient::Connect(&net, hosts[1], "cell-controller").take();
  {
    auto ledger = journal::Journal::Open(&disk, wal_config).take();
    auto controller =
        CertifiedPublisher::Create(controller_bus.get(), ledger.get(), "cell-ledger").take();
    auto move = registry.NewInstance("wip_move").take();
    move->Set("lot", Value("L-1041")).ok();
    move->Set("to_station", Value("implant1")).ok();
    controller->PublishObject("fab.wip.move", *move).ok();
    sim.RunFor(2 * kSecond);
    std::printf("moves executed by the adapter so far: %llu\n",
                static_cast<unsigned long long>(adapter->stats().moves_executed));

    // A second move is published... and the controller crashes before it gets out.
    auto move2 = registry.NewInstance("wip_move").take();
    move2->Set("lot", Value("L-1042")).ok();
    move2->Set("to_station", Value("etch2")).ok();
    // Crash between the stable write and the send: destroy the publisher right away.
    controller->PublishObject("fab.wip.move", *move2).ok();
    std::printf("--- controller crashes with one move only in its stable log ---\n");
  }
  sim.RunFor(kSecond);

  // Restart and recover from the ledger: the logged move goes out (at-least-once).
  std::printf("--- controller restarts, recovers its ledger ---\n");
  auto recovered_ledger = journal::Journal::Open(&disk, wal_config).take();
  auto restarted =
      CertifiedPublisher::Create(controller_bus.get(), recovered_ledger.get(), "cell-ledger")
          .take();
  restarted->Recover().ok();
  sim.RunFor(3 * kSecond);
  std::printf("pending certified messages after recovery + ack: %zu\n\n",
              restarted->pending());

  // --- Query the legacy system through modern RMI --------------------------------------
  std::printf("--- dashboard queries lot status over RMI (screen-scraped live) ---\n");
  auto dash_bus = BusClient::Connect(&net, hosts[3], "dashboard").take();
  std::shared_ptr<RemoteService> wip_svc;
  RmiClient::Connect(dash_bus.get(), "svc.wip", RmiClientConfig{},
                     [&](auto r) { wip_svc = r.take(); });
  sim.RunFor(kSecond);
  for (const char* lot : {"L-1041", "L-1042"}) {
    wip_svc->Call("status", {Value(std::string(lot))}, [&](Result<Value> r) {
      const DataObjectPtr& s = r->AsObject();
      std::printf("status(%s) -> station=%s qty=%lld\n", lot,
                  s->Get("station").AsString().c_str(),
                  static_cast<long long>(s->Get("quantity").AsI64()));
    });
    sim.RunFor(kSecond);
  }

  // --- R1: live upgrade — v2 service takes over the subject ---------------------------
  std::printf("\n--- live upgrade: WIP service v2 takes over 'svc.wip' ---\n");
  adapter.reset();  // v1 retires after draining (its RMI server goes with it)
  sim.RunFor(100 * kMillisecond);
  auto v2_bus = BusClient::Connect(&net, hosts[3], "wip-adapter-v2").take();
  TypeRegistry registry2;
  auto adapter_v2 = WipAdapter::Create(v2_bus.get(), &registry2, &legacy).take();
  sim.RunFor(100 * kMillisecond);

  std::shared_ptr<RemoteService> wip_v2;
  RmiClient::Connect(dash_bus.get(), "svc.wip", RmiClientConfig{},
                     [&](auto r) { wip_v2 = r.take(); });
  sim.RunFor(kSecond);
  wip_v2->Call("status", {Value(std::string("L-1041"))}, [&](Result<Value> r) {
    std::printf("after upgrade, status(L-1041) served by '%s' -> station=%s\n",
                wip_v2->advert().server_name.c_str(),
                r->AsObject()->Get("station").AsString().c_str());
  });
  sim.RunFor(kSecond);

  std::printf("\nfab plant example done at simulated t=%.2f s\n",
              static_cast<double>(sim.Now()) / kSecond);
  return 0;
}
