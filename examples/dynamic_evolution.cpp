// Dynamic system evolution (paper §5.2): everything here happens at RUN-TIME, with no
// recompilation of any running component.
//
//  1. A new class is defined in TDL (P3) and instances are published.
//  2. The Object Repository, which has never heard of the type, generates relational
//     tables for it on first contact and captures instances (R2).
//  3. The type evolves — version 2 adds an attribute — and the repository migrates its
//     schema while old rows remain queryable.
//  4. The application builder enumerates the self-describing services on the bus and
//     generates menus/dialogs from their interfaces (P2), then drives one via script.
//
// Run:  ./build/examples/dynamic_evolution
#include <cstdio>

#include "src/appbuilder/app_builder.h"
#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/repo/repository.h"
#include "src/tdl/interp.h"

using namespace ibus;  // NOLINT: example brevity

int main() {
  Simulator sim;
  Network net(&sim);
  SegmentId lan = net.AddSegment();
  std::vector<HostId> hosts;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  for (const char* name : {"dev-box", "dbserver", "ops"}) {
    hosts.push_back(net.AddHost(name, lan));
    daemons.push_back(BusDaemon::Start(&net, hosts.back()).take());
  }

  // --- The repository side: its own registry, which does NOT know the new type -------
  TypeRegistry repo_registry;
  Database db;
  Repository repo(&repo_registry, &db);
  auto repo_bus = BusClient::Connect(&net, hosts[1], "object-repository").take();
  auto capture = CaptureServer::Create(repo_bus.get(), &repo, {"factory.>"}).take();
  auto query_server = QueryServer::Create(repo_bus.get(), &repo, "svc.repository").take();
  sim.RunFor(50 * kMillisecond);

  // --- 1. Define a brand-new class in TDL and publish instances ----------------------
  std::printf("--- defclass at run-time (P3), publish instances ---\n");
  TypeRegistry dev_registry;
  auto dev_bus = BusClient::Connect(&net, hosts[0], "recipe-editor").take();
  AppBuilder dev_app(dev_bus.get(), &dev_registry);
  dev_app
      .RunScript(R"tdl(
        (defclass recipe (object)
          ((name :type string) (steps :type list) (max-temp :type f64)))
        (bus-publish "factory.recipes.etch"
          (make-instance 'recipe :name "shallow-etch"
                                 :steps (list "clean" "mask" "etch")
                                 :max-temp 345.0))
        (bus-publish "factory.recipes.etch"
          (make-instance 'recipe :name "deep-etch"
                                 :steps (list "clean" "mask" "etch" "etch")
                                 :max-temp 395.5))
        (print "published 2 recipe objects")
      )tdl")
      .ok();
  sim.RunFor(2 * kSecond);
  std::printf("%s", dev_app.TakeOutput().c_str());

  // --- 2. The repository derived the type and generated tables -----------------------
  std::printf("\nrepository tables now: ");
  for (const std::string& t : db.TableNames()) {
    std::printf("%s ", t.c_str());
  }
  std::printf("\nrepository knows type 'recipe': %s, instances stored: %llu\n",
              repo_registry.Has("recipe") ? "yes" : "no",
              static_cast<unsigned long long>(repo.stored_count()));

  // --- 3. The type evolves: v2 adds a chamber attribute ------------------------------
  std::printf("\n--- type evolves to v2 (adds 'chamber'); schema migrates (R2) ---\n");
  TypeDescriptor recipe_v2("recipe", "object");
  recipe_v2.AddAttribute("name", "string");
  recipe_v2.AddAttribute("steps", "list");
  recipe_v2.AddAttribute("max-temp", "f64");
  recipe_v2.AddAttribute("chamber", "string");
  recipe_v2.set_version(2);
  repo_registry.Define(recipe_v2).ok();  // observer migrates the table live

  auto v2 = repo_registry.NewInstance("recipe").take();
  v2->Set("name", Value("plasma-etch")).ok();
  v2->Set("steps", Value(Value::List{Value("clean"), Value("plasma")})).ok();
  v2->Set("max-temp", Value(410.0)).ok();
  v2->Set("chamber", Value("C3")).ok();
  repo.Store(*v2).ok();

  RepoQuery q;
  q.type_name = "recipe";
  auto all = repo.Query(q);
  std::printf("old query 'all recipes' still works: %zu recipes (v1 rows have NULL "
              "chamber)\n",
              all->size());
  for (const DataObjectPtr& r : *all) {
    std::printf("  %-14s chamber=%s\n", r->Get("name").AsString().c_str(),
                r->Get("chamber").is_null() ? "NULL" : r->Get("chamber").AsString().c_str());
  }

  // --- 4. Generic UI from self-describing services (P2) ------------------------------
  std::printf("\n--- ops console: browse services, generate UI, invoke via script ---\n");
  auto ops_bus = BusClient::Connect(&net, hosts[2], "ops-console").take();
  TypeRegistry ops_registry;
  AppBuilder ops_app(ops_bus.get(), &ops_registry);

  ServiceDirectory::List(ops_bus.get(), 100 * kMillisecond,
                         [&](std::vector<RmiAdvert> services) {
                           for (const RmiAdvert& s : services) {
                             std::printf("%s", AppBuilder::BuildMenu(s.interface).c_str());
                             for (const OperationDef& op : s.interface.operations()) {
                               if (op.name == "query") {
                                 std::printf("%s", AppBuilder::BuildDialog(op).c_str());
                               }
                             }
                           }
                         });
  sim.RunFor(kSecond);

  ops_app
      .RunScript(R"tdl(
        (bus-invoke "svc.repository" "count" (list "recipe")
          (lambda (ok result) (print "repository count(recipe) =" result)))
        (bus-invoke "svc.repository" "query" (list "recipe" "max-temp" ">" 350.0)
          (lambda (ok result)
            (print "hot recipes:" (mapcar (lambda (r) (slot-value r 'name)) result))))
      )tdl")
      .ok();
  sim.RunFor(2 * kSecond);
  std::printf("%s", ops_app.TakeOutput().c_str());

  std::printf("\ndynamic evolution example done at simulated t=%.2f s\n",
              static_cast<double>(sim.Now()) / kSecond);
  return 0;
}
