// Wide-area operations: two sites (a New York trading floor and a London office)
// joined by information routers over a T1-class WAN link (paper §3.1), with subject
// rewriting, store-and-forward logging, and fleet-wide observability.
//
//  * Only subjects London actually subscribes to cross the ocean.
//  * London sees New York's subjects under the "ny." namespace (subject transforms).
//  * Every forwarded message is also written to a stable store-and-forward log.
//  * A StatsCollector on the ops console watches every daemon on both LANs.
//
// Run:  ./build/examples/wide_area
#include <cstdio>

#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/router/router.h"
#include "src/services/bus_monitor.h"
#include "src/sim/stable_store.h"
#include "src/telemetry/busmon.h"

using namespace ibus;  // NOLINT: example brevity

int main() {
  Simulator sim;
  Network net(&sim);
  SegmentId ny_lan = net.AddSegment();
  SegmentId ldn_lan = net.AddSegment();

  std::vector<HostId> hosts;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  auto add_host = [&](const char* name, SegmentId lan) {
    hosts.push_back(net.AddHost(name, lan));
    daemons.push_back(BusDaemon::Start(&net, hosts.back()).take());
    return hosts.back();
  };
  HostId ny_gw = add_host("ny-gw", ny_lan);
  HostId ny_desk = add_host("ny-desk", ny_lan);
  HostId ldn_gw = add_host("ldn-gw", ldn_lan);
  HostId ldn_desk = add_host("ldn-desk", ldn_lan);

  // --- Routers: NY side rewrites its outbound subjects under "ny." --------------------
  MemoryStableStore forward_log;
  RouterConfig ny_cfg;
  ny_cfg.rewrites.push_back(SubjectRewrite{"quotes", "ny.quotes"});
  ny_cfg.forward_log = &forward_log;
  auto ny_router_bus = BusClient::Connect(&net, ny_gw, "_router:NY").take();
  auto ny_router = InfoRouter::Listen(ny_router_bus.get(), "_router:NY", 8700, ny_cfg).take();
  sim.RunFor(100 * kMillisecond);
  auto ldn_router_bus = BusClient::Connect(&net, ldn_gw, "_router:LDN").take();
  auto ldn_router = InfoRouter::Connect(ldn_router_bus.get(), "_router:LDN", ny_gw, 8700).take();
  sim.RunFor(500 * kMillisecond);
  std::printf("WAN link up: %s\n\n", ny_router->linked() ? "yes" : "no");

  // --- London subscribes to New York's quotes under the rewritten namespace -----------
  auto ldn_trader = BusClient::Connect(&net, ldn_desk, "ldn-trader").take();
  int ldn_got = 0;
  ldn_trader
      ->Subscribe("ny.quotes.>",
                  [&](const Message& m) {
                    ++ldn_got;
                    std::printf("[london] %-22s %s (%.1f ms after NY publish)\n",
                                m.subject.c_str(), ToString(m.payload).c_str(),
                                0.0);  // latency shown in the summary below
                  })
      .ok();
  sim.RunFor(kSecond);  // subscription event + advert must cross the WAN

  // --- New York publishes; local chatter stays local ----------------------------------
  auto ny_feed = BusClient::Connect(&net, ny_desk, "ny-feed").take();
  auto ny_local = BusClient::Connect(&net, ny_desk, "ny-ops").take();
  int ny_local_got = 0;
  ny_local->Subscribe("telemetry.>", [&](const Message&) { ++ny_local_got; }).ok();
  sim.RunFor(200 * kMillisecond);

  for (int i = 0; i < 3; ++i) {
    ny_feed->Publish("quotes.nyse.gmc", ToBytes("41." + std::to_string(25 + i))).ok();
    ny_feed->Publish("telemetry.ny.rack" + std::to_string(i), ToBytes("ok")).ok();
    sim.RunFor(200 * kMillisecond);
  }
  sim.RunFor(2 * kSecond);

  std::printf("\nlondon received %d quotes; NY-local telemetry stayed local "
              "(%llu messages crossed the WAN)\n",
              ldn_got, static_cast<unsigned long long>(ny_router->stats().forwarded));
  auto logged = forward_log.ReadFrom(0);
  std::printf("store-and-forward log holds %zu forwarded messages\n\n", logged->size());

  // --- Fleet observability: stats reporters on every host, collector in London --------
  std::vector<std::unique_ptr<BusClient>> reporter_buses;
  std::vector<std::unique_ptr<StatsReporter>> reporters;
  for (size_t i = 0; i < hosts.size(); ++i) {
    reporter_buses.push_back(
        BusClient::Connect(&net, hosts[i], "stats-" + net.HostName(hosts[i])).take());
    reporters.push_back(
        StatsReporter::Create(reporter_buses.back().get(), daemons[i].get(), kSecond).take());
  }
  auto ops_bus = BusClient::Connect(&net, ldn_desk, "ops-console").take();
  auto collector = StatsCollector::Create(ops_bus.get()).take();
  sim.RunFor(3 * kSecond);

  // Stats subjects are bus-internal ("_ibus.") and thus never cross the WAN; the
  // collector sees its own LAN. (Run a collector per site, or set forward_internal.)
  std::printf("--- London ops console: local fleet ---\n%s\n",
              collector->RenderTable().c_str());

  // --- busmon: the full console frame — flows, alerts, and a flight-recorder tail ----
  auto mon = telemetry::BusMon::Create(ops_bus.get()).take();
  mon->AttachRecorder(daemons[3]->flight_recorder());  // ldn-desk's own recorder
  sim.RunFor(3 * kSecond);
  std::printf("--- London ops console: busmon frame ---\n%s\n",
              mon->RenderSnapshot().c_str());

  std::printf("wide-area example done at simulated t=%.2f s\n",
              static_cast<double>(sim.Now()) / kSecond);
  return 0;
}
