// Tests for the extension features: request/reply over pub/sub, type gossip, and
// leader election for fault-tolerant server groups.
#include <gtest/gtest.h>

#include "src/rmi/client.h"
#include "src/rmi/election.h"
#include "src/rmi/server.h"
#include "src/services/bus_monitor.h"
#include "src/services/type_gossip.h"
#include "tests/bus_fixture.h"

namespace ibus {
namespace {

class RequestReplyTest : public BusFixture {};

TEST_F(RequestReplyTest, FirstResponderWins) {
  SetUpBus(3);
  auto client = MakeClient(0, "client");
  auto near_server = MakeClient(0, "near");  // same host: answers fastest
  auto far_server = MakeClient(1, "far");
  auto serve = [](BusClient* bus, const std::string& tag) {
    return bus->Subscribe("svc.time", [bus, tag](const Message& m) {
      if (m.reply_subject.empty()) {
        return;
      }
      Message response;
      response.payload = ToBytes(tag);
      bus->Reply(m, std::move(response)).ok();
    });
  };
  ASSERT_TRUE(serve(near_server.get(), "near").ok());
  ASSERT_TRUE(serve(far_server.get(), "far").ok());
  Settle(10 * kMillisecond);

  std::string winner;
  int responses = 0;
  Message request;
  request.subject = "svc.time";
  ASSERT_TRUE(client
                  ->Request(std::move(request), kSecond,
                            [&](Result<Message> r) {
                              ASSERT_TRUE(r.ok());
                              ++responses;
                              winner = ToString(r->payload);
                            })
                  .ok());
  Settle(2 * kSecond);
  EXPECT_EQ(responses, 1);  // exactly one callback even though both responded
  EXPECT_FALSE(winner.empty());
}

TEST_F(RequestReplyTest, TimesOutWithNoResponder) {
  SetUpBus(1);
  auto client = MakeClient(0, "client");
  Status got;
  Message request;
  request.subject = "svc.ghost";
  ASSERT_TRUE(client
                  ->Request(std::move(request), 100 * kMillisecond,
                            [&](Result<Message> r) { got = r.status(); })
                  .ok());
  Settle();
  EXPECT_EQ(got.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(RequestReplyTest, ReplyWithoutReplySubjectFails) {
  SetUpBus(1);
  auto client = MakeClient(0, "client");
  Message m;
  m.subject = "anything";
  EXPECT_EQ(client->Reply(m, Message{}).code(), StatusCode::kFailedPrecondition);
}

class TypeGossipTest : public BusFixture {};

TEST_F(TypeGossipTest, AnnouncementsPropagateDefinitions) {
  SetUpBus(2);
  TypeRegistry reg_a, reg_b;
  auto bus_a = MakeClient(0, "a");
  auto bus_b = MakeClient(1, "b");
  auto gossip_a = TypeGossip::Create(bus_a.get(), &reg_a).take();
  auto gossip_b = TypeGossip::Create(bus_b.get(), &reg_b).take();
  Settle(10 * kMillisecond);

  // Define a two-level hierarchy on A; B learns it from the announcements.
  TypeDescriptor story("story", "object");
  story.AddAttribute("headline", "string");
  OperationDef op;
  op.name = "summarize";
  op.result_type = "string";
  story.AddOperation(op);
  ASSERT_TRUE(reg_a.Define(story).ok());
  TypeDescriptor dj("dj_story", "story");
  dj.AddAttribute("dj_code", "string");
  ASSERT_TRUE(reg_a.Define(dj).ok());
  Settle();

  ASSERT_TRUE(reg_b.Has("story"));
  ASSERT_TRUE(reg_b.Has("dj_story"));
  EXPECT_TRUE(reg_b.IsSubtype("dj_story", "story"));
  // Full descriptors travel: operations included.
  EXPECT_NE(reg_b.Find("story")->FindOperation("summarize"), nullptr);
  EXPECT_GE(gossip_b->stats().learned, 2u);
}

TEST_F(TypeGossipTest, ResolveFetchesOnDemand) {
  SetUpBus(2);
  TypeRegistry reg_a, reg_b;
  auto bus_a = MakeClient(0, "a");
  auto gossip_a = TypeGossip::Create(bus_a.get(), &reg_a).take();
  // A defines its type BEFORE B exists: B never heard the announcement.
  TypeDescriptor recipe("recipe", "object");
  recipe.AddAttribute("name", "string");
  ASSERT_TRUE(reg_a.Define(recipe).ok());
  Settle();

  auto bus_b = MakeClient(1, "b");
  auto gossip_b = TypeGossip::Create(bus_b.get(), &reg_b).take();
  Settle(10 * kMillisecond);
  ASSERT_FALSE(reg_b.Has("recipe"));

  Status resolved;
  bool done = false;
  gossip_b->Resolve("recipe", 100 * kMillisecond, [&](Status s) {
    resolved = s;
    done = true;
  });
  Settle();
  ASSERT_TRUE(done);
  EXPECT_TRUE(resolved.ok()) << resolved.ToString();
  EXPECT_TRUE(reg_b.Has("recipe"));
  EXPECT_GE(gossip_a->stats().answered, 1u);
}

TEST_F(TypeGossipTest, ResolveUnknownTypeFails) {
  SetUpBus(2);
  TypeRegistry reg_a, reg_b;
  auto bus_a = MakeClient(0, "a");
  auto bus_b = MakeClient(1, "b");
  auto gossip_a = TypeGossip::Create(bus_a.get(), &reg_a).take();
  auto gossip_b = TypeGossip::Create(bus_b.get(), &reg_b).take();
  Settle(10 * kMillisecond);
  Status resolved;
  gossip_b->Resolve("never_defined", 100 * kMillisecond, [&](Status s) { resolved = s; });
  Settle();
  EXPECT_EQ(resolved.code(), StatusCode::kNotFound);
}

TEST_F(TypeGossipTest, AnnounceAllSyncsExistingTypes) {
  SetUpBus(2);
  TypeRegistry reg_a, reg_b;
  auto bus_a = MakeClient(0, "a");
  TypeDescriptor t1("t1", "object");
  ASSERT_TRUE(reg_a.Define(t1).ok());
  auto gossip_a = TypeGossip::Create(bus_a.get(), &reg_a).take();
  auto bus_b = MakeClient(1, "b");
  auto gossip_b = TypeGossip::Create(bus_b.get(), &reg_b).take();
  Settle(10 * kMillisecond);
  ASSERT_FALSE(reg_b.Has("t1"));
  ASSERT_TRUE(gossip_a->AnnounceAll().ok());
  Settle();
  EXPECT_TRUE(reg_b.Has("t1"));
}

class ElectionTest : public BusFixture {};

TEST_F(ElectionTest, HighestIdLeads) {
  SetUpBus(3);
  std::vector<std::unique_ptr<BusClient>> buses;
  std::vector<std::unique_ptr<Election>> members;
  for (int i = 0; i < 3; ++i) {
    buses.push_back(MakeClient(i, "m" + std::to_string(i)));
    members.push_back(Election::Join(buses.back().get(), "grp",
                                     static_cast<uint64_t>(10 + i), nullptr)
                          .take());
  }
  Settle(2 * kSecond);
  EXPECT_FALSE(members[0]->is_leader());
  EXPECT_FALSE(members[1]->is_leader());
  EXPECT_TRUE(members[2]->is_leader());
  EXPECT_EQ(members[0]->leader_id(), 12u);
  EXPECT_EQ(members[1]->leader_id(), 12u);
}

TEST_F(ElectionTest, FailoverOnLeaderCrash) {
  SetUpBus(3);
  std::vector<std::unique_ptr<BusClient>> buses;
  std::vector<std::unique_ptr<Election>> members;
  for (int i = 0; i < 3; ++i) {
    buses.push_back(MakeClient(i, "m" + std::to_string(i)));
    members.push_back(Election::Join(buses.back().get(), "grp",
                                     static_cast<uint64_t>(10 + i), nullptr)
                          .take());
  }
  Settle(2 * kSecond);
  ASSERT_TRUE(members[2]->is_leader());

  net_->SetHostUp(hosts_[2], false);  // the leader's host dies
  Settle(3 * kSecond);
  EXPECT_TRUE(members[1]->is_leader());  // next-highest takes over
  EXPECT_FALSE(members[0]->is_leader());
  EXPECT_EQ(members[0]->leader_id(), 11u);
}

TEST_F(ElectionTest, HigherMemberJoiningTakesOver) {
  SetUpBus(2);
  auto bus_low = MakeClient(0, "low");
  bool low_led = false;
  auto low = Election::Join(bus_low.get(), "grp", 5,
                            [&](bool leader) { low_led = leader; })
                 .take();
  Settle(2 * kSecond);
  ASSERT_TRUE(low->is_leader());
  ASSERT_TRUE(low_led);

  auto bus_high = MakeClient(1, "high");
  auto high = Election::Join(bus_high.get(), "grp", 50, nullptr).take();
  Settle(3 * kSecond);
  EXPECT_TRUE(high->is_leader());
  EXPECT_FALSE(low->is_leader());
  EXPECT_FALSE(low_led);  // demotion callback fired
  EXPECT_EQ(low->leader_id(), 50u);
}

TEST_F(ElectionTest, FaultTolerantServicePairFailsOverBySubject) {
  // The full paper §3.3 story: two servers on one subject; only the elected primary
  // answers discovery; the client never learns server identities and survives the
  // primary's crash by simply re-discovering.
  SetUpBus(3);
  auto make_service = [] {
    auto svc = std::make_shared<DynamicService>("counter");
    OperationDef op;
    op.name = "ping";
    op.result_type = "string";
    svc->AddOperation(op, [](const std::vector<Value>&) -> Result<Value> {
      return Value(std::string("pong"));
    });
    return svc;
  };
  auto bus1 = MakeClient(0, "primary");
  auto bus2 = MakeClient(1, "backup");
  auto server1 = RmiServer::Create(bus1.get(), "svc.ft", make_service()).take();
  auto server2 = RmiServer::Create(bus2.get(), "svc.ft", make_service()).take();
  auto elect1 = Election::Join(bus1.get(), "svc.ft", 100,
                               [s = server1.get()](bool lead) { s->set_answering(lead); })
                    .take();
  auto elect2 = Election::Join(bus2.get(), "svc.ft", 50,
                               [s = server2.get()](bool lead) { s->set_answering(lead); })
                    .take();
  server1->set_answering(false);
  server2->set_answering(false);
  Settle(2 * kSecond);
  ASSERT_TRUE(elect1->is_leader());
  ASSERT_TRUE(server1->answering());
  ASSERT_FALSE(server2->answering());

  // Exactly one server answers discovery.
  auto client_bus = MakeClient(2, "client");
  std::vector<RmiAdvert> adverts;
  RmiClient::Discover(client_bus.get(), "svc.ft", RmiClientConfig{},
                      [&](std::vector<RmiAdvert> a) { adverts = std::move(a); });
  Settle();
  ASSERT_EQ(adverts.size(), 1u);
  EXPECT_EQ(adverts[0].server_name, "primary");

  // The primary's host dies; the backup is elected and answers in its place.
  net_->SetHostUp(hosts_[0], false);
  Settle(3 * kSecond);
  ASSERT_TRUE(elect2->is_leader());
  std::shared_ptr<RemoteService> remote;
  RmiClient::Connect(client_bus.get(), "svc.ft", RmiClientConfig{},
                     [&](auto r) { remote = r.take(); });
  Settle();
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(remote->advert().server_name, "backup");
  std::string pong;
  remote->Call("ping", {}, [&](Result<Value> r) {
    ASSERT_TRUE(r.ok());
    pong = r->AsString();
  });
  Settle();
  EXPECT_EQ(pong, "pong");
}

}  // namespace
}  // namespace ibus

namespace ibus {
namespace {

class BusMonitorTest : public BusFixture {};

TEST_F(BusMonitorTest, CollectorAggregatesFleetStats) {
  SetUpBus(3);
  std::vector<std::unique_ptr<BusClient>> reporter_buses;
  std::vector<std::unique_ptr<StatsReporter>> reporters;
  for (int i = 0; i < 3; ++i) {
    reporter_buses.push_back(MakeClient(i, "reporter" + std::to_string(i)));
    reporters.push_back(StatsReporter::Create(reporter_buses.back().get(),
                                              daemons_[static_cast<size_t>(i)].get(),
                                              500 * kMillisecond)
                            .take());
  }
  auto ops_bus = MakeClient(2, "ops-console");
  auto collector = StatsCollector::Create(ops_bus.get()).take();
  Settle(100 * kMillisecond);

  // Generate traffic so counters move.
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  ASSERT_TRUE(sub->Subscribe("traffic.topic", [](const Message&) {}).ok());
  Settle(100 * kMillisecond);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pub->Publish("traffic.topic", ToBytes("x")).ok());
  }
  Settle(3 * kSecond);

  ASSERT_EQ(collector->snapshots().size(), 3u);
  const auto& h0 = collector->snapshots().at("host0");
  const auto& h1 = collector->snapshots().at("host1");
  EXPECT_GE(h0.publishes, 10u);        // the publisher's daemon accepted our traffic
  EXPECT_GE(h1.deliveries, 10u);       // the subscriber's daemon delivered it
  EXPECT_GE(h1.subscriptions, 1u);
  std::string table = collector->RenderTable();
  EXPECT_NE(table.find("host0"), std::string::npos);
  EXPECT_NE(table.find("host2"), std::string::npos);
}

TEST_F(BusMonitorTest, ReporterStopsWithObject) {
  SetUpBus(1);
  auto bus = MakeClient(0, "r");
  auto collector_bus = MakeClient(0, "c");
  auto collector = StatsCollector::Create(collector_bus.get()).take();
  uint64_t published;
  {
    auto reporter =
        StatsReporter::Create(bus.get(), daemons_[0].get(), 100 * kMillisecond).take();
    Settle(kSecond);
    published = reporter->reports_published();
    EXPECT_GT(published, 5u);
  }
  Settle(kSecond);  // destroyed reporter publishes nothing further
  EXPECT_EQ(collector->snapshots().size(), 1u);
}

}  // namespace
}  // namespace ibus

namespace ibus {
namespace {

class RetryingCallTest : public BusFixture {
 protected:
  std::shared_ptr<DynamicService> PingService() {
    auto svc = std::make_shared<DynamicService>("pinger");
    OperationDef op;
    op.name = "ping";
    op.result_type = "string";
    svc->AddOperation(op, [](const std::vector<Value>&) -> Result<Value> {
      return Value(std::string("pong"));
    });
    return svc;
  }
};

TEST_F(RetryingCallTest, SucceedsFirstTry) {
  SetUpBus(2);
  auto server_bus = MakeClient(1, "server");
  auto server = RmiServer::Create(server_bus.get(), "svc.retry", PingService()).take();
  Settle(10 * kMillisecond);
  auto client_bus = MakeClient(0, "client");
  std::string got;
  RetryingCall(client_bus.get(), "svc.retry", "ping", {}, 3, RmiClientConfig{},
               [&](Result<Value> r) {
                 ASSERT_TRUE(r.ok());
                 got = r->AsString();
               });
  Settle();
  EXPECT_EQ(got, "pong");
}

TEST_F(RetryingCallTest, ExhaustsAttemptsWhenNobodyServes) {
  SetUpBus(1);
  auto client_bus = MakeClient(0, "client");
  RmiClientConfig cfg;
  cfg.discovery_timeout_us = 30 * kMillisecond;
  Status got;
  RetryingCall(client_bus.get(), "svc.ghost", "ping", {}, 3, cfg,
               [&](Result<Value> r) { got = r.status(); });
  Settle(5 * kSecond);
  EXPECT_EQ(got.code(), StatusCode::kUnavailable);
}

TEST_F(RetryingCallTest, SurvivesFailoverMidCall) {
  // Primary with election; it dies between discovery rounds; the retrying caller
  // lands on the elected backup without the application noticing anything but delay.
  SetUpBus(3);
  auto bus1 = MakeClient(0, "primary");
  auto bus2 = MakeClient(1, "backup");
  auto server1 = RmiServer::Create(bus1.get(), "svc.ha", PingService()).take();
  auto server2 = RmiServer::Create(bus2.get(), "svc.ha", PingService()).take();
  server1->set_answering(false);
  server2->set_answering(false);
  auto elect1 = Election::Join(bus1.get(), "svc.ha", 100,
                               [s = server1.get()](bool l) { s->set_answering(l); })
                    .take();
  auto elect2 = Election::Join(bus2.get(), "svc.ha", 50,
                               [s = server2.get()](bool l) { s->set_answering(l); })
                    .take();
  Settle(2 * kSecond);
  ASSERT_TRUE(elect1->is_leader());

  // Kill the primary NOW; launch the retrying call immediately after. The first
  // discovery round may return nothing (backup not yet elected) — retries cover it.
  net_->SetHostUp(hosts_[0], false);
  auto client_bus = MakeClient(2, "client");
  RmiClientConfig cfg;
  cfg.discovery_timeout_us = 100 * kMillisecond;
  std::string got;
  RetryingCall(client_bus.get(), "svc.ha", "ping", {}, 10, cfg, [&](Result<Value> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    got = r->AsString();
  });
  Settle(10 * kSecond);
  EXPECT_EQ(got, "pong");
  EXPECT_TRUE(elect2->is_leader());
}

}  // namespace
}  // namespace ibus
