// A lambda assigned to a member inside a hot function: the lambda body is part
// of the enclosing function's effect set, and building the std::function allocates.
#include <functional>
#include <memory>

namespace fix {

struct Timer {
  std::function<void()> on_fire;
};

void Deliver(Timer& t, int v) {  // hotlint: hot
  t.on_fire = [v]() {
    auto p = std::make_unique<int>(v);
    (void)p;
  };
}

}  // namespace fix
