// Twin of iostream_trigger: the report runs behind a justified allow on the
// malformed-input error path; the steady-state path never formats.
#include <iostream>

namespace fix {

void Report(int v) {
  std::cerr << "value " << v << "\n";  // hotlint: allow(hot-iostream) -- malformed-input error path, not per-message
}

void Audit(int v) {
  Report(v);
}

void Deliver(int v) {  // hotlint: hot
  Audit(v);
}

}  // namespace fix
