// hot-string: std::string construction, to_string, and literal concat on the hot path.
#include <string>

namespace fix {

std::string Label(int v) {
  return "seq=" + std::to_string(v);
}

void Deliver(int v) {  // hotlint: hot
  auto s = Label(v);
  (void)s;
}

}  // namespace fix
