// bad-annotation: an allow with no justification, an unknown rule name, and a
// hot marker that attaches to nothing.
#include <memory>

namespace fix {

// hotlint: hot

void Deliver(int v) {  // hotlint: hot
  auto p = std::make_unique<int>(v);  // hotlint: allow(hot-alloc)
  auto q = std::make_unique<int>(v);  // hotlint: allow(hot-malloc) -- no such rule
  (void)p;
  (void)q;
}

}  // namespace fix
