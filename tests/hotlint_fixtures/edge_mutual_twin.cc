// Twin of edge_mutual_trigger: both cycle members justify the bound on their
// signatures.
namespace fix {

struct Node {
  Node* left = nullptr;
  Node* right = nullptr;
  int v = 0;
};

int Cross(Node* n);

int Descend(Node* n) {  // hotlint: allow(hot-recursion) -- alternates with Cross, one level per tree rank, depth capped at insert
  if (n == nullptr) {
    return 0;
  }
  return n->v + Cross(n->left);
}

int Cross(Node* n) {  // hotlint: allow(hot-recursion) -- alternates with Descend, one level per tree rank, depth capped at insert
  if (n == nullptr) {
    return 0;
  }
  return Descend(n->right);
}

void Deliver(Node* n) {  // hotlint: hot
  (void)Descend(n);
}

}  // namespace fix
