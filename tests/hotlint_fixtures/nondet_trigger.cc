// hot-nondet: the hot root reaches a wall-clock read, and iterates a
// pointer-keyed unordered container (address order leaks into behavior).
#include <ctime>
#include <unordered_map>

namespace fix {

struct Sub {
  int id = 0;
};

struct Table {
  std::unordered_map<Sub*, int> weights;
};

long Stamp() {
  return time(nullptr);
}

void Deliver(Table& t) {  // hotlint: hot
  (void)Stamp();
  for (const auto& entry : t.weights) {
    (void)entry;
  }
}

}  // namespace fix
