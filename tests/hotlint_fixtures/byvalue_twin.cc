// Twin of byvalue_trigger: const-ref in, out-param out, and a moved sink param.
#include <string>
#include <utility>
#include <vector>

namespace fix {

struct Slot {
  std::string owned;
};

void Expand(const std::string& subject, std::vector<int>* out) {
  (void)subject;
  out->reserve(4);
}

void Adopt(Slot& slot, std::string s) {
  slot.owned = std::move(s);
}

void Deliver(Slot& slot, const std::string& s) {  // hotlint: hot
  std::vector<int> v;
  Expand(s, &v);
  Adopt(slot, s);
}

}  // namespace fix
