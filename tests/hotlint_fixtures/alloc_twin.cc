// Twin of alloc_trigger: the hot path reuses a preallocated slot; no heap traffic.
namespace fix {

struct Node {
  int v = 0;
};

Node& PooledNode() {
  static Node pool;
  return pool;
}

void Stage(int v) {
  PooledNode().v = v;
}

void Deliver(int v) {  // hotlint: hot
  Stage(v);
}

}  // namespace fix
