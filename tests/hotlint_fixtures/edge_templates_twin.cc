// Twin of edge_templates_trigger: the template forwards by reference, no copy.
namespace fix {

struct Frame {
  int v = 0;
};

int sink = 0;

template <typename T>
void Forward(const T& t) {
  sink += t.v;
}

void Deliver(const Frame& f) {  // hotlint: hot
  Forward(f);
}

}  // namespace fix
