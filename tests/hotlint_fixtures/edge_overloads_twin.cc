// Twin of edge_overloads_trigger: the allocation lives in the 2-arg overload,
// which the 1-arg hot call site cannot reach.
#include <memory>

namespace fix {

void Send(int v) {
  (void)v;
}

void Send(int v, int flags) {
  auto p = std::make_unique<int>(v + flags);
  (void)p;
}

void Deliver(int v) {  // hotlint: hot
  Send(v);
}

}  // namespace fix
