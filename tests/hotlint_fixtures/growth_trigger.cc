// hot-container-growth: push_back with no prior reserve() in the same function.
#include <vector>

namespace fix {

void Collect(std::vector<int>& out, int v) {
  out.push_back(v);
}

void Deliver(std::vector<int>& out) {  // hotlint: hot
  Collect(out, 1);
}

}  // namespace fix
