// Twin of edge_virtual_trigger: every overrider in the union is clean.
namespace fix {

struct Handler {
  virtual ~Handler() = default;
  virtual void OnMessage(int v) = 0;
};

struct CountingHandler : Handler {
  int count = 0;
  void OnMessage(int v) override {
    count += v;
  }
};

struct DroppingHandler : Handler {
  void OnMessage(int v) override {
    (void)v;
  }
};

void Deliver(Handler* h, int v) {  // hotlint: hot
  h->OnMessage(v);
}

}  // namespace fix
