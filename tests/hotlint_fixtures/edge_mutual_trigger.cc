// Mutual recursion: Deliver -> Descend -> Cross -> Descend is a two-node cycle.
namespace fix {

struct Node {
  Node* left = nullptr;
  Node* right = nullptr;
  int v = 0;
};

int Cross(Node* n);

int Descend(Node* n) {
  if (n == nullptr) {
    return 0;
  }
  return n->v + Cross(n->left);
}

int Cross(Node* n) {
  if (n == nullptr) {
    return 0;
  }
  return Descend(n->right);
}

void Deliver(Node* n) {  // hotlint: hot
  (void)Descend(n);
}

}  // namespace fix
