// Virtual dispatch resolves as the conservative union over every overrider:
// if any Deliver-reachable override allocates, the chain is reported.
#include <memory>

namespace fix {

struct Handler {
  virtual ~Handler() = default;
  virtual void OnMessage(int v) = 0;
};

struct CountingHandler : Handler {
  int count = 0;
  void OnMessage(int v) override {
    count += v;
  }
};

struct JournalingHandler : Handler {
  void OnMessage(int v) override {
    auto p = std::make_unique<int>(v);
    (void)p;
  }
};

void Deliver(Handler* h, int v) {  // hotlint: hot
  h->OnMessage(v);
}

}  // namespace fix
