// Twin of stdfunction_trigger: a plain function pointer needs no type erasure.
namespace fix {

using Callback = void (*)(int);

struct Queue {
  Callback pending = nullptr;
};

void Enqueue(Queue& q, Callback fn) {
  q.pending = fn;
}

void Deliver(Queue& q) {  // hotlint: hot
  Enqueue(q, nullptr);
}

}  // namespace fix
