// hot-lock: mutex acquisition on the single-threaded deterministic hot path.
#include <mutex>

namespace fix {

struct Table {
  std::mutex mu;
  int count = 0;
};

void Bump(Table& t) {
  std::lock_guard<std::mutex> hold(t.mu);
  t.count++;
}

void Deliver(Table& t) {  // hotlint: hot
  Bump(t);
}

}  // namespace fix
