// hot-iostream: stream formatting reached transitively from the hot root.
#include <iostream>

namespace fix {

void Report(int v) {
  std::cerr << "value " << v << "\n";
}

void Audit(int v) {
  Report(v);
}

void Deliver(int v) {  // hotlint: hot
  Audit(v);
}

}  // namespace fix
