// Twin of lock_trigger: the locked maintenance sweep is cut off with a justified
// cold marker, so the hot path itself stays lock-free.
#include <mutex>

namespace fix {

struct Table {
  std::mutex mu;
  int count = 0;
};

// hotlint: cold -- maintenance sweep: runs from the admin console, never per message
void Compact(Table& t) {
  std::lock_guard<std::mutex> hold(t.mu);
  t.count = 0;
}

void Bump(Table& t) {
  t.count++;
}

void Deliver(Table& t) {  // hotlint: hot
  Bump(t);
}

}  // namespace fix
