// hot-std-function: a by-value std::function parameter converts (and allocates)
// at every hot call site, even though the body moves it.
#include <functional>
#include <utility>

namespace fix {

struct Queue {
  std::function<void()> pending;
};

void Enqueue(Queue& q, std::function<void()> fn) {
  q.pending = std::move(fn);
}

void Deliver(Queue& q) {  // hotlint: hot
  Enqueue(q, nullptr);
}

}  // namespace fix
