// Template functions participate in the call graph like any other definition.
#include <memory>

namespace fix {

struct Frame {
  int v = 0;
};

template <typename T>
void Forward(const T& t) {
  auto copy = std::make_unique<T>(t);
  (void)copy;
}

void Deliver(const Frame& f) {  // hotlint: hot
  Forward(f);
}

}  // namespace fix
