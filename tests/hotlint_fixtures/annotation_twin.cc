// Twin of annotation_trigger: every annotation is justified, known, and attached.
#include <memory>

namespace fix {

void Deliver(int v) {  // hotlint: hot
  auto p = std::make_unique<int>(v);  // hotlint: allow(hot-alloc) -- one-time warmup allocation, amortized across the run
  (void)p;
}

}  // namespace fix
