// Twin of recursion_trigger: the walk carries a justified allow on its signature
// stating the bound.
namespace fix {

struct Node {
  Node* next = nullptr;
  int v = 0;
};

int Walk(Node* n) {  // hotlint: allow(hot-recursion) -- bounded by subject depth, capped at 16 elements on insert
  if (n == nullptr) {
    return 0;
  }
  return n->v + Walk(n->next);
}

void Deliver(Node* n) {  // hotlint: hot
  (void)Walk(n);
}

}  // namespace fix
