// Overload resolution by arity: the hot site calls the 1-arg overload, and that
// overload is the one that allocates.
#include <memory>

namespace fix {

void Send(int v) {
  auto p = std::make_unique<int>(v);
  (void)p;
}

void Send(int v, int flags) {
  (void)v;
  (void)flags;
}

void Deliver(int v) {  // hotlint: hot
  Send(v);
}

}  // namespace fix
