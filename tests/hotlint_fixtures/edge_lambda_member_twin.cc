// Twin of edge_lambda_member_trigger: the callback is installed once at setup
// (not hot), and the hot path only fires it.
#include <functional>
#include <memory>

namespace fix {

struct Timer {
  std::function<void()> on_fire;
};

void Setup(Timer& t, int v) {
  t.on_fire = [v]() {
    auto p = std::make_unique<int>(v);
    (void)p;
  };
}

void Deliver(Timer& t) {  // hotlint: hot
  t.on_fire();
}

}  // namespace fix
