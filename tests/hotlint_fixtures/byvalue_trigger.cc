// hot-by-value: by-value std::string parameter and by-value container return.
#include <string>
#include <vector>

namespace fix {

std::vector<int> Expand(std::string subject) {
  (void)subject;
  return {};
}

void Deliver(const std::string& s) {  // hotlint: hot
  auto v = Expand(s);
  (void)v;
}

}  // namespace fix
