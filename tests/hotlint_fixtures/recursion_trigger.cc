// hot-recursion: a self-recursive walk reachable from the hot root.
namespace fix {

struct Node {
  Node* next = nullptr;
  int v = 0;
};

int Walk(Node* n) {
  if (n == nullptr) {
    return 0;
  }
  return n->v + Walk(n->next);
}

void Deliver(Node* n) {  // hotlint: hot
  (void)Walk(n);
}

}  // namespace fix
