// Twin of string_trigger: the hot path passes views around and never materializes.
#include <string_view>

namespace fix {

std::string_view Label(std::string_view whole) {
  return whole.substr(0, whole.find('.'));
}

void Deliver(std::string_view subject) {  // hotlint: hot
  auto s = Label(subject);
  (void)s;
}

}  // namespace fix
