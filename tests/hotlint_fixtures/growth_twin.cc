// Twin of growth_trigger: the reserve() preallocation idiom suppresses the rule.
#include <vector>

namespace fix {

void Collect(std::vector<int>& out, int v) {
  out.reserve(8);
  out.push_back(v);
}

void Deliver(std::vector<int>& out) {  // hotlint: hot
  Collect(out, 1);
}

}  // namespace fix
