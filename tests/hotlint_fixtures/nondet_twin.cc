// Twin of nondet_trigger: virtual time from the simulator, and an ordered map
// keyed by id instead of address.
#include <cstdint>
#include <map>

namespace fix {

struct Table {
  std::map<uint64_t, int> weights;
  int64_t now_us = 0;
};

int64_t Stamp(const Table& t) {
  return t.now_us;
}

void Deliver(Table& t) {  // hotlint: hot
  (void)Stamp(t);
  for (const auto& entry : t.weights) {
    (void)entry;
  }
}

}  // namespace fix
