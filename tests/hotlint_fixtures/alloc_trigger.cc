// hot-alloc: the hot root reaches a heap allocation two hops down the call graph.
#include <memory>

namespace fix {

struct Node {
  int v = 0;
};

std::unique_ptr<Node> FreshNode() { return std::make_unique<Node>(); }

void Stage(int v) {
  auto n = FreshNode();
  n->v = v;
}

void Deliver(int v) {  // hotlint: hot
  Stage(v);
}

}  // namespace fix
