#include <gtest/gtest.h>

#include "src/db/database.h"

namespace ibus {
namespace {

TableSchema PeopleSchema() {
  TableSchema s;
  s.name = "people";
  s.columns = {Column{"id", ColumnType::kText, false}, Column{"name", ColumnType::kText, false},
               Column{"age", ColumnType::kI64, true}, Column{"score", ColumnType::kF64, true},
               Column{"active", ColumnType::kBool, true}};
  s.primary_key = "id";
  return s;
}

Row Person(const char* id, const char* name, int64_t age, double score, bool active) {
  return Row{Value(std::string(id)), Value(std::string(name)), Value(age), Value(score),
             Value(active)};
}

TEST(SchemaTest, ValidationCatchesProblems) {
  TableSchema s = PeopleSchema();
  EXPECT_TRUE(s.Validate().ok());

  TableSchema empty;
  empty.name = "t";
  EXPECT_FALSE(empty.Validate().ok());

  TableSchema dup = PeopleSchema();
  dup.columns.push_back(Column{"id", ColumnType::kText, false});
  EXPECT_FALSE(dup.Validate().ok());

  TableSchema bad_pk = PeopleSchema();
  bad_pk.primary_key = "ghost";
  EXPECT_FALSE(bad_pk.Validate().ok());

  TableSchema nullable_pk = PeopleSchema();
  nullable_pk.columns[0].nullable = true;
  EXPECT_FALSE(nullable_pk.Validate().ok());
}

TEST(SchemaTest, CellChecks) {
  Column text{"c", ColumnType::kText, false};
  EXPECT_TRUE(CheckCell(text, Value("x")).ok());
  EXPECT_FALSE(CheckCell(text, Value(int64_t{1})).ok());
  EXPECT_FALSE(CheckCell(text, Value()).ok());  // NOT NULL

  Column i64{"c", ColumnType::kI64, true};
  EXPECT_TRUE(CheckCell(i64, Value(int64_t{1})).ok());
  EXPECT_TRUE(CheckCell(i64, Value(int32_t{1})).ok());  // widening
  EXPECT_TRUE(CheckCell(i64, Value()).ok());
  EXPECT_FALSE(CheckCell(i64, Value(1.5)).ok());
}

class TableTest : public ::testing::Test {
 protected:
  TableTest() : table_(PeopleSchema()) {
    EXPECT_TRUE(table_.Insert(Person("p1", "ada", 36, 9.5, true)).ok());
    EXPECT_TRUE(table_.Insert(Person("p2", "bob", 25, 7.1, false)).ok());
    EXPECT_TRUE(table_.Insert(Person("p3", "cam", 36, 8.8, true)).ok());
  }
  Table table_;
};

TEST_F(TableTest, InsertAndPkLookup) {
  EXPECT_EQ(table_.row_count(), 3u);
  auto row = table_.GetByPk(Value("p2"));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsString(), "bob");
  EXPECT_FALSE(table_.GetByPk(Value("ghost")).ok());
}

TEST_F(TableTest, DuplicatePkRejected) {
  EXPECT_EQ(table_.Insert(Person("p1", "dup", 1, 1, true)).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(TableTest, TypeMismatchRejected) {
  Row bad = Person("p4", "dee", 1, 1, true);
  bad[2] = Value("not a number");
  EXPECT_FALSE(table_.Insert(bad).ok());
  Row short_row{Value("p5")};
  EXPECT_FALSE(table_.Insert(short_row).ok());
}

TEST_F(TableTest, SelectWithPredicates) {
  auto rows = table_.Select(Predicate::Eq("age", Value(int64_t{36})));
  EXPECT_EQ(rows.size(), 2u);
  rows = table_.Select(Predicate().And("age", Predicate::Op::kGt, Value(int64_t{30})));
  EXPECT_EQ(rows.size(), 2u);
  rows = table_.Select(Predicate()
                           .And("age", Predicate::Op::kGe, Value(int64_t{25}))
                           .And("active", Predicate::Op::kEq, Value(true)));
  EXPECT_EQ(rows.size(), 2u);
  rows = table_.Select(Predicate().And("name", Predicate::Op::kPrefix, Value("b")));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].AsString(), "bob");
  rows = table_.Select(Predicate::True());
  EXPECT_EQ(rows.size(), 3u);
  rows = table_.Select(Predicate::Eq("ghost_column", Value(int64_t{1})));
  EXPECT_TRUE(rows.empty());
}

TEST_F(TableTest, UpdateByPk) {
  ASSERT_TRUE(table_.UpdateByPk(Value("p2"), Person("p2", "bobby", 26, 7.5, true)).ok());
  auto row = table_.GetByPk(Value("p2"));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsString(), "bobby");
  // Changing the pk in an update is rejected.
  EXPECT_FALSE(table_.UpdateByPk(Value("p2"), Person("p9", "x", 1, 1, true)).ok());
  EXPECT_FALSE(table_.UpdateByPk(Value("ghost"), Person("ghost", "x", 1, 1, true)).ok());
}

TEST_F(TableTest, DeleteByPkAndReuse) {
  ASSERT_TRUE(table_.DeleteByPk(Value("p2")).ok());
  EXPECT_EQ(table_.row_count(), 2u);
  EXPECT_FALSE(table_.GetByPk(Value("p2")).ok());
  EXPECT_FALSE(table_.DeleteByPk(Value("p2")).ok());
  // The freed slot is reused.
  ASSERT_TRUE(table_.Insert(Person("p4", "dan", 40, 5.0, false)).ok());
  EXPECT_EQ(table_.row_count(), 3u);
  EXPECT_EQ(table_.Select(Predicate::True()).size(), 3u);
}

TEST_F(TableTest, SecondaryIndexServesEqualityQueries) {
  ASSERT_TRUE(table_.CreateIndex("age").ok());
  EXPECT_TRUE(table_.HasIndex("age"));
  auto rows = table_.Select(Predicate::Eq("age", Value(int64_t{36})));
  EXPECT_EQ(rows.size(), 2u);
  // Index stays correct across mutation.
  ASSERT_TRUE(table_.DeleteByPk(Value("p1")).ok());
  rows = table_.Select(Predicate::Eq("age", Value(int64_t{36})));
  EXPECT_EQ(rows.size(), 1u);
  ASSERT_TRUE(table_.Insert(Person("p9", "zoe", 36, 2.0, true)).ok());
  rows = table_.Select(Predicate::Eq("age", Value(int64_t{36})));
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(TableTest, DeleteWhere) {
  ASSERT_TRUE(table_.DeleteWhere(Predicate::Eq("active", Value(true))).ok());
  EXPECT_EQ(table_.row_count(), 1u);
  EXPECT_EQ(table_.Select(Predicate::True())[0][1].AsString(), "bob");
}

TEST(DatabaseTest, TableLifecycle) {
  Database db;
  ASSERT_TRUE(db.CreateTable(PeopleSchema()).ok());
  EXPECT_TRUE(db.HasTable("people"));
  EXPECT_EQ(db.CreateTable(PeopleSchema()).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"people"}));
  ASSERT_TRUE(db.Insert("people", Person("p1", "ada", 36, 9.5, true)).ok());
  auto rows = db.Select("people", Predicate::True());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  EXPECT_FALSE(db.Insert("ghost", Row{}).ok());
  EXPECT_FALSE(db.Select("ghost", Predicate::True()).ok());
  ASSERT_TRUE(db.DropTable("people").ok());
  EXPECT_FALSE(db.HasTable("people"));
  EXPECT_FALSE(db.DropTable("people").ok());
}

TEST(DatabaseTest, NoPkTableScansStillWork) {
  TableSchema s;
  s.name = "log";
  s.columns = {Column{"line", ColumnType::kText, false}};
  Database db;
  ASSERT_TRUE(db.CreateTable(s).ok());
  Table* t = db.GetTable("log");
  ASSERT_TRUE(t->Insert(Row{Value("a")}).ok());
  ASSERT_TRUE(t->Insert(Row{Value("b")}).ok());
  EXPECT_EQ(t->Select(Predicate::True()).size(), 2u);
  EXPECT_FALSE(t->GetByPk(Value("a")).ok());  // no pk defined
  ASSERT_TRUE(t->DeleteWhere(Predicate::Eq("line", Value("a"))).ok());
  EXPECT_EQ(t->row_count(), 1u);
}

}  // namespace
}  // namespace ibus

namespace ibus {
namespace {

class QueryOptionsTest : public ::testing::Test {
 protected:
  QueryOptionsTest() : table_(PeopleSchema()) {
    table_.Insert(Person("p1", "ada", 36, 9.5, true)).ok();
    table_.Insert(Person("p2", "bob", 25, 7.1, false)).ok();
    table_.Insert(Person("p3", "cam", 36, 8.8, true)).ok();
    table_.Insert(Person("p4", "dee", 52, 6.0, false)).ok();
    Row no_age = Person("p5", "eve", 0, 5.5, true);
    no_age[2] = Value();  // NULL age
    table_.Insert(no_age).ok();
  }
  Table table_;
};

TEST_F(QueryOptionsTest, OrderByAscendingAndDescending) {
  QueryOptions opt;
  opt.order_by = "age";
  auto rows = table_.Select(Predicate::True(), opt);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 5u);
  EXPECT_TRUE((*rows)[0][2].is_null());  // NULLs first ascending
  EXPECT_EQ((*rows)[1][2].AsI64(), 25);
  EXPECT_EQ((*rows)[4][2].AsI64(), 52);

  opt.descending = true;
  rows = table_.Select(Predicate::True(), opt);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][2].AsI64(), 52);
  EXPECT_TRUE((*rows)[4][2].is_null());  // NULLs last descending
}

TEST_F(QueryOptionsTest, OrderIsStableForTies) {
  QueryOptions opt;
  opt.order_by = "age";
  auto rows = table_.Select(Predicate::True(), opt);
  ASSERT_TRUE(rows.ok());
  // ada (p1) and cam (p3) both 36: insertion order preserved.
  EXPECT_EQ((*rows)[2][0].AsString(), "p1");
  EXPECT_EQ((*rows)[3][0].AsString(), "p3");
}

TEST_F(QueryOptionsTest, LimitAndProjection) {
  QueryOptions opt;
  opt.order_by = "score";
  opt.descending = true;
  opt.limit = 2;
  opt.projection = {"name", "score"};
  auto rows = table_.Select(Predicate::True(), opt);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  ASSERT_EQ((*rows)[0].size(), 2u);
  EXPECT_EQ((*rows)[0][0].AsString(), "ada");
  EXPECT_DOUBLE_EQ((*rows)[0][1].AsF64(), 9.5);
  EXPECT_EQ((*rows)[1][0].AsString(), "cam");
}

TEST_F(QueryOptionsTest, UnknownColumnsRejected) {
  QueryOptions opt;
  opt.order_by = "ghost";
  EXPECT_FALSE(table_.Select(Predicate::True(), opt).ok());
  opt.order_by = "";
  opt.projection = {"name", "ghost"};
  EXPECT_FALSE(table_.Select(Predicate::True(), opt).ok());
}

TEST_F(QueryOptionsTest, Aggregates) {
  auto count = table_.Aggregate(Predicate::True(), "age", AggregateOp::kCount);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->AsI64(), 4);  // NULL age excluded

  auto sum = table_.Aggregate(Predicate::True(), "age", AggregateOp::kSum);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum->AsF64(), 36 + 25 + 36 + 52);

  auto avg = table_.Aggregate(Predicate::True(), "score", AggregateOp::kAvg);
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(avg->AsF64(), (9.5 + 7.1 + 8.8 + 6.0 + 5.5) / 5, 1e-9);

  auto min = table_.Aggregate(Predicate::True(), "name", AggregateOp::kMin);
  ASSERT_TRUE(min.ok());
  EXPECT_EQ(min->AsString(), "ada");
  auto max = table_.Aggregate(Predicate::True(), "age", AggregateOp::kMax);
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(max->AsI64(), 52);

  // Aggregates respect the predicate.
  auto active_count = table_.Aggregate(Predicate::Eq("active", Value(true)), "age",
                                       AggregateOp::kCount);
  ASSERT_TRUE(active_count.ok());
  EXPECT_EQ(active_count->AsI64(), 2);

  // SUM over text fails; aggregates over empty sets are NULL (except COUNT=0).
  EXPECT_FALSE(table_.Aggregate(Predicate::True(), "name", AggregateOp::kSum).ok());
  auto empty_avg = table_.Aggregate(Predicate::Eq("name", Value("nobody")), "age",
                                    AggregateOp::kAvg);
  ASSERT_TRUE(empty_avg.ok());
  EXPECT_TRUE(empty_avg->is_null());
  EXPECT_FALSE(table_.Aggregate(Predicate::True(), "ghost", AggregateOp::kCount).ok());
}

}  // namespace
}  // namespace ibus
