// Property tests for the self-describing object codec and the Object Repository
// mapper: randomly generated objects must survive a wire round trip and a relational
// decompose/recompose round trip bit-exactly; corrupt or truncated buffers must be
// rejected, never crash.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/db/database.h"
#include "src/repo/repository.h"
#include "src/types/codec.h"
#include "src/types/registry.h"

namespace ibus {
namespace {

// State threaded through the generators: `type_salt` makes every generated type name
// unique (one consistent shape per name, which the repository mapper requires).
struct GenState {
  Rng rng;
  std::string prefix = "t";
  uint64_t type_salt = 0;
};

Value RandomValue(GenState& g, int depth);

DataObjectPtr RandomObject(GenState& g, int depth) {
  auto obj = std::make_shared<DataObject>(g.prefix + std::to_string(g.type_salt++));
  size_t attrs = g.rng.NextBelow(6);
  for (size_t i = 0; i < attrs; ++i) {
    obj->AddAttribute("a" + std::to_string(i), RandomValue(g, depth - 1));
  }
  if (g.rng.Chance(0.3)) {
    obj->SetProperty("p" + std::to_string(g.rng.NextBelow(3)), RandomValue(g, depth - 1));
  }
  return obj;
}

Value RandomValue(GenState& g, int depth) {
  Rng& rng = g.rng;
  uint64_t kind = rng.NextBelow(depth > 0 ? 9 : 7);
  switch (kind) {
    case 0:
      return Value();
    case 1:
      return Value(rng.Chance(0.5));
    case 2:
      return Value(static_cast<int32_t>(rng.NextU64()));
    case 3:
      return Value(static_cast<int64_t>(rng.NextU64()));
    case 4:
      return Value(rng.NextDouble() * 1e6);
    case 5: {
      std::string s;
      size_t len = rng.NextBelow(20);
      for (size_t i = 0; i < len; ++i) {
        s += static_cast<char>('a' + rng.NextBelow(26));
      }
      return Value(std::move(s));
    }
    case 6: {
      Bytes b(rng.NextBelow(30));
      for (uint8_t& x : b) {
        x = static_cast<uint8_t>(rng.NextU64());
      }
      return Value(std::move(b));
    }
    case 7: {
      Value::List l;
      size_t n = rng.NextBelow(4);
      for (size_t i = 0; i < n; ++i) {
        l.push_back(RandomValue(g, depth - 1));
      }
      return Value(std::move(l));
    }
    default:
      return Value(RandomObject(g, depth - 1));
  }
}

class CodecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecPropertyTest, RandomObjectsRoundTripOnTheWire) {
  GenState g{Rng(GetParam())};
  for (int trial = 0; trial < 200; ++trial) {
    DataObjectPtr obj = RandomObject(g, 3);
    Bytes wire = MarshalObject(*obj);
    auto back = UnmarshalObject(wire);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(**back, *obj);
  }
}

TEST_P(CodecPropertyTest, TruncationNeverCrashes) {
  GenState g{Rng(GetParam() ^ 0xF00D)};
  for (int trial = 0; trial < 100; ++trial) {
    DataObjectPtr obj = RandomObject(g, 3);
    Bytes wire = MarshalObject(*obj);
    if (wire.empty()) {
      continue;
    }
    // Every strict prefix must fail cleanly.
    for (size_t cut : {wire.size() / 4, wire.size() / 2, wire.size() - 1}) {
      Bytes truncated(wire.begin(), wire.begin() + static_cast<ptrdiff_t>(cut));
      auto result = UnmarshalObject(truncated);
      if (result.ok()) {
        // Extremely unlikely but possible if the cut lands on a boundary *and* the
        // remaining prefix is a valid object; equality then must not hold with extra
        // trailing data — UnmarshalObject(Bytes) rejects trailing bytes, so ok()
        // means the prefix was exactly a valid encoding. Accept it.
        continue;
      }
      EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
    }
  }
}

TEST_P(CodecPropertyTest, RandomBitFlipsAreRejectedOrEquivalent) {
  GenState g{Rng(GetParam() ^ 0xBEEF)};
  for (int trial = 0; trial < 100; ++trial) {
    DataObjectPtr obj = RandomObject(g, 2);
    Bytes wire = MarshalObject(*obj);
    if (wire.empty()) {
      continue;
    }
    Bytes corrupted = wire;
    corrupted[g.rng.NextBelow(corrupted.size())] ^=
        static_cast<uint8_t>(1 + g.rng.NextBelow(255));
    // Must not crash; may decode to a different object or fail.
    auto result = UnmarshalObject(corrupted);
    (void)result;
  }
}

TEST_P(CodecPropertyTest, MapperRoundTripsRandomObjects) {
  // The repository derives one schema per type name, so every generated type name is
  // unique (GenState::type_salt) and keyed by the seed.
  GenState g{Rng(GetParam() ^ 0xCAFE), "rnd" + std::to_string(GetParam()) + "_"};
  TypeRegistry registry;
  Database db;
  Repository repo(&registry, &db);
  for (int trial = 0; trial < 100; ++trial) {
    auto obj = std::make_shared<DataObject>(g.prefix + "top" + std::to_string(trial));
    size_t attrs = 1 + g.rng.NextBelow(5);
    for (size_t i = 0; i < attrs; ++i) {
      obj->AddAttribute("a" + std::to_string(i), RandomValue(g, 2));
    }
    auto id = repo.Store(*obj);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    auto back = repo.Load(obj->type_name(), *id);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(**back, *obj) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest,
                         ::testing::Values(7u, 1001u, 424242u));

}  // namespace
}  // namespace ibus
