// Tests for the telemetry subsystem: histogram bucket/percentile math, the metrics
// registry, trace-context propagation through the wire format, reserved-namespace
// enforcement at the publish boundary, and end-to-end hop timelines reconstructed by
// a TraceCollector from spans carried over the bus itself.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/bus/certified.h"
#include "src/journal/journal.h"
#include "src/router/router.h"
#include "src/sim/stable_store.h"
#include "src/telemetry/collector.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "tests/bus_fixture.h"

namespace ibus {
namespace {

using telemetry::HopKind;
using telemetry::HopRecord;
using telemetry::LatencyHistogram;
using telemetry::MetricsRegistry;
using telemetry::TraceCollector;

// --- Histogram math ----------------------------------------------------------------

TEST(LatencyHistogramTest, BucketBoundaries) {
  EXPECT_EQ(LatencyHistogram::BucketOf(-5), 0u);
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketOf(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketOf(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketOf(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1023), 10u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1024), 11u);
  EXPECT_EQ(LatencyHistogram::BucketUpper(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketUpper(2), 3);
  EXPECT_EQ(LatencyHistogram::BucketUpper(10), 1023);
  // Every value lands in the bucket whose upper bound is >= the value.
  for (int64_t v : {0, 1, 7, 100, 4096, 1000000}) {
    EXPECT_GE(LatencyHistogram::BucketUpper(LatencyHistogram::BucketOf(v)), v);
  }
}

TEST(LatencyHistogramTest, PercentilesAreBucketUpperBounds) {
  LatencyHistogram h;
  for (int64_t v = 1; v <= 8; ++v) {
    h.Record(v);
  }
  // Buckets: {1}, {2,3}, {4..7}, {8}. The median rank (4) falls in the [4,7] bucket.
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 8);
  EXPECT_EQ(h.p50(), 7);
  EXPECT_EQ(h.p90(), 15);
  EXPECT_EQ(h.p99(), 15);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.5);
}

TEST(LatencyHistogramTest, EmptyHistogramReadsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.p50(), 0);
  EXPECT_EQ(h.p99(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleDrivesEveryPercentile) {
  LatencyHistogram h;
  h.Record(300);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 300);
  EXPECT_EQ(h.max(), 300);
  // Every percentile reports the one occupied bucket's upper bound ([256, 511]).
  EXPECT_EQ(h.p50(), 511);
  EXPECT_EQ(h.p90(), 511);
  EXPECT_EQ(h.p99(), 511);
  EXPECT_DOUBLE_EQ(h.Mean(), 300.0);

  // A single zero/negative sample stays pinned to bucket 0.
  LatencyHistogram z;
  z.Record(-7);
  EXPECT_EQ(z.count(), 1u);
  EXPECT_EQ(z.p50(), 0);
  EXPECT_EQ(z.p99(), 0);
}

TEST(LatencyHistogramTest, PercentilesAreMonotoneInRank) {
  // Skewed population across several buckets: quantile ordering must hold.
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) {
    h.Record(100);
  }
  for (int i = 0; i < 9; ++i) {
    h.Record(5000);
  }
  h.Record(200000);
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_LE(h.p99(), h.Percentile(1.0));
  EXPECT_LE(h.Percentile(0.0), h.p50());
  // The tail sample is only visible at the very top of the distribution.
  EXPECT_LT(h.p90(), LatencyHistogram::BucketUpper(LatencyHistogram::BucketOf(200000)));
  EXPECT_EQ(h.Percentile(1.0), LatencyHistogram::BucketUpper(LatencyHistogram::BucketOf(200000)));
}

// --- Registry ----------------------------------------------------------------------

TEST(MetricsRegistryTest, InstrumentsHaveStableIdentity) {
  MetricsRegistry reg;
  telemetry::Counter* c = reg.GetCounter("bus.publishes");
  c->Inc();
  c->Inc(4);
  EXPECT_EQ(reg.GetCounter("bus.publishes"), c);  // same name -> same instrument
  EXPECT_EQ(reg.CounterValue("bus.publishes"), 5u);
  EXPECT_EQ(reg.CounterValue("no.such.counter"), 0u);

  telemetry::Gauge* g = reg.GetGauge("bus.subscriptions");
  g->Set(3);
  g->Add(-1);
  EXPECT_EQ(reg.GaugeValue("bus.subscriptions"), 2);

  LatencyHistogram* h = reg.GetHistogram("rmi.rtt");
  h->Record(10);
  ASSERT_NE(reg.FindHistogram("rmi.rtt"), nullptr);
  EXPECT_EQ(reg.FindHistogram("missing"), nullptr);

  std::string text = reg.RenderText();
  EXPECT_NE(text.find("bus.publishes 5"), std::string::npos) << text;
  EXPECT_NE(text.find("bus.subscriptions 2"), std::string::npos) << text;
  EXPECT_NE(text.find("rmi.rtt"), std::string::npos) << text;
}

// --- Hop records over the wire -----------------------------------------------------

TEST(HopRecordTest, RoundTrip) {
  HopRecord rec;
  rec.trace_id = 0xDEADBEEF01ull;
  rec.hop = 2;
  rec.kind = HopKind::kRouterForward;
  rec.node = "_router:A";
  rec.subject = "news.equity.gmc";
  rec.at_us = 123456;
  rec.certified_id = 9;
  auto back = HopRecord::Unmarshal(rec.Marshal());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->trace_id, rec.trace_id);
  EXPECT_EQ(back->hop, 2);
  EXPECT_EQ(back->kind, HopKind::kRouterForward);
  EXPECT_EQ(back->node, "_router:A");
  EXPECT_EQ(back->subject, "news.equity.gmc");
  EXPECT_EQ(back->at_us, 123456);
  EXPECT_EQ(back->certified_id, 9u);
  EXPECT_NE(back->ToString().find("router_forward"), std::string::npos);
}

TEST(HopRecordTest, TruncationAndBadKindRejected) {
  HopRecord rec;
  rec.kind = HopKind::kDeliver;
  Bytes wire = rec.Marshal();
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(HopRecord::Unmarshal(wire).ok());

  Bytes bad_kind = rec.Marshal();
  bad_kind[8 + 1] = 99;  // kind byte follows the u64 trace id and u8 hop
  EXPECT_FALSE(HopRecord::Unmarshal(bad_kind).ok());
}

// --- Reserved namespace at the publish boundary ------------------------------------

class TelemetryBusTest : public BusFixture {};

TEST_F(TelemetryBusTest, ApplicationPublishesCannotEnterReservedNamespace) {
  SetUpBus(1);
  auto client = MakeClient(0, "app");
  EXPECT_FALSE(client->Publish(std::string(kReservedStatsPrefix) + "x", ToBytes("p")).ok());
  EXPECT_FALSE(client->Publish(std::string(kReservedTracePrefix) + "hop.publish",
                               ToBytes("p")).ok());
  // Lookalike roots are ordinary application subjects.
  EXPECT_TRUE(client->Publish("_ibusx.foo", ToBytes("p")).ok());

  Message internal;
  internal.subject = std::string(kReservedStatsPrefix) + "x";
  internal.payload = ToBytes("p");
  EXPECT_TRUE(client->PublishInternal(std::move(internal)).ok());
}

#if IBUS_TELEMETRY

// --- End-to-end tracing on one LAN -------------------------------------------------

TEST_F(TelemetryBusTest, TracedPublishYieldsFullHopTimeline) {
  BusConfig config;
  config.trace_publishes = true;
  config.trace_sample_period = 1;
  SetUpBus(3, config);
  auto monitor = MakeClient(0, "monitor");
  auto collector = TraceCollector::Create(monitor.get());
  ASSERT_TRUE(collector.ok()) << collector.status().ToString();

  auto sub = MakeClient(2, "consumer");
  int got = 0;
  ASSERT_TRUE(sub->Subscribe("news.>", [&](const Message&) { ++got; }).ok());
  Settle(200 * kMillisecond);

  auto pub = MakeClient(1, "producer");
  ASSERT_TRUE(pub->Publish("news.equity.gmc", ToBytes("GM +3%")).ok());
  Settle();

  EXPECT_EQ(got, 1);
  ASSERT_EQ((*collector)->trace_count(), 1u);
  uint64_t id = (*collector)->trace_ids()[0];
  std::vector<HopRecord> timeline = (*collector)->Timeline(id);
  ASSERT_GE(timeline.size(), 4u) << (*collector)->RenderTimeline(id);

  std::set<HopKind> kinds;
  for (const HopRecord& h : timeline) {
    kinds.insert(h.kind);
    EXPECT_EQ(h.trace_id, id);
    EXPECT_EQ(h.subject, "news.equity.gmc");
  }
  EXPECT_TRUE(kinds.count(HopKind::kPublish));
  EXPECT_TRUE(kinds.count(HopKind::kWireSend));
  EXPECT_TRUE(kinds.count(HopKind::kDispatch));
  EXPECT_TRUE(kinds.count(HopKind::kDeliver));
  // Timestamps are monotone along the path and the first hop is the publish.
  for (size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_LE(timeline[i - 1].at_us, timeline[i].at_us);
  }
  EXPECT_EQ(timeline.front().kind, HopKind::kPublish);
  EXPECT_EQ(timeline.front().node, "producer");

  auto hists = (*collector)->HopLatencyHistograms();
  EXPECT_GE(hists[HopKind::kDeliver].count(), 1u);

  std::string rendered = (*collector)->RenderTimeline(id);
  EXPECT_NE(rendered.find("publish"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("deliver"), std::string::npos) << rendered;
}

TEST_F(TelemetryBusTest, UntracedAndInternalTrafficEmitsNoSpans) {
  BusConfig config;
  config.trace_publishes = true;
  config.trace_sample_period = 1;
  SetUpBus(2, config);
  auto monitor = MakeClient(0, "monitor");
  auto collector = TraceCollector::Create(monitor.get());
  ASSERT_TRUE(collector.ok());

  auto pub = MakeClient(1, "producer");
  // '_'-rooted application subjects (inboxes etc.) are never auto-traced, and
  // internal publishes never originate a trace.
  ASSERT_TRUE(pub->Publish("_inbox.h1.p5000.1", ToBytes("r")).ok());
  Message m;
  m.subject = std::string(kReservedStatsPrefix) + "host1";
  m.payload = ToBytes("s");
  ASSERT_TRUE(pub->PublishInternal(std::move(m)).ok());
  Settle();
  EXPECT_EQ((*collector)->trace_count(), 0u);
  EXPECT_EQ((*collector)->records_received(), 0u);
}

TEST_F(TelemetryBusTest, CollectorEvictsLeastRecentTraceAtCap) {
  BusConfig config;
  config.trace_publishes = true;
  config.trace_sample_period = 1;
  SetUpBus(2, config);
  auto monitor = MakeClient(0, "monitor");
  telemetry::TraceCollectorOptions options;
  options.max_traces = 0;
  EXPECT_EQ(TraceCollector::Create(monitor.get(), options).status().code(),
            StatusCode::kInvalidArgument);

  options.max_traces = 2;
  auto collector = TraceCollector::Create(monitor.get(), options);
  ASSERT_TRUE(collector.ok()) << collector.status().ToString();

  auto sub = MakeClient(1, "consumer");
  ASSERT_TRUE(sub->Subscribe("news.>", [](const Message&) {}).ok());
  Settle(200 * kMillisecond);

  auto pub = MakeClient(1, "producer");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pub->Publish("news.item" + std::to_string(i), ToBytes("x")).ok());
    Settle(1 * kSecond);  // each trace completes before the next starts
  }

  // Three traces flowed through a 2-deep collector: the oldest was evicted.
  EXPECT_EQ((*collector)->trace_count(), 2u);
  EXPECT_EQ((*collector)->evictions(), 1u);
  std::set<std::string> kept_subjects;
  for (uint64_t id : (*collector)->trace_ids()) {
    for (const HopRecord& h : (*collector)->Timeline(id)) {
      kept_subjects.insert(h.subject);
    }
  }
  EXPECT_EQ(kept_subjects.count("news.item0"), 0u);
  EXPECT_EQ(kept_subjects.count("news.item1"), 1u);
  EXPECT_EQ(kept_subjects.count("news.item2"), 1u);
}

TEST_F(TelemetryBusTest, CollectorEvictionUnderSamplingTracksSampledSubsetOnly) {
  BusConfig config;
  config.trace_publishes = true;
  config.trace_sample_period = 4;
  SetUpBus(2, config);
  auto monitor = MakeClient(0, "monitor");
  telemetry::TraceCollectorOptions options;
  options.max_traces = 2;
  auto collector = TraceCollector::Create(monitor.get(), options);
  ASSERT_TRUE(collector.ok()) << collector.status().ToString();

  auto sub = MakeClient(1, "consumer");
  ASSERT_TRUE(sub->Subscribe("news.>", [](const Message&) {}).ok());
  Settle(200 * kMillisecond);

  auto pub = MakeClient(1, "producer");
  constexpr int kPublishes = 64;
  for (int i = 0; i < kPublishes; ++i) {
    ASSERT_TRUE(pub->Publish("news.item" + std::to_string(i), ToBytes("x")).ok());
    Settle(1 * kSecond);  // each trace completes before the next starts
  }

  // Mirror the publisher's candidate-id scheme (stable client id, 1-based ordinal)
  // to predict exactly which publishes the hash sampled.
  uint64_t sampled = 0;
  for (uint64_t ordinal = 1; ordinal <= kPublishes; ++ordinal) {
    const uint64_t candidate = (pub->client_id() << 20) | ordinal;
    if (telemetry::ShouldSampleTrace(candidate, config.trace_sample_period)) {
      sampled++;
    }
  }
  EXPECT_GT(sampled, options.max_traces);  // enough sampled traffic to force eviction
  EXPECT_LT(sampled, kPublishes / 2u);     // but the sampler really did thin the stream

  // The cap and the eviction counter see only the sampled subset: untraced
  // publishes never reach the collector, so they neither occupy slots nor evict.
  EXPECT_EQ((*collector)->trace_count(), options.max_traces);
  EXPECT_EQ((*collector)->evictions(), sampled - options.max_traces);
  for (uint64_t id : (*collector)->trace_ids()) {
    EXPECT_TRUE(telemetry::ShouldSampleTrace(id, config.trace_sample_period)) << id;
  }
}

// --- Certified publish across the WAN under loss -----------------------------------

TEST(TelemetryWanTest, CertifiedWanTraceIsComplete) {
  Simulator sim;
  Network net(&sim, 42);
  SegmentId lan_a = net.AddSegment();
  SegmentId lan_b = net.AddSegment();
  HostId a0 = net.AddHost("a0", lan_a);
  HostId a1 = net.AddHost("a1", lan_a);
  HostId b0 = net.AddHost("b0", lan_b);
  HostId b1 = net.AddHost("b1", lan_b);
  BusConfig config;
  config.trace_publishes = true;
  config.trace_sample_period = 1;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  for (HostId h : {a0, a1, b0, b1}) {
    auto d = BusDaemon::Start(&net, h, config);
    ASSERT_TRUE(d.ok());
    daemons.push_back(d.take());
  }
  auto connect = [&](HostId h, const std::string& name) {
    auto c = BusClient::Connect(&net, h, name, config);
    EXPECT_TRUE(c.ok());
    return c.take();
  };
  auto router_bus_a = connect(a0, "_router:A");
  auto router_bus_b = connect(b0, "_router:B");
  auto ra = InfoRouter::Listen(router_bus_a.get(), "_router:A", 8700);
  ASSERT_TRUE(ra.ok());
  sim.RunFor(50 * kMillisecond);
  auto rb = InfoRouter::Connect(router_bus_b.get(), "_router:B", a0, 8700);
  ASSERT_TRUE(rb.ok());
  sim.RunFor(200 * kMillisecond);

  auto monitor_bus = connect(b0, "monitor");
  auto collector = TraceCollector::Create(monitor_bus.get());
  ASSERT_TRUE(collector.ok());

  auto sub_bus = connect(b1, "consumer");
  int got = 0;
  auto sub = CertifiedSubscriber::Create(sub_bus.get(), "orders.>", "consumer",
                                         [&](const Message&) { ++got; });
  ASSERT_TRUE(sub.ok());
  sim.RunFor(500 * kMillisecond);  // subscription + advert cross the WAN

  // Loss goes up only after the control plane settles, as in sim_replay_check.
  FaultPlan faults;
  faults.drop_prob = 0.10;
  faults.jitter_us = 300;
  net.SetFaultPlan(lan_a, faults);
  net.SetFaultPlan(lan_b, faults);

  auto pub_bus = connect(a1, "producer");
  MemoryStableStore store;
  journal::JournalConfig ledger_config;
  ledger_config.sim = &sim;  // write-through: legacy stable-write timing
  auto ledger = journal::Journal::Open(&store, ledger_config).take();
  auto pub = CertifiedPublisher::Create(pub_bus.get(), ledger.get(), "orders-ledger");
  ASSERT_TRUE(pub.ok());
  ASSERT_TRUE((*pub)->Publish("orders.new", ToBytes("order0")).ok());
  sim.RunFor(5 * kSecond);

  EXPECT_EQ(got, 1);
  EXPECT_EQ((*pub)->pending(), 0u);  // retired: the ack crossed back over the WAN
  EXPECT_GE((*pub)->retire_latency().count(), 1u);

  // At least one trace must show the complete client -> daemon -> router -> daemon
  // -> subscriber path (retransmissions may add additional partial traces).
  ASSERT_GE((*collector)->trace_count(), 1u);
  bool complete = false;
  for (uint64_t id : (*collector)->trace_ids()) {
    std::set<HopKind> kinds;
    for (const HopRecord& h : (*collector)->Timeline(id)) {
      kinds.insert(h.kind);
    }
    if (kinds.count(HopKind::kPublish) && kinds.count(HopKind::kWireSend) &&
        kinds.count(HopKind::kRouterForward) && kinds.count(HopKind::kRouterRepublish) &&
        kinds.count(HopKind::kDispatch) && kinds.count(HopKind::kDeliver)) {
      complete = true;
      EXPECT_GT((*collector)->TimelineHash(id), 0u);
    }
  }
  EXPECT_TRUE(complete) << "no complete WAN timeline; traces:\n"
                        << [&] {
                             std::string all;
                             for (uint64_t id : (*collector)->trace_ids()) {
                               all += (*collector)->RenderTimeline(id) + "\n";
                             }
                             return all;
                           }();
}

#endif  // IBUS_TELEMETRY

}  // namespace
}  // namespace ibus
