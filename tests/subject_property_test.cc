// Property tests for subject matching: the trie must agree exactly with brute-force
// pattern evaluation on randomly generated pattern/subject populations, and
// PatternCovers must be sound with respect to SubjectMatches.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/subject/subject.h"
#include "src/subject/trie.h"

namespace ibus {
namespace {

std::string RandomSubject(Rng& rng, int max_depth) {
  int depth = 1 + static_cast<int>(rng.NextBelow(static_cast<uint64_t>(max_depth)));
  std::string s;
  for (int i = 0; i < depth; ++i) {
    if (i != 0) {
      s += '.';
    }
    // Small element alphabet so collisions (and therefore matches) are common.
    s += "e" + std::to_string(rng.NextBelow(5));
  }
  return s;
}

std::string RandomPattern(Rng& rng, int max_depth) {
  int depth = 1 + static_cast<int>(rng.NextBelow(static_cast<uint64_t>(max_depth)));
  std::string s;
  for (int i = 0; i < depth; ++i) {
    if (i != 0) {
      s += '.';
    }
    uint64_t roll = rng.NextBelow(10);
    if (roll == 0 && i == depth - 1) {
      s += '>';
      return s;
    }
    if (roll <= 2) {
      s += '*';
    } else {
      s += "e" + std::to_string(rng.NextBelow(5));
    }
  }
  return s;
}

class SubjectPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SubjectPropertyTest, TrieAgreesWithBruteForce) {
  Rng rng(GetParam());
  SubjectTrie trie;
  std::vector<std::string> patterns;
  for (uint64_t i = 0; i < 200; ++i) {
    std::string p = RandomPattern(rng, 5);
    ASSERT_TRUE(trie.Insert(p, i).ok()) << p;
    patterns.push_back(p);
  }
  for (int trial = 0; trial < 300; ++trial) {
    std::string subject = RandomSubject(rng, 6);
    std::vector<uint64_t> trie_hits = trie.Match(subject);
    std::sort(trie_hits.begin(), trie_hits.end());
    std::vector<uint64_t> brute_hits;
    for (uint64_t i = 0; i < patterns.size(); ++i) {
      if (SubjectMatches(patterns[i], subject)) {
        brute_hits.push_back(i);
      }
    }
    ASSERT_EQ(trie_hits, brute_hits) << "subject=" << subject;
    EXPECT_EQ(trie.MatchesAny(subject), !brute_hits.empty());
  }
}

TEST_P(SubjectPropertyTest, TrieRemovalRestoresBruteForceAgreement) {
  Rng rng(GetParam() ^ 0xABCD);
  SubjectTrie trie;
  std::vector<std::pair<std::string, bool>> patterns;  // (pattern, still present)
  for (uint64_t i = 0; i < 120; ++i) {
    std::string p = RandomPattern(rng, 4);
    ASSERT_TRUE(trie.Insert(p, i).ok());
    patterns.emplace_back(p, true);
  }
  // Remove a random half.
  for (uint64_t i = 0; i < patterns.size(); ++i) {
    if (rng.Chance(0.5)) {
      ASSERT_TRUE(trie.Remove(patterns[i].first, i));
      patterns[i].second = false;
    }
  }
  for (int trial = 0; trial < 200; ++trial) {
    std::string subject = RandomSubject(rng, 5);
    std::vector<uint64_t> trie_hits = trie.Match(subject);
    std::sort(trie_hits.begin(), trie_hits.end());
    std::vector<uint64_t> brute_hits;
    for (uint64_t i = 0; i < patterns.size(); ++i) {
      if (patterns[i].second && SubjectMatches(patterns[i].first, subject)) {
        brute_hits.push_back(i);
      }
    }
    ASSERT_EQ(trie_hits, brute_hits) << "subject=" << subject;
  }
}

TEST_P(SubjectPropertyTest, PatternCoversIsSound) {
  // If PatternCovers(wide, narrow), every subject matched by narrow must be matched
  // by wide (soundness; completeness is not required of the implementation).
  Rng rng(GetParam() ^ 0x5EED);
  for (int trial = 0; trial < 400; ++trial) {
    std::string wide = RandomPattern(rng, 4);
    std::string narrow = RandomPattern(rng, 4);
    if (!PatternCovers(wide, narrow)) {
      continue;
    }
    for (int s = 0; s < 100; ++s) {
      std::string subject = RandomSubject(rng, 5);
      if (SubjectMatches(narrow, subject)) {
        EXPECT_TRUE(SubjectMatches(wide, subject))
            << wide << " claims to cover " << narrow << " but misses " << subject;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubjectPropertyTest,
                         ::testing::Values(1u, 42u, 1234u, 987654321u));

}  // namespace
}  // namespace ibus
