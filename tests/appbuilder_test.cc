#include <gtest/gtest.h>

#include "src/appbuilder/app_builder.h"
#include "src/rmi/server.h"
#include "tests/bus_fixture.h"

namespace ibus {
namespace {

std::shared_ptr<DynamicService> EchoService() {
  auto svc = std::make_shared<DynamicService>("echo_service");
  OperationDef echo;
  echo.name = "echo";
  echo.result_type = "string";
  echo.params = {ParamDef{"text", "string"}};
  svc->AddOperation(echo, [](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1 || !args[0].is_string()) {
      return InvalidArgument("echo(text)");
    }
    return Value("echo: " + args[0].AsString());
  });
  return svc;
}

class AppBuilderTest : public BusFixture {
 protected:
  void SetUp() override { SetUpBus(3); }
  TypeRegistry registry_;
};

TEST_F(AppBuilderTest, ScriptPublishesAndSubscribes) {
  auto bus_a = MakeClient(0, "app-a");
  auto bus_b = MakeClient(1, "app-b");
  AppBuilder app_a(bus_a.get(), &registry_);
  AppBuilder app_b(bus_b.get(), &registry_);

  // Receiver app: define the class, subscribe, display what arrives.
  ASSERT_TRUE(app_b.RunScript(R"tdl(
      (defclass quote-tick (object) ((ticker :type string) (price :type f64)))
      (bus-subscribe "quotes.>"
        (lambda (subj obj)
          (print subj (slot-value obj 'ticker) (slot-value obj 'price))))
    )tdl")
                  .ok());
  Settle(10 * kMillisecond);

  // Publisher app: same class (defined independently), publish a tick.
  ASSERT_TRUE(app_a.RunScript(R"tdl(
      (defclass quote-tick (object) ((ticker :type string) (price :type f64)))
      (bus-publish "quotes.nyse.gmc"
        (make-instance 'quote-tick :ticker "gmc" :price 41.25))
    )tdl")
                  .ok());
  Settle();
  std::string output = app_b.TakeOutput();
  EXPECT_NE(output.find("quotes.nyse.gmc gmc 41.25"), std::string::npos);
}

TEST_F(AppBuilderTest, ScriptInvokesRemoteService) {
  auto server_bus = MakeClient(1, "echo-server");
  auto server = RmiServer::Create(server_bus.get(), "svc.echo", EchoService());
  ASSERT_TRUE(server.ok());
  Settle(10 * kMillisecond);

  auto app_bus = MakeClient(0, "script-app");
  AppBuilder app(app_bus.get(), &registry_);
  ASSERT_TRUE(app.RunScript(R"tdl(
      (bus-invoke "svc.echo" "echo" (list "hello from tdl")
        (lambda (ok result) (print (if ok result "FAILED"))))
    )tdl")
                  .ok());
  Settle();
  EXPECT_NE(app.TakeOutput().find("echo: hello from tdl"), std::string::npos);
}

TEST_F(AppBuilderTest, InvokeFailureReachesScript) {
  auto app_bus = MakeClient(0, "script-app");
  AppBuilder app(app_bus.get(), &registry_);
  ASSERT_TRUE(app.RunScript(R"tdl(
      (bus-invoke "svc.nothing" "op" (list)
        (lambda (ok result) (print (if ok "OK" (concat "error: " result)))))
    )tdl")
                  .ok());
  Settle();
  EXPECT_NE(app.TakeOutput().find("error: "), std::string::npos);
}

TEST_F(AppBuilderTest, ListServicesEnumeratesDirectory) {
  auto s1_bus = MakeClient(1, "echo-server");
  auto s1 = RmiServer::Create(s1_bus.get(), "svc.echo", EchoService());
  ASSERT_TRUE(s1.ok());
  auto s2_bus = MakeClient(2, "echo-server-2");
  auto s2 = RmiServer::Create(s2_bus.get(), "svc.echo2", EchoService());
  ASSERT_TRUE(s2.ok());
  Settle(10 * kMillisecond);

  auto app_bus = MakeClient(0, "browser");
  AppBuilder app(app_bus.get(), &registry_);
  ASSERT_TRUE(app.RunScript(R"tdl(
      (list-services
        (lambda (services)
          (print "count:" (length services))
          (mapcar (lambda (s) (print "svc:" (first s))) services)))
    )tdl")
                  .ok());
  Settle();
  std::string output = app.TakeOutput();
  EXPECT_NE(output.find("count: 2"), std::string::npos);
  EXPECT_NE(output.find("svc: svc.echo"), std::string::npos);
  EXPECT_NE(output.find("svc: svc.echo2"), std::string::npos);
}

TEST(AppBuilderUiTest, MenuFromInterface) {
  auto svc = EchoService();
  std::string menu = AppBuilder::BuildMenu(svc->interface());
  EXPECT_NE(menu.find("echo_service"), std::string::npos);
  EXPECT_NE(menu.find("1. echo(string text) -> string"), std::string::npos);

  TypeDescriptor empty("bare_service", "object");
  EXPECT_NE(AppBuilder::BuildMenu(empty).find("(no operations)"), std::string::npos);
}

TEST(AppBuilderUiTest, DialogFromSignature) {
  OperationDef op;
  op.name = "move_lot";
  op.result_type = "wip_status";
  op.params = {ParamDef{"lot", "string"}, ParamDef{"to_station", "string"}};
  std::string dialog = AppBuilder::BuildDialog(op);
  EXPECT_NE(dialog.find("move_lot"), std::string::npos);
  EXPECT_NE(dialog.find("lot (string)"), std::string::npos);
  EXPECT_NE(dialog.find("to_station (string)"), std::string::npos);
  EXPECT_NE(dialog.find("-> wip_status"), std::string::npos);
}

}  // namespace
}  // namespace ibus

namespace ibus {
namespace {

class ScriptServiceTest : public BusFixture {
 protected:
  void SetUp() override { SetUpBus(2); }
  TypeRegistry registry_;
};

TEST_F(ScriptServiceTest, ServiceImplementedEntirelyInTdl) {
  // A stateful counter service written in the interpreted language (P3), served over
  // RMI, and consumed by another script on a different host.
  auto server_bus = MakeClient(0, "counter-app");
  AppBuilder server_app(server_bus.get(), &registry_);
  ASSERT_TRUE(server_app
                  .RunScript(R"tdl(
        (defclass counter (object) ((count :type i64)))
        (defmethod increment ((c counter) amount)
          (set-slot-value! c 'count (+ (slot-value c 'count) amount))
          (slot-value c 'count))
        (defmethod current ((c counter)) (slot-value c 'count))
        (setq the-counter (make-instance 'counter :count 0))
        (define-service "svc.counter" the-counter (list 'increment 'current))
      )tdl")
                  .ok())
      << server_app.TakeOutput();
  Settle(10 * kMillisecond);

  TypeRegistry client_registry;
  auto client_bus = MakeClient(1, "client-app");
  AppBuilder client_app(client_bus.get(), &client_registry);
  ASSERT_TRUE(client_app
                  .RunScript(R"tdl(
        (bus-invoke "svc.counter" "increment" (list 5)
          (lambda (ok result) (print "after +5:" result)))
      )tdl")
                  .ok());
  Settle();
  ASSERT_TRUE(client_app
                  .RunScript(R"tdl(
        (bus-invoke "svc.counter" "increment" (list 37)
          (lambda (ok result) (print "after +37:" result)))
        (bus-invoke "svc.counter" "current" (list)
          (lambda (ok result) (print "current:" result)))
      )tdl")
                  .ok());
  Settle();
  std::string output = client_app.TakeOutput();
  EXPECT_NE(output.find("after +5: 5"), std::string::npos) << output;
  EXPECT_NE(output.find("after +37: 42"), std::string::npos) << output;
  EXPECT_NE(output.find("current: 42"), std::string::npos) << output;

  // Remote errors (no applicable method) propagate as RMI errors.
  ASSERT_TRUE(client_app
                  .RunScript(R"tdl(
        (bus-invoke "svc.counter" "reset" (list)
          (lambda (ok result) (print (if ok "unexpected" "reset failed as expected"))))
      )tdl")
                  .ok());
  Settle();
  EXPECT_NE(client_app.TakeOutput().find("reset failed as expected"), std::string::npos);
}

}  // namespace
}  // namespace ibus
