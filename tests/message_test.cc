#include "src/bus/message.h"

#include <gtest/gtest.h>

#include "src/types/data_object.h"

namespace ibus {
namespace {

TEST(MessageTest, FullRoundTrip) {
  Message m;
  m.subject = "news.equity.gmc";
  m.reply_subject = "_inbox.h1.p5000.1";
  m.type_name = "story";
  m.sender = "dj-adapter";
  m.certified_id = 77;
  m.publisher_id = 0xABCD1234;
  m.hops = 3;
  m.via = "_router:NY";
  m.trace_id = 0x1234567890ull;
  m.trace_hop = 5;
  m.payload = ToBytes("payload bytes");

  auto back = Message::Unmarshal(m.Marshal());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->subject, m.subject);
  EXPECT_EQ(back->reply_subject, m.reply_subject);
  EXPECT_EQ(back->type_name, m.type_name);
  EXPECT_EQ(back->sender, m.sender);
  EXPECT_EQ(back->certified_id, 77u);
  EXPECT_EQ(back->publisher_id, 0xABCD1234u);
  EXPECT_EQ(back->hops, 3);
  EXPECT_EQ(back->via, "_router:NY");
  EXPECT_EQ(back->trace_id, 0x1234567890ull);
  EXPECT_EQ(back->trace_hop, 5);
  EXPECT_EQ(back->payload, m.payload);
}

TEST(MessageTest, DefaultsRoundTrip) {
  Message m;
  m.subject = "s";
  auto back = Message::Unmarshal(m.Marshal());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->subject, "s");
  EXPECT_TRUE(back->reply_subject.empty());
  EXPECT_EQ(back->certified_id, 0u);
  EXPECT_EQ(back->hops, 0);
  EXPECT_EQ(back->trace_id, 0u);
  EXPECT_EQ(back->trace_hop, 0);
  EXPECT_TRUE(back->payload.empty());
}

TEST(MessageTest, TruncationRejected) {
  Message m;
  m.subject = "news.equity.gmc";
  m.payload = ToBytes("data");
  Bytes wire = m.Marshal();
  for (size_t cut : {size_t{0}, wire.size() / 2, wire.size() - 1}) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(Message::Unmarshal(truncated).ok()) << "cut=" << cut;
  }
}

TEST(MessageTest, ForObjectAndDecode) {
  auto story = MakeObject("story", {{"headline", Value("Chips up")},
                                    {"serial", Value(int64_t{12})}});
  Message m = Message::ForObject("news.equity.tsm", *story);
  EXPECT_EQ(m.subject, "news.equity.tsm");
  EXPECT_EQ(m.type_name, "story");
  auto decoded = m.DecodeObject();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(**decoded, *story);
}

TEST(MessageTest, DecodeWithoutTypeNameFails) {
  Message m;
  m.subject = "raw.bytes";
  m.payload = ToBytes("not an object");
  EXPECT_EQ(m.DecodeObject().status().code(), StatusCode::kFailedPrecondition);
}

TEST(MessageTest, DecodeCorruptObjectFails) {
  Message m;
  m.subject = "s";
  m.type_name = "story";
  m.payload = ToBytes("garbage that is not a marshalled object");
  EXPECT_FALSE(m.DecodeObject().ok());
}

}  // namespace
}  // namespace ibus
