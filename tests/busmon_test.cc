// Always-on pieces of the health plane: the flight recorder ring buffer and JSONL
// dump, the versioned DaemonStatsSnapshot (typed rejection of unknown versions,
// v3 queue-occupancy fields), per-subject flow accounting in the daemon, and the
// busmon console's stats/queue/stage views.
// These must all work with -DIB_TELEMETRY=OFF too — only the evaluator/alert tests
// (health_test.cc) need telemetry compiled in.
#include <gtest/gtest.h>

#include "src/services/bus_monitor.h"
#include "src/telemetry/busmon.h"
#include "src/telemetry/flight_recorder.h"
#include "tests/bus_fixture.h"

namespace ibus {
namespace {

using telemetry::FlightEventKind;
using telemetry::FlightRecorder;

// --- Flight recorder ---------------------------------------------------------------

TEST(FlightRecorderTest, RecordsAndDumpsInOrder) {
  FlightRecorder rec("daemon@0", 8);
  rec.Record(100, FlightEventKind::kPublish, "market.equity.gmc", "bytes=32");
  rec.Record(250, FlightEventKind::kGap, "", "stream=1 first=4 last=6");
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.total_recorded(), 2u);
  EXPECT_EQ(rec.overwritten(), 0u);

  auto events = rec.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at_us, 100);
  EXPECT_EQ(events[0].kind, FlightEventKind::kPublish);
  EXPECT_EQ(events[1].detail, "stream=1 first=4 last=6");

  const std::string dump = rec.DumpJsonl();
  EXPECT_NE(dump.find("{\"t\":100,\"node\":\"daemon@0\",\"kind\":\"publish\","
                      "\"subject\":\"market.equity.gmc\",\"detail\":\"bytes=32\"}"),
            std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"gap\""), std::string::npos);
}

TEST(FlightRecorderTest, RingOverwritesOldestAtCapacity) {
  FlightRecorder rec("r", 4);
  for (int i = 0; i < 10; ++i) {
    rec.Record(i, FlightEventKind::kPublish, "s" + std::to_string(i));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.overwritten(), 6u);
  auto events = rec.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving event first.
  EXPECT_EQ(events.front().subject, "s6");
  EXPECT_EQ(events.back().subject, "s9");
}

TEST(FlightRecorderTest, DumpHashIsStableAndContentSensitive) {
  FlightRecorder a("n", 8);
  FlightRecorder b("n", 8);
  a.Record(1, FlightEventKind::kRetransmit, "", "stream=1 seq=2");
  b.Record(1, FlightEventKind::kRetransmit, "", "stream=1 seq=2");
  EXPECT_EQ(a.DumpHash(), b.DumpHash());
  b.Record(2, FlightEventKind::kGap, "", "stream=1 first=3 last=3");
  EXPECT_NE(a.DumpHash(), b.DumpHash());
}

TEST(FlightRecorderTest, JsonEscapesControlAndQuoteCharacters) {
  FlightRecorder rec("n", 4);
  rec.Record(5, FlightEventKind::kDrop, "a.b", "bad \"frame\"\n\ttail");
  const std::string dump = rec.DumpJsonl();
  EXPECT_NE(dump.find("bad \\\"frame\\\"\\n\\ttail"), std::string::npos);
}

TEST(FlightRecorderTest, RenderTailShowsMostRecent) {
  FlightRecorder rec("n", 8);
  for (int i = 0; i < 6; ++i) {
    rec.Record(i * 10, FlightEventKind::kPublish, "sub" + std::to_string(i));
  }
  const std::string tail = rec.RenderTail(2);
  EXPECT_EQ(tail.find("sub3"), std::string::npos);
  EXPECT_NE(tail.find("sub4"), std::string::npos);
  EXPECT_NE(tail.find("sub5"), std::string::npos);
}

// --- DaemonStatsSnapshot v2 --------------------------------------------------------

TEST(StatsSnapshotTest, RoundTripsV2WithFlows) {
  DaemonStatsSnapshot s;
  s.host_name = "host3";
  s.reported_at = 123456;
  s.publishes = 10;
  s.dispatched = 9;
  s.deliveries = 8;
  s.subscriptions = 2;
  s.wire_packets_sent = 20;
  s.retransmits = 3;
  s.receiver_gaps = 1;
  s.sub_churn = 5;
  s.flows.push_back({"market", 7, 6, 700, 600});
  s.flows.push_back({"(other)", 1, 0, 64, 0});

  auto back = DaemonStatsSnapshot::Unmarshal(s.Marshal());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->host_name, "host3");
  EXPECT_EQ(back->sub_churn, 5u);
  ASSERT_EQ(back->flows.size(), 2u);
  EXPECT_EQ(back->flows[0].prefix, "market");
  EXPECT_EQ(back->flows[0].publishes, 7u);
  EXPECT_EQ(back->flows[0].bytes_out, 600u);
  EXPECT_EQ(back->flows[1].prefix, "(other)");
}

TEST(StatsSnapshotTest, RoundTripsV3QueueOccupancy) {
  DaemonStatsSnapshot s;
  s.host_name = "host7";
  s.sender_retained_depth = 7;
  s.sender_retained_hwm = 12;
  s.sender_batch_depth = 1;
  s.sender_batch_hwm = 4;
  s.receiver_ready_depth = 0;
  s.receiver_ready_hwm = 3;
  s.receiver_partials_depth = 2;
  s.receiver_partials_hwm = 2;

  auto back = DaemonStatsSnapshot::Unmarshal(s.Marshal());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->sender_retained_depth, 7u);
  EXPECT_EQ(back->sender_retained_hwm, 12u);
  EXPECT_EQ(back->sender_batch_depth, 1u);
  EXPECT_EQ(back->sender_batch_hwm, 4u);
  EXPECT_EQ(back->receiver_ready_depth, 0u);
  EXPECT_EQ(back->receiver_ready_hwm, 3u);
  EXPECT_EQ(back->receiver_partials_depth, 2u);
  EXPECT_EQ(back->receiver_partials_hwm, 2u);
}

TEST(StatsSnapshotTest, RejectsUnknownVersionWithTypedError) {
  DaemonStatsSnapshot s;
  s.host_name = "h";
  Bytes b = s.Marshal();
  ASSERT_FALSE(b.empty());
  b[0] = 99;  // an unknown future version
  auto back = DaemonStatsSnapshot::Unmarshal(b);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kUnimplemented);

  // Truncation stays a distinct (data-loss) failure.
  Bytes truncated(b.begin(), b.begin() + 1);
  truncated[0] = DaemonStatsSnapshot::kWireVersion;
  auto short_read = DaemonStatsSnapshot::Unmarshal(truncated);
  ASSERT_FALSE(short_read.ok());
  EXPECT_EQ(short_read.status().code(), StatusCode::kDataLoss);
}

// --- Daemon flow accounting --------------------------------------------------------

class FlowAccountingTest : public BusFixture {};

TEST_F(FlowAccountingTest, DaemonCountsPerSubjectPrefix) {
  SetUpBus(2);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  ASSERT_TRUE(sub->Subscribe("market.>", [](const Message&) {}).ok());
  Settle();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pub->Publish("market.equity.gmc", ToBytes("x")).ok());
  }
  ASSERT_TRUE(pub->Publish("news.equity.gmc", ToBytes("y")).ok());
  Settle();

  const auto& pub_flows = daemons_[0]->subject_flows();
  ASSERT_TRUE(pub_flows.count("market"));
  EXPECT_EQ(pub_flows.at("market").publishes, 5u);
  EXPECT_GT(pub_flows.at("market").bytes_in, 0u);
  ASSERT_TRUE(pub_flows.count("news"));
  EXPECT_EQ(pub_flows.at("news").publishes, 1u);

  const auto& sub_flows = daemons_[1]->subject_flows();
  ASSERT_TRUE(sub_flows.count("market"));
  EXPECT_EQ(sub_flows.at("market").deliveries, 5u);
  EXPECT_GT(sub_flows.at("market").bytes_out, 0u);
  // "news.>" had no subscriber on host1: no delivery flow there.
  EXPECT_EQ(sub_flows.count("news"), 0u);
}

TEST_F(FlowAccountingTest, SubscriptionChurnIsCounted) {
  SetUpBus(1);
  auto client = MakeClient(0, "churner");
  Settle(500 * kMillisecond);
  const uint64_t before = daemons_[0]->stats().sub_churn;
  auto sub = client->Subscribe("a.b", [](const Message&) {});
  ASSERT_TRUE(sub.ok());
  Settle(500 * kMillisecond);
  ASSERT_TRUE(client->Unsubscribe(*sub).ok());
  Settle(500 * kMillisecond);
  EXPECT_EQ(daemons_[0]->stats().sub_churn, before + 2);
}

TEST_F(FlowAccountingTest, DaemonRecordsPublishesInFlightRecorder) {
  SetUpBus(1);
  auto pub = MakeClient(0, "pub");
  ASSERT_TRUE(pub->Publish("fab5.cc.litho8", ToBytes("reading")).ok());
  Settle();
  bool saw_publish = false;
  for (const auto& e : daemons_[0]->flight_recorder()->Events()) {
    if (e.kind == FlightEventKind::kPublish && e.subject == "fab5.cc.litho8") {
      saw_publish = true;
    }
  }
  EXPECT_TRUE(saw_publish);
  EXPECT_NE(daemons_[0]->flight_recorder()->DumpJsonl().find("fab5.cc.litho8"),
            std::string::npos);
}

// --- BusMon console ----------------------------------------------------------------

class BusMonTest : public BusFixture {};

TEST_F(BusMonTest, RendersFleetStatsAndTopFlows) {
  SetUpBus(2);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  ASSERT_TRUE(sub->Subscribe("market.>", [](const Message&) {}).ok());

  std::vector<std::unique_ptr<BusClient>> ops;
  std::vector<std::unique_ptr<StatsReporter>> reporters;
  for (int i = 0; i < 2; ++i) {
    ops.push_back(MakeClient(i, "ops" + std::to_string(i)));
    auto rep = StatsReporter::Create(ops.back().get(), daemons_[static_cast<size_t>(i)].get(),
                                     500 * kMillisecond);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    reporters.push_back(rep.take());
  }
  auto mon_bus = MakeClient(0, "busmon");
  auto mon = telemetry::BusMon::Create(mon_bus.get());
  ASSERT_TRUE(mon.ok()) << mon.status().ToString();
  (*mon)->AttachRecorder(daemons_[0]->flight_recorder());

  Settle();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pub->Publish("market.equity.gmc", ToBytes("t" + std::to_string(i))).ok());
  }
  Settle();

  ASSERT_EQ((*mon)->snapshots().size(), 2u);
  const std::string frame = (*mon)->RenderSnapshot();
  EXPECT_NE(frame.find("host0"), std::string::npos);
  EXPECT_NE(frame.find("host1"), std::string::npos);
  EXPECT_NE(frame.find("top subjects by flow:"), std::string::npos);
  EXPECT_NE(frame.find("market"), std::string::npos);
  EXPECT_NE(frame.find("flight recorder daemon@0"), std::string::npos);
#if IBUS_TELEMETRY
  EXPECT_NE(frame.find("active alerts: none"), std::string::npos);
#endif
  // Rendering is pure: same state, same frame, same hash.
  EXPECT_EQ(frame, (*mon)->RenderSnapshot());
  EXPECT_EQ((*mon)->SnapshotHash(), (*mon)->SnapshotHash());
}

TEST_F(BusMonTest, RendersQueueOccupancyFromSnapshots) {
  SetUpBus(2);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  ASSERT_TRUE(sub->Subscribe("fab5.>", [](const Message&) {}).ok());

  std::vector<std::unique_ptr<BusClient>> ops;
  std::vector<std::unique_ptr<StatsReporter>> reporters;
  for (int i = 0; i < 2; ++i) {
    ops.push_back(MakeClient(i, "ops" + std::to_string(i)));
    auto rep = StatsReporter::Create(ops.back().get(), daemons_[static_cast<size_t>(i)].get(),
                                     500 * kMillisecond);
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    reporters.push_back(rep.take());
  }
  auto mon_bus = MakeClient(0, "busmon");
  auto mon = telemetry::BusMon::Create(mon_bus.get());
  ASSERT_TRUE(mon.ok()) << mon.status().ToString();

  Settle();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(pub->Publish("fab5.cc.litho8", ToBytes("r" + std::to_string(i))).ok());
  }
  Settle();

  ASSERT_EQ((*mon)->snapshots().size(), 2u);
  const std::string frame = (*mon)->RenderSnapshot();
  EXPECT_NE(frame.find("queue occupancy (depth/hwm):"), std::string::npos);
  EXPECT_NE(frame.find("retained"), std::string::npos);
  EXPECT_NE(frame.find("partials"), std::string::npos);
#if IBUS_TELEMETRY
  // The publisher host retains unacked packets, so its retained hwm is nonzero.
  const DaemonStatsSnapshot& s0 = (*mon)->snapshots().at("host0");
  EXPECT_GT(s0.sender_retained_hwm, 0u);
#endif
}

#if IBUS_TELEMETRY
TEST_F(BusMonTest, DerivesStageLatencyFromBufferedTraceSpans) {
  BusConfig config;
  config.trace_publishes = true;
  config.trace_sample_period = 1;
  SetUpBus(2, config);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  ASSERT_TRUE(sub->Subscribe("orders.>", [](const Message&) {}).ok());

  telemetry::BusMonOptions options;
  options.max_traces = 2;
  auto mon_bus = MakeClient(1, "busmon");
  auto mon = telemetry::BusMon::Create(mon_bus.get(), options);
  ASSERT_TRUE(mon.ok()) << mon.status().ToString();

  Settle();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pub->Publish("orders.new", ToBytes("o" + std::to_string(i))).ok());
  }
  Settle();

  EXPECT_GT((*mon)->spans_seen(), 0u);
  // The hop buffer is bounded: 3 traces published, only max_traces retained.
  EXPECT_EQ((*mon)->traces().size(), 2u);

  const std::string frame = (*mon)->RenderSnapshot();
  EXPECT_NE(frame.find("stage latency ("), std::string::npos);
  // Hop-only decomposition of a LAN path: marshal, transit, and dispatch stages.
  EXPECT_NE(frame.find("publish_marshal"), std::string::npos);
  EXPECT_NE(frame.find("medium_transit"), std::string::npos);
  EXPECT_NE(frame.find("deliver_dispatch"), std::string::npos);
  EXPECT_EQ(frame.find("unattributed"), std::string::npos);
}
#endif

}  // namespace
}  // namespace ibus
