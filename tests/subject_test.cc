#include "src/subject/subject.h"

#include <gtest/gtest.h>

#include "src/subject/trie.h"

namespace ibus {
namespace {

TEST(SubjectTest, SplitBasic) {
  EXPECT_EQ(SplitSubject("a.b.c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitSubject("single"), (std::vector<std::string>{"single"}));
  EXPECT_EQ(SplitSubject(""), (std::vector<std::string>{""}));
}

TEST(SubjectTest, ValidateSubjectAcceptsPaperExamples) {
  EXPECT_TRUE(ValidateSubject("fab5.cc.litho8.thick").ok());
  EXPECT_TRUE(ValidateSubject("news.equity.gmc").ok());
  EXPECT_TRUE(ValidateSubject("_inbox.h1.p5000.1").ok());
}

TEST(SubjectTest, ValidateSubjectRejectsBadForms) {
  EXPECT_FALSE(ValidateSubject("").ok());
  EXPECT_FALSE(ValidateSubject("a..b").ok());
  EXPECT_FALSE(ValidateSubject(".leading").ok());
  EXPECT_FALSE(ValidateSubject("trailing.").ok());
  EXPECT_FALSE(ValidateSubject("has space.b").ok());
  EXPECT_FALSE(ValidateSubject("a.*.b").ok());  // wildcards are for patterns only
  EXPECT_FALSE(ValidateSubject("a.>").ok());
}

TEST(SubjectTest, ReservedNamespaceDetection) {
  EXPECT_TRUE(IsReservedSubject("_ibus"));  // buslint: allow(reserved-subject)
  EXPECT_TRUE(IsReservedSubject(std::string(kReservedTracePrefix) + "a"));
  EXPECT_TRUE(IsReservedSubject(std::string(kReservedStatsPrefix) + "host0"));
  EXPECT_FALSE(IsReservedSubject("_ibusx.foo"));
  EXPECT_FALSE(IsReservedSubject("news._ibus.x"));  // buslint: allow(reserved-subject)
  EXPECT_FALSE(IsReservedSubject("_inbox.h1.p5000.1"));
}

TEST(SubjectTest, ReservedNamespaceScoping) {
  const std::string trace = std::string(kReservedTracePrefix) + "a";
  // Application scope (the default) rejects the whole reserved namespace...
  EXPECT_FALSE(ValidateSubject(kReservedElement).ok());
  EXPECT_FALSE(ValidateSubject(trace).ok());
  EXPECT_FALSE(ValidateSubject(trace, SubjectScope::kApplication).ok());
  // ...internal scope admits it (same grammar rules still apply)...
  EXPECT_TRUE(ValidateSubject(trace, SubjectScope::kInternal).ok());
  EXPECT_FALSE(ValidateSubject(std::string(kReservedPrefix) + ".x",
                               SubjectScope::kInternal).ok());
  // ...and lookalike roots were never reserved to begin with.
  EXPECT_TRUE(ValidateSubject("_ibusx.foo").ok());
  EXPECT_TRUE(ValidateSubject("_ibusx.foo", SubjectScope::kInternal).ok());
}

TEST(SubjectTest, ValidatePattern) {
  EXPECT_TRUE(ValidatePattern("news.equity.gmc").ok());
  EXPECT_TRUE(ValidatePattern("news.*.gmc").ok());
  EXPECT_TRUE(ValidatePattern("news.>").ok());
  EXPECT_TRUE(ValidatePattern(">").ok());
  EXPECT_TRUE(ValidatePattern("*.*").ok());
  EXPECT_FALSE(ValidatePattern("news.>.gmc").ok());  // '>' must be last
  EXPECT_FALSE(ValidatePattern("news.eq*ty").ok());  // partial-element wildcard
  EXPECT_FALSE(ValidatePattern("").ok());
  EXPECT_FALSE(ValidatePattern("a..b").ok());
}

struct MatchCase {
  const char* pattern;
  const char* subject;
  bool expect;
};

class SubjectMatchTest : public ::testing::TestWithParam<MatchCase> {};

TEST_P(SubjectMatchTest, Matches) {
  const MatchCase& c = GetParam();
  EXPECT_EQ(SubjectMatches(c.pattern, c.subject), c.expect)
      << c.pattern << " vs " << c.subject;
}

INSTANTIATE_TEST_SUITE_P(
    Matching, SubjectMatchTest,
    ::testing::Values(
        MatchCase{"a.b.c", "a.b.c", true}, MatchCase{"a.b.c", "a.b.d", false},
        MatchCase{"a.b.c", "a.b", false}, MatchCase{"a.b.c", "a.b.c.d", false},
        MatchCase{"a.*.c", "a.b.c", true}, MatchCase{"a.*.c", "a.x.c", true},
        MatchCase{"a.*.c", "a.c", false}, MatchCase{"a.*.c", "a.b.b.c", false},
        MatchCase{"*", "a", true}, MatchCase{"*", "a.b", false},
        MatchCase{">", "a", true}, MatchCase{">", "a.b.c.d", true},
        MatchCase{"a.>", "a.b", true}, MatchCase{"a.>", "a.b.c", true},
        MatchCase{"a.>", "a", false}, MatchCase{"a.>", "b.c", false},
        MatchCase{"news.*.gmc", "news.equity.gmc", true},
        MatchCase{"news.>", "news.equity.gmc", true},
        MatchCase{"fab5.cc.*.thick", "fab5.cc.litho8.thick", true},
        MatchCase{"fab5.cc.*.thick", "fab5.cc.litho8.thin", false}));

struct CoverCase {
  const char* wide;
  const char* narrow;
  bool expect;
};

class PatternCoverTest : public ::testing::TestWithParam<CoverCase> {};

TEST_P(PatternCoverTest, Covers) {
  const CoverCase& c = GetParam();
  EXPECT_EQ(PatternCovers(c.wide, c.narrow), c.expect) << c.wide << " covers " << c.narrow;
}

INSTANTIATE_TEST_SUITE_P(
    Covering, PatternCoverTest,
    ::testing::Values(CoverCase{"a.b", "a.b", true}, CoverCase{"a.*", "a.b", true},
                      CoverCase{"a.b", "a.*", false}, CoverCase{">", "a.b.c", true},
                      CoverCase{">", "a.>", true}, CoverCase{"a.>", "a.b.c", true},
                      CoverCase{"a.>", "a.b.>", true}, CoverCase{"a.>", "b.c", false},
                      CoverCase{"a.>", "a", false}, CoverCase{"a.*", "a.>", false},
                      CoverCase{"*.*", "a.b", true}, CoverCase{"*.*", "a.b.c", false},
                      CoverCase{"a.*.c", "a.b.c", true}, CoverCase{"a.*.c", "a.*.c", true}));

TEST(TrieTest, ExactMatch) {
  SubjectTrie trie;
  ASSERT_TRUE(trie.Insert("a.b.c", 1).ok());
  ASSERT_TRUE(trie.Insert("a.b.d", 2).ok());
  EXPECT_EQ(trie.Match("a.b.c"), (std::vector<uint64_t>{1}));
  EXPECT_EQ(trie.Match("a.b.d"), (std::vector<uint64_t>{2}));
  EXPECT_TRUE(trie.Match("a.b").empty());
  EXPECT_TRUE(trie.Match("a.b.c.d").empty());
}

TEST(TrieTest, WildcardsMatch) {
  SubjectTrie trie;
  ASSERT_TRUE(trie.Insert("news.*.gmc", 1).ok());
  ASSERT_TRUE(trie.Insert("news.>", 2).ok());
  ASSERT_TRUE(trie.Insert("news.equity.gmc", 3).ok());
  std::vector<uint64_t> hits = trie.Match("news.equity.gmc");
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<uint64_t>{1, 2, 3}));
  hits = trie.Match("news.bond.t10");
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<uint64_t>{2}));
}

TEST(TrieTest, RestWildcardRequiresOneElement) {
  SubjectTrie trie;
  ASSERT_TRUE(trie.Insert("a.>", 1).ok());
  EXPECT_TRUE(trie.Match("a").empty());
  EXPECT_EQ(trie.Match("a.b"), (std::vector<uint64_t>{1}));
}

TEST(TrieTest, RemoveSpecificRegistration) {
  SubjectTrie trie;
  ASSERT_TRUE(trie.Insert("a.b", 1).ok());
  ASSERT_TRUE(trie.Insert("a.b", 2).ok());
  EXPECT_TRUE(trie.Remove("a.b", 1));
  EXPECT_EQ(trie.Match("a.b"), (std::vector<uint64_t>{2}));
  EXPECT_FALSE(trie.Remove("a.b", 1));  // already gone
  EXPECT_TRUE(trie.Remove("a.b", 2));
  EXPECT_TRUE(trie.Match("a.b").empty());
  EXPECT_EQ(trie.size(), 0u);
}

TEST(TrieTest, RemoveWildcardPatterns) {
  SubjectTrie trie;
  ASSERT_TRUE(trie.Insert("a.*", 1).ok());
  ASSERT_TRUE(trie.Insert("a.>", 2).ok());
  EXPECT_TRUE(trie.Remove("a.*", 1));
  EXPECT_EQ(trie.Match("a.b"), (std::vector<uint64_t>{2}));
  EXPECT_TRUE(trie.Remove("a.>", 2));
  EXPECT_TRUE(trie.Match("a.b").empty());
}

TEST(TrieTest, InvalidPatternRejected) {
  SubjectTrie trie;
  EXPECT_FALSE(trie.Insert("a..b", 1).ok());
  EXPECT_FALSE(trie.Insert(">.a", 1).ok());
  EXPECT_EQ(trie.size(), 0u);
}

TEST(TrieTest, MatchesAnyEarlyExit) {
  SubjectTrie trie;
  EXPECT_FALSE(trie.MatchesAny("a.b"));
  ASSERT_TRUE(trie.Insert("a.>", 7).ok());
  EXPECT_TRUE(trie.MatchesAny("a.b"));
  EXPECT_FALSE(trie.MatchesAny("b.a"));
}

TEST(TrieTest, ManySubjectsStayIndependent) {
  // Fig 8 sanity: 10k distinct subjects, matching stays correct.
  SubjectTrie trie;
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(trie.Insert("subj." + std::to_string(i), i).ok());
  }
  EXPECT_EQ(trie.size(), 10000u);
  EXPECT_EQ(trie.Match("subj.1234"), (std::vector<uint64_t>{1234}));
  EXPECT_TRUE(trie.Match("subj.99999").empty());
}

}  // namespace
}  // namespace ibus
