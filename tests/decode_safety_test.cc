// Regression tests for the decode-safety findings wirecheck surfaced: every
// count clamp and trailing-bytes rejection added to the real codecs gets a
// hostile input here — a garbage count that must not size an allocation or
// spin a loop, and appended garbage that must not decode silently. These
// inputs crashed, over-allocated, or decoded-to-garbage before the fixes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/bus/message.h"
#include "src/capture/capture.h"
#include "src/journal/format.h"
#include "src/services/bus_monitor.h"
#include "src/telemetry/busstat.h"
#include "src/telemetry/health.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "src/types/type_descriptor.h"
#include "src/wire/wire.h"

namespace ibus {
namespace {

// --- trailing garbage: valid record + appended byte must be rejected -------------

TEST(DecodeSafety, MessageRejectsTrailingGarbage) {
  Message m;
  m.subject = "a.b";
  m.payload = {1, 2, 3};
  Bytes b = m.Marshal();
  ASSERT_TRUE(Message::Unmarshal(b).ok());
  b.push_back(0x5A);
  EXPECT_FALSE(Message::Unmarshal(b).ok());
}

TEST(DecodeSafety, HopRecordRejectsTrailingGarbage) {
  telemetry::HopRecord rec;
  rec.trace_id = 7;
  rec.node = "n1";
  Bytes b = rec.Marshal();
  ASSERT_TRUE(telemetry::HopRecord::Unmarshal(b).ok());
  b.push_back(0xFF);
  EXPECT_FALSE(telemetry::HopRecord::Unmarshal(b).ok());
}

TEST(DecodeSafety, HealthEventRejectsTrailingGarbage) {
  telemetry::HealthEvent e;
  e.node = "n1";
  Bytes b = e.Marshal();
  ASSERT_TRUE(telemetry::HealthEvent::Unmarshal(b).ok());
  b.push_back(0x00);
  EXPECT_FALSE(telemetry::HealthEvent::Unmarshal(b).ok());
}

TEST(DecodeSafety, StatsSnapshotRejectsTrailingGarbage) {
  DaemonStatsSnapshot s;
  s.host_name = "h";
  Bytes b = s.Marshal();
  ASSERT_TRUE(DaemonStatsSnapshot::Unmarshal(b).ok());
  b.push_back(0x01);
  EXPECT_FALSE(DaemonStatsSnapshot::Unmarshal(b).ok());
}

TEST(DecodeSafety, CaptureRejectsTrailingGarbage) {
  Bytes b = capture::SerializeCapture({});
  ASSERT_TRUE(capture::DeserializeCapture(b).ok());
  b.push_back(0x42);
  EXPECT_FALSE(capture::DeserializeCapture(b).ok());
}

// --- garbage counts: must fail fast, not allocate or loop on the count -----------

TEST(DecodeSafety, StatsSnapshotRejectsImplausibleFlowCount) {
  DaemonStatsSnapshot s;
  s.host_name = "h";
  Bytes valid = s.Marshal();
  // Rebuild the snapshot with the trailing flow count replaced by a huge
  // varint. Everything before the count is byte-identical, so chop the old
  // count (one varint byte for zero flows) and splice in the poison.
  Bytes b(valid.begin(), valid.end() - 1);
  WireWriter w;
  w.PutVarint(0xFFFFFFFFFFFFull);
  Bytes poison = w.Take();
  b.insert(b.end(), poison.begin(), poison.end());
  auto out = DaemonStatsSnapshot::Unmarshal(b);
  ASSERT_FALSE(out.ok());
}

TEST(DecodeSafety, JournalBlockRejectsImplausibleRecordCount) {
  WireWriter w;
  w.PutU32(journal::kBlockMagic);
  w.PutU32(0);           // segment
  w.PutU64(1);           // first lsn
  w.PutU32(0xFFFFFFFFu); // record count far beyond the buffer
  journal::BlockHeader header;
  std::vector<journal::Record> records;
  EXPECT_FALSE(journal::DecodeBlock(w.Take(), &header, &records).ok());
  EXPECT_TRUE(records.empty());
}

TEST(DecodeSafety, CaptureRejectsImplausibleFrameCount) {
  WireWriter w;
  w.PutU32(capture::kCaptureMagic);
  w.PutU16(capture::kCaptureVersion);
  w.PutVarint(0xFFFFFFFFFFull);  // frame count with no frames behind it
  EXPECT_FALSE(capture::DeserializeCapture(w.Take()).ok());
}

TEST(DecodeSafety, TypeDescriptorRejectsImplausibleAttributeCount) {
  WireWriter w;
  w.PutString("T");
  w.PutString("");
  w.PutU32(1);
  w.PutVarint(0xFFFFFFFFull);  // attribute count
  Bytes b = w.Take();
  WireReader r(b);
  EXPECT_FALSE(TypeDescriptor::FromWire(&r).ok());
}

TEST(DecodeSafety, BusstatRejectsImplausibleScalarDictCount) {
  WireWriter w;
  w.PutU8(telemetry::kTsWireVersion);
  w.PutU8(telemetry::kTsKindKeyframe);
  w.PutString("node");
  w.PutVarint(0);  // seq
  w.PutI64(0);     // at_us
  w.PutVarint(1);  // sample period
  w.PutVarint(0xFFFFFFFFFFull);  // scalar dictionary size
  telemetry::StatSeriesDecoder dec;
  EXPECT_FALSE(dec.DecodeSample(w.Take()).ok());
}

TEST(DecodeSafety, BusstatRejectsTrailingGarbage) {
  telemetry::MetricsRegistry registry;
  registry.GetCounter("bus.publishes")->Inc(3);
  telemetry::StatSeriesEncoder enc("node", 4);
  Bytes b = enc.EncodeSample(registry, nullptr, nullptr, 10, 1);
  telemetry::StatSeriesDecoder ok_dec;
  ASSERT_TRUE(ok_dec.DecodeSample(b).ok());
  b.push_back(0x07);
  telemetry::StatSeriesDecoder dec;
  EXPECT_FALSE(dec.DecodeSample(b).ok());
}

}  // namespace
}  // namespace ibus
