// The health plane end to end (requires IB_TELEMETRY=ON): HealthEvent wire format,
// the HealthEvaluator's hysteretic rules driven through a live simulated bus, and the
// busmon console tracking raise/clear transitions off "_ibus.health.>". The
// loss-driven SLOW_CONSUMER path is exercised in sim_replay_check scenario 5.
#include <gtest/gtest.h>

#include "src/services/health_monitor.h"
#include "src/telemetry/busmon.h"
#include "src/telemetry/health.h"
#include "tests/bus_fixture.h"

namespace ibus {
namespace {

using telemetry::HealthEvent;
using telemetry::HealthEventKind;
using telemetry::HealthSeverity;

// --- HealthEvent wire format -------------------------------------------------------

TEST(HealthEventTest, RoundTrips) {
  HealthEvent e;
  e.kind = HealthEventKind::kSlowConsumer;
  e.severity = HealthSeverity::kCritical;
  e.node = "host2";
  e.subject = "market.equity.gmc";
  e.value = 12;
  e.threshold = 3;
  e.at_us = 4500000;

  auto back = HealthEvent::Unmarshal(e.Marshal());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->kind, HealthEventKind::kSlowConsumer);
  EXPECT_EQ(back->severity, HealthSeverity::kCritical);
  EXPECT_EQ(back->node, "host2");
  EXPECT_EQ(back->subject, "market.equity.gmc");
  EXPECT_EQ(back->value, 12);
  EXPECT_EQ(back->threshold, 3);
  EXPECT_EQ(back->at_us, 4500000);
}

TEST(HealthEventTest, RejectsUnknownVersionWithTypedError) {
  HealthEvent e;
  e.kind = HealthEventKind::kRetransmitStorm;
  e.node = "n";
  Bytes b = e.Marshal();
  ASSERT_FALSE(b.empty());
  b[0] = 42;
  auto back = HealthEvent::Unmarshal(b);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kUnimplemented);
}

TEST(HealthEventTest, RejectsBadEnumAndTruncation) {
  HealthEvent e;
  e.kind = HealthEventKind::kPartitionSuspected;
  e.node = "n";
  Bytes b = e.Marshal();
  Bytes bad_kind = b;
  bad_kind[1] = 0;  // kind 0 is not a valid HealthEventKind
  auto r1 = HealthEvent::Unmarshal(bad_kind);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kDataLoss);

  Bytes truncated(b.begin(), b.begin() + 3);
  auto r2 = HealthEvent::Unmarshal(truncated);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kDataLoss);
}

TEST(HealthEventTest, NamesAndSubjects) {
  EXPECT_EQ(HealthEventKindName(HealthEventKind::kSlowConsumer), "slow_consumer");
  EXPECT_EQ(HealthEventKindName(HealthEventKind::kPartitionSuspected),
            "partition_suspected");
  EXPECT_EQ(HealthSeverityName(HealthSeverity::kClear), "clear");
  EXPECT_EQ(HealthSeverityName(HealthSeverity::kCritical), "critical");
  EXPECT_EQ(telemetry::HealthSubject(HealthEventKind::kRetransmitStorm, "host7"),
            "_ibus.health.retransmit_storm.host7");  // buslint: allow(reserved-subject)
  const std::string text = HealthEvent{}.ToString();
  EXPECT_NE(text.find("value="), std::string::npos);
}

// --- HealthEvaluator ---------------------------------------------------------------

class HealthEvaluatorTest : public BusFixture {};

TEST_F(HealthEvaluatorTest, CreateRejectsBadConfig) {
  SetUpBus(1);
  auto ops = MakeClient(0, "ops");
  HealthConfig bad_interval;
  bad_interval.interval_us = 0;
  EXPECT_EQ(HealthEvaluator::Create(ops.get(), daemons_[0].get(), bad_interval)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  HealthConfig bad_hold;
  bad_hold.clear_hold_intervals = 0;
  EXPECT_EQ(
      HealthEvaluator::Create(ops.get(), daemons_[0].get(), bad_hold).status().code(),
      StatusCode::kInvalidArgument);
}

TEST_F(HealthEvaluatorTest, ChurnAlertRaisesOnceClearsOnceAndReachesBusmon) {
  SetUpBus(1);
  auto ops = MakeClient(0, "ops");
  HealthConfig hc;
  hc.interval_us = 250 * kMillisecond;
  hc.churn_raise = 8;  // above the setup churn from busmon/evaluator subscriptions
  hc.churn_clear = 0;
  hc.clear_hold_intervals = 2;
  hc.critical_factor = 0;  // never escalate in this test
  auto ev = HealthEvaluator::Create(ops.get(), daemons_[0].get(), hc);
  ASSERT_TRUE(ev.ok()) << ev.status().ToString();

  auto mon_bus = MakeClient(0, "busmon");
  auto mon = telemetry::BusMon::Create(mon_bus.get());
  ASSERT_TRUE(mon.ok()) << mon.status().ToString();

  // Let the setup-time subscription churn wash through a few intervals.
  Settle(1 * kSecond);
  ASSERT_EQ((*ev)->events_published(), 0u);

  // The churn burst: 5 subscribe/unsubscribe pairs inside one evaluation interval.
  auto churner = MakeClient(0, "churner");
  for (int i = 0; i < 5; ++i) {
    auto sub = churner->Subscribe("flap.s" + std::to_string(i), [](const Message&) {});
    ASSERT_TRUE(sub.ok());
    sim_.RunFor(5 * kMillisecond);
    ASSERT_TRUE(churner->Unsubscribe(*sub).ok());
    sim_.RunFor(5 * kMillisecond);
  }
  Settle(500 * kMillisecond);
  ASSERT_EQ((*ev)->events_published(), 1u);
  EXPECT_EQ((*ev)->events()[0].kind, HealthEventKind::kSubscriptionChurn);
  EXPECT_EQ((*ev)->events()[0].severity, HealthSeverity::kWarning);
  EXPECT_EQ((*ev)->active_alerts(), 1u);
  EXPECT_EQ((*mon)->active_alert_count(), 1u);

  // Quiet again: exactly one clear after clear_hold_intervals clean intervals.
  Settle(2 * kSecond);
  ASSERT_EQ((*ev)->events_published(), 2u);
  EXPECT_EQ((*ev)->events()[1].kind, HealthEventKind::kSubscriptionChurn);
  EXPECT_EQ((*ev)->events()[1].severity, HealthSeverity::kClear);
  EXPECT_EQ((*ev)->active_alerts(), 0u);
  EXPECT_EQ((*mon)->active_alert_count(), 0u);
  EXPECT_EQ((*mon)->alert_history().size(), 2u);

  // The transitions rode the bus as typed events on the reserved namespace.
  const std::string frame = (*mon)->RenderSnapshot();
  EXPECT_NE(frame.find("alert transitions seen: 2"), std::string::npos);

  // And the daemon's flight recorder kept the episode for the post-mortem.
  EXPECT_NE(daemons_[0]->flight_recorder()->DumpJsonl().find("subscription_churn"),
            std::string::npos);
}

TEST_F(HealthEvaluatorTest, ChurnBurstEscalatesToCritical) {
  SetUpBus(1);
  auto ops = MakeClient(0, "ops");
  HealthConfig hc;
  hc.interval_us = 250 * kMillisecond;
  hc.churn_raise = 4;
  hc.churn_clear = 0;
  hc.critical_factor = 2;  // 8+ churn ops in one interval goes critical
  auto ev = HealthEvaluator::Create(ops.get(), daemons_[0].get(), hc);
  ASSERT_TRUE(ev.ok()) << ev.status().ToString();
  Settle(1 * kSecond);
  ASSERT_EQ((*ev)->events_published(), 0u);

  auto churner = MakeClient(0, "churner");
  for (int i = 0; i < 6; ++i) {
    auto sub = churner->Subscribe("flap.s" + std::to_string(i), [](const Message&) {});
    ASSERT_TRUE(sub.ok());
    sim_.RunFor(2 * kMillisecond);
    ASSERT_TRUE(churner->Unsubscribe(*sub).ok());
    sim_.RunFor(2 * kMillisecond);
  }
  Settle(500 * kMillisecond);
  ASSERT_GE((*ev)->events_published(), 1u);
  EXPECT_EQ((*ev)->events()[0].severity, HealthSeverity::kCritical);
}

TEST_F(HealthEvaluatorTest, PartitionSuspectedWhenPeerStatsGoSilent) {
  SetUpBus(2);
  auto ops0 = MakeClient(0, "ops0");
  auto ops1 = MakeClient(1, "ops1");

  HealthConfig hc;
  hc.interval_us = 250 * kMillisecond;
  hc.peer_silence_us = 2 * kSecond;
  hc.clear_hold_intervals = 2;
  auto ev = HealthEvaluator::Create(ops0.get(), daemons_[0].get(), hc);
  ASSERT_TRUE(ev.ok()) << ev.status().ToString();

  auto rep = StatsReporter::Create(ops1.get(), daemons_[1].get(), 500 * kMillisecond);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  auto reporter = rep.take();

  Settle(2 * kSecond);
  ASSERT_EQ((*ev)->events_published(), 0u);

  // host1's stats feed dies; after peer_silence_us host0 suspects a partition.
  reporter.reset();
  Settle(3 * kSecond);
  ASSERT_EQ((*ev)->events_published(), 1u);
  const HealthEvent& raised = (*ev)->events()[0];
  EXPECT_EQ(raised.kind, HealthEventKind::kPartitionSuspected);
  EXPECT_EQ(raised.subject, "host1");
  EXPECT_NE(raised.severity, HealthSeverity::kClear);
  EXPECT_EQ((*ev)->active_alerts(), 1u);

  // The feed comes back; the alert retires after the hysteresis hold.
  rep = StatsReporter::Create(ops1.get(), daemons_[1].get(), 500 * kMillisecond);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  reporter = rep.take();
  Settle(3 * kSecond);
  ASSERT_EQ((*ev)->events_published(), 2u);
  EXPECT_EQ((*ev)->events()[1].kind, HealthEventKind::kPartitionSuspected);
  EXPECT_EQ((*ev)->events()[1].severity, HealthSeverity::kClear);
  EXPECT_EQ((*ev)->active_alerts(), 0u);
}

}  // namespace
}  // namespace ibus
