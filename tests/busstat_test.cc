// busstat unit + integration tests: the fixed-memory heavy-hitter sketch and its
// determinism contract, mergeable histograms, deterministic trace sampling, the
// keyframe/delta time-series codec (including late join and desync recovery), and
// the end-to-end aggregator over the canonical WAN scenario. Everything here works
// under -DIB_TELEMETRY=OFF too: sketches, counters, and the stats plane are
// always-on; only histogram *recording* and span *collection* are telemetry-gated.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/telemetry/busstat.h"
#include "src/telemetry/busstat_demo.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/sketch.h"
#include "src/telemetry/trace.h"
#include "src/wire/wire.h"

namespace ibus::telemetry {
namespace {

// --- TopKSketch --------------------------------------------------------------------

TEST(TopKSketch, MemoryStaysFixedUnderManyDistinctKeys) {
  TopKSketch sketch(8);
  for (int i = 0; i < 10000; ++i) {
    sketch.Offer("subject." + std::to_string(i));
    ASSERT_LE(sketch.size(), 8u);
  }
  EXPECT_EQ(sketch.size(), 8u);
  EXPECT_EQ(sketch.capacity(), 8u);
  EXPECT_EQ(sketch.offered(), 10000u);
}

TEST(TopKSketch, HeavyHittersSurviveEviction) {
  TopKSketch sketch(4);
  // One genuinely heavy key (40% of the stream — above the 1/capacity guarantee
  // threshold) interleaved with a churning stream of one-off keys.
  for (int i = 0; i < 300; ++i) {
    sketch.Offer("hot.a");
    sketch.Offer("hot.a");
    sketch.Offer("cold." + std::to_string(i));
  }
  std::vector<TopKSketch::Entry> entries = sketch.Entries();
  ASSERT_GE(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "hot.a");
  // hot.a was tracked from the fill phase and never evicted: exact count, no error.
  EXPECT_EQ(entries[0].count, 600u);
  EXPECT_EQ(entries[0].error, 0u);
  // The churned cold slots carry the inherited-count error bound; the guarantee
  // that survives is true_count >= count - error, never the raw count.
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i].count, entries[i].error);
  }
}

TEST(TopKSketch, RankingIsCountDescThenKeyAsc) {
  TopKSketch sketch(8);
  sketch.Offer("b", 5);
  sketch.Offer("a", 5);
  sketch.Offer("c", 7);
  std::vector<TopKSketch::Entry> entries = sketch.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].key, "c");
  EXPECT_EQ(entries[1].key, "a");  // count tie with "b": key asc
  EXPECT_EQ(entries[2].key, "b");
}

TEST(TopKSketch, EvictionTieBreaksOnLexicographicallyGreatestKey) {
  TopKSketch sketch(2);
  sketch.Offer("aaa");
  sketch.Offer("zzz");  // both count=1; victim must be "zzz"
  sketch.Offer("new");
  std::set<std::string> keys;
  for (const TopKSketch::Entry& e : sketch.Entries()) {
    keys.insert(e.key);
  }
  EXPECT_TRUE(keys.count("aaa")) << "tie-break evicted the wrong slot";
  EXPECT_FALSE(keys.count("zzz"));
  EXPECT_TRUE(keys.count("new"));
}

TEST(TopKSketch, DeterministicAcrossReplays) {
  auto run = [] {
    TopKSketch sketch(6);
    for (int i = 0; i < 500; ++i) {
      sketch.Offer("k" + std::to_string(i % 23));
      sketch.Offer("k" + std::to_string((i * 7) % 41));
    }
    return sketch.Hash();
  };
  EXPECT_EQ(run(), run());
}

TEST(TopKSketch, MergeUnionsCountsAndTruncatesToCapacity) {
  TopKSketch a(4), b(4);
  a.Offer("x", 10);
  a.Offer("y", 5);
  b.Offer("x", 3);
  b.Offer("z", 8);
  b.Offer("w", 1);
  b.Offer("v", 1);
  b.Offer("u", 1);
  a.Merge(b);
  EXPECT_LE(a.size(), 4u);
  EXPECT_EQ(a.offered(), 29u);
  std::vector<TopKSketch::Entry> entries = a.Entries();
  EXPECT_EQ(entries[0].key, "x");
  EXPECT_EQ(entries[0].count, 13u);  // shared keys add
  EXPECT_EQ(entries[1].key, "z");
}

TEST(TopKSketch, WireRoundTripPreservesTable) {
  TopKSketch sketch(5);
  for (int i = 0; i < 100; ++i) {
    sketch.Offer("s" + std::to_string(i % 9), static_cast<uint64_t>(1 + i % 3));
  }
  WireWriter w;
  sketch.Encode(&w);
  Bytes encoded = w.Take();
  WireReader r(encoded);
  Result<TopKSketch> decoded = TopKSketch::Decode(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->RenderTable(), sketch.RenderTable());
  EXPECT_EQ(decoded->Hash(), sketch.Hash());
  EXPECT_EQ(decoded->offered(), sketch.offered());
}

TEST(TopKSketch, DecodeRejectsOversizedCapacity) {
  TopKSketch sketch(4);
  sketch.Offer("k");
  WireWriter w;
  sketch.Encode(&w);
  Bytes encoded = w.Take();
  WireReader r(encoded);
  Result<TopKSketch> decoded = TopKSketch::Decode(&r, /*max_capacity=*/2);
  EXPECT_FALSE(decoded.ok()) << "a hostile capacity must not drive allocation";
}

// --- LatencyHistogram::Merge -------------------------------------------------------
// (Merge itself is not telemetry-gated; under IB_TELEMETRY=OFF these tests build
// the histograms through the decoder-restore path, which is also ungated.)

LatencyHistogram HistogramOf(const std::vector<int64_t>& values) {
  LatencyHistogram h;
  for (int64_t v : values) {
#if IBUS_TELEMETRY
    h.Record(v);
#else
    h.RestoreBucket(LatencyHistogram::BucketOf(v), 1);
#endif
  }
  return h;
}

TEST(LatencyHistogramMerge, EmptyPlusEmptyIsEmpty) {
  LatencyHistogram a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0);
  EXPECT_EQ(a.max(), 0);
  EXPECT_EQ(a.Percentile(0.99), 0);
}

TEST(LatencyHistogramMerge, DisjointBucketsAdd) {
  LatencyHistogram lo = HistogramOf({1, 2, 3});
  LatencyHistogram hi = HistogramOf({1000, 2000, 4000});
  lo.Merge(hi);
  EXPECT_EQ(lo.count(), 6u);
  for (int64_t v : {1, 2, 3, 1000, 2000, 4000}) {
    EXPECT_GE(lo.bucket_count(LatencyHistogram::BucketOf(v)), 1u) << v;
  }
}

TEST(LatencyHistogramMerge, MergedPercentileMatchesConcatenated) {
  std::vector<int64_t> xs, ys, all;
  for (int i = 1; i <= 200; ++i) {
    xs.push_back(i * 17 % 5000 + 1);
    ys.push_back(i * 113 % 90000 + 1);
  }
  all = xs;
  all.insert(all.end(), ys.begin(), ys.end());
  LatencyHistogram a = HistogramOf(xs);
  LatencyHistogram b = HistogramOf(ys);
  a.Merge(b);
  LatencyHistogram concat = HistogramOf(all);
  // Log buckets line up exactly across histograms, so merge-then-percentile must
  // EQUAL concatenate-then-percentile — not just approximate it.
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.Percentile(q), concat.Percentile(q)) << "q=" << q;
  }
  EXPECT_EQ(a.count(), concat.count());
}

TEST(LatencyHistogramMerge, OverflowBucketSurvivesMerge) {
  const int64_t huge = int64_t{1} << 62;
  LatencyHistogram a = HistogramOf({huge});
  LatencyHistogram b = HistogramOf({huge, 5});
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket_count(LatencyHistogram::BucketOf(huge)), 2u);
#if IBUS_TELEMETRY
  EXPECT_EQ(a.max(), huge);  // min/max only tracked when recording is compiled in
#endif
}

#if IBUS_TELEMETRY
TEST(LatencyHistogramMerge, MinMaxCombineAcrossEmptyAndNonEmpty) {
  LatencyHistogram empty;
  LatencyHistogram data = HistogramOf({42, 7, 99});
  empty.Merge(data);  // empty ⊕ data adopts data's stats
  EXPECT_EQ(empty.min(), 7);
  EXPECT_EQ(empty.max(), 99);
  EXPECT_EQ(empty.count(), 3u);
  LatencyHistogram copy = HistogramOf({42, 7, 99});
  copy.Merge(LatencyHistogram());  // data ⊕ empty is unchanged
  EXPECT_EQ(copy.min(), 7);
  EXPECT_EQ(copy.max(), 99);
  EXPECT_EQ(copy.count(), 3u);
}
#endif

// --- Deterministic trace sampling --------------------------------------------------

TEST(TraceSampling, PeriodZeroAndOneAreOffAndAll) {
  for (uint64_t id = 0; id < 100; ++id) {
    EXPECT_FALSE(ShouldSampleTrace(id, 0));
    EXPECT_TRUE(ShouldSampleTrace(id, 1));
  }
}

TEST(TraceSampling, DecisionIsPureFunctionOfIdAndPeriod) {
  for (uint64_t id = 0; id < 1000; ++id) {
    EXPECT_EQ(ShouldSampleTrace(id, 64), ShouldSampleTrace(id, 64));
  }
}

TEST(TraceSampling, FractionApproximatesPeriod) {
  int sampled = 0;
  const int n = 64000;
  for (uint64_t id = 0; id < n; ++id) {
    if (ShouldSampleTrace(id, 64)) {
      sampled++;
    }
  }
  // Expected n/64 = 1000; the SplitMix64 finalizer scatters ids uniformly.
  EXPECT_GT(sampled, 800);
  EXPECT_LT(sampled, 1200);
}

TEST(TraceSampling, HashScattersSequentialIds) {
  // Sequential candidate ids (the client allocator's pattern) must not alias into
  // the same residue class — that is the whole point of hashing before mod.
  std::set<uint64_t> residues;
  for (uint64_t id = 0; id < 64; ++id) {
    residues.insert(TraceIdHash(id) % 64);
  }
  EXPECT_GT(residues.size(), 32u);
}

// --- Keyframe/delta time-series codec ----------------------------------------------

TEST(StatSeries, KeyframeThenDeltasRoundTrip) {
  MetricsRegistry reg;
  Counter* pubs = reg.GetCounter("bus.publishes");
  Gauge* depth = reg.GetGauge("queue.depth");
  TopKSketch subjects(4);
  subjects.Offer("orders.new", 3);

  StatSeriesEncoder enc("node1", /*keyframe_every=*/4);
  StatSeriesDecoder dec;

  pubs->Inc(10);
  depth->Set(5);
  ASSERT_TRUE(dec.DecodeSample(enc.EncodeSample(reg, &subjects, nullptr, 1000, 64)).ok());
  EXPECT_TRUE(dec.synced());
  EXPECT_EQ(dec.latest().values.at("bus.publishes"), 10);
  EXPECT_EQ(dec.latest().values.at("queue.depth"), 5);
  EXPECT_EQ(dec.latest().sample_period, 64u);

  pubs->Inc(7);
  depth->Set(-2);  // gauges go negative; zigzag must carry it
  ASSERT_TRUE(dec.DecodeSample(enc.EncodeSample(reg, &subjects, nullptr, 2000, 64)).ok());
  EXPECT_EQ(dec.latest().values.at("bus.publishes"), 17);
  EXPECT_EQ(dec.latest().values.at("queue.depth"), -2);
  EXPECT_EQ(dec.latest().seq, 1u);  // sequence numbers are 0-based (seq 0 = keyframe)
  EXPECT_EQ(dec.latest().at_us, 2000);
  EXPECT_EQ(dec.latest().subject_sketch.Hash(), subjects.Hash());
}

TEST(StatSeries, NewMetricAppearsMidStream) {
  MetricsRegistry reg;
  reg.GetCounter("a")->Inc(1);
  StatSeriesEncoder enc("n", 8);
  StatSeriesDecoder dec;
  ASSERT_TRUE(dec.DecodeSample(enc.EncodeSample(reg, nullptr, nullptr, 1, 0)).ok());
  // A metric registered after the keyframe must still reach the decoder via the
  // delta's fresh-append section.
  reg.GetCounter("b")->Inc(5);
  ASSERT_TRUE(dec.DecodeSample(enc.EncodeSample(reg, nullptr, nullptr, 2, 0)).ok());
  EXPECT_EQ(dec.latest().values.at("b"), 5);
}

TEST(StatSeries, LateJoinerWaitsForKeyframe) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("x");
  StatSeriesEncoder enc("n", /*keyframe_every=*/3);
  StatSeriesDecoder dec;
  c->Inc(1);
  Bytes s1 = enc.EncodeSample(reg, nullptr, nullptr, 1, 0);  // keyframe (seq 0)
  c->Inc(1);
  Bytes s2 = enc.EncodeSample(reg, nullptr, nullptr, 2, 0);  // delta
  // The late joiner misses the keyframe: the delta must be refused, not misapplied.
  EXPECT_FALSE(dec.DecodeSample(s2).ok());
  EXPECT_FALSE(dec.synced());
  EXPECT_EQ(dec.desyncs(), 1u);
  c->Inc(1);
  Bytes s3 = enc.EncodeSample(reg, nullptr, nullptr, 3, 0);  // delta
  EXPECT_FALSE(dec.DecodeSample(s3).ok());
  c->Inc(1);
  Bytes s4 = enc.EncodeSample(reg, nullptr, nullptr, 4, 0);  // keyframe again (seq 3)
  ASSERT_TRUE(dec.DecodeSample(s4).ok());
  EXPECT_TRUE(dec.synced());
  EXPECT_EQ(dec.latest().values.at("x"), 4);
}

TEST(StatSeries, SequenceGapDesyncsUntilNextKeyframe) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("x");
  StatSeriesEncoder enc("n", /*keyframe_every=*/4);
  StatSeriesDecoder dec;
  c->Inc(1);
  ASSERT_TRUE(dec.DecodeSample(enc.EncodeSample(reg, nullptr, nullptr, 1, 0)).ok());
  c->Inc(1);
  Bytes dropped = enc.EncodeSample(reg, nullptr, nullptr, 2, 0);  // lost in transit
  (void)dropped;
  c->Inc(1);
  Bytes s3 = enc.EncodeSample(reg, nullptr, nullptr, 3, 0);
  EXPECT_FALSE(dec.DecodeSample(s3).ok()) << "a delta across a gap must not apply";
  EXPECT_FALSE(dec.synced());
  c->Inc(1);
  Bytes s4 = enc.EncodeSample(reg, nullptr, nullptr, 4, 0);
  c->Inc(1);
  Bytes s5 = enc.EncodeSample(reg, nullptr, nullptr, 5, 0);  // keyframe (seq 4)
  EXPECT_FALSE(dec.DecodeSample(s4).ok());
  ASSERT_TRUE(dec.DecodeSample(s5).ok());
  EXPECT_TRUE(dec.synced());
  EXPECT_EQ(dec.latest().values.at("x"), 5);
}

TEST(StatSeries, ForeignVersionByteIsSkippedQuietly) {
  StatSeriesDecoder dec;
  Bytes legacy = {3, 1, 2, 3};  // DaemonStatsSnapshot::kWireVersion leads
  Status s = dec.DecodeSample(legacy);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(dec.desyncs(), 0u) << "foreign records are not desyncs";
}

#if IBUS_TELEMETRY
TEST(StatSeries, HistogramsTravelAndMergeAcrossNodes) {
  MetricsRegistry reg_a, reg_b;
  reg_a.GetHistogram("lat")->Record(100);
  reg_a.GetHistogram("lat")->Record(200);
  reg_b.GetHistogram("lat")->Record(90000);
  StatSeriesEncoder enc_a("a", 8), enc_b("b", 8);
  StatsAggregator agg;
  agg.Consume(enc_a.EncodeSample(reg_a, nullptr, nullptr, 1, 0));
  agg.Consume(enc_b.EncodeSample(reg_b, nullptr, nullptr, 1, 0));
  LatencyHistogram merged = agg.MergedHistogram("lat");
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_EQ(merged.min(), 100);
  EXPECT_EQ(merged.max(), 90000);
  EXPECT_GE(merged.Percentile(0.99), 90000);
}
#endif

// --- StatsAggregator ---------------------------------------------------------------

TEST(StatsAggregator, MergesSketchesAndValuesAcrossNodes) {
  MetricsRegistry reg_a, reg_b;
  reg_a.GetCounter("bus.publishes")->Inc(10);
  reg_b.GetCounter("bus.publishes")->Inc(32);
  TopKSketch sk_a(4), sk_b(4);
  sk_a.Offer("orders.new", 9);
  sk_b.Offer("orders.new", 4);
  sk_b.Offer("market.tick", 6);
  StatSeriesEncoder enc_a("a", 8), enc_b("b", 8);
  StatsAggregator agg;
  agg.Consume(enc_a.EncodeSample(reg_a, &sk_a, nullptr, 1, 64));
  agg.Consume(enc_b.EncodeSample(reg_b, &sk_b, nullptr, 1, 64));
  EXPECT_EQ(agg.Nodes(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(agg.FleetValue("bus.publishes"), 42);
  std::vector<TopKSketch::Entry> top = agg.MergedSubjectSketch().Entries();
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].key, "orders.new");
  EXPECT_EQ(top[0].count, 13u);
  EXPECT_EQ(top[1].key, "market.tick");
}

TEST(StatsAggregator, RenderingsAreArrivalOrderIndependent) {
  auto feed = [](bool a_first) {
    MetricsRegistry reg_a, reg_b;
    reg_a.GetCounter("c")->Inc(1);
    reg_b.GetCounter("c")->Inc(2);
    StatSeriesEncoder enc_a("a", 8), enc_b("b", 8);
    Bytes sa = enc_a.EncodeSample(reg_a, nullptr, nullptr, 1, 0);
    Bytes sb = enc_b.EncodeSample(reg_b, nullptr, nullptr, 1, 0);
    StatsAggregator agg;
    agg.Consume(a_first ? sa : sb);
    agg.Consume(a_first ? sb : sa);
    return agg.RenderJson();
  };
  EXPECT_EQ(feed(true), feed(false));
}

TEST(StatsAggregator, RingKeepsBoundedHistory) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("x");
  StatSeriesEncoder enc("n", 8);
  StatsAggregator agg;
  for (int i = 0; i < 50; ++i) {
    c->Inc(1);
    agg.Consume(enc.EncodeSample(reg, nullptr, nullptr, i, 0));
  }
  std::vector<StatsAggregator::RingEntry> hist = agg.History("n");
  ASSERT_EQ(hist.size(), kStatsRingDepth);
  EXPECT_EQ(hist.front().seq + kStatsRingDepth - 1, hist.back().seq);
  EXPECT_EQ(hist.back().values.at("x"), 50);
}

// --- End to end: the canonical WAN scenario ----------------------------------------

TEST(BusstatScenario, SamplingThinsTraceTrafficButNotGoodput) {
  BusStatScenarioOptions all, sampled;
  all.sample_period = 1;
  all.messages = 120;
  sampled.sample_period = 64;
  sampled.messages = 120;
  BusStatScenario run_all = RunBusstatWanScenario(42, all);
  BusStatScenario run_sampled = RunBusstatWanScenario(42, sampled);
  ASSERT_NE(run_all.trace.front().rfind("error:", 0), 0u) << run_all.trace.front();
  ASSERT_NE(run_sampled.trace.front().rfind("error:", 0), 0u) << run_sampled.trace.front();
  EXPECT_EQ(run_all.delivered, 120u);
  EXPECT_EQ(run_sampled.delivered, 120u);
#if IBUS_TELEMETRY
  EXPECT_LT(run_sampled.self_bytes, run_all.self_bytes);
  EXPECT_LT(run_sampled.overhead_ratio, run_all.overhead_ratio);
  EXPECT_GT(run_all.traces_collected, 100u);
  EXPECT_LT(run_sampled.traces_collected, 20u);
#else
  // With tracing compiled out there is nothing to thin: the plane's residual cost
  // (stats snapshots + time-series samples) is identical at every sampling rate.
  EXPECT_EQ(run_sampled.self_bytes, run_all.self_bytes);
#endif
}

TEST(BusstatScenario, AggregatorSeesEveryReporterWithoutDesync) {
  BusStatScenarioOptions options;
  options.messages = 60;
  BusStatScenario run = RunBusstatWanScenario(7, options);
  ASSERT_NE(run.trace.front().rfind("error:", 0), 0u) << run.trace.front();
  EXPECT_EQ(run.desyncs, 0u);
  EXPECT_GT(run.samples_consumed, 0u);
  // All six reporters (4 daemons + 2 routers) must reach the far-LAN aggregator.
  size_t node_lines = 0;
  for (const std::string& line : run.trace) {
    if (line.rfind("node ", 0) == 0) {
      node_lines++;
    }
  }
  EXPECT_EQ(node_lines, 6u);
}

}  // namespace
}  // namespace ibus::telemetry
