# Replay-determinism smoke for busstat (see tools/busstat/CMakeLists.txt): two runs
# of the same seed must produce byte-identical JSON (the merged sketches, deltas,
# and quantiles all ride the deterministic simulator), the JSON must carry the
# BUSSTAT_1 schema tag, and a different seed must produce a different hash (the
# stats plane actually depends on the replay, not on wall-clock state).
foreach(var BUSSTAT WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "busstat_replay.cmake: missing -D${var}=")
  endif()
endforeach()

execute_process(COMMAND ${BUSSTAT} --seed 42 --json --out ${WORKDIR}/stats_a.json
                RESULT_VARIABLE rc1)
execute_process(COMMAND ${BUSSTAT} --seed 42 --json --out ${WORKDIR}/stats_b.json
                RESULT_VARIABLE rc2)
execute_process(COMMAND ${BUSSTAT} --seed 42 --table --out ${WORKDIR}/stats_a.table
                RESULT_VARIABLE rc3)
execute_process(COMMAND ${BUSSTAT} --seed 42 --table --out ${WORKDIR}/stats_b.table
                RESULT_VARIABLE rc4)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0 OR NOT rc3 EQUAL 0 OR NOT rc4 EQUAL 0)
  message(FATAL_ERROR "busstat runs failed (rc=${rc1}/${rc2}/${rc3}/${rc4})")
endif()

file(READ ${WORKDIR}/stats_a.json json_a)
file(READ ${WORKDIR}/stats_b.json json_b)
if(NOT json_a STREQUAL json_b)
  message(FATAL_ERROR "busstat JSON is not bit-identical across replays of seed 42")
endif()
file(READ ${WORKDIR}/stats_a.table table_a)
file(READ ${WORKDIR}/stats_b.table table_b)
if(NOT table_a STREQUAL table_b)
  message(FATAL_ERROR "busstat table is not bit-identical across replays of seed 42")
endif()
if(NOT json_a MATCHES "\"schema\": \"BUSSTAT_1\"")
  message(FATAL_ERROR "busstat JSON lacks the BUSSTAT_1 schema tag")
endif()
if(NOT json_a MATCHES "\"overhead_ratio\":")
  message(FATAL_ERROR "busstat JSON lacks the telemetry self-overhead ratio")
endif()

execute_process(COMMAND ${BUSSTAT} --seed 42 --hash
                OUTPUT_VARIABLE hash_42 RESULT_VARIABLE rc5)
execute_process(COMMAND ${BUSSTAT} --seed 43 --hash
                OUTPUT_VARIABLE hash_43 RESULT_VARIABLE rc6)
if(NOT rc5 EQUAL 0 OR NOT rc6 EQUAL 0)
  message(FATAL_ERROR "busstat --hash runs failed (rc=${rc5}/${rc6})")
endif()
if(hash_42 STREQUAL hash_43)
  message(FATAL_ERROR "seeds 42 and 43 produced the same stats hash — "
                      "the stats plane is not sensitive to the replay: ${hash_42}")
endif()
