// Property tests for the reliable delivery protocol: across a parameter grid of
// loss/duplication/jitter, and mixtures of message sizes, every subscriber sees every
// message exactly once, in per-sender order (paper §3.1 semantics). Degradation cases
// (retention overflow, long partitions) must surface as explicit gaps — never as
// silent duplicates or reordering.
#include <gtest/gtest.h>

#include "tests/bus_fixture.h"

namespace ibus {
namespace {

struct FaultCase {
  double drop;
  double dup;
  SimTime jitter_us;
  bool batching;
};

class ReliableUnderFaultsTest : public BusFixture,
                                public ::testing::WithParamInterface<FaultCase> {};

TEST_P(ReliableUnderFaultsTest, ExactlyOnceInOrder) {
  const FaultCase& fc = GetParam();
  BusConfig cfg;
  cfg.reliable.batching_enabled = fc.batching;
  SetUpBus(3, cfg);

  auto pub = MakeClient(0, "pub");
  auto sub1 = MakeClient(1, "sub1");
  auto sub2 = MakeClient(2, "sub2");
  std::vector<int> got1, got2;
  ASSERT_TRUE(sub1->Subscribe("prop.stream", [&](const Message& m) {
                    got1.push_back(std::stoi(ToString(m.payload)));
                  }).ok());
  ASSERT_TRUE(sub2->Subscribe("prop.stream", [&](const Message& m) {
                    got2.push_back(std::stoi(ToString(m.payload)));
                  }).ok());
  Settle(50 * kMillisecond);

  // Latch every receiver onto the stream fault-free first: the exactly-once
  // guarantee is steady-state; where a lossy stream START pins a late joiner is
  // inherently fuzzy ("new subscribers receive new objects", §3.1).
  ASSERT_TRUE(pub->Publish("prop.stream", ToBytes("-1")).ok());
  Settle();
  ASSERT_EQ(got1.size(), 1u);
  ASSERT_EQ(got2.size(), 1u);
  got1.clear();
  got2.clear();

  FaultPlan plan;
  plan.drop_prob = fc.drop;
  plan.dup_prob = fc.dup;
  plan.jitter_us = fc.jitter_us;
  net_->SetFaultPlan(seg_, plan);

  constexpr int kMessages = 120;
  Rng rng(99);
  for (int i = 0; i < kMessages; ++i) {
    // Mix small and fragmented messages.
    size_t size = rng.Chance(0.2) ? 4000 + rng.NextBelow(4000) : 8 + rng.NextBelow(200);
    Bytes payload = ToBytes(std::to_string(i));
    payload.resize(std::max(payload.size(), size), '.');
    // Keep the numeric prefix parseable.
    ASSERT_TRUE(pub->Publish("prop.stream", payload).ok());
    if (i % 10 == 0) {
      Settle(20 * kMillisecond);
    }
  }
  Settle(30 * kSecond);

  for (const std::vector<int>* got : {&got1, &got2}) {
    ASSERT_EQ(got->size(), static_cast<size_t>(kMessages))
        << "drop=" << fc.drop << " dup=" << fc.dup << " jitter=" << fc.jitter_us;
    for (int i = 0; i < kMessages; ++i) {
      EXPECT_EQ((*got)[static_cast<size_t>(i)], i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultGrid, ReliableUnderFaultsTest,
    ::testing::Values(FaultCase{0.0, 0.0, 0, false}, FaultCase{0.1, 0.0, 0, false},
                      FaultCase{0.3, 0.0, 0, false}, FaultCase{0.0, 0.3, 0, false},
                      FaultCase{0.0, 0.0, 2000, false}, FaultCase{0.15, 0.15, 1000, false},
                      FaultCase{0.1, 0.0, 0, true}, FaultCase{0.2, 0.2, 1500, true}),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      const FaultCase& c = info.param;
      return "drop" + std::to_string(static_cast<int>(c.drop * 100)) + "_dup" +
             std::to_string(static_cast<int>(c.dup * 100)) + "_jit" +
             std::to_string(c.jitter_us) + (c.batching ? "_batch" : "_nobatch");
    });

class ProtoDegradationTest : public BusFixture {};

TEST_F(ProtoDegradationTest, RetentionOverflowSurfacesAsGapNotDuplicates) {
  BusConfig cfg;
  cfg.reliable.retain_messages = 16;  // tiny retransmit buffer
  SetUpBus(2, cfg);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  std::vector<int> got;
  ASSERT_TRUE(sub->Subscribe("gap.stream", [&](const Message& m) {
                    got.push_back(std::stoi(ToString(m.payload)));
                  }).ok());
  Settle(50 * kMillisecond);

  // Latch the stream first so the receiver knows what it later misses.
  ASSERT_TRUE(pub->Publish("gap.stream", ToBytes("-1")).ok());
  Settle();
  ASSERT_EQ(got.size(), 1u);
  got.clear();

  // Partition the subscriber, publish far beyond the retention window, then heal.
  net_->SetPartitionGroups({{hosts_[1], 1}});
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pub->Publish("gap.stream", ToBytes(std::to_string(i))).ok());
  }
  Settle(3 * kSecond);
  EXPECT_TRUE(got.empty());
  net_->SetPartitionGroups({});
  for (int i = 100; i < 110; ++i) {
    ASSERT_TRUE(pub->Publish("gap.stream", ToBytes(std::to_string(i))).ok());
    Settle(100 * kMillisecond);
  }
  Settle(10 * kSecond);

  // At-most-once degradation: some prefix was lost for good, but whatever was
  // delivered is duplicate-free and strictly increasing, and the tail arrives.
  ASSERT_FALSE(got.empty());
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(got[i - 1], got[i]);
  }
  EXPECT_EQ(got.back(), 109);
  EXPECT_GT(daemons_[1]->receiver_stats().gaps, 0u);
}

TEST_F(ProtoDegradationTest, ShortPartitionFullyRecovers) {
  SetUpBus(2);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  std::vector<int> got;
  ASSERT_TRUE(sub->Subscribe("heal.stream", [&](const Message& m) {
                    got.push_back(std::stoi(ToString(m.payload)));
                  }).ok());
  Settle(50 * kMillisecond);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pub->Publish("heal.stream", ToBytes(std::to_string(i))).ok());
  }
  Settle();
  net_->SetPartitionGroups({{hosts_[1], 1}});
  for (int i = 10; i < 30; ++i) {  // well within the retention window
    ASSERT_TRUE(pub->Publish("heal.stream", ToBytes(std::to_string(i))).ok());
  }
  Settle(200 * kMillisecond);
  net_->SetPartitionGroups({});
  for (int i = 30; i < 40; ++i) {
    ASSERT_TRUE(pub->Publish("heal.stream", ToBytes(std::to_string(i))).ok());
  }
  Settle(10 * kSecond);

  // Everything missed during the partition is NAK-recovered: exactly once, in order.
  ASSERT_EQ(got.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], i);
  }
}

TEST_F(ProtoDegradationTest, TailLossRecoveredViaHeartbeat) {
  SetUpBus(2);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  std::vector<int> got;
  ASSERT_TRUE(sub->Subscribe("tail.stream", [&](const Message& m) {
                    got.push_back(std::stoi(ToString(m.payload)));
                  }).ok());
  Settle(50 * kMillisecond);
  ASSERT_TRUE(pub->Publish("tail.stream", ToBytes("0")).ok());
  Settle();
  ASSERT_EQ(got.size(), 1u);

  // Drop everything briefly: the last message of a burst vanishes with no successor
  // to reveal the gap — only the heartbeat can.
  FaultPlan lossy;
  lossy.drop_prob = 1.0;
  net_->SetFaultPlan(seg_, lossy);
  ASSERT_TRUE(pub->Publish("tail.stream", ToBytes("1")).ok());
  Settle(30 * kMillisecond);
  net_->SetFaultPlan(seg_, FaultPlan{});
  Settle(10 * kSecond);

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], 1);
}

TEST_F(ProtoDegradationTest, ManyPublishersDoNotInterfere) {
  SetUpBus(6);
  FaultPlan plan;
  plan.drop_prob = 0.1;
  net_->SetFaultPlan(seg_, plan);
  std::vector<std::unique_ptr<BusClient>> pubs;
  for (int i = 0; i < 5; ++i) {
    pubs.push_back(MakeClient(i, "pub" + std::to_string(i)));
  }
  auto sub = MakeClient(5, "sub");
  // Per-sender order must hold independently; cross-sender order is unspecified.
  std::map<std::string, std::vector<int>> got;
  ASSERT_TRUE(sub->Subscribe("multi.>", [&](const Message& m) {
                    got[m.sender].push_back(std::stoi(ToString(m.payload)));
                  }).ok());
  Settle(50 * kMillisecond);
  for (int round = 0; round < 40; ++round) {
    for (int p = 0; p < 5; ++p) {
      ASSERT_TRUE(pubs[static_cast<size_t>(p)]
                      ->Publish("multi.p" + std::to_string(p), ToBytes(std::to_string(round)))
                      .ok());
    }
  }
  Settle(20 * kSecond);
  ASSERT_EQ(got.size(), 5u);
  for (const auto& [sender, seq] : got) {
    ASSERT_EQ(seq.size(), 40u) << sender;
    for (int i = 0; i < 40; ++i) {
      EXPECT_EQ(seq[static_cast<size_t>(i)], i) << sender;
    }
  }
}

}  // namespace
}  // namespace ibus
