#include <gtest/gtest.h>

#include "src/types/codec.h"
#include "src/types/data_object.h"
#include "src/types/printer.h"
#include "src/types/registry.h"
#include "src/types/type_descriptor.h"
#include "src/types/value.h"

namespace ibus {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int32_t{5}).is_i32());
  EXPECT_TRUE(Value(int64_t{5}).is_i64());
  EXPECT_TRUE(Value(2.5).is_f64());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value(Bytes{1, 2}).is_bytes());
  EXPECT_TRUE(Value(Value::List{}).is_list());
  EXPECT_EQ(Value(int32_t{5}).AsI32(), 5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, NumericWidening) {
  EXPECT_EQ(Value(int32_t{7}).NumberAsI64(), 7);
  EXPECT_EQ(Value(int64_t{1} << 40).NumberAsI64(), int64_t{1} << 40);
  EXPECT_DOUBLE_EQ(Value(int32_t{7}).NumberAsF64(), 7.0);
  EXPECT_EQ(Value(2.6).NumberAsI64(), 3);
}

TEST(ValueTest, DeepEquality) {
  auto a = MakeObject("t", {{"x", Value(int32_t{1})}});
  auto b = MakeObject("t", {{"x", Value(int32_t{1})}});
  auto c = MakeObject("t", {{"x", Value(int32_t{2})}});
  EXPECT_EQ(Value(a), Value(b));
  EXPECT_NE(Value(a), Value(c));
  EXPECT_EQ(Value(Value::List{Value(1.5), Value("s")}),
            Value(Value::List{Value(1.5), Value("s")}));
  EXPECT_NE(Value(int32_t{1}), Value(int64_t{1}));  // different kinds
}

TEST(DataObjectTest, AttributesAndProperties) {
  DataObject obj("story");
  obj.AddAttribute("headline", Value("IPO"));
  obj.AddAttribute("words", Value(int32_t{120}));
  EXPECT_TRUE(obj.HasAttribute("headline"));
  EXPECT_EQ(obj.Get("headline").AsString(), "IPO");
  EXPECT_TRUE(obj.Get("missing").is_null());
  EXPECT_TRUE(obj.Set("words", Value(int32_t{121})).ok());
  EXPECT_EQ(obj.Get("words").AsI32(), 121);
  EXPECT_FALSE(obj.Set("missing", Value(int32_t{1})).ok());

  EXPECT_FALSE(obj.HasProperty("keywords"));
  obj.SetProperty("keywords", Value(Value::List{Value("auto")}));
  EXPECT_TRUE(obj.HasProperty("keywords"));
  EXPECT_EQ(obj.GetProperty("keywords").AsList().size(), 1u);
  obj.SetProperty("keywords", Value(Value::List{Value("auto"), Value("gm")}));
  EXPECT_EQ(obj.GetProperty("keywords").AsList().size(), 2u);
}

TEST(DataObjectTest, CloneIsDeep) {
  auto inner = MakeObject("inner", {{"v", Value(int32_t{1})}});
  auto outer = MakeObject("outer", {{"child", Value(inner)}});
  DataObjectPtr copy = outer->Clone();
  inner->Set("v", Value(int32_t{99})).ok();
  EXPECT_EQ(copy->Get("child").AsObject()->Get("v").AsI32(), 1);
}

TEST(CodecTest, AllValueKindsRoundTrip) {
  Value::List list{Value(), Value(true), Value(int32_t{-5}), Value(int64_t{1} << 40),
                   Value(3.25),  Value("str"), Value(Bytes{9, 8, 7})};
  list.push_back(Value(Value::List{Value(int32_t{1}), Value(int32_t{2})}));
  list.push_back(Value(MakeObject("nested", {{"a", Value("b")}})));
  Value original{list};

  WireWriter w;
  MarshalValue(original, &w);
  Bytes data = w.Take();
  WireReader r(data);
  auto back = UnmarshalValue(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, original);
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, ObjectWithPropertiesRoundTrips) {
  auto obj = MakeObject("story", {{"headline", Value("Chips up")},
                                  {"sources", Value(Value::List{Value("dj"), Value("rt")})}});
  obj->SetProperty("keywords", Value(Value::List{Value("semis")}));
  Bytes data = MarshalObject(*obj);
  auto back = UnmarshalObject(data);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(**back, *obj);
}

TEST(CodecTest, NilNestedObjectRoundTrips) {
  auto obj = MakeObject("holder", {{"child", Value(DataObjectPtr())}});
  auto back = UnmarshalObject(MarshalObject(*obj));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE((*back)->Get("child").is_object());
  EXPECT_EQ((*back)->Get("child").AsObject(), nullptr);
}

TEST(CodecTest, CorruptBufferRejected) {
  auto obj = MakeObject("t", {{"a", Value(int32_t{1})}});
  Bytes data = MarshalObject(*obj);
  data.resize(data.size() / 2);
  EXPECT_FALSE(UnmarshalObject(data).ok());
}

TEST(CodecTest, TrailingGarbageRejected) {
  auto obj = MakeObject("t", {{"a", Value(int32_t{1})}});
  Bytes data = MarshalObject(*obj);
  data.push_back(0x00);
  EXPECT_FALSE(UnmarshalObject(data).ok());
}

TEST(DescriptorTest, WireRoundTrip) {
  TypeDescriptor d("story", "object");
  d.AddAttribute("headline", "string");
  d.AddAttribute("word_count", "i32");
  OperationDef op;
  op.name = "summarize";
  op.result_type = "string";
  op.params.push_back(ParamDef{"max_words", "i32"});
  d.AddOperation(op);
  d.set_version(3);

  auto back = TypeDescriptor::Unmarshal(d.Marshal());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, d);
  EXPECT_EQ(back->FindOperation("summarize")->Signature(), "summarize(i32 max_words) -> string");
}

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() {
    TypeDescriptor story("story", "object");
    story.AddAttribute("headline", "string");
    story.AddAttribute("body", "string");
    EXPECT_TRUE(registry_.Define(story).ok());

    TypeDescriptor dj("dj_story", "story");
    dj.AddAttribute("dj_code", "string");
    EXPECT_TRUE(registry_.Define(dj).ok());
  }

  TypeRegistry registry_;
};

TEST_F(RegistryTest, BuiltinsPresent) {
  EXPECT_TRUE(registry_.Has("object"));
  EXPECT_TRUE(registry_.Has("property"));
}

TEST_F(RegistryTest, InheritanceInAttributes) {
  auto attrs = registry_.AllAttributes("dj_story");
  ASSERT_TRUE(attrs.ok());
  ASSERT_EQ(attrs->size(), 3u);
  EXPECT_EQ((*attrs)[0].name, "headline");  // supertype attributes come first
  EXPECT_EQ((*attrs)[2].name, "dj_code");
}

TEST_F(RegistryTest, SubtypeQueries) {
  EXPECT_TRUE(registry_.IsSubtype("dj_story", "story"));
  EXPECT_TRUE(registry_.IsSubtype("dj_story", "object"));
  EXPECT_TRUE(registry_.IsSubtype("story", "story"));
  EXPECT_FALSE(registry_.IsSubtype("story", "dj_story"));
  auto closure = registry_.SubtypeClosure("story");
  std::sort(closure.begin(), closure.end());
  EXPECT_EQ(closure, (std::vector<std::string>{"dj_story", "story"}));
}

TEST_F(RegistryTest, NewInstanceHasAllSlots) {
  auto obj = registry_.NewInstance("dj_story");
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ((*obj)->attribute_count(), 3u);
  EXPECT_TRUE((*obj)->Get("headline").is_null());
  EXPECT_TRUE(registry_.Validate(**obj).ok());
}

TEST_F(RegistryTest, UnknownSupertypeRejected) {
  TypeDescriptor bad("orphan", "ghost");
  EXPECT_FALSE(registry_.Define(bad).ok());
}

TEST_F(RegistryTest, DuplicateAttributeAcrossChainRejected) {
  TypeDescriptor clash("clash", "story");
  clash.AddAttribute("headline", "string");  // already on story
  EXPECT_FALSE(registry_.Define(clash).ok());
}

TEST_F(RegistryTest, IdempotentRedefinitionOk) {
  TypeDescriptor story("story", "object");
  story.AddAttribute("headline", "string");
  story.AddAttribute("body", "string");
  EXPECT_TRUE(registry_.Define(story).ok());
}

TEST_F(RegistryTest, ConflictingRedefinitionRejectedUnlessVersionBumped) {
  TypeDescriptor story2("story", "object");
  story2.AddAttribute("headline", "string");
  story2.AddAttribute("body", "string");
  story2.AddAttribute("byline", "string");
  EXPECT_FALSE(registry_.Define(story2).ok());  // same version, different shape
  story2.set_version(2);
  EXPECT_TRUE(registry_.Define(story2).ok());  // dynamic evolution
  auto attrs = registry_.AllAttributes("story");
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size(), 3u);
}

TEST_F(RegistryTest, ValidateCatchesKindMismatch) {
  auto obj = registry_.NewInstance("story");
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE((*obj)->Set("headline", Value(int32_t{5})).ok());
  EXPECT_FALSE(registry_.Validate(**obj).ok());
}

TEST_F(RegistryTest, DefineFromWireLearnsRemoteType) {
  TypeDescriptor remote("rt_story", "story");
  remote.AddAttribute("rt_tag", "string");
  TypeRegistry other;
  TypeDescriptor story("story", "object");
  story.AddAttribute("headline", "string");
  story.AddAttribute("body", "string");
  ASSERT_TRUE(other.Define(story).ok());
  ASSERT_TRUE(other.DefineFromWire(remote.Marshal()).ok());
  EXPECT_TRUE(other.IsSubtype("rt_story", "story"));
}

TEST_F(RegistryTest, ObserverFires) {
  std::vector<std::string> seen;
  registry_.AddDefineObserver([&](const TypeDescriptor& d) { seen.push_back(d.name()); });
  TypeDescriptor t("fresh", "object");
  ASSERT_TRUE(registry_.Define(t).ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"fresh"}));
}

TEST_F(RegistryTest, ReservedNamesRejected) {
  EXPECT_FALSE(registry_.Define(TypeDescriptor("i32", "object")).ok());
  EXPECT_FALSE(registry_.Define(TypeDescriptor("object", "object")).ok());
  EXPECT_FALSE(registry_.Define(TypeDescriptor("", "object")).ok());
}

TEST(PrinterTest, PrintsAnyTypeRecursively) {
  // The paper's generic print utility: understands only fundamental kinds but prints
  // arbitrary composed objects.
  auto source = MakeObject("source", {{"agency", Value("DJ")}});
  auto story = MakeObject("story", {{"headline", Value("Fab yields up")},
                                    {"word_count", Value(int32_t{340})},
                                    {"source", Value(source)},
                                    {"codes", Value(Value::List{Value("semi"), Value("mfg")})}});
  story->SetProperty("keywords", Value(Value::List{Value("yield")}));

  std::string text = PrintObject(*story);
  EXPECT_NE(text.find("story {"), std::string::npos);
  EXPECT_NE(text.find("headline = \"Fab yields up\""), std::string::npos);
  EXPECT_NE(text.find("word_count = 340"), std::string::npos);
  EXPECT_NE(text.find("source {"), std::string::npos);
  EXPECT_NE(text.find("agency = \"DJ\""), std::string::npos);
  EXPECT_NE(text.find("@keywords"), std::string::npos);
}

TEST(PrinterTest, RegistryAnnotatesTypes) {
  TypeRegistry registry;
  TypeDescriptor story("story", "object");
  story.AddAttribute("headline", "string");
  ASSERT_TRUE(registry.Define(story).ok());
  auto obj = registry.NewInstance("story");
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE((*obj)->Set("headline", Value("x")).ok());
  PrintOptions opt;
  opt.registry = &registry;
  std::string text = PrintObject(**obj, opt);
  EXPECT_NE(text.find("isa object"), std::string::npos);
  EXPECT_NE(text.find("headline : string"), std::string::npos);
}

TEST(PrinterTest, DepthLimited) {
  // Build a deeply nested chain and make sure the printer cuts off.
  auto leaf = MakeObject("leaf");
  Value v(leaf);
  for (int i = 0; i < 40; ++i) {
    v = Value(MakeObject("level", {{"child", v}}));
  }
  PrintOptions opt;
  opt.max_depth = 5;
  std::string text = PrintValue(v, opt);
  EXPECT_NE(text.find("..."), std::string::npos);
}

}  // namespace
}  // namespace ibus
