#include "src/sim/network.h"

#include <gtest/gtest.h>

#include "src/sim/simulator.h"
#include "src/sim/stable_store.h"

namespace ibus {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(&sim_) {
    seg_ = net_.AddSegment();
    a_ = net_.AddHost("a", seg_);
    b_ = net_.AddHost("b", seg_);
    c_ = net_.AddHost("c", seg_);
  }

  Simulator sim_;
  Network net_;
  SegmentId seg_;
  HostId a_, b_, c_;
};

TEST_F(NetworkTest, UnicastDelivery) {
  Bytes got;
  auto rx = net_.OpenSocket(b_, 100, [&](const Datagram& d) { got = d.payload; });
  ASSERT_TRUE(rx.ok());
  auto tx = net_.OpenSocket(a_, 0, nullptr);
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE((*tx)->SendTo(b_, 100, ToBytes("hello")).ok());
  sim_.Run();
  EXPECT_EQ(ToString(got), "hello");
}

TEST_F(NetworkTest, DeliveryTakesSerializationPlusPropagation) {
  SimTime at = -1;
  auto rx = net_.OpenSocket(b_, 100, [&](const Datagram&) { at = sim_.Now(); });
  auto tx = net_.OpenSocket(a_, 0, nullptr);
  Bytes payload(1000);
  ASSERT_TRUE((*tx)->SendTo(b_, 100, payload).ok());
  sim_.Run();
  // (1000+42)*8 bits / 10Mbps = 833.6us, + 50us propagation.
  EXPECT_NEAR(static_cast<double>(at), 884.0, 2.0);
}

TEST_F(NetworkTest, BroadcastReachesAllIncludingSender) {
  int count = 0;
  auto ra = net_.OpenSocket(a_, 100, [&](const Datagram&) { ++count; });
  auto rb = net_.OpenSocket(b_, 100, [&](const Datagram&) { ++count; });
  auto rc = net_.OpenSocket(c_, 100, [&](const Datagram&) { ++count; });
  auto tx = net_.OpenSocket(a_, 0, nullptr);
  ASSERT_TRUE((*tx)->Broadcast(100, ToBytes("x")).ok());
  sim_.Run();
  EXPECT_EQ(count, 3);
}

TEST_F(NetworkTest, BroadcastConsumesMediumOnce) {
  auto tx = net_.OpenSocket(a_, 0, nullptr);
  net_.ResetStats();
  ASSERT_TRUE((*tx)->Broadcast(100, Bytes(100)).ok());
  sim_.Run();
  EXPECT_EQ(net_.stats().frames_sent, 1u);
}

TEST_F(NetworkTest, MtuEnforced) {
  auto tx = net_.OpenSocket(a_, 0, nullptr);
  Bytes big(2000);
  EXPECT_FALSE((*tx)->SendTo(b_, 100, big).ok());
  EXPECT_FALSE((*tx)->Broadcast(100, big).ok());
}

TEST_F(NetworkTest, LoopbackAllowsLargePayloads) {
  Bytes got;
  auto rx = net_.OpenSocket(a_, 100, [&](const Datagram& d) { got = d.payload; });
  auto tx = net_.OpenSocket(a_, 0, nullptr);
  Bytes big(100 * 1024);
  ASSERT_TRUE((*tx)->SendTo(a_, 100, big).ok());
  sim_.Run();
  EXPECT_EQ(got.size(), big.size());
}

TEST_F(NetworkTest, PortConflictRejected) {
  auto s1 = net_.OpenSocket(a_, 100, nullptr);
  ASSERT_TRUE(s1.ok());
  auto s2 = net_.OpenSocket(a_, 100, nullptr);
  EXPECT_FALSE(s2.ok());
  EXPECT_EQ(s2.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(NetworkTest, ClosedSocketReleasesPort) {
  {
    auto s1 = net_.OpenSocket(a_, 100, nullptr);
    ASSERT_TRUE(s1.ok());
  }
  auto s2 = net_.OpenSocket(a_, 100, nullptr);
  EXPECT_TRUE(s2.ok());
}

TEST_F(NetworkTest, DownHostReceivesNothing) {
  int count = 0;
  auto rx = net_.OpenSocket(b_, 100, [&](const Datagram&) { ++count; });
  auto tx = net_.OpenSocket(a_, 0, nullptr);
  net_.SetHostUp(b_, false);
  ASSERT_TRUE((*tx)->Broadcast(100, ToBytes("x")).ok());
  sim_.Run();
  EXPECT_EQ(count, 0);
  net_.SetHostUp(b_, true);
  ASSERT_TRUE((*tx)->Broadcast(100, ToBytes("x")).ok());
  sim_.Run();
  EXPECT_EQ(count, 1);
}

TEST_F(NetworkTest, DownHostCannotSend) {
  auto tx = net_.OpenSocket(a_, 0, nullptr);
  net_.SetHostUp(a_, false);
  EXPECT_FALSE((*tx)->SendTo(b_, 100, ToBytes("x")).ok());
}

TEST_F(NetworkTest, PartitionBlocksTraffic) {
  int count = 0;
  auto rx = net_.OpenSocket(b_, 100, [&](const Datagram&) { ++count; });
  auto tx = net_.OpenSocket(a_, 0, nullptr);
  net_.SetPartitionGroups({{a_, 1}});  // a alone; b,c default group 0
  ASSERT_TRUE((*tx)->SendTo(b_, 100, ToBytes("x")).ok());
  sim_.Run();
  EXPECT_EQ(count, 0);
  net_.SetPartitionGroups({});  // heal
  ASSERT_TRUE((*tx)->SendTo(b_, 100, ToBytes("x")).ok());
  sim_.Run();
  EXPECT_EQ(count, 1);
}

TEST_F(NetworkTest, FaultPlanDropsFrames) {
  FaultPlan plan;
  plan.drop_prob = 1.0;
  net_.SetFaultPlan(seg_, plan);
  int count = 0;
  auto rx = net_.OpenSocket(b_, 100, [&](const Datagram&) { ++count; });
  auto tx = net_.OpenSocket(a_, 0, nullptr);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*tx)->SendTo(b_, 100, ToBytes("x")).ok());
  }
  sim_.Run();
  EXPECT_EQ(count, 0);
  EXPECT_EQ(net_.stats().frames_dropped_fault, 10u);
}

TEST_F(NetworkTest, FaultPlanDuplicatesFrames) {
  FaultPlan plan;
  plan.dup_prob = 1.0;
  net_.SetFaultPlan(seg_, plan);
  int count = 0;
  auto rx = net_.OpenSocket(b_, 100, [&](const Datagram&) { ++count; });
  auto tx = net_.OpenSocket(a_, 0, nullptr);
  ASSERT_TRUE((*tx)->SendTo(b_, 100, ToBytes("x")).ok());
  sim_.Run();
  EXPECT_EQ(count, 2);
}

TEST_F(NetworkTest, SharedMediumSerializesTransmissions) {
  // Two back-to-back 1000-byte sends: the second waits for the first.
  std::vector<SimTime> arrivals;
  auto rx = net_.OpenSocket(b_, 100, [&](const Datagram&) { arrivals.push_back(sim_.Now()); });
  auto tx = net_.OpenSocket(a_, 0, nullptr);
  ASSERT_TRUE((*tx)->SendTo(b_, 100, Bytes(1000)).ok());
  ASSERT_TRUE((*tx)->SendTo(b_, 100, Bytes(1000)).ok());
  sim_.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Each frame takes ~834us on the wire; the gap between arrivals equals that.
  EXPECT_NEAR(static_cast<double>(arrivals[1] - arrivals[0]), 834.0, 2.0);
}

class ConnectionTest : public NetworkTest {};

TEST_F(ConnectionTest, ConnectSendReceive) {
  ConnectionPtr server_conn;
  auto listener = net_.Listen(b_, 200, [&](ConnectionPtr c) { server_conn = std::move(c); });
  ASSERT_TRUE(listener.ok());

  ConnectionPtr client_conn;
  net_.Connect(a_, b_, 200, [&](Result<ConnectionPtr> r) {
    ASSERT_TRUE(r.ok());
    client_conn = r.take();
  });
  sim_.Run();
  ASSERT_NE(client_conn, nullptr);
  ASSERT_NE(server_conn, nullptr);

  std::string got;
  server_conn->SetMessageHandler([&](const Bytes& m) { got = ToString(m); });
  ASSERT_TRUE(client_conn->Send(ToBytes("request")).ok());
  sim_.Run();
  EXPECT_EQ(got, "request");

  std::string reply;
  client_conn->SetMessageHandler([&](const Bytes& m) { reply = ToString(m); });
  ASSERT_TRUE(server_conn->Send(ToBytes("response")).ok());
  sim_.Run();
  EXPECT_EQ(reply, "response");
}

TEST_F(ConnectionTest, LargeMessagesArriveWhole) {
  ConnectionPtr server_conn;
  auto listener = net_.Listen(b_, 200, [&](ConnectionPtr c) { server_conn = std::move(c); });
  ConnectionPtr client_conn;
  net_.Connect(a_, b_, 200, [&](Result<ConnectionPtr> r) { client_conn = r.take(); });
  sim_.Run();
  size_t got = 0;
  server_conn->SetMessageHandler([&](const Bytes& m) { got = m.size(); });
  ASSERT_TRUE(client_conn->Send(Bytes(50000)).ok());
  sim_.Run();
  EXPECT_EQ(got, 50000u);
}

TEST_F(ConnectionTest, MessagesStayOrdered) {
  ConnectionPtr server_conn;
  auto listener = net_.Listen(b_, 200, [&](ConnectionPtr c) { server_conn = std::move(c); });
  ConnectionPtr client_conn;
  net_.Connect(a_, b_, 200, [&](Result<ConnectionPtr> r) { client_conn = r.take(); });
  sim_.Run();
  std::vector<std::string> got;
  server_conn->SetMessageHandler([&](const Bytes& m) { got.push_back(ToString(m)); });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client_conn->Send(ToBytes("m" + std::to_string(i))).ok());
  }
  sim_.Run();
  ASSERT_EQ(got.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], "m" + std::to_string(i));
  }
}

TEST_F(ConnectionTest, ConnectToNobodyRefused) {
  bool failed = false;
  net_.Connect(a_, b_, 999, [&](Result<ConnectionPtr> r) { failed = !r.ok(); });
  sim_.Run();
  EXPECT_TRUE(failed);
}

TEST_F(ConnectionTest, HostCrashBreaksConnection) {
  ConnectionPtr server_conn;
  auto listener = net_.Listen(b_, 200, [&](ConnectionPtr c) { server_conn = std::move(c); });
  ConnectionPtr client_conn;
  net_.Connect(a_, b_, 200, [&](Result<ConnectionPtr> r) { client_conn = r.take(); });
  sim_.Run();
  bool closed = false;
  client_conn->SetCloseHandler([&] { closed = true; });
  net_.SetHostUp(b_, false);
  sim_.Run();
  EXPECT_TRUE(closed);
  EXPECT_FALSE(client_conn->open());
  EXPECT_FALSE(client_conn->Send(ToBytes("x")).ok());
}

TEST_F(ConnectionTest, CloseNotifiesPeer) {
  ConnectionPtr server_conn;
  auto listener = net_.Listen(b_, 200, [&](ConnectionPtr c) { server_conn = std::move(c); });
  ConnectionPtr client_conn;
  net_.Connect(a_, b_, 200, [&](Result<ConnectionPtr> r) { client_conn = r.take(); });
  sim_.Run();
  bool closed = false;
  server_conn->SetCloseHandler([&] { closed = true; });
  client_conn->Close();
  sim_.Run();
  EXPECT_TRUE(closed);
}

TEST(StableStoreTest, MemoryAppendReadTruncate) {
  MemoryStableStore store;
  EXPECT_EQ(store.Append(ToBytes("a")).value(), 0u);
  EXPECT_EQ(store.Append(ToBytes("b")).value(), 1u);
  EXPECT_EQ(store.Append(ToBytes("c")).value(), 2u);
  auto all = store.ReadFrom(0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
  ASSERT_TRUE(store.TruncateBefore(2).ok());
  auto rest = store.ReadFrom(0);
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest->size(), 1u);
  EXPECT_EQ(ToString((*rest)[0]), "c");
  EXPECT_EQ(store.NextSeq(), 3u);
}

TEST(StableStoreTest, FilePersistsAcrossReopen) {
  std::string path = ::testing::TempDir() + "/ibus_stable_test.log";
  std::remove(path.c_str());
  {
    auto store = FileStableStore::Open(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(ToBytes("one")).ok());
    ASSERT_TRUE((*store)->Append(ToBytes("two")).ok());
  }
  auto store = FileStableStore::Open(path);
  ASSERT_TRUE(store.ok());
  auto all = (*store)->ReadFrom(0);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ(ToString((*all)[0]), "one");
  EXPECT_EQ(ToString((*all)[1]), "two");
  std::remove(path.c_str());
}

TEST(StableStoreTest, FileDropsCorruptTail) {
  std::string path = ::testing::TempDir() + "/ibus_stable_corrupt.log";
  std::remove(path.c_str());
  {
    auto store = FileStableStore::Open(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(ToBytes("good")).ok());
    ASSERT_TRUE((*store)->Append(ToBytes("torn")).ok());
  }
  // Corrupt the last byte (inside the second record's payload).
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -1, SEEK_END);
  std::fputc(0xFF ^ 'n', f);
  std::fclose(f);

  auto store = FileStableStore::Open(path);
  ASSERT_TRUE(store.ok());
  auto all = (*store)->ReadFrom(0);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ(ToString((*all)[0]), "good");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ibus

namespace ibus {
namespace {

class CrossSegmentTest : public ::testing::Test {
 protected:
  CrossSegmentTest() : net_(&sim_) {
    lan_a_ = net_.AddSegment();
    lan_b_ = net_.AddSegment();
    a_ = net_.AddHost("a", lan_a_);
    b_ = net_.AddHost("b", lan_b_);
  }
  Simulator sim_;
  Network net_;
  SegmentId lan_a_, lan_b_;
  HostId a_, b_;
};

TEST_F(CrossSegmentTest, UnicastCrossesTheImplicitWan) {
  Bytes got;
  SimTime at = 0;
  auto rx = net_.OpenSocket(b_, 100, [&](const Datagram& d) {
    got = d.payload;
    at = sim_.Now();
  });
  auto tx = net_.OpenSocket(a_, 0, nullptr);
  ASSERT_TRUE((*tx)->SendTo(b_, 100, ToBytes("transatlantic")).ok());
  sim_.Run();
  EXPECT_EQ(ToString(got), "transatlantic");
  // WAN path: slower serialization (T1) plus both LAN propagations + WAN propagation.
  EXPECT_GT(at, 2000);
}

TEST_F(CrossSegmentTest, ConnectionsCrossSegments) {
  ConnectionPtr server_conn;
  auto listener = net_.Listen(b_, 200, [&](ConnectionPtr c) { server_conn = std::move(c); });
  ConnectionPtr client_conn;
  net_.Connect(a_, b_, 200, [&](Result<ConnectionPtr> r) {
    ASSERT_TRUE(r.ok());
    client_conn = r.take();
  });
  sim_.Run();
  ASSERT_NE(server_conn, nullptr);
  std::string got;
  server_conn->SetMessageHandler([&](const Bytes& m) { got = ToString(m); });
  ASSERT_TRUE(client_conn->Send(ToBytes("over the wan")).ok());
  sim_.Run();
  EXPECT_EQ(got, "over the wan");
}

TEST_F(CrossSegmentTest, BroadcastStaysOnItsSegment) {
  int got_b = 0;
  auto rx = net_.OpenSocket(b_, 100, [&](const Datagram&) { ++got_b; });
  auto tx = net_.OpenSocket(a_, 0, nullptr);
  ASSERT_TRUE((*tx)->Broadcast(100, ToBytes("local only")).ok());
  sim_.Run();
  EXPECT_EQ(got_b, 0);  // a different LAN never hears a hardware broadcast
}

TEST_F(CrossSegmentTest, MaxDatagramPayloadReflectsSegment) {
  SegmentConfig jumbo;
  jumbo.mtu = 9000;
  SegmentId big = net_.AddSegment(jumbo);
  HostId j = net_.AddHost("jumbo", big);
  EXPECT_EQ(net_.MaxDatagramPayload(a_), 1500u - 42u);
  EXPECT_EQ(net_.MaxDatagramPayload(j), 9000u - 42u);
}

TEST(NonBroadcastSegmentTest, BroadcastRejected) {
  Simulator sim;
  Network net(&sim);
  SegmentConfig p2p;
  p2p.broadcast_capable = false;
  SegmentId seg = net.AddSegment(p2p);
  HostId h = net.AddHost("h", seg);
  auto tx = net.OpenSocket(h, 0, nullptr);
  EXPECT_EQ((*tx)->Broadcast(100, ToBytes("x")).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ibus
