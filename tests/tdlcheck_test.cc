// tdlcheck tests: every rule fires on a seeded script and stays silent on its
// non-triggering twin; diagnostics carry exact file:line:col spans (locked as
// golden strings); --compat classifies schema evolution; and the builtin table
// is cross-checked against the live interpreter so it cannot drift.
#include "src/tdlcheck/tdlcheck.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/tdl/interp.h"
#include "src/tdl/parser.h"
#include "src/types/registry.h"

namespace ibus::tdlcheck {
namespace {

std::vector<Diagnostic> Check(const std::string& src) { return CheckScript("test.tdl", src); }

size_t CountRule(const std::vector<Diagnostic>& ds, const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(ds.begin(), ds.end(), [&](const Diagnostic& d) { return d.rule == rule; }));
}

std::string Render(const std::vector<Diagnostic>& ds) {
  std::string out;
  for (const auto& d : ds) {
    out += d.ToString() + "\n";
  }
  return out;
}

ScriptModel ModelOf(const std::string& src) {
  auto forms = ParseTdl(src);
  EXPECT_TRUE(forms.ok()) << forms.status().ToString();
  return CollectModel(forms.ok() ? *forms : std::vector<Datum>{});
}

// ---------------------------------------------------------------------------------
// Diagnostic format and positions
// ---------------------------------------------------------------------------------

TEST(TdlcheckFormat, GoldenFileLineColFormat) {
  auto ds = Check("(defun f (x) x)\n(f 1 2)\n");
  ASSERT_EQ(ds.size(), 1u) << Render(ds);
  EXPECT_EQ(ds[0].ToString(), "test.tdl:2:2: [arity-mismatch] 'f' expects 1 argument, got 2");
}

TEST(TdlcheckFormat, ParseErrorCarriesTokenPosition) {
  auto ds = Check("(print 1)\n  (unclosed\n");
  ASSERT_EQ(ds.size(), 1u) << Render(ds);
  EXPECT_EQ(ds[0].ToString(), "test.tdl:2:3: [parse-error] unterminated list");
}

TEST(TdlcheckFormat, DiagnosticsSortedByPosition) {
  auto ds = Check("(mod 1)\n(nosuch)\n(mod 2)\n");
  ASSERT_EQ(ds.size(), 3u) << Render(ds);
  EXPECT_EQ(ds[0].line, 1);
  EXPECT_EQ(ds[1].line, 2);
  EXPECT_EQ(ds[2].line, 3);
}

// ---------------------------------------------------------------------------------
// undefined-symbol
// ---------------------------------------------------------------------------------

TEST(TdlcheckUndefined, FiresOnUnboundReference) {
  auto ds = Check("(print missing-var)\n");
  ASSERT_EQ(ds.size(), 1u) << Render(ds);
  EXPECT_EQ(ds[0].rule, kRuleUndefinedSymbol);
  EXPECT_EQ(ds[0].line, 1);
  EXPECT_EQ(ds[0].col, 8);
}

TEST(TdlcheckUndefined, FiresOnCallToUndefinedFunction) {
  auto ds = Check("(frobnicate 1 2)\n");
  ASSERT_EQ(CountRule(ds, kRuleUndefinedSymbol), 1u) << Render(ds);
}

TEST(TdlcheckUndefined, SilentOnEveryBindingForm) {
  auto ds = Check(
      "(defun f (x) (+ x 1))\n"
      "(setq counter 0)\n"
      "(let ((a 1) (b 2)) (+ a b))\n"
      "(let* ((a 1) (b (+ a 1))) b)\n"
      "(dolist (item (list 1 2)) (print item))\n"
      "((lambda (y) (* y y)) 3)\n"
      "(print counter (f 1))\n");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(TdlcheckUndefined, SilentOnQuotedDataAndKeywords) {
  auto ds = Check("(print '(totally undefined symbols))\n(print :keyword)\n");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

// ---------------------------------------------------------------------------------
// arity-mismatch
// ---------------------------------------------------------------------------------

TEST(TdlcheckArity, FiresOnBuiltinArity) {
  auto ds = Check("(mod 5)\n(min)\n");
  ASSERT_EQ(ds.size(), 2u) << Render(ds);
  EXPECT_EQ(ds[0].ToString(),
            "test.tdl:1:2: [arity-mismatch] 'mod' expects 2 arguments, got 1");
  EXPECT_EQ(ds[1].ToString(),
            "test.tdl:2:2: [arity-mismatch] 'min' expects at least 1 argument, got 0");
}

TEST(TdlcheckArity, SilentOnCorrectAndVariadicCalls) {
  auto ds = Check("(mod 5 3)\n(min 1)\n(+ 1 2 3 4 5)\n(+)\n(print)\n");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(TdlcheckArity, FiresOnDefunArity) {
  auto ds = Check("(defun area (w h) (* w h))\n(area 3)\n");
  ASSERT_EQ(ds.size(), 1u) << Render(ds);
  EXPECT_EQ(ds[0].rule, kRuleArityMismatch);
}

TEST(TdlcheckArity, GenericAcceptsAnyDefinedMethodArity) {
  const std::string defs =
      "(defclass shape (object) ((n :type i64)))\n"
      "(defmethod size ((s shape)) 1)\n"
      "(defmethod size ((s shape) scale) scale)\n";
  EXPECT_TRUE(Check(defs + "(size (make-instance 'shape)) (size (make-instance 'shape) 2)\n")
                  .empty());
  auto ds = Check(defs + "(size (make-instance 'shape) 2 3)\n");
  ASSERT_EQ(ds.size(), 1u) << Render(ds);
  EXPECT_EQ(ds[0].ToString(),
            "test.tdl:4:2: [arity-mismatch] no method on 'size' accepts 3 arguments");
}

// ---------------------------------------------------------------------------------
// malformed-form
// ---------------------------------------------------------------------------------

TEST(TdlcheckMalformed, FiresOnBrokenSpecialForms) {
  EXPECT_EQ(CountRule(Check("(setq)\n"), kRuleMalformedForm), 1u);
  EXPECT_EQ(CountRule(Check("(let (x 1) x)\n"), kRuleMalformedForm), 1u);
  EXPECT_EQ(CountRule(Check("(cond bare)\n"), kRuleMalformedForm), 1u);
  EXPECT_EQ(CountRule(Check("(defclass broken)\n"), kRuleMalformedForm), 1u);
}

TEST(TdlcheckMalformed, FiresOnDanglingMakeInstanceKeyword) {
  auto ds = Check("(defclass c (object) ((a :type i64)))\n(make-instance 'c :a)\n");
  ASSERT_EQ(ds.size(), 1u) << Render(ds);
  EXPECT_EQ(ds[0].rule, kRuleMalformedForm);
  EXPECT_EQ(ds[0].line, 2);
}

TEST(TdlcheckMalformed, SilentOnWellFormedForms) {
  auto ds = Check(
      "(setq x 1)\n"
      "(let ((y 2)) (cond ((> y 1) y) (t 0)))\n"
      "(defclass c (object) ((a :type i64)))\n"
      "(make-instance 'c :a 3)\n");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

// ---------------------------------------------------------------------------------
// defclass rules: duplicate-slot, unknown-slot-type, unknown-superclass
// ---------------------------------------------------------------------------------

TEST(TdlcheckDefclass, FiresOnDuplicateSlot) {
  auto ds = Check("(defclass c (object) ((a :type i64) (a :type string)))\n");
  ASSERT_EQ(ds.size(), 1u) << Render(ds);
  EXPECT_EQ(ds[0].rule, kRuleDuplicateSlot);
  EXPECT_EQ(ds[0].col, 38);
}

TEST(TdlcheckDefclass, FiresOnShadowedInheritedSlot) {
  auto ds = Check(
      "(defclass base (object) ((id :type string)))\n"
      "(defclass derived (base) ((id :type string)))\n");
  ASSERT_EQ(ds.size(), 1u) << Render(ds);
  EXPECT_EQ(ds[0].rule, kRuleDuplicateSlot);
  EXPECT_EQ(ds[0].line, 2);
}

TEST(TdlcheckDefclass, FiresOnUnknownSlotType) {
  auto ds = Check("(defclass c (object) ((a :type flot)))\n");
  ASSERT_EQ(ds.size(), 1u) << Render(ds);
  EXPECT_EQ(ds[0].ToString(),
            "test.tdl:1:32: [unknown-slot-type] slot type 'flot' is neither a fundamental "
            "type nor a known class");
}

TEST(TdlcheckDefclass, SlotTypesMayNameFundamentalsOrClasses) {
  auto ds = Check(
      "(defclass part (object) ((sku :type string)))\n"
      "(defclass bin (object) ((contents :type part) (count :type i64) (tags :type list)))\n");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(TdlcheckDefclass, FiresOnUnknownSuperclass) {
  auto ds = Check("(defclass c (widget) ())\n");
  ASSERT_EQ(ds.size(), 1u) << Render(ds);
  EXPECT_EQ(ds[0].rule, kRuleUnknownSuperclass);
}

TEST(TdlcheckDefclass, SuperclassMayBeForwardDefinedOrRegistryBuiltin) {
  auto ds = Check(
      "(defclass derived (base) ())\n"  // forward reference: fine, collection is flow-insensitive
      "(defclass base (object) ())\n"
      "(defclass prop (property) ())\n");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

// ---------------------------------------------------------------------------------
// make-instance rules: unknown-class, unknown-slot-init, slot-type-mismatch
// ---------------------------------------------------------------------------------

TEST(TdlcheckMakeInstance, FiresOnUnknownClass) {
  auto ds = Check("(make-instance 'nosuch)\n");
  ASSERT_EQ(ds.size(), 1u) << Render(ds);
  EXPECT_EQ(ds[0].rule, kRuleUnknownClass);
  EXPECT_EQ(ds[0].col, 16);
}

TEST(TdlcheckMakeInstance, FiresOnUnknownSlotInit) {
  auto ds = Check("(defclass c (object) ((a :type i64)))\n(make-instance 'c :b 1)\n");
  ASSERT_EQ(ds.size(), 1u) << Render(ds);
  EXPECT_EQ(ds[0].ToString(),
            "test.tdl:2:19: [unknown-slot-init] class 'c' has no slot named 'b'");
}

TEST(TdlcheckMakeInstance, InheritedSlotInitsAreKnown) {
  auto ds = Check(
      "(defclass base (object) ((id :type string)))\n"
      "(defclass derived (base) ((extra :type i64)))\n"
      "(make-instance 'derived :id \"x\" :extra 2)\n");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(TdlcheckMakeInstance, FiresOnSlotTypeMismatch) {
  const std::string defs = "(defclass c (object) ((f :type f64) (s :type string)))\n";
  auto ds = Check(defs + "(make-instance 'c :f \"hot\" :s 3)\n");
  ASSERT_EQ(ds.size(), 2u) << Render(ds);
  EXPECT_EQ(ds[0].rule, kRuleSlotTypeMismatch);
  EXPECT_EQ(ds[1].rule, kRuleSlotTypeMismatch);
  // TypeRegistry::Validate demands exact kind equality, so an i64 literal in an
  // f64 slot is a (real, publish-time) error too.
  auto strict = Check(defs + "(make-instance 'c :f 42 :s \"ok\")\n");
  ASSERT_EQ(strict.size(), 1u) << Render(strict);
  EXPECT_EQ(strict[0].rule, kRuleSlotTypeMismatch);
}

TEST(TdlcheckMakeInstance, SilentOnMatchingNilVariableAndAnyInits) {
  auto ds = Check(
      "(defclass c (object) ((f :type f64) (s :type string) (x :type any) (l :type list)))\n"
      "(setq v 1)\n"
      "(make-instance 'c :f 1.5 :s \"ok\" :x 42 :l (list 1 2))\n"
      "(make-instance 'c :f nil :s nil)\n"
      "(make-instance 'c :f v)\n");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

// ---------------------------------------------------------------------------------
// bad-subject
// ---------------------------------------------------------------------------------

TEST(TdlcheckSubject, FiresOnInvalidPublishSubjects) {
  auto ds = Check(
      "(defclass c (object) ())\n"
      "(bus-publish \"plant.*.temp\" (make-instance 'c))\n"   // wildcard in a subject
      "(bus-publish \"_ibus.sneaky\" (make-instance 'c))\n"   // reserved namespace
      "(bus-publish \"a..b\" (make-instance 'c))\n");          // empty element
  EXPECT_EQ(CountRule(ds, kRuleBadSubject), 3u) << Render(ds);
}

TEST(TdlcheckSubject, FiresOnInvalidSubscribePattern) {
  auto ds = Check("(bus-subscribe \"plant.>more\" (lambda (s o) o))\n");
  ASSERT_EQ(ds.size(), 1u) << Render(ds);
  EXPECT_EQ(ds[0].rule, kRuleBadSubject);
  EXPECT_EQ(ds[0].col, 16);
}

TEST(TdlcheckSubject, SilentOnValidAndComputedSubjects) {
  auto ds = Check(
      "(defclass c (object) ())\n"
      "(bus-publish \"plant.cell3.temp\" (make-instance 'c))\n"
      "(bus-subscribe \"plant.*.temp\" (lambda (s o) o))\n"     // wildcards fine in patterns
      "(bus-subscribe \"plant.>\" (lambda (s o) o))\n"
      "(setq subj \"who.knows\")\n"
      "(bus-publish (concat subj \".x\") (make-instance 'c))\n");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

// ---------------------------------------------------------------------------------
// unknown-specializer
// ---------------------------------------------------------------------------------

TEST(TdlcheckSpecializer, FiresOnUndefinedClass) {
  auto ds = Check("(defmethod area ((s circle)) 1)\n");
  ASSERT_EQ(ds.size(), 1u) << Render(ds);
  EXPECT_EQ(ds[0].rule, kRuleUnknownSpecializer);
  EXPECT_EQ(ds[0].col, 21);
}

TEST(TdlcheckSpecializer, SilentOnClassesAndDispatchableFundamentals) {
  auto ds = Check(
      "(defclass circle (object) ((r :type f64)))\n"
      "(defmethod area ((s circle)) (* (slot-value s 'r) (slot-value s 'r)))\n"
      "(defmethod area ((s object)) 0)\n"
      "(defmethod stringify ((s string)) s)\n"
      "(defmethod stringify ((i i64)) (to-string i))\n");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

// ---------------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------------

TEST(TdlcheckAllow, TrailingCommentSuppressesOnlyThatRule) {
  auto ds = Check("(mod 5) ; tdlcheck: allow(arity-mismatch)\n");
  EXPECT_TRUE(ds.empty()) << Render(ds);
  auto wrong = Check("(mod 5) ; tdlcheck: allow(undefined-symbol)\n");
  EXPECT_EQ(CountRule(wrong, kRuleArityMismatch), 1u) << Render(wrong);
}

// ---------------------------------------------------------------------------------
// Builtin table cannot drift from the interpreter
// ---------------------------------------------------------------------------------

TEST(TdlcheckBuiltins, EveryInterpreterGlobalIsKnown) {
  TypeRegistry registry;
  TdlInterp interp(&registry);
  for (const std::string& name : interp.GlobalNames()) {
    EXPECT_TRUE(IsKnownBuiltin(name)) << "builtin table is missing '" << name
                                      << "' (update Builtins() in src/tdlcheck/checker.cc)";
  }
}

TEST(TdlcheckBuiltins, SpecialFormsAreKnown) {
  for (const char* form : {"quote", "if", "cond", "let", "let*", "lambda", "setq", "progn",
                           "when", "unless", "dolist", "while", "defun", "defclass",
                           "defmethod"}) {
    EXPECT_TRUE(IsKnownBuiltin(form)) << form;
  }
  EXPECT_FALSE(IsKnownBuiltin("frobnicate"));
}

// ---------------------------------------------------------------------------------
// --compat: schema evolution
// ---------------------------------------------------------------------------------

TEST(TdlcheckCompat, IdenticalSchemasProduceNoChanges) {
  const std::string src = "(defclass c (object) ((a :type i64)))\n";
  EXPECT_TRUE(DiffModels(ModelOf(src), ModelOf(src)).empty());
}

TEST(TdlcheckCompat, AppendedSlotNewClassAndNewMethodAreSafe) {
  auto old_model = ModelOf("(defclass recipe (object) ((steps :type list)))\n");
  auto new_model = ModelOf(
      "(defclass recipe (object) ((steps :type list) (owner :type string)))\n"
      "(defclass audit (object) ((who :type string)))\n"
      "(defmethod describe-it ((r recipe)) 1)\n");
  auto changes = DiffModels(old_model, new_model);
  ASSERT_EQ(changes.size(), 3u);
  for (const auto& c : changes) {
    EXPECT_FALSE(c.breaking) << c.ToString();
  }
  EXPECT_EQ(changes[0].ToString(), "recipe: slot 'owner' appended (type string) [safe]");
}

TEST(TdlcheckCompat, RemovedAndRetypedSlotsAreBreaking) {
  auto old_model =
      ModelOf("(defclass recipe (object) ((steps :type list) (temp :type f64)))\n");
  auto removed = DiffModels(old_model, ModelOf("(defclass recipe (object) ((temp :type f64)))\n"));
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_TRUE(removed[0].breaking);
  EXPECT_EQ(removed[0].ToString(), "recipe: slot 'steps' removed [BREAKING]");

  auto retyped = DiffModels(
      old_model, ModelOf("(defclass recipe (object) ((steps :type list) (temp :type i64)))\n"));
  ASSERT_EQ(retyped.size(), 1u);
  EXPECT_EQ(retyped[0].ToString(), "recipe: slot 'temp' retyped from f64 to i64 [BREAKING]");
}

TEST(TdlcheckCompat, RenamedSlotIsBreakingWithHint) {
  auto changes = DiffModels(
      ModelOf("(defclass c (object) ((steps :type list)))\n"),
      ModelOf("(defclass c (object) ((stages :type list)))\n"));
  ASSERT_EQ(changes.size(), 2u);  // removal (with hint) + the appearing slot
  EXPECT_TRUE(changes[0].breaking);
  EXPECT_EQ(changes[0].ToString(), "c: slot 'steps' removed (renamed to 'stages'?) [BREAKING]");
}

TEST(TdlcheckCompat, SuperclassChangeAndClassRemovalAreBreaking) {
  auto old_model = ModelOf(
      "(defclass base (object) ((id :type string)))\n"
      "(defclass c (base) ())\n"
      "(defclass doomed (object) ())\n");
  auto new_model = ModelOf(
      "(defclass base (object) ((id :type string)))\n"
      "(defclass c (object) ())\n");
  auto changes = DiffModels(old_model, new_model);
  size_t breaking = 0;
  bool saw_super = false;
  bool saw_removed_class = false;
  for (const auto& c : changes) {
    if (c.breaking) {
      ++breaking;
    }
    saw_super = saw_super || c.ToString().find("superclass changed") != std::string::npos;
    saw_removed_class = saw_removed_class || c.ToString() == "doomed: class removed [BREAKING]";
  }
  EXPECT_GE(breaking, 3u);  // super change + lost inherited slot + class removal
  EXPECT_TRUE(saw_super);
  EXPECT_TRUE(saw_removed_class);
}

TEST(TdlcheckCompat, SlotMovedToSuperclassIsInvisibleOnTheWire) {
  auto old_model = ModelOf(
      "(defclass base (object) ())\n"
      "(defclass c (base) ((id :type string)))\n");
  auto new_model = ModelOf(
      "(defclass base (object) ((id :type string)))\n"
      "(defclass c (base) ())\n");
  for (const auto& c : DiffModels(old_model, new_model)) {
    EXPECT_FALSE(c.breaking && c.subject == "c") << c.ToString();
  }
}

}  // namespace
}  // namespace ibus::tdlcheck
