#include <gtest/gtest.h>

#include "src/router/router.h"
#include "src/sim/stable_store.h"
#include "tests/bus_fixture.h"

namespace ibus {
namespace {

// Two LANs joined by a router pair over the implicit WAN.
class RouterTest : public ::testing::Test {
 protected:
  void SetUpTwoLans() {
    net_ = std::make_unique<Network>(&sim_);
    lan_a_ = net_->AddSegment();
    lan_b_ = net_->AddSegment();
    for (int i = 0; i < 2; ++i) {
      a_hosts_.push_back(net_->AddHost("a" + std::to_string(i), lan_a_));
      b_hosts_.push_back(net_->AddHost("b" + std::to_string(i), lan_b_));
    }
    for (HostId h : a_hosts_) {
      auto d = BusDaemon::Start(net_.get(), h, config_);
      ASSERT_TRUE(d.ok());
      daemons_.push_back(d.take());
    }
    for (HostId h : b_hosts_) {
      auto d = BusDaemon::Start(net_.get(), h, config_);
      ASSERT_TRUE(d.ok());
      daemons_.push_back(d.take());
    }
  }

  void LinkRouters(const RouterConfig& cfg_a = {}, const RouterConfig& cfg_b = {}) {
    router_bus_a_ = Client(a_hosts_[0], "_router:A");
    router_bus_b_ = Client(b_hosts_[0], "_router:B");
    auto ra = InfoRouter::Listen(router_bus_a_.get(), "_router:A", 8700, cfg_a);
    ASSERT_TRUE(ra.ok()) << ra.status().ToString();
    router_a_ = ra.take();
    sim_.RunFor(50 * kMillisecond);
    auto rb = InfoRouter::Connect(router_bus_b_.get(), "_router:B", a_hosts_[0], 8700, cfg_b);
    ASSERT_TRUE(rb.ok()) << rb.status().ToString();
    router_b_ = rb.take();
    sim_.RunFor(200 * kMillisecond);
    ASSERT_TRUE(router_a_->linked());
    ASSERT_TRUE(router_b_->linked());
  }

  std::unique_ptr<BusClient> Client(HostId host, const std::string& name) {
    auto c = BusClient::Connect(net_.get(), host, name, config_);
    EXPECT_TRUE(c.ok());
    return c.ok() ? c.take() : nullptr;
  }

  void Settle(SimTime t = 2 * kSecond) { sim_.RunFor(t); }

  Simulator sim_;
  std::unique_ptr<Network> net_;
  BusConfig config_;
  SegmentId lan_a_ = 0, lan_b_ = 0;
  std::vector<HostId> a_hosts_, b_hosts_;
  std::vector<std::unique_ptr<BusDaemon>> daemons_;
  std::unique_ptr<BusClient> router_bus_a_, router_bus_b_;
  std::unique_ptr<InfoRouter> router_a_, router_b_;
};

TEST_F(RouterTest, CrossLanPublishReachesRemoteSubscriber) {
  SetUpTwoLans();
  LinkRouters();

  auto sub = Client(b_hosts_[1], "consumer-b");
  std::vector<std::string> got;
  ASSERT_TRUE(sub->Subscribe("news.equity.gmc",
                             [&](const Message& m) { got.push_back(ToString(m.payload)); })
                  .ok());
  Settle(500 * kMillisecond);  // subscription event + advert must cross the WAN

  auto pub = Client(a_hosts_[1], "publisher-a");
  ASSERT_TRUE(pub->Publish("news.equity.gmc", ToBytes("GM +3%")).ok());
  Settle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "GM +3%");
  EXPECT_EQ(router_a_->stats().forwarded, 1u);
  EXPECT_EQ(router_b_->stats().republished, 1u);
}

TEST_F(RouterTest, UnwantedTrafficStaysLocal) {
  SetUpTwoLans();
  LinkRouters();
  // LAN B subscribes only to news.*; LAN A chatter on other subjects must not cross.
  auto sub = Client(b_hosts_[1], "consumer-b");
  int got = 0;
  ASSERT_TRUE(sub->Subscribe("news.>", [&](const Message&) { ++got; }).ok());
  Settle(500 * kMillisecond);

  auto pub = Client(a_hosts_[1], "publisher-a");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pub->Publish("telemetry.fab5.t" + std::to_string(i), ToBytes("x")).ok());
  }
  ASSERT_TRUE(pub->Publish("news.equity.ibm", ToBytes("IBM")).ok());
  Settle();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(router_a_->stats().forwarded, 1u);  // only the news message crossed
}

TEST_F(RouterTest, BidirectionalForwarding) {
  SetUpTwoLans();
  LinkRouters();
  auto sub_a = Client(a_hosts_[1], "consumer-a");
  auto sub_b = Client(b_hosts_[1], "consumer-b");
  std::string got_a, got_b;
  ASSERT_TRUE(
      sub_a->Subscribe("from.b", [&](const Message& m) { got_a = ToString(m.payload); }).ok());
  ASSERT_TRUE(
      sub_b->Subscribe("from.a", [&](const Message& m) { got_b = ToString(m.payload); }).ok());
  Settle(500 * kMillisecond);

  auto pub_a = Client(a_hosts_[1], "pub-a");
  auto pub_b = Client(b_hosts_[1], "pub-b");
  ASSERT_TRUE(pub_a->Publish("from.a", ToBytes("hello-b")).ok());
  ASSERT_TRUE(pub_b->Publish("from.b", ToBytes("hello-a")).ok());
  Settle();
  EXPECT_EQ(got_a, "hello-a");
  EXPECT_EQ(got_b, "hello-b");
}

TEST_F(RouterTest, NoDuplicateWhenBothSidesSubscribe) {
  SetUpTwoLans();
  LinkRouters();
  auto sub_a = Client(a_hosts_[1], "consumer-a");
  auto sub_b = Client(b_hosts_[1], "consumer-b");
  int got_a = 0, got_b = 0;
  ASSERT_TRUE(sub_a->Subscribe("shared.topic", [&](const Message&) { ++got_a; }).ok());
  ASSERT_TRUE(sub_b->Subscribe("shared.topic", [&](const Message&) { ++got_b; }).ok());
  Settle(500 * kMillisecond);

  auto pub = Client(a_hosts_[1], "pub-a");
  ASSERT_TRUE(pub->Publish("shared.topic", ToBytes("once")).ok());
  Settle();
  // Local subscriber sees it once; remote subscriber sees it once; no echo storm.
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, 1);
  EXPECT_GT(router_b_->stats().suppressed_loop, 0u);
}

TEST_F(RouterTest, WildcardSubscriptionsPropagate) {
  SetUpTwoLans();
  LinkRouters();
  auto sub = Client(b_hosts_[1], "consumer-b");
  std::vector<std::string> subjects;
  ASSERT_TRUE(
      sub->Subscribe("fab5.>", [&](const Message& m) { subjects.push_back(m.subject); }).ok());
  Settle(500 * kMillisecond);
  auto pub = Client(a_hosts_[1], "pub-a");
  ASSERT_TRUE(pub->Publish("fab5.cc.litho8.thick", ToBytes("8.1")).ok());
  ASSERT_TRUE(pub->Publish("fab5.cc.etch2.temp", ToBytes("350")).ok());
  Settle();
  EXPECT_EQ(subjects.size(), 2u);
}

TEST_F(RouterTest, SubjectRewriteOnForward) {
  SetUpTwoLans();
  RouterConfig cfg_b;  // B forwards LAN-B subjects to A rewritten under site2.*
  cfg_b.rewrites.push_back(SubjectRewrite{"fab5", "site2.fab5"});
  LinkRouters({}, cfg_b);

  auto sub = Client(a_hosts_[1], "hq-monitor");
  std::vector<std::string> subjects;
  ASSERT_TRUE(sub->Subscribe("site2.fab5.>",
                             [&](const Message& m) { subjects.push_back(m.subject); })
                  .ok());
  Settle(500 * kMillisecond);

  // HQ (LAN A) subscribes under the rewritten namespace "site2.fab5.>"; router B
  // inverse-rewrites the advertised pattern and mirrors "fab5.>" locally, so plant
  // equipment on LAN B publishes under its natural local subjects.
  auto pub = Client(b_hosts_[1], "fab-b");
  ASSERT_TRUE(pub->Publish("fab5.cc.litho8.thick", ToBytes("8.1")).ok());
  Settle();
  ASSERT_EQ(subjects.size(), 1u);
  EXPECT_EQ(subjects[0], "site2.fab5.cc.litho8.thick");

  // Local subscribers on LAN B keep seeing the un-rewritten subject.
  std::vector<std::string> local_subjects;
  auto local_sub = Client(b_hosts_[1], "local-b");
  ASSERT_TRUE(local_sub->Subscribe("fab5.>",
                                   [&](const Message& m) { local_subjects.push_back(m.subject); })
                  .ok());
  Settle(500 * kMillisecond);
  ASSERT_TRUE(pub->Publish("fab5.cc.etch2.temp", ToBytes("351")).ok());
  Settle();
  ASSERT_EQ(local_subjects.size(), 1u);
  EXPECT_EQ(local_subjects[0], "fab5.cc.etch2.temp");
}

TEST_F(RouterTest, ForwardLogRecordsMessages) {
  SetUpTwoLans();
  MemoryStableStore log;
  RouterConfig cfg_a;
  cfg_a.forward_log = &log;
  LinkRouters(cfg_a, {});
  auto sub = Client(b_hosts_[1], "consumer-b");
  ASSERT_TRUE(sub->Subscribe("logged.topic", [](const Message&) {}).ok());
  Settle(500 * kMillisecond);
  auto pub = Client(a_hosts_[1], "pub-a");
  ASSERT_TRUE(pub->Publish("logged.topic", ToBytes("persist me")).ok());
  Settle();
  auto records = log.ReadFrom(0);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  auto logged = Message::Unmarshal((*records)[0]);
  ASSERT_TRUE(logged.ok());
  EXPECT_EQ(logged->subject, "logged.topic");
  EXPECT_EQ(ToString(logged->payload), "persist me");
}

TEST_F(RouterTest, UnsubscribeStopsWanTraffic) {
  SetUpTwoLans();
  LinkRouters();
  auto sub = Client(b_hosts_[1], "consumer-b");
  auto id = sub->Subscribe("ephemeral.topic", [](const Message&) {});
  ASSERT_TRUE(id.ok());
  Settle(500 * kMillisecond);
  auto pub = Client(a_hosts_[1], "pub-a");
  ASSERT_TRUE(pub->Publish("ephemeral.topic", ToBytes("1")).ok());
  Settle();
  EXPECT_EQ(router_a_->stats().forwarded, 1u);

  ASSERT_TRUE(sub->Unsubscribe(*id).ok());
  Settle(500 * kMillisecond);
  ASSERT_TRUE(pub->Publish("ephemeral.topic", ToBytes("2")).ok());
  Settle();
  EXPECT_EQ(router_a_->stats().forwarded, 1u);  // no longer crosses the WAN
}

TEST_F(RouterTest, InternalControlSubjectsNeverCross) {
  SetUpTwoLans();
  LinkRouters();
  Settle(1 * kSecond);
  // Daemons publish _ibus.sub.event traffic constantly during setup; none of it may
  // be forwarded.
  auto pub = Client(a_hosts_[1], "pub-a");
  auto sub = Client(b_hosts_[1], "sub-b");
  ASSERT_TRUE(sub->Subscribe("normal.topic", [](const Message&) {}).ok());
  Settle(500 * kMillisecond);
  uint64_t before = router_a_->stats().forwarded;
  ASSERT_TRUE(pub->Publish("normal.topic", ToBytes("x")).ok());
  Settle();
  EXPECT_EQ(router_a_->stats().forwarded, before + 1);
}

}  // namespace
}  // namespace ibus

namespace ibus {
namespace {

class RouterReconnectTest : public RouterTest {};

TEST_F(RouterReconnectTest, LinkOutageHealsByRedial) {
  SetUpTwoLans();
  RouterConfig dial_cfg;
  dial_cfg.redial_interval_us = 500 * kMillisecond;
  LinkRouters({}, dial_cfg);

  auto sub = Client(b_hosts_[1], "consumer-b");
  std::vector<std::string> got;
  ASSERT_TRUE(sub->Subscribe("outage.topic",
                             [&](const Message& m) { got.push_back(ToString(m.payload)); })
                  .ok());
  sim_.RunFor(500 * kMillisecond);

  auto pub = Client(a_hosts_[1], "pub-a");
  ASSERT_TRUE(pub->Publish("outage.topic", ToBytes("before")).ok());
  sim_.RunFor(2 * kSecond);
  ASSERT_EQ(got.size(), 1u);

  // Partition the two router hosts: the WAN connection breaks.
  net_->SetPartitionGroups({{a_hosts_[0], 1}, {a_hosts_[1], 1}});
  sim_.RunFor(kSecond);
  EXPECT_FALSE(router_b_->linked());
  // Traffic during the outage is lost across the WAN (reliable, not guaranteed).
  ASSERT_TRUE(pub->Publish("outage.topic", ToBytes("during")).ok());
  sim_.RunFor(kSecond);

  // Heal: the dialing side re-establishes the link and re-sends its advert.
  net_->SetPartitionGroups({});
  sim_.RunFor(5 * kSecond);
  EXPECT_TRUE(router_b_->linked());
  ASSERT_TRUE(pub->Publish("outage.topic", ToBytes("after")).ok());
  sim_.RunFor(3 * kSecond);
  ASSERT_GE(got.size(), 2u);
  EXPECT_EQ(got.back(), "after");
}

}  // namespace
}  // namespace ibus
