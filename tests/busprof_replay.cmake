# Replay-determinism smoke for busprof (see tools/busprof/CMakeLists.txt): two runs
# of the same seed must produce byte-identical JSON and collapsed-stack reports, a
# different seed must produce a different hash (the profile actually depends on the
# replay), and the hash line must carry reconciled=1.
foreach(var BUSPROF WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "busprof_replay.cmake: missing -D${var}=")
  endif()
endforeach()

execute_process(COMMAND ${BUSPROF} --seed 42 --json --out ${WORKDIR}/prof_a.json
                RESULT_VARIABLE rc1)
execute_process(COMMAND ${BUSPROF} --seed 42 --json --out ${WORKDIR}/prof_b.json
                RESULT_VARIABLE rc2)
execute_process(COMMAND ${BUSPROF} --seed 42 --collapsed --out ${WORKDIR}/prof_a.folded
                RESULT_VARIABLE rc3)
execute_process(COMMAND ${BUSPROF} --seed 42 --collapsed --out ${WORKDIR}/prof_b.folded
                RESULT_VARIABLE rc4)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0 OR NOT rc3 EQUAL 0 OR NOT rc4 EQUAL 0)
  message(FATAL_ERROR "busprof runs failed (rc=${rc1}/${rc2}/${rc3}/${rc4})")
endif()

file(READ ${WORKDIR}/prof_a.json json_a)
file(READ ${WORKDIR}/prof_b.json json_b)
if(NOT json_a STREQUAL json_b)
  message(FATAL_ERROR "busprof JSON is not bit-identical across replays of seed 42")
endif()
file(READ ${WORKDIR}/prof_a.folded folded_a)
file(READ ${WORKDIR}/prof_b.folded folded_b)
if(NOT folded_a STREQUAL folded_b)
  message(FATAL_ERROR "busprof collapsed stacks are not bit-identical across replays")
endif()
if(NOT json_a MATCHES "\"schema\":\"BUSPROF_1\"")
  message(FATAL_ERROR "busprof JSON lacks the BUSPROF_1 schema tag")
endif()
if(NOT json_a MATCHES "\"reconciled\":true")
  message(FATAL_ERROR "busprof JSON reports unreconciled stage sums")
endif()

execute_process(COMMAND ${BUSPROF} --seed 42 --hash
                OUTPUT_VARIABLE hash_42 RESULT_VARIABLE rc5)
execute_process(COMMAND ${BUSPROF} --seed 43 --hash
                OUTPUT_VARIABLE hash_43 RESULT_VARIABLE rc6)
if(NOT rc5 EQUAL 0 OR NOT rc6 EQUAL 0)
  message(FATAL_ERROR "busprof --hash runs failed (rc=${rc5}/${rc6})")
endif()
if(NOT hash_42 MATCHES "reconciled=1")
  message(FATAL_ERROR "busprof hash line is not reconciled: ${hash_42}")
endif()
if(hash_42 STREQUAL hash_43)
  message(FATAL_ERROR "seeds 42 and 43 produced the same profile hash — "
                      "the profile is not sensitive to the replay: ${hash_42}")
endif()
