#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/id.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace ibus {
namespace {

TEST(StatusTest, OkAndErrorForms) {
  Status ok = OkStatus();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = NotFound("no such table");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NOT_FOUND: no such table");
  EXPECT_EQ(err, NotFound("no such table"));
  EXPECT_FALSE(err == NotFound("different"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value_or(0), 42);

  Result<int> bad(Unavailable("down"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(bad.value_or(7), 7);

  Result<std::string> moved(std::string("abc"));
  std::string taken = moved.take();
  EXPECT_EQ(taken, "abc");
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  Rng c(124);
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    int64_t r = rng.NextInRange(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(99);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(0.25)) {
      ++hits;
    }
  }
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(BytesTest, Conversions) {
  Bytes b = ToBytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(ToString(b), "hello");
  EXPECT_EQ(ToString(Bytes{}), "");
}

TEST(BytesTest, HexDumpTruncates) {
  Bytes b(100, 0xAB);
  std::string dump = HexDump(b, 4);
  EXPECT_EQ(dump, "ab ab ab ab ...");
  EXPECT_EQ(HexDump(Bytes{0xDE, 0xAD}), "de ad");
}

TEST(IdGeneratorTest, MonotonicAndSpaced) {
  IdGenerator gen(3);
  uint64_t a = gen.Next();
  uint64_t b = gen.Next();
  EXPECT_LT(a, b);
  EXPECT_EQ(a >> 48, 3u);
  IdGenerator other(4);
  EXPECT_NE(other.Next(), a);
  EXPECT_EQ(gen.NextString("x"), "x3-3");
}

TEST(LoggingTest, LevelGate) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  IBUS_ERROR() << "suppressed";  // must not crash and produces nothing observable
  SetLogLevel(LogLevel::kError);
  IBUS_DEBUG() << "below threshold";
  SetLogLevel(before);
}

}  // namespace
}  // namespace ibus
