// Full-stack integration tests: the paper's complete trading-floor and fab scenarios
// run as assertions (every subsystem cooperating in one simulated world), plus a
// three-LAN router ring exercising loop suppression and the hop cap.
#include <gtest/gtest.h>

#include "src/adapters/feed_sim.h"
#include "src/adapters/legacy_wip.h"
#include "src/adapters/news_adapter.h"
#include "src/repo/repository.h"
#include "src/rmi/client.h"
#include "src/router/router.h"
#include "src/services/keyword_generator.h"
#include "src/services/news_monitor.h"
#include "src/services/type_gossip.h"
#include "tests/bus_fixture.h"

namespace ibus {
namespace {

class TradingFloorIntegrationTest : public BusFixture {};

TEST_F(TradingFloorIntegrationTest, EndToEndPipeline) {
  SetUpBus(5);
  TypeRegistry feed_registry;
  ASSERT_TRUE(NewsAdapter::RegisterStoryTypes(&feed_registry).ok());

  // Feeds + adapters on host 0.
  auto feeds_bus = MakeClient(0, "feeds");
  NewsAdapter dj(feeds_bus.get(), &feed_registry, NewsVendor::kDowJones);
  NewsAdapter rt(feeds_bus.get(), &feed_registry, NewsVendor::kReuters);

  // Monitor on host 1 with its OWN registry, synced by type gossip.
  TypeRegistry monitor_registry;
  auto monitor_bus = MakeClient(1, "monitor");
  auto monitor = NewsMonitor::Create(monitor_bus.get(), &monitor_registry, {"news.>"},
                                     ViewDef{"All", {"ticker", "headline"}, 20})
                     .take();
  auto gossip_m = TypeGossip::Create(monitor_bus.get(), &monitor_registry).take();
  auto gossip_f = TypeGossip::Create(feeds_bus.get(), &feed_registry).take();

  // Repository on host 2, with its own registry synced by gossip (it must know the
  // story hierarchy to answer hierarchy-aware queries).
  TypeRegistry repo_registry;
  Database db;
  Repository repo(&repo_registry, &db);
  auto repo_bus = MakeClient(2, "repository");
  auto gossip_r = TypeGossip::Create(repo_bus.get(), &repo_registry).take();
  auto capture = CaptureServer::Create(repo_bus.get(), &repo, {"news.>"}).take();
  auto query_server = QueryServer::Create(repo_bus.get(), &repo, "svc.repo").take();

  // Keyword generator on host 3.
  auto kw_bus = MakeClient(3, "keywords");
  auto generator =
      KeywordGenerator::Create(kw_bus.get(), &feed_registry, "news.>",
                               {{"all", {"earnings", "strike", "merger", "production"}}})
          .take();
  Settle(100 * kMillisecond);

  // Type definitions propagate BEFORE any instance flows, so the repository maps the
  // vendor subtypes under their real supertype rather than deriving flat types.
  ASSERT_TRUE(gossip_f->AnnounceAll().ok());
  Settle(kSecond);
  ASSERT_TRUE(repo_registry.IsSubtype("dj_story", "story"));

  // Feed 20 stories through both wires.
  DowJonesFeed dj_feed(55);
  ReutersFeed rt_feed(66);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(dj.Ingest(dj_feed.NextRaw()).ok());
    ASSERT_TRUE(rt.Ingest(rt_feed.NextRaw()).ok());
    Settle(50 * kMillisecond);
  }
  Settle(5 * kSecond);

  // Every stage saw all 20 stories.
  EXPECT_EQ(dj.stats().published, 10u);
  EXPECT_EQ(rt.stats().published, 10u);
  EXPECT_EQ(monitor->story_count(), 20u);
  EXPECT_EQ(generator->stats().stories_scanned, 20u);
  auto stored = repo.Count("story");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(*stored, 20u);

  // The monitor learned the full vendor-type hierarchy via gossip.
  EXPECT_TRUE(monitor_registry.IsSubtype("dj_story", "story"));
  EXPECT_TRUE(monitor_registry.IsSubtype("rt_story", "story"));

  // An analyst on host 4 queries the repository by attribute over RMI.
  auto analyst_bus = MakeClient(4, "analyst");
  std::shared_ptr<RemoteService> remote;
  RmiClient::Connect(analyst_bus.get(), "svc.repo", RmiClientConfig{},
                     [&](auto r) { remote = r.take(); });
  Settle();
  ASSERT_NE(remote, nullptr);
  size_t equities = 0;
  remote->Call("query", {Value("story"), Value("category"), Value("=="), Value("equity")},
               [&](Result<Value> r) {
                 ASSERT_TRUE(r.ok());
                 equities = r->AsList().size();
               });
  Settle();
  // Deterministic feeds: a fixed number of the 20 stories are equities.
  RepoQuery q;
  q.type_name = "story";
  q.predicate.And("category", Predicate::Op::kEq, Value("equity"));
  EXPECT_EQ(equities, repo.Query(q)->size());
  EXPECT_GT(equities, 0u);
}

class RouterRingTest : public ::testing::Test {
 protected:
  // Three LANs joined in a ring: A<->B, B<->C, C<->A.
  void SetUpRing() {
    net_ = std::make_unique<Network>(&sim_);
    for (int lan = 0; lan < 3; ++lan) {
      lans_.push_back(net_->AddSegment());
      for (int h = 0; h < 2; ++h) {
        hosts_.push_back(net_->AddHost("l" + std::to_string(lan) + "h" + std::to_string(h),
                                       lans_.back()));
        daemons_.push_back(BusDaemon::Start(net_.get(), hosts_.back(), cfg_).take());
      }
    }
    // hosts_: [A0 A1 B0 B1 C0 C1]; router hosts are A0, B0, C0.
    auto link = [&](int listen_host, int dial_host, const std::string& name, Port port) {
      auto listen_bus =
          BusClient::Connect(net_.get(), hosts_[static_cast<size_t>(listen_host)],
                             "_router:" + name + "L", cfg_)
              .take();
      auto r1 = InfoRouter::Listen(listen_bus.get(), "_router:" + name + "L", port).take();
      sim_.RunFor(50 * kMillisecond);
      auto dial_bus = BusClient::Connect(net_.get(), hosts_[static_cast<size_t>(dial_host)],
                                         "_router:" + name + "D", cfg_)
                          .take();
      auto r2 = InfoRouter::Connect(dial_bus.get(), "_router:" + name + "D",
                                    hosts_[static_cast<size_t>(listen_host)], port)
                    .take();
      router_buses_.push_back(std::move(listen_bus));
      router_buses_.push_back(std::move(dial_bus));
      routers_.push_back(std::move(r1));
      routers_.push_back(std::move(r2));
    };
    link(0, 2, "AB", 8701);  // A0 listens, B0 dials
    link(2, 4, "BC", 8702);  // B0 listens, C0 dials
    link(4, 0, "CA", 8703);  // C0 listens, A0 dials
    sim_.RunFor(500 * kMillisecond);
  }

  std::unique_ptr<BusClient> Client(int host_index, const std::string& name) {
    return BusClient::Connect(net_.get(), hosts_[static_cast<size_t>(host_index)], name, cfg_)
        .take();
  }

  Simulator sim_;
  std::unique_ptr<Network> net_;
  BusConfig cfg_;
  std::vector<SegmentId> lans_;
  std::vector<HostId> hosts_;
  std::vector<std::unique_ptr<BusDaemon>> daemons_;
  std::vector<std::unique_ptr<BusClient>> router_buses_;
  std::vector<std::unique_ptr<InfoRouter>> routers_;
};

TEST_F(RouterRingTest, RingDeliversWithoutStorms) {
  SetUpRing();
  // A subscriber on every LAN; a publisher on LAN A.
  auto sub_a = Client(1, "sub-a");
  auto sub_b = Client(3, "sub-b");
  auto sub_c = Client(5, "sub-c");
  int got_a = 0, got_b = 0, got_c = 0;
  ASSERT_TRUE(sub_a->Subscribe("ring.topic", [&](const Message&) { ++got_a; }).ok());
  ASSERT_TRUE(sub_b->Subscribe("ring.topic", [&](const Message&) { ++got_b; }).ok());
  ASSERT_TRUE(sub_c->Subscribe("ring.topic", [&](const Message&) { ++got_c; }).ok());
  sim_.RunFor(kSecond);

  auto pub = Client(1, "pub-a");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pub->Publish("ring.topic", ToBytes("m" + std::to_string(i))).ok());
  }
  sim_.RunFor(10 * kSecond);

  // In a cyclic topology a message can circulate (both ring directions) until the
  // hop cap kills it, so every LAN — including the origin — may see bounded
  // duplicates; production deployments configure router graphs as trees. What must
  // hold: everyone gets every message at least once, duplication is bounded by the
  // hop cap, and traffic stops.
  EXPECT_GE(got_a, 5);
  EXPECT_GE(got_b, 5);
  EXPECT_GE(got_c, 5);
  EXPECT_LE(got_a, 5 * 8);
  EXPECT_LE(got_b, 5 * 8);
  EXPECT_LE(got_c, 5 * 8);
  uint64_t total_forwarded = 0;
  for (const auto& r : routers_) {
    total_forwarded += r->stats().forwarded;
  }
  EXPECT_LE(total_forwarded, 5u * 6u * 8u);  // hop cap bounds ring circulation
  // And the system quiesces: no more events pending beyond timers.
  size_t events_before = sim_.pending_events();
  sim_.RunFor(5 * kSecond);
  EXPECT_LE(sim_.pending_events(), events_before);
}

class DaemonLifecycleTest : public BusFixture {};

TEST_F(DaemonLifecycleTest, HostRebootRejoinsTheBus) {
  SetUpBus(3);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  int got = 0;
  ASSERT_TRUE(sub->Subscribe("reboot.topic", [&](const Message&) { ++got; }).ok());
  Settle(50 * kMillisecond);
  ASSERT_TRUE(pub->Publish("reboot.topic", ToBytes("1")).ok());
  Settle();
  ASSERT_EQ(got, 1);

  // Host 1 crashes: daemon and client state are lost with it.
  net_->SetHostUp(hosts_[1], false);
  sub.reset();
  daemons_[1].reset();
  ASSERT_TRUE(pub->Publish("reboot.topic", ToBytes("lost")).ok());
  Settle();

  // Reboot: fresh daemon, fresh client, fresh subscription.
  net_->SetHostUp(hosts_[1], true);
  auto daemon = BusDaemon::Start(net_.get(), hosts_[1], config_);
  ASSERT_TRUE(daemon.ok());
  daemons_[1] = daemon.take();
  auto sub2 = MakeClient(1, "sub-rebooted");
  int got2 = 0;
  ASSERT_TRUE(sub2->Subscribe("reboot.topic", [&](const Message&) { ++got2; }).ok());
  Settle(50 * kMillisecond);
  ASSERT_TRUE(pub->Publish("reboot.topic", ToBytes("2")).ok());
  Settle(5 * kSecond);
  EXPECT_EQ(got2, 1);  // only the post-reboot message; no replayed history
}

TEST_F(DaemonLifecycleTest, ClientDestructionCleansSubscriptions) {
  SetUpBus(2);
  auto pub = MakeClient(0, "pub");
  {
    auto sub = MakeClient(1, "sub");
    ASSERT_TRUE(sub->Subscribe("clean.topic", [](const Message&) {}).ok());
    Settle(50 * kMillisecond);
    EXPECT_EQ(daemons_[1]->subscription_count(), 1u);
  }
  Settle(50 * kMillisecond);
  EXPECT_EQ(daemons_[1]->subscription_count(), 0u);
}

}  // namespace
}  // namespace ibus
