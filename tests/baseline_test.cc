#include <gtest/gtest.h>

#include "src/baseline/attribute_matcher.h"
#include "src/baseline/central_broker.h"
#include "src/sim/simulator.h"

namespace ibus {
namespace {

class BrokerTest : public ::testing::Test {
 protected:
  BrokerTest() : net_(&sim_) {
    seg_ = net_.AddSegment();
    broker_host_ = net_.AddHost("broker", seg_);
    for (int i = 0; i < 3; ++i) {
      hosts_.push_back(net_.AddHost("h" + std::to_string(i), seg_));
    }
    auto broker = CentralBroker::Start(&net_, broker_host_, 7000);
    EXPECT_TRUE(broker.ok());
    broker_ = broker.take();
  }

  std::unique_ptr<BrokerClient> Client(HostId h) {
    auto c = BrokerClient::Connect(&net_, h, broker_host_, 7000);
    EXPECT_TRUE(c.ok());
    return c.take();
  }

  Simulator sim_;
  Network net_;
  SegmentId seg_;
  HostId broker_host_;
  std::vector<HostId> hosts_;
  std::unique_ptr<CentralBroker> broker_;
};

TEST_F(BrokerTest, PubSubThroughBroker) {
  auto sub = Client(hosts_[0]);
  std::vector<std::string> got;
  sub->SetHandler([&](const std::string& subject, const Bytes& payload) {
    got.push_back(subject + "=" + ToString(payload));
  });
  ASSERT_TRUE(sub->Subscribe("quotes.*").ok());
  sim_.Run();
  auto pub = Client(hosts_[1]);
  ASSERT_TRUE(pub->Publish("quotes.gmc", ToBytes("41")).ok());
  ASSERT_TRUE(pub->Publish("news.gmc", ToBytes("x")).ok());
  sim_.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "quotes.gmc=41");
  EXPECT_EQ(broker_->stats().publishes, 2u);
  EXPECT_EQ(broker_->stats().deliveries, 1u);
}

TEST_F(BrokerTest, FanOutCostsOneUnicastPerSubscriber) {
  std::vector<std::unique_ptr<BrokerClient>> subs;
  int total = 0;
  for (int i = 0; i < 3; ++i) {
    subs.push_back(Client(hosts_[static_cast<size_t>(i)]));
    subs.back()->SetHandler([&](const std::string&, const Bytes&) { ++total; });
    ASSERT_TRUE(subs.back()->Subscribe("feed").ok());
  }
  sim_.Run();
  net_.ResetStats();
  auto pub = Client(hosts_[0]);
  ASSERT_TRUE(pub->Publish("feed", Bytes(100)).ok());
  sim_.Run();
  EXPECT_EQ(total, 3);
  // 1 publish frame in + 3 delivery frames out = 4 transmissions on the wire,
  // versus 1 broadcast frame on the Information Bus.
  EXPECT_GE(net_.stats().frames_sent, 4u);
}

TEST(AttributeQueryTest, PredicateEvaluation) {
  auto story = MakeObject("story", {{"ticker", Value("gmc")},
                                    {"words", Value(int64_t{250})},
                                    {"headline", Value("GM strike vote")}});
  EXPECT_TRUE(AttributeQuery().Matches(*story));  // empty query matches all
  EXPECT_TRUE(AttributeQuery()
                  .Where("ticker", AttributeQuery::Op::kEq, Value("gmc"))
                  .Matches(*story));
  EXPECT_FALSE(AttributeQuery()
                   .Where("ticker", AttributeQuery::Op::kEq, Value("ibm"))
                   .Matches(*story));
  EXPECT_TRUE(AttributeQuery()
                  .Where("words", AttributeQuery::Op::kGt, Value(int64_t{100}))
                  .Where("headline", AttributeQuery::Op::kContains, Value("strike"))
                  .Matches(*story));
  EXPECT_FALSE(AttributeQuery()
                   .Where("words", AttributeQuery::Op::kLt, Value(int64_t{100}))
                   .Matches(*story));
  EXPECT_FALSE(AttributeQuery()
                   .Where("missing", AttributeQuery::Op::kEq, Value("x"))
                   .Matches(*story));
}

TEST(AttributeMatcherTest, MatchAndRemove) {
  AttributeMatcher matcher;
  matcher.Insert(1, AttributeQuery().Where("ticker", AttributeQuery::Op::kEq, Value("gmc")));
  matcher.Insert(2, AttributeQuery().Where("words", AttributeQuery::Op::kGt,
                                           Value(int64_t{100})));
  matcher.Insert(3, AttributeQuery().Where("ticker", AttributeQuery::Op::kEq, Value("ibm")));
  auto story = MakeObject("story", {{"ticker", Value("gmc")}, {"words", Value(int64_t{250})}});
  auto hits = matcher.Match(*story);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<uint64_t>{1, 2}));
  EXPECT_TRUE(matcher.Remove(2));
  EXPECT_FALSE(matcher.Remove(2));
  hits = matcher.Match(*story);
  EXPECT_EQ(hits, (std::vector<uint64_t>{1}));
}

}  // namespace
}  // namespace ibus
