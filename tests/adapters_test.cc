#include <gtest/gtest.h>

#include "src/adapters/feed_sim.h"
#include "src/adapters/legacy_wip.h"
#include "src/adapters/news_adapter.h"
#include "src/rmi/client.h"
#include "tests/bus_fixture.h"

namespace ibus {
namespace {

TEST(FeedSimTest, DeterministicGivenSeed) {
  DowJonesFeed a(7);
  DowJonesFeed b(7);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a.NextRaw(), b.NextRaw());
  }
  DowJonesFeed c(8);
  EXPECT_NE(a.NextRaw(), c.NextRaw());
}

TEST(FeedSimTest, VendorsEncodeTheSameContentDifferently) {
  FeedStory s;
  s.serial = 42;
  s.category = "equity";
  s.ticker = "gmc";
  s.headline = "gm strike";
  s.industries = {"auto"};
  s.body = "the body";
  std::string dj = ToString(DowJonesFeed::Encode(s));
  std::string rt = ToString(ReutersFeed::Encode(s));
  EXPECT_EQ(dj, "DJ|42|equity|gmc|gm strike|auto|the body");
  EXPECT_NE(dj, rt);
  EXPECT_NE(rt.find("ZCZC"), std::string::npos);
  EXPECT_NE(rt.find("TIC gmc"), std::string::npos);
  EXPECT_NE(rt.find("NNNN"), std::string::npos);
}

class NewsAdapterTest : public BusFixture {
 protected:
  void SetUp() override {
    SetUpBus(2);
    ASSERT_TRUE(NewsAdapter::RegisterStoryTypes(&registry_).ok());
    bus_client_ = MakeClient(0, "adapter");
  }
  TypeRegistry registry_;
  std::unique_ptr<BusClient> bus_client_;
};

TEST_F(NewsAdapterTest, ParsesDowJonesIntoSubtype) {
  NewsAdapter adapter(bus_client_.get(), &registry_, NewsVendor::kDowJones);
  FeedStory expected;
  DowJonesFeed feed(11);
  Bytes raw = feed.NextRaw(&expected);
  auto story = adapter.Parse(raw);
  ASSERT_TRUE(story.ok()) << story.status().ToString();
  EXPECT_EQ((*story)->type_name(), "dj_story");
  EXPECT_EQ((*story)->Get("serial").AsI64(), static_cast<int64_t>(expected.serial));
  EXPECT_EQ((*story)->Get("category").AsString(), expected.category);
  EXPECT_EQ((*story)->Get("ticker").AsString(), expected.ticker);
  EXPECT_EQ((*story)->Get("headline").AsString(), expected.headline);
  EXPECT_EQ((*story)->Get("body").AsString(), expected.body);
  EXPECT_EQ((*story)->Get("industries").AsList().size(), expected.industries.size());
  // The subtype is a story (type hierarchy intact).
  EXPECT_TRUE(registry_.IsSubtype("dj_story", "story"));
}

TEST_F(NewsAdapterTest, ParsesReutersIntoSubtype) {
  NewsAdapter adapter(bus_client_.get(), &registry_, NewsVendor::kReuters);
  FeedStory expected;
  ReutersFeed feed(13);
  Bytes raw = feed.NextRaw(&expected);
  auto story = adapter.Parse(raw);
  ASSERT_TRUE(story.ok()) << story.status().ToString();
  EXPECT_EQ((*story)->type_name(), "rt_story");
  EXPECT_EQ((*story)->Get("headline").AsString(), expected.headline);
  EXPECT_EQ((*story)->Get("rt_service_level").AsString(), "standard");
}

TEST_F(NewsAdapterTest, MalformedInputRejected) {
  NewsAdapter dj(bus_client_.get(), &registry_, NewsVendor::kDowJones);
  EXPECT_FALSE(dj.Parse(ToBytes("garbage")).ok());
  EXPECT_FALSE(dj.Parse(ToBytes("XX|1|equity|gmc|h|auto|b")).ok());
  EXPECT_FALSE(dj.Parse(ToBytes("DJ|notanumber|equity|gmc|h|auto|b")).ok());
  NewsAdapter rt(bus_client_.get(), &registry_, NewsVendor::kReuters);
  EXPECT_FALSE(rt.Parse(ToBytes("SER 1\n")).ok());           // no ZCZC
  EXPECT_FALSE(rt.Parse(ToBytes("ZCZC\nSER 1\n")).ok());     // no NNNN
  EXPECT_EQ(dj.stats().parse_errors, 0u);                    // Parse() alone doesn't count
}

TEST_F(NewsAdapterTest, IngestPublishesUnderTopicSubject) {
  NewsAdapter adapter(bus_client_.get(), &registry_, NewsVendor::kDowJones);
  auto sub_client = MakeClient(1, "monitor");
  std::vector<std::string> subjects;
  ASSERT_TRUE(sub_client
                  ->Subscribe("news.>",
                              [&](const Message& m) { subjects.push_back(m.subject); })
                  .ok());
  Settle(10 * kMillisecond);
  FeedStory content;
  DowJonesFeed feed(5);
  ASSERT_TRUE(adapter.Ingest(feed.NextRaw(&content)).ok());
  Settle();
  ASSERT_EQ(subjects.size(), 1u);
  EXPECT_EQ(subjects[0], "news." + content.category + "." + content.ticker);
  EXPECT_EQ(adapter.stats().published, 1u);
}

TEST(GreenScreenTest, MenuNavigationAndForms) {
  GreenScreenWip wip;
  wip.SeedLot("L100", "etch2", 24);
  EXPECT_NE(wip.ReadScreen().find("SELECT OPTION"), std::string::npos);

  // Status inquiry via the terminal only.
  wip.SendKeys("1\n");
  EXPECT_NE(wip.ReadScreen().find("ENTER LOT ID"), std::string::npos);
  wip.SendKeys("L100\n");
  EXPECT_NE(wip.ReadScreen().find("LOT L100 AT etch2 QTY 24"), std::string::npos);
  wip.SendKeys("\n");

  // Move form.
  wip.SendKeys("2\nL100\nlitho8\n");
  EXPECT_NE(wip.ReadScreen().find("MOVE OK - LOT L100 NOW AT litho8"), std::string::npos);
  wip.SendKeys("\n");
  wip.SendKeys("1\nL100\n");
  EXPECT_NE(wip.ReadScreen().find("LOT L100 AT litho8"), std::string::npos);
}

TEST(GreenScreenTest, RejectsUnknownLotAndEmptyStation) {
  GreenScreenWip wip;
  wip.SendKeys("2\nGHOST\nsomewhere\n");
  EXPECT_NE(wip.ReadScreen().find("MOVE REJECTED - LOT GHOST NOT ON FILE"), std::string::npos);
  wip.SendKeys("\n");
  wip.SeedLot("L1", "start", 1);
  wip.SendKeys("2\nL1\n\n");
  EXPECT_NE(wip.ReadScreen().find("STATION REQUIRED"), std::string::npos);
  wip.SendKeys("\n");
  wip.SendKeys("1\nNOPE\n");
  EXPECT_NE(wip.ReadScreen().find("LOT NOPE NOT ON FILE"), std::string::npos);
}

class WipAdapterTest : public BusFixture {};

TEST_F(WipAdapterTest, BusMessageDrivesTerminalMove) {
  SetUpBus(2);
  TypeRegistry registry;
  GreenScreenWip legacy;
  legacy.SeedLot("L7", "etch2", 25);
  auto adapter_bus = MakeClient(0, "wip-adapter");
  auto adapter = WipAdapter::Create(adapter_bus.get(), &registry, &legacy);
  ASSERT_TRUE(adapter.ok()) << adapter.status().ToString();
  Settle(10 * kMillisecond);

  // A modern application publishes a typed move request; it neither knows nor cares
  // that a Cobol terminal sits behind the subject (R3).
  auto app = MakeClient(1, "cell-controller");
  TypeRegistry app_registry;
  ASSERT_TRUE(RegisterWipTypes(&app_registry).ok());
  DataObjectPtr status_seen;
  ASSERT_TRUE(app->SubscribeObjects("fab.wip.status.L7",
                                    [&](const Message&, const DataObjectPtr& o) {
                                      status_seen = o;
                                    })
                  .ok());
  Settle(10 * kMillisecond);
  auto move = app_registry.NewInstance("wip_move").take();
  move->Set("lot", Value("L7")).ok();
  move->Set("to_station", Value("litho8")).ok();
  ASSERT_TRUE(app->PublishObject("fab.wip.move", *move).ok());
  Settle();

  EXPECT_EQ((*adapter)->stats().moves_executed, 1u);
  ASSERT_NE(status_seen, nullptr);
  EXPECT_EQ(status_seen->Get("station").AsString(), "litho8");
  EXPECT_EQ(status_seen->Get("quantity").AsI64(), 25);
  EXPECT_TRUE(status_seen->Get("on_file").AsBool());
  // And the legacy screen agrees.
  legacy.SendKeys("1\nL7\n");
  EXPECT_NE(legacy.ReadScreen().find("LOT L7 AT litho8"), std::string::npos);
}

TEST_F(WipAdapterTest, RmiStatusQueryScrapesScreen) {
  SetUpBus(2);
  TypeRegistry registry;
  GreenScreenWip legacy;
  legacy.SeedLot("L9", "implant1", 13);
  auto adapter_bus = MakeClient(0, "wip-adapter");
  auto adapter = WipAdapter::Create(adapter_bus.get(), &registry, &legacy);
  ASSERT_TRUE(adapter.ok());
  Settle(10 * kMillisecond);

  auto client_bus = MakeClient(1, "dashboard");
  std::shared_ptr<RemoteService> remote;
  RmiClient::Connect(client_bus.get(), "svc.wip", RmiClientConfig{},
                     [&](auto r) { remote = r.take(); });
  Settle();
  ASSERT_NE(remote, nullptr);

  DataObjectPtr status;
  remote->Call("status", {Value("L9")}, [&](Result<Value> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    status = r->AsObject();
  });
  Settle();
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->Get("station").AsString(), "implant1");
  EXPECT_EQ(status->Get("quantity").AsI64(), 13);

  DataObjectPtr missing;
  remote->Call("status", {Value("GHOST")}, [&](Result<Value> r) {
    ASSERT_TRUE(r.ok());
    missing = r->AsObject();
  });
  Settle();
  ASSERT_NE(missing, nullptr);
  EXPECT_FALSE(missing->Get("on_file").AsBool());
}

}  // namespace
}  // namespace ibus
