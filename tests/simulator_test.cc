#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace ibus {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAfter(30, [&] { order.push_back(3); });
  sim.ScheduleAfter(10, [&] { order.push_back(1); });
  sim.ScheduleAfter(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, FifoAmongEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAfter(5, [&] { order.push_back(1); });
  sim.ScheduleAfter(5, [&] { order.push_back(2); });
  sim.ScheduleAfter(5, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.ScheduleAfter(1234, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 1234);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.ScheduleAfter(10, [&] {
    times.push_back(sim.Now());
    sim.ScheduleAfter(15, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 25}));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.ScheduleAfter(10, [&] { ran = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelUnknownIdIsSafe) {
  Simulator sim;
  sim.Cancel(0);
  sim.Cancel(99999);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.Now(), 500);
}

TEST(SimulatorTest, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  bool early = false;
  bool late = false;
  sim.ScheduleAfter(100, [&] { early = true; });
  sim.ScheduleAfter(200, [&] { late = true; });
  sim.RunUntil(150);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.Now(), 150);
  sim.Run();
  EXPECT_TRUE(late);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.RunFor(100);
  sim.RunFor(100);
  EXPECT_EQ(sim.Now(), 200);
}

TEST(SimulatorTest, ScheduleInPastClampsToNow) {
  Simulator sim;
  sim.RunUntil(100);
  SimTime seen = -1;
  sim.ScheduleAt(50, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 100);
}

TEST(SimulatorTest, RunWithMaxEventsStopsEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAfter(i, [&] { ++count; });
  }
  EXPECT_EQ(sim.Run(4), 4u);
  EXPECT_EQ(count, 4);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.ScheduleAfter(1, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

}  // namespace
}  // namespace ibus
