# Golden-file gate for buscap's JSONL report (see tools/buscap/CMakeLists.txt).
# Two demo runs with the canonical seed must render byte-identically, and must match
# the committed golden. Regenerate the golden with:
#   build/tools/buscap/buscap --demo --seed 42 --jsonl > tests/goldens/buscap_report.jsonl
foreach(var BUSCAP GOLDEN WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "buscap_golden.cmake: missing -D${var}=")
  endif()
endforeach()

execute_process(COMMAND ${BUSCAP} --demo --seed 42 --jsonl
                OUTPUT_FILE ${WORKDIR}/buscap_run1.jsonl
                RESULT_VARIABLE rc1)
execute_process(COMMAND ${BUSCAP} --demo --seed 42 --jsonl
                OUTPUT_FILE ${WORKDIR}/buscap_run2.jsonl
                RESULT_VARIABLE rc2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "buscap --demo --jsonl failed (rc=${rc1}/${rc2})")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORKDIR}/buscap_run1.jsonl ${WORKDIR}/buscap_run2.jsonl
                RESULT_VARIABLE stable)
if(NOT stable EQUAL 0)
  message(FATAL_ERROR "buscap JSONL report is not byte-stable across identical runs")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORKDIR}/buscap_run1.jsonl ${GOLDEN}
                RESULT_VARIABLE matches)
if(NOT matches EQUAL 0)
  message(FATAL_ERROR
          "buscap JSONL report diverged from tests/goldens/buscap_report.jsonl; "
          "if the change is intentional, regenerate the golden (command above)")
endif()
