#include <gtest/gtest.h>

#include "src/adapters/feed_sim.h"
#include "src/adapters/news_adapter.h"
#include "src/rmi/client.h"
#include "src/services/keyword_generator.h"
#include "src/services/news_monitor.h"
#include "tests/bus_fixture.h"

namespace ibus {
namespace {

DataObjectPtr TestStory(TypeRegistry* registry, int64_t serial, const std::string& headline,
                        const std::string& body) {
  auto story = registry->NewInstance("story").take();
  story->Set("serial", Value(serial)).ok();
  story->Set("category", Value(std::string("equity"))).ok();
  story->Set("ticker", Value(std::string("gmc"))).ok();
  story->Set("headline", Value(headline)).ok();
  story->Set("industries", Value(Value::List{})).ok();
  story->Set("body", Value(body)).ok();
  return story;
}

class KeywordTest : public BusFixture {
 protected:
  void SetUp() override {
    SetUpBus(3);
    ASSERT_TRUE(NewsAdapter::RegisterStoryTypes(&registry_).ok());
  }
  std::map<std::string, std::vector<std::string>> Categories() {
    return {{"autos", {"strike", "recall", "production"}},
            {"chips", {"fab", "yield", "wafer"}}};
  }
  TypeRegistry registry_;
};

TEST_F(KeywordTest, ExtractFindsDesignatedWords) {
  auto bus = MakeClient(0, "kwgen");
  auto gen = KeywordGenerator::Create(bus.get(), &registry_, "news.>", Categories());
  ASSERT_TRUE(gen.ok());
  auto story = TestStory(&registry_, 1, "GM strike widens",
                         "production halted as fab output drops");
  std::vector<std::string> found = (*gen)->ExtractKeywords(*story);
  std::sort(found.begin(), found.end());
  EXPECT_EQ(found, (std::vector<std::string>{"fab", "production", "strike"}));
}

TEST_F(KeywordTest, PropertyPublishedOnSameSubject) {
  auto gen_bus = MakeClient(0, "kwgen");
  auto gen = KeywordGenerator::Create(gen_bus.get(), &registry_, "news.>", Categories());
  ASSERT_TRUE(gen.ok());

  auto watcher = MakeClient(1, "watcher");
  std::vector<DataObjectPtr> props;
  ASSERT_TRUE(watcher
                  ->SubscribeObjects("news.equity.gmc",
                                     [&](const Message&, const DataObjectPtr& o) {
                                       if (o != nullptr && o->type_name() == "property") {
                                         props.push_back(o);
                                       }
                                     })
                  .ok());
  Settle(10 * kMillisecond);

  auto pub = MakeClient(2, "feed");
  auto story = TestStory(&registry_, 42, "strike news", "a recall too");
  ASSERT_TRUE(pub->PublishObject("news.equity.gmc", *story).ok());
  Settle();

  ASSERT_EQ(props.size(), 1u);
  EXPECT_EQ(props[0]->Get("object_ref").AsString(), "story:42");
  EXPECT_EQ(props[0]->Get("name").AsString(), "keywords");
  EXPECT_EQ(props[0]->Get("value").AsList().size(), 2u);
  EXPECT_EQ((*gen)->stats().stories_scanned, 1u);
  EXPECT_EQ((*gen)->stats().properties_published, 1u);
}

TEST_F(KeywordTest, NoPropertyWhenNothingMatches) {
  auto gen_bus = MakeClient(0, "kwgen");
  auto gen = KeywordGenerator::Create(gen_bus.get(), &registry_, "news.>", Categories());
  ASSERT_TRUE(gen.ok());
  Settle(10 * kMillisecond);
  auto pub = MakeClient(1, "feed");
  auto story = TestStory(&registry_, 1, "boring headline", "nothing of note");
  ASSERT_TRUE(pub->PublishObject("news.equity.gmc", *story).ok());
  Settle();
  EXPECT_EQ((*gen)->stats().stories_scanned, 1u);
  EXPECT_EQ((*gen)->stats().properties_published, 0u);
}

TEST_F(KeywordTest, DoesNotScanItsOwnProperties) {
  auto gen_bus = MakeClient(0, "kwgen");
  auto gen = KeywordGenerator::Create(gen_bus.get(), &registry_, "news.>", Categories());
  ASSERT_TRUE(gen.ok());
  Settle(10 * kMillisecond);
  auto pub = MakeClient(1, "feed");
  auto story = TestStory(&registry_, 1, "strike!", "yield up");
  ASSERT_TRUE(pub->PublishObject("news.equity.gmc", *story).ok());
  Settle(5 * kSecond);
  // One story scanned, one property out, no feedback loop.
  EXPECT_EQ((*gen)->stats().stories_scanned, 1u);
  EXPECT_EQ((*gen)->stats().properties_published, 1u);
}

TEST_F(KeywordTest, InteractiveInterfaceBrowsable) {
  auto gen_bus = MakeClient(0, "kwgen");
  auto gen = KeywordGenerator::Create(gen_bus.get(), &registry_, "news.>", Categories());
  ASSERT_TRUE(gen.ok());
  Settle(10 * kMillisecond);

  auto client_bus = MakeClient(1, "browser");
  std::shared_ptr<RemoteService> remote;
  RmiClient::Connect(client_bus.get(), "svc.keywords", RmiClientConfig{},
                     [&](auto r) { remote = r.take(); });
  Settle();
  ASSERT_NE(remote, nullptr);

  std::vector<std::string> cats;
  remote->Call("categories", {}, [&](Result<Value> r) {
    ASSERT_TRUE(r.ok());
    for (const Value& v : r->AsList()) {
      cats.push_back(v.AsString());
    }
  });
  Settle();
  std::sort(cats.begin(), cats.end());
  EXPECT_EQ(cats, (std::vector<std::string>{"autos", "chips"}));

  bool added = false;
  remote->Call("add_keyword", {Value("chips"), Value("lithography")}, [&](Result<Value> r) {
    ASSERT_TRUE(r.ok());
    added = r->AsBool();
  });
  Settle();
  EXPECT_TRUE(added);
  std::vector<std::string> words;
  remote->Call("keywords", {Value("chips")}, [&](Result<Value> r) {
    ASSERT_TRUE(r.ok());
    for (const Value& v : r->AsList()) {
      words.push_back(v.AsString());
    }
  });
  Settle();
  EXPECT_EQ(words.size(), 4u);
  EXPECT_EQ(words.back(), "lithography");
}

class MonitorTest : public BusFixture {
 protected:
  void SetUp() override {
    SetUpBus(3);
    ASSERT_TRUE(NewsAdapter::RegisterStoryTypes(&registry_).ok());
  }
  TypeRegistry registry_;
};

TEST_F(MonitorTest, SummaryListShowsViewColumns) {
  auto mon_bus = MakeClient(0, "monitor");
  ViewDef view{"Equity Desk", {"ticker", "headline"}, 20};
  auto monitor = NewsMonitor::Create(mon_bus.get(), &registry_, {"news.equity.>"}, view);
  ASSERT_TRUE(monitor.ok());
  Settle(10 * kMillisecond);

  auto pub = MakeClient(1, "feed");
  ASSERT_TRUE(
      pub->PublishObject("news.equity.gmc", *TestStory(&registry_, 1, "GM rallies", "b")).ok());
  ASSERT_TRUE(
      pub->PublishObject("news.equity.ibm", *TestStory(&registry_, 2, "IBM dips", "b")).ok());
  ASSERT_TRUE(
      pub->PublishObject("news.bond.t10", *TestStory(&registry_, 3, "bonds quiet", "b")).ok());
  Settle();

  EXPECT_EQ((*monitor)->story_count(), 2u);
  std::string summary = (*monitor)->RenderSummary();
  EXPECT_NE(summary.find("Equity Desk"), std::string::npos);
  EXPECT_NE(summary.find("GM rallies"), std::string::npos);
  EXPECT_NE(summary.find("IBM dips"), std::string::npos);
  EXPECT_EQ(summary.find("bonds quiet"), std::string::npos);
}

TEST_F(MonitorTest, SelectingAStoryShowsEverythingViaMetadata) {
  auto mon_bus = MakeClient(0, "monitor");
  auto monitor = NewsMonitor::Create(mon_bus.get(), &registry_, {"news.>"},
                                     ViewDef{"All", {"headline"}, 30});
  ASSERT_TRUE(monitor.ok());
  Settle(10 * kMillisecond);
  auto pub = MakeClient(1, "feed");
  ASSERT_TRUE(pub->PublishObject("news.equity.gmc",
                                 *TestStory(&registry_, 7, "Full story", "body text here"))
                  .ok());
  Settle();
  auto text = (*monitor)->RenderStory("story:7");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("headline"), std::string::npos);
  EXPECT_NE(text->find("body text here"), std::string::npos);
  EXPECT_NE(text->find("isa"), std::string::npos);  // registry-annotated print
  EXPECT_FALSE((*monitor)->RenderStory("story:999").ok());
}

TEST_F(MonitorTest, PropertiesAssociateWithStories) {
  // The full §5.2 flow: monitor + keyword generator, no coupling between them.
  auto mon_bus = MakeClient(0, "monitor");
  auto monitor = NewsMonitor::Create(mon_bus.get(), &registry_, {"news.>"},
                                     ViewDef{"All", {"headline"}, 30});
  ASSERT_TRUE(monitor.ok());
  auto gen_bus = MakeClient(1, "kwgen");
  auto gen = KeywordGenerator::Create(gen_bus.get(), &registry_, "news.>",
                                      {{"autos", {"strike"}}});
  ASSERT_TRUE(gen.ok());
  Settle(10 * kMillisecond);

  auto pub = MakeClient(2, "feed");
  ASSERT_TRUE(pub->PublishObject("news.equity.gmc",
                                 *TestStory(&registry_, 5, "strike looms", "strike vote"))
                  .ok());
  Settle();
  EXPECT_EQ((*monitor)->story_count(), 1u);
  EXPECT_EQ((*monitor)->annotated_count(), 1u);
  auto story = (*monitor)->story("story:5");
  ASSERT_NE(story, nullptr);
  ASSERT_TRUE(story->HasProperty("keywords"));
  auto text = (*monitor)->RenderStory("story:5");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("@keywords"), std::string::npos);
}

TEST_F(MonitorTest, PropertyArrivingBeforeStoryStillAssociates) {
  auto mon_bus = MakeClient(0, "monitor");
  auto monitor = NewsMonitor::Create(mon_bus.get(), &registry_, {"news.>"},
                                     ViewDef{"All", {"headline"}, 30});
  ASSERT_TRUE(monitor.ok());
  Settle(10 * kMillisecond);
  auto pub = MakeClient(1, "feed");

  auto prop = registry_.NewInstance("property").take();
  prop->Set("object_ref", Value(std::string("story:9"))).ok();
  prop->Set("name", Value(std::string("keywords"))).ok();
  prop->Set("value", Value(Value::List{Value("early")})).ok();
  ASSERT_TRUE(pub->PublishObject("news.equity.gmc", *prop).ok());
  Settle();
  ASSERT_TRUE(pub->PublishObject("news.equity.gmc",
                                 *TestStory(&registry_, 9, "late story", "b"))
                  .ok());
  Settle();
  auto story = (*monitor)->story("story:9");
  ASSERT_NE(story, nullptr);
  EXPECT_TRUE(story->HasProperty("keywords"));
}

TEST_F(MonitorTest, NewVendorSubtypeDisplaysWithoutChanges) {
  // §5.2's core claim: a subtype the monitor has never seen renders immediately.
  auto mon_bus = MakeClient(0, "monitor");
  auto monitor = NewsMonitor::Create(mon_bus.get(), &registry_, {"news.>"},
                                     ViewDef{"All", {"headline", "bbg_terminal"}, 24});
  ASSERT_TRUE(monitor.ok());
  Settle(10 * kMillisecond);

  // A remote process defines a brand-new subtype and publishes an instance.
  TypeRegistry remote_registry;
  ASSERT_TRUE(NewsAdapter::RegisterStoryTypes(&remote_registry).ok());
  TypeDescriptor bbg("bbg_story", "story");
  bbg.AddAttribute("bbg_terminal", "string");
  ASSERT_TRUE(remote_registry.Define(bbg).ok());
  auto story = remote_registry.NewInstance("bbg_story").take();
  story->Set("serial", Value(int64_t{11})).ok();
  story->Set("category", Value(std::string("equity"))).ok();
  story->Set("ticker", Value(std::string("tsm"))).ok();
  story->Set("headline", Value(std::string("TSMC beats"))).ok();
  story->Set("industries", Value(Value::List{})).ok();
  story->Set("body", Value(std::string("b"))).ok();
  story->Set("bbg_terminal", Value(std::string("BBG<GO>"))).ok();

  auto pub = MakeClient(1, "bbg-adapter");
  ASSERT_TRUE(pub->PublishObject("news.equity.tsm", *story).ok());
  Settle();
  EXPECT_EQ((*monitor)->story_count(), 1u);
  std::string summary = (*monitor)->RenderSummary();
  // The monitor displays the unknown subtype's attribute purely from the
  // self-describing instance.
  EXPECT_NE(summary.find("TSMC beats"), std::string::npos);
  EXPECT_NE(summary.find("BBG<GO>"), std::string::npos);
}

}  // namespace
}  // namespace ibus
