// busprof: the critical-path stage decomposition, its reconciliation invariant
// (stage sums == measured end-to-end latency, integer µs, every path), the
// capture join that splits wire intervals into queue/repair/transit, the
// event-core profiler, and the end-to-end profiled WAN scenario.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/bus/message.h"
#include "src/prof/demo.h"
#include "src/prof/profiler.h"
#include "src/prof/sim_profiler.h"
#include "src/prof/stages.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace ibus::prof {
namespace {

using telemetry::HopKind;
using telemetry::HopRecord;

HopRecord Hop(uint64_t trace_id, uint8_t hop, HopKind kind, const std::string& node,
              int64_t at_us) {
  HopRecord r;
  r.trace_id = trace_id;
  r.hop = hop;
  r.kind = kind;
  r.node = node;
  r.subject = "orders.new";
  r.at_us = at_us;
  return r;
}

TEST(StageTaxonomyTest, NamesAreStableAndDistinct) {
  std::vector<std::string> seen;
  for (size_t i = 0; i < kStageCount; ++i) {
    std::string name = StageName(static_cast<StageKind>(i));
    EXPECT_FALSE(name.empty());
    for (const std::string& prior : seen) {
      EXPECT_NE(name, prior);
    }
    seen.push_back(name);
    EXPECT_EQ(StageMetricName(static_cast<StageKind>(i)), "prof.stage." + name);
  }
  EXPECT_STREQ(StageName(StageKind::kPublishMarshal), "publish_marshal");
  EXPECT_STREQ(StageName(StageKind::kUnattributed), "unattributed");
}

TEST(StageBreakdownTest, TotalSumsAllStages) {
  StageBreakdown b;
  b[StageKind::kPublishMarshal] = 10;
  b[StageKind::kMediumTransit] = 200;
  b[StageKind::kUnattributed] = 3;
  EXPECT_EQ(b.total_us(), 213);
  EXPECT_EQ(b.at(StageKind::kMediumTransit), 200);
  EXPECT_EQ(b.at(StageKind::kDaemonQueue), 0);
}

TEST(DecomposeTest, EmptyTimelineYieldsNoPaths) {
  EXPECT_TRUE(DecomposeTimeline({}).empty());
}

TEST(DecomposeTest, OriginLanPathReconcilesExactly) {
  std::vector<HopRecord> tl = {
      Hop(7, 0, HopKind::kPublish, "producer", 100),
      Hop(7, 0, HopKind::kWireSend, "daemon@0", 150),
      Hop(7, 0, HopKind::kDispatch, "daemon@1", 400),
      Hop(7, 0, HopKind::kDeliver, "consumer", 450),
  };
  auto paths = DecomposeTimeline(tl);
  ASSERT_EQ(paths.size(), 1u);
  const PathProfile& p = paths[0];
  EXPECT_EQ(p.trace_id, 7u);
  EXPECT_EQ(p.dest, "consumer");
  EXPECT_EQ(p.end_to_end_us, 350);
  EXPECT_EQ(p.stages.at(StageKind::kPublishMarshal), 50);
  EXPECT_EQ(p.stages.at(StageKind::kMediumTransit), 250);  // default split
  EXPECT_EQ(p.stages.at(StageKind::kDeliverDispatch), 50);
  EXPECT_EQ(p.stages.at(StageKind::kUnattributed), 0);
  EXPECT_EQ(p.stages.total_us(), p.end_to_end_us);
}

TEST(DecomposeTest, WanPathWalksRouterChain) {
  std::vector<HopRecord> tl = {
      Hop(9, 0, HopKind::kPublish, "producer", 100),
      Hop(9, 0, HopKind::kWireSend, "daemon@0", 120),
      Hop(9, 0, HopKind::kDispatch, "daemon@0", 200),
      Hop(9, 0, HopKind::kDeliver, "_router:A", 230),
      Hop(9, 1, HopKind::kRouterForward, "_router:A", 260),
      Hop(9, 2, HopKind::kRouterRepublish, "_router:B", 500),
      Hop(9, 2, HopKind::kWireSend, "daemon@2", 520),
      Hop(9, 2, HopKind::kDispatch, "daemon@3", 640),
      Hop(9, 2, HopKind::kDeliver, "consumer", 700),
  };
  auto paths = DecomposeTimeline(tl);
  ASSERT_EQ(paths.size(), 2u);  // router-client deliver at hop 0 + consumer at hop 2
  const PathProfile& wan = paths[1];
  EXPECT_EQ(wan.dest, "consumer");
  EXPECT_EQ(wan.hop, 2);
  EXPECT_EQ(wan.end_to_end_us, 600);
  EXPECT_EQ(wan.stages.at(StageKind::kDeliverDispatch), 60);   // 640 -> 700
  // Far-LAN wire 520->640 plus WAN link 260->500 plus origin wire 120->200.
  EXPECT_EQ(wan.stages.at(StageKind::kMediumTransit), 120 + 240 + 80);
  EXPECT_EQ(wan.stages.at(StageKind::kRouterRepublish), 20);   // 500 -> 520
  EXPECT_EQ(wan.stages.at(StageKind::kRouterForward), 60);     // 200 -> 260
  EXPECT_EQ(wan.stages.at(StageKind::kPublishMarshal), 20);    // 100 -> 120
  EXPECT_EQ(wan.stages.at(StageKind::kUnattributed), 0);
  EXPECT_EQ(wan.stages.total_us(), wan.end_to_end_us);

  const PathProfile& local = paths[0];
  EXPECT_EQ(local.dest, "_router:A");
  EXPECT_EQ(local.end_to_end_us, 130);
  EXPECT_EQ(local.stages.total_us(), local.end_to_end_us);
}

TEST(DecomposeTest, MissingHopFoldsRemainderIntoUnattributed) {
  std::vector<HopRecord> tl = {
      Hop(5, 0, HopKind::kPublish, "producer", 100),
      Hop(5, 0, HopKind::kDispatch, "daemon@1", 300),  // no wire_send record
      Hop(5, 0, HopKind::kDeliver, "consumer", 350),
  };
  auto paths = DecomposeTimeline(tl);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].stages.at(StageKind::kDeliverDispatch), 50);
  EXPECT_EQ(paths[0].stages.at(StageKind::kUnattributed), 200);
  EXPECT_EQ(paths[0].stages.total_us(), paths[0].end_to_end_us);
}

TEST(DecomposeTest, CustomSplitterKeepsReconciliation) {
  std::vector<HopRecord> tl = {
      Hop(3, 0, HopKind::kPublish, "producer", 0),
      Hop(3, 0, HopKind::kWireSend, "daemon@0", 10),
      Hop(3, 0, HopKind::kDispatch, "daemon@1", 110),
      Hop(3, 0, HopKind::kDeliver, "consumer", 120),
  };
  WireSplitFn split = [](const HopRecord& ws, const HopRecord& disp, StageBreakdown* out) {
    int64_t span = disp.at_us - ws.at_us;
    (*out)[StageKind::kDaemonQueue] += 30;
    (*out)[StageKind::kRetransmitRepair] += 20;
    (*out)[StageKind::kMediumTransit] += span - 50;
  };
  auto paths = DecomposeTimeline(tl, split);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].stages.at(StageKind::kDaemonQueue), 30);
  EXPECT_EQ(paths[0].stages.at(StageKind::kRetransmitRepair), 20);
  EXPECT_EQ(paths[0].stages.at(StageKind::kMediumTransit), 50);
  EXPECT_EQ(paths[0].stages.total_us(), paths[0].end_to_end_us);
}

TEST(StageAccumulatorTest, TotalsAndShareTrackAddedPaths) {
  telemetry::MetricsRegistry registry;
  StageAccumulator acc(&registry);
  EXPECT_EQ(acc.paths(), 0u);
  EXPECT_EQ(acc.UnattributedShare(), 0.0);

  PathProfile a;
  a.end_to_end_us = 100;
  a.stages[StageKind::kMediumTransit] = 90;
  a.stages[StageKind::kUnattributed] = 10;
  PathProfile b;
  b.end_to_end_us = 300;
  b.stages[StageKind::kMediumTransit] = 300;
  acc.Add(a);
  acc.Add(b);
  EXPECT_EQ(acc.paths(), 2u);
  EXPECT_EQ(acc.total_us(StageKind::kMediumTransit), 390);
  EXPECT_EQ(acc.end_to_end_total_us(), 400);
  EXPECT_DOUBLE_EQ(acc.UnattributedShare(), 10.0 / 400.0);
#if IBUS_TELEMETRY
  EXPECT_EQ(acc.histogram(StageKind::kMediumTransit)->count(), 2u);
  EXPECT_EQ(acc.histogram(StageKind::kDaemonQueue)->count(), 0u);
#endif
}

TEST(PeekTraceContextTest, ReadsHeaderAndSurvivesPayloadTruncation) {
  Message m;
  m.subject = "orders.new";
  m.sender = "producer";
  m.trace_id = 0xBEEF;
  m.trace_hop = 2;
  m.payload = ToBytes(std::string(4096, 'x'));
  Bytes full = m.Marshal();

  TraceContext ctx = PeekTraceContext(full);
  ASSERT_TRUE(ctx.ok);
  EXPECT_EQ(ctx.trace_id, 0xBEEFu);
  EXPECT_EQ(ctx.trace_hop, 2);

  // A frag-0 chunk carries only a prefix of the marshalled message; the header
  // still parses because every header field precedes the payload bytes.
  Bytes prefix(full.begin(), full.begin() + 256);
  TraceContext chunk_ctx = PeekTraceContext(prefix);
  ASSERT_TRUE(chunk_ctx.ok);
  EXPECT_EQ(chunk_ctx.trace_id, 0xBEEFu);

  Bytes too_short(full.begin(), full.begin() + 8);
  EXPECT_FALSE(PeekTraceContext(too_short).ok);
}

TEST(ParseDaemonNodeTest, AcceptsDaemonNamesRejectsOthers) {
  HostId h = 0;
  EXPECT_TRUE(ParseDaemonNode("daemon@7", &h));
  EXPECT_EQ(h, 7u);
  EXPECT_TRUE(ParseDaemonNode("daemon@0", &h));
  EXPECT_EQ(h, 0u);
  EXPECT_FALSE(ParseDaemonNode("consumer", &h));
  EXPECT_FALSE(ParseDaemonNode("daemon@", &h));
  EXPECT_FALSE(ParseDaemonNode("daemon@7x", &h));
  EXPECT_FALSE(ParseDaemonNode("_router:A", &h));
}

TEST(EventCoreProfilerTest, CountsKindsAndRates) {
  EventCoreProfiler prof;
  EXPECT_EQ(prof.total_events(), 0u);
  prof.OnEventDispatched("net.datagram_deliver", 1000);
  prof.OnEventDispatched("net.datagram_deliver", 2000);
  prof.OnEventDispatched("proto.heartbeat", 2000000);
  EXPECT_EQ(prof.total_events(), 3u);
  EXPECT_EQ(prof.first_at_us(), 1000);
  EXPECT_EQ(prof.last_at_us(), 2000000);
  EXPECT_EQ(prof.counts().at("net.datagram_deliver"), 2u);
  EXPECT_GT(prof.RatePerSec("net.datagram_deliver"), 0.0);
  EXPECT_EQ(prof.RatePerSec("unknown.kind"), 0.0);
  std::string json = prof.RenderJson();
  EXPECT_NE(json.find("\"total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"proto.heartbeat\""), std::string::npos);
  EXPECT_NE(prof.RenderText().find("net.datagram_deliver"), std::string::npos);
}

TEST(ProfilerRenderTest, EmptyProfileStillRendersValidReport) {
  CriticalPathProfiler prof;
  EXPECT_TRUE(prof.Reconciled());
  std::string json = prof.RenderJson({{"extra", "{\"k\":1}"}});
  EXPECT_NE(json.find("\"schema\":\"BUSPROF_1\""), std::string::npos);
  EXPECT_NE(json.find("\"path_count\":0"), std::string::npos);
  EXPECT_NE(json.find("\"extra\":{\"k\":1}"), std::string::npos);
  EXPECT_TRUE(prof.RenderCollapsed().empty());
  EXPECT_EQ(prof.Hash(), prof.Hash());
}

#if IBUS_TELEMETRY
// End-to-end: the canonical profiled WAN scenario must produce reconciled,
// low-residue, replay-stable profiles.
TEST(ProfiledScenarioTest, StageSumsReconcileExactlyPerPath) {
  ProfiledScenario run = RunProfiledWanScenario(42);
  ASSERT_FALSE(run.trace.empty());
  ASSERT_TRUE(run.trace.front().rfind("error:", 0) != 0) << run.trace.front();
  ASSERT_GT(run.paths.size(), 0u);
  EXPECT_TRUE(run.reconciled);
  for (const PathProfile& p : run.paths) {
    EXPECT_EQ(p.stages.total_us(), p.end_to_end_us)
        << "trace " << p.trace_id << " dest " << p.dest;
    EXPECT_GE(p.end_to_end_us, 0);
  }
  // Acceptance bar: the unattributed residue stays under 1% on stock scenarios.
  EXPECT_LT(run.unattributed_share, 0.01);
  EXPECT_GT(run.frames_captured, 0u);
}

TEST(ProfiledScenarioTest, ReportsAreBitIdenticalAcrossReplays) {
  ProfiledScenario a = RunProfiledWanScenario(42);
  ProfiledScenario b = RunProfiledWanScenario(42);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.collapsed, b.collapsed);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.trace, b.trace);

  ProfiledScenario c = RunProfiledWanScenario(43);
  EXPECT_NE(a.hash, c.hash) << "profile is not sensitive to the replay seed";
}

TEST(ProfiledScenarioTest, JsonCarriesQueueAndEventCoreSections) {
  ProfiledScenario run = RunProfiledWanScenario(42);
  EXPECT_NE(run.json.find("\"queues\""), std::string::npos);
  EXPECT_NE(run.json.find("\"event_core\""), std::string::npos);
  EXPECT_NE(run.json.find("proto.receiver.ready_depth.hwm"), std::string::npos);
  EXPECT_NE(run.json.find("router.link_backlog_us.hwm"), std::string::npos);
  EXPECT_NE(run.json.find("\"reconciled\":true"), std::string::npos);
}
#endif  // IBUS_TELEMETRY

}  // namespace
}  // namespace ibus::prof
