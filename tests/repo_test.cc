#include <gtest/gtest.h>

#include "src/repo/repository.h"
#include "src/rmi/client.h"
#include "tests/bus_fixture.h"

namespace ibus {
namespace {

class RepoTest : public ::testing::Test {
 protected:
  RepoTest() : repo_(&registry_, &db_) {
    TypeDescriptor story("story", "object");
    story.AddAttribute("headline", "string");
    story.AddAttribute("word_count", "i64");
    story.AddAttribute("sources", "list");
    EXPECT_TRUE(registry_.Define(story).ok());

    TypeDescriptor dj("dj_story", "story");
    dj.AddAttribute("dj_code", "string");
    EXPECT_TRUE(registry_.Define(dj).ok());
  }

  DataObjectPtr NewStory(const std::string& headline, int64_t words) {
    auto obj = registry_.NewInstance("story");
    EXPECT_TRUE(obj.ok());
    (*obj)->Set("headline", Value(headline)).ok();
    (*obj)->Set("word_count", Value(words)).ok();
    (*obj)->Set("sources", Value(Value::List{Value("dj"), Value("rt")})).ok();
    return *obj;
  }

  TypeRegistry registry_;
  Database db_;
  Repository repo_;
};

TEST_F(RepoTest, SchemaGeneratedFromMetadata) {
  ASSERT_TRUE(repo_.mapper()->EnsureSchema("story").ok());
  ASSERT_TRUE(db_.HasTable("obj_story"));
  ASSERT_TRUE(db_.HasTable("obj_story__sources"));
  const Table* t = db_.GetTable("obj_story");
  EXPECT_GE(t->schema().ColumnIndex("headline"), 0);
  EXPECT_GE(t->schema().ColumnIndex("word_count"), 0);
  EXPECT_EQ(t->schema().ColumnIndex("sources"), -1);  // lists live in the child table
}

TEST_F(RepoTest, StoreAndLoadRoundTrip) {
  auto story = NewStory("Fab yields up", 350);
  story->SetProperty("keywords", Value(Value::List{Value("yield")}));
  auto id = repo_.Store(*story);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto loaded = repo_.Load("story", *id);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(**loaded, *story);
}

TEST_F(RepoTest, NestedObjectsDecomposeIntoTheirOwnTables) {
  TypeDescriptor source("source", "object");
  source.AddAttribute("agency", "string");
  ASSERT_TRUE(registry_.Define(source).ok());
  TypeDescriptor rich("rich_story", "story");
  rich.AddAttribute("origin", "source");
  ASSERT_TRUE(registry_.Define(rich).ok());

  auto origin = registry_.NewInstance("source").take();
  origin->Set("agency", Value("Reuters")).ok();
  auto story = registry_.NewInstance("rich_story").take();
  story->Set("headline", Value("h")).ok();
  story->Set("word_count", Value(int64_t{10})).ok();
  story->Set("sources", Value(Value::List{})).ok();
  story->Set("origin", Value(origin)).ok();

  auto id = repo_.Store(*story);
  ASSERT_TRUE(id.ok());
  // The nested object landed in its own type's table.
  ASSERT_TRUE(db_.HasTable("obj_source"));
  EXPECT_EQ(db_.GetTable("obj_source")->row_count(), 1u);

  auto loaded = repo_.Load("rich_story", *id);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE((*loaded)->Get("origin").is_object());
  EXPECT_EQ((*loaded)->Get("origin").AsObject()->Get("agency").AsString(), "Reuters");
}

TEST_F(RepoTest, QueryByAttribute) {
  repo_.Store(*NewStory("alpha", 100)).ok();
  repo_.Store(*NewStory("beta", 200)).ok();
  repo_.Store(*NewStory("gamma", 300)).ok();

  RepoQuery q;
  q.type_name = "story";
  q.predicate.And("word_count", Predicate::Op::kGt, Value(int64_t{150}));
  auto result = repo_.Query(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST_F(RepoTest, QueriesRespectTypeHierarchy) {
  repo_.Store(*NewStory("plain", 100)).ok();
  auto dj = registry_.NewInstance("dj_story").take();
  dj->Set("headline", Value("dj special")).ok();
  dj->Set("word_count", Value(int64_t{50})).ok();
  dj->Set("sources", Value(Value::List{})).ok();
  dj->Set("dj_code", Value("X9")).ok();
  repo_.Store(*dj).ok();

  // Paper §4: "queries ... return all objects that satisfy a constraint, including
  // objects that are instances of a subtype."
  auto all = repo_.Count("story");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, 2u);
  auto exact = repo_.Count("story", /*include_subtypes=*/false);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, 1u);

  // The subtype instance comes back as its real type.
  RepoQuery q;
  q.type_name = "story";
  q.predicate.And("word_count", Predicate::Op::kLt, Value(int64_t{60}));
  auto result = repo_.Query(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0]->type_name(), "dj_story");
  EXPECT_EQ((*result)[0]->Get("dj_code").AsString(), "X9");
}

TEST_F(RepoTest, OldQueriesStillWorkWhenNewSubtypesAppear) {
  repo_.Store(*NewStory("before", 10)).ok();
  // A brand-new subtype shows up at run-time (R2).
  TypeDescriptor bw("bloomberg_story", "story");
  bw.AddAttribute("terminal_code", "string");
  ASSERT_TRUE(registry_.Define(bw).ok());
  auto obj = registry_.NewInstance("bloomberg_story").take();
  obj->Set("headline", Value("after")).ok();
  obj->Set("word_count", Value(int64_t{20})).ok();
  obj->Set("sources", Value(Value::List{})).ok();
  obj->Set("terminal_code", Value("BBG1")).ok();
  ASSERT_TRUE(repo_.Store(*obj).ok());
  auto count = repo_.Count("story");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);  // the old "all stories" query picks up the new subtype
}

TEST_F(RepoTest, UnknownTypeDerivedFromInstance) {
  // An object of a type the repository never saw a descriptor for (pure P2).
  auto alien = MakeObject("sensor_sweep", {{"station", Value("litho8")},
                                           {"readings", Value(Value::List{Value(1.5), Value(2.5)})},
                                           {"ok", Value(true)}});
  auto id = repo_.Store(*alien);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(registry_.Has("sensor_sweep"));
  EXPECT_TRUE(db_.HasTable("obj_sensor_sweep"));
  auto loaded = repo_.Load("sensor_sweep", *id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(**loaded, *alien);
}

TEST_F(RepoTest, SchemaEvolvesWhenTypeGainsAttributes) {
  auto id = repo_.Store(*NewStory("old", 10));
  ASSERT_TRUE(id.ok());
  // Evolve the type: version 2 adds a byline.
  TypeDescriptor story2("story", "object");
  story2.AddAttribute("headline", "string");
  story2.AddAttribute("word_count", "i64");
  story2.AddAttribute("sources", "list");
  story2.AddAttribute("byline", "string");
  story2.set_version(2);
  ASSERT_TRUE(registry_.Define(story2).ok());  // observer migrates the table

  // The old row is still there, with a NULL byline.
  auto loaded = repo_.Load("story", *id);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->Get("headline").AsString(), "old");
  EXPECT_TRUE((*loaded)->Get("byline").is_null());

  // New instances persist the new attribute.
  auto obj = registry_.NewInstance("story").take();
  obj->Set("headline", Value("new")).ok();
  obj->Set("word_count", Value(int64_t{20})).ok();
  obj->Set("sources", Value(Value::List{})).ok();
  obj->Set("byline", Value("a. reporter")).ok();
  auto id2 = repo_.Store(*obj);
  ASSERT_TRUE(id2.ok());
  auto loaded2 = repo_.Load("story", *id2);
  ASSERT_TRUE(loaded2.ok());
  EXPECT_EQ((*loaded2)->Get("byline").AsString(), "a. reporter");
}

TEST_F(RepoTest, DeleteRemovesAllRows) {
  auto id = repo_.Store(*NewStory("gone", 5));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(repo_.Delete("story", *id).ok());
  EXPECT_FALSE(repo_.Load("story", *id).ok());
  EXPECT_EQ(db_.GetTable("obj_story__sources")->row_count(), 0u);
}

class RepoBusTest : public BusFixture {};

TEST_F(RepoBusTest, CaptureServerStoresPublishedObjects) {
  SetUpBus(2);
  TypeRegistry registry;
  Database db;
  Repository repo(&registry, &db);
  auto repo_bus = MakeClient(1, "repository");
  auto capture = CaptureServer::Create(repo_bus.get(), &repo, {"news.>"});
  ASSERT_TRUE(capture.ok());
  Settle(10 * kMillisecond);

  auto pub = MakeClient(0, "feed");
  auto story = MakeObject("story", {{"headline", Value("GM up")}, {"ticker", Value("gmc")}});
  ASSERT_TRUE(pub->PublishObject("news.equity.gmc", *story).ok());
  ASSERT_TRUE(pub->PublishObject("news.equity.ibm", *story).ok());
  ASSERT_TRUE(pub->Publish("sports.scores", ToBytes("not news")).ok());
  Settle();
  EXPECT_EQ((*capture)->captured(), 2u);
  auto count = repo.Count("story");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);
}

TEST_F(RepoBusTest, QueryServerAnswersOverRmi) {
  SetUpBus(2);
  TypeRegistry registry;
  Database db;
  Repository repo(&registry, &db);
  auto story = MakeObject("story", {{"headline", Value("one")}, {"words", Value(int64_t{10})}});
  ASSERT_TRUE(repo.Store(*story).ok());
  auto story2 = MakeObject("story", {{"headline", Value("two")}, {"words", Value(int64_t{99})}});
  ASSERT_TRUE(repo.Store(*story2).ok());

  auto server_bus = MakeClient(1, "repo-server");
  auto qs = QueryServer::Create(server_bus.get(), &repo, "svc.repository");
  ASSERT_TRUE(qs.ok());
  Settle(10 * kMillisecond);

  auto client_bus = MakeClient(0, "analyst");
  std::shared_ptr<RemoteService> remote;
  RmiClient::Connect(client_bus.get(), "svc.repository", RmiClientConfig{},
                     [&](auto r) { remote = r.take(); });
  Settle();
  ASSERT_NE(remote, nullptr);

  int64_t count = -1;
  remote->Call("count", {Value("story")}, [&](Result<Value> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    count = r->AsI64();
  });
  Settle();
  EXPECT_EQ(count, 2);

  std::vector<std::string> headlines;
  remote->Call("query", {Value("story"), Value("words"), Value(">"), Value(int64_t{50})},
               [&](Result<Value> r) {
                 ASSERT_TRUE(r.ok()) << r.status().ToString();
                 for (const Value& v : r->AsList()) {
                   headlines.push_back(v.AsObject()->Get("headline").AsString());
                 }
               });
  Settle();
  EXPECT_EQ(headlines, (std::vector<std::string>{"two"}));

  // Store a new object remotely.
  auto story3 = MakeObject("story", {{"headline", Value("three")}, {"words", Value(int64_t{1})}});
  std::string stored_id;
  remote->Call("store", {Value(story3)}, [&](Result<Value> r) {
    ASSERT_TRUE(r.ok());
    stored_id = r->AsString();
  });
  Settle();
  EXPECT_FALSE(stored_id.empty());
  auto total = repo.Count("story");
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 3u);
}

}  // namespace
}  // namespace ibus
