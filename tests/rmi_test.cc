#include <gtest/gtest.h>

#include "src/rmi/client.h"
#include "src/rmi/server.h"
#include "src/rmi/service.h"
#include "tests/bus_fixture.h"

namespace ibus {
namespace {

// A small calculator service used throughout.
std::shared_ptr<DynamicService> MakeCalculator() {
  auto svc = std::make_shared<DynamicService>("calculator");
  OperationDef add;
  add.name = "add";
  add.result_type = "i64";
  add.params = {ParamDef{"a", "i64"}, ParamDef{"b", "i64"}};
  svc->AddOperation(add, [](const std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 2 || !args[0].is_number() || !args[1].is_number()) {
      return InvalidArgument("add wants two numbers");
    }
    return Value(args[0].NumberAsI64() + args[1].NumberAsI64());
  });
  OperationDef fail;
  fail.name = "always_fails";
  fail.result_type = "null";
  svc->AddOperation(fail, [](const std::vector<Value>&) -> Result<Value> {
    return Internal("deliberate failure");
  });
  return svc;
}

class RmiTest : public BusFixture {};

TEST_F(RmiTest, DiscoverConnectInvoke) {
  SetUpBus(2);
  auto server_bus = MakeClient(1, "calc-server");
  auto server = RmiServer::Create(server_bus.get(), "svc.calc", MakeCalculator());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Settle(10 * kMillisecond);

  auto client_bus = MakeClient(0, "calc-client");
  std::shared_ptr<RemoteService> remote;
  ASSERT_TRUE(RmiClient::Connect(client_bus.get(), "svc.calc", RmiClientConfig{},
                                 [&](Result<std::shared_ptr<RemoteService>> r) {
                                   ASSERT_TRUE(r.ok()) << r.status().ToString();
                                   remote = r.take();
                                 })
                  .ok());
  Settle();
  ASSERT_NE(remote, nullptr);
  EXPECT_TRUE(remote->connected());

  int64_t sum = 0;
  remote->Call("add", {Value(int64_t{40}), Value(int64_t{2})}, [&](Result<Value> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    sum = r->AsI64();
  });
  Settle();
  EXPECT_EQ(sum, 42);
  EXPECT_EQ((*server)->stats().requests, 1u);
}

TEST_F(RmiTest, RemoteErrorPropagates) {
  SetUpBus(2);
  auto server_bus = MakeClient(1, "calc-server");
  auto server = RmiServer::Create(server_bus.get(), "svc.calc", MakeCalculator());
  ASSERT_TRUE(server.ok());
  Settle(10 * kMillisecond);
  auto client_bus = MakeClient(0, "client");
  std::shared_ptr<RemoteService> remote;
  RmiClient::Connect(client_bus.get(), "svc.calc", RmiClientConfig{},
                     [&](Result<std::shared_ptr<RemoteService>> r) { remote = r.take(); });
  Settle();
  ASSERT_NE(remote, nullptr);

  Status got;
  remote->Call("always_fails", {}, [&](Result<Value> r) { got = r.status(); });
  Settle();
  EXPECT_EQ(got.code(), StatusCode::kInternal);
  EXPECT_EQ(got.message(), "deliberate failure");

  Status missing;
  remote->Call("no_such_op", {}, [&](Result<Value> r) { missing = r.status(); });
  Settle();
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
}

TEST_F(RmiTest, NoServerMeansUnavailable) {
  SetUpBus(1);
  auto client_bus = MakeClient(0, "client");
  Status got;
  RmiClient::Connect(client_bus.get(), "svc.ghost", RmiClientConfig{},
                     [&](Result<std::shared_ptr<RemoteService>> r) { got = r.status(); });
  Settle();
  EXPECT_EQ(got.code(), StatusCode::kUnavailable);
}

TEST_F(RmiTest, InterfaceLearnedAtDiscovery) {
  SetUpBus(2);
  auto server_bus = MakeClient(1, "calc-server");
  auto server = RmiServer::Create(server_bus.get(), "svc.calc", MakeCalculator());
  ASSERT_TRUE(server.ok());
  Settle(10 * kMillisecond);
  auto client_bus = MakeClient(0, "client");
  std::shared_ptr<RemoteService> remote;
  RmiClient::Connect(client_bus.get(), "svc.calc", RmiClientConfig{},
                     [&](Result<std::shared_ptr<RemoteService>> r) { remote = r.take(); });
  Settle();
  ASSERT_NE(remote, nullptr);
  // P2 for services: the client can enumerate operations it was never compiled with.
  const TypeDescriptor& iface = remote->interface();
  EXPECT_EQ(iface.name(), "calculator");
  ASSERT_NE(iface.FindOperation("add"), nullptr);
  EXPECT_EQ(iface.FindOperation("add")->Signature(), "add(i64 a, i64 b) -> i64");
}

TEST_F(RmiTest, DescribeOverTheWire) {
  SetUpBus(2);
  auto server_bus = MakeClient(1, "calc-server");
  auto server = RmiServer::Create(server_bus.get(), "svc.calc", MakeCalculator());
  ASSERT_TRUE(server.ok());
  Settle(10 * kMillisecond);
  auto client_bus = MakeClient(0, "client");
  std::shared_ptr<RemoteService> remote;
  RmiClient::Connect(client_bus.get(), "svc.calc", RmiClientConfig{},
                     [&](Result<std::shared_ptr<RemoteService>> r) { remote = r.take(); });
  Settle();
  ASSERT_NE(remote, nullptr);
  TypeDescriptor iface;
  remote->Describe([&](Result<TypeDescriptor> r) {
    ASSERT_TRUE(r.ok());
    iface = r.take();
  });
  Settle();
  EXPECT_EQ(iface.name(), "calculator");
  EXPECT_EQ(iface.operations().size(), 2u);
}

TEST_F(RmiTest, MultipleServersDiscovered) {
  SetUpBus(3);
  auto bus1 = MakeClient(1, "server-a");
  auto bus2 = MakeClient(2, "server-b");
  auto s1 = RmiServer::Create(bus1.get(), "svc.multi", MakeCalculator());
  auto s2 = RmiServer::Create(bus2.get(), "svc.multi", MakeCalculator());
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  Settle(10 * kMillisecond);

  auto client_bus = MakeClient(0, "client");
  std::vector<RmiAdvert> adverts;
  RmiClient::Discover(client_bus.get(), "svc.multi", RmiClientConfig{},
                      [&](std::vector<RmiAdvert> a) { adverts = std::move(a); });
  Settle();
  ASSERT_EQ(adverts.size(), 2u);
  std::vector<std::string> names{adverts[0].server_name, adverts[1].server_name};
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"server-a", "server-b"}));
}

TEST_F(RmiTest, LeastLoadedSelectionAvoidsBusyServer) {
  SetUpBus(3);
  auto bus1 = MakeClient(1, "busy");
  auto bus2 = MakeClient(2, "idle");
  RmiServerConfig slow_cfg;
  slow_cfg.service_time_us = 5 * kSecond;  // requests pile up
  auto busy = RmiServer::Create(bus1.get(), "svc.lb", MakeCalculator(), slow_cfg);
  auto idle = RmiServer::Create(bus2.get(), "svc.lb", MakeCalculator());
  ASSERT_TRUE(busy.ok());
  ASSERT_TRUE(idle.ok());
  Settle(10 * kMillisecond);

  // Occupy the busy server with work from a helper client.
  auto helper_bus = MakeClient(0, "helper");
  std::shared_ptr<RemoteService> helper;
  RmiAdvert busy_advert;
  busy_advert.server_name = "busy";
  busy_advert.subject = "svc.lb";
  busy_advert.host = hosts_[1];
  busy_advert.port = (*busy)->port();
  RmiClient::ConnectTo(helper_bus.get(), busy_advert, RmiClientConfig{},
                       [&](auto r) { helper = r.take(); });
  Settle();
  ASSERT_NE(helper, nullptr);
  for (int i = 0; i < 5; ++i) {
    helper->Call("add", {Value(int64_t{1}), Value(int64_t{1})}, [](Result<Value>) {});
  }
  Settle(50 * kMillisecond);
  EXPECT_GT((*busy)->load(), 0u);

  auto client_bus = MakeClient(0, "chooser");
  RmiClientConfig cfg;
  cfg.selection = ServerSelection::kLeastLoaded;
  std::shared_ptr<RemoteService> remote;
  RmiClient::Connect(client_bus.get(), "svc.lb", cfg,
                     [&](Result<std::shared_ptr<RemoteService>> r) { remote = r.take(); });
  Settle();
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(remote->advert().server_name, "idle");
}

TEST_F(RmiTest, ServerCrashFailsPendingCalls) {
  SetUpBus(2);
  auto server_bus = MakeClient(1, "calc-server");
  RmiServerConfig cfg;
  cfg.service_time_us = 1 * kSecond;  // slow enough to crash mid-request
  auto server = RmiServer::Create(server_bus.get(), "svc.calc", MakeCalculator(), cfg);
  ASSERT_TRUE(server.ok());
  Settle(10 * kMillisecond);
  auto client_bus = MakeClient(0, "client");
  std::shared_ptr<RemoteService> remote;
  RmiClient::Connect(client_bus.get(), "svc.calc", RmiClientConfig{},
                     [&](Result<std::shared_ptr<RemoteService>> r) { remote = r.take(); });
  Settle();
  ASSERT_NE(remote, nullptr);

  Status got;
  bool done = false;
  remote->Call("add", {Value(int64_t{1}), Value(int64_t{2})}, [&](Result<Value> r) {
    done = true;
    got = r.status();
  });
  sim_.RunFor(100 * kMillisecond);
  net_->SetHostUp(hosts_[1], false);  // crash mid-service
  Settle(5 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_FALSE(got.ok());  // at-most-once: the client sees a failure, not a hang
}

TEST_F(RmiTest, CallTimesOutWhenReplyNeverComes) {
  SetUpBus(2);
  auto server_bus = MakeClient(1, "slow-server");
  RmiServerConfig cfg;
  cfg.service_time_us = 10 * kSecond;
  auto server = RmiServer::Create(server_bus.get(), "svc.slow", MakeCalculator(), cfg);
  ASSERT_TRUE(server.ok());
  Settle(10 * kMillisecond);
  auto client_bus = MakeClient(0, "client");
  RmiClientConfig ccfg;
  ccfg.call_timeout_us = 500 * kMillisecond;
  std::shared_ptr<RemoteService> remote;
  RmiClient::Connect(client_bus.get(), "svc.slow", ccfg,
                     [&](Result<std::shared_ptr<RemoteService>> r) { remote = r.take(); });
  Settle();
  ASSERT_NE(remote, nullptr);
  Status got;
  remote->Call("add", {Value(int64_t{1}), Value(int64_t{2})}, [&](Result<Value> r) {
    got = r.status();
  });
  Settle(2 * kSecond);
  EXPECT_EQ(got.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(RmiTest, NewServerTransparentlyReplacesOld) {
  // R1 scenario: upgrade a live service. The old server goes away, a new one answers
  // on the same subject; clients reconnect by subject and never name either server.
  SetUpBus(3);
  auto old_bus = MakeClient(1, "server-v1");
  auto old_server = RmiServer::Create(old_bus.get(), "svc.upgrade", MakeCalculator());
  ASSERT_TRUE(old_server.ok());
  Settle(10 * kMillisecond);

  auto client_bus = MakeClient(0, "client");
  std::shared_ptr<RemoteService> remote;
  RmiClient::Connect(client_bus.get(), "svc.upgrade", RmiClientConfig{},
                     [&](auto r) { remote = r.take(); });
  Settle();
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(remote->advert().server_name, "server-v1");

  // Retire v1; bring up v2 on a different host.
  old_server->reset();
  old_bus.reset();
  auto new_bus = MakeClient(2, "server-v2");
  auto new_server = RmiServer::Create(new_bus.get(), "svc.upgrade", MakeCalculator());
  ASSERT_TRUE(new_server.ok());
  Settle(10 * kMillisecond);

  std::shared_ptr<RemoteService> remote2;
  RmiClient::Connect(client_bus.get(), "svc.upgrade", RmiClientConfig{},
                     [&](auto r) { remote2 = r.take(); });
  Settle();
  ASSERT_NE(remote2, nullptr);
  EXPECT_EQ(remote2->advert().server_name, "server-v2");
  int64_t sum = 0;
  remote2->Call("add", {Value(int64_t{20}), Value(int64_t{22})}, [&](Result<Value> r) {
    ASSERT_TRUE(r.ok());
    sum = r->AsI64();
  });
  Settle();
  EXPECT_EQ(sum, 42);
}

TEST_F(RmiTest, ConcurrentCallsMultiplexOneConnection) {
  SetUpBus(2);
  auto server_bus = MakeClient(1, "calc");
  auto server = RmiServer::Create(server_bus.get(), "svc.calc", MakeCalculator());
  ASSERT_TRUE(server.ok());
  Settle(10 * kMillisecond);
  auto client_bus = MakeClient(0, "client");
  std::shared_ptr<RemoteService> remote;
  RmiClient::Connect(client_bus.get(), "svc.calc", RmiClientConfig{},
                     [&](auto r) { remote = r.take(); });
  Settle();
  ASSERT_NE(remote, nullptr);
  std::vector<int64_t> results;
  for (int i = 0; i < 10; ++i) {
    remote->Call("add", {Value(int64_t{i}), Value(int64_t{100})}, [&, i](Result<Value> r) {
      ASSERT_TRUE(r.ok());
      results.push_back(r->AsI64());
    });
  }
  Settle();
  ASSERT_EQ(results.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)], 100 + i);
  }
}

}  // namespace
}  // namespace ibus
