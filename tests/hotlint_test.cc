// Tests for hotlint: every rule has a trigger fixture that must fire and a twin
// fixture (same shape, disciplined) that must stay silent; call-graph edge cases
// (overloads, templates, lambdas-in-members, virtual dispatch, mutual recursion)
// get the same pairing; and a drift guard re-scans the real sources so the
// annotated hot-root table cannot rot silently.
#include "src/hotlint/hotlint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace ibus::hotlint {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Diagnostic> AnalyzeFixture(const std::string& name) {
  SourceFile f;
  f.path = "src/fix/" + name;
  f.content = ReadFile(std::string(HOTLINT_FIXTURE_DIR) + "/" + name);
  return Analyze(BuildProgram({f}));
}

size_t CountRule(const std::vector<Diagnostic>& ds, const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(ds.begin(), ds.end(), [&](const Diagnostic& d) { return d.rule == rule; }));
}

std::string Render(const std::vector<Diagnostic>& ds) {
  std::string out;
  for (const auto& d : ds) {
    out += d.ToString() + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------------
// Rule triggers and twins.
// ---------------------------------------------------------------------------------

TEST(HotlintAlloc, TriggerFiresTwoHopsDown) {
  auto ds = AnalyzeFixture("alloc_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleAlloc), 1u) << Render(ds);
}

TEST(HotlintAlloc, TwinPooledPathIsClean) {
  auto ds = AnalyzeFixture("alloc_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(HotlintAlloc, ChainRunsRootToSite) {
  auto ds = AnalyzeFixture("alloc_trigger.cc");
  ASSERT_EQ(CountRule(ds, kRuleAlloc), 1u) << Render(ds);
  const Diagnostic& d = *std::find_if(ds.begin(), ds.end(),
                                      [](const Diagnostic& x) { return x.rule == kRuleAlloc; });
  // Full path: root first, offending function last, every hop labeled file:line.
  ASSERT_EQ(d.chain.size(), 3u) << Render(ds);
  EXPECT_NE(d.chain[0].find("Deliver"), std::string::npos) << d.chain[0];
  EXPECT_NE(d.chain[1].find("Stage"), std::string::npos) << d.chain[1];
  EXPECT_NE(d.chain[2].find("FreshNode"), std::string::npos) << d.chain[2];
  for (const std::string& hop : d.chain) {
    EXPECT_NE(hop.find("src/fix/alloc_trigger.cc:"), std::string::npos) << hop;
  }
}

TEST(HotlintContainerGrowth, TriggerFiresWithoutReserve) {
  auto ds = AnalyzeFixture("growth_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleContainerGrowth), 1u) << Render(ds);
}

TEST(HotlintContainerGrowth, TwinReserveIdiomSuppresses) {
  auto ds = AnalyzeFixture("growth_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(HotlintString, TriggerFiresOnConcatAndToString) {
  auto ds = AnalyzeFixture("string_trigger.cc");
  EXPECT_GE(CountRule(ds, kRuleString), 2u) << Render(ds);
}

TEST(HotlintString, TwinViewPathIsClean) {
  auto ds = AnalyzeFixture("string_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(HotlintByValue, TriggerFiresOnParamAndReturn) {
  auto ds = AnalyzeFixture("byvalue_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleByValue), 2u) << Render(ds);
}

TEST(HotlintByValue, TwinRefsOutParamsAndMovedSinksAreClean) {
  auto ds = AnalyzeFixture("byvalue_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(HotlintStdFunction, TriggerFiresEvenWhenMoved) {
  auto ds = AnalyzeFixture("stdfunction_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleStdFunction), 1u) << Render(ds);
}

TEST(HotlintStdFunction, TwinFunctionPointerIsClean) {
  auto ds = AnalyzeFixture("stdfunction_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(HotlintIostream, TriggerFiresTransitively) {
  auto ds = AnalyzeFixture("iostream_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleIostream), 1u) << Render(ds);
}

TEST(HotlintIostream, TwinJustifiedAllowSuppresses) {
  auto ds = AnalyzeFixture("iostream_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(HotlintLock, TriggerFiresOnLockGuard) {
  auto ds = AnalyzeFixture("lock_trigger.cc");
  EXPECT_GE(CountRule(ds, kRuleLock), 1u) << Render(ds);
}

TEST(HotlintLock, TwinColdMarkerCutsPropagation) {
  auto ds = AnalyzeFixture("lock_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(HotlintRecursion, TriggerFiresOnSelfRecursion) {
  auto ds = AnalyzeFixture("recursion_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleRecursion), 1u) << Render(ds);
}

TEST(HotlintRecursion, TwinJustifiedSignatureAllowSuppresses) {
  auto ds = AnalyzeFixture("recursion_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(HotlintNondet, TriggerFiresOnClockAndPtrKeyedIteration) {
  auto ds = AnalyzeFixture("nondet_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleNondet), 2u) << Render(ds);
}

TEST(HotlintNondet, TwinVirtualTimeAndOrderedMapAreClean) {
  auto ds = AnalyzeFixture("nondet_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(HotlintBadAnnotation, TriggerFiresAndBrokenAllowsDoNotSuppress) {
  auto ds = AnalyzeFixture("annotation_trigger.cc");
  // Unjustified allow, unknown rule name, and a floating hot marker.
  EXPECT_EQ(CountRule(ds, kRuleBadAnnotation), 3u) << Render(ds);
  // Neither broken allow suppresses: both allocations still fire.
  EXPECT_EQ(CountRule(ds, kRuleAlloc), 2u) << Render(ds);
}

TEST(HotlintBadAnnotation, TwinWellFormedAnnotationsAreClean) {
  auto ds = AnalyzeFixture("annotation_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

// ---------------------------------------------------------------------------------
// Call-graph edge cases.
// ---------------------------------------------------------------------------------

TEST(HotlintEdgeOverloads, ArityPicksTheCalledOverload) {
  auto ds = AnalyzeFixture("edge_overloads_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleAlloc), 1u) << Render(ds);
}

TEST(HotlintEdgeOverloads, UnreachableArityStaysCold) {
  auto ds = AnalyzeFixture("edge_overloads_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(HotlintEdgeTemplates, TemplateBodiesJoinTheGraph) {
  auto ds = AnalyzeFixture("edge_templates_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleAlloc), 1u) << Render(ds);
}

TEST(HotlintEdgeTemplates, CleanTemplateTwinIsSilent) {
  auto ds = AnalyzeFixture("edge_templates_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(HotlintEdgeLambda, LambdaBodyChargesTheEnclosingHotFunction) {
  auto ds = AnalyzeFixture("edge_lambda_member_trigger.cc");
  EXPECT_GE(CountRule(ds, kRuleAlloc), 1u) << Render(ds);
}

TEST(HotlintEdgeLambda, SetupTimeInstallTwinIsSilent) {
  auto ds = AnalyzeFixture("edge_lambda_member_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(HotlintEdgeVirtual, DispatchUnionsOverAllOverriders) {
  auto ds = AnalyzeFixture("edge_virtual_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleAlloc), 1u) << Render(ds);
}

TEST(HotlintEdgeVirtual, AllCleanOverridersTwinIsSilent) {
  auto ds = AnalyzeFixture("edge_virtual_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(HotlintEdgeMutual, TwoNodeCycleFlagsBothMembers) {
  auto ds = AnalyzeFixture("edge_mutual_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleRecursion), 2u) << Render(ds);
}

TEST(HotlintEdgeMutual, JustifiedAllowsOnBothSignaturesSuppress) {
  auto ds = AnalyzeFixture("edge_mutual_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

// ---------------------------------------------------------------------------------
// Graph export and rule registry.
// ---------------------------------------------------------------------------------

TEST(HotlintDot, ExportMarksRootsHotNodesAndEdges) {
  SourceFile f;
  f.path = "src/fix/alloc_trigger.cc";
  f.content = ReadFile(std::string(HOTLINT_FIXTURE_DIR) + "/alloc_trigger.cc");
  Program p = BuildProgram({f});
  std::string dot = DotGraph(p);
  EXPECT_NE(dot.find("digraph hotlint"), std::string::npos);
  EXPECT_NE(dot.find("\"Deliver\" [shape=box,style=filled"), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"Deliver\" -> \"Stage\""), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"Stage\" -> \"FreshNode\""), std::string::npos) << dot;
}

TEST(HotlintRules, RegistryCoversEveryAllowableRule) {
  const auto& rules = KnownRules();
  for (const char* r : {kRuleAlloc, kRuleContainerGrowth, kRuleString, kRuleByValue,
                        kRuleStdFunction, kRuleIostream, kRuleLock, kRuleRecursion, kRuleNondet}) {
    EXPECT_EQ(rules.count(r), 1u) << r;
  }
  // bad-annotation cannot be allow()'d away.
  EXPECT_EQ(rules.count(kRuleBadAnnotation), 0u);
}

// ---------------------------------------------------------------------------------
// Drift guard: the annotated hot-root table in the real sources. Mirrors the
// tdlcheck builtin-table guard — if a root is renamed, moved, or its annotation
// dropped, this test fails before the lint silently stops covering that path.
// ---------------------------------------------------------------------------------

TEST(HotlintDriftGuard, AnnotatedRootsMatchTheExpectedTable) {
  const std::vector<std::string> root_files = {
      "src/bus/client.cc",  "src/bus/daemon.cc", "src/bus/message.cc",
      "src/router/router.cc", "src/sim/network.cc", "src/wire/wire.cc",
  };
  std::vector<SourceFile> files;
  for (const std::string& rel : root_files) {
    files.push_back({rel, ReadFile(std::string(HOTLINT_SOURCE_DIR) + "/" + rel)});
  }
  Program p = BuildProgram(files);
  // Every annotation in the real sources must attach and be well-formed.
  EXPECT_TRUE(p.annotation_diagnostics.empty()) << Render(p.annotation_diagnostics);

  const std::vector<std::string> expected = {
      "BusClient::HandleDatagram",
      "BusClient::Publish",
      "BusDaemon::DispatchInbound",
      "BusDaemon::HandleClientPublish",
      "BusDaemon::HandleDatagram",
      "FrameMessage",
      "InfoRouter::ForwardToPeer",
      "InfoRouter::RepublishFromPeer",
      "Message::Marshal",
      "Message::Unmarshal",
      "Network::BroadcastDatagram",
      "Network::DeliverDatagram",
      "Network::SendDatagram",
      "ParseFrame",
  };
  EXPECT_EQ(HotRoots(p), expected);
}

}  // namespace
}  // namespace ibus::hotlint
