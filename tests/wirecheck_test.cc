// Tests for wirecheck: every decode-safety rule has a trigger fixture that
// must fire and a twin fixture (same wire shape, disciplined) that must stay
// silent; the symmetry proof is exercised with a deliberately reordered
// Encode field; schema rendering and the wire-safe/wire-breaking diff
// classifier get direct coverage; and two drift guards pin the rule registry
// and the annotated codec set in the real sources so neither can rot silently.
#include "src/wirecheck/wirecheck.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace ibus::wirecheck {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Program BuildFixture(const std::string& name) {
  SourceFile f;
  f.path = "src/fix/" + name;
  f.content = ReadFile(std::string(WIRECHECK_FIXTURE_DIR) + "/" + name);
  return BuildProgram({f});
}

std::vector<Diagnostic> AnalyzeFixture(const std::string& name) {
  return Analyze(BuildFixture(name));
}

size_t CountRule(const std::vector<Diagnostic>& ds, const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(ds.begin(), ds.end(), [&](const Diagnostic& d) { return d.rule == rule; }));
}

std::string Render(const std::vector<Diagnostic>& ds) {
  std::string out;
  for (const auto& d : ds) {
    out += d.ToString() + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------------
// Symmetry: a deliberately reordered Encode field must fail the proof, with
// both sides of the first mismatching op in the message.
// ---------------------------------------------------------------------------------

TEST(WirecheckSymmetry, ReorderedFieldFailsTheProof) {
  auto ds = AnalyzeFixture("symmetry_trigger.cc");
  ASSERT_EQ(CountRule(ds, kRuleSymmetry), 1u) << Render(ds);
  const Diagnostic& d = *std::find_if(
      ds.begin(), ds.end(), [](const Diagnostic& x) { return x.rule == kRuleSymmetry; });
  EXPECT_NE(d.message.find("does not round-trip"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("encode writes"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("decode reads"), std::string::npos) << d.message;
  // Both sides carry file:line provenance.
  EXPECT_NE(d.message.find("src/fix/symmetry_trigger.cc:"), std::string::npos) << d.message;
}

TEST(WirecheckSymmetry, MatchedOrderTwinIsClean) {
  auto ds = AnalyzeFixture("symmetry_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(WirecheckMissingPair, EncodeOnlyCodecFires) {
  auto ds = AnalyzeFixture("missing_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleMissingPair), 1u) << Render(ds);
}

TEST(WirecheckMissingPair, PairedTwinIsClean) {
  auto ds = AnalyzeFixture("missing_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

// ---------------------------------------------------------------------------------
// Decode-safety rules: trigger fires, twin stays silent.
// ---------------------------------------------------------------------------------

TEST(WirecheckVersionFirst, UncomparedVersionByteFires) {
  auto ds = AnalyzeFixture("version_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleVersionFirst), 1u) << Render(ds);
}

TEST(WirecheckVersionFirst, ComparedVersionTwinIsClean) {
  auto ds = AnalyzeFixture("version_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(WirecheckUncheckedCount, UnclampedLoopBoundFires) {
  auto ds = AnalyzeFixture("count_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleUncheckedCount), 1u) << Render(ds);
}

TEST(WirecheckUncheckedCount, ClampedTwinIsClean) {
  auto ds = AnalyzeFixture("count_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(WirecheckUnclampedAlloc, ReserveBeforeValidationFires) {
  auto ds = AnalyzeFixture("alloc_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleUnclampedAlloc), 1u) << Render(ds);
  // The loop below the (late) clamp is disciplined; only the reserve fires.
  EXPECT_EQ(CountRule(ds, kRuleUncheckedCount), 0u) << Render(ds);
}

TEST(WirecheckUnclampedAlloc, ValidateThenReserveTwinIsClean) {
  auto ds = AnalyzeFixture("alloc_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(WirecheckRawReadBound, UnvalidatedLengthFires) {
  auto ds = AnalyzeFixture("rawread_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleRawReadBound), 1u) << Render(ds);
}

TEST(WirecheckRawReadBound, RemainingCheckTwinIsClean) {
  auto ds = AnalyzeFixture("rawread_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(WirecheckTruncation, DerefBeforeOkCheckFires) {
  auto ds = AnalyzeFixture("truncation_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleTruncation), 1u) << Render(ds);
}

TEST(WirecheckTruncation, OkFirstTwinIsClean) {
  auto ds = AnalyzeFixture("truncation_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(WirecheckTrailingBytes, UndecidedTailFires) {
  auto ds = AnalyzeFixture("trailing_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleTrailingBytes), 1u) << Render(ds);
}

TEST(WirecheckTrailingBytes, AtEndTwinIsClean) {
  auto ds = AnalyzeFixture("trailing_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(WirecheckRecursion, MutualCycleWithoutDepthGuardFires) {
  auto ds = AnalyzeFixture("recursion_trigger.cc");
  EXPECT_GE(CountRule(ds, kRuleRecursion), 1u) << Render(ds);
}

TEST(WirecheckRecursion, DepthGuardedTwinIsClean) {
  auto ds = AnalyzeFixture("recursion_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(WirecheckUncheckedIndex, TableIndexWithoutRangeCheckFires) {
  auto ds = AnalyzeFixture("index_trigger.cc");
  EXPECT_EQ(CountRule(ds, kRuleUncheckedIndex), 1u) << Render(ds);
}

TEST(WirecheckUncheckedIndex, RangeCheckedTwinIsClean) {
  auto ds = AnalyzeFixture("index_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

TEST(WirecheckBadAnnotation, BrokenMarkersFireAndDoNotSuppress) {
  auto ds = AnalyzeFixture("annotation_trigger.cc");
  // Floating codec marker, unjustified allow, unknown rule in allow.
  EXPECT_EQ(CountRule(ds, kRuleBadAnnotation), 3u) << Render(ds);
  // The unjustified allow does not silence the real bug on its line.
  EXPECT_EQ(CountRule(ds, kRuleTruncation), 1u) << Render(ds);
}

TEST(WirecheckBadAnnotation, JustifiedAllowTwinSuppressesAndIsClean) {
  auto ds = AnalyzeFixture("annotation_twin.cc");
  EXPECT_TRUE(ds.empty()) << Render(ds);
}

// ---------------------------------------------------------------------------------
// Schema rendering and diff classification.
// ---------------------------------------------------------------------------------

TEST(WirecheckSchema, RenderCarriesHeaderProvenanceAndOps) {
  Program p = BuildFixture("symmetry_twin.cc");
  ASSERT_EQ(p.codecs.size(), 1u);
  std::string schema = RenderSchema(p.codecs[0]);
  EXPECT_NE(schema.find("codec order_rec"), std::string::npos) << schema;
  EXPECT_NE(schema.find("version 0"), std::string::npos) << schema;
  EXPECT_NE(schema.find("encode EncodeOrderRec @ src/fix/symmetry_twin.cc"), std::string::npos)
      << schema;
  EXPECT_NE(schema.find("u32"), std::string::npos) << schema;
  EXPECT_NE(schema.find("string"), std::string::npos) << schema;
  EXPECT_NE(schema.find("end"), std::string::npos) << schema;
}

TEST(WirecheckDiff, IdenticalSchemasAreSame) {
  Program p = BuildFixture("symmetry_twin.cc");
  std::string schema = RenderSchema(p.codecs[0]);
  SchemaDiff d = DiffSchema(schema, schema);
  EXPECT_EQ(d.kind, SchemaDiff::kSame);
}

TEST(WirecheckDiff, LabelOnlyChangeIsWireSafe) {
  std::string golden =
      "codec demo\nversion 1\nfields\n  u32 seq\n  string name\nend\n";
  std::string current =
      "codec demo\nversion 1\nfields\n  u32 sequence_number\n  string name\nend\n";
  SchemaDiff d = DiffSchema(golden, current);
  EXPECT_EQ(d.kind, SchemaDiff::kWireSafe) << d.detail;
}

TEST(WirecheckDiff, ReorderedOpsAreWireBreaking) {
  std::string golden =
      "codec demo\nversion 1\nfields\n  u32 seq\n  string name\nend\n";
  std::string current =
      "codec demo\nversion 1\nfields\n  string name\n  u32 seq\nend\n";
  SchemaDiff d = DiffSchema(golden, current);
  EXPECT_EQ(d.kind, SchemaDiff::kWireBreaking) << d.detail;
}

TEST(WirecheckDiff, VersionBumpIsParsedFromBothSides) {
  std::string golden =
      "codec demo\nversion 1\nfields\n  u32 seq\nend\n";
  std::string current =
      "codec demo\nversion 2\nfields\n  u32 seq\n  u64 added\nend\n";
  SchemaDiff d = DiffSchema(golden, current);
  EXPECT_EQ(d.kind, SchemaDiff::kWireBreaking) << d.detail;
  EXPECT_EQ(d.old_version, 1);
  EXPECT_EQ(d.new_version, 2);
}

TEST(WirecheckDiff, LiteralRepeatCountChangeIsWireBreaking) {
  std::string golden =
      "codec demo\nversion 1\nfields\n  repeat count=4\n    u64 v\nend\n";
  std::string current =
      "codec demo\nversion 1\nfields\n  repeat count=8\n    u64 v\nend\n";
  SchemaDiff d = DiffSchema(golden, current);
  EXPECT_EQ(d.kind, SchemaDiff::kWireBreaking) << d.detail;
}

TEST(WirecheckDiff, CountExpressionRenameIsWireSafe) {
  std::string golden =
      "codec demo\nversion 1\nfields\n  repeat count=n\n    u64 v\nend\n";
  std::string current =
      "codec demo\nversion 1\nfields\n  repeat count=total\n    u64 v\nend\n";
  SchemaDiff d = DiffSchema(golden, current);
  EXPECT_EQ(d.kind, SchemaDiff::kWireSafe) << d.detail;
}

// ---------------------------------------------------------------------------------
// Drift guards: the rule registry and the annotated codec set in the real
// sources. If a codec is renamed, un-annotated, or a rule is added or removed,
// these fail before the gate silently stops covering it.
// ---------------------------------------------------------------------------------

TEST(WirecheckRules, RegistryPinsTheAllowableRuleSet) {
  const std::set<std::string> expected = {
      kRuleSymmetry,     kRuleMissingPair,  kRuleVersionFirst, kRuleUncheckedCount,
      kRuleUnclampedAlloc, kRuleRawReadBound, kRuleTruncation,   kRuleTrailingBytes,
      kRuleRecursion,    kRuleUncheckedIndex,
  };
  EXPECT_EQ(KnownRules(), expected);
  // bad-annotation cannot be allow()'d away.
  EXPECT_EQ(KnownRules().count(kRuleBadAnnotation), 0u);
}

TEST(WirecheckDriftGuard, AnnotatedCodecsMatchTheExpectedTable) {
  const std::vector<std::string> codec_files = {
      "src/bus/certified.cc",          "src/bus/message.cc",
      "src/capture/capture.cc",        "src/journal/format.cc",
      "src/proto/packets.cc",          "src/repo/mapper.cc",
      "src/rmi/election.cc",           "src/rmi/protocol.cc",
      "src/router/router.cc",          "src/services/bus_monitor.cc",
      "src/services/type_gossip.cc",   "src/telemetry/busstat.cc",
      "src/telemetry/health.cc",       "src/telemetry/sketch.cc",
      "src/telemetry/trace.cc",        "src/types/codec.cc",
      "src/types/type_descriptor.cc",  "src/wire/wire.cc",
  };
  std::vector<SourceFile> files;
  for (const std::string& rel : codec_files) {
    files.push_back({rel, ReadFile(std::string(WIRECHECK_SOURCE_DIR) + "/" + rel)});
  }
  Program p = BuildProgram(files);
  auto ds = Analyze(p);
  EXPECT_TRUE(ds.empty()) << Render(ds);

  const std::vector<std::string> expected = {
      "batch_packet", "capture_file", "cert_ack",      "data_object",
      "data_packet",  "election_id",  "frame",         "health_event",
      "heartbeat_packet", "hop_record", "journal_block", "message",
      "nak_packet",   "repo_props",   "rmi_advert",    "rmi_reply",
      "rmi_request",  "router_advert", "stat_series",  "stats_snapshot",
      "topk_sketch",  "type_chain",   "type_descriptor", "value",
  };
  EXPECT_EQ(CodecNames(p), expected);
}

}  // namespace
}  // namespace ibus::wirecheck
