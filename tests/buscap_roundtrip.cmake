# Capture-file + pcap round-trip smoke for buscap (see tools/buscap/CMakeLists.txt):
# saving a capture and reloading it must preserve the capture hash, and the pcap
# export must carry the microsecond-pcap magic plus one packet per record.
foreach(var BUSCAP WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "buscap_roundtrip.cmake: missing -D${var}=")
  endif()
endforeach()

execute_process(COMMAND ${BUSCAP} --demo --seed 42
                        --out ${WORKDIR}/roundtrip.ibcp --hash
                OUTPUT_VARIABLE direct_hash
                RESULT_VARIABLE rc1)
execute_process(COMMAND ${BUSCAP} --in ${WORKDIR}/roundtrip.ibcp --hash
                OUTPUT_VARIABLE loaded_hash
                RESULT_VARIABLE rc2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "buscap save/load failed (rc=${rc1}/${rc2})")
endif()
if(NOT direct_hash STREQUAL loaded_hash)
  message(FATAL_ERROR "capture-file round trip changed the hash: "
                      "'${direct_hash}' vs '${loaded_hash}'")
endif()
if(direct_hash MATCHES "records=0 ")
  message(FATAL_ERROR "demo capture is empty: ${direct_hash}")
endif()

execute_process(COMMAND ${BUSCAP} --in ${WORKDIR}/roundtrip.ibcp
                        --pcap ${WORKDIR}/roundtrip.pcap --hash
                OUTPUT_VARIABLE pcap_hash
                RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 0 OR NOT pcap_hash STREQUAL direct_hash)
  message(FATAL_ERROR "pcap export run failed or changed the hash (rc=${rc3})")
endif()
file(READ ${WORKDIR}/roundtrip.pcap pcap_magic LIMIT 4 HEX)
if(NOT pcap_magic STREQUAL "d4c3b2a1")
  message(FATAL_ERROR "pcap magic mismatch: got ${pcap_magic}, "
                      "want d4c3b2a1 (0xa1b2c3d4 little-endian)")
endif()
