// sim_replay_check: enforces the simulator's determinism contract. Each scenario is
// run twice from identical seeds; the ordered trace of every observable event
// (deliveries with simulated timestamps, final protocol stats) is hashed, and any
// divergence fails the test. This is what makes the appendix-figure reproductions
// (Fig 5-8) and the fault-injection tests trustworthy: if a nondeterminism primitive
// sneaks into src/sim, src/bus, or src/router (see tools/buslint), the traces drift
// and this gate trips.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/bus/certified.h"
#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/capture/bandwidth.h"
#include "src/capture/capture.h"
#include "src/capture/demo.h"
#include "src/capture/reassembly.h"
#include "src/common/rng.h"
#include "src/journal/demo.h"
#include "src/journal/journal.h"
#include "src/prof/demo.h"
#include "src/prof/stages.h"
#include "src/router/router.h"
#include "src/services/bus_monitor.h"
#include "src/services/health_monitor.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/sim/stable_store.h"
#include "src/telemetry/busmon.h"
#include "src/telemetry/busstat_demo.h"
#include "src/telemetry/collector.h"
#include "src/telemetry/health.h"

namespace ibus {
namespace {

// FNV-1a over the concatenated trace records (order-sensitive by construction).
uint64_t HashTrace(const std::vector<std::string>& events) {
  uint64_t h = 1469598103934665603ull;
  for (const std::string& e : events) {
    for (char c : e) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
    h ^= '\n';
    h *= 1099511628211ull;
  }
  return h;
}

std::string Record(SimTime t, const std::string& who, const Message& m) {
  return "t=" + std::to_string(t) + " " + who + " subj=" + m.subject +
         " payload=" + ToString(m.payload);
}

std::unique_ptr<BusClient> MustConnect(Network* net, HostId host, const std::string& name) {
  auto c = BusClient::Connect(net, host, name);
  EXPECT_TRUE(c.ok()) << c.status().ToString();
  return c.take();
}

// --- Scenario 1: LAN bus delivery under jitter/dup/loss faults ---------------------

std::vector<std::string> RunBusDeliveryScenario(uint64_t seed) {
  Simulator sim;
  Network net(&sim, seed);
  SegmentId seg = net.AddSegment();
  std::vector<HostId> hosts;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(net.AddHost("host" + std::to_string(i), seg));
    auto d = BusDaemon::Start(&net, hosts.back(), BusConfig());
    EXPECT_TRUE(d.ok());
    daemons.push_back(d.take());
  }
  FaultPlan faults;
  faults.drop_prob = 0.02;
  faults.dup_prob = 0.01;
  faults.jitter_us = 200;
  net.SetFaultPlan(seg, faults);

  std::vector<std::string> trace;
  auto wide = MustConnect(&net, hosts[1], "wide");
  auto narrow = MustConnect(&net, hosts[2], "narrow");
  EXPECT_TRUE(wide->Subscribe("market.>", [&](const Message& m) {
                    trace.push_back(Record(sim.Now(), "wide", m));
                  }).ok());
  EXPECT_TRUE(narrow->Subscribe("market.*.gmc", [&](const Message& m) {
                      trace.push_back(Record(sim.Now(), "narrow", m));
                    }).ok());
  sim.RunFor(200 * kMillisecond);

  auto pub = MustConnect(&net, hosts[0], "pub");
  Rng workload(seed + 1);
  const char* kTickers[] = {"gmc", "ibm", "att"};
  const char* kCategories[] = {"equity", "bond"};
  for (int i = 0; i < 40; ++i) {
    std::string subject = std::string("market.") + kCategories[workload.NextBelow(2)] + "." +
                          kTickers[workload.NextBelow(3)];
    EXPECT_TRUE(pub->Publish(subject, ToBytes("msg" + std::to_string(i))).ok());
    sim.RunFor(workload.NextInRange(100, 3000));
  }
  sim.RunFor(2 * kSecond);
  trace.push_back("published=" + std::to_string(pub->stats().published) +
                  " wide_received=" + std::to_string(wide->stats().received) +
                  " narrow_received=" + std::to_string(narrow->stats().received));
  return trace;
}

// --- Scenario 2: two LANs joined by an information-router pair over the WAN --------

std::vector<std::string> RunRouterWanScenario(uint64_t seed) {
  Simulator sim;
  Network net(&sim, seed);
  SegmentId lan_a = net.AddSegment();
  SegmentId lan_b = net.AddSegment();
  std::vector<HostId> a_hosts, b_hosts;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  for (int i = 0; i < 2; ++i) {
    a_hosts.push_back(net.AddHost("a" + std::to_string(i), lan_a));
    b_hosts.push_back(net.AddHost("b" + std::to_string(i), lan_b));
  }
  for (HostId h : a_hosts) {
    auto d = BusDaemon::Start(&net, h, BusConfig());
    EXPECT_TRUE(d.ok());
    daemons.push_back(d.take());
  }
  for (HostId h : b_hosts) {
    auto d = BusDaemon::Start(&net, h, BusConfig());
    EXPECT_TRUE(d.ok());
    daemons.push_back(d.take());
  }
  FaultPlan jitter;
  jitter.jitter_us = 150;
  net.SetFaultPlan(lan_a, jitter);
  net.SetFaultPlan(lan_b, jitter);

  auto router_bus_a = MustConnect(&net, a_hosts[0], "_router:A");
  auto router_bus_b = MustConnect(&net, b_hosts[0], "_router:B");
  auto ra = InfoRouter::Listen(router_bus_a.get(), "_router:A", 8700);
  EXPECT_TRUE(ra.ok()) << ra.status().ToString();
  sim.RunFor(50 * kMillisecond);
  auto rb = InfoRouter::Connect(router_bus_b.get(), "_router:B", a_hosts[0], 8700);
  EXPECT_TRUE(rb.ok()) << rb.status().ToString();
  sim.RunFor(200 * kMillisecond);

  std::vector<std::string> trace;
  auto sub = MustConnect(&net, b_hosts[1], "consumer-b");
  EXPECT_TRUE(sub->Subscribe("news.>", [&](const Message& m) {
                   trace.push_back(Record(sim.Now(), "consumer-b", m));
                 }).ok());
  sim.RunFor(500 * kMillisecond);  // subscription event + advert cross the WAN

  auto pub = MustConnect(&net, a_hosts[1], "publisher-a");
  Rng workload(seed + 2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(pub->Publish(i % 3 == 0 ? "news.equity.gmc" : "news.bond.att",
                             ToBytes("story" + std::to_string(i)))
                    .ok());
    sim.RunFor(workload.NextInRange(500, 5000));
  }
  sim.RunFor(2 * kSecond);
  const RouterStats& sa = (*ra)->stats();
  const RouterStats& sb = (*rb)->stats();
  trace.push_back("routerA forwarded=" + std::to_string(sa.forwarded) +
                  " republished=" + std::to_string(sa.republished) +
                  " adverts=" + std::to_string(sa.adverts_sent));
  trace.push_back("routerB forwarded=" + std::to_string(sb.forwarded) +
                  " republished=" + std::to_string(sb.republished) +
                  " adverts=" + std::to_string(sb.adverts_sent));
  return trace;
}

// --- Scenario 3: certified (guaranteed) delivery over a lossy segment --------------

std::vector<std::string> RunCertifiedScenario(uint64_t seed) {
  Simulator sim;
  Network net(&sim, seed);
  SegmentId seg = net.AddSegment();
  std::vector<HostId> hosts;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  for (int i = 0; i < 2; ++i) {
    hosts.push_back(net.AddHost("host" + std::to_string(i), seg));
    auto d = BusDaemon::Start(&net, hosts.back(), BusConfig());
    EXPECT_TRUE(d.ok());
    daemons.push_back(d.take());
  }

  std::vector<std::string> trace;
  auto sub_client = MustConnect(&net, hosts[1], "consumer");
  auto sub = CertifiedSubscriber::Create(sub_client.get(), "orders.>", "consumer",
                                         [&](const Message& m) {
                                           trace.push_back(Record(sim.Now(), "consumer", m));
                                         });
  EXPECT_TRUE(sub.ok()) << sub.status().ToString();
  sim.RunFor(200 * kMillisecond);

  // Faults go up only after the control-plane handshake so every run starts aligned.
  FaultPlan faults;
  faults.drop_prob = 0.15;
  faults.jitter_us = 500;
  net.SetFaultPlan(seg, faults);

  auto pub_client = MustConnect(&net, hosts[0], "producer");
  MemoryStableStore store;
  journal::JournalConfig ledger_config;
  ledger_config.sim = &sim;  // write-through: legacy stable-write timing
  auto ledger = journal::Journal::Open(&store, ledger_config).take();
  auto pub = CertifiedPublisher::Create(pub_client.get(), ledger.get(), "orders-ledger");
  EXPECT_TRUE(pub.ok()) << pub.status().ToString();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE((*pub)->Publish("orders.new", ToBytes("order" + std::to_string(i))).ok());
    sim.RunFor(50 * kMillisecond);
  }
  sim.RunFor(5 * kSecond);
  trace.push_back("publisher published=" + std::to_string((*pub)->stats().published) +
                  " retransmits=" + std::to_string((*pub)->stats().retransmits) +
                  " retired=" + std::to_string((*pub)->stats().retired) +
                  " pending=" + std::to_string((*pub)->pending()));
  trace.push_back("subscriber delivered=" + std::to_string((*sub)->stats().delivered) +
                  " dup_dropped=" + std::to_string((*sub)->stats().duplicates_dropped) +
                  " acks=" + std::to_string((*sub)->stats().acks_sent));
  return trace;
}

// --- Scenario 4: hop traces of certified publishes over a lossy WAN ----------------
//
// The telemetry subsystem must itself be deterministic: spans ride the same simulated
// bus as the traffic they describe, so the reconstructed timelines (and their hashes)
// must replay bit-identically for a given seed.

#if IBUS_TELEMETRY
std::vector<std::string> RunTracedCertifiedWanScenario(uint64_t seed) {
  Simulator sim;
  Network net(&sim, seed);
  SegmentId lan_a = net.AddSegment();
  SegmentId lan_b = net.AddSegment();
  std::vector<HostId> a_hosts, b_hosts;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  BusConfig config;
  config.trace_publishes = true;
  config.trace_sample_period = 1;  // this scenario asserts on complete timelines
  for (int i = 0; i < 2; ++i) {
    a_hosts.push_back(net.AddHost("a" + std::to_string(i), lan_a));
    b_hosts.push_back(net.AddHost("b" + std::to_string(i), lan_b));
  }
  for (HostId h : a_hosts) {
    auto d = BusDaemon::Start(&net, h, config);
    EXPECT_TRUE(d.ok());
    daemons.push_back(d.take());
  }
  for (HostId h : b_hosts) {
    auto d = BusDaemon::Start(&net, h, config);
    EXPECT_TRUE(d.ok());
    daemons.push_back(d.take());
  }

  auto router_bus_a = MustConnect(&net, a_hosts[0], "_router:A");
  auto router_bus_b = MustConnect(&net, b_hosts[0], "_router:B");
  auto ra = InfoRouter::Listen(router_bus_a.get(), "_router:A", 8700);
  EXPECT_TRUE(ra.ok()) << ra.status().ToString();
  sim.RunFor(50 * kMillisecond);
  auto rb = InfoRouter::Connect(router_bus_b.get(), "_router:B", a_hosts[0], 8700);
  EXPECT_TRUE(rb.ok()) << rb.status().ToString();
  sim.RunFor(200 * kMillisecond);

  auto monitor_bus = MustConnect(&net, b_hosts[0], "monitor");
  auto collector = telemetry::TraceCollector::Create(monitor_bus.get());
  EXPECT_TRUE(collector.ok()) << collector.status().ToString();

  std::vector<std::string> trace;
  auto sub_bus = MustConnect(&net, b_hosts[1], "consumer");
  auto sub = CertifiedSubscriber::Create(sub_bus.get(), "orders.>", "consumer",
                                         [&](const Message& m) {
                                           trace.push_back(Record(sim.Now(), "consumer", m));
                                         });
  EXPECT_TRUE(sub.ok()) << sub.status().ToString();
  sim.RunFor(500 * kMillisecond);  // control plane (subs, adverts) crosses the WAN

  // Faults only after the handshake so every replay starts aligned.
  FaultPlan faults;
  faults.drop_prob = 0.10;
  faults.jitter_us = 300;
  net.SetFaultPlan(lan_a, faults);
  net.SetFaultPlan(lan_b, faults);

  // The producer's own client must carry trace_publishes too — trace ids are
  // assigned client-side, not by the daemon.
  auto pub_bus_r = BusClient::Connect(&net, a_hosts[1], "producer", config);
  EXPECT_TRUE(pub_bus_r.ok()) << pub_bus_r.status().ToString();
  auto pub_bus = pub_bus_r.take();
  MemoryStableStore store;
  journal::JournalConfig ledger_config;
  ledger_config.sim = &sim;  // write-through: legacy stable-write timing
  auto ledger = journal::Journal::Open(&store, ledger_config).take();
  auto pub = CertifiedPublisher::Create(pub_bus.get(), ledger.get(), "orders-ledger");
  EXPECT_TRUE(pub.ok()) << pub.status().ToString();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE((*pub)->Publish("orders.new", ToBytes("order" + std::to_string(i))).ok());
    sim.RunFor(100 * kMillisecond);
  }
  sim.RunFor(5 * kSecond);

  for (uint64_t id : (*collector)->trace_ids()) {
    trace.push_back((*collector)->RenderTimeline(id));
  }
  trace.push_back("records=" + std::to_string((*collector)->records_received()) +
                  " traces=" + std::to_string((*collector)->trace_count()) +
                  " all_hash=" + std::to_string((*collector)->AllTracesHash()));
  return trace;
}
#endif  // IBUS_TELEMETRY

// --- Scenario 5: the health plane under a loss episode ------------------------------
//
// A 3-host LAN with a deliberately tiny sender retain buffer rides through a burst of
// 30% loss: retransmits age out, receivers declare gaps, and every host's
// HealthEvaluator must raise (and later clear) alerts on "_ibus.health.>" — exactly
// once per episode, thanks to hysteresis. The trace captures the live alert feed, the
// per-daemon flight-recorder dump hashes, and the full busmon console frame, all of
// which must replay bit-identically.

#if IBUS_TELEMETRY
std::vector<std::string> RunHealthPlaneScenario(uint64_t seed) {
  Simulator sim;
  Network net(&sim, seed);
  SegmentId seg = net.AddSegment();
  BusConfig config;
  // A 2-deep retransmit buffer turns dropped retransmits into receiver gaps fast —
  // the raw material for slow-consumer alerts.
  config.reliable.retain_messages = 2;
  std::vector<HostId> hosts;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(net.AddHost("host" + std::to_string(i), seg));
    auto d = BusDaemon::Start(&net, hosts.back(), config);
    EXPECT_TRUE(d.ok());
    daemons.push_back(d.take());
  }

  // The observability plane: every host reports stats and evaluates health rules.
  HealthConfig hc;
  hc.retransmit_raise = 4;
  hc.clear_hold_intervals = 4;  // 1s of clean intervals before an alert retires
  std::vector<std::unique_ptr<BusClient>> ops;
  std::vector<std::unique_ptr<StatsReporter>> reporters;
  std::vector<std::unique_ptr<HealthEvaluator>> evaluators;
  for (int i = 0; i < 3; ++i) {
    ops.push_back(MustConnect(&net, hosts[i], "ops" + std::to_string(i)));
    auto rep = StatsReporter::Create(ops.back().get(), daemons[i].get(), 500 * kMillisecond);
    EXPECT_TRUE(rep.ok()) << rep.status().ToString();
    reporters.push_back(rep.take());
    auto ev = HealthEvaluator::Create(ops.back().get(), daemons[i].get(), hc);
    EXPECT_TRUE(ev.ok()) << ev.status().ToString();
    evaluators.push_back(ev.take());
  }

  // The operator console, co-hosted with host0; it also borrows the consumer host's
  // flight recorder for the post-mortem excerpt section.
  auto mon_bus = MustConnect(&net, hosts[0], "busmon");
  auto mon = telemetry::BusMon::Create(mon_bus.get());
  EXPECT_TRUE(mon.ok()) << mon.status().ToString();
  (*mon)->AttachRecorder(daemons[2]->flight_recorder());

  std::vector<std::string> trace;
  EXPECT_TRUE(mon_bus->Subscribe(telemetry::kHealthPattern, [&](const Message& m) {
                     auto e = telemetry::HealthEvent::Unmarshal(m.payload);
                     if (e.ok()) {
                       trace.push_back("t=" + std::to_string(sim.Now()) + " alert " +
                                       e->ToString());
                     }
                   }).ok());

  auto consumer = MustConnect(&net, hosts[2], "consumer");
  uint64_t received = 0;
  EXPECT_TRUE(consumer->Subscribe("market.>", [&](const Message&) { received++; }).ok());
  sim.RunFor(1 * kSecond);  // control plane settles, first stats snapshots land

  auto pub = MustConnect(&net, hosts[0], "producer");
  Rng workload(seed + 3);
  // Clean warm-up.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(pub->Publish("market.equity.gmc", ToBytes("tick" + std::to_string(i))).ok());
    sim.RunFor(workload.NextInRange(5000, 15000));
  }
  // The loss episode: heavy drop while publishing fast enough that dropped
  // retransmits age out of the 2-deep retain buffer.
  FaultPlan faults;
  faults.drop_prob = 0.30;
  faults.jitter_us = 300;
  net.SetFaultPlan(seg, faults);
  for (int i = 0; i < 60; ++i) {
    EXPECT_TRUE(pub->Publish("market.equity.gmc", ToBytes("lossy" + std::to_string(i))).ok());
    sim.RunFor(workload.NextInRange(5000, 10000));
  }
  // Heal and keep publishing cleanly so gap/retransmit rates fall back to zero.
  net.SetFaultPlan(seg, FaultPlan());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(pub->Publish("market.equity.gmc", ToBytes("calm" + std::to_string(i))).ok());
    sim.RunFor(100 * kMillisecond);
  }
  sim.RunFor(5 * kSecond);

  trace.push_back("consumer received=" + std::to_string(received));
  for (int i = 0; i < 3; ++i) {
    // Per-kind transition counts: the hysteresis contract is one raise + one clear
    // per episode, never a flap.
    size_t slow_raises = 0, slow_clears = 0, storm_raises = 0, storm_clears = 0;
    for (const telemetry::HealthEvent& e : evaluators[i]->events()) {
      const bool clear = e.severity == telemetry::HealthSeverity::kClear;
      if (e.kind == telemetry::HealthEventKind::kSlowConsumer) {
        (clear ? slow_clears : slow_raises)++;
      } else if (e.kind == telemetry::HealthEventKind::kRetransmitStorm) {
        (clear ? storm_clears : storm_raises)++;
      }
    }
    trace.push_back("health host" + std::to_string(i) + " slow_raises=" +
                    std::to_string(slow_raises) + " slow_clears=" + std::to_string(slow_clears) +
                    " storm_raises=" + std::to_string(storm_raises) + " storm_clears=" +
                    std::to_string(storm_clears) + " active_end=" +
                    std::to_string(evaluators[i]->active_alerts()));
    trace.push_back("recorder host" + std::to_string(i) + " total=" +
                    std::to_string(daemons[i]->flight_recorder()->total_recorded()) +
                    " dump_hash=" + std::to_string(daemons[i]->flight_recorder()->DumpHash()));
  }
  trace.push_back((*mon)->RenderSnapshot());
  trace.push_back("busmon hash=" + std::to_string((*mon)->SnapshotHash()) + " transitions=" +
                  std::to_string((*mon)->alert_history().size()) + " active=" +
                  std::to_string((*mon)->active_alert_count()));
  return trace;
}
#endif  // IBUS_TELEMETRY

// --- Scenario 6: wire capture of the certified-WAN run -----------------------------
//
// The capture plane must itself be deterministic: identical seeds yield bit-identical
// capture hashes, fault fates included, and the analyzers (reassembler, bandwidth
// accountant) render byte-identical reports. The scenario trace folds in the capture
// hash plus the analyzer summaries so any drift in tap emission order, fate
// classification, or report formatting trips the gate.

std::vector<std::string> RunCaptureScenario(uint64_t seed) {
  capture::CaptureBuffer buf;
  std::vector<std::string> trace = capture::RunCertifiedWanCaptureScenario(seed, &buf);
  trace.push_back("capture records=" + std::to_string(buf.frames().size()) +
                  " seen=" + std::to_string(buf.frames_seen()) +
                  " hash=" + std::to_string(buf.Hash()));
  capture::ReassemblyReport r = capture::Reassemble(buf.frames());
  trace.push_back(capture::RenderReassemblyText(r));
  trace.push_back(capture::RenderBandwidthText(capture::AccountBandwidth(buf.frames(), r)));
  return trace;
}

// --- Scenarios 7-9: the journal crash/recovery family (src/journal/demo.cc) --------
//
// Each scenario kills components mid-flight (daemon, routers, publisher), recovers
// from the surviving journal device, and folds deliveries, recovery health events,
// final stats, and the journal verify report into the replay-hashed trace.

std::vector<std::string> RunJournalDaemonCrashScenario(uint64_t seed) {
  MemoryStableStore device;
  return journal::RunDaemonCrashScenario(seed, &device);
}

std::vector<std::string> RunJournalRouterCrashScenario(uint64_t seed) {
  MemoryStableStore device;
  return journal::RunRouterCrashScenario(seed, &device);
}

std::vector<std::string> RunJournalTailTruncationScenario(uint64_t seed) {
  return journal::RunTailTruncationScenario(seed);
}

// --- Scenario 10: busprof critical-path profiles (src/prof/demo.cc) ----------------
//
// The profiler joins three deterministic planes — hop timelines, capture fates, and
// queue gauges — so its JSON and collapsed-stack reports must be bit-identical per
// seed. The trace folds in the complete reports (not just their hash) so any drift
// in stage attribution, rendering, or gauge values trips the gate with a diff.

#if IBUS_TELEMETRY
std::vector<std::string> RunBusprofScenario(uint64_t seed) {
  prof::ProfiledScenario run = prof::RunProfiledWanScenario(seed);
  std::vector<std::string> trace = run.trace;
  trace.push_back("busprof json=" + run.json);
  trace.push_back("busprof collapsed=" + run.collapsed);
  return trace;
}
#endif  // IBUS_TELEMETRY

// --- Scenario 11: the busstat stats plane (src/telemetry/busstat_demo.cc) ----------
//
// The scale-ready telemetry plane joins sketches, delta-encoded time series, and
// publisher-side trace sampling — all of which must replay bit-identically: the
// trace folds in the full merged JSON and console table (not just their hash) so
// any drift in sketch tie-breaking, delta encoding, or sampling decisions trips
// the gate with a readable diff. Runs with sampling ON (the default 1/64): the
// determinism contract must hold under sampling, not just with tracing saturated.

std::vector<std::string> RunBusstatScenario(uint64_t seed) {
  telemetry::BusStatScenario run = telemetry::RunBusstatWanScenario(seed);
  std::vector<std::string> trace = run.trace;
  trace.push_back("busstat json=" + run.json);
  trace.push_back("busstat table=" + run.table);
  return trace;
}

// --- The replay gate ---------------------------------------------------------------

using ScenarioFn = std::vector<std::string> (*)(uint64_t seed);

void CheckReplay(const char* name, ScenarioFn fn, uint64_t seed) {
  std::vector<std::string> first = fn(seed);
  std::vector<std::string> second = fn(seed);
  ASSERT_GT(first.size(), 1u) << name << ": scenario produced no deliveries";
  EXPECT_EQ(HashTrace(first), HashTrace(second))
      << name << ": divergent replay with identical seed " << seed;
  EXPECT_EQ(first, second) << name << ": trace contents diverged";
  // A different seed must actually steer the run (guards against hashing nothing).
  std::vector<std::string> other = fn(seed + 17);
  EXPECT_NE(HashTrace(first), HashTrace(other))
      << name << ": trace is seed-insensitive; the fault RNG is not being exercised";
}

TEST(SimReplayCheck, BusDeliveryIsDeterministic) {
  CheckReplay("bus_delivery", &RunBusDeliveryScenario, 42);
  CheckReplay("bus_delivery", &RunBusDeliveryScenario, 1993);
}

TEST(SimReplayCheck, RouterWanIsDeterministic) {
  CheckReplay("router_wan", &RunRouterWanScenario, 42);
  CheckReplay("router_wan", &RunRouterWanScenario, 7);
}

TEST(SimReplayCheck, CertifiedDeliveryIsDeterministic) {
  CheckReplay("certified_delivery", &RunCertifiedScenario, 42);
  CheckReplay("certified_delivery", &RunCertifiedScenario, 2024);
}

#if IBUS_TELEMETRY
TEST(SimReplayCheck, TracedCertifiedWanIsDeterministic) {
  CheckReplay("traced_certified_wan", &RunTracedCertifiedWanScenario, 42);
  CheckReplay("traced_certified_wan", &RunTracedCertifiedWanScenario, 1993);
}

TEST(SimReplayCheck, HealthPlaneIsDeterministic) {
  CheckReplay("health_plane", &RunHealthPlaneScenario, 42);
  CheckReplay("health_plane", &RunHealthPlaneScenario, 1993);
}

// The hysteresis contract under a single loss episode: the consumer host raises
// SLOW_CONSUMER exactly once and clears it exactly once — no flapping while the gap
// rate oscillates during the episode — and the publisher host sees the retransmit
// storm. By the end every alert has retired.
TEST(SimReplayCheck, HealthAlertsRaiseOnceAndClearOncePerEpisode) {
  auto trace = RunHealthPlaneScenario(42);
  bool saw_consumer_line = false, saw_publisher_line = false;
  for (const std::string& e : trace) {
    if (e.rfind("health host2 ", 0) == 0) {
      saw_consumer_line = true;
      EXPECT_NE(e.find("slow_raises=1 slow_clears=1"), std::string::npos) << e;
      EXPECT_NE(e.find("active_end=0"), std::string::npos) << e;
    }
    if (e.rfind("health host0 ", 0) == 0) {
      saw_publisher_line = true;
      EXPECT_EQ(e.find("storm_raises=0"), std::string::npos) << e;
      EXPECT_NE(e.find("active_end=0"), std::string::npos) << e;
    }
  }
  EXPECT_TRUE(saw_consumer_line);
  EXPECT_TRUE(saw_publisher_line);
  // The live "_ibus.health.>" feed must actually have carried the transitions.
  size_t live_alerts = 0;
  for (const std::string& e : trace) {
    if (e.find(" alert t=") != std::string::npos) {
      ++live_alerts;
    }
  }
  EXPECT_GE(live_alerts, 4u);  // >= raise+clear on both the consumer and publisher
}
#endif

TEST(SimReplayCheck, WireCaptureIsDeterministic) {
  CheckReplay("wire_capture", &RunCaptureScenario, 42);
  CheckReplay("wire_capture", &RunCaptureScenario, 1993);
}

// The lossy certified-WAN capture must show the NAK protocol on the wire: dropped
// frames, retransmits attributed to the specific drops they repaired, and a nonzero
// retransmit share in the bandwidth breakdown.
TEST(SimReplayCheck, CaptureShowsRetransmitShareAttributedToDrops) {
  capture::CaptureBuffer buf;
  auto trace = capture::RunCertifiedWanCaptureScenario(42, &buf);
  ASSERT_FALSE(trace.empty());
  ASSERT_NE(trace.front().rfind("error:", 0), 0u) << trace.front();

  capture::ReassemblyReport r = capture::Reassemble(buf.frames());
  EXPECT_GT(r.total_drops, 0u);
  ASSERT_GT(r.retransmitted_seqs, 0u);
  bool attributed = false;
  for (const auto& [key, tl] : r.seqs) {
    attributed = attributed || (tl.retransmitted && !tl.caused_by_drops.empty());
  }
  EXPECT_TRUE(attributed) << "no retransmit traced back to a dropped frame";

  capture::BandwidthReport bw = capture::AccountBandwidth(buf.frames(), r);
  EXPECT_GT(bw.total.retransmit.us, 0u);
  EXPECT_GT(bw.total.goodput.bytes, 0u);
}

#if IBUS_TELEMETRY
TEST(SimReplayCheck, BusprofProfileIsDeterministic) {
  CheckReplay("busprof_profile", &RunBusprofScenario, 42);
  CheckReplay("busprof_profile", &RunBusprofScenario, 1993);
}

// The acceptance invariant: for every traced delivery the integer-µs stage
// decomposition sums exactly to the measured end-to-end latency, and the explicit
// unattributed residue stays under 1% on the stock scenario.
TEST(SimReplayCheck, BusprofStagesReconcileWithEndToEndLatency) {
  prof::ProfiledScenario run = prof::RunProfiledWanScenario(42);
  ASSERT_GT(run.paths.size(), 0u);
  for (const prof::PathProfile& p : run.paths) {
    EXPECT_EQ(p.stages.total_us(), p.end_to_end_us)
        << "trace " << p.trace_id << " -> " << p.dest << " (hop " << int(p.hop) << ")";
  }
  EXPECT_TRUE(run.reconciled);
  EXPECT_LT(run.unattributed_share, 0.01);
}
#endif  // IBUS_TELEMETRY

TEST(SimReplayCheck, JournalDaemonCrashIsDeterministic) {
  CheckReplay("journal_daemon_crash", &RunJournalDaemonCrashScenario, 42);
  CheckReplay("journal_daemon_crash", &RunJournalDaemonCrashScenario, 1993);
}

TEST(SimReplayCheck, JournalRouterCrashIsDeterministic) {
  CheckReplay("journal_router_crash", &RunJournalRouterCrashScenario, 42);
  CheckReplay("journal_router_crash", &RunJournalRouterCrashScenario, 1993);
}

TEST(SimReplayCheck, JournalTailTruncationIsDeterministic) {
  CheckReplay("journal_tail_truncation", &RunJournalTailTruncationScenario, 42);
  CheckReplay("journal_tail_truncation", &RunJournalTailTruncationScenario, 1993);
}

// The daemon-crash recovery must re-arm the ledger, announce itself on the health
// plane, deliver every certified message exactly once to the surviving consumer
// (dedup absorbs the post-recovery resends), and leave a verifiably clean journal.
TEST(SimReplayCheck, JournalDaemonCrashRecoversExactlyOnce) {
  MemoryStableStore device;
  auto trace = journal::RunDaemonCrashScenario(42, &device);
  ASSERT_FALSE(trace.empty());
  ASSERT_NE(trace.front().rfind("error:", 0), 0u) << trace.front();
  for (int i = 0; i < 8; ++i) {
    const std::string payload = "payload=order" + std::to_string(i);
    size_t deliveries = 0;
    for (const std::string& e : trace) {
      if (e.find(" consumer subj=") != std::string::npos &&
          e.find(payload) != std::string::npos) {
        ++deliveries;
      }
    }
    EXPECT_EQ(deliveries, 1u) << "order" << i;
  }
  bool saw_reopen = false, saw_recovery_event = false, saw_clean_verify = false;
  for (const std::string& e : trace) {
    if (e.rfind("reopen recovered_records=", 0) == 0) {
      saw_reopen = true;
      EXPECT_EQ(e.find("recovered_records=0"), std::string::npos) << e;
    }
    if (e.find(" health ") != std::string::npos &&
        e.find("recovery") != std::string::npos) {
      saw_recovery_event = true;
    }
    if (e.rfind("journal verify:", 0) == 0) {
      saw_clean_verify = e.find(" clean") != std::string::npos;
      EXPECT_NE(e.find(" clean"), std::string::npos) << e;
    }
  }
  EXPECT_TRUE(saw_reopen);
  EXPECT_TRUE(saw_recovery_event);
  EXPECT_TRUE(saw_clean_verify);
}

// The WAN outage plus publisher crash must still end with every certified message
// across the routers exactly once: queued traffic rides the recovered retransmits.
TEST(SimReplayCheck, JournalRouterCrashDrainsQueuedTraffic) {
  MemoryStableStore device;
  auto trace = journal::RunRouterCrashScenario(42, &device);
  ASSERT_FALSE(trace.empty());
  ASSERT_NE(trace.front().rfind("error:", 0), 0u) << trace.front();
  for (int i = 0; i < 8; ++i) {
    const std::string payload = "payload=order" + std::to_string(i);
    size_t deliveries = 0;
    for (const std::string& e : trace) {
      if (e.find(" consumer subj=") != std::string::npos &&
          e.find(payload) != std::string::npos) {
        ++deliveries;
      }
    }
    EXPECT_EQ(deliveries, 1u) << "order" << i;
  }
  bool saw_pending_zero = false;
  for (const std::string& e : trace) {
    if (e.rfind("publisher published=", 0) == 0) {
      saw_pending_zero = e.find(" pending=0") != std::string::npos;
    }
  }
  EXPECT_TRUE(saw_pending_zero) << "certified backlog did not drain after the outage";
}

// Every fuzzed cut must be detected (exactly one torn block), repaired, and leave a
// clean device; the final cut recovers end to end and new publishes still flow.
TEST(SimReplayCheck, JournalTailTruncationStopsAtLastValidLsn) {
  auto trace = journal::RunTailTruncationScenario(42);
  ASSERT_FALSE(trace.empty());
  ASSERT_NE(trace.front().rfind("error:", 0), 0u) << trace.front();
  size_t fuzz_lines = 0;
  for (const std::string& e : trace) {
    if (e.rfind("fuzz k=", 0) == 0 && e.find("torn_tail=") != std::string::npos) {
      ++fuzz_lines;
      EXPECT_NE(e.find("torn_tail=1"), std::string::npos) << e;
    }
    if (e.rfind("fuzz k=", 0) == 0 && e.find("journal verify:") != std::string::npos) {
      EXPECT_NE(e.find(" clean"), std::string::npos) << e;
    }
  }
  EXPECT_EQ(fuzz_lines, 3u);
  // The post-recovery publish lands despite the truncated ledger tail.
  size_t order8 = 0;
  for (const std::string& e : trace) {
    if (e.find(" consumer2 subj=") != std::string::npos &&
        e.find("payload=order8") != std::string::npos) {
      ++order8;
    }
  }
  EXPECT_EQ(order8, 1u);
}

TEST(SimReplayCheck, BusstatStatsPlaneIsDeterministic) {
  CheckReplay("busstat_stats_plane", &RunBusstatScenario, 42);
  CheckReplay("busstat_stats_plane", &RunBusstatScenario, 1993);
}

// The stats plane's acceptance invariants on the stock scenario: the aggregator
// decodes samples from every node without a single delta desync (loss repair is
// below it), the fleet self-overhead stays under the 5% budget at the default
// 1/64 sampling, and the workload itself is unharmed (all 300 publishes land).
TEST(SimReplayCheck, BusstatOverheadStaysUnderBudget) {
  telemetry::BusStatScenario run = telemetry::RunBusstatWanScenario(42);
  ASSERT_FALSE(run.trace.empty());
  ASSERT_NE(run.trace.front().rfind("error:", 0), 0u) << run.trace.front();
  EXPECT_EQ(run.delivered, 300u);
  EXPECT_GT(run.samples_consumed, 0u);
  EXPECT_EQ(run.desyncs, 0u);
  EXPECT_GT(run.publish_bytes, 0u);
  EXPECT_LT(run.overhead_ratio, 0.05) << "telemetry self-overhead above the 5% budget";
  EXPECT_NE(run.hash, 0u);
#if IBUS_TELEMETRY
  // Sampling at 1/64 must still let some traces through on 300 publishes.
  EXPECT_GT(run.traces_collected, 0u);
  EXPECT_LT(run.traces_collected, 30u) << "1/64 sampling is not thinning traces";
#endif
}

TEST(SimReplayCheck, CertifiedDeliveryCompletesDespiteLoss) {
  auto trace = RunCertifiedScenario(42);
  ASSERT_FALSE(trace.empty());
  // All 10 published messages must eventually be delivered exactly once.
  size_t deliveries = 0;
  for (const std::string& e : trace) {
    if (e.find("consumer subj=orders.new") != std::string::npos) {
      ++deliveries;
    }
  }
  EXPECT_EQ(deliveries, 10u);
}

}  // namespace
}  // namespace ibus
