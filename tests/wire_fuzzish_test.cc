// Poor-man's fuzzing for every registered codec, deterministic and fast enough
// for tier1: every strict prefix of a valid encoding and a byte-flipped mutant
// at every position go through Decode. The contract is error-not-crash — no
// assert, no UB, no unbounded allocation; and for codecs that seal their tail
// (AtEnd discipline), every strict prefix must be *rejected*, not half-decoded.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/bus/message.h"
#include "src/capture/capture.h"
#include "src/journal/format.h"
#include "src/proto/packets.h"
#include "src/rmi/protocol.h"
#include "src/services/bus_monitor.h"
#include "src/telemetry/busstat.h"
#include "src/telemetry/health.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/sketch.h"
#include "src/telemetry/trace.h"
#include "src/types/codec.h"
#include "src/types/type_descriptor.h"
#include "src/wire/wire.h"

namespace ibus {
namespace {

struct Target {
  std::string name;
  Bytes valid;
  // Returns whether the decode succeeded; must never crash.
  std::function<bool(const Bytes&)> decode;
  // Codecs with a sealed tail must reject every strict prefix. Sub-decoders
  // (readers embedded in larger records) and tail-slicing codecs legitimately
  // accept some prefixes, so they only get the no-crash guarantee.
  bool prefix_must_fail = true;
};

std::vector<Target> Targets() {
  std::vector<Target> out;

  out.push_back({"frame", FrameMessage(5, {1, 2, 3}),
                 [](const Bytes& b) { return ParseFrame(b).ok(); }, true});

  {
    Message m;
    m.subject = "market.equity.ibm";
    m.type_name = "quote";
    m.sender = "client-7";
    m.payload = {9, 8, 7, 6};
    out.push_back({"message", m.Marshal(),
                   [](const Bytes& b) { return Message::Unmarshal(b).ok(); }, true});
  }

  {
    DataPacket p;
    p.stream_id = 3;
    p.seq = 11;
    p.frag_index = 0;
    p.frag_count = 2;
    p.chunk = {1, 2, 3, 4, 5};
    // The chunk is the unread tail of the packet (no length prefix), so a
    // prefix that still covers the header decodes to a shorter chunk.
    out.push_back({"data_packet", p.Marshal(),
                   [](const Bytes& b) { return DataPacket::Unmarshal(b).ok(); }, false});
  }

  {
    BatchPacket p;
    p.stream_id = 3;
    p.first_seq = 20;
    p.messages = {Bytes{1, 2}, Bytes{3, 4, 5}};
    out.push_back({"batch_packet", p.Marshal(),
                   [](const Bytes& b) { return BatchPacket::Unmarshal(b).ok(); }, true});
  }

  {
    HeartbeatPacket p;
    p.stream_id = 3;
    p.highest_seq = 40;
    p.lowest_retained = 12;
    out.push_back({"heartbeat_packet", p.Marshal(),
                   [](const Bytes& b) { return HeartbeatPacket::Unmarshal(b).ok(); }, true});
  }

  {
    NakPacket p;
    p.stream_id = 3;
    p.missing = {4, 9, 10};
    out.push_back({"nak_packet", p.Marshal(),
                   [](const Bytes& b) { return NakPacket::Unmarshal(b).ok(); }, true});
  }

  {
    telemetry::HopRecord rec;
    rec.trace_id = 77;
    rec.hop = 2;
    rec.node = "router-1";
    rec.subject = "a.b.c";
    out.push_back({"hop_record", rec.Marshal(),
                   [](const Bytes& b) { return telemetry::HopRecord::Unmarshal(b).ok(); }, true});
  }

  {
    telemetry::HealthEvent e;
    e.node = "daemon-1";
    e.value = 12;
    e.threshold = 10;
    out.push_back({"health_event", e.Marshal(),
                   [](const Bytes& b) { return telemetry::HealthEvent::Unmarshal(b).ok(); },
                   true});
  }

  {
    telemetry::TopKSketch sketch(4);
    sketch.Offer("a.b");
    sketch.Offer("a.b");
    sketch.Offer("c.d");
    WireWriter w;
    sketch.Encode(&w);
    // Sub-decoder: no sealed tail of its own.
    out.push_back({"topk_sketch", w.Take(),
                   [](const Bytes& b) {
                     WireReader r(b);
                     return telemetry::TopKSketch::Decode(&r).ok();
                   },
                   false});
  }

  {
    DaemonStatsSnapshot s;
    s.host_name = "host-1";
    s.publishes = 5;
    SubjectFlowEntry f;
    f.prefix = "market";
    f.publishes = 3;
    s.flows.push_back(f);
    out.push_back({"stats_snapshot", s.Marshal(),
                   [](const Bytes& b) { return DaemonStatsSnapshot::Unmarshal(b).ok(); }, true});
  }

  {
    TypeDescriptor td("Quote", "");
    WireWriter w;
    td.ToWire(&w);
    // Sub-decoder (rmi adverts embed it): no sealed tail of its own.
    out.push_back({"type_descriptor", w.Take(),
                   [](const Bytes& b) {
                     WireReader r(b);
                     return TypeDescriptor::FromWire(&r).ok();
                   },
                   false});
  }

  {
    RmiAdvert a;
    a.server_name = "calc";
    a.subject = "svc.calc";
    a.load = 2;
    out.push_back({"rmi_advert", a.Marshal(),
                   [](const Bytes& b) { return RmiAdvert::Unmarshal(b).ok(); }, true});
  }

  {
    RmiRequest req;
    req.request_id = 9;
    req.operation = "Add";
    out.push_back({"rmi_request", req.Marshal(),
                   [](const Bytes& b) { return RmiRequest::Unmarshal(b).ok(); }, true});
  }

  {
    RmiReply rep;
    rep.request_id = 9;
    out.push_back({"rmi_reply", rep.Marshal(),
                   [](const Bytes& b) { return RmiReply::Unmarshal(b).ok(); }, true});
  }

  {
    Bytes block = journal::EncodeBlock(1, 10, {Bytes{1, 2, 3}, Bytes{4}});
    out.push_back({"journal_block", block,
                   [](const Bytes& b) {
                     journal::BlockHeader h;
                     std::vector<journal::Record> recs;
                     return journal::DecodeBlock(b, &h, &recs).ok();
                   },
                   true});
  }

  {
    CapturedFrame f;
    f.payload = {1, 2, 3};
    out.push_back({"capture_file", capture::SerializeCapture({f}),
                   [](const Bytes& b) { return capture::DeserializeCapture(b).ok(); }, true});
  }

  {
    telemetry::MetricsRegistry registry;
    registry.GetCounter("bus.publishes")->Inc(3);
    telemetry::StatSeriesEncoder enc("node-1", 4);
    Bytes sample = enc.EncodeSample(registry, nullptr, nullptr, 100, 1);
    // A fresh decoder per attempt so desync state never leaks across inputs.
    out.push_back({"stat_series", sample,
                   [](const Bytes& b) {
                     telemetry::StatSeriesDecoder dec;
                     return dec.DecodeSample(b).ok();
                   },
                   true});
  }

  return out;
}

TEST(WireFuzzish, ValidEncodingsDecode) {
  for (const Target& t : Targets()) {
    EXPECT_TRUE(t.decode(t.valid)) << t.name;
  }
}

TEST(WireFuzzish, EveryPrefixErrorsNotCrashes) {
  for (const Target& t : Targets()) {
    ASSERT_FALSE(t.valid.empty()) << t.name;
    for (size_t len = 0; len < t.valid.size(); ++len) {
      Bytes prefix(t.valid.begin(), t.valid.begin() + static_cast<ptrdiff_t>(len));
      bool ok = t.decode(prefix);  // must not crash
      if (t.prefix_must_fail) {
        EXPECT_FALSE(ok) << t.name << " accepted a strict prefix of " << len << "/"
                         << t.valid.size() << " bytes";
      }
    }
  }
}

TEST(WireFuzzish, ByteFlippedMutantsErrorNotCrash) {
  for (const Target& t : Targets()) {
    for (size_t pos = 0; pos < t.valid.size(); ++pos) {
      for (uint8_t mask : {uint8_t{0xFF}, uint8_t{0x01}, uint8_t{0x80}}) {
        Bytes mutant = t.valid;
        mutant[pos] = static_cast<uint8_t>(mutant[pos] ^ mask);
        (void)t.decode(mutant);  // any result is fine; crashing is not
      }
    }
  }
}

TEST(WireFuzzish, AppendedGarbageIsRejectedBySealedCodecs) {
  for (const Target& t : Targets()) {
    if (!t.prefix_must_fail) {
      continue;  // unsealed sub-decoders may ignore the tail by design
    }
    Bytes noisy = t.valid;
    noisy.push_back(0xA5);
    EXPECT_FALSE(t.decode(noisy)) << t.name << " decoded despite trailing garbage";
  }
}

}  // namespace
}  // namespace ibus
