#include <gtest/gtest.h>

#include "src/bus/certified.h"
#include "src/bus/discovery.h"
#include "src/journal/journal.h"
#include "src/sim/stable_store.h"
#include "src/types/data_object.h"
#include "tests/bus_fixture.h"

namespace ibus {
namespace {

class BusTest : public BusFixture {};

TEST_F(BusTest, PublishReachesSubscriberOnAnotherHost) {
  SetUpBus(2);
  auto pub = MakeClient(0, "publisher");
  auto sub = MakeClient(1, "subscriber");
  Settle(10 * kMillisecond);

  std::vector<std::string> got;
  ASSERT_TRUE(sub->Subscribe("fab5.cc.litho8.thick",
                             [&](const Message& m) { got.push_back(ToString(m.payload)); })
                  .ok());
  Settle(10 * kMillisecond);
  ASSERT_TRUE(pub->Publish("fab5.cc.litho8.thick", ToBytes("8.1um")).ok());
  Settle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "8.1um");
}

TEST_F(BusTest, AnonymousCommunication) {
  // P4: the subscriber learns nothing about the publisher's location; swapping the
  // publisher for another host changes nothing for the subscriber.
  SetUpBus(3);
  auto sub = MakeClient(2, "consumer");
  int got = 0;
  ASSERT_TRUE(sub->Subscribe("quotes.ibm", [&](const Message&) { ++got; }).ok());
  Settle(10 * kMillisecond);

  auto pub1 = MakeClient(0, "old_server");
  ASSERT_TRUE(pub1->Publish("quotes.ibm", ToBytes("101")).ok());
  Settle();
  EXPECT_EQ(got, 1);

  pub1.reset();  // old server retired
  auto pub2 = MakeClient(1, "new_server");
  ASSERT_TRUE(pub2->Publish("quotes.ibm", ToBytes("102")).ok());
  Settle();
  EXPECT_EQ(got, 2);
}

TEST_F(BusTest, WildcardSubscription) {
  SetUpBus(2);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  std::vector<std::string> subjects;
  ASSERT_TRUE(
      sub->Subscribe("news.>", [&](const Message& m) { subjects.push_back(m.subject); }).ok());
  Settle(10 * kMillisecond);
  ASSERT_TRUE(pub->Publish("news.equity.gmc", ToBytes("a")).ok());
  ASSERT_TRUE(pub->Publish("news.bond.t10", ToBytes("b")).ok());
  ASSERT_TRUE(pub->Publish("sports.scores", ToBytes("c")).ok());
  Settle();
  ASSERT_EQ(subjects.size(), 2u);
  EXPECT_EQ(subjects[0], "news.equity.gmc");
  EXPECT_EQ(subjects[1], "news.bond.t10");
}

TEST_F(BusTest, OverlappingSubscriptionsEachFire) {
  SetUpBus(2);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  int wide = 0;
  int narrow = 0;
  ASSERT_TRUE(sub->Subscribe("news.>", [&](const Message&) { ++wide; }).ok());
  ASSERT_TRUE(sub->Subscribe("news.equity.gmc", [&](const Message&) { ++narrow; }).ok());
  Settle(10 * kMillisecond);
  ASSERT_TRUE(pub->Publish("news.equity.gmc", ToBytes("x")).ok());
  Settle();
  EXPECT_EQ(wide, 1);
  EXPECT_EQ(narrow, 1);
  // One client delivery datagram even though two subscriptions matched.
  EXPECT_EQ(sub->stats().received, 1u);
}

TEST_F(BusTest, SameHostDelivery) {
  SetUpBus(1);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(0, "sub");
  std::string got;
  ASSERT_TRUE(sub->Subscribe("local.topic", [&](const Message& m) {
                    got = ToString(m.payload);
                  }).ok());
  Settle(10 * kMillisecond);
  ASSERT_TRUE(pub->Publish("local.topic", ToBytes("loopback")).ok());
  Settle();
  EXPECT_EQ(got, "loopback");
}

TEST_F(BusTest, PublisherReceivesOwnMessagesWhenSubscribed) {
  SetUpBus(1);
  auto client = MakeClient(0, "both");
  std::string got;
  ASSERT_TRUE(
      client->Subscribe("echo.me", [&](const Message& m) { got = ToString(m.payload); }).ok());
  Settle(10 * kMillisecond);
  ASSERT_TRUE(client->Publish("echo.me", ToBytes("self")).ok());
  Settle();
  EXPECT_EQ(got, "self");
}

TEST_F(BusTest, ManyConsumersAllReceive) {
  SetUpBus(15);  // the paper's topology: 1 publisher + 14 consumers
  auto pub = MakeClient(0, "pub");
  std::vector<std::unique_ptr<BusClient>> subs;
  int total = 0;
  for (int i = 1; i < 15; ++i) {
    subs.push_back(MakeClient(i, "sub" + std::to_string(i)));
    ASSERT_TRUE(subs.back()->Subscribe("market.feed", [&](const Message&) { ++total; }).ok());
  }
  Settle(10 * kMillisecond);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pub->Publish("market.feed", ToBytes("tick")).ok());
  }
  Settle();
  EXPECT_EQ(total, 14 * 10);
}

TEST_F(BusTest, PerSenderOrderingPreserved) {
  SetUpBus(2);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  std::vector<int> got;
  ASSERT_TRUE(sub->Subscribe("ordered.stream", [&](const Message& m) {
                    got.push_back(std::stoi(ToString(m.payload)));
                  }).ok());
  Settle(10 * kMillisecond);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pub->Publish("ordered.stream", ToBytes(std::to_string(i))).ok());
  }
  Settle();
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], i);
  }
}

TEST_F(BusTest, LargeMessagesAreFragmentedAndReassembled) {
  SetUpBus(2);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  Bytes got;
  ASSERT_TRUE(
      sub->Subscribe("bulk.data", [&](const Message& m) { got = m.payload; }).ok());
  Settle(10 * kMillisecond);
  Bytes big(10000);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 31);
  }
  ASSERT_TRUE(pub->Publish("bulk.data", big).ok());
  Settle();
  EXPECT_EQ(got, big);
  // 10 KB over ~1380-byte chunks: at least 8 wire packets.
  EXPECT_GE(daemons_[0]->sender_stats().packets_sent, 8u);
}

TEST_F(BusTest, LossRecoveredByNakRetransmission) {
  BusConfig cfg;
  SetUpBus(2, cfg);
  FaultPlan faults;
  faults.drop_prob = 0.2;
  net_->SetFaultPlan(seg_, faults);

  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  std::vector<int> got;
  ASSERT_TRUE(sub->Subscribe("lossy.stream", [&](const Message& m) {
                    got.push_back(std::stoi(ToString(m.payload)));
                  }).ok());
  Settle(50 * kMillisecond);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pub->Publish("lossy.stream", ToBytes(std::to_string(i))).ok());
  }
  Settle(10 * kSecond);
  // Exactly once, in order, despite 20% frame loss.
  ASSERT_EQ(got.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], i);
  }
  EXPECT_GT(daemons_[0]->sender_stats().retransmits, 0u);
}

TEST_F(BusTest, DuplicatesOnWireAreSuppressed) {
  SetUpBus(2);
  FaultPlan faults;
  faults.dup_prob = 0.5;
  net_->SetFaultPlan(seg_, faults);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  int got = 0;
  ASSERT_TRUE(sub->Subscribe("dup.stream", [&](const Message&) { ++got; }).ok());
  Settle(10 * kMillisecond);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pub->Publish("dup.stream", ToBytes("m")).ok());
  }
  Settle(5 * kSecond);
  EXPECT_EQ(got, 100);
  EXPECT_GT(daemons_[1]->receiver_stats().duplicates_dropped, 0u);
}

TEST_F(BusTest, ReorderingRestoredPerSender) {
  SetUpBus(2);
  FaultPlan faults;
  faults.jitter_us = 3000;  // enough to reorder back-to-back frames
  net_->SetFaultPlan(seg_, faults);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  std::vector<int> got;
  ASSERT_TRUE(sub->Subscribe("jitter.stream", [&](const Message& m) {
                    got.push_back(std::stoi(ToString(m.payload)));
                  }).ok());
  Settle(10 * kMillisecond);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pub->Publish("jitter.stream", ToBytes(std::to_string(i))).ok());
  }
  Settle(5 * kSecond);
  ASSERT_EQ(got.size(), 100u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST_F(BusTest, UnsubscribeStopsDelivery) {
  SetUpBus(2);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  int got = 0;
  auto id = sub->Subscribe("stop.me", [&](const Message&) { ++got; });
  ASSERT_TRUE(id.ok());
  Settle(10 * kMillisecond);
  ASSERT_TRUE(pub->Publish("stop.me", ToBytes("1")).ok());
  Settle();
  ASSERT_TRUE(sub->Unsubscribe(*id).ok());
  Settle(10 * kMillisecond);
  ASSERT_TRUE(pub->Publish("stop.me", ToBytes("2")).ok());
  Settle();
  EXPECT_EQ(got, 1);
}

TEST_F(BusTest, LateSubscriberSeesOnlyNewMessages) {
  SetUpBus(2);
  auto pub = MakeClient(0, "pub");
  ASSERT_TRUE(pub->Publish("history.topic", ToBytes("old")).ok());
  Settle();
  auto sub = MakeClient(1, "late");
  std::vector<std::string> got;
  ASSERT_TRUE(sub->Subscribe("history.topic",
                             [&](const Message& m) { got.push_back(ToString(m.payload)); })
                  .ok());
  Settle(10 * kMillisecond);
  ASSERT_TRUE(pub->Publish("history.topic", ToBytes("new")).ok());
  Settle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "new");
}

TEST_F(BusTest, DataObjectsTravelSelfDescribing) {
  SetUpBus(2);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  DataObjectPtr got;
  ASSERT_TRUE(sub->SubscribeObjects("news.equity.gmc",
                                    [&](const Message&, const DataObjectPtr& obj) { got = obj; })
                  .ok());
  Settle(10 * kMillisecond);
  auto story = MakeObject("story", {{"headline", Value("GM up 3%")},
                                    {"word_count", Value(int32_t{212})}});
  ASSERT_TRUE(pub->PublishObject("news.equity.gmc", *story).ok());
  Settle();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->type_name(), "story");
  EXPECT_EQ(got->Get("headline").AsString(), "GM up 3%");
  EXPECT_EQ(got->Get("word_count").AsI32(), 212);
}

TEST_F(BusTest, InvalidSubjectsRejectedAtPublishAndSubscribe) {
  SetUpBus(1);
  auto client = MakeClient(0, "c");
  EXPECT_FALSE(client->Publish("bad..subject", ToBytes("x")).ok());
  EXPECT_FALSE(client->Publish("wild.*", ToBytes("x")).ok());
  EXPECT_FALSE(client->Subscribe(">.bad", [](const Message&) {}).ok());
}

TEST_F(BusTest, BatchingPacksSmallMessages) {
  BusConfig cfg;
  cfg.reliable.batching_enabled = true;
  SetUpBus(2, cfg);
  auto pub = MakeClient(0, "pub");
  auto sub = MakeClient(1, "sub");
  int got = 0;
  ASSERT_TRUE(sub->Subscribe("ticks.>", [&](const Message&) { ++got; }).ok());
  Settle(10 * kMillisecond);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pub->Publish("ticks.t" + std::to_string(i), ToBytes("p")).ok());
  }
  Settle(5 * kSecond);
  EXPECT_EQ(got, 100);
  // Far fewer wire packets than messages.
  EXPECT_LT(daemons_[0]->sender_stats().packets_sent, 40u);
  EXPECT_GT(daemons_[0]->sender_stats().batches_sent, 0u);
}

class DiscoveryTest : public BusFixture {};

TEST_F(DiscoveryTest, WhoIsOutThere) {
  SetUpBus(3);
  auto server1 = MakeClient(1, "server1");
  auto server2 = MakeClient(2, "server2");
  auto client = MakeClient(0, "client");

  auto r1 = DiscoveryResponder::Create(server1.get(), "svc.quotes",
                                       [](const Message&) { return ToBytes("server1-info"); });
  auto r2 = DiscoveryResponder::Create(server2.get(), "svc.quotes",
                                       [](const Message&) { return ToBytes("server2-info"); });
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  Settle(10 * kMillisecond);

  std::vector<std::string> infos;
  ASSERT_TRUE(DiscoveryQuery::Run(client.get(), "svc.quotes", 100 * kMillisecond,
                                  [&](std::vector<Message> responses) {
                                    for (const Message& m : responses) {
                                      infos.push_back(ToString(m.payload));
                                    }
                                  })
                  .ok());
  Settle();
  std::sort(infos.begin(), infos.end());
  EXPECT_EQ(infos, (std::vector<std::string>{"server1-info", "server2-info"}));
}

TEST_F(DiscoveryTest, NoRespondersYieldsEmpty) {
  SetUpBus(2);
  auto client = MakeClient(0, "client");
  bool done = false;
  size_t count = 99;
  ASSERT_TRUE(DiscoveryQuery::Run(client.get(), "svc.ghost", 50 * kMillisecond,
                                  [&](std::vector<Message> responses) {
                                    done = true;
                                    count = responses.size();
                                  })
                  .ok());
  Settle();
  EXPECT_TRUE(done);
  EXPECT_EQ(count, 0u);
}

TEST_F(DiscoveryTest, ResponderIgnoresOrdinaryData) {
  SetUpBus(2);
  auto server = MakeClient(1, "server");
  int describes = 0;
  auto r = DiscoveryResponder::Create(server.get(), "svc.mixed", [&](const Message&) {
    ++describes;
    return Bytes();
  });
  ASSERT_TRUE(r.ok());
  auto pub = MakeClient(0, "pub");
  Settle(10 * kMillisecond);
  ASSERT_TRUE(pub->Publish("svc.mixed", ToBytes("plain data")).ok());
  Settle();
  EXPECT_EQ(describes, 0);
}

class CertifiedTest : public BusFixture {};

// Certified publishers persist through a write-through journal on the store — the
// same per-record stable-write timing as the old direct-StableStore ledger.
std::unique_ptr<journal::Journal> OpenLedger(StableStore* store, Simulator* sim) {
  journal::JournalConfig config;
  config.sim = sim;
  auto j = journal::Journal::Open(store, config);
  EXPECT_TRUE(j.ok()) << j.status().ToString();
  return j.ok() ? j.take() : nullptr;
}

TEST_F(CertifiedTest, DeliversExactlyOnceWithoutFailures) {
  SetUpBus(2);
  auto pub_client = MakeClient(0, "producer");
  auto sub_client = MakeClient(1, "consumer");
  MemoryStableStore store;
  auto ledger = OpenLedger(&store, &sim_);

  std::vector<std::string> got;
  auto sub = CertifiedSubscriber::Create(
      sub_client.get(), "orders.>", "consumer-1",
      [&](const Message& m) { got.push_back(ToString(m.payload)); });
  ASSERT_TRUE(sub.ok());
  Settle(10 * kMillisecond);

  auto pub = CertifiedPublisher::Create(pub_client.get(), ledger.get(), "orders-ledger");
  ASSERT_TRUE(pub.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*pub)->Publish("orders.new", ToBytes("order" + std::to_string(i))).ok());
  }
  Settle(5 * kSecond);
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ((*pub)->pending(), 0u);
  EXPECT_EQ((*pub)->stats().retired, 5u);
  EXPECT_EQ((*sub)->stats().duplicates_dropped, 0u);
}

TEST_F(CertifiedTest, RetransmitsUntilAcked) {
  SetUpBus(2);
  // Consumer comes up late: the publisher must retransmit until someone replies.
  auto pub_client = MakeClient(0, "producer");
  MemoryStableStore store;
  auto ledger = OpenLedger(&store, &sim_);
  auto pub = CertifiedPublisher::Create(pub_client.get(), ledger.get(), "db-ledger");
  ASSERT_TRUE(pub.ok());
  ASSERT_TRUE((*pub)->Publish("db.writes", ToBytes("row1")).ok());
  Settle(1 * kSecond);
  EXPECT_EQ((*pub)->pending(), 1u);
  EXPECT_GT((*pub)->stats().retransmits, 0u);

  auto sub_client = MakeClient(1, "database");
  std::vector<std::string> got;
  auto sub = CertifiedSubscriber::Create(
      sub_client.get(), "db.writes", "db-1",
      [&](const Message& m) { got.push_back(ToString(m.payload)); });
  ASSERT_TRUE(sub.ok());
  Settle(2 * kSecond);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "row1");
  EXPECT_EQ((*pub)->pending(), 0u);
}

TEST_F(CertifiedTest, SurvivesPublisherRestart) {
  SetUpBus(2);
  MemoryStableStore store;  // the "disk" outlives the crashed process
  {
    auto pub_client = MakeClient(0, "producer");
    auto ledger = OpenLedger(&store, &sim_);
    auto pub = CertifiedPublisher::Create(pub_client.get(), ledger.get(), "wip-ledger");
    ASSERT_TRUE(pub.ok());
    ASSERT_TRUE((*pub)->Publish("wip.moves", ToBytes("lot42 -> litho")).ok());
    // Crash before any consumer existed; destructor = process death.
    Settle(300 * kMillisecond);
  }
  // Restart: recover the ledger, then a consumer appears.
  auto pub_client = MakeClient(0, "producer");
  auto ledger = OpenLedger(&store, &sim_);
  auto pub = CertifiedPublisher::Create(pub_client.get(), ledger.get(), "wip-ledger");
  ASSERT_TRUE(pub.ok());
  ASSERT_TRUE((*pub)->Recover().ok());
  EXPECT_EQ((*pub)->pending(), 1u);

  auto sub_client = MakeClient(1, "tracker");
  std::vector<std::string> got;
  auto sub = CertifiedSubscriber::Create(
      sub_client.get(), "wip.moves", "tracker-1",
      [&](const Message& m) { got.push_back(ToString(m.payload)); });
  ASSERT_TRUE(sub.ok());
  Settle(2 * kSecond);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "lot42 -> litho");
  EXPECT_EQ((*pub)->pending(), 0u);
}

TEST_F(CertifiedTest, SubscriberDedupsAcrossRetransmits) {
  SetUpBus(2);
  auto pub_client = MakeClient(0, "producer");
  auto sub_client = MakeClient(1, "consumer");
  MemoryStableStore store;
  auto ledger = OpenLedger(&store, &sim_);
  CertifiedConfig cfg;
  cfg.required_acks = 2;  // never satisfied with one consumer: publisher keeps retrying
  auto pub = CertifiedPublisher::Create(pub_client.get(), ledger.get(), "noisy-ledger", cfg);
  ASSERT_TRUE(pub.ok());

  int delivered = 0;
  auto sub = CertifiedSubscriber::Create(sub_client.get(), "noisy.topic", "c1",
                                         [&](const Message&) { ++delivered; });
  ASSERT_TRUE(sub.ok());
  Settle(10 * kMillisecond);
  ASSERT_TRUE((*pub)->Publish("noisy.topic", ToBytes("m")).ok());
  Settle(3 * kSecond);
  EXPECT_EQ(delivered, 1);  // many retransmits, one delivery
  EXPECT_GT((*sub)->stats().duplicates_dropped, 0u);
}

}  // namespace
}  // namespace ibus

namespace ibus {
namespace {

class CertifiedFileStoreTest : public BusFixture {};

TEST_F(CertifiedFileStoreTest, LedgerSurvivesRealProcessRestart) {
  // Same flow as SurvivesPublisherRestart but with the ledger on a real file: the
  // "process" (publisher + its FileStableStore handle) is destroyed and re-created
  // from disk, exercising the on-disk framing and recovery path end to end.
  std::string path = ::testing::TempDir() + "/ibus_certified_ledger.log";
  std::remove(path.c_str());
  SetUpBus(2);

  {
    auto store = FileStableStore::Open(path).take();
    auto ledger = OpenLedger(store.get(), &sim_);
    auto pub_client = MakeClient(0, "producer");
    auto pub =
        CertifiedPublisher::Create(pub_client.get(), ledger.get(), "file-ledger").take();
    ASSERT_TRUE(pub->Publish("billing.events", ToBytes("invoice-1")).ok());
    ASSERT_TRUE(pub->Publish("billing.events", ToBytes("invoice-2")).ok());
    Settle(300 * kMillisecond);
    // Crash with both messages unacknowledged (no consumer exists yet).
    EXPECT_EQ(pub->pending(), 2u);
  }

  // "Restart": fresh store handle reading the same file, fresh publisher, recovery.
  auto store = FileStableStore::Open(path).take();
  auto ledger = OpenLedger(store.get(), &sim_);
  auto pub_client = MakeClient(0, "producer");
  auto pub = CertifiedPublisher::Create(pub_client.get(), ledger.get(), "file-ledger").take();
  ASSERT_TRUE(pub->Recover().ok());
  EXPECT_EQ(pub->pending(), 2u);

  auto sub_client = MakeClient(1, "billing");
  std::vector<std::string> got;
  auto sub = CertifiedSubscriber::Create(
                 sub_client.get(), "billing.events", "billing-1",
                 [&](const Message& m) { got.push_back(ToString(m.payload)); })
                 .take();
  Settle(3 * kSecond);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "invoice-1");
  EXPECT_EQ(got[1], "invoice-2");
  EXPECT_EQ(pub->pending(), 0u);

  // A third restart finds the retirement records too: nothing left to resend.
  auto store2 = FileStableStore::Open(path).take();
  auto ledger2 = OpenLedger(store2.get(), &sim_);
  auto pub_client2 = MakeClient(0, "producer2");
  auto pub2 =
      CertifiedPublisher::Create(pub_client2.get(), ledger2.get(), "file-ledger").take();
  ASSERT_TRUE(pub2->Recover().ok());
  EXPECT_EQ(pub2->pending(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ibus
