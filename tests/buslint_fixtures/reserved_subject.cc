// Fixture for the reserved-subject rule: hard-coded "_ibus" namespace literals.
#include <string>

struct Bus {
  void Publish(const std::string&, int);
  void Subscribe(const std::string&, int);
};

void Violations(Bus* b) {
  b->Publish("_ibus.stats.host0", 1);              // violation: reserved literal
  b->Subscribe("_ibus.trace.>", 2);                // violation: reserved literal
  std::string root = "_ibus";                      // violation: bare root element
  b->Subscribe("_ibus.health.>", 6);               // violation: health alert feed
  b->Publish("_ibus.health.slow_consumer.h0", 7);  // violation: concrete alert subject
  b->Publish("_ibus.stats.ts.host0", 8);           // violation: busstat time-series feed
}

void Suppressed(Bus* b) {
  b->Publish("_ibus.cert.ack.x", 3);  // buslint: allow(reserved-subject)
}

void NotReserved(Bus* b) {
  b->Publish("_ibusx.foo", 4);   // different root element, not reserved
  b->Publish("news._ibus", 5);   // "_ibus" not the first element; literal doesn't start with it
}
