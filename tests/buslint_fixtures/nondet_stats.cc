// buslint fixture: linted under the synthetic path "src/telemetry/nondet_stats.cc".
// The telemetry plane is deterministic core — sketch tables, histogram buckets, and
// the busstat keyframe/delta stream feed busstat's replay-gated JSON hashes, so wall
// clocks, env lookups, and ambient RNGs are violations. Seeded violations:
// system_clock, mt19937_64, rand(). The allow()'d getenv is not.
#include <chrono>
#include <cstdlib>
#include <random>

namespace ibus::telemetry {

long SnapshotWallTimestamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

unsigned long SketchSalt(unsigned long node_id) {
  std::mt19937_64 rng(node_id);
  return rng();
}

int SampleCoinFlip() { return rand() % 2; }

const char* StatsCadenceOverride() {
  return std::getenv("IBUS_BUSSTAT_CADENCE");  // buslint: allow(nondeterminism)
}

// Hashing a sim-derived trace id is fine; only ambient-state primitives are banned.
unsigned long DeterministicTraceHash(unsigned long id) {
  return id * 2654435761ul;
}

}  // namespace ibus::telemetry
