// buslint fixture: linted under the synthetic path "src/capture/nondet_capture.cc".
// The capture plane is part of the deterministic core (its hashes feed the replay
// gate), so wall clocks and env lookups are violations there too.
// Seeded violations: gettimeofday, system_clock, getenv.
#include <chrono>
#include <cstdlib>
#include <sys/time.h>

namespace ibus::capture {

long CaptureWallTimestamp() {
  struct timeval tv;
  gettimeofday(&tv, nullptr);
  return tv.tv_sec;
}

long CaptureEpochMillis() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

const char* CaptureDirOverride() { return std::getenv("IBUS_CAPTURE_DIR"); }

// File IO on sim-derived data is fine; only ambient-state primitives are banned.
int DeterministicChecksum(int x) { return x * 31; }

}  // namespace ibus::capture
