// buslint fixture: raw new/delete outside the smart-pointer factory idiom.
#include <memory>

struct Widget {
  Widget() = default;
  Widget(const Widget&) = delete;  // deleted member: not a raw delete
};

Widget* Violations() {
  int* scratch = new int[8];  // raw new
  delete[] scratch;           // raw delete
  return new Widget();        // raw new
}

std::unique_ptr<Widget> Clean() {
  auto w = std::unique_ptr<Widget>(new Widget());  // factory idiom: allowed
  return w;
}

using WidgetPtr = std::shared_ptr<Widget>;

WidgetPtr CleanAlias() {
  // Smart-pointer alias wrapping the new-expression directly: allowed.
  return WidgetPtr(new Widget());
}
