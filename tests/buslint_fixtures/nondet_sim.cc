// buslint fixture: linted under the synthetic path "src/sim/nondet_sim.cc".
// Seeded violations: std::rand, srand, std::chrono::steady_clock, getenv.
#include <chrono>
#include <cstdlib>

namespace ibus {

int JitterMicros() {
  srand(42);
  return std::rand() % 100;
}

long WallClockNow() {
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

const char* DebugFlag() { return std::getenv("IBUS_DEBUG"); }

// The allowlist escape hatch suppresses the rule on this line only:
int SeedFromEnv() { return getenv("SEED") != nullptr; }  // buslint: allow(nondeterminism)

}  // namespace ibus
