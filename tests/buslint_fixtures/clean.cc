// buslint fixture: a file with no violations under any rule, even when linted as
// part of the deterministic core ("src/sim/clean.cc").
#include <memory>
#include <string>

struct Message {
  static int Unmarshal(const std::string& b);
};

struct FakeBus {
  void Publish(const std::string& subject, int payload);
  void Subscribe(const std::string& pattern, int handler);
};

void UseBus(FakeBus* bus) {
  bus->Publish("fab5.cc.litho8.thick", 1);
  bus->Subscribe("fab5.cc.*.thick", 2);
  bus->Subscribe("news.>", 3);
}

int UseDecode(const std::string& b) {
  int decoded = Message::Unmarshal(b);
  return decoded;
}

std::unique_ptr<int> UseMemory() { return std::make_unique<int>(7); }

// Identifiers like random_seed or timeout are fine; only the primitives are banned.
int random_seed_default() { return 42; }
int timeout_us() { return 100; }
