// buslint fixture: linted under the synthetic path "src/prof/nondet_prof.cc".
// The profiler is deterministic core — stage decomposition and queue gauges feed
// busprof's replay-gated JSON hashes, so wall clocks, env lookups, and ambient
// RNGs are violations. Seeded violations: clock_gettime, mt19937, time(). The
// allow()'d getenv is not.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace ibus::prof {

long ProfileWallTimestamp() {
  struct timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return ts.tv_sec;
}

unsigned SampleStageJitter(unsigned stage_us) {
  std::mt19937 rng(stage_us);
  return stage_us + rng() % 50;
}

long ReportNameSuffix() { return time(nullptr); }

const char* ProfileOutOverride() {
  return std::getenv("IBUS_BUSPROF_OUT");  // buslint: allow(nondeterminism)
}

// Hashing sim-derived stage vectors is fine; only ambient-state primitives are banned.
unsigned DeterministicStageHash(unsigned stage_sum_us) {
  return stage_sum_us * 2654435761u;
}

}  // namespace ibus::prof
