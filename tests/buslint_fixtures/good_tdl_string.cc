// Fixture: well-formed TDL literals at every entry point; no rule may fire.
#include <string>

void AllClean() {
  app.RunScript(R"tdl(
    (defclass recipe (object)
      ((steps :type list)))
    (make-instance 'recipe :steps (list 1 2 3))
  )tdl");
  interp.EvalProgram("(print \"hello\\n\")");
  auto forms = ibus::ParseTdl("(+ 1 2) (* 3 4)");
  auto one = ibus::ParseTdlOne("'(a b c)");
}
