// Fixture: TDL literals that do not parse, handed to the TDL entry points.
#include <string>

void Seeded() {
  // Unbalanced paren inside a raw-string script.
  app.RunScript(R"tdl(
    (defclass recipe (object)
      ((steps :type list))
  )tdl");
  // Unterminated TDL string inside an escaped C++ literal.
  interp.EvalProgram("(print \"oops)");
}

void Clean() {
  // Parses fine: must NOT fire.
  app.RunScript("(+ 1 2)");
  // Not a literal argument: nothing static to check.
  app.RunScript(source);
  // Suppressed by the allowlist.
  interp.EvalProgram("(print \"oops)");  // buslint: allow(tdl-string)
}
