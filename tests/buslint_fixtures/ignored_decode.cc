// buslint fixture: decode results discarded as bare expression statements.
#include <string>

struct Bytes {};
struct Frame {
  static int Unmarshal(const Bytes& b);
};
int ParseFrame(const Bytes& b);

void Violations(const Bytes& b) {
  Frame::Unmarshal(b);   // discarded
  ParseFrame(b);         // discarded
}

int Clean(const Bytes& b) {
  int v = Frame::Unmarshal(b);      // assigned
  (void)ParseFrame(b);              // explicit discard
  if (ParseFrame(b) > 0) {          // used in a condition
    return v;
  }
  return ParseFrame(b);             // returned
}
