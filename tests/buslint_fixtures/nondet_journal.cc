// buslint fixture: linted under the synthetic path "src/journal/nondet_journal.cc".
// The journal is deterministic core — its flush/durability timing feeds the replay
// gate's trace hashes, so wall clocks, env lookups, and ambient RNGs are violations.
// Seeded violations: clock_gettime, mt19937, time(). The allow()'d getenv is not.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace ibus::journal {

long LedgerWallTimestamp() {
  struct timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return ts.tv_sec;
}

unsigned JitterFlushDeadline(unsigned base_us) {
  std::mt19937 rng(base_us);
  return base_us + rng() % 100;
}

long SegmentNameSuffix() { return time(nullptr); }

const char* LedgerDirOverride() {
  return std::getenv("IBUS_JOURNAL_DIR");  // buslint: allow(nondeterminism)
}

// CRCs over sim-derived payloads are fine; only ambient-state primitives are banned.
unsigned DeterministicSeed(unsigned lsn) { return lsn * 2654435761u; }

}  // namespace ibus::journal
