// buslint fixture: subject/pattern literals that do not parse under the grammar.
#include <string>

struct FakeBus {
  void Publish(const std::string& subject, int payload);
  void Subscribe(const std::string& pattern, int handler);
};

void Violations(FakeBus* bus) {
  bus->Publish("news..equity", 1);      // empty element
  bus->Publish("news.equity.*", 2);     // wildcard in a concrete subject
  bus->Subscribe("news.>rest", 3);      // '>' must be a whole trailing element
  bus->Subscribe("", 4);                // empty pattern
}

void Clean(FakeBus* bus) {
  bus->Publish("news.equity.gmc", 1);
  bus->Subscribe("news.*.gmc", 2);
  bus->Subscribe("fab5.>", 3);
  bus->Publish("_inbox.h1.p2.3", 4);    // reserved-prefix subjects are valid
  bus->Publish("news." + std::string("x"), 5);  // partial literal: not checked
}
