// Fixture: raw-string TDL literals that exercise the tricky lexing corners —
// multi-line scripts, TDL-level backslash escapes that UnescapeCpp must NOT
// fold, and escapes directly adjacent to the )tdl" closer. No rule may fire.
#include <string>

void RawClean() {
  // Multi-line raw script: the literal spans lines, the diagnostic line is the call.
  app.RunScript(R"tdl(
    (defclass order (object)
      ((items :type list)
       (total :type number)))
    (make-instance 'order :items (list "a" "b") :total 7)
  )tdl");
  // TDL string whose own backslash escapes sit right against the closer: the
  // scanner must end the C++ literal at the first )tdl" and hand the content to
  // the TDL reader verbatim (a C++-unescape pass would turn \\ into \" bait).
  interp.EvalProgram(R"tdl((print "tail\\"))tdl");
  // Escaped quotes inside a raw script: raw content carries \" through to TDL,
  // which folds it itself.
  interp.EvalProgram(R"tdl((print "say \"hi\""))tdl");
}
