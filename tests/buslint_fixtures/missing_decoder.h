// buslint fixture: wire encoders declared without their matching decoders.
// (Pairing is checked per header file; see paired_codec.h for the clean case.)
#ifndef TESTS_BUSLINT_FIXTURES_MISSING_DECODER_H_
#define TESTS_BUSLINT_FIXTURES_MISSING_DECODER_H_

struct Bytes {};
struct WireWriter {};

struct Orphan {
  Bytes Marshal() const;             // no Unmarshal in this header
  void ToWire(WireWriter* w) const;  // no FromWire in this header
};

Bytes EncodeTicket(int id);  // no DecodeTicket in this header

#endif  // TESTS_BUSLINT_FIXTURES_MISSING_DECODER_H_
