// buslint fixture: every encoder has its decoder — the decode-pair negative case.
#ifndef TESTS_BUSLINT_FIXTURES_PAIRED_CODEC_H_
#define TESTS_BUSLINT_FIXTURES_PAIRED_CODEC_H_

struct Bytes {};
struct WireWriter {};
struct WireReader {};

struct Packet {
  Bytes Marshal() const;
  static Packet Unmarshal(const Bytes& b);
  void ToWire(WireWriter* w) const;
  static Packet FromWire(WireReader* r);
};

Bytes EncodeTicket(int id);
int DecodeTicket(const Bytes& b);

void MarshalValue(int v, WireWriter* w);
int UnmarshalValue(WireReader* r);

#endif  // TESTS_BUSLINT_FIXTURES_PAIRED_CODEC_H_
