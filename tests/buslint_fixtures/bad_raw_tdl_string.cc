// Fixture: raw-string TDL literals that must fire — a multi-line script with an
// unbalanced form, and a TDL escape that leaks through the )tdl" closer leaving
// the script's string unterminated.
#include <string>

void RawSeeded() {
  // Multi-line raw script missing a closing paren: fires at this call line.
  app.RunScript(R"tdl(
    (defclass order (object)
      ((items :type list)
  )tdl");
  // The backslash escapes the TDL-level quote, and the C++ raw literal still
  // terminates at )tdl" — so the script ends inside an open TDL string.
  interp.EvalProgram(R"tdl((print "x\))tdl");
}
