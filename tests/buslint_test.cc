// Tests for the buslint rules: each seeded-violation fixture must fire its rule,
// the clean fixtures must not, and the allowlist comment must suppress.
#include "tools/buslint/buslint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace ibus::buslint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(BUSLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Violation> LintFixture(const std::string& rel_path, const std::string& name) {
  return LintSource(rel_path, ReadFixture(name));
}

size_t CountRule(const std::vector<Violation>& vs, const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(vs.begin(), vs.end(), [&](const Violation& v) { return v.rule == rule; }));
}

std::string Render(const std::vector<Violation>& vs) {
  std::string out;
  for (const auto& v : vs) {
    out += v.ToString() + "\n";
  }
  return out;
}

TEST(BuslintNondeterminism, FiresOnPrimitivesInDeterministicCore) {
  auto vs = LintFixture("src/sim/nondet_sim.cc", "nondet_sim.cc");
  // srand, std::rand, steady_clock, std::getenv — the allow()'d getenv is suppressed.
  EXPECT_EQ(CountRule(vs, kRuleNondeterminism), 4u) << Render(vs);
}

TEST(BuslintNondeterminism, FiresInCapturePlane) {
  // src/capture feeds the replay gate's capture hashes, so it is deterministic core:
  // wall clocks and env lookups must trip the rule there exactly as in src/sim.
  auto vs = LintFixture("src/capture/nondet_capture.cc", "nondet_capture.cc");
  EXPECT_EQ(CountRule(vs, kRuleNondeterminism), 3u) << Render(vs);
}

TEST(BuslintNondeterminism, FiresInJournal) {
  // src/journal's flush/durability timing feeds the replay gate, so the write-ahead
  // ledger is deterministic core: clocks and ambient RNGs trip the rule there.
  auto vs = LintFixture("src/journal/nondet_journal.cc", "nondet_journal.cc");
  // clock_gettime, mt19937, time() — the allow()'d getenv is suppressed.
  EXPECT_EQ(CountRule(vs, kRuleNondeterminism), 3u) << Render(vs);
}

TEST(BuslintNondeterminism, FiresInProfiler) {
  // src/prof's stage decomposition feeds busprof's replay-gated hashes, so the
  // profiler is deterministic core: clocks and ambient RNGs trip the rule there.
  auto vs = LintFixture("src/prof/nondet_prof.cc", "nondet_prof.cc");
  // clock_gettime, mt19937, time() — the allow()'d getenv is suppressed.
  EXPECT_EQ(CountRule(vs, kRuleNondeterminism), 3u) << Render(vs);
}

TEST(BuslintNondeterminism, ProfilerTwinIsSilentOutsideCore) {
  // The same source under the CLI tool's path must not fire.
  auto vs = LintFixture("tools/busprof/nondet_prof.cc", "nondet_prof.cc");
  EXPECT_EQ(CountRule(vs, kRuleNondeterminism), 0u) << Render(vs);
}

TEST(BuslintNondeterminism, JournalTwinIsSilentOutsideCore) {
  // The same source under a non-core path (a tool) must not fire.
  auto vs = LintFixture("tools/busjournal/nondet_journal.cc", "nondet_journal.cc");
  EXPECT_EQ(CountRule(vs, kRuleNondeterminism), 0u) << Render(vs);
}

TEST(BuslintNondeterminism, FiresInStatsPlane) {
  // src/telemetry's sketches, histograms, and the busstat keyframe/delta stream feed
  // busstat's replay-gated hashes, so the stats plane is deterministic core: wall
  // clocks and ambient RNGs trip the rule there.
  auto vs = LintFixture("src/telemetry/nondet_stats.cc", "nondet_stats.cc");
  // system_clock, mt19937_64, rand() — the allow()'d getenv is suppressed.
  EXPECT_EQ(CountRule(vs, kRuleNondeterminism), 3u) << Render(vs);
}

TEST(BuslintNondeterminism, StatsTwinIsSilentOutsideCore) {
  // The same source under the CLI tool's path must not fire.
  auto vs = LintFixture("tools/busstat/nondet_stats.cc", "nondet_stats.cc");
  EXPECT_EQ(CountRule(vs, kRuleNondeterminism), 0u) << Render(vs);
}

TEST(BuslintNondeterminism, SilentOutsideDeterministicCore) {
  auto vs = LintFixture("bench/nondet_sim.cc", "nondet_sim.cc");
  EXPECT_EQ(CountRule(vs, kRuleNondeterminism), 0u) << Render(vs);
}

TEST(BuslintNondeterminism, AllowCommentSuppressesSingleLine) {
  auto vs = LintSource("src/bus/x.cc",
                       "int a() { return rand(); }\n"
                       "int b() { return rand(); }  // buslint: allow(nondeterminism)\n");
  ASSERT_EQ(CountRule(vs, kRuleNondeterminism), 1u) << Render(vs);
  EXPECT_EQ(vs[0].line, 1);
}

TEST(BuslintSubjectLiteral, FiresOnBadLiterals) {
  auto vs = LintFixture("src/services/bad_subject.cc", "bad_subject.cc");
  EXPECT_EQ(CountRule(vs, kRuleSubjectLiteral), 4u) << Render(vs);
}

TEST(BuslintSubjectLiteral, ValidatesPatternsAndSubjectsDifferently) {
  // A wildcard is fine in Subscribe but a violation in Publish.
  auto ok = LintSource("a.cc", "void f(B* b) { b->Subscribe(\"news.*\", h); }\n");
  EXPECT_EQ(CountRule(ok, kRuleSubjectLiteral), 0u) << Render(ok);
  auto bad = LintSource("a.cc", "void f(B* b) { b->Publish(\"news.*\", p); }\n");
  EXPECT_EQ(CountRule(bad, kRuleSubjectLiteral), 1u) << Render(bad);
}

TEST(BuslintDecodePair, FiresOncePerMissingDecoder) {
  auto vs = LintFixture("src/wire/missing_decoder.h", "missing_decoder.h");
  EXPECT_EQ(CountRule(vs, kRuleDecodePair), 3u) << Render(vs);
}

TEST(BuslintDecodePair, SilentWhenPairedOrInNonHeader) {
  auto paired = LintFixture("src/wire/paired_codec.h", "paired_codec.h");
  EXPECT_EQ(CountRule(paired, kRuleDecodePair), 0u) << Render(paired);
  // The same orphan declarations in a .cc are call sites, not wire contracts.
  auto cc = LintFixture("src/wire/missing_decoder.cc", "missing_decoder.h");
  EXPECT_EQ(CountRule(cc, kRuleDecodePair), 0u) << Render(cc);
}

TEST(BuslintDecodeChecked, FiresOnDiscardedResults) {
  auto vs = LintFixture("src/proto/ignored_decode.cc", "ignored_decode.cc");
  EXPECT_EQ(CountRule(vs, kRuleDecodeChecked), 2u) << Render(vs);
}

TEST(BuslintRawNewDelete, FiresOutsideFactoryIdiom) {
  auto vs = LintFixture("src/common/raw_new.cc", "raw_new.cc");
  EXPECT_EQ(CountRule(vs, kRuleRawNewDelete), 3u) << Render(vs);
}

TEST(BuslintReservedSubject, FiresOnHardcodedReservedLiterals) {
  auto vs = LintFixture("src/rmi/reserved_subject.cc", "reserved_subject.cc");
  // Six violations (stats/trace/bare-root/two health feeds/busstat time series); the
  // allow()'d line and the non-reserved roots are silent.
  EXPECT_EQ(CountRule(vs, kRuleReservedSubject), 6u) << Render(vs);
}

TEST(BuslintReservedSubject, SilentInTelemetryAndServices) {
  auto telemetry = LintFixture("src/telemetry/reserved_subject.cc", "reserved_subject.cc");
  EXPECT_EQ(CountRule(telemetry, kRuleReservedSubject), 0u) << Render(telemetry);
  auto services = LintFixture("src/services/reserved_subject.cc", "reserved_subject.cc");
  EXPECT_EQ(CountRule(services, kRuleReservedSubject), 0u) << Render(services);
}

TEST(BuslintTdlString, FiresOnUnparsableTdlLiterals) {
  auto vs = LintFixture("examples/embed.cc", "bad_tdl_string.cc");
  ASSERT_EQ(CountRule(vs, kRuleTdlString), 2u) << Render(vs);
  EXPECT_EQ(vs[0].line, 6);   // raw-string script with an unbalanced paren
  EXPECT_EQ(vs[1].line, 11);  // escaped literal with an unterminated TDL string
  EXPECT_NE(vs[0].message.find("does not parse"), std::string::npos);
}

TEST(BuslintTdlString, RawStringsReachTheReaderVerbatim) {
  // Multi-line raw scripts, TDL-level backslash escapes, and escapes adjacent to
  // the )tdl" closer: raw content must not be C++-unescaped before parsing.
  auto vs = LintFixture("src/tdl/raw_tdl_string.cc", "raw_tdl_string.cc");
  EXPECT_EQ(CountRule(vs, kRuleTdlString), 0u) << Render(vs);
}

TEST(BuslintTdlString, RawStringTriggersFireAtTheCallLine) {
  auto vs = LintFixture("src/tdl/bad_raw_tdl_string.cc", "bad_raw_tdl_string.cc");
  ASSERT_EQ(CountRule(vs, kRuleTdlString), 2u) << Render(vs);
  // The multi-line script is reported at the RunScript call, not inside the literal.
  EXPECT_EQ(vs[0].line, 8) << Render(vs);
  EXPECT_EQ(vs[1].line, 14) << Render(vs);
}

TEST(BuslintTdlString, SilentOnWellFormedAndNonLiteralScripts) {
  auto vs = LintFixture("examples/embed.cc", "good_tdl_string.cc");
  EXPECT_TRUE(vs.empty()) << Render(vs);
}

TEST(BuslintClean, CleanFixtureHasNoViolationsAnywhere) {
  auto vs = LintFixture("src/sim/clean.cc", "clean.cc");
  EXPECT_TRUE(vs.empty()) << Render(vs);
}

TEST(BuslintScrubber, IgnoresCommentsAndStrings) {
  auto vs = LintSource("src/sim/x.cc",
                       "// rand() in a comment\n"
                       "/* steady_clock in a block comment */\n"
                       "const char* s = \"getenv srand random_device\";\n");
  EXPECT_TRUE(vs.empty()) << Render(vs);
}

TEST(BuslintScrubber, ReportsCorrectLines) {
  auto vs = LintSource("src/sim/x.cc", "int a;\nint b;\nint c = rand();\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 3);
}

}  // namespace
}  // namespace ibus::buslint
