// Shared test fixture: a LAN segment with N hosts, a daemon per host, and helpers for
// creating clients. Used by bus, rmi, router, and service tests.
#ifndef TESTS_BUS_FIXTURE_H_
#define TESTS_BUS_FIXTURE_H_

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace ibus {

class BusFixture : public ::testing::Test {
 protected:
  void SetUpBus(int n_hosts, const BusConfig& config = BusConfig(),
                const SegmentConfig& segment = SegmentConfig()) {
    config_ = config;
    net_ = std::make_unique<Network>(&sim_);
    seg_ = net_->AddSegment(segment);
    for (int i = 0; i < n_hosts; ++i) {
      hosts_.push_back(net_->AddHost("host" + std::to_string(i), seg_));
      auto daemon = BusDaemon::Start(net_.get(), hosts_.back(), config_);
      ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
      daemons_.push_back(daemon.take());
    }
  }

  std::unique_ptr<BusClient> MakeClient(int host_index, const std::string& name) {
    auto client = BusClient::Connect(net_.get(), hosts_[static_cast<size_t>(host_index)], name,
                                     config_);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? client.take() : nullptr;
  }

  // Convenience: settle all in-flight traffic (bounded to avoid heartbeat loops).
  void Settle(SimTime duration = 2 * kSecond) { sim_.RunFor(duration); }

  Simulator sim_;
  std::unique_ptr<Network> net_;
  SegmentId seg_ = 0;
  BusConfig config_;
  std::vector<HostId> hosts_;
  std::vector<std::unique_ptr<BusDaemon>> daemons_;
};

}  // namespace ibus

#endif  // TESTS_BUS_FIXTURE_H_
