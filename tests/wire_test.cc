#include "src/wire/wire.h"

#include <gtest/gtest.h>

#include <limits>

namespace ibus {
namespace {

TEST(WireTest, RoundTripFixedWidth) {
  WireWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutF64(3.14159);
  w.PutBool(true);

  WireReader r(w.data());
  EXPECT_EQ(r.ReadU8().value(), 0xAB);
  EXPECT_EQ(r.ReadU16().value(), 0xBEEF);
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.ReadI64().value(), -42);
  EXPECT_DOUBLE_EQ(r.ReadF64().value(), 3.14159);
  EXPECT_TRUE(r.ReadBool().value());
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, VarintBoundaries) {
  const uint64_t cases[] = {0,    1,    127,  128,   16383, 16384,
                            1u << 21, 1ull << 35, std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    WireWriter w;
    w.PutVarint(v);
    WireReader r(w.data());
    auto got = r.ReadVarint();
    ASSERT_TRUE(got.ok()) << v;
    EXPECT_EQ(*got, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(WireTest, StringAndBytesRoundTrip) {
  WireWriter w;
  w.PutString("hello bus");
  w.PutString("");
  Bytes blob{1, 2, 3, 0, 255};
  w.PutBytes(blob);

  WireReader r(w.data());
  EXPECT_EQ(r.ReadString().value(), "hello bus");
  EXPECT_EQ(r.ReadString().value(), "");
  EXPECT_EQ(r.ReadBytes().value(), blob);
}

TEST(WireTest, TruncatedReadsFail) {
  WireWriter w;
  w.PutU32(7);
  Bytes data = w.Take();
  data.pop_back();
  WireReader r(data);
  EXPECT_FALSE(r.ReadU32().ok());
}

TEST(WireTest, StringWithBadLengthFails) {
  WireWriter w;
  w.PutVarint(1000);  // claims 1000 bytes but provides none
  WireReader r(w.data());
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(WireTest, EmptyReaderFailsEverything) {
  Bytes empty;
  WireReader r(empty);
  EXPECT_FALSE(r.ReadU8().ok());
  EXPECT_FALSE(r.ReadVarint().ok());
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(WireFrameTest, FrameRoundTrip) {
  Bytes payload = ToBytes("some payload");
  Bytes frame = FrameMessage(7, payload);
  auto parsed = ParseFrame(frame);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->frame_type, 7);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(WireFrameTest, EmptyPayloadFrame) {
  Bytes frame = FrameMessage(1, Bytes());
  auto parsed = ParseFrame(frame);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(WireFrameTest, CorruptedPayloadDetected) {
  Bytes frame = FrameMessage(7, ToBytes("some payload"));
  frame[frame.size() - 1] ^= 0xFF;
  auto parsed = ParseFrame(frame);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
}

TEST(WireFrameTest, BadMagicDetected) {
  Bytes frame = FrameMessage(7, ToBytes("x"));
  frame[0] = 0x00;
  EXPECT_FALSE(ParseFrame(frame).ok());
}

TEST(WireFrameTest, TruncatedFrameDetected) {
  Bytes frame = FrameMessage(7, ToBytes("payload"));
  frame.resize(frame.size() - 3);
  EXPECT_FALSE(ParseFrame(frame).ok());
}

TEST(WireFrameTest, TooShortBufferDetected) {
  Bytes tiny{0x42, 0x49};
  EXPECT_FALSE(ParseFrame(tiny).ok());
}

TEST(CrcTest, KnownValue) {
  // CRC32("123456789") is the classic check value 0xCBF43926.
  Bytes b = ToBytes("123456789");
  EXPECT_EQ(Crc32(b), 0xCBF43926u);
}

TEST(CrcTest, EmptyIsZero) { EXPECT_EQ(Crc32(Bytes{}), 0u); }

}  // namespace
}  // namespace ibus
