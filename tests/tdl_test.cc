#include <gtest/gtest.h>

#include "src/tdl/interp.h"
#include "src/tdl/parser.h"
#include "src/types/registry.h"

namespace ibus {
namespace {

class TdlTest : public ::testing::Test {
 protected:
  TdlTest() : interp_(&registry_) {}

  Datum Eval(const std::string& src) {
    auto r = interp_.EvalProgram(src);
    EXPECT_TRUE(r.ok()) << src << " => " << r.status().ToString();
    return r.ok() ? r.take() : Datum();
  }

  Status EvalError(const std::string& src) {
    auto r = interp_.EvalProgram(src);
    EXPECT_FALSE(r.ok()) << src << " unexpectedly succeeded with " << r->ToString();
    return r.status();
  }

  TypeRegistry registry_;
  TdlInterp interp_;
};

TEST_F(TdlTest, ParserBasics) {
  auto forms = ParseTdl("(+ 1 2) ; comment\n'sym \"str\\n\" 3.5 -7 t nil");
  ASSERT_TRUE(forms.ok());
  ASSERT_EQ(forms->size(), 7u);
  EXPECT_EQ((*forms)[0].ToString(), "(+ 1 2)");
  EXPECT_EQ((*forms)[1].ToString(), "(quote sym)");
  EXPECT_EQ((*forms)[2].AsString(), "str\n");
  EXPECT_DOUBLE_EQ((*forms)[3].AsDouble(), 3.5);
  EXPECT_EQ((*forms)[4].AsInt(), -7);
  EXPECT_TRUE((*forms)[5].AsBool());
  EXPECT_TRUE((*forms)[6].is_nil());
}

TEST_F(TdlTest, ParserErrors) {
  EXPECT_FALSE(ParseTdl("(unclosed").ok());
  EXPECT_FALSE(ParseTdl(")").ok());
  EXPECT_FALSE(ParseTdl("\"unterminated").ok());
}

TEST_F(TdlTest, Arithmetic) {
  EXPECT_EQ(Eval("(+ 1 2 3)").AsInt(), 6);
  EXPECT_EQ(Eval("(- 10 4)").AsInt(), 6);
  EXPECT_EQ(Eval("(- 5)").AsInt(), -5);
  EXPECT_EQ(Eval("(* 2 3 4)").AsInt(), 24);
  EXPECT_EQ(Eval("(/ 10 3)").AsInt(), 3);
  EXPECT_DOUBLE_EQ(Eval("(/ 10.0 4)").AsDouble(), 2.5);
  EXPECT_EQ(Eval("(mod 10 3)").AsInt(), 1);
  EXPECT_DOUBLE_EQ(Eval("(+ 1 2.5)").AsDouble(), 3.5);
  EXPECT_FALSE(EvalError("(/ 1 0)").ok());
  EXPECT_FALSE(EvalError("(+ 1 \"x\")").ok());
}

TEST_F(TdlTest, ComparisonAndLogic) {
  EXPECT_TRUE(Eval("(< 1 2 3)").AsBool());
  EXPECT_FALSE(Eval("(< 1 3 2)").AsBool());
  EXPECT_TRUE(Eval("(= 2 2)").AsBool());
  EXPECT_TRUE(Eval("(eq \"a\" \"a\")").AsBool());
  EXPECT_FALSE(Eval("(eq 'a 'b)").AsBool());
  EXPECT_TRUE(Eval("(not nil)").AsBool());
  EXPECT_TRUE(Eval("(and t 1 \"x\")").Truthy());
  EXPECT_FALSE(Eval("(and t nil t)").Truthy());
  EXPECT_EQ(Eval("(or nil 5)").AsInt(), 5);
}

TEST_F(TdlTest, ControlFlow) {
  EXPECT_EQ(Eval("(if (> 2 1) 'yes 'no)").AsSymbol(), "yes");
  EXPECT_TRUE(Eval("(if nil 'yes)").is_nil());
  EXPECT_EQ(Eval("(cond ((= 1 2) 'a) ((= 1 1) 'b) (t 'c))").AsSymbol(), "b");
  EXPECT_EQ(Eval("(progn 1 2 3)").AsInt(), 3);
  EXPECT_EQ(
      Eval("(let ((i 0) (acc 0)) (while (< i 5) (setq acc (+ acc i)) (setq i (+ i 1))) acc)")
          .AsInt(),
      10);
}

TEST_F(TdlTest, LetScoping) {
  EXPECT_EQ(Eval("(let ((x 1)) (let ((x 2)) x))").AsInt(), 2);
  EXPECT_EQ(Eval("(let ((x 1)) (let ((x 2)) x) x)").AsInt(), 1);
  EXPECT_EQ(Eval("(let* ((x 2) (y (* x 3))) y)").AsInt(), 6);
}

TEST_F(TdlTest, LambdasAndClosures) {
  EXPECT_EQ(Eval("((lambda (a b) (+ a b)) 3 4)").AsInt(), 7);
  EXPECT_EQ(Eval("(let ((n 10)) ((lambda (x) (+ x n)) 5))").AsInt(), 15);
  Eval("(defun twice (f x) (f (f x)))");
  EXPECT_EQ(Eval("(twice (lambda (x) (* x 3)) 2)").AsInt(), 18);
}

TEST_F(TdlTest, ListOps) {
  EXPECT_EQ(Eval("(length (list 1 2 3))").AsInt(), 3);
  EXPECT_EQ(Eval("(first '(a b c))").AsSymbol(), "a");
  EXPECT_EQ(Eval("(rest '(a b c))").ToString(), "(b c)");
  EXPECT_EQ(Eval("(cons 1 '(2 3))").ToString(), "(1 2 3)");
  EXPECT_EQ(Eval("(append '(1) '(2 3))").ToString(), "(1 2 3)");
  EXPECT_EQ(Eval("(nth 1 '(a b c))").AsSymbol(), "b");
  EXPECT_TRUE(Eval("(nth 9 '(a))").is_nil());
  EXPECT_EQ(Eval("(reverse '(1 2 3))").ToString(), "(3 2 1)");
  EXPECT_EQ(Eval("(mapcar (lambda (x) (* x x)) '(1 2 3))").ToString(), "(1 4 9)");
  EXPECT_EQ(Eval("(filter (lambda (x) (> x 1)) '(1 2 3))").ToString(), "(2 3)");
}

TEST_F(TdlTest, StringOps) {
  EXPECT_EQ(Eval("(concat \"a\" \"b\" 3)").AsString(), "ab3");
  EXPECT_TRUE(Eval("(string-contains \"General Motors\" \"Motors\")").AsBool());
  EXPECT_FALSE(Eval("(string-contains \"abc\" \"z\")").AsBool());
  EXPECT_EQ(Eval("(string-downcase \"GM Rises\")").AsString(), "gm rises");
}

TEST_F(TdlTest, DefclassRegistersType) {
  Eval("(defclass story (object) ((headline :type string) (body :type string)))");
  ASSERT_TRUE(registry_.Has("story"));
  auto attrs = registry_.AllAttributes("story");
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size(), 2u);
  EXPECT_EQ((*attrs)[0].type_name, "string");
}

TEST_F(TdlTest, DefclassInheritance) {
  Eval("(defclass story (object) ((headline :type string)))");
  Eval("(defclass dj-story (story) ((dj-code :type string)))");
  EXPECT_TRUE(registry_.IsSubtype("dj-story", "story"));
  auto attrs = registry_.AllAttributes("dj-story");
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size(), 2u);
}

TEST_F(TdlTest, MakeInstanceAndSlots) {
  Eval("(defclass story (object) ((headline :type string) (words :type i64)))");
  Eval("(setq s (make-instance 'story :headline \"Chips!\" :words 99))");
  EXPECT_EQ(Eval("(slot-value s 'headline)").AsString(), "Chips!");
  EXPECT_EQ(Eval("(slot-value s 'words)").AsInt(), 99);
  Eval("(set-slot-value! s 'words 120)");
  EXPECT_EQ(Eval("(slot-value s 'words)").AsInt(), 120);
  EXPECT_EQ(Eval("(type-of s)").AsSymbol(), "story");
  EXPECT_FALSE(EvalError("(make-instance 'ghost)").ok());
  EXPECT_FALSE(EvalError("(make-instance 'story :nope 1)").ok());
}

TEST_F(TdlTest, GenericDispatchAlongHierarchy) {
  Eval("(defclass story (object) ((headline :type string)))");
  Eval("(defclass dj-story (story) ((dj-code :type string)))");
  Eval("(defmethod summarize ((s story)) (concat \"story: \" (slot-value s 'headline)))");
  Eval("(defmethod summarize ((s dj-story)) (concat \"DJ \" (slot-value s 'dj-code)))");
  EXPECT_EQ(Eval("(summarize (make-instance 'story :headline \"h\"))").AsString(), "story: h");
  EXPECT_EQ(Eval("(summarize (make-instance 'dj-story :dj-code \"X1\"))").AsString(), "DJ X1");
  // A subtype without its own method inherits the supertype's.
  Eval("(defclass rt-story (story) ())");
  EXPECT_EQ(Eval("(summarize (make-instance 'rt-story :headline \"r\"))").AsString(),
            "story: r");
}

TEST_F(TdlTest, GenericOnFundamentalsAndDefault) {
  Eval("(defmethod show ((x string)) (concat \"str:\" x))");
  Eval("(defmethod show ((x i64)) (concat \"int:\" x))");
  Eval("(defmethod show ((x object)) \"other\")");
  EXPECT_EQ(Eval("(show \"a\")").AsString(), "str:a");
  EXPECT_EQ(Eval("(show 7)").AsString(), "int:7");
  EXPECT_EQ(Eval("(show 2.5)").AsString(), "other");
}

TEST_F(TdlTest, NoApplicableMethodFails) {
  Eval("(defclass widget (object) ())");
  Eval("(defmethod render ((w widget)) \"ok\")");
  EXPECT_FALSE(EvalError("(render 42)").ok());
}

TEST_F(TdlTest, MethodRedefinitionReplaces) {
  Eval("(defclass w (object) ())");
  Eval("(defmethod f ((x w)) 1)");
  Eval("(defmethod f ((x w)) 2)");
  EXPECT_EQ(Eval("(f (make-instance 'w))").AsInt(), 2);
}

TEST_F(TdlTest, IntrospectionBuiltins) {
  Eval("(defclass story (object) ((headline :type string)))");
  Eval("(setq s (make-instance 'story :headline \"x\"))");
  EXPECT_TRUE(Eval("(isa? s 'object)").AsBool());
  EXPECT_TRUE(Eval("(isa? s 'story)").AsBool());
  EXPECT_EQ(Eval("(attributes 'story)").ToString(), "((headline string))");
  std::string described = Eval("(describe s)").AsString();
  EXPECT_NE(described.find("headline"), std::string::npos);
}

TEST_F(TdlTest, PrintCollectsOutput) {
  Eval("(print \"hello\" 42)");
  Eval("(print 'done)");
  EXPECT_EQ(interp_.TakeOutput(), "hello 42\ndone\n");
  EXPECT_EQ(interp_.TakeOutput(), "");
}

TEST_F(TdlTest, HostInterop) {
  int called_with = 0;
  interp_.DefineNative("host-fn", [&](std::vector<Datum>& args) -> Result<Datum> {
    called_with = static_cast<int>(args[0].AsInt());
    return Datum(int64_t{99});
  });
  interp_.DefineGlobal("host-const", Datum(int64_t{7}));
  EXPECT_EQ(Eval("(host-fn (+ host-const 1))").AsInt(), 99);
  EXPECT_EQ(called_with, 8);

  // Host calling a script-defined generic.
  Eval("(defclass t1 (object) ())");
  Eval("(defmethod greet ((x t1)) \"hi\")");
  auto obj = registry_.NewInstance("t1");
  ASSERT_TRUE(obj.ok());
  auto r = interp_.CallGeneric("greet", {Datum(*obj)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsString(), "hi");
}

TEST_F(TdlTest, TdlObjectsAreBusObjects) {
  // Classes defined in TDL create the same DataObjects the bus marshals (P3 + P2).
  Eval("(defclass reading (object) ((station :type string) (thickness :type f64)))");
  Eval("(setq r (make-instance 'reading :station \"litho8\" :thickness 8.25))");
  auto r = interp_.EvalProgram("r");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->is_object());
  DataObjectPtr obj = r->AsObject();
  EXPECT_EQ(obj->type_name(), "reading");
  EXPECT_EQ(obj->Get("station").AsString(), "litho8");
  EXPECT_DOUBLE_EQ(obj->Get("thickness").AsF64(), 8.25);
}

TEST_F(TdlTest, WhileGuardAgainstInfiniteLoop) {
  EXPECT_FALSE(EvalError("(while t 1)").ok());
}

TEST_F(TdlTest, UnboundSymbolError) {
  EXPECT_EQ(EvalError("unbound-thing").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ibus

namespace ibus {
namespace {

class TdlExtrasTest : public ::testing::Test {
 protected:
  TdlExtrasTest() : interp_(&registry_) {}
  Datum Eval(const std::string& src) {
    auto r = interp_.EvalProgram(src);
    EXPECT_TRUE(r.ok()) << src << " => " << r.status().ToString();
    return r.ok() ? r.take() : Datum();
  }
  TypeRegistry registry_;
  TdlInterp interp_;
};

TEST_F(TdlExtrasTest, WhenUnless) {
  EXPECT_EQ(Eval("(when (> 2 1) 'a 'b)").AsSymbol(), "b");
  EXPECT_TRUE(Eval("(when nil 'a)").is_nil());
  EXPECT_EQ(Eval("(unless nil 'a)").AsSymbol(), "a");
  EXPECT_TRUE(Eval("(unless t 'a)").is_nil());
}

TEST_F(TdlExtrasTest, Dolist) {
  EXPECT_EQ(Eval("(let ((acc 0)) (dolist (x '(1 2 3 4)) (setq acc (+ acc x))) acc)").AsInt(),
            10);
  EXPECT_TRUE(Eval("(dolist (x '()) x)").is_nil());
}

TEST_F(TdlExtrasTest, ListExtras) {
  EXPECT_EQ(Eval("(second '(a b c))").AsSymbol(), "b");
  EXPECT_TRUE(Eval("(second '(a))").is_nil());
  EXPECT_EQ(Eval("(last '(a b c))").AsSymbol(), "c");
  EXPECT_EQ(Eval("(assoc 'b '((a 1) (b 2)))").ToString(), "(b 2)");
  EXPECT_TRUE(Eval("(assoc 'z '((a 1)))").is_nil());
}

TEST_F(TdlExtrasTest, NumericExtras) {
  EXPECT_EQ(Eval("(min 3 1 2)").AsInt(), 1);
  EXPECT_EQ(Eval("(max 3 1 2)").AsInt(), 3);
  EXPECT_DOUBLE_EQ(Eval("(min 1.5 2)").AsDouble(), 1.5);
  EXPECT_EQ(Eval("(abs -7)").AsInt(), 7);
  EXPECT_DOUBLE_EQ(Eval("(abs -2.5)").AsDouble(), 2.5);
}

TEST_F(TdlExtrasTest, StringSplit) {
  EXPECT_EQ(Eval("(string-split \"a,b,c\" \",\")").ToString(), "(\"a\" \"b\" \"c\")");
  EXPECT_EQ(Eval("(string-split \"one\" \",\")").ToString(), "(\"one\")");
  EXPECT_EQ(Eval("(length (string-split \"a::b::\" \"::\"))").AsInt(), 3);
}

// ---------------------------------------------------------------------------------
// Reader positions and edge cases (the tdlcheck substrate)
// ---------------------------------------------------------------------------------

TEST(TdlReader, StampsLineAndColumnOnEveryDatum) {
  auto forms = ParseTdl("(foo 1\n  bar \"s\")");
  ASSERT_TRUE(forms.ok());
  const Datum& list = (*forms)[0];
  EXPECT_EQ(list.line(), 1);
  EXPECT_EQ(list.col(), 1);
  EXPECT_EQ(list.AsList()[0].line(), 1);
  EXPECT_EQ(list.AsList()[0].col(), 2);  // foo
  EXPECT_EQ(list.AsList()[2].line(), 2);
  EXPECT_EQ(list.AsList()[2].col(), 3);  // bar
  EXPECT_EQ(list.AsList()[3].line(), 2);
  EXPECT_EQ(list.AsList()[3].col(), 7);  // "s"
}

TEST(TdlReader, QuoteSugarCarriesTheQuotePosition) {
  auto form = ParseTdlOne("\n  'sym");
  ASSERT_TRUE(form.ok());
  EXPECT_EQ(form->ToString(), "(quote sym)");
  EXPECT_EQ(form->line(), 2);
  EXPECT_EQ(form->col(), 3);
}

TEST(TdlReader, ErrorsCarryLineAndColumn) {
  TdlParseError err;
  EXPECT_FALSE(ParseTdl("(print 1)\n  \"unterminated", &err).ok());
  EXPECT_EQ(err.line, 2);
  EXPECT_EQ(err.col, 3);
  EXPECT_EQ(err.what, "unterminated string");

  err = TdlParseError{};
  auto r = ParseTdl("(a\n  (b", &err);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(err.line, 2);
  EXPECT_EQ(err.col, 3);  // the innermost unterminated list
  EXPECT_NE(r.status().message().find("tdl parse error at 2:3"), std::string::npos)
      << r.status().ToString();
}

TEST(TdlReader, DeepNestingIsBoundedNotACrash) {
  std::string deep = std::string(300, '(') + "1" + std::string(300, ')');
  TdlParseError err;
  auto r = ParseTdl(deep, &err);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(err.what.find("nesting deeper than"), std::string::npos);
  std::string fine = std::string(50, '(') + "1" + std::string(50, ')');
  EXPECT_TRUE(ParseTdl(fine).ok());
}

TEST(TdlReader, EdgeInputsDoNotCrash) {
  auto empty = ParseTdl("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  auto comment_only = ParseTdl("; just a comment with no newline");
  ASSERT_TRUE(comment_only.ok());
  EXPECT_TRUE(comment_only->empty());

  auto trailing_comment = ParseTdl("(+ 1 2) ; trailing, no newline");
  ASSERT_TRUE(trailing_comment.ok());
  EXPECT_EQ(trailing_comment->size(), 1u);

  EXPECT_FALSE(ParseTdl("'").ok());       // quote with nothing to quote
  EXPECT_FALSE(ParseTdl("(a))").ok());    // stray closer after a valid form
  EXPECT_FALSE(ParseTdlOne("1 2").ok());  // exactly-one contract
  EXPECT_FALSE(ParseTdlOne("").ok());
}

}  // namespace
}  // namespace ibus
