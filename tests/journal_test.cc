// Tests for the write-ahead ledger (src/journal): block format edge cases, group
// commit and the Sync barrier, segment rotation, compaction, torn-tail and
// corrupt-block recovery, the certified-delivery ledger rewire (retire idempotency,
// id-horizon checkpoints), the repository WAL, journal metrics, and the kRecovery
// health event.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/bus/certified.h"
#include "src/journal/format.h"
#include "src/journal/journal.h"
#include "src/repo/repository.h"
#include "src/sim/simulator.h"
#include "src/sim/stable_store.h"
#include "src/telemetry/health.h"
#include "src/telemetry/metrics.h"
#include "tests/bus_fixture.h"

namespace ibus {
namespace {

using journal::Journal;
using journal::JournalConfig;
using journal::Lsn;

std::unique_ptr<Journal> MustOpen(StableStore* device, const JournalConfig& config = {}) {
  auto j = Journal::Open(device, config);
  EXPECT_TRUE(j.ok()) << j.status().ToString();
  return j.ok() ? j.take() : nullptr;
}

// --- Block format -------------------------------------------------------------------

TEST(JournalFormatTest, BlockRoundTripsIncludingZeroLengthPayload) {
  std::vector<Bytes> payloads = {ToBytes("alpha"), Bytes(), ToBytes("gamma")};
  Bytes block = journal::EncodeBlock(3, 17, payloads);
  journal::BlockHeader h;
  std::vector<journal::Record> recs;
  ASSERT_TRUE(journal::DecodeBlock(block, &h, &recs).ok());
  EXPECT_EQ(h.segment, 3u);
  EXPECT_EQ(h.first_lsn, 17u);
  EXPECT_EQ(h.count, 3u);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].lsn, 17u);
  EXPECT_EQ(ToString(recs[0].payload), "alpha");
  EXPECT_TRUE(recs[1].payload.empty());
  EXPECT_EQ(recs[2].lsn, 19u);
  EXPECT_EQ(ToString(recs[2].payload), "gamma");
}

TEST(JournalFormatTest, AnyDamageRejectsTheWholeBlock) {
  Bytes block = journal::EncodeBlock(0, 5, {ToBytes("payload-a"), ToBytes("payload-b")});
  journal::BlockHeader h;

  Bytes flipped = block;  // CRC mismatch in the first record's payload
  flipped[journal::kBlockHeaderBytes + journal::kRecordHeaderBytes] ^= 0xFF;
  std::vector<journal::Record> out;
  EXPECT_FALSE(journal::DecodeBlock(flipped, &h, &out).ok());
  EXPECT_TRUE(out.empty());  // a damaged block contributes nothing

  Bytes torn(block.begin(), block.end() - 1);  // truncated final record
  EXPECT_FALSE(journal::DecodeBlock(torn, &h, &out).ok());

  Bytes garbage = block;  // bytes past the declared records
  garbage.push_back(0);
  EXPECT_FALSE(journal::DecodeBlock(garbage, &h, &out).ok());

  Bytes bad_magic = block;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(journal::DecodeBlock(bad_magic, &h, &out).ok());

  Bytes header_only(block.begin(), block.begin() + journal::kBlockHeaderBytes - 2);
  EXPECT_FALSE(journal::DecodeBlock(header_only, &h, &out).ok());
}

// --- Group commit and the Sync barrier ----------------------------------------------

TEST(JournalTest, DeadlineFlushBatchesAppendsIntoOneBlock) {
  Simulator sim;
  MemoryStableStore device;
  JournalConfig jc;
  jc.sim = &sim;
  jc.flush_deadline_us = 2000;
  auto j = MustOpen(&device, jc);
  ASSERT_TRUE(j->Append(ToBytes("a")).ok());
  ASSERT_TRUE(j->Append(ToBytes("b")).ok());
  ASSERT_TRUE(j->Append(ToBytes("c")).ok());
  bool durable = false;
  j->WhenDurable(2, [&] { durable = true; });
  sim.RunFor(1000);
  EXPECT_EQ(device.NextSeq(), 0u);  // still buffered
  EXPECT_FALSE(durable);
  sim.RunFor(1100);  // past the 2ms deadline: one block, one barrier
  EXPECT_EQ(device.NextSeq(), 1u);
  EXPECT_EQ(device.syncs(), 1u);
  EXPECT_EQ(j->stats().flushes, 1u);
  EXPECT_FALSE(durable);  // the device write latency is still in flight
  sim.RunFor(600);
  EXPECT_TRUE(durable);
  EXPECT_EQ(j->durable_up_to(), 3u);
}

TEST(JournalTest, SizeThresholdFlushesWithoutWaitingForTheDeadline) {
  Simulator sim;
  MemoryStableStore device;
  JournalConfig jc;
  jc.sim = &sim;
  jc.flush_deadline_us = 5000;
  jc.flush_max_bytes = 64;
  auto j = MustOpen(&device, jc);
  ASSERT_TRUE(j->Append(Bytes(40, 0x42)).ok());  // 20 + 8 + 40 >= 64
  EXPECT_EQ(device.NextSeq(), 1u);
  EXPECT_EQ(device.syncs(), 1u);
}

TEST(JournalTest, WriteThroughSyncsOncePerAppend) {
  Simulator sim;
  MemoryStableStore device;
  JournalConfig jc;
  jc.sim = &sim;  // deadline 0 selects write-through
  auto j = MustOpen(&device, jc);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(j->Append(ToBytes("r" + std::to_string(i))).ok());
  }
  EXPECT_EQ(device.NextSeq(), 3u);
  EXPECT_EQ(device.syncs(), 3u);
  EXPECT_EQ(j->stats().flushes, 3u);
}

TEST(JournalTest, SyncIsADurabilityBarrier) {
  Simulator sim;
  MemoryStableStore device;
  JournalConfig jc;
  jc.sim = &sim;
  jc.flush_deadline_us = 5000;
  auto j = MustOpen(&device, jc);
  ASSERT_TRUE(j->Append(ToBytes("x")).ok());
  ASSERT_TRUE(j->Append(ToBytes("y")).ok());
  EXPECT_EQ(device.NextSeq(), 0u);
  ASSERT_TRUE(j->Sync().ok());
  EXPECT_EQ(device.NextSeq(), 1u);
  EXPECT_EQ(device.syncs(), 1u);
  EXPECT_EQ(j->durable_up_to(), 2u);
  bool fired = false;
  j->WhenDurable(1, [&] { fired = true; });
  EXPECT_TRUE(fired);  // already durable: fires inline
}

// --- Rotation, record-size limits, compaction ---------------------------------------

TEST(JournalTest, LargeRecordRotatesIntoAFreshSegmentInsteadOfSplitting) {
  MemoryStableStore device;
  JournalConfig jc;  // no sim: synchronous write-through (the tool path)
  jc.segment_max_bytes = 100;
  jc.max_record_bytes = 300;
  auto j = MustOpen(&device, jc);
  ASSERT_TRUE(j->Append(Bytes(40, 0x01)).ok());   // segment 0
  ASSERT_TRUE(j->Append(Bytes(200, 0x02)).ok());  // would burst segment 0: rotates
  EXPECT_EQ(j->stats().rotations, 1u);
  EXPECT_EQ(j->next_lsn(), 2u);

  // An append over max_record_bytes is rejected and consumes no LSN.
  EXPECT_FALSE(j->Append(Bytes(301, 0x03)).ok());
  EXPECT_EQ(j->next_lsn(), 2u);

  // Reopen: both records intact, LSNs continuous across the segment boundary.
  auto j2 = MustOpen(&device, jc);
  EXPECT_EQ(j2->stats().recovered_records, 2u);
  EXPECT_EQ(j2->stats().torn_tail_blocks, 0u);
  auto recs = j2->Records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].segment, 0u);
  EXPECT_EQ(recs[1].segment, 1u);
  EXPECT_EQ(recs[1].payload.size(), 200u);
  journal::VerifyReport rep = journal::VerifyDevice(device);
  EXPECT_TRUE(rep.clean()) << rep.ToString();
  EXPECT_EQ(rep.segments, 2u);
}

TEST(JournalTest, CompactRetiresWholeClosedSegmentsButNeverTheNewest) {
  MemoryStableStore device;
  JournalConfig jc;
  jc.segment_max_bytes = 100;  // every ~88-byte block gets its own segment
  auto j = MustOpen(&device, jc);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(j->Append(Bytes(60, static_cast<uint8_t>(i))).ok());
  }
  ASSERT_TRUE(j->Compact(0).ok());  // nothing retirable
  EXPECT_EQ(j->first_lsn(), 0u);
  EXPECT_EQ(j->stats().compactions, 0u);

  // Everything is retired, but the newest segment must survive: it carries the
  // LSN horizon across a reopen.
  ASSERT_TRUE(j->Compact(100).ok());
  EXPECT_EQ(j->first_lsn(), 3u);
  EXPECT_EQ(j->stats().compactions, 1u);
  ASSERT_EQ(j->Records().size(), 1u);
  EXPECT_EQ(j->Records()[0].lsn, 3u);

  auto j2 = MustOpen(&device, jc);
  EXPECT_EQ(j2->first_lsn(), 3u);
  EXPECT_EQ(j2->next_lsn(), 4u);  // id space did not reset
  ASSERT_TRUE(j2->Append(ToBytes("after-compact")).ok());
  EXPECT_EQ(j2->next_lsn(), 5u);
  EXPECT_TRUE(journal::VerifyDevice(device).clean());
}

// --- Damage recovery ----------------------------------------------------------------

// Copies `blocks` into a fresh device, optionally truncating the last block.
void FillDevice(MemoryStableStore* device, const std::vector<Bytes>& blocks) {
  for (const Bytes& b : blocks) {
    ASSERT_TRUE(device->Append(b).ok());
  }
}

TEST(JournalTest, CorruptMidFileBlockStopsReplayAtLastValidLsn) {
  MemoryStableStore device;
  auto j = MustOpen(&device);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(j->Append(ToBytes("record" + std::to_string(i))).ok());
  }
  auto blocks = device.ReadFrom(0);
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 4u);
  // Flip a payload byte in block 1: blocks 2 and 3 are intact but must NOT be
  // replayed — damage is a hard stop, never skipped over.
  (*blocks)[1][journal::kBlockHeaderBytes + journal::kRecordHeaderBytes] ^= 0xFF;
  MemoryStableStore damaged;
  FillDevice(&damaged, *blocks);

  // The read-only verifier sees one bad block (and the LSN gap it leaves).
  journal::VerifyReport rep = journal::VerifyDevice(damaged);
  EXPECT_FALSE(rep.clean());

  auto j2 = MustOpen(&damaged);
  EXPECT_EQ(j2->stats().recovered_records, 1u);  // record0 only
  EXPECT_EQ(j2->stats().torn_tail_blocks, 3u);   // the bad block and everything after
  EXPECT_EQ(j2->next_lsn(), 1u);
  EXPECT_EQ(damaged.NextSeq(), 1u);  // the damaged tail is physically gone
  // And the repaired device accepts clean appends.
  ASSERT_TRUE(j2->Append(ToBytes("fresh")).ok());
  EXPECT_TRUE(journal::VerifyDevice(damaged).clean());
  auto j3 = MustOpen(&damaged);
  EXPECT_EQ(j3->stats().torn_tail_blocks, 0u);
  EXPECT_EQ(j3->stats().recovered_records, 2u);
}

TEST(JournalTest, TornTailBlockIsDiscardedAndRepaired) {
  MemoryStableStore device;
  auto j = MustOpen(&device);
  ASSERT_TRUE(j->Append(ToBytes("keep-me")).ok());
  ASSERT_TRUE(j->Append(ToBytes("torn-away")).ok());
  auto blocks = device.ReadFrom(0);
  ASSERT_TRUE(blocks.ok());
  MemoryStableStore torn_device;
  ASSERT_TRUE(torn_device.Append((*blocks)[0]).ok());
  Bytes tail = (*blocks)[1];
  ASSERT_TRUE(
      torn_device.Append(Bytes(tail.begin(), tail.begin() + static_cast<ptrdiff_t>(tail.size() / 2)))
          .ok());

  auto j2 = MustOpen(&torn_device);
  EXPECT_EQ(j2->stats().torn_tail_blocks, 1u);
  EXPECT_EQ(j2->stats().recovered_records, 1u);
  EXPECT_EQ(ToString(j2->Records()[0].payload), "keep-me");
  ASSERT_TRUE(j2->Append(ToBytes("after-repair")).ok());
  EXPECT_TRUE(journal::VerifyDevice(torn_device).clean());
}

TEST(JournalTest, SurvivesRealFileRestart) {
  std::string path = ::testing::TempDir() + "/ibus_journal_test.log";
  std::remove(path.c_str());
  {
    auto store = FileStableStore::Open(path).take();
    auto j = MustOpen(store.get());
    ASSERT_TRUE(j->Append(ToBytes("one")).ok());
    ASSERT_TRUE(j->Append(ToBytes("two")).ok());
    ASSERT_TRUE(j->Sync().ok());
  }
  auto store = FileStableStore::Open(path).take();
  auto j = MustOpen(store.get());
  EXPECT_EQ(j->stats().recovered_records, 2u);
  auto recs = j->Records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(ToString(recs[1].payload), "two");
  std::remove(path.c_str());
}

// --- Metrics ------------------------------------------------------------------------

TEST(JournalTest, RegistersJournalMetrics) {
  telemetry::MetricsRegistry reg;
  MemoryStableStore device;
  JournalConfig jc;
  jc.metrics = &reg;
  auto j = MustOpen(&device, jc);
  ASSERT_TRUE(j->Append(ToBytes("a")).ok());
  ASSERT_TRUE(j->Append(ToBytes("b")).ok());
  EXPECT_EQ(reg.CounterValue(journal::kMetricJournalAppends), 2u);
  EXPECT_EQ(reg.CounterValue(journal::kMetricJournalFlushes), 2u);

  // Reopen with the same registry: the recovery counters move.
  JournalConfig jc2 = jc;
  auto j2 = MustOpen(&device, jc2);
  EXPECT_EQ(reg.CounterValue(journal::kMetricJournalRecovered), 2u);
  EXPECT_EQ(reg.CounterValue(journal::kMetricJournalTornTail), 0u);
}

// --- The kRecovery health event -----------------------------------------------------

TEST(JournalHealthTest, RecoveryEventKindRoundTrips) {
  telemetry::HealthEvent e;
  e.kind = telemetry::HealthEventKind::kRecovery;
  e.severity = telemetry::HealthSeverity::kClear;
  e.node = "orders-ledger";
  e.value = 3;
  e.threshold = 5;
  e.at_us = 12345;
  auto back = telemetry::HealthEvent::Unmarshal(e.Marshal());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->kind, telemetry::HealthEventKind::kRecovery);
  EXPECT_EQ(back->node, "orders-ledger");
  EXPECT_EQ(back->value, 3);
  EXPECT_EQ(telemetry::HealthEventKindName(telemetry::HealthEventKind::kRecovery), "recovery");
  EXPECT_EQ(telemetry::HealthSubject(telemetry::HealthEventKind::kRecovery, "orders-ledger"),
            "_ibus.health.recovery.orders-ledger");
}

// --- Certified delivery over the journal --------------------------------------------

class JournalCertifiedTest : public BusFixture {
 protected:
  JournalConfig WriteThrough() {
    JournalConfig jc;
    jc.sim = &sim_;
    return jc;
  }
};

// Regression (retire acks raced the crash): retires journaled before the crash must
// be honoured by the replay scan — the restarted publisher re-arms nothing, and the
// consumer never sees a duplicate.
TEST_F(JournalCertifiedTest, RetiresJournaledBeforeCrashAreNotReArmed) {
  SetUpBus(2);
  MemoryStableStore device;
  auto sub_client = MakeClient(1, "consumer");
  int delivered = 0;
  auto sub = CertifiedSubscriber::Create(sub_client.get(), "jobs.>", "c1",
                                         [&](const Message&) { ++delivered; })
                 .take();
  Settle(10 * kMillisecond);
  CertifiedConfig cfg;
  cfg.auto_checkpoint = false;  // keep the raw publish+retire history in the ledger
  {
    auto pub_client = MakeClient(0, "producer");
    auto ledger = MustOpen(&device, WriteThrough());
    auto pub =
        CertifiedPublisher::Create(pub_client.get(), ledger.get(), "jobs-ledger", cfg).take();
    ASSERT_TRUE(pub->Publish("jobs.run", ToBytes("j1")).ok());
    ASSERT_TRUE(pub->Publish("jobs.run", ToBytes("j2")).ok());
    Settle();
    EXPECT_EQ(pub->pending(), 0u);  // both acked; retire records hit the ledger
    EXPECT_EQ(delivered, 2);
  }
  auto pub_client = MakeClient(0, "producer");
  auto ledger = MustOpen(&device, WriteThrough());
  auto pub =
      CertifiedPublisher::Create(pub_client.get(), ledger.get(), "jobs-ledger", cfg).take();
  EXPECT_EQ(pub->pending(), 0u);  // the scan replayed the retires
  ASSERT_TRUE(pub->Recover().ok());
  EXPECT_EQ(pub->stats().recovered, 0u);
  Settle();
  EXPECT_EQ(delivered, 2);  // no duplicate delivery after recovery
}

// The drained-ledger checkpoint carries the id horizon: after compaction and a
// restart, new certified ids continue past the retired ones, so a long-lived
// consumer never mistakes a new message for a replayed duplicate.
TEST_F(JournalCertifiedTest, CheckpointPreservesIdHorizonAcrossRestart) {
  SetUpBus(2);
  MemoryStableStore device;
  auto sub_client = MakeClient(1, "consumer");
  std::vector<std::string> got;
  auto sub = CertifiedSubscriber::Create(
                 sub_client.get(), "jobs.>", "c1",
                 [&](const Message& m) { got.push_back(ToString(m.payload)); })
                 .take();
  Settle(10 * kMillisecond);
  {
    auto pub_client = MakeClient(0, "producer");
    auto ledger = MustOpen(&device, WriteThrough());
    auto pub = CertifiedPublisher::Create(pub_client.get(), ledger.get(), "jobs-ledger").take();
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE(pub->Publish("jobs.run", ToBytes("m" + std::to_string(i))).ok());
    }
    Settle(3 * kSecond);
    EXPECT_EQ(pub->pending(), 0u);  // drained: checkpoint written, history compacted
  }
  auto pub_client = MakeClient(0, "producer");
  auto ledger = MustOpen(&device, WriteThrough());
  auto pub = CertifiedPublisher::Create(pub_client.get(), ledger.get(), "jobs-ledger").take();
  ASSERT_TRUE(pub->Publish("jobs.run", ToBytes("m4")).ok());
  Settle();
  // If the restarted publisher had reset its id space, m4 would reuse a certified id
  // the consumer has already seen and be swallowed as a duplicate.
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got.back(), "m4");
}

TEST_F(JournalCertifiedTest, DoubleRecoverDeliversExactlyOnce) {
  SetUpBus(2);
  MemoryStableStore device;
  {
    auto pub_client = MakeClient(0, "producer");
    auto ledger = MustOpen(&device, WriteThrough());
    auto pub = CertifiedPublisher::Create(pub_client.get(), ledger.get(), "wip-ledger").take();
    ASSERT_TRUE(pub->Publish("wip.moves", ToBytes("p1")).ok());
    ASSERT_TRUE(pub->Publish("wip.moves", ToBytes("p2")).ok());
    Settle(300 * kMillisecond);  // no consumer yet: both stay pending
  }
  auto pub_client = MakeClient(0, "producer");
  auto ledger = MustOpen(&device, WriteThrough());
  auto pub = CertifiedPublisher::Create(pub_client.get(), ledger.get(), "wip-ledger").take();
  EXPECT_EQ(pub->pending(), 2u);
  ASSERT_TRUE(pub->Recover().ok());
  ASSERT_TRUE(pub->Recover().ok());  // idempotent: re-arming twice is harmless
  EXPECT_EQ(pub->stats().recovered, 2u);

  auto sub_client = MakeClient(1, "tracker");
  std::vector<std::string> got;
  auto sub = CertifiedSubscriber::Create(
                 sub_client.get(), "wip.moves", "tracker-1",
                 [&](const Message& m) { got.push_back(ToString(m.payload)); })
                 .take();
  Settle(3 * kSecond);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "p1");
  EXPECT_EQ(got[1], "p2");
  EXPECT_EQ(pub->pending(), 0u);
}

// --- The repository write-ahead ledger ----------------------------------------------

TEST(JournalRepositoryTest, WalReplayRebuildsTheDatabase) {
  TypeRegistry registry;
  TypeDescriptor story("story", "object");
  story.AddAttribute("headline", "string");
  story.AddAttribute("word_count", "i64");
  ASSERT_TRUE(registry.Define(story).ok());
  auto new_story = [&](const std::string& headline, int64_t words) {
    auto obj = registry.NewInstance("story").take();
    EXPECT_TRUE(obj->Set("headline", Value(headline)).ok());
    EXPECT_TRUE(obj->Set("word_count", Value(words)).ok());
    return obj;
  };

  MemoryStableStore device;
  std::string id_kept, id_deleted;
  {
    Database db;
    auto wal = MustOpen(&device);
    Repository repo(&registry, &db, wal.get());
    id_deleted = repo.Store(*new_story("first", 100)).take();
    id_kept = repo.Store(*new_story("second", 200)).take();
    ASSERT_TRUE(repo.Delete("story", id_deleted).ok());
  }  // crash: the database (in-memory) dies, the WAL device survives

  Database db;
  auto wal = MustOpen(&device);
  Repository repo(&registry, &db, wal.get());
  auto applied = repo.Recover();
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(*applied, 3u);  // two stores + one delete
  auto count = repo.Count("story");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  auto loaded = repo.Load("story", id_kept);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->Get("headline").AsString(), "second");
  EXPECT_FALSE(repo.Load("story", id_deleted).ok());

  // The id horizon recovered too: new stores never reuse a journaled id.
  auto id_new = repo.Store(*new_story("third", 300));
  ASSERT_TRUE(id_new.ok());
  EXPECT_NE(*id_new, id_kept);
  EXPECT_NE(*id_new, id_deleted);
}

}  // namespace
}  // namespace ibus
