// A top-level decoder that never decides what trailing bytes mean: garbage
// appended to a valid record decodes successfully and the corruption travels.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(tail_rec, version=0)
Bytes EncodeTailRec(uint64_t id) {
  WireWriter w;
  w.PutU64(id);
  return w.Take();
}

// wirecheck: codec(tail_rec, version=0)
Result<uint64_t> DecodeTailRec(const Bytes& in) {
  WireReader r(in);
  auto id = r.ReadU64();
  if (!id.ok()) {
    return DataLoss("tail_rec: truncated");
  }
  return *id;
}

}  // namespace fix
