// Twin of trailing_trigger: trailing bytes are rejected explicitly. Clean.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(sealed_rec, version=0)
Bytes EncodeSealedRec(uint64_t id) {
  WireWriter w;
  w.PutU64(id);
  return w.Take();
}

// wirecheck: codec(sealed_rec, version=0)
Result<uint64_t> DecodeSealedRec(const Bytes& in) {
  WireReader r(in);
  auto id = r.ReadU64();
  if (!id.ok()) {
    return DataLoss("sealed_rec: truncated");
  }
  if (!r.AtEnd()) {
    return DataLoss("sealed_rec: trailing bytes");
  }
  return *id;
}

}  // namespace fix
