// Twin of alloc_trigger: validate first, then size the allocation. Clean.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(frugal_rec, version=0)
Bytes EncodeFrugalRec(const std::vector<uint64_t>& items) {
  WireWriter w;
  w.PutVarint(items.size());
  for (uint64_t v : items) {
    w.PutU64(v);
  }
  return w.Take();
}

// wirecheck: codec(frugal_rec, version=0)
Result<std::vector<uint64_t>> DecodeFrugalRec(const Bytes& in) {
  WireReader r(in);
  auto count = r.ReadVarint();
  if (!count.ok()) {
    return DataLoss("frugal_rec: truncated");
  }
  if (*count > r.remaining()) {
    return DataLoss("frugal_rec: implausible count");
  }
  std::vector<uint64_t> items;
  items.reserve(*count);
  for (uint64_t i = 0; i < *count; i++) {
    auto v = r.ReadU64();
    if (!v.ok()) {
      return DataLoss("frugal_rec: truncated item");
    }
    items.push_back(*v);
  }
  if (!r.AtEnd()) {
    return DataLoss("frugal_rec: trailing bytes");
  }
  return items;
}

}  // namespace fix
