// Twin of annotation_trigger: every annotation is well-formed and attached,
// and a justified allow legitimately suppresses a rule the author has argued
// about. Clean.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(argued_rec, version=0)
Bytes EncodeArguedRec(uint64_t id) {
  WireWriter w;
  w.PutU64(id);
  return w.Take();
}

// wirecheck: codec(argued_rec, version=0)
Result<uint64_t> DecodeArguedRec(const Bytes& in) {
  WireReader r(in);
  auto id = r.ReadU64();
  uint64_t out = *id;  // wirecheck: allow(truncation-unsafe) -- the caller guarantees at least eight bytes before dispatching here
  if (!id.ok()) {
    return DataLoss("argued_rec: truncated");
  }
  if (!r.AtEnd()) {
    return DataLoss("argued_rec: trailing bytes");
  }
  return out;
}

}  // namespace fix
