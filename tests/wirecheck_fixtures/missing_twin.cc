// Twin of missing_trigger: both sides present and symmetric. Clean.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(paired_rec, version=0)
Bytes EncodePairedRec(uint64_t id) {
  WireWriter w;
  w.PutU64(id);
  return w.Take();
}

// wirecheck: codec(paired_rec, version=0)
Result<uint64_t> DecodePairedRec(const Bytes& in) {
  WireReader r(in);
  auto id = r.ReadU64();
  if (!id.ok()) {
    return DataLoss("paired_rec: truncated");
  }
  if (!r.AtEnd()) {
    return DataLoss("paired_rec: trailing bytes");
  }
  return *id;
}

}  // namespace fix
