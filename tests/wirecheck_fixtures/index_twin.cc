// Twin of index_trigger: the slot is range-checked before it indexes the
// table. Clean.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(ranged_rec, version=0)
Bytes EncodeRangedRec(uint8_t slot) {
  WireWriter w;
  w.PutU8(slot);
  return w.Take();
}

// wirecheck: codec(ranged_rec, version=0)
Result<int> DecodeRangedRec(const Bytes& in) {
  WireReader r(in);
  auto slot = r.ReadU8();
  if (!slot.ok()) {
    return DataLoss("ranged_rec: truncated");
  }
  if (*slot >= kSlotTableSize) {
    return DataLoss("ranged_rec: slot out of range");
  }
  if (!r.AtEnd()) {
    return DataLoss("ranged_rec: trailing bytes");
  }
  return kSlotTable[*slot];
}

}  // namespace fix
