// Twin of rawread_trigger: the length is checked against remaining() before it
// reaches ReadRaw. Clean.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(bounded_rec, version=0)
Bytes EncodeBoundedRec(const Bytes& body) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(body.size()));
  w.PutRaw(body);
  return w.Take();
}

// wirecheck: codec(bounded_rec, version=0)
Result<Bytes> DecodeBoundedRec(const Bytes& in) {
  WireReader r(in);
  auto len = r.ReadU32();
  if (!len.ok()) {
    return DataLoss("bounded_rec: truncated");
  }
  if (*len > r.remaining()) {
    return DataLoss("bounded_rec: length exceeds buffer");
  }
  auto body = r.ReadRaw(*len);
  if (!body.ok()) {
    return DataLoss("bounded_rec: truncated body");
  }
  if (!r.AtEnd()) {
    return DataLoss("bounded_rec: trailing bytes");
  }
  return body.take();
}

}  // namespace fix
