// The reserve() runs before the count is validated: the attacker picks the
// allocation size even though the loop itself is clamped correctly below.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(greedy_rec, version=0)
Bytes EncodeGreedyRec(const std::vector<uint64_t>& items) {
  WireWriter w;
  w.PutVarint(items.size());
  for (uint64_t v : items) {
    w.PutU64(v);
  }
  return w.Take();
}

// wirecheck: codec(greedy_rec, version=0)
Result<std::vector<uint64_t>> DecodeGreedyRec(const Bytes& in) {
  WireReader r(in);
  auto count = r.ReadVarint();
  if (!count.ok()) {
    return DataLoss("greedy_rec: truncated");
  }
  std::vector<uint64_t> items;
  items.reserve(*count);
  if (*count > r.remaining()) {
    return DataLoss("greedy_rec: implausible count");
  }
  for (uint64_t i = 0; i < *count; i++) {
    auto v = r.ReadU64();
    if (!v.ok()) {
      return DataLoss("greedy_rec: truncated item");
    }
    items.push_back(*v);
  }
  if (!r.AtEnd()) {
    return DataLoss("greedy_rec: trailing bytes");
  }
  return items;
}

}  // namespace fix
