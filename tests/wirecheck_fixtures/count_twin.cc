// Twin of count_trigger: the count is clamped against the remaining buffer
// before it bounds anything. Clean.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(clamped_rec, version=0)
Bytes EncodeClampedRec(const std::vector<uint64_t>& items) {
  WireWriter w;
  w.PutVarint(items.size());
  for (uint64_t v : items) {
    w.PutU64(v);
  }
  return w.Take();
}

// wirecheck: codec(clamped_rec, version=0)
Result<std::vector<uint64_t>> DecodeClampedRec(const Bytes& in) {
  WireReader r(in);
  auto count = r.ReadVarint();
  if (!count.ok()) {
    return DataLoss("clamped_rec: truncated");
  }
  if (*count > r.remaining()) {
    return DataLoss("clamped_rec: implausible count");
  }
  std::vector<uint64_t> items;
  for (uint64_t i = 0; i < *count; i++) {
    auto v = r.ReadU64();
    if (!v.ok()) {
      return DataLoss("clamped_rec: truncated item");
    }
    items.push_back(*v);
  }
  if (!r.AtEnd()) {
    return DataLoss("clamped_rec: trailing bytes");
  }
  return items;
}

}  // namespace fix
