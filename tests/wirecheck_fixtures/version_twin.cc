// Twin of version_trigger: the decoder rejects unknown versions before
// trusting any later field. Clean.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(gated_rec, version=2)
Bytes EncodeGatedRec(uint64_t id) {
  WireWriter w;
  w.PutU8(kGatedRecVersion);
  w.PutU64(id);
  return w.Take();
}

// wirecheck: codec(gated_rec, version=2)
Result<uint64_t> DecodeGatedRec(const Bytes& in) {
  WireReader r(in);
  auto version = r.ReadU8();
  if (!version.ok()) {
    return DataLoss("gated_rec: truncated");
  }
  if (*version != kGatedRecVersion) {
    return Unimplemented("gated_rec: unknown version");
  }
  auto id = r.ReadU64();
  if (!id.ok()) {
    return DataLoss("gated_rec: truncated");
  }
  if (!r.AtEnd()) {
    return DataLoss("gated_rec: trailing bytes");
  }
  return *id;
}

}  // namespace fix
