// Twin of recursion_trigger: the same mutual shape, but the decode path
// carries a depth limit that bounds the nesting. Clean.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(safe_node, version=0)
void EncodeSafeNode(const SafeNode& n, WireWriter* w) {
  w->PutU8(n.tag);
  w->PutBool(n.child != nullptr);
  if (n.child != nullptr) {
    EncodeSafeLink(*n.child, w);
  }
}

// wirecheck: codec(safe_link, version=0)
void EncodeSafeLink(const SafeLink& l, WireWriter* w) {
  w->PutU32(l.weight);
  EncodeSafeNode(l.node, w);
}

// wirecheck: codec(safe_node, version=0)
Result<SafeNode> DecodeSafeNode(WireReader* r, int depth) {
  if (depth > kMaxSafeDepth) {
    return DataLoss("safe_node: nesting too deep");
  }
  auto tag = r->ReadU8();
  auto has_child = r->ReadBool();
  if (!tag.ok() || !has_child.ok()) {
    return DataLoss("safe_node: truncated");
  }
  SafeNode out;
  out.tag = *tag;
  if (*has_child) {
    auto child = DecodeSafeLink(r, depth + 1);
    if (!child.ok()) {
      return child.status();
    }
    out.AdoptChild(child.take());
  }
  return out;
}

// wirecheck: codec(safe_link, version=0)
Result<SafeLink> DecodeSafeLink(WireReader* r, int depth) {
  if (depth > kMaxSafeDepth) {
    return DataLoss("safe_link: nesting too deep");
  }
  auto weight = r->ReadU32();
  if (!weight.ok()) {
    return DataLoss("safe_link: truncated");
  }
  auto node = DecodeSafeNode(r, depth + 1);
  if (!node.ok()) {
    return node.status();
  }
  SafeLink out;
  out.weight = *weight;
  out.node = node.take();
  return out;
}

}  // namespace fix
