// Broken annotations: a codec marker that attaches to nothing, an allow()
// without justification, and an allow() naming a rule that does not exist.
// None of the broken allows may suppress the real truncation bug below.

// wirecheck: codec(ghost_rec, version=0)

#include "src/wire/wire.h"

namespace fix {

struct BadRec {
  uint64_t id = 0;
};

// wirecheck: codec(bad_rec, version=0)
Bytes EncodeBadRec(uint64_t id) {
  WireWriter w;
  w.PutU64(id);
  return w.Take();
}

// wirecheck: codec(bad_rec, version=0)
Result<uint64_t> DecodeBadRec(const Bytes& in) {
  WireReader r(in);
  auto id = r.ReadU64();
  uint64_t out = *id;  // wirecheck: allow(truncation-unsafe)
  if (!id.ok()) {
    return DataLoss("bad_rec: truncated");
  }
  // wirecheck: allow(use-after-free) -- no such rule exists
  if (!r.AtEnd()) {
    return DataLoss("bad_rec: trailing bytes");
  }
  return out;
}

}  // namespace fix
