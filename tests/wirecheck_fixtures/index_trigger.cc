// A decoded byte indexes a fixed table without a range check: bytes 8..255
// read past the end of the table.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(pick_rec, version=0)
Bytes EncodePickRec(uint8_t slot) {
  WireWriter w;
  w.PutU8(slot);
  return w.Take();
}

// wirecheck: codec(pick_rec, version=0)
Result<int> DecodePickRec(const Bytes& in) {
  WireReader r(in);
  auto slot = r.ReadU8();
  if (!slot.ok()) {
    return DataLoss("pick_rec: truncated");
  }
  if (!r.AtEnd()) {
    return DataLoss("pick_rec: trailing bytes");
  }
  return kSlotTable[*slot];
}

}  // namespace fix
