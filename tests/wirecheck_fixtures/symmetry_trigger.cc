// Deliberately reordered field: Encode writes seq then name, Decode reads name
// then seq. The wire bytes cannot round-trip, and wirecheck must say so with
// both sides of the first mismatching op.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(reorder_rec, version=0)
Bytes EncodeReorderRec(uint32_t seq, const std::string& name) {
  WireWriter w;
  w.PutU32(seq);
  w.PutString(name);
  return w.Take();
}

// wirecheck: codec(reorder_rec, version=0)
Result<ReorderRec> DecodeReorderRec(const Bytes& in) {
  WireReader r(in);
  auto name = r.ReadString();
  auto seq = r.ReadU32();
  if (!name.ok() || !seq.ok()) {
    return DataLoss("reorder_rec: truncated");
  }
  if (!r.AtEnd()) {
    return DataLoss("reorder_rec: trailing bytes");
  }
  ReorderRec out;
  out.name = name.take();
  out.seq = *seq;
  return out;
}

}  // namespace fix
