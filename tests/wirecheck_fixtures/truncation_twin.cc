// Twin of truncation_trigger: ok() is consulted before any deref. Clean.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(patient_rec, version=0)
Bytes EncodePatientRec(uint64_t id) {
  WireWriter w;
  w.PutU64(id);
  return w.Take();
}

// wirecheck: codec(patient_rec, version=0)
Result<uint64_t> DecodePatientRec(const Bytes& in) {
  WireReader r(in);
  auto id = r.ReadU64();
  if (!id.ok()) {
    return DataLoss("patient_rec: truncated");
  }
  if (!r.AtEnd()) {
    return DataLoss("patient_rec: trailing bytes");
  }
  return *id;
}

}  // namespace fix
