// Twin of symmetry_trigger: same record with the fields in matching order on
// both sides. Must produce no findings.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(order_rec, version=0)
Bytes EncodeOrderRec(uint32_t seq, const std::string& name) {
  WireWriter w;
  w.PutU32(seq);
  w.PutString(name);
  return w.Take();
}

// wirecheck: codec(order_rec, version=0)
Result<OrderRec> DecodeOrderRec(const Bytes& in) {
  WireReader r(in);
  auto seq = r.ReadU32();
  auto name = r.ReadString();
  if (!seq.ok() || !name.ok()) {
    return DataLoss("order_rec: truncated");
  }
  if (!r.AtEnd()) {
    return DataLoss("order_rec: trailing bytes");
  }
  OrderRec out;
  out.seq = *seq;
  out.name = name.take();
  return out;
}

}  // namespace fix
