// ReadRaw sized by a decoded length that was never validated against the
// remaining buffer.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(blob_rec, version=0)
Bytes EncodeBlobRec(const Bytes& body) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(body.size()));
  w.PutRaw(body);
  return w.Take();
}

// wirecheck: codec(blob_rec, version=0)
Result<Bytes> DecodeBlobRec(const Bytes& in) {
  WireReader r(in);
  auto len = r.ReadU32();
  if (!len.ok()) {
    return DataLoss("blob_rec: truncated");
  }
  auto body = r.ReadRaw(*len);
  if (!body.ok()) {
    return DataLoss("blob_rec: truncated body");
  }
  if (!r.AtEnd()) {
    return DataLoss("blob_rec: trailing bytes");
  }
  return body.take();
}

}  // namespace fix
