// A versioned codec whose decoder reads the version byte but never compares it:
// a v3 record would be decoded with v2 semantics and silently corrupt fields.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(ver_rec, version=2)
Bytes EncodeVerRec(uint64_t id) {
  WireWriter w;
  w.PutU8(kVerRecVersion);
  w.PutU64(id);
  return w.Take();
}

// wirecheck: codec(ver_rec, version=2)
Result<uint64_t> DecodeVerRec(const Bytes& in) {
  WireReader r(in);
  auto version = r.ReadU8();
  auto id = r.ReadU64();
  if (!version.ok() || !id.ok()) {
    return DataLoss("ver_rec: truncated");
  }
  if (!r.AtEnd()) {
    return DataLoss("ver_rec: trailing bytes");
  }
  return *id;
}

}  // namespace fix
