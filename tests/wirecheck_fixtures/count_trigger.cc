// Deliberately unclamped count: the decoder trusts a varint straight off the
// wire to bound its item loop. A hostile count spins the loop (and every
// ReadU64 failure path) 2^64 times in the worst shape of this bug.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(count_rec, version=0)
Bytes EncodeCountRec(const std::vector<uint64_t>& items) {
  WireWriter w;
  w.PutVarint(items.size());
  for (uint64_t v : items) {
    w.PutU64(v);
  }
  return w.Take();
}

// wirecheck: codec(count_rec, version=0)
Result<std::vector<uint64_t>> DecodeCountRec(const Bytes& in) {
  WireReader r(in);
  auto count = r.ReadVarint();
  if (!count.ok()) {
    return DataLoss("count_rec: truncated");
  }
  std::vector<uint64_t> items;
  for (uint64_t i = 0; i < *count; i++) {
    auto v = r.ReadU64();
    if (!v.ok()) {
      return DataLoss("count_rec: truncated item");
    }
    items.push_back(*v);
  }
  if (!r.AtEnd()) {
    return DataLoss("count_rec: trailing bytes");
  }
  return items;
}

}  // namespace fix
