// The decoded Result is dereferenced before its ok() check: on truncated input
// the deref is undefined behavior, not an error return.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(eager_rec, version=0)
Bytes EncodeEagerRec(uint64_t id) {
  WireWriter w;
  w.PutU64(id);
  return w.Take();
}

// wirecheck: codec(eager_rec, version=0)
Result<uint64_t> DecodeEagerRec(const Bytes& in) {
  WireReader r(in);
  auto id = r.ReadU64();
  uint64_t out = *id;
  if (!id.ok()) {
    return DataLoss("eager_rec: truncated");
  }
  if (!r.AtEnd()) {
    return DataLoss("eager_rec: trailing bytes");
  }
  return out;
}

}  // namespace fix
