// A codec annotation with only the encode side present: the schema cannot be
// proven round-trippable because there is nothing to prove it against.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(lonely_rec, version=0)
Bytes EncodeLonelyRec(uint64_t id) {
  WireWriter w;
  w.PutU64(id);
  return w.Take();
}

}  // namespace fix
