// Two codecs that reference each other with no depth limit anywhere on the
// decode path: a crafted record nests until the stack dies.
#include "src/wire/wire.h"

namespace fix {

// wirecheck: codec(tree_node, version=0)
void EncodeTreeNode(const TreeNode& n, WireWriter* w) {
  w->PutU8(n.tag);
  w->PutBool(n.child != nullptr);
  if (n.child != nullptr) {
    EncodeTreeLink(*n.child, w);
  }
}

// wirecheck: codec(tree_link, version=0)
void EncodeTreeLink(const TreeLink& l, WireWriter* w) {
  w->PutU32(l.weight);
  EncodeTreeNode(l.node, w);
}

// wirecheck: codec(tree_node, version=0)
Result<TreeNode> DecodeTreeNode(WireReader* r) {
  auto tag = r->ReadU8();
  auto has_child = r->ReadBool();
  if (!tag.ok() || !has_child.ok()) {
    return DataLoss("tree_node: truncated");
  }
  TreeNode out;
  out.tag = *tag;
  if (*has_child) {
    auto child = DecodeTreeLink(r);
    if (!child.ok()) {
      return child.status();
    }
    out.AdoptChild(child.take());
  }
  return out;
}

// wirecheck: codec(tree_link, version=0)
Result<TreeLink> DecodeTreeLink(WireReader* r) {
  auto weight = r->ReadU32();
  if (!weight.ok()) {
    return DataLoss("tree_link: truncated");
  }
  auto node = DecodeTreeNode(r);
  if (!node.ok()) {
    return node.status();
  }
  TreeLink out;
  out.weight = *weight;
  out.node = node.take();
  return out;
}

}  // namespace fix
