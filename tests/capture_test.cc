// Tests for the wire-capture plane (src/capture + the sim::Network tap points):
// the fate taxonomy at every rejection/loss site, FaultPlan duplication and jitter
// visibility (satellite requirements), the subject-filter grammar, capture-file and
// pcap serialization, the reliable-stream reassembler, and the bandwidth accountant.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/capture/bandwidth.h"
#include "src/capture/capture.h"
#include "src/capture/demo.h"
#include "src/capture/dissect.h"
#include "src/capture/pcap.h"
#include "src/capture/reassembly.h"
#include "src/capture/report.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/subject/subject.h"

namespace ibus {
namespace {

using capture::CaptureBuffer;

uint64_t CountFate(const std::vector<CapturedFrame>& frames, FrameFate fate) {
  uint64_t n = 0;
  for (const CapturedFrame& f : frames) {
    n += f.fate == fate ? 1 : 0;
  }
  return n;
}

// Two hosts, direct sockets, one fate per rejection/loss site. The tap must see
// every frame that touched (or was refused by) the medium with the right reason,
// and the network's net.drop.* counters must mirror the stats struct.
TEST(CaptureTap, FateTaxonomyAndDropCounters) {
  Simulator sim;
  Network net(&sim, 42);
  SegmentId seg = net.AddSegment();
  HostId a = net.AddHost("a", seg);
  HostId b = net.AddHost("b", seg);
  uint64_t received = 0;
  auto sa = net.OpenSocket(a, 100, [](const Datagram&) {});
  auto sb = net.OpenSocket(b, 100, [&](const Datagram&) { received++; });
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());

  CaptureBuffer buf;
  net.AttachTap(&buf);

  // Delivered.
  EXPECT_TRUE((*sa)->SendTo(b, 100, ToBytes("hello")).ok());
  sim.RunFor(10000);
  EXPECT_EQ(received, 1u);
  EXPECT_EQ(CountFate(buf.frames(), FrameFate::kDelivered), 1u);

  // No listener on the destination port.
  EXPECT_TRUE((*sa)->SendTo(b, 999, ToBytes("void")).ok());
  sim.RunFor(10000);
  EXPECT_EQ(CountFate(buf.frames(), FrameFate::kDroppedNoListener), 1u);

  // Receiver host down.
  net.SetHostUp(b, false);
  EXPECT_TRUE((*sa)->SendTo(b, 100, ToBytes("down")).ok());
  sim.RunFor(10000);
  net.SetHostUp(b, true);
  EXPECT_EQ(CountFate(buf.frames(), FrameFate::kDroppedPartition), 1u);

  // Partition boundary.
  net.SetPartitionGroups({{a, 0}, {b, 1}});
  EXPECT_TRUE((*sa)->SendTo(b, 100, ToBytes("split")).ok());
  sim.RunFor(10000);
  net.SetPartitionGroups({});
  EXPECT_EQ(CountFate(buf.frames(), FrameFate::kDroppedPartition), 2u);

  // MTU rejection: the send fails AND the tap records the refused frame.
  Bytes huge(net.MaxDatagramPayload(a) + 1, 0x5A);
  EXPECT_FALSE((*sa)->SendTo(b, 100, huge).ok());
  EXPECT_EQ(CountFate(buf.frames(), FrameFate::kMtuRejected), 1u);

  // FaultPlan loss: dropped before ever occupying the medium (wire_us == 0).
  FaultPlan lossy;
  lossy.drop_prob = 1.0;
  net.SetFaultPlan(seg, lossy);
  EXPECT_TRUE((*sa)->SendTo(b, 100, ToBytes("lost")).ok());
  sim.RunFor(10000);
  net.SetFaultPlan(seg, FaultPlan());
  ASSERT_EQ(CountFate(buf.frames(), FrameFate::kDroppedFault), 1u);
  for (const CapturedFrame& f : buf.frames()) {
    if (f.fate == FrameFate::kDroppedFault) {
      EXPECT_EQ(f.wire_us, 0);
    }
  }

  net.DetachTap(&buf);

  // The telemetry mirrors agree with the stats struct, reason by reason.
  const Network::Stats& st = net.stats();
  EXPECT_EQ(st.frames_dropped_fault, 1u);
  EXPECT_EQ(st.frames_dropped_mtu, 1u);
  EXPECT_EQ(st.frames_dropped_down, 2u);
  EXPECT_EQ(st.frames_dropped_no_listener, 1u);
  EXPECT_EQ(net.metrics()->GetCounter(kMetricNetDropFault)->value(),
            st.frames_dropped_fault);
  EXPECT_EQ(net.metrics()->GetCounter(kMetricNetDropMtu)->value(),
            st.frames_dropped_mtu);
  EXPECT_EQ(net.metrics()->GetCounter(kMetricNetDropPartition)->value(),
            st.frames_dropped_down);
  EXPECT_EQ(net.metrics()->GetCounter(kMetricNetDropNoListener)->value(),
            st.frames_dropped_no_listener);
}

// Drop counters advance even with no tap attached (they are stats mirrors, not
// capture state), while capture ids only advance under a tap.
TEST(CaptureTap, CountersAdvanceWithoutTap) {
  Simulator sim;
  Network net(&sim, 42);
  SegmentId seg = net.AddSegment();
  HostId a = net.AddHost("a", seg);
  HostId b = net.AddHost("b", seg);
  auto sa = net.OpenSocket(a, 100, [](const Datagram&) {});
  ASSERT_TRUE(sa.ok());
  EXPECT_TRUE((*sa)->SendTo(b, 999, ToBytes("void")).ok());
  sim.RunFor(10000);
  EXPECT_EQ(net.metrics()->GetCounter(kMetricNetDropNoListener)->value(), 1u);
}

// Satellite: a FaultPlan-duplicated frame yields two distinct capture records —
// the original and a `duplicated`-fate copy sharing the tx_id (the medium was
// occupied once) but with its own capture index and zero wire time.
TEST(CaptureTap, FaultDuplicatesGetDistinctRecords) {
  Simulator sim;
  Network net(&sim, 42);
  SegmentId seg = net.AddSegment();
  HostId a = net.AddHost("a", seg);
  HostId b = net.AddHost("b", seg);
  uint64_t received = 0;
  auto sa = net.OpenSocket(a, 100, [](const Datagram&) {});
  auto sb = net.OpenSocket(b, 100, [&](const Datagram&) { received++; });
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());

  CaptureBuffer buf;
  net.AttachTap(&buf);
  FaultPlan dupy;
  dupy.dup_prob = 1.0;
  net.SetFaultPlan(seg, dupy);
  EXPECT_TRUE((*sa)->SendTo(b, 100, ToBytes("twice")).ok());
  sim.RunFor(10000);
  net.DetachTap(&buf);

  EXPECT_EQ(received, 2u);
  ASSERT_EQ(buf.frames().size(), 2u);
  const CapturedFrame* original = nullptr;
  const CapturedFrame* copy = nullptr;
  for (const CapturedFrame& f : buf.frames()) {
    (f.duplicate ? copy : original) = &f;
  }
  ASSERT_NE(original, nullptr);
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->fate, FrameFate::kDuplicated);
  EXPECT_NE(copy->index, original->index);
  EXPECT_EQ(copy->tx_id, original->tx_id);  // one medium transmission
  EXPECT_EQ(copy->wire_us, 0);
  EXPECT_GT(original->wire_us, 0);
}

// Back-to-back sends on the shared half-duplex medium: the second frame waits and
// is recorded with the queued_delay fate and a nonzero queued_us.
TEST(CaptureTap, QueuedDelayFate) {
  Simulator sim;
  Network net(&sim, 42);
  SegmentId seg = net.AddSegment();
  HostId a = net.AddHost("a", seg);
  HostId b = net.AddHost("b", seg);
  auto sa = net.OpenSocket(a, 100, [](const Datagram&) {});
  auto sb = net.OpenSocket(b, 100, [](const Datagram&) {});
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  CaptureBuffer buf;
  net.AttachTap(&buf);
  EXPECT_TRUE((*sa)->SendTo(b, 100, Bytes(1000, 1)).ok());
  EXPECT_TRUE((*sa)->SendTo(b, 100, Bytes(1000, 2)).ok());
  sim.RunFor(100000);
  net.DetachTap(&buf);
  ASSERT_EQ(buf.frames().size(), 2u);
  EXPECT_EQ(buf.frames()[0].fate, FrameFate::kDelivered);
  EXPECT_EQ(buf.frames()[1].fate, FrameFate::kQueuedDelay);
  EXPECT_GT(buf.frames()[1].queued_us, 0);
}

// The capture filter compiles with the real subject grammar: malformed patterns are
// rejected exactly as Subscribe would reject them, and a filtered capture keeps
// only frames carrying a matching subject.
TEST(CaptureFilter, UsesRealSubjectGrammar) {
  CaptureBuffer buf;
  EXPECT_TRUE(buf.SetFilter("orders.>").ok());
  EXPECT_TRUE(buf.SetFilter("market.*.gmc").ok());
  EXPECT_FALSE(buf.SetFilter("bad..pattern").ok());
  EXPECT_FALSE(buf.SetFilter(">x").ok());
  EXPECT_TRUE(buf.SetFilter("").ok());  // clears
}

TEST(CaptureFilter, KeepsOnlyMatchingSubjects) {
  CaptureBuffer all;
  CaptureBuffer orders;
  ASSERT_TRUE(orders.SetFilter("orders.>").ok());

  class Fanout : public NetworkTap {
   public:
    explicit Fanout(std::vector<NetworkTap*> taps) : taps_(std::move(taps)) {}
    void OnFrame(const CapturedFrame& f) override {
      for (NetworkTap* t : taps_) {
        t->OnFrame(f);
      }
    }

   private:
    std::vector<NetworkTap*> taps_;
  } fanout({&all, &orders});

  auto trace = capture::RunCertifiedWanCaptureScenario(42, &fanout);
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(trace.front().rfind("error:", 0), 0u) << trace.front();
  ASSERT_GT(all.frames().size(), 0u);
  ASSERT_GT(orders.frames().size(), 0u);
  EXPECT_LT(orders.frames().size(), all.frames().size());
  EXPECT_EQ(orders.frames_seen(), all.frames().size());
  for (const CapturedFrame& f : orders.frames()) {
    bool matched = false;
    for (const std::string& s : capture::PeekSubjects(f.payload)) {
      matched = matched || SubjectMatches("orders.>", s);
    }
    EXPECT_TRUE(matched) << capture::CanonicalRecord(f);
  }
}

// The demo scenario's capture replays bit-identically for a seed and diverges for a
// different one (mirrors sim_replay_check scenario 6, but at the library level).
TEST(CaptureDemo, CaptureHashReplaysBitIdentically) {
  CaptureBuffer one, two, other;
  capture::RunCertifiedWanCaptureScenario(42, &one);
  capture::RunCertifiedWanCaptureScenario(42, &two);
  capture::RunCertifiedWanCaptureScenario(59, &other);
  ASSERT_GT(one.frames().size(), 0u);
  EXPECT_EQ(one.Hash(), two.Hash());
  EXPECT_EQ(one.frames().size(), two.frames().size());
  EXPECT_NE(one.Hash(), other.Hash());
}

// The demo run exercises the interesting fates: faults drop frames, the certified
// layer retransmits, and the reassembler ties each retransmit back to the specific
// dropped records it repaired.
TEST(CaptureDemo, ReassemblerAttributesRetransmitsToDrops) {
  CaptureBuffer buf;
  capture::RunCertifiedWanCaptureScenario(42, &buf);
  EXPECT_GT(CountFate(buf.frames(), FrameFate::kDroppedFault), 0u);

  capture::ReassemblyReport r = capture::Reassemble(buf.frames());
  EXPECT_GT(r.data_records, 0u);
  EXPECT_GT(r.total_drops, 0u);
  ASSERT_GT(r.retransmitted_seqs, 0u);
  bool attributed = false;
  for (const auto& [key, tl] : r.seqs) {
    if (!tl.retransmitted) {
      continue;
    }
    EXPECT_GT(tl.transmissions, 1u);
    if (!tl.caused_by_drops.empty()) {
      attributed = true;
      // Every repaired-drop reference must point at a real dropped record of the
      // same (stream, seq).
      for (uint64_t idx : tl.caused_by_drops) {
        bool found = false;
        for (const CapturedFrame& f : buf.frames()) {
          if (f.index != idx) {
            continue;
          }
          found = true;
          EXPECT_TRUE(f.fate == FrameFate::kDroppedFault ||
                      f.fate == FrameFate::kDroppedPartition)
              << capture::CanonicalRecord(f);
        }
        EXPECT_TRUE(found) << "dangling drop index " << idx;
      }
    }
  }
  EXPECT_TRUE(attributed);
  // Loss-caused gaps are annotated as filled via retransmit.
  EXPECT_GT(r.gaps_filled_by_retransmit, 0u);
}

// Satellite: jitter-only faults (no loss) reorder reliable data frames, and the
// reassembler's gap annotations show holes filled by plain reordering — no
// retransmit involved.
TEST(CaptureDemo, JitterReorderingShowsInGapAnnotations) {
  Simulator sim;
  Network net(&sim, 42);
  SegmentId seg = net.AddSegment();
  HostId a = net.AddHost("a", seg);
  HostId b = net.AddHost("b", seg);
  auto da = BusDaemon::Start(&net, a, BusConfig());
  auto db = BusDaemon::Start(&net, b, BusConfig());
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(db.ok());
  auto sub = BusClient::Connect(&net, b, "sub");
  auto pub = BusClient::Connect(&net, a, "pub");
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(pub.ok());
  uint64_t received = 0;
  ASSERT_TRUE((*sub)->Subscribe("x.>", [&](const Message&) { received++; }).ok());
  sim.RunFor(200 * kMillisecond);

  CaptureBuffer buf;
  net.AttachTap(&buf);
  FaultPlan jitter;
  jitter.jitter_us = 5000;  // far larger than the inter-publish spacing
  net.SetFaultPlan(seg, jitter);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE((*pub)->Publish("x.tick", ToBytes("m" + std::to_string(i))).ok());
    sim.RunFor(200);
  }
  sim.RunFor(2 * kSecond);
  net.DetachTap(&buf);
  EXPECT_GT(received, 0u);

  capture::ReassemblyReport r = capture::Reassemble(buf.frames());
  EXPECT_EQ(r.total_drops, 0u);
  EXPECT_GT(r.gaps_filled_by_reorder, 0u);
  for (const capture::GapAnnotation& g : r.gaps) {
    EXPECT_TRUE(g.filled);
    EXPECT_FALSE(g.via_retransmit);
    EXPECT_GT(g.overtaken_by, g.seq);
  }
}

// Capture-file round trip: serialize -> deserialize preserves every record (the
// canonical hash covers all fields the reports read).
TEST(CaptureFile, RoundTripPreservesHash) {
  CaptureBuffer buf;
  capture::RunCertifiedWanCaptureScenario(42, &buf);
  ASSERT_GT(buf.frames().size(), 0u);

  Bytes blob = capture::SerializeCapture(buf.frames());
  auto back = capture::DeserializeCapture(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->size(), buf.frames().size());
  EXPECT_EQ(CaptureBuffer::CaptureHash(*back), buf.Hash());

  const std::string path = "capture_roundtrip_test.ibcp";
  ASSERT_TRUE(capture::WriteCaptureFile(path, buf.frames()).ok());
  auto loaded = capture::ReadCaptureFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(CaptureBuffer::CaptureHash(*loaded), buf.Hash());
  std::remove(path.c_str());
}

TEST(CaptureFile, RejectsCorruptHeaders) {
  EXPECT_FALSE(capture::DeserializeCapture(Bytes()).ok());
  EXPECT_FALSE(capture::DeserializeCapture(ToBytes("not a capture")).ok());
  Bytes blob = capture::SerializeCapture({});
  ASSERT_TRUE(capture::DeserializeCapture(blob).ok());
  blob[0] ^= 0xFF;  // break the magic
  EXPECT_FALSE(capture::DeserializeCapture(blob).ok());
}

// pcap export: microsecond magic, LINKTYPE_USER0, one packet per record with the
// 44-byte sim-metadata pseudo-header, in fate-time order.
TEST(CapturePcap, SerializesStandardPcap) {
  CaptureBuffer buf;
  capture::RunCertifiedWanCaptureScenario(42, &buf);
  const std::vector<CapturedFrame>& frames = buf.frames();
  ASSERT_GT(frames.size(), 0u);

  Bytes pcap = capture::SerializePcap(frames);
  ASSERT_GE(pcap.size(), 24u);
  auto u32 = [&](size_t off) {
    return static_cast<uint32_t>(pcap[off]) |
           static_cast<uint32_t>(pcap[off + 1]) << 8 |
           static_cast<uint32_t>(pcap[off + 2]) << 16 |
           static_cast<uint32_t>(pcap[off + 3]) << 24;
  };
  EXPECT_EQ(u32(0), capture::kPcapMagic);
  EXPECT_EQ(u32(20), capture::kPcapLinkType);

  // Walk the packet records: count them and check monotonic timestamps.
  size_t off = 24, packets = 0;
  uint64_t prev_ts = 0;
  while (off + 16 <= pcap.size()) {
    uint64_t ts = static_cast<uint64_t>(u32(off)) * 1000000 + u32(off + 4);
    uint32_t incl = u32(off + 8);
    EXPECT_GE(incl, capture::kPcapMetaSize);
    EXPECT_GE(ts, prev_ts);
    prev_ts = ts;
    off += 16 + incl;
    packets++;
  }
  EXPECT_EQ(off, pcap.size());
  EXPECT_EQ(packets, frames.size());
}

// The bandwidth accountant's invariants on the demo capture: per-segment shares sum
// exactly to the busy time and byte totals (integer math, no float drift), medium
// time is deduplicated per transmission, and the lossy certified run shows a
// nonzero retransmit share plus nonzero internal (_ibus.) traffic.
TEST(CaptureBandwidth, SharesAreExactAndRetransmitIsNonzero) {
  CaptureBuffer buf;
  capture::RunCertifiedWanCaptureScenario(42, &buf);
  capture::ReassemblyReport r = capture::Reassemble(buf.frames());
  capture::BandwidthReport bw = capture::AccountBandwidth(buf.frames(), r);

  ASSERT_GT(bw.segments.size(), 0u);
  for (const capture::SegmentBandwidth& s : bw.segments) {
    EXPECT_EQ(s.goodput.us + s.envelope.us + s.frame_overhead.us +
                  s.retransmit.us + s.internal.us,
              s.busy_us)
        << "segment " << s.segment;
    EXPECT_EQ(s.goodput.bytes + s.envelope.bytes + s.frame_overhead.bytes +
                  s.retransmit.bytes + s.internal.bytes,
              s.total_bytes)
        << "segment " << s.segment;
    EXPECT_LE(s.transmissions, s.records);
  }
  EXPECT_GT(bw.total.retransmit.us, 0u);
  EXPECT_GT(bw.total.internal.us, 0u);
  EXPECT_GT(bw.total.goodput.bytes, 0u);
  EXPECT_GT(bw.total.frame_overhead.bytes, 0u);
}

// Reports are pure functions of the records: byte-identical across calls, and the
// JSONL stream ends with the capture hash line.
TEST(CaptureReport, RendersDeterministically) {
  CaptureBuffer buf;
  capture::RunCertifiedWanCaptureScenario(42, &buf);
  capture::ReportOptions opts;
  opts.max_frames = 5;
  opts.with_trees = true;
  EXPECT_EQ(capture::TextReport(buf.frames(), opts),
            capture::TextReport(buf.frames(), opts));
  std::string jsonl = capture::JsonlReport(buf.frames());
  EXPECT_EQ(jsonl, capture::JsonlReport(buf.frames()));
  EXPECT_NE(jsonl.find("{\"capture_hash\": " + std::to_string(buf.Hash()) + "}"),
            std::string::npos);
}

// The dissector understands both application and reserved-namespace traffic.
TEST(CaptureDissect, ClassifiesApplicationAndInternalTraffic) {
  CaptureBuffer buf;
  capture::RunCertifiedWanCaptureScenario(42, &buf);
  bool saw_orders = false, saw_internal = false, saw_heartbeat = false;
  for (const CapturedFrame& f : buf.frames()) {
    capture::Dissection d = capture::DissectFrame(f.payload);
    EXPECT_TRUE(d.parsed) << capture::CanonicalRecord(f);
    for (const std::string& s : d.subjects) {
      if (s == "orders.new") {
        saw_orders = true;
        EXPECT_FALSE(d.internal);
      }
    }
    saw_internal = saw_internal || d.internal;
    saw_heartbeat = saw_heartbeat || d.kind == "heartbeat";
  }
  EXPECT_TRUE(saw_orders);
  EXPECT_TRUE(saw_internal);   // certified acks ride _ibus.cert.*
  EXPECT_TRUE(saw_heartbeat);  // reliable-channel control traffic
}

}  // namespace
}  // namespace ibus
