#include "src/prof/stages.h"

#include <algorithm>

namespace ibus::prof {

using telemetry::HopKind;
using telemetry::HopRecord;

const char* StageName(StageKind k) {
  switch (k) {
    case StageKind::kPublishMarshal:
      return "publish_marshal";
    case StageKind::kDaemonQueue:
      return "daemon_queue";
    case StageKind::kMediumTransit:
      return "medium_transit";
    case StageKind::kRouterForward:
      return "router_forward";
    case StageKind::kRouterRepublish:
      return "router_republish";
    case StageKind::kRetransmitRepair:
      return "retransmit_repair";
    case StageKind::kDeliverDispatch:
      return "deliver_dispatch";
    case StageKind::kUnattributed:
      return "unattributed";
  }
  return "unknown";
}

std::string StageMetricName(StageKind k) { return std::string("prof.stage.") + StageName(k); }

int64_t StageBreakdown::total_us() const {
  int64_t sum = 0;
  for (size_t i = 0; i < kStageCount; ++i) {
    sum += us[i];
  }
  return sum;
}

namespace {

// Latest record of `kind` at hop level `hop` with at_us <= `bound`; among equal
// times the last in timeline order wins (the timeline is sorted, so this is
// deterministic). Returns nullptr when no such record exists.
const HopRecord* FindLatest(const std::vector<HopRecord>& timeline, HopKind kind, uint8_t hop,
                            int64_t bound) {
  const HopRecord* best = nullptr;
  for (const HopRecord& r : timeline) {
    if (r.kind == kind && r.hop == hop && r.at_us <= bound) {
      best = &r;
    }
  }
  return best;
}

}  // namespace

std::vector<PathProfile> DecomposeTimeline(const std::vector<HopRecord>& timeline,
                                           const WireSplitFn& split) {
  std::vector<PathProfile> out;
  if (timeline.empty()) {
    return out;
  }
  const HopRecord* publish = FindLatest(timeline, HopKind::kPublish, 0, INT64_MAX);
  int64_t start = publish != nullptr ? publish->at_us : timeline.front().at_us;
  for (const HopRecord& r : timeline) {
    start = std::min(start, r.at_us);
  }

  for (const HopRecord& deliver : timeline) {
    if (deliver.kind != HopKind::kDeliver) {
      continue;
    }
    PathProfile p;
    p.trace_id = deliver.trace_id;
    p.subject = deliver.subject;
    p.dest = deliver.node;
    p.hop = deliver.hop;
    p.publish_at_us = start;
    p.deliver_at_us = deliver.at_us;
    p.end_to_end_us = deliver.at_us - start;

    // Back-chain: walk breakpoints from the deliver hop toward the publish. Every
    // interval between consecutive breakpoints lands in exactly one stage, so the
    // stage vector telescopes to end_to_end_us. A missing link folds everything
    // earlier into kUnattributed instead of guessing.
    uint8_t level = deliver.hop;
    const HopRecord* dispatch = FindLatest(timeline, HopKind::kDispatch, level, deliver.at_us);
    if (dispatch == nullptr) {
      p.stages[StageKind::kUnattributed] += deliver.at_us - start;
      out.push_back(p);
      continue;
    }
    p.stages[StageKind::kDeliverDispatch] += deliver.at_us - dispatch->at_us;
    while (true) {
      const HopRecord* ws = FindLatest(timeline, HopKind::kWireSend, level, dispatch->at_us);
      if (ws == nullptr) {
        p.stages[StageKind::kUnattributed] += dispatch->at_us - start;
        break;
      }
      if (split) {
        split(*ws, *dispatch, &p.stages);
      } else {
        p.stages[StageKind::kMediumTransit] += dispatch->at_us - ws->at_us;
      }
      if (level == 0) {
        if (publish != nullptr && publish->at_us <= ws->at_us) {
          p.stages[StageKind::kPublishMarshal] += ws->at_us - publish->at_us;
        } else {
          p.stages[StageKind::kUnattributed] += ws->at_us - start;
        }
        break;
      }
      const HopRecord* rep = FindLatest(timeline, HopKind::kRouterRepublish, level, ws->at_us);
      if (rep == nullptr) {
        p.stages[StageKind::kUnattributed] += ws->at_us - start;
        break;
      }
      p.stages[StageKind::kRouterRepublish] += ws->at_us - rep->at_us;
      const HopRecord* fwd =
          FindLatest(timeline, HopKind::kRouterForward, static_cast<uint8_t>(level - 1), rep->at_us);
      if (fwd == nullptr) {
        p.stages[StageKind::kUnattributed] += rep->at_us - start;
        break;
      }
      // The WAN link crossing: forward on the near side, republish on the far side.
      p.stages[StageKind::kMediumTransit] += rep->at_us - fwd->at_us;
      const HopRecord* prev =
          FindLatest(timeline, HopKind::kDispatch, static_cast<uint8_t>(level - 2), fwd->at_us);
      if (prev == nullptr) {
        p.stages[StageKind::kUnattributed] += fwd->at_us - start;
        break;
      }
      // Local deliver to the router client + its forward processing.
      p.stages[StageKind::kRouterForward] += fwd->at_us - prev->at_us;
      dispatch = prev;
      level = static_cast<uint8_t>(level - 2);
    }
    out.push_back(p);
  }
  return out;
}

StageAccumulator::StageAccumulator(telemetry::MetricsRegistry* registry) {
  for (size_t i = 0; i < kStageCount; ++i) {
    histograms_[i] = registry->GetHistogram(StageMetricName(static_cast<StageKind>(i)));
  }
}

void StageAccumulator::Add(const PathProfile& path) {
  for (size_t i = 0; i < kStageCount; ++i) {
    int64_t us = path.stages.us[i];
    totals_[i] += us;
    if (us > 0) {
      histograms_[i]->Record(us);
    }
  }
  end_to_end_total_ += path.end_to_end_us;
  paths_++;
}

double StageAccumulator::UnattributedShare() const {
  if (end_to_end_total_ <= 0) {
    return 0.0;
  }
  return static_cast<double>(totals_[static_cast<size_t>(StageKind::kUnattributed)]) /
         static_cast<double>(end_to_end_total_);
}

}  // namespace ibus::prof
