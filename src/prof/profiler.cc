#include "src/prof/profiler.h"

#include <cstdio>
#include <cstdlib>

#include "src/capture/capture.h"
#include "src/proto/packets.h"
#include "src/wire/wire.h"

namespace ibus::prof {

using telemetry::HopRecord;

TraceContext PeekTraceContext(const Bytes& marshalled) {
  // Message::Marshal header order; all header fields precede the length-prefixed
  // payload, so a frag-0 chunk prefix parses cleanly.
  WireReader r(marshalled);
  TraceContext ctx;
  if (!r.ReadStringView().ok()) return ctx;  // subject
  if (!r.ReadStringView().ok()) return ctx;  // reply_subject
  if (!r.ReadStringView().ok()) return ctx;  // type_name
  if (!r.ReadStringView().ok()) return ctx;  // sender
  if (!r.ReadU64().ok()) return ctx;         // certified_id
  if (!r.ReadU64().ok()) return ctx;         // publisher_id
  if (!r.ReadU8().ok()) return ctx;          // hops
  if (!r.ReadStringView().ok()) return ctx;  // via
  auto trace_id = r.ReadU64();
  auto trace_hop = r.ReadU8();
  if (!trace_id.ok() || !trace_hop.ok()) return ctx;
  ctx.ok = true;
  ctx.trace_id = *trace_id;
  ctx.trace_hop = *trace_hop;
  return ctx;
}

bool ParseDaemonNode(const std::string& node, HostId* host) {
  constexpr char kPrefix[] = "daemon@";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (node.size() <= kPrefixLen || node.compare(0, kPrefixLen, kPrefix) != 0) {
    return false;
  }
  char* end = nullptr;
  unsigned long long v = std::strtoull(node.c_str() + kPrefixLen, &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *host = static_cast<HostId>(v);
  return true;
}

void CriticalPathProfiler::IndexMessage(const Bytes& marshalled, uint64_t stream_id,
                                        uint64_t seq) {
  TraceContext ctx = PeekTraceContext(marshalled);
  if (!ctx.ok || ctx.trace_id == 0) {
    return;
  }
  // First occurrence wins (capture order): retransmissions of the same message
  // map to the same (stream, seq) anyway.
  msg_index_.emplace(std::make_pair(ctx.trace_id, ctx.trace_hop),
                     std::make_pair(stream_id, seq));
}

void CriticalPathProfiler::IndexCapture(const std::vector<CapturedFrame>& frames) {
  for (const CapturedFrame& f : frames) {
    if (f.payload.empty()) {
      continue;
    }
    auto parsed = ParseFrame(f.payload);
    if (!parsed.ok()) {
      continue;
    }
    if (parsed->frame_type == kPktData) {
      auto pkt = DataPacket::Unmarshal(parsed->payload);
      if (!pkt.ok()) {
        continue;
      }
      if (pkt->frag_index == 0) {
        IndexMessage(pkt->chunk, pkt->stream_id, pkt->seq);
      }
      attempts_[std::make_tuple(pkt->stream_id, pkt->seq, f.dst_host)].push_back(
          Attempt{f.sent_at, f.delivered_at, f.fate});
    } else if (parsed->frame_type == kPktBatch) {
      auto pkt = BatchPacket::Unmarshal(parsed->payload);
      if (!pkt.ok()) {
        continue;
      }
      for (size_t i = 0; i < pkt->messages.size(); ++i) {
        uint64_t seq = pkt->first_seq + i;
        IndexMessage(pkt->messages[i], pkt->stream_id, seq);
        attempts_[std::make_tuple(pkt->stream_id, seq, f.dst_host)].push_back(
            Attempt{f.sent_at, f.delivered_at, f.fate});
      }
    }
  }
}

void CriticalPathProfiler::SplitWireInterval(const HopRecord& wire_send,
                                             const HopRecord& dispatch,
                                             StageBreakdown* out) const {
  const int64_t span = dispatch.at_us - wire_send.at_us;
  HostId host = 0;
  auto charge_all_transit = [&] { (*out)[StageKind::kMediumTransit] += span; };
  if (!ParseDaemonNode(dispatch.node, &host)) {
    charge_all_transit();
    return;
  }
  auto mi = msg_index_.find(std::make_pair(wire_send.trace_id, wire_send.hop));
  if (mi == msg_index_.end()) {
    charge_all_transit();
    return;
  }
  auto ai = attempts_.find(std::make_tuple(mi->second.first, mi->second.second, host));
  if (ai == attempts_.end()) {
    charge_all_transit();
    return;
  }
  // Attempts toward the dispatching host inside the interval: the earliest send
  // anchors the daemon-side queueing, the last frame landing before the dispatch
  // completes the message (fragmented messages finish on their last fragment).
  SimTime first_sent = -1;
  const Attempt* completing = nullptr;
  for (const Attempt& a : ai->second) {
    if (a.sent_at < wire_send.at_us || a.sent_at > dispatch.at_us) {
      continue;
    }
    if (first_sent < 0 || a.sent_at < first_sent) {
      first_sent = a.sent_at;
    }
    const bool landed = a.fate == FrameFate::kDelivered || a.fate == FrameFate::kQueuedDelay ||
                        a.fate == FrameFate::kDuplicated;
    if (landed && a.delivered_at <= dispatch.at_us) {
      if (completing == nullptr || a.delivered_at > completing->delivered_at) {
        completing = &a;
      }
    }
  }
  if (first_sent < 0 || completing == nullptr) {
    charge_all_transit();
    return;
  }
  // Exact four-way partition of [wire_send.at, dispatch.at]; the pieces telescope
  // back to `span`, preserving the reconciliation invariant.
  (*out)[StageKind::kDaemonQueue] += first_sent - wire_send.at_us;
  (*out)[StageKind::kRetransmitRepair] += completing->sent_at - first_sent;
  (*out)[StageKind::kMediumTransit] += completing->delivered_at - completing->sent_at;
  (*out)[StageKind::kDaemonQueue] += dispatch.at_us - completing->delivered_at;
}

void CriticalPathProfiler::AddTimeline(const std::vector<HopRecord>& timeline) {
  WireSplitFn split = [this](const HopRecord& ws, const HopRecord& disp, StageBreakdown* out) {
    SplitWireInterval(ws, disp, out);
  };
  for (PathProfile& p : DecomposeTimeline(timeline, split)) {
    accumulator_.Add(p);
    paths_.push_back(std::move(p));
  }
}

void CriticalPathProfiler::AddCollector(const telemetry::TraceCollector& collector) {
  for (uint64_t id : collector.trace_ids()) {
    AddTimeline(collector.Timeline(id));
  }
}

bool CriticalPathProfiler::Reconciled() const {
  for (const PathProfile& p : paths_) {
    if (p.stages.total_us() != p.end_to_end_us) {
      return false;
    }
  }
  return true;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

std::string StagesJson(const StageBreakdown& stages) {
  std::string out = "{";
  for (size_t i = 0; i < kStageCount; ++i) {
    if (i != 0) {
      out += ",";
    }
    StageKind k = static_cast<StageKind>(i);
    out += std::string("\"") + StageName(k) + "\":" + std::to_string(stages.at(k));
  }
  out += "}";
  return out;
}

}  // namespace

std::string CriticalPathProfiler::RenderJson(
    const std::vector<std::pair<std::string, std::string>>& extra_sections) const {
  std::string out = "{\"schema\":\"BUSPROF_1\"";
  out += ",\"path_count\":" + std::to_string(paths_.size());
  out += std::string(",\"reconciled\":") + (Reconciled() ? "true" : "false");
  out += ",\"end_to_end_total_us\":" + std::to_string(accumulator_.end_to_end_total_us());
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", accumulator_.UnattributedShare());
  out += std::string(",\"unattributed_share\":") + buf;
  out += ",\"stage_totals_us\":{";
  for (size_t i = 0; i < kStageCount; ++i) {
    StageKind k = static_cast<StageKind>(i);
    out += std::string(i == 0 ? "\"" : ",\"") + StageName(k) +
           "\":" + std::to_string(accumulator_.total_us(k));
  }
  out += "},\"stage_p99_us\":{";
  for (size_t i = 0; i < kStageCount; ++i) {
    StageKind k = static_cast<StageKind>(i);
    out += std::string(i == 0 ? "\"" : ",\"") + StageName(k) +
           "\":" + std::to_string(accumulator_.histogram(k)->p99());
  }
  out += "},\"paths\":[";
  for (size_t i = 0; i < paths_.size(); ++i) {
    const PathProfile& p = paths_[i];
    if (i != 0) {
      out += ",";
    }
    out += "{\"trace_id\":" + std::to_string(p.trace_id);
    out += ",\"subject\":\"" + JsonEscape(p.subject) + "\"";
    out += ",\"dest\":\"" + JsonEscape(p.dest) + "\"";
    out += ",\"hop\":" + std::to_string(p.hop);
    out += ",\"end_to_end_us\":" + std::to_string(p.end_to_end_us);
    out += std::string(",\"reconciled\":") +
           (p.stages.total_us() == p.end_to_end_us ? "true" : "false");
    out += ",\"stages\":" + StagesJson(p.stages) + "}";
  }
  out += "]";
  for (const auto& [key, value] : extra_sections) {
    out += ",\"" + JsonEscape(key) + "\":" + value;
  }
  out += "}";
  return out;
}

std::string CriticalPathProfiler::RenderCollapsed() const {
  // Flamegraph-collapsed aggregation: frame stack bus;dest;subject;stage, weight
  // in microseconds. Zero-weight stages are omitted, map order makes the output
  // byte-stable.
  std::map<std::string, int64_t> stacks;
  for (const PathProfile& p : paths_) {
    for (size_t i = 0; i < kStageCount; ++i) {
      StageKind k = static_cast<StageKind>(i);
      int64_t us = p.stages.at(k);
      if (us <= 0) {
        continue;
      }
      stacks["bus;" + p.dest + ";" + p.subject + ";" + StageName(k)] += us;
    }
  }
  std::string out;
  for (const auto& [stack, us] : stacks) {
    out += stack + " " + std::to_string(us) + "\n";
  }
  return out;
}

uint64_t CriticalPathProfiler::Hash() const {
  std::string json = RenderJson();
  std::string collapsed = RenderCollapsed();
  uint64_t h = capture::Fnv1a(reinterpret_cast<const uint8_t*>(json.data()), json.size());
  return capture::Fnv1a(reinterpret_cast<const uint8_t*>(collapsed.data()), collapsed.size(), h);
}

}  // namespace ibus::prof
