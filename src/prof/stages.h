// Critical-path stage taxonomy: every traced message's end-to-end latency is
// decomposed into an exact, integer-µs stage vector by back-chaining its hop
// timeline (publish → wire_send → dispatch → deliver, with router forward /
// republish pairs per WAN traversal). The decomposition telescopes: consecutive
// breakpoints partition [publish.at, deliver.at], so the stage sum equals the
// measured end-to-end latency by construction — the reconciliation invariant the
// prof tests and sim_replay_check pin. Intervals that cannot be anchored to the
// expected hop merge into an explicit kUnattributed bucket rather than being
// silently dropped. See docs/TELEMETRY.md ("Profiling").
#ifndef SRC_PROF_STAGES_H_
#define SRC_PROF_STAGES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace ibus::prof {

// Where a microsecond of end-to-end latency was spent. Order is the rendering
// order of every report; do not renumber.
enum class StageKind : uint8_t {
  kPublishMarshal = 0,   // client accepted the publish -> daemon handed it to the wire
  kDaemonQueue = 1,      // held in daemon queues (sync hold, in-order drain, batching)
  kMediumTransit = 2,    // serialization + propagation + medium queueing (LAN or WAN)
  kRouterForward = 3,    // origin-LAN dispatch -> router sent it over the WAN link
  kRouterRepublish = 4,  // router re-injected it -> far daemon handed it to the wire
  kRetransmitRepair = 5, // lost first attempt -> the retransmission that landed
  kDeliverDispatch = 6,  // daemon matched subscriptions -> subscriber handler ran
  kUnattributed = 7,     // remainder that could not be anchored to a hop
};

inline constexpr size_t kStageCount = 8;

// Stable lower-case stage name ("publish_marshal", ...), used by every report.
const char* StageName(StageKind k);

// Integer-µs stage vector for one delivery path.
struct StageBreakdown {
  int64_t us[kStageCount] = {};

  int64_t& operator[](StageKind k) { return us[static_cast<size_t>(k)]; }
  int64_t at(StageKind k) const { return us[static_cast<size_t>(k)]; }
  int64_t total_us() const;
};

// One profiled delivery: a traced message reaching one subscriber.
struct PathProfile {
  uint64_t trace_id = 0;
  std::string subject;     // application subject at the delivering hop
  std::string dest;        // delivering client (HopRecord node of the deliver hop)
  uint8_t hop = 0;         // deliver hop level (0 = origin LAN, +2 per router)
  int64_t publish_at_us = 0;
  int64_t deliver_at_us = 0;
  int64_t end_to_end_us = 0;  // deliver_at - publish_at; equals stages.total_us()
  StageBreakdown stages;
};

// Splits one wire interval [wire_send.at, dispatch.at] into stages. The default
// (hop-only) splitter charges the whole interval to kMediumTransit; the capture
// join in profiler.h substitutes an exact daemon-queue / transit / repair split.
using WireSplitFn = std::function<void(const telemetry::HopRecord& wire_send,
                                       const telemetry::HopRecord& dispatch,
                                       StageBreakdown* out)>;

// Decomposes every deliver hop of one trace timeline (collector order: sorted by
// time/hop/kind) into a PathProfile. `split` may be null for hop-only profiles.
std::vector<PathProfile> DecomposeTimeline(const std::vector<telemetry::HopRecord>& timeline,
                                           const WireSplitFn& split = nullptr);

// Streams PathProfiles into per-stage LatencyHistograms ("prof.stage.<name>" in
// `registry`) plus exact integer totals for reconciliation checks.
class StageAccumulator {
 public:
  explicit StageAccumulator(telemetry::MetricsRegistry* registry);

  void Add(const PathProfile& path);

  uint64_t paths() const { return paths_; }
  int64_t total_us(StageKind k) const { return totals_[static_cast<size_t>(k)]; }
  int64_t end_to_end_total_us() const { return end_to_end_total_; }
  const telemetry::LatencyHistogram* histogram(StageKind k) const {
    return histograms_[static_cast<size_t>(k)];
  }
  // kUnattributed share of the summed end-to-end time, in [0,1]; 0 when empty.
  double UnattributedShare() const;

 private:
  telemetry::LatencyHistogram* histograms_[kStageCount] = {};
  int64_t totals_[kStageCount] = {};
  int64_t end_to_end_total_ = 0;
  uint64_t paths_ = 0;
};

// Registry name of a stage histogram, e.g. "prof.stage.medium_transit".
std::string StageMetricName(StageKind k);

}  // namespace ibus::prof

#endif  // SRC_PROF_STAGES_H_
