#include "src/prof/demo.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "src/bus/certified.h"
#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/capture/capture.h"
#include "src/journal/journal.h"
#include "src/prof/profiler.h"
#include "src/prof/sim_profiler.h"
#include "src/proto/reliable.h"
#include "src/router/router.h"
#include "src/sim/simulator.h"
#include "src/sim/stable_store.h"
#include "src/telemetry/collector.h"

namespace ibus::prof {

namespace {

std::string Record(SimTime t, const std::string& who, const Message& m) {
  return "t=" + std::to_string(t) + " " + who + " subj=" + m.subject +
         " payload=" + ToString(m.payload);
}

// One registry's queue gauges as a JSON object: each depth with its ".hwm" twin.
std::string QueueGaugesJson(const telemetry::MetricsRegistry& registry,
                            const std::vector<std::string>& names) {
  std::string out = "{";
  bool first = true;
  for (const std::string& name : names) {
    for (const std::string& n : {name, name + ".hwm"}) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += "\"" + n + "\":" + std::to_string(registry.GaugeValue(n));
    }
  }
  out += "}";
  return out;
}

}  // namespace

ProfiledScenario RunProfiledWanScenario(uint64_t seed) {
  ProfiledScenario result;
  auto fail = [&result](const std::string& what, const Status& s) {
    result.trace.clear();
    result.trace.push_back("error: " + what + ": " + s.ToString());
    return result;
  };

  EventCoreProfiler event_core;
  capture::CaptureBuffer tap;
  Simulator sim;
  sim.SetObserver(&event_core);
  Network net(&sim, seed);
  net.AttachTap(&tap);
  SegmentId lan_a = net.AddSegment();
  SegmentId lan_b = net.AddSegment();
  std::vector<HostId> a_hosts, b_hosts;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  std::vector<HostId> daemon_hosts;
  BusConfig config;
  config.trace_publishes = true;  // daemons + producer: assign trace ids, stamp hops
  config.trace_sample_period = 1;  // profiling wants every path, not a sample
  for (int i = 0; i < 2; ++i) {
    a_hosts.push_back(net.AddHost("a" + std::to_string(i), lan_a));
    b_hosts.push_back(net.AddHost("b" + std::to_string(i), lan_b));
  }
  for (HostId h : {a_hosts[0], a_hosts[1], b_hosts[0], b_hosts[1]}) {
    auto d = BusDaemon::Start(&net, h, config);
    if (!d.ok()) {
      return fail("daemon", d.status());
    }
    daemons.push_back(d.take());
    daemon_hosts.push_back(h);
  }

  auto router_bus_a = BusClient::Connect(&net, a_hosts[0], "_router:A");
  auto router_bus_b = BusClient::Connect(&net, b_hosts[0], "_router:B");
  if (!router_bus_a.ok() || !router_bus_b.ok()) {
    return fail("router bus",
                router_bus_a.ok() ? router_bus_b.status() : router_bus_a.status());
  }
  auto ra = InfoRouter::Listen(router_bus_a->get(), "_router:A", 8700);
  if (!ra.ok()) {
    return fail("router listen", ra.status());
  }
  sim.RunFor(50 * kMillisecond);
  auto rb = InfoRouter::Connect(router_bus_b->get(), "_router:B", a_hosts[0], 8700);
  if (!rb.ok()) {
    return fail("router connect", rb.status());
  }
  sim.RunFor(200 * kMillisecond);

  // Trace collector on the far LAN: spans cross the WAN via the routers'
  // reserved-prefix forwarding, so one collector sees the whole path.
  auto monitor_bus = BusClient::Connect(&net, b_hosts[0], "monitor");
  if (!monitor_bus.ok()) {
    return fail("monitor bus", monitor_bus.status());
  }
  auto collector = telemetry::TraceCollector::Create(monitor_bus->get());
  const bool telemetry_on = collector.ok();  // false under IB_TELEMETRY=OFF

  auto sub_bus = BusClient::Connect(&net, b_hosts[1], "consumer");
  if (!sub_bus.ok()) {
    return fail("consumer bus", sub_bus.status());
  }
  auto sub = CertifiedSubscriber::Create(sub_bus->get(), "orders.>", "consumer",
                                         [&](const Message& m) {
                                           result.trace.push_back(
                                               Record(sim.Now(), "consumer", m));
                                         });
  if (!sub.ok()) {
    return fail("certified subscriber", sub.status());
  }
  sim.RunFor(500 * kMillisecond);  // control plane (subs, adverts) crosses the WAN

  // Faults only after the handshake so every replay starts aligned; the loss is
  // what populates the retransmit_repair stage and the NAK/partials queues.
  FaultPlan faults;
  faults.drop_prob = 0.10;
  faults.jitter_us = 300;
  net.SetFaultPlan(lan_a, faults);
  net.SetFaultPlan(lan_b, faults);

  auto pub_bus = BusClient::Connect(&net, a_hosts[1], "producer", config);
  if (!pub_bus.ok()) {
    return fail("producer bus", pub_bus.status());
  }
  MemoryStableStore store;
  journal::JournalConfig ledger_config;
  ledger_config.sim = &sim;  // write-through: legacy stable-write timing
  auto ledger = journal::Journal::Open(&store, ledger_config);
  if (!ledger.ok()) {
    return fail("journal", ledger.status());
  }
  auto pub = CertifiedPublisher::Create(pub_bus->get(), ledger->get(), "orders-ledger");
  if (!pub.ok()) {
    return fail("certified publisher", pub.status());
  }
  for (int i = 0; i < 5; ++i) {
    Status s = (*pub)->Publish("orders.new", ToBytes("order" + std::to_string(i)));
    if (!s.ok()) {
      return fail("publish", s);
    }
    sim.RunFor(100 * kMillisecond);
  }
  sim.RunFor(5 * kSecond);

  // Join the hop timelines against the capture and decompose.
  CriticalPathProfiler profiler;
  profiler.IndexCapture(tap.frames());
  if (telemetry_on) {
    profiler.AddCollector(**collector);
    for (uint64_t id : (*collector)->trace_ids()) {
      result.trace.push_back((*collector)->RenderTimeline(id));
    }
    result.trace.push_back("records=" + std::to_string((*collector)->records_received()) +
                           " traces=" + std::to_string((*collector)->trace_count()) +
                           " all_hash=" + std::to_string((*collector)->AllTracesHash()));
  }

  // Queue-occupancy plane: the daemons' proto.* depth gauges and the routers'
  // link/mirror gauges, final values + high-watermarks.
  const std::vector<std::string> daemon_queues = {
      kMetricSenderRetainedDepth, kMetricSenderBatchDepth, kMetricReceiverReadyDepth,
      kMetricReceiverPartialsDepth};
  const std::vector<std::string> router_queues = {kMetricRouterLinkBacklogUs,
                                                  kMetricRouterPeerSubs};
  std::string queues = "{";
  for (size_t i = 0; i < daemons.size(); ++i) {
    if (i != 0) {
      queues += ",";
    }
    queues += "\"daemon@" + std::to_string(daemon_hosts[i]) + "\":" +
              QueueGaugesJson(*daemons[i]->metrics(), daemon_queues);
  }
  queues += ",\"_router:A\":" + QueueGaugesJson(*(*ra)->metrics(), router_queues);
  queues += ",\"_router:B\":" + QueueGaugesJson(*(*rb)->metrics(), router_queues);
  queues += "}";

  result.json = profiler.RenderJson({{"telemetry", telemetry_on ? "true" : "false"},
                                     {"event_core", event_core.RenderJson()},
                                     {"queues", queues}});
  result.collapsed = profiler.RenderCollapsed();
  uint64_t h = capture::Fnv1a(reinterpret_cast<const uint8_t*>(result.json.data()),
                              result.json.size());
  result.hash = capture::Fnv1a(reinterpret_cast<const uint8_t*>(result.collapsed.data()),
                               result.collapsed.size(), h);
  result.paths = profiler.paths();
  result.reconciled = profiler.Reconciled();
  result.unattributed_share = profiler.accumulator().UnattributedShare();
  result.frames_captured = tap.frames_kept();

  result.trace.push_back("publisher published=" + std::to_string((*pub)->stats().published) +
                         " retransmits=" + std::to_string((*pub)->stats().retransmits) +
                         " retired=" + std::to_string((*pub)->stats().retired));
  char share[32];
  std::snprintf(share, sizeof(share), "%.6f", result.unattributed_share);
  result.trace.push_back("busprof paths=" + std::to_string(result.paths.size()) +
                         " reconciled=" + (result.reconciled ? "1" : "0") +
                         " unattributed_share=" + share +
                         " frames=" + std::to_string(result.frames_captured) +
                         " hash=" + std::to_string(result.hash));

  net.DetachTap(&tap);
  sim.SetObserver(nullptr);
  return result;
}

}  // namespace ibus::prof
