// The canonical profiling scenario: the certified-WAN topology of src/capture's
// demo (two LANs joined by an information-router pair, 10% loss + 300µs jitter)
// run with publish tracing on, a wire tap attached, and the simulator event core
// observed — everything busprof profiles, in one deterministic run. Shared by
// tools/busprof, the prof tests, and sim_replay_check's busprof scenario so the
// CLI output, the unit assertions, and the replay hashes all describe the same
// bytes.
#ifndef SRC_PROF_DEMO_H_
#define SRC_PROF_DEMO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/prof/stages.h"

namespace ibus::prof {

struct ProfiledScenario {
  // Delivery records, hop timelines, and summary stat lines — the replay spine.
  std::vector<std::string> trace;
  // Full busprof JSON report (paths + stages + event_core + queues sections).
  std::string json;
  // Flamegraph-collapsed stacks.
  std::string collapsed;
  // FNV-1a over json then collapsed; bit-identical across replays of one seed.
  uint64_t hash = 0;
  // Per-delivery stage decompositions (empty when built with IB_TELEMETRY=OFF —
  // no spans are emitted then and the report says "telemetry":false).
  std::vector<PathProfile> paths;
  bool reconciled = false;
  double unattributed_share = 0.0;
  uint64_t frames_captured = 0;
};

ProfiledScenario RunProfiledWanScenario(uint64_t seed);

}  // namespace ibus::prof

#endif  // SRC_PROF_DEMO_H_
