// Event-core profiler: a SimObserver that counts every dispatched simulator
// event by kind ("net.conn_deliver", "proto.heartbeat", ...) and reports
// deterministic rates over the observed window. This is the sim-side third of
// busprof's observability plane, next to the critical-path stage decomposition
// and the queue-occupancy gauges.
#ifndef SRC_PROF_SIM_PROFILER_H_
#define SRC_PROF_SIM_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/sim/simulator.h"

namespace ibus::prof {

// Counts dispatched events per kind. Attach with sim.SetObserver(&profiler);
// detach (SetObserver(nullptr)) before destroying it. Deterministic: kinds are
// compile-time string literals and the map orders them lexicographically.
class EventCoreProfiler : public SimObserver {
 public:
  void OnEventDispatched(const char* kind, SimTime at) override;

  uint64_t total_events() const { return total_; }
  // Observed window [first, last] dispatch times; 0/0 before any event.
  SimTime first_at_us() const { return first_at_; }
  SimTime last_at_us() const { return last_at_; }
  const std::map<std::string, uint64_t, std::less<>>& counts() const { return counts_; }

  // Events/second over the observed window for one kind (0 when the window is
  // empty or degenerate).
  double RatePerSec(const std::string& kind) const;

  // One line per kind: "  <kind>  <count>  <rate>/s" sorted by kind.
  std::string RenderText() const;
  // JSON object: {"total":N,"window_us":W,"kinds":{"<kind>":{"count":..,"per_sec":..},..}}
  std::string RenderJson() const;

 private:
  double WindowSeconds() const;

  std::map<std::string, uint64_t, std::less<>> counts_;
  uint64_t total_ = 0;
  SimTime first_at_ = 0;
  SimTime last_at_ = 0;
  bool any_ = false;
};

}  // namespace ibus::prof

#endif  // SRC_PROF_SIM_PROFILER_H_
