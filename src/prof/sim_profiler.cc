#include "src/prof/sim_profiler.h"

#include <cstdio>
#include <string_view>

namespace ibus::prof {

void EventCoreProfiler::OnEventDispatched(const char* kind, SimTime at) {
  // Hot hook: one map lookup per simulator event. The heterogeneous find keeps
  // steady-state dispatch allocation-free; only a first-seen kind inserts.
  std::string_view key(kind);
  auto it = counts_.find(key);
  if (it == counts_.end()) {
    counts_.emplace(std::string(key), 1);
  } else {
    it->second++;
  }
  total_++;
  if (!any_) {
    first_at_ = at;
    any_ = true;
  }
  last_at_ = at;
}

double EventCoreProfiler::WindowSeconds() const {
  if (!any_ || last_at_ <= first_at_) {
    return 0.0;
  }
  return static_cast<double>(last_at_ - first_at_) / 1e6;
}

double EventCoreProfiler::RatePerSec(const std::string& kind) const {
  double secs = WindowSeconds();
  if (secs <= 0.0) {
    return 0.0;
  }
  auto it = counts_.find(kind);
  if (it == counts_.end()) {
    return 0.0;
  }
  return static_cast<double>(it->second) / secs;
}

std::string EventCoreProfiler::RenderText() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "event core: %llu events over %lld us\n",
                static_cast<unsigned long long>(total_),
                static_cast<long long>(any_ ? last_at_ - first_at_ : 0));
  out += buf;
  for (const auto& [kind, count] : counts_) {
    std::snprintf(buf, sizeof(buf), "  %-24s %8llu  %10.1f/s\n", kind.c_str(),
                  static_cast<unsigned long long>(count), RatePerSec(kind));
    out += buf;
  }
  return out;
}

std::string EventCoreProfiler::RenderJson() const {
  std::string out = "{\"total\":" + std::to_string(total_) +
                    ",\"window_us\":" + std::to_string(any_ ? last_at_ - first_at_ : 0) +
                    ",\"kinds\":{";
  bool first = true;
  char buf[64];
  for (const auto& [kind, count] : counts_) {
    if (!first) {
      out += ",";
    }
    first = false;
    std::snprintf(buf, sizeof(buf), "%.1f", RatePerSec(kind));
    out += "\"" + kind + "\":{\"count\":" + std::to_string(count) + ",\"per_sec\":" + buf + "}";
  }
  out += "}}";
  return out;
}

}  // namespace ibus::prof
