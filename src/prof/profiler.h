// Critical-path profiler: joins TraceCollector hop timelines with src/capture
// frame fates to decompose every traced delivery into the exact stage taxonomy of
// stages.h. The capture join resolves the opaque wire interval
// [wire_send.at, dispatch.at] into daemon-queue / retransmit-repair /
// medium-transit components by locating the message's (stream, seq) frames toward
// the dispatching host; without a capture the interval is charged to
// kMediumTransit wholesale. Reports (JSON + collapsed stacks) are byte-stable per
// seed — tools/busprof and sim_replay_check hash them.
#ifndef SRC_PROF_PROFILER_H_
#define SRC_PROF_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/prof/stages.h"
#include "src/sim/network.h"
#include "src/telemetry/collector.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace ibus::prof {

// Trace header peeked from a marshalled Message prefix (frag-0 chunks are always
// long enough: the header precedes the length-prefixed payload).
struct TraceContext {
  bool ok = false;
  uint64_t trace_id = 0;
  uint8_t trace_hop = 0;
};
TraceContext PeekTraceContext(const Bytes& marshalled);

// Parses a daemon hop-record node name ("daemon@7" -> 7); returns false for
// client/router nodes.
bool ParseDaemonNode(const std::string& node, HostId* host);

class CriticalPathProfiler {
 public:
  CriticalPathProfiler() : accumulator_(&metrics_) {}

  // Indexes captured frames for the wire-interval split. Call before adding
  // timelines; cumulative across calls.
  void IndexCapture(const std::vector<CapturedFrame>& frames);

  // Decomposes one trace timeline (collector order) and accumulates its paths.
  void AddTimeline(const std::vector<telemetry::HopRecord>& timeline);
  // Every trace in the collector, ascending trace id.
  void AddCollector(const telemetry::TraceCollector& collector);

  const std::vector<PathProfile>& paths() const { return paths_; }
  const StageAccumulator& accumulator() const { return accumulator_; }
  // Registry holding the "prof.stage.<name>" histograms.
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }

  // True when every path's stage vector sums exactly to its end-to-end latency —
  // the invariant the decomposition guarantees by construction.
  bool Reconciled() const;

  // Deterministic JSON report (schema "BUSPROF_1"): paths, stage totals and p99s,
  // unattributed share, reconciliation flag. `extra_sections` appends
  // pre-rendered ("key", json-value) pairs to the top-level object, e.g.
  // {"event_core", profiler.RenderJson()} or a "queues" object.
  std::string RenderJson(
      const std::vector<std::pair<std::string, std::string>>& extra_sections = {}) const;

  // Collapsed-stack (flamegraph-compatible) lines: "bus;<dest>;<subject>;<stage>
  // <µs>\n", aggregated and sorted.
  std::string RenderCollapsed() const;

  // FNV-1a over RenderJson() + RenderCollapsed(): the bit-identity spine of the
  // busprof replay gate.
  uint64_t Hash() const;

 private:
  struct Attempt {
    SimTime sent_at = 0;
    SimTime delivered_at = 0;
    FrameFate fate = FrameFate::kDelivered;
  };

  void IndexMessage(const Bytes& marshalled, uint64_t stream_id, uint64_t seq);
  // The capture-join WireSplitFn body (see stages.h).
  void SplitWireInterval(const telemetry::HopRecord& wire_send,
                         const telemetry::HopRecord& dispatch, StageBreakdown* out) const;

  // (trace_id, trace_hop) -> (stream_id, seq) of the frame that carried it.
  std::map<std::pair<uint64_t, uint8_t>, std::pair<uint64_t, uint64_t>> msg_index_;
  // (stream_id, seq, dst_host) -> every captured transmission attempt, in capture
  // order.
  std::map<std::tuple<uint64_t, uint64_t, HostId>, std::vector<Attempt>> attempts_;

  telemetry::MetricsRegistry metrics_;
  StageAccumulator accumulator_;
  std::vector<PathProfile> paths_;
};

}  // namespace ibus::prof

#endif  // SRC_PROF_PROFILER_H_
