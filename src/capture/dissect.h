// Protocol dissector for captured bus frames: parses the src/wire framing, the
// transport packets (src/proto), the client/daemon control plane, the router link
// frames, and the Message envelope (including the reserved "_ibus." internal
// namespace) into a typed protocol tree — the same layering the paper's appendix
// walks when it explains per-message overhead. Dissection is read-only and never
// trusts the buffer: every parse is bounds-checked by WireReader.
#ifndef SRC_CAPTURE_DISSECT_H_
#define SRC_CAPTURE_DISSECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"

namespace ibus::capture {

// One node of the protocol tree: a rendered "name: value" label plus children.
struct DissectNode {
  std::string label;
  std::vector<DissectNode> children;
};

// Flat summary of one frame, extracted alongside the tree. The bandwidth
// accountant and the reassembler consume these fields; reports render the tree.
struct Dissection {
  bool parsed = false;     // false: not a valid bus frame (corrupt or foreign)
  uint8_t frame_type = 0;
  std::string kind;        // stable lower-case name of the frame type

  // Reliable-transport coordinates (data/batch/heartbeat/nak frames).
  uint64_t stream_id = 0;
  std::vector<uint64_t> seqs;  // sequences carried (batch: first..first+n-1)
  uint16_t frag_index = 0;
  uint16_t frag_count = 1;
  std::vector<uint64_t> nak_missing;  // sequences a NAK asks to retransmit

  // Message envelopes found inside the frame (data frag 0, batch, client
  // message/deliver, router link message).
  std::vector<std::string> subjects;
  bool internal = false;   // every subject is in the reserved "_ibus." namespace
  bool control = false;    // protocol machinery with no application message inside
  size_t app_payload_bytes = 0;  // application bytes (Message.payload sizes)

  DissectNode root;
};

// Stable name for a frame type ("data", "client_message", "link_advert", ...).
std::string FrameKindName(uint8_t frame_type);

// Dissects one captured frame (the raw bytes that crossed the medium).
Dissection DissectFrame(const Bytes& frame_bytes);

// Cheap subject extraction for capture-time filtering: returns the subjects the
// full dissector would report, without building the tree.
std::vector<std::string> PeekSubjects(const Bytes& frame_bytes);

// Renders the tree, one node per line, two-space indentation per depth.
std::string RenderTree(const DissectNode& node);

}  // namespace ibus::capture

#endif  // SRC_CAPTURE_DISSECT_H_
