#include "src/capture/pcap.h"

#include <algorithm>
#include <fstream>

#include "src/wire/wire.h"

namespace ibus::capture {

namespace {

constexpr uint8_t kFlagBroadcast = 1u << 0;
constexpr uint8_t kFlagDuplicate = 1u << 1;
constexpr uint8_t kFlagContinuation = 1u << 2;

}  // namespace

Bytes SerializePcap(const std::vector<CapturedFrame>& frames) {
  WireWriter w;
  // Global header (all little-endian; the 0xa1b2c3d4 magic tells readers the
  // byte order and that timestamps are in microseconds).
  w.PutU32(kPcapMagic);
  w.PutU16(2);       // version major
  w.PutU16(4);       // version minor
  w.PutU32(0);       // thiszone (sim time has no timezone)
  w.PutU32(0);       // sigfigs
  w.PutU32(65535);   // snaplen
  w.PutU32(kPcapLinkType);

  // pcap expects packets in timestamp order; capture order is fate order but
  // fault duplicates can interleave, so sort explicitly (stable by index).
  std::vector<const CapturedFrame*> ordered;
  ordered.reserve(frames.size());
  for (const CapturedFrame& f : frames) {
    ordered.push_back(&f);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const CapturedFrame* a, const CapturedFrame* b) {
              if (a->delivered_at != b->delivered_at) {
                return a->delivered_at < b->delivered_at;
              }
              return a->index < b->index;
            });

  for (const CapturedFrame* f : ordered) {
    const SimTime ts = f->delivered_at;
    const uint32_t len = static_cast<uint32_t>(kPcapMetaSize + f->payload.size());
    w.PutU32(static_cast<uint32_t>(ts / 1000000));  // ts_sec
    w.PutU32(static_cast<uint32_t>(ts % 1000000));  // ts_usec
    w.PutU32(len);                                  // incl_len (never truncated)
    w.PutU32(len);                                  // orig_len
    // The 44-byte metadata pseudo-header, fixed layout, little-endian.
    w.PutU64(f->index);
    w.PutU64(f->tx_id);
    w.PutU32(f->segment);
    w.PutU32(f->src_host);
    w.PutU32(f->dst_host);
    w.PutU16(f->src_port);
    w.PutU16(f->dst_port);
    w.PutU64(f->conn_id);
    w.PutU8(static_cast<uint8_t>(f->fate));
    uint8_t flags = 0;
    flags |= f->broadcast ? kFlagBroadcast : 0;
    flags |= f->duplicate ? kFlagDuplicate : 0;
    flags |= f->continuation ? kFlagContinuation : 0;
    w.PutU8(flags);
    w.PutU16(0);  // reserved, keeps the pseudo-header at 44 bytes
    w.PutRaw(f->payload);
  }
  return w.Take();
}

Status WritePcapFile(const std::string& path,
                     const std::vector<CapturedFrame>& frames) {
  Bytes data = SerializePcap(frames);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Unavailable("pcap: cannot open " + path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) {
    return DataLoss("pcap: short write to " + path);
  }
  return OkStatus();
}

}  // namespace ibus::capture
