#include "src/capture/bandwidth.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/capture/dissect.h"

namespace ibus::capture {

namespace {

// Byte shares of one transmission, in classification order.
struct Split {
  uint64_t frame_overhead = 0;
  uint64_t retransmit = 0;
  uint64_t internal = 0;
  uint64_t goodput = 0;
  uint64_t envelope = 0;
};

void Accumulate(SegmentBandwidth* b, const Split& s, uint64_t wire_us,
                uint64_t wire_bytes) {
  b->transmissions++;
  b->busy_us += wire_us;
  b->total_bytes += wire_bytes;
  BandwidthShare* shares[] = {&b->frame_overhead, &b->retransmit, &b->internal,
                              &b->goodput, &b->envelope};
  const uint64_t bytes[] = {s.frame_overhead, s.retransmit, s.internal, s.goodput,
                            s.envelope};
  // Integer-proportional microsecond split; the rounding remainder goes to the
  // bucket holding the most bytes (first wins ties) so the per-segment sum is
  // exact and deterministic.
  uint64_t assigned = 0;
  size_t biggest = 0;
  for (size_t i = 0; i < 5; ++i) {
    shares[i]->bytes += bytes[i];
    uint64_t us = wire_bytes == 0 ? 0 : wire_us * bytes[i] / wire_bytes;
    shares[i]->us += us;
    assigned += us;
    if (bytes[i] > bytes[biggest]) {
      biggest = i;
    }
  }
  shares[biggest]->us += wire_us - assigned;
}

std::string Pct(uint64_t part, uint64_t whole) {
  if (whole == 0) {
    return "0.0%";
  }
  uint64_t tenths = part * 1000 / whole;
  return std::to_string(tenths / 10) + "." + std::to_string(tenths % 10) + "%";
}

std::string ShareJson(const char* name, const BandwidthShare& s) {
  return std::string("\"") + name + "\": {\"us\": " + std::to_string(s.us) +
         ", \"bytes\": " + std::to_string(s.bytes) + "}";
}

std::string SegmentJson(const SegmentBandwidth& b, bool with_segment) {
  std::string out = "{";
  if (with_segment) {
    out += "\"segment\": " + std::to_string(b.segment) + ", ";
  }
  out += "\"transmissions\": " + std::to_string(b.transmissions) +
         ", \"records\": " + std::to_string(b.records) +
         ", \"busy_us\": " + std::to_string(b.busy_us) +
         ", \"total_bytes\": " + std::to_string(b.total_bytes) + ", " +
         ShareJson("goodput", b.goodput) + ", " + ShareJson("envelope", b.envelope) +
         ", " + ShareJson("frame_overhead", b.frame_overhead) + ", " +
         ShareJson("retransmit", b.retransmit) + ", " +
         ShareJson("internal", b.internal) + "}";
  return out;
}

}  // namespace

BandwidthReport AccountBandwidth(const std::vector<CapturedFrame>& frames,
                                 const ReassemblyReport& reassembly) {
  BandwidthReport report;
  std::map<SegmentId, SegmentBandwidth> by_segment;

  // Connection messages span chunk records: the first chunk carries the message
  // bytes, continuations are timing-only. Classify the group once and let the
  // goodput budget flow across chunks in order.
  struct ConnGroup {
    bool internal = false;
    uint64_t remaining_goodput = 0;
  };
  std::map<uint64_t, ConnGroup> conn_groups;
  for (const CapturedFrame& f : frames) {
    if (f.conn_id != 0 && !f.continuation) {
      Dissection d = DissectFrame(f.payload);
      conn_groups[f.conn_msg_id] = ConnGroup{d.internal, d.app_payload_bytes};
    }
  }

  std::set<uint64_t> charged_tx;
  for (const CapturedFrame& f : frames) {
    SegmentBandwidth& seg = by_segment[f.segment];
    seg.segment = f.segment;
    seg.records++;
    // Charge the medium once per transmission: skip fan-out/duplicate siblings and
    // records that never occupied the wire (unicast fault loss, MTU rejection).
    if (f.wire_us == 0 || !charged_tx.insert(f.tx_id).second) {
      continue;
    }
    const uint64_t payload_bytes =
        f.wire_bytes > f.frame_overhead ? f.wire_bytes - f.frame_overhead : 0;
    Split split;
    split.frame_overhead = f.wire_bytes - payload_bytes;
    if (reassembly.retransmit_tx_ids.count(f.tx_id) > 0) {
      split.retransmit = payload_bytes;
    } else if (f.conn_id != 0) {
      auto it = conn_groups.find(f.conn_msg_id);
      if (it != conn_groups.end() && it->second.internal) {
        split.internal = payload_bytes;
      } else if (it != conn_groups.end()) {
        split.goodput = std::min(it->second.remaining_goodput, payload_bytes);
        it->second.remaining_goodput -= split.goodput;
        split.envelope = payload_bytes - split.goodput;
      } else {
        split.envelope = payload_bytes;  // continuation without its head chunk
      }
    } else {
      Dissection d = DissectFrame(f.payload);
      if (d.internal) {
        split.internal = payload_bytes;
      } else {
        split.goodput = std::min<uint64_t>(d.app_payload_bytes, payload_bytes);
        split.envelope = payload_bytes - split.goodput;
      }
    }
    Accumulate(&seg, split, static_cast<uint64_t>(f.wire_us), f.wire_bytes);
  }

  for (auto& [id, seg] : by_segment) {
    report.segments.push_back(seg);
    report.total.transmissions += seg.transmissions;
    report.total.records += seg.records;
    report.total.busy_us += seg.busy_us;
    report.total.total_bytes += seg.total_bytes;
    const BandwidthShare* src[] = {&seg.goodput, &seg.envelope, &seg.frame_overhead,
                                   &seg.retransmit, &seg.internal};
    BandwidthShare* dst[] = {&report.total.goodput, &report.total.envelope,
                             &report.total.frame_overhead, &report.total.retransmit,
                             &report.total.internal};
    for (size_t i = 0; i < 5; ++i) {
      dst[i]->us += src[i]->us;
      dst[i]->bytes += src[i]->bytes;
    }
  }
  return report;
}

std::string RenderBandwidthText(const BandwidthReport& r) {
  std::string out = "bandwidth: segments=" + std::to_string(r.segments.size()) +
                    " busy_us=" + std::to_string(r.total.busy_us) + "\n";
  auto line = [](const std::string& name, const SegmentBandwidth& b) {
    return "  " + name + ": tx=" + std::to_string(b.transmissions) + " busy_us=" +
           std::to_string(b.busy_us) + " bytes=" + std::to_string(b.total_bytes) +
           " | goodput=" + Pct(b.goodput.us, b.busy_us) + " envelope=" +
           Pct(b.envelope.us, b.busy_us) + " frame=" +
           Pct(b.frame_overhead.us, b.busy_us) + " retransmit=" +
           Pct(b.retransmit.us, b.busy_us) + " internal=" +
           Pct(b.internal.us, b.busy_us) + "\n";
  };
  for (const SegmentBandwidth& b : r.segments) {
    out += line("segment " + std::to_string(b.segment) +
                    (b.segment == 0 ? " (wan)" : ""),
                b);
  }
  out += line("total", r.total);
  return out;
}

std::string BandwidthJson(const BandwidthReport& r) {
  std::string out = "{\"segments\": [";
  for (size_t i = 0; i < r.segments.size(); ++i) {
    out += (i ? ", " : "") + SegmentJson(r.segments[i], /*with_segment=*/true);
  }
  out += "], \"total\": " + SegmentJson(r.total, /*with_segment=*/false) + "}";
  return out;
}

}  // namespace ibus::capture
