#include "src/capture/reassembly.h"

#include <algorithm>
#include <tuple>

#include "src/capture/dissect.h"

namespace ibus::capture {

namespace {

bool IsDropFate(FrameFate f) {
  return f == FrameFate::kDroppedFault || f == FrameFate::kDroppedPartition ||
         f == FrameFate::kDroppedNoListener || f == FrameFate::kMtuRejected;
}

bool IsDeliveredFate(FrameFate f) {
  return f == FrameFate::kDelivered || f == FrameFate::kQueuedDelay ||
         f == FrameFate::kDuplicated;
}

struct ParsedRecord {
  const CapturedFrame* frame;
  Dissection d;
};

// Arrival of one fully-reassembled seq at one receiver (all fragments landed).
struct ArrivalEvent {
  uint64_t stream_id;
  HostId dst;
  uint64_t seq;
  SimTime at;
  uint64_t capture_index;
  bool via_retransmit;
};

}  // namespace

ReassemblyReport Reassemble(const std::vector<CapturedFrame>& frames) {
  ReassemblyReport r;

  // Dissect once, in send order (capture order is fate order; retransmit detection
  // needs the order frames were handed to the medium).
  std::vector<ParsedRecord> records;
  records.reserve(frames.size());
  for (const CapturedFrame& f : frames) {
    records.push_back({&f, DissectFrame(f.payload)});
  }
  std::vector<size_t> send_order(records.size());
  for (size_t i = 0; i < send_order.size(); ++i) {
    send_order[i] = i;
  }
  std::sort(send_order.begin(), send_order.end(), [&](size_t a, size_t b) {
    if (records[a].frame->sent_at != records[b].frame->sent_at) {
      return records[a].frame->sent_at < records[b].frame->sent_at;
    }
    return records[a].frame->index < records[b].frame->index;
  });

  // Per (stream, seq, frag): the first tx_id is the original; later distinct
  // tx_ids are retransmissions. Per (stream, seq): drops not yet attributed to a
  // retransmit.
  std::map<std::tuple<uint64_t, uint64_t, uint16_t>, uint64_t> first_tx;
  std::map<std::tuple<uint64_t, uint64_t, uint16_t>, std::set<uint64_t>> seen_tx;
  std::map<std::pair<uint64_t, uint64_t>, std::vector<uint64_t>> pending_drops;
  // Per (stream, dst, seq): delivered fragments -> completion detection.
  struct FragState {
    std::map<uint16_t, SimTime> delivered;  // frag_index -> time
    uint16_t frag_count = 1;
    bool complete = false;
    bool any_retransmit = false;
    uint64_t last_index = 0;
  };
  std::map<std::tuple<uint64_t, HostId, uint64_t>, FragState> frag_states;
  std::vector<ArrivalEvent> arrivals;

  for (size_t pos : send_order) {
    const CapturedFrame& f = *records[pos].frame;
    const Dissection& d = records[pos].d;
    if (!d.parsed) {
      continue;
    }
    if (d.kind == "nak") {
      r.nak_frames++;
      for (uint64_t missing : d.nak_missing) {
        SeqTimeline& t = r.seqs[{d.stream_id, missing}];
        t.stream_id = d.stream_id;
        t.seq = missing;
        t.nak_indices.push_back(f.index);
      }
      continue;
    }
    if (d.seqs.empty()) {
      continue;  // not a sequenced frame (control / client / link traffic)
    }
    r.data_records++;
    for (uint64_t seq : d.seqs) {
      auto frag_key = std::make_tuple(d.stream_id, seq, d.frag_index);
      auto seq_key = std::make_pair(d.stream_id, seq);
      SeqTimeline& t = r.seqs[seq_key];
      t.stream_id = d.stream_id;
      t.seq = seq;

      bool retransmit = false;
      if (!f.duplicate) {
        auto [it, fresh] = first_tx.emplace(frag_key, f.tx_id);
        std::set<uint64_t>& txs = seen_tx[frag_key];
        retransmit = !fresh && it->second != f.tx_id;
        if (txs.insert(f.tx_id).second) {
          t.transmissions++;
          if (retransmit) {
            t.retransmitted = true;
            r.retransmit_tx_ids.insert(f.tx_id);
            // This retransmission repairs the drops seen since the last one.
            auto& pend = pending_drops[seq_key];
            t.caused_by_drops.insert(t.caused_by_drops.end(), pend.begin(),
                                     pend.end());
            pend.clear();
          }
        } else if (r.retransmit_tx_ids.count(f.tx_id) > 0) {
          retransmit = true;  // sibling record (broadcast fan-out) of a retransmit tx
        }
      }

      SeqAttempt a;
      a.capture_index = f.index;
      a.tx_id = f.tx_id;
      a.dst_host = f.dst_host;
      a.sent_at = f.sent_at;
      a.at = f.delivered_at;
      a.fate = f.fate;
      a.duplicate = f.duplicate;
      a.retransmit = retransmit;
      t.attempts.push_back(a);

      if (IsDropFate(f.fate)) {
        t.drops++;
        r.total_drops++;
        pending_drops[seq_key].push_back(f.index);
      }
      if (f.fate == FrameFate::kDuplicated) {
        t.dup_deliveries++;
        r.dup_deliveries++;
      }

      if (IsDeliveredFate(f.fate)) {
        FragState& fs = frag_states[{d.stream_id, f.dst_host, seq}];
        fs.frag_count = std::max(fs.frag_count, d.frag_count);
        fs.any_retransmit = fs.any_retransmit || retransmit;
        // Batch frames carry whole messages; treat them as single-fragment.
        uint16_t frag = d.kind == "data" ? d.frag_index : 0;
        fs.delivered.emplace(frag, f.delivered_at);
        fs.last_index = f.index;
        if (!fs.complete && fs.delivered.size() >= fs.frag_count) {
          fs.complete = true;
          SimTime done = 0;
          for (const auto& [idx, at] : fs.delivered) {
            done = std::max(done, at);
          }
          arrivals.push_back({d.stream_id, f.dst_host, seq, done, f.index,
                              fs.any_retransmit});
        }
      }
    }
  }

  for (auto& [key, t] : r.seqs) {
    if (t.retransmitted) {
      r.retransmitted_seqs++;
    }
  }

  // Receiver-side gap walk: per (stream, dst), replay completed arrivals in time
  // order. A seq landing after a higher seq already landed fills a gap; whether a
  // retransmitted tx filled it separates loss from plain jitter reordering.
  std::sort(arrivals.begin(), arrivals.end(), [](const ArrivalEvent& a,
                                                 const ArrivalEvent& b) {
    if (a.stream_id != b.stream_id) {
      return a.stream_id < b.stream_id;
    }
    if (a.dst != b.dst) {
      return a.dst < b.dst;
    }
    if (a.at != b.at) {
      return a.at < b.at;
    }
    return a.capture_index < b.capture_index;
  });
  size_t i = 0;
  while (i < arrivals.size()) {
    size_t j = i;
    while (j < arrivals.size() && arrivals[j].stream_id == arrivals[i].stream_id &&
           arrivals[j].dst == arrivals[i].dst) {
      ++j;
    }
    uint64_t max_seq = 0;
    std::map<uint64_t, size_t> open;  // missing seq -> index into r.gaps
    for (size_t k = i; k < j; ++k) {
      const ArrivalEvent& ev = arrivals[k];
      if (max_seq == 0) {
        max_seq = ev.seq;  // capture may start mid-stream; baseline, no gaps yet
        continue;
      }
      if (ev.seq > max_seq + 1) {
        for (uint64_t m = max_seq + 1; m < ev.seq; ++m) {
          GapAnnotation g;
          g.stream_id = ev.stream_id;
          g.dst_host = ev.dst;
          g.seq = m;
          g.opened_at = ev.at;
          g.overtaken_by = ev.seq;
          open[m] = r.gaps.size();
          r.gaps.push_back(g);
        }
      } else if (ev.seq <= max_seq) {
        auto it = open.find(ev.seq);
        if (it != open.end()) {
          GapAnnotation& g = r.gaps[it->second];
          g.filled = true;
          g.filled_at = ev.at;
          g.via_retransmit = ev.via_retransmit;
          (ev.via_retransmit ? r.gaps_filled_by_retransmit
                             : r.gaps_filled_by_reorder)++;
          open.erase(it);
        }
      }
      max_seq = std::max(max_seq, ev.seq);
    }
    i = j;
  }

  return r;
}

std::string RenderReassemblyText(const ReassemblyReport& r) {
  std::string out;
  out += "reassembly: data_records=" + std::to_string(r.data_records) +
         " seqs=" + std::to_string(r.seqs.size()) +
         " retransmitted=" + std::to_string(r.retransmitted_seqs) +
         " drops=" + std::to_string(r.total_drops) +
         " dup_deliveries=" + std::to_string(r.dup_deliveries) +
         " naks=" + std::to_string(r.nak_frames) + "\n";
  for (const auto& [key, t] : r.seqs) {
    if (!t.retransmitted && t.drops == 0 && t.dup_deliveries == 0 &&
        t.nak_indices.empty()) {
      continue;  // clean seqs stay silent; the summary line carries the count
    }
    out += "  stream=" + std::to_string(t.stream_id) + " seq=" +
           std::to_string(t.seq) + " tx=" + std::to_string(t.transmissions) +
           " drops=" + std::to_string(t.drops);
    if (t.retransmitted) {
      out += " RETRANSMITTED";
    }
    if (!t.nak_indices.empty()) {
      out += " naks=[";
      for (size_t i = 0; i < t.nak_indices.size(); ++i) {
        out += (i ? "," : "") + std::to_string(t.nak_indices[i]);
      }
      out += "]";
    }
    if (!t.caused_by_drops.empty()) {
      out += " repaired_drops=[";
      for (size_t i = 0; i < t.caused_by_drops.size(); ++i) {
        out += (i ? "," : "") + std::to_string(t.caused_by_drops[i]);
      }
      out += "]";
    }
    if (t.dup_deliveries > 0) {
      out += " dups=" + std::to_string(t.dup_deliveries);
    }
    out += "\n";
  }
  for (const GapAnnotation& g : r.gaps) {
    out += "  gap stream=" + std::to_string(g.stream_id) + " dst=" +
           std::to_string(g.dst_host) + " seq=" + std::to_string(g.seq) +
           " opened_at=" + std::to_string(g.opened_at) + " overtaken_by=" +
           std::to_string(g.overtaken_by);
    if (g.filled) {
      out += " filled_at=" + std::to_string(g.filled_at) +
             (g.via_retransmit ? " via=retransmit" : " via=reorder");
    } else {
      out += " UNFILLED";
    }
    out += "\n";
  }
  out += "  gaps_filled: retransmit=" + std::to_string(r.gaps_filled_by_retransmit) +
         " reorder=" + std::to_string(r.gaps_filled_by_reorder) + "\n";
  return out;
}

}  // namespace ibus::capture
