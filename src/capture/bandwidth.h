// Bandwidth accountant: splits each segment's occupied microseconds (and wire
// bytes) into goodput / bus-envelope overhead / frame overhead / retransmit /
// internal-namespace traffic — the appendix's overhead-per-message analysis as a
// first-class report. Medium time is de-duplicated by transmission id, so a
// broadcast that fans out into N capture records (or gains fault duplicates) is
// charged exactly once.
#ifndef SRC_CAPTURE_BANDWIDTH_H_
#define SRC_CAPTURE_BANDWIDTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/capture/reassembly.h"
#include "src/sim/network.h"

namespace ibus::capture {

struct BandwidthShare {
  uint64_t us = 0;
  uint64_t bytes = 0;
};

struct SegmentBandwidth {
  SegmentId segment = 0;
  uint64_t transmissions = 0;  // distinct tx_ids that occupied the medium
  uint64_t records = 0;        // capture records observed on the segment
  uint64_t busy_us = 0;        // total serialization occupancy
  uint64_t total_bytes = 0;
  BandwidthShare goodput;         // application message payload bytes
  BandwidthShare envelope;        // bus framing: frame+packet headers, Message
                                  // envelope, and payload-less control frames
  BandwidthShare frame_overhead;  // modelled eth/ip/udp header bytes
  BandwidthShare retransmit;      // payload portion of retransmitted transmissions
  BandwidthShare internal;        // reserved "_ibus." namespace traffic
};

struct BandwidthReport {
  std::vector<SegmentBandwidth> segments;  // ordered by segment id
  SegmentBandwidth total;                  // segment field meaningless here
};

// Classification precedence per transmission: the frame-overhead bytes always go
// to frame_overhead; the payload portion goes to retransmit when the reassembler
// flagged the tx, else internal when every subject is reserved, else it splits
// into goodput (application payload bytes) and envelope (the rest).
BandwidthReport AccountBandwidth(const std::vector<CapturedFrame>& frames,
                                 const ReassemblyReport& reassembly);

// Deterministic table rendering / JSON object ({"segments":[...],"total":{...}}).
std::string RenderBandwidthText(const BandwidthReport& r);
std::string BandwidthJson(const BandwidthReport& r);

}  // namespace ibus::capture

#endif  // SRC_CAPTURE_BANDWIDTH_H_
