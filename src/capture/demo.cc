#include "src/capture/demo.h"

#include <memory>

#include "src/bus/certified.h"
#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/journal/journal.h"
#include "src/router/router.h"
#include "src/sim/simulator.h"
#include "src/sim/stable_store.h"

namespace ibus::capture {

namespace {

std::string Record(SimTime t, const std::string& who, const Message& m) {
  return "t=" + std::to_string(t) + " " + who + " subj=" + m.subject +
         " payload=" + ToString(m.payload);
}

}  // namespace

std::vector<std::string> RunCertifiedWanCaptureScenario(uint64_t seed,
                                                        NetworkTap* tap) {
  std::vector<std::string> trace;
  auto fail = [&trace](const std::string& what, const Status& s) {
    trace.clear();
    trace.push_back("error: " + what + ": " + s.ToString());
    return trace;
  };

  Simulator sim;
  Network net(&sim, seed);
  if (tap != nullptr) {
    net.AttachTap(tap);
  }
  SegmentId lan_a = net.AddSegment();
  SegmentId lan_b = net.AddSegment();
  std::vector<HostId> a_hosts, b_hosts;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  for (int i = 0; i < 2; ++i) {
    a_hosts.push_back(net.AddHost("a" + std::to_string(i), lan_a));
    b_hosts.push_back(net.AddHost("b" + std::to_string(i), lan_b));
  }
  for (HostId h : a_hosts) {
    auto d = BusDaemon::Start(&net, h, BusConfig());
    if (!d.ok()) {
      return fail("daemon a", d.status());
    }
    daemons.push_back(d.take());
  }
  for (HostId h : b_hosts) {
    auto d = BusDaemon::Start(&net, h, BusConfig());
    if (!d.ok()) {
      return fail("daemon b", d.status());
    }
    daemons.push_back(d.take());
  }

  auto router_bus_a = BusClient::Connect(&net, a_hosts[0], "_router:A");
  auto router_bus_b = BusClient::Connect(&net, b_hosts[0], "_router:B");
  if (!router_bus_a.ok() || !router_bus_b.ok()) {
    return fail("router bus", router_bus_a.ok() ? router_bus_b.status()
                                                : router_bus_a.status());
  }
  auto ra = InfoRouter::Listen(router_bus_a->get(), "_router:A", 8700);
  if (!ra.ok()) {
    return fail("router listen", ra.status());
  }
  sim.RunFor(50 * kMillisecond);
  auto rb = InfoRouter::Connect(router_bus_b->get(), "_router:B", a_hosts[0], 8700);
  if (!rb.ok()) {
    return fail("router connect", rb.status());
  }
  sim.RunFor(200 * kMillisecond);

  auto sub_bus = BusClient::Connect(&net, b_hosts[1], "consumer");
  if (!sub_bus.ok()) {
    return fail("consumer bus", sub_bus.status());
  }
  auto sub = CertifiedSubscriber::Create(sub_bus->get(), "orders.>", "consumer",
                                         [&](const Message& m) {
                                           trace.push_back(
                                               Record(sim.Now(), "consumer", m));
                                         });
  if (!sub.ok()) {
    return fail("certified subscriber", sub.status());
  }
  sim.RunFor(500 * kMillisecond);  // control plane (subs, adverts) crosses the WAN

  // Faults only after the handshake so every replay starts aligned; the certified
  // layer's NAK/retransmit traffic is exactly what the capture exists to show.
  FaultPlan faults;
  faults.drop_prob = 0.10;
  faults.jitter_us = 300;
  net.SetFaultPlan(lan_a, faults);
  net.SetFaultPlan(lan_b, faults);

  auto pub_bus = BusClient::Connect(&net, a_hosts[1], "producer");
  if (!pub_bus.ok()) {
    return fail("producer bus", pub_bus.status());
  }
  MemoryStableStore store;
  journal::JournalConfig ledger_config;
  ledger_config.sim = &sim;  // write-through (deadline 0): legacy stable-write timing
  auto ledger = journal::Journal::Open(&store, ledger_config);
  if (!ledger.ok()) {
    return fail("journal", ledger.status());
  }
  auto pub = CertifiedPublisher::Create(pub_bus->get(), ledger->get(), "orders-ledger");
  if (!pub.ok()) {
    return fail("certified publisher", pub.status());
  }
  for (int i = 0; i < 5; ++i) {
    Status s = (*pub)->Publish("orders.new", ToBytes("order" + std::to_string(i)));
    if (!s.ok()) {
      return fail("publish", s);
    }
    sim.RunFor(100 * kMillisecond);
  }
  sim.RunFor(5 * kSecond);

  trace.push_back("publisher published=" + std::to_string((*pub)->stats().published) +
                  " retransmits=" + std::to_string((*pub)->stats().retransmits) +
                  " retired=" + std::to_string((*pub)->stats().retired) +
                  " pending=" + std::to_string((*pub)->pending()));
  trace.push_back("subscriber delivered=" + std::to_string((*sub)->stats().delivered) +
                  " dup_dropped=" + std::to_string((*sub)->stats().duplicates_dropped) +
                  " acks=" + std::to_string((*sub)->stats().acks_sent));
  const Network::Stats& ns = net.stats();
  trace.push_back("net sent=" + std::to_string(ns.frames_sent) +
                  " delivered=" + std::to_string(ns.frames_delivered) +
                  " dropped_fault=" + std::to_string(ns.frames_dropped_fault) +
                  " duplicated=" + std::to_string(ns.frames_duplicated));
  if (tap != nullptr) {
    net.DetachTap(tap);
  }
  return trace;
}

}  // namespace ibus::capture
