#include "src/capture/dissect.h"

#include <algorithm>

#include "src/bus/message.h"
#include "src/proto/packets.h"
#include "src/subject/subject.h"
#include "src/wire/wire.h"

namespace ibus::capture {

namespace {

// Router link frame types; allocated in src/router/router.cc (file-local there, so
// the values are mirrored here — they are wire format, not API).
constexpr uint8_t kLinkAdvertFrame = 50;
constexpr uint8_t kLinkMessageFrame = 51;

std::string U(uint64_t v) { return std::to_string(v); }

DissectNode Leaf(std::string label) { return DissectNode{std::move(label), {}}; }

// The leading fields of a marshalled Message, parsed without requiring the payload
// bytes to be present — fragment 0 of a large message carries the whole envelope but
// only the first chunk of the payload.
struct EnvelopePrefix {
  bool ok = false;
  std::string subject;
  std::string reply_subject;
  std::string type_name;
  std::string sender;
  std::string via;
  uint64_t certified_id = 0;
  uint64_t publisher_id = 0;
  uint64_t trace_id = 0;
  uint8_t hops = 0;
  uint8_t trace_hop = 0;
  uint64_t declared_payload = 0;  // payload length the envelope promises
  size_t envelope_bytes = 0;      // bytes consumed before the payload data
};

EnvelopePrefix ParseEnvelopePrefix(const uint8_t* data, size_t size) {
  EnvelopePrefix e;
  WireReader r(data, size);
  auto subject = r.ReadString();
  auto reply = r.ReadString();
  auto type_name = r.ReadString();
  auto sender = r.ReadString();
  auto certified = r.ReadU64();
  auto publisher = r.ReadU64();
  auto hops = r.ReadU8();
  auto via = r.ReadString();
  auto trace_id = r.ReadU64();
  auto trace_hop = r.ReadU8();
  auto payload_len = r.ReadVarint();
  if (!subject.ok() || !reply.ok() || !type_name.ok() || !sender.ok() ||
      !certified.ok() || !publisher.ok() || !hops.ok() || !via.ok() || !trace_id.ok() ||
      !trace_hop.ok() || !payload_len.ok()) {
    return e;
  }
  e.ok = true;
  e.subject = subject.take();
  e.reply_subject = reply.take();
  e.type_name = type_name.take();
  e.sender = sender.take();
  e.via = via.take();
  e.certified_id = *certified;
  e.publisher_id = *publisher;
  e.hops = *hops;
  e.trace_hop = *trace_hop;
  e.trace_id = *trace_id;
  e.declared_payload = *payload_len;
  e.envelope_bytes = r.position();
  return e;
}

// Dissects one (possibly payload-truncated) marshalled Message into a subtree and
// folds its subject/goodput into the summary. `available` is how many bytes of this
// message actually sit in the frame (fragments carry fewer than declared).
void DissectMessage(const uint8_t* data, size_t available, Dissection* d,
                    DissectNode* parent) {
  EnvelopePrefix e = ParseEnvelopePrefix(data, available);
  if (!e.ok) {
    parent->children.push_back(Leaf("message: <unparseable envelope>"));
    return;
  }
  DissectNode m;
  m.label = "message: subject=" + e.subject;
  m.children.push_back(Leaf("subject: " + e.subject));
  if (!e.reply_subject.empty()) {
    m.children.push_back(Leaf("reply_subject: " + e.reply_subject));
  }
  if (!e.type_name.empty()) {
    m.children.push_back(Leaf("type_name: " + e.type_name));
  }
  if (!e.sender.empty()) {
    m.children.push_back(Leaf("sender: " + e.sender));
  }
  if (e.certified_id != 0) {
    m.children.push_back(Leaf("certified_id: " + U(e.certified_id)));
  }
  if (e.publisher_id != 0) {
    m.children.push_back(Leaf("publisher_id: " + U(e.publisher_id)));
  }
  if (e.hops != 0) {
    m.children.push_back(Leaf("hops: " + U(e.hops) + " via=" + e.via));
  }
  if (e.trace_id != 0) {
    m.children.push_back(
        Leaf("trace: id=" + U(e.trace_id) + " hop=" + U(e.trace_hop)));
  }
  const size_t present =
      std::min<size_t>(e.declared_payload,
                       available > e.envelope_bytes ? available - e.envelope_bytes : 0);
  std::string pl = "payload: " + U(e.declared_payload) + " bytes";
  if (present < e.declared_payload) {
    pl += " (" + U(present) + " in this fragment)";
  }
  m.children.push_back(Leaf(pl));
  parent->children.push_back(std::move(m));

  d->subjects.push_back(e.subject);
  d->app_payload_bytes += present;
}

// Fast path of the above: subject only, no tree.
void PeekMessageSubject(const uint8_t* data, size_t size,
                        std::vector<std::string>* out) {
  WireReader r(data, size);
  if (auto s = r.ReadString(); s.ok()) {
    out->push_back(s.take());
  }
}

}  // namespace

std::string FrameKindName(uint8_t frame_type) {
  switch (frame_type) {
    case kPktData:
      return "data";
    case kPktBatch:
      return "batch";
    case kPktHeartbeat:
      return "heartbeat";
    case kPktNak:
      return "nak";
    case kPktClientRegister:
      return "client_register";
    case kPktClientMessage:
      return "client_message";
    case kPktSubscribe:
      return "subscribe";
    case kPktUnsubscribe:
      return "unsubscribe";
    case kPktClientDeliver:
      return "client_deliver";
    case kPktCertifiedAck:
      return "certified_ack";
    case kPktClientUnregister:
      return "client_unregister";
    case kLinkAdvertFrame:
      return "link_advert";
    case kLinkMessageFrame:
      return "link_message";
    default:
      return "unknown_" + std::to_string(frame_type);
  }
}

Dissection DissectFrame(const Bytes& frame_bytes) {
  Dissection d;
  auto frame = ParseFrame(frame_bytes);
  if (!frame.ok()) {
    d.kind = "unparsed";
    d.root = Leaf("frame: <not a bus frame: " + frame.status().message() + ">");
    return d;
  }
  d.parsed = true;
  d.frame_type = frame->frame_type;
  d.kind = FrameKindName(frame->frame_type);
  const Bytes& p = frame->payload;
  d.root.label = "frame: " + d.kind + " payload_len=" + U(p.size());

  switch (frame->frame_type) {
    case kPktData: {
      auto pkt = DataPacket::Unmarshal(p);
      if (!pkt.ok()) {
        d.root.children.push_back(Leaf("data: <unparseable>"));
        break;
      }
      d.stream_id = pkt->stream_id;
      d.seqs.push_back(pkt->seq);
      d.frag_index = pkt->frag_index;
      d.frag_count = pkt->frag_count;
      DissectNode n;
      n.label = "data: stream=" + U(pkt->stream_id) + " seq=" + U(pkt->seq) +
                " frag=" + U(pkt->frag_index) + "/" + U(pkt->frag_count) +
                " chunk=" + U(pkt->chunk.size()) + "B";
      if (pkt->frag_index == 0) {
        // Fragment 0 (or the only fragment) begins with the Message envelope.
        DissectMessage(pkt->chunk.data(), pkt->chunk.size(), &d, &n);
      } else {
        // Continuation fragments carry raw payload bytes; the envelope was charged
        // on fragment 0, so everything here is application goodput.
        n.children.push_back(Leaf("continuation: " + U(pkt->chunk.size()) + "B"));
        d.app_payload_bytes += pkt->chunk.size();
      }
      d.root.children.push_back(std::move(n));
      break;
    }
    case kPktBatch: {
      auto pkt = BatchPacket::Unmarshal(p);
      if (!pkt.ok()) {
        d.root.children.push_back(Leaf("batch: <unparseable>"));
        break;
      }
      d.stream_id = pkt->stream_id;
      DissectNode n;
      n.label = "batch: stream=" + U(pkt->stream_id) + " first_seq=" +
                U(pkt->first_seq) + " messages=" + U(pkt->messages.size());
      for (size_t i = 0; i < pkt->messages.size(); ++i) {
        d.seqs.push_back(pkt->first_seq + i);
        DissectMessage(pkt->messages[i].data(), pkt->messages[i].size(), &d, &n);
      }
      d.root.children.push_back(std::move(n));
      break;
    }
    case kPktHeartbeat: {
      d.control = true;
      auto pkt = HeartbeatPacket::Unmarshal(p);
      if (pkt.ok()) {
        d.stream_id = pkt->stream_id;
        d.root.children.push_back(Leaf(
            "heartbeat: stream=" + U(pkt->stream_id) + " highest=" +
            U(pkt->highest_seq) + " lowest_retained=" + U(pkt->lowest_retained)));
      }
      break;
    }
    case kPktNak: {
      d.control = true;
      auto pkt = NakPacket::Unmarshal(p);
      if (pkt.ok()) {
        d.stream_id = pkt->stream_id;
        d.nak_missing = pkt->missing;
        std::string missing;
        for (uint64_t s : pkt->missing) {
          if (!missing.empty()) {
            missing += ",";
          }
          missing += U(s);
        }
        d.root.children.push_back(
            Leaf("nak: stream=" + U(pkt->stream_id) + " missing=[" + missing + "]"));
      }
      break;
    }
    case kPktClientRegister: {
      d.control = true;
      WireReader r(p);
      if (auto name = r.ReadString(); name.ok()) {
        d.root.children.push_back(Leaf("register: client=" + *name));
      }
      break;
    }
    case kPktClientUnregister:
      d.control = true;
      d.root.children.push_back(Leaf("unregister"));
      break;
    case kPktSubscribe: {
      d.control = true;
      WireReader r(p);
      auto sub_id = r.ReadU64();
      auto pattern = r.ReadString();
      if (sub_id.ok() && pattern.ok()) {
        d.root.children.push_back(
            Leaf("subscribe: sub_id=" + U(*sub_id) + " pattern=" + *pattern));
      }
      break;
    }
    case kPktUnsubscribe: {
      d.control = true;
      WireReader r(p);
      if (auto sub_id = r.ReadU64(); sub_id.ok()) {
        d.root.children.push_back(Leaf("unsubscribe: sub_id=" + U(*sub_id)));
      }
      break;
    }
    case kPktClientMessage:
      DissectMessage(p.data(), p.size(), &d, &d.root);
      break;
    case kPktClientDeliver: {
      WireReader r(p);
      auto count = r.ReadVarint();
      if (!count.ok()) {
        d.root.children.push_back(Leaf("deliver: <unparseable>"));
        break;
      }
      DissectNode n;
      std::string ids;
      bool ok = true;
      for (uint64_t i = 0; i < *count; ++i) {
        auto id = r.ReadU64();
        if (!id.ok()) {
          ok = false;
          break;
        }
        if (!ids.empty()) {
          ids += ",";
        }
        ids += U(*id);
      }
      n.label = "deliver: subs=[" + ids + "]";
      if (ok && r.remaining() > 0) {
        DissectMessage(p.data() + r.position(), r.remaining(), &d, &n);
      }
      d.root.children.push_back(std::move(n));
      break;
    }
    case kPktCertifiedAck:
      // Allocated in src/proto/packets.h; certified acks currently ride the bus as
      // "_ibus.cert." messages instead, so this stays opaque if it ever appears.
      d.control = true;
      d.root.children.push_back(Leaf("certified_ack: " + U(p.size()) + "B"));
      break;
    case kLinkAdvertFrame: {
      d.control = true;
      WireReader r(p);
      auto count = r.ReadVarint();
      if (!count.ok()) {
        break;
      }
      DissectNode n;
      n.label = "advert: patterns=" + U(*count);
      for (uint64_t i = 0; i < *count; ++i) {
        auto pat = r.ReadString();
        if (!pat.ok()) {
          break;
        }
        n.children.push_back(Leaf("pattern: " + *pat));
      }
      d.root.children.push_back(std::move(n));
      break;
    }
    case kLinkMessageFrame:
      DissectMessage(p.data(), p.size(), &d, &d.root);
      break;
    default:
      d.root.children.push_back(Leaf("opaque: " + U(p.size()) + "B"));
      break;
  }

  d.internal = !d.subjects.empty();
  for (const std::string& s : d.subjects) {
    if (!IsReservedSubject(s)) {
      d.internal = false;
      break;
    }
  }
  if (d.subjects.empty() && d.app_payload_bytes == 0 && !d.control) {
    d.control = true;  // nothing application-visible inside
  }
  return d;
}

std::vector<std::string> PeekSubjects(const Bytes& frame_bytes) {
  std::vector<std::string> subjects;
  auto frame = ParseFrame(frame_bytes);
  if (!frame.ok()) {
    return subjects;
  }
  const Bytes& p = frame->payload;
  switch (frame->frame_type) {
    case kPktData: {
      auto pkt = DataPacket::Unmarshal(p);
      if (pkt.ok() && pkt->frag_index == 0) {
        PeekMessageSubject(pkt->chunk.data(), pkt->chunk.size(), &subjects);
      }
      break;
    }
    case kPktBatch: {
      auto pkt = BatchPacket::Unmarshal(p);
      if (pkt.ok()) {
        for (const Bytes& m : pkt->messages) {
          PeekMessageSubject(m.data(), m.size(), &subjects);
        }
      }
      break;
    }
    case kPktClientMessage:
    case kLinkMessageFrame:
      PeekMessageSubject(p.data(), p.size(), &subjects);
      break;
    case kPktClientDeliver: {
      WireReader r(p);
      auto count = r.ReadVarint();
      if (!count.ok()) {
        break;
      }
      for (uint64_t i = 0; i < *count; ++i) {
        if (!r.ReadU64().ok()) {
          return subjects;
        }
      }
      if (r.remaining() > 0) {
        PeekMessageSubject(p.data() + r.position(), r.remaining(), &subjects);
      }
      break;
    }
    default:
      break;
  }
  return subjects;
}

std::string RenderTree(const DissectNode& node) {
  std::string out;
  struct Frame {
    const DissectNode* node;
    int depth;
  };
  std::vector<Frame> stack{{&node, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    out.append(static_cast<size_t>(f.depth) * 2, ' ');
    out += f.node->label;
    out += '\n';
    for (auto it = f.node->children.rbegin(); it != f.node->children.rend(); ++it) {
      stack.push_back({&*it, f.depth + 1});
    }
  }
  return out;
}

}  // namespace ibus::capture
