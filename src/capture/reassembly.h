// Reliable-stream reassembler over a capture: rebuilds every sender's sequence
// timeline from the wire (which tx carried which seq, which copies were dropped,
// duplicated, or retransmitted), correlates drops with the NAKs and retransmits
// they caused, and annotates each receiver's arrival order with the gaps that
// reordering/loss opened and when they were filled. This is the wire-side view of
// the paper's NAK/retransmission protocol (§3.1).
#ifndef SRC_CAPTURE_REASSEMBLY_H_
#define SRC_CAPTURE_REASSEMBLY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/network.h"

namespace ibus::capture {

// One on-the-wire appearance of a (stream, seq): a per-receiver capture record.
struct SeqAttempt {
  uint64_t capture_index = 0;
  uint64_t tx_id = 0;
  HostId dst_host = kNoHost;
  SimTime sent_at = 0;
  SimTime at = 0;  // fate time (delivery or drop decision)
  FrameFate fate = FrameFate::kDelivered;
  bool duplicate = false;   // fault-made copy
  bool retransmit = false;  // a later tx of an already-transmitted seq
};

// Per-sender sequence timeline entry.
struct SeqTimeline {
  uint64_t stream_id = 0;
  uint64_t seq = 0;
  std::vector<SeqAttempt> attempts;    // capture order
  uint32_t transmissions = 0;          // distinct medium transmissions (tx_ids)
  uint32_t drops = 0;                  // attempts lost (fault/partition/...)
  uint32_t dup_deliveries = 0;         // fault-made duplicate deliveries
  bool retransmitted = false;
  std::vector<uint64_t> nak_indices;   // capture indices of NAKs requesting it
  // Drop records whose loss this seq's retransmissions repaired: for each
  // retransmit tx, the dropped attempts of earlier txs of the same seq.
  std::vector<uint64_t> caused_by_drops;
};

// One hole in a receiver's arrival order: opened when a higher seq arrived while
// `seq` was still outstanding; filled when `seq` finally landed. `via_retransmit`
// distinguishes loss (repaired by the NAK protocol) from plain jitter reordering.
struct GapAnnotation {
  uint64_t stream_id = 0;
  HostId dst_host = kNoHost;
  uint64_t seq = 0;
  SimTime opened_at = 0;       // arrival time of the overtaking seq
  uint64_t overtaken_by = 0;   // the seq whose arrival exposed the hole
  bool filled = false;
  SimTime filled_at = 0;
  bool via_retransmit = false;  // filled by a retransmitted tx (loss, not reorder)
};

struct ReassemblyReport {
  // (stream_id, seq) -> timeline, deterministic iteration order.
  std::map<std::pair<uint64_t, uint64_t>, SeqTimeline> seqs;
  std::vector<GapAnnotation> gaps;
  std::set<uint64_t> retransmit_tx_ids;  // consumed by the bandwidth accountant

  uint64_t data_records = 0;
  uint64_t retransmitted_seqs = 0;
  uint64_t total_drops = 0;
  uint64_t dup_deliveries = 0;
  uint64_t nak_frames = 0;
  uint64_t gaps_filled_by_retransmit = 0;
  uint64_t gaps_filled_by_reorder = 0;
};

ReassemblyReport Reassemble(const std::vector<CapturedFrame>& frames);

// Deterministic multi-line rendering (per-seq timelines with annotations, then the
// gap list and totals).
std::string RenderReassemblyText(const ReassemblyReport& r);

}  // namespace ibus::capture

#endif  // SRC_CAPTURE_REASSEMBLY_H_
