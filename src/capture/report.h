// Deterministic capture reports for tools/buscap: a human-readable text report
// (summary, per-frame protocol trees, reassembly annotations, bandwidth table) and
// a machine-readable JSONL stream (one object per record plus trailing reassembly
// and bandwidth summary objects). Output is a pure function of the capture records,
// so replays of the same seed render byte-identically.
#ifndef SRC_CAPTURE_REPORT_H_
#define SRC_CAPTURE_REPORT_H_

#include <string>
#include <vector>

#include "src/sim/network.h"

namespace ibus::capture {

struct ReportOptions {
  // Cap on per-frame lines in the text report (0 = unlimited). The summary,
  // reassembly, and bandwidth sections always cover the full capture.
  size_t max_frames = 0;
  bool with_trees = false;  // include full protocol trees in the text report
};

std::string TextReport(const std::vector<CapturedFrame>& frames,
                       const ReportOptions& opts = ReportOptions());

std::string JsonlReport(const std::vector<CapturedFrame>& frames);

// JSON string escaping for the few free-form fields (subjects, kinds).
std::string JsonEscape(const std::string& s);

}  // namespace ibus::capture

#endif  // SRC_CAPTURE_REPORT_H_
