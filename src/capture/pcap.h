// Standard pcap export with a custom link type so real Wireshark opens simulator
// traces. Each packet is a fixed 44-byte sim-metadata pseudo-header (capture index,
// tx id, segment, endpoints, connection id, fate, flags — everything pcap's own
// header cannot carry) followed by the raw bus frame. Timestamps are simulated
// microseconds since sim start, not wall clock; see docs/TELEMETRY.md for the
// caveats (LINKTYPE_USER0 needs a manual DLT mapping in Wireshark, and dropped
// frames appear in the trace with their drop-decision time).
#ifndef SRC_CAPTURE_PCAP_H_
#define SRC_CAPTURE_PCAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/network.h"

namespace ibus::capture {

// LINKTYPE_USER0: the private-use range; consumers must map it to a dissector.
inline constexpr uint32_t kPcapMagic = 0xa1b2c3d4u;  // microsecond-resolution pcap
inline constexpr uint32_t kPcapLinkType = 147;
inline constexpr size_t kPcapMetaSize = 44;  // pseudo-header bytes per packet

// Serializes the records as a pcap byte stream (global header + one packet per
// record, ordered by fate time). Exposed for tests; WritePcapFile wraps it.
Bytes SerializePcap(const std::vector<CapturedFrame>& frames);

Status WritePcapFile(const std::string& path,
                     const std::vector<CapturedFrame>& frames);

}  // namespace ibus::capture

#endif  // SRC_CAPTURE_PCAP_H_
