// The canonical capture scenario: certified delivery across two LANs joined by an
// information-router pair over the lossy WAN, with a wire tap attached for the
// whole run. Shared by tools/buscap (--demo), the capture tests, the router_wan
// bench breakdown, and sim_replay_check scenario 6 — one definition so the golden
// reports, the replay hashes, and the CLI all describe the same bytes.
#ifndef SRC_CAPTURE_DEMO_H_
#define SRC_CAPTURE_DEMO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/capture/capture.h"

namespace ibus::capture {

// Runs the scenario with `tap` attached to the network from the first frame
// (nullptr runs untapped). Returns the delivery/stat trace lines the replay gate
// hashes; on setup failure the trace carries a single "error: ..." line.
std::vector<std::string> RunCertifiedWanCaptureScenario(uint64_t seed,
                                                        NetworkTap* tap);

}  // namespace ibus::capture

#endif  // SRC_CAPTURE_DEMO_H_
