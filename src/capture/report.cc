#include "src/capture/report.h"

#include <array>
#include <map>

#include "src/capture/bandwidth.h"
#include "src/capture/capture.h"
#include "src/capture/dissect.h"
#include "src/capture/reassembly.h"

namespace ibus::capture {

namespace {

std::string U(uint64_t v) { return std::to_string(v); }

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string TextReport(const std::vector<CapturedFrame>& frames,
                       const ReportOptions& opts) {
  ReassemblyReport reassembly = Reassemble(frames);
  BandwidthReport bandwidth = AccountBandwidth(frames, reassembly);

  std::map<FrameFate, uint64_t> fates;
  std::map<std::string, uint64_t> kinds;
  for (const CapturedFrame& f : frames) {
    fates[f.fate]++;
    kinds[DissectFrame(f.payload).kind]++;
  }

  std::string out;
  out += "== capture: " + U(frames.size()) + " records, hash=" +
         U(CaptureBuffer::CaptureHash(frames)) + "\n";
  out += "fates:";
  for (const auto& [fate, n] : fates) {
    out += std::string(" ") + FrameFateName(fate) + "=" + U(n);
  }
  out += "\n";
  out += "kinds:";
  for (const auto& [kind, n] : kinds) {
    out += " " + kind + "=" + U(n);
  }
  out += "\n";

  out += "== frames\n";
  size_t shown = 0;
  for (const CapturedFrame& f : frames) {
    if (opts.max_frames != 0 && shown >= opts.max_frames) {
      out += "  ... " + U(frames.size() - shown) + " more records elided\n";
      break;
    }
    Dissection d = DissectFrame(f.payload);
    out += "  " + CanonicalRecord(f) + " kind=" + d.kind;
    if (!d.subjects.empty()) {
      out += " subjects=[";
      for (size_t i = 0; i < d.subjects.size(); ++i) {
        out += (i ? "," : "") + d.subjects[i];
      }
      out += "]";
    }
    out += "\n";
    if (opts.with_trees) {
      std::string tree = RenderTree(d.root);
      size_t pos = 0;
      while (pos < tree.size()) {
        size_t nl = tree.find('\n', pos);
        out += "    " + tree.substr(pos, nl - pos) + "\n";
        pos = nl == std::string::npos ? tree.size() : nl + 1;
      }
    }
    shown++;
  }

  out += "== reassembly\n";
  out += RenderReassemblyText(reassembly);
  out += "== bandwidth\n";
  out += RenderBandwidthText(bandwidth);
  return out;
}

std::string JsonlReport(const std::vector<CapturedFrame>& frames) {
  ReassemblyReport reassembly = Reassemble(frames);
  BandwidthReport bandwidth = AccountBandwidth(frames, reassembly);

  std::string out;
  for (const CapturedFrame& f : frames) {
    Dissection d = DissectFrame(f.payload);
    std::string line = "{\"record\": {";
    line += "\"index\": " + U(f.index) + ", \"tx\": " + U(f.tx_id) +
            ", \"segment\": " + U(f.segment) + ", \"src\": \"" + U(f.src_host) +
            ":" + U(f.src_port) + "\", \"dst\": \"" + U(f.dst_host) + ":" +
            U(f.dst_port) + "\", \"fate\": \"" + FrameFateName(f.fate) +
            "\", \"sent_us\": " + U(static_cast<uint64_t>(f.sent_at)) +
            ", \"at_us\": " + U(static_cast<uint64_t>(f.delivered_at)) +
            ", \"queued_us\": " + U(static_cast<uint64_t>(f.queued_us)) +
            ", \"wire_us\": " + U(static_cast<uint64_t>(f.wire_us)) +
            ", \"bytes\": " + U(f.wire_bytes) + ", \"kind\": \"" +
            JsonEscape(d.kind) + "\"";
    if (!d.subjects.empty()) {
      line += ", \"subjects\": [";
      for (size_t i = 0; i < d.subjects.size(); ++i) {
        line += (i ? ", " : "") + std::string("\"") + JsonEscape(d.subjects[i]) +
                "\"";
      }
      line += "]";
    }
    if (!d.seqs.empty()) {
      line += ", \"stream\": " + U(d.stream_id) + ", \"seqs\": [";
      for (size_t i = 0; i < d.seqs.size(); ++i) {
        line += (i ? ", " : "") + U(d.seqs[i]);
      }
      line += "]";
    }
    if (f.conn_id != 0) {
      line += ", \"conn\": " + U(f.conn_id) + ", \"conn_msg\": " + U(f.conn_msg_id);
    }
    std::string flags;
    if (f.broadcast) {
      flags += "b";
    }
    if (f.duplicate) {
      flags += "d";
    }
    if (f.continuation) {
      flags += "c";
    }
    if (!flags.empty()) {
      line += ", \"flags\": \"" + flags + "\"";
    }
    line += "}}";
    out += line + "\n";
  }

  out += "{\"reassembly\": {\"data_records\": " + U(reassembly.data_records) +
         ", \"seqs\": " + U(reassembly.seqs.size()) + ", \"retransmitted_seqs\": " +
         U(reassembly.retransmitted_seqs) + ", \"drops\": " +
         U(reassembly.total_drops) + ", \"dup_deliveries\": " +
         U(reassembly.dup_deliveries) + ", \"naks\": " + U(reassembly.nak_frames) +
         ", \"gaps\": " + U(reassembly.gaps.size()) +
         ", \"gaps_filled_by_retransmit\": " +
         U(reassembly.gaps_filled_by_retransmit) +
         ", \"gaps_filled_by_reorder\": " + U(reassembly.gaps_filled_by_reorder) +
         "}}\n";
  out += "{\"bandwidth\": " + BandwidthJson(bandwidth) + "}\n";
  out += "{\"capture_hash\": " + U(CaptureBuffer::CaptureHash(frames)) + "}\n";
  return out;
}

}  // namespace ibus::capture
