#include "src/capture/capture.h"

#include <fstream>

#include "src/capture/dissect.h"
#include "src/subject/subject.h"
#include "src/wire/wire.h"

namespace ibus::capture {

namespace {

constexpr uint8_t kFlagBroadcast = 1u << 0;
constexpr uint8_t kFlagDuplicate = 1u << 1;
constexpr uint8_t kFlagContinuation = 1u << 2;

}  // namespace

Status CaptureBuffer::SetFilter(const std::string& pattern) {
  if (pattern.empty()) {
    filter_.clear();
    return OkStatus();
  }
  IBUS_RETURN_IF_ERROR(ValidatePattern(pattern));
  filter_ = pattern;
  return OkStatus();
}

void CaptureBuffer::OnFrame(const CapturedFrame& frame) {
  seen_++;
  if (!filter_.empty()) {
    bool match = false;
    for (const std::string& s : PeekSubjects(frame.payload)) {
      if (SubjectMatches(filter_, s)) {
        match = true;
        break;
      }
    }
    if (!match) {
      return;
    }
  }
  frames_.push_back(frame);
}

void CaptureBuffer::Clear() {
  frames_.clear();
  seen_ = 0;
}

uint64_t Fnv1a(const uint8_t* data, size_t size, uint64_t h) {
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::string CanonicalRecord(const CapturedFrame& f) {
  uint64_t payload_fnv = Fnv1a(f.payload.data(), f.payload.size());
  std::string s = "idx=" + std::to_string(f.index) + " tx=" + std::to_string(f.tx_id) +
                  " seg=" + std::to_string(f.segment) + " src=" +
                  std::to_string(f.src_host) + ":" + std::to_string(f.src_port) +
                  " dst=" + std::to_string(f.dst_host) + ":" +
                  std::to_string(f.dst_port) + " fate=" + FrameFateName(f.fate) +
                  " sent=" + std::to_string(f.sent_at) + " at=" +
                  std::to_string(f.delivered_at) + " queued=" +
                  std::to_string(f.queued_us) + " wire=" + std::to_string(f.wire_us) +
                  " bytes=" + std::to_string(f.wire_bytes) + " ovh=" +
                  std::to_string(f.frame_overhead);
  if (f.conn_id != 0) {
    s += " conn=" + std::to_string(f.conn_id) + "/" + std::to_string(f.conn_msg_id);
  }
  if (f.broadcast) {
    s += " bcast";
  }
  if (f.duplicate) {
    s += " dup";
  }
  if (f.continuation) {
    s += " cont";
  }
  s += " payload_fnv=" + std::to_string(payload_fnv);
  return s;
}

uint64_t CaptureBuffer::CaptureHash(const std::vector<CapturedFrame>& frames) {
  uint64_t h = 1469598103934665603ull;
  for (const CapturedFrame& f : frames) {
    std::string line = CanonicalRecord(f);
    h = Fnv1a(reinterpret_cast<const uint8_t*>(line.data()), line.size(), h);
    h ^= '\n';
    h *= 1099511628211ull;
  }
  return h;
}

// wirecheck: codec(capture_file, version=1)
Bytes SerializeCapture(const std::vector<CapturedFrame>& frames) {
  WireWriter w;
  w.PutU32(kCaptureMagic);
  w.PutU16(kCaptureVersion);
  w.PutVarint(frames.size());
  for (const CapturedFrame& f : frames) {
    w.PutVarint(f.index);
    w.PutVarint(f.tx_id);
    w.PutU32(f.segment);
    w.PutU32(f.src_host);
    w.PutU16(f.src_port);
    w.PutU32(f.dst_host);
    w.PutU16(f.dst_port);
    w.PutVarint(f.conn_id);
    w.PutVarint(f.conn_msg_id);
    uint8_t flags = 0;
    flags |= f.broadcast ? kFlagBroadcast : 0;
    flags |= f.duplicate ? kFlagDuplicate : 0;
    flags |= f.continuation ? kFlagContinuation : 0;
    w.PutU8(flags);
    w.PutU8(static_cast<uint8_t>(f.fate));
    w.PutI64(f.sent_at);
    w.PutI64(f.delivered_at);
    w.PutI64(f.queued_us);
    w.PutI64(f.wire_us);
    w.PutU32(f.wire_bytes);
    w.PutU32(f.frame_overhead);
    w.PutBytes(f.payload);
  }
  return w.Take();
}

// wirecheck: codec(capture_file, version=1)
Result<std::vector<CapturedFrame>> DeserializeCapture(const Bytes& data) {
  WireReader r(data);
  auto magic = r.ReadU32();
  auto version = r.ReadU16();
  if (!magic.ok() || !version.ok() || *magic != kCaptureMagic) {
    return DataLoss("capture: bad magic (not an IBCP capture file)");
  }
  if (*version != kCaptureVersion) {
    return Unimplemented("capture: unsupported version " + std::to_string(*version));
  }
  auto count = r.ReadVarint();
  if (!count.ok()) {
    return DataLoss("capture: truncated header");
  }
  // Each record is dozens of bytes on the wire; a count beyond the remaining
  // byte budget is corrupt and must not size an allocation.
  if (*count > r.remaining()) {
    return DataLoss("capture: implausible frame count");
  }
  std::vector<CapturedFrame> frames;
  frames.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    CapturedFrame f;
    auto index = r.ReadVarint();
    auto tx_id = r.ReadVarint();
    auto segment = r.ReadU32();
    auto src_host = r.ReadU32();
    auto src_port = r.ReadU16();
    auto dst_host = r.ReadU32();
    auto dst_port = r.ReadU16();
    auto conn_id = r.ReadVarint();
    auto conn_msg_id = r.ReadVarint();
    auto flags = r.ReadU8();
    auto fate = r.ReadU8();
    auto sent_at = r.ReadI64();
    auto delivered_at = r.ReadI64();
    auto queued_us = r.ReadI64();
    auto wire_us = r.ReadI64();
    auto wire_bytes = r.ReadU32();
    auto frame_overhead = r.ReadU32();
    auto payload = r.ReadBytes();
    if (!index.ok() || !tx_id.ok() || !segment.ok() || !src_host.ok() ||
        !src_port.ok() || !dst_host.ok() || !dst_port.ok() || !conn_id.ok() ||
        !conn_msg_id.ok() || !flags.ok() || !fate.ok() || !sent_at.ok() ||
        !delivered_at.ok() || !queued_us.ok() || !wire_us.ok() || !wire_bytes.ok() ||
        !frame_overhead.ok() || !payload.ok()) {
      return DataLoss("capture: truncated record " + std::to_string(i));
    }
    if (*fate < static_cast<uint8_t>(FrameFate::kDelivered) ||
        *fate > static_cast<uint8_t>(FrameFate::kDroppedNoListener)) {
      return DataLoss("capture: record " + std::to_string(i) + " has unknown fate " +
                      std::to_string(*fate));
    }
    f.index = *index;
    f.tx_id = *tx_id;
    f.segment = *segment;
    f.src_host = *src_host;
    f.src_port = *src_port;
    f.dst_host = *dst_host;
    f.dst_port = *dst_port;
    f.conn_id = *conn_id;
    f.conn_msg_id = *conn_msg_id;
    f.broadcast = (*flags & kFlagBroadcast) != 0;
    f.duplicate = (*flags & kFlagDuplicate) != 0;
    f.continuation = (*flags & kFlagContinuation) != 0;
    f.fate = static_cast<FrameFate>(*fate);
    f.sent_at = *sent_at;
    f.delivered_at = *delivered_at;
    f.queued_us = *queued_us;
    f.wire_us = *wire_us;
    f.wire_bytes = *wire_bytes;
    f.frame_overhead = *frame_overhead;
    f.payload = payload.take();
    frames.push_back(std::move(f));
  }
  if (!r.AtEnd()) {
    return DataLoss("capture: trailing bytes after last record");
  }
  return frames;
}

Status WriteCaptureFile(const std::string& path,
                        const std::vector<CapturedFrame>& frames) {
  Bytes data = SerializeCapture(frames);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Unavailable("capture: cannot open " + path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) {
    return DataLoss("capture: short write to " + path);
  }
  return OkStatus();
}

Result<std::vector<CapturedFrame>> ReadCaptureFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFound("capture: cannot open " + path);
  }
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return DeserializeCapture(data);
}

}  // namespace ibus::capture
