// Capture plane over sim::Network taps: an in-memory ring of CapturedFrame records
// with an optional subject filter (compiled with the real src/subject grammar), a
// stable on-disk capture-file format, and an order-sensitive FNV-1a hash used by the
// determinism gate (sim_replay_check scenario 6) — identical seeds must yield
// bit-identical captures, fault fates included. See docs/TELEMETRY.md ("Wire
// capture") for the file format and fate taxonomy.
#ifndef SRC_CAPTURE_CAPTURE_H_
#define SRC_CAPTURE_CAPTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/network.h"

namespace ibus::capture {

// Capture-file magic: "IBCP" as little-endian u32, version 1. Records are the
// CapturedFrame fields in declaration order via src/wire primitives.
inline constexpr uint32_t kCaptureMagic = 0x50434249u;  // "IBCP"
inline constexpr uint16_t kCaptureVersion = 1;

// NetworkTap that appends every observed frame. With a filter set, only frames
// whose dissection yields at least one subject matching the pattern are kept;
// subject-less protocol frames (heartbeats, NAKs, adverts, registrations) are
// filtered out — a filtered capture is an application-traffic view.
class CaptureBuffer : public NetworkTap {
 public:
  CaptureBuffer() = default;

  // Compiles `pattern` with the real subject grammar (ValidatePattern); "" clears
  // the filter. Rejects malformed patterns exactly as Subscribe would.
  Status SetFilter(const std::string& pattern);
  const std::string& filter() const { return filter_; }

  void OnFrame(const CapturedFrame& frame) override;

  const std::vector<CapturedFrame>& frames() const { return frames_; }
  uint64_t frames_seen() const { return seen_; }
  uint64_t frames_kept() const { return frames_.size(); }
  void Clear();

  // Order-sensitive FNV-1a over the canonical record lines (payload hashed, not
  // embedded). Bit-identical across replays of the same seed.
  uint64_t Hash() const { return CaptureHash(frames_); }

  static uint64_t CaptureHash(const std::vector<CapturedFrame>& frames);

 private:
  std::string filter_;
  uint64_t seen_ = 0;
  std::vector<CapturedFrame> frames_;
};

// Canonical single-line rendering of one record; the unit of CaptureHash and the
// byte-stable spine of text reports.
std::string CanonicalRecord(const CapturedFrame& f);

// FNV-1a over a byte range (seeded with the standard offset basis).
uint64_t Fnv1a(const uint8_t* data, size_t size, uint64_t h = 1469598103934665603ull);

// Capture file IO. Write is atomic enough for tooling (truncate + write);
// Read validates magic/version and every record bound.
Status WriteCaptureFile(const std::string& path, const std::vector<CapturedFrame>& frames);
Result<std::vector<CapturedFrame>> ReadCaptureFile(const std::string& path);

// In-memory (de)serialization behind the file IO; exposed for tests.
Bytes SerializeCapture(const std::vector<CapturedFrame>& frames);
Result<std::vector<CapturedFrame>> DeserializeCapture(const Bytes& data);

}  // namespace ibus::capture

#endif  // SRC_CAPTURE_CAPTURE_H_
