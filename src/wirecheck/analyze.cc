// wirecheck analysis: Encode/Decode symmetry proofs, program-level rules
// (missing-pair, trailing-bytes, unbounded-recursion), schema rendering, and
// the wire-safe vs wire-breaking golden diff classification.

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "src/wirecheck/wirecheck.h"

namespace ibus::wirecheck {
namespace {

bool AllDigitsSv(std::string_view s) {
  if (s.empty()) {
    return false;
  }
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
  }
  return true;
}

std::string Describe(const Op& op, const std::string& file) {
  std::string text(OpKindName(op.kind));
  if (op.kind == Op::kRef) {
    text += " -> " + op.ref;
  } else if (op.kind == Op::kRepeat && !op.count.empty()) {
    text += "(count=" + op.count + ")";
  } else if (!op.label.empty()) {
    text += " '" + op.label + "'";
  }
  if (op.line > 0) {
    text += " (" + file + ":" + std::to_string(op.line) + ")";
  }
  return text;
}

struct Mismatch {
  bool found = false;
  std::string message;
  int line = 0;
  int col = 0;
};

// Lockstep unification of the write tree against the read tree. Fills `m` with
// the first structural divergence, carrying both sides.
void Unify(const std::vector<Op>& enc, const std::vector<Op>& dec,
           const std::string& enc_file, const std::string& dec_file,
           Mismatch* m) {
  size_t n = std::min(enc.size(), dec.size());
  for (size_t i = 0; i < n && !m->found; ++i) {
    const Op& e = enc[i];
    const Op& d = dec[i];
    if (d.line > 0) {
      m->line = d.line;
      m->col = d.col;
    }
    if (e.kind != d.kind) {
      m->found = true;
      m->message = "encode writes " + Describe(e, enc_file) +
                   " where decode reads " + Describe(d, dec_file);
      return;
    }
    switch (e.kind) {
      case Op::kRef:
        if (e.ref != d.ref) {
          m->found = true;
          m->message = "encode references codec '" + e.ref +
                       "' where decode references '" + d.ref + "'";
        }
        break;
      case Op::kRepeat:
        if (AllDigitsSv(e.count) && AllDigitsSv(d.count) && e.count != d.count) {
          m->found = true;
          m->message = "encode repeats " + e.count + " time(s) (" + enc_file +
                       ":" + std::to_string(e.line) + ") where decode repeats " +
                       d.count + " time(s)";
          return;
        }
        Unify(e.arms[0], d.arms[0], enc_file, dec_file, m);
        break;
      case Op::kOptional:
        Unify(e.arms[0], d.arms[0], enc_file, dec_file, m);
        break;
      case Op::kBranch:
        if (e.arms.size() != d.arms.size()) {
          m->found = true;
          m->message = "encode branches into " + std::to_string(e.arms.size()) +
                       " arm(s) (" + enc_file + ":" + std::to_string(e.line) +
                       ") where decode branches into " +
                       std::to_string(d.arms.size());
          return;
        }
        for (size_t a = 0; a < e.arms.size() && !m->found; ++a) {
          Unify(e.arms[a], d.arms[a], enc_file, dec_file, m);
        }
        break;
      default:
        break;  // primitive kinds already matched
    }
  }
  if (m->found || enc.size() == dec.size()) {
    return;
  }
  m->found = true;
  if (enc.size() > dec.size()) {
    m->message = "encode writes " + std::to_string(enc.size() - dec.size()) +
                 " more op(s) starting with " + Describe(enc[n], enc_file) +
                 " after the decode side ends";
    m->line = enc[n].line;
    m->col = enc[n].col;
  } else {
    m->message = "decode reads " + std::to_string(dec.size() - enc.size()) +
                 " more op(s) starting with " + Describe(dec[n], dec_file) +
                 " after the encode side ends";
    m->line = dec[n].line;
    m->col = dec[n].col;
  }
}

void CollectRefs(const std::vector<Op>& ops, std::set<std::string>* out) {
  for (const Op& op : ops) {
    if (op.kind == Op::kRef) {
      out->insert(op.ref);
    }
    for (const std::vector<Op>& arm : op.arms) {
      CollectRefs(arm, out);
    }
  }
}

bool Allowed(const Codec& codec, std::string_view rule) {
  return codec.encode.fn_allows.count(std::string(rule)) > 0 ||
         codec.decode.fn_allows.count(std::string(rule)) > 0;
}

// DFS cycle detection over the codec reference graph.
bool OnCycle(const std::string& start,
             const std::map<std::string, std::set<std::string>>& graph) {
  std::vector<std::string> stack = {start};
  std::set<std::string> visited;
  while (!stack.empty()) {
    std::string cur = stack.back();
    stack.pop_back();
    auto it = graph.find(cur);
    if (it == graph.end()) {
      continue;
    }
    for (const std::string& next : it->second) {
      if (next == start) {
        return true;
      }
      if (visited.insert(next).second) {
        stack.push_back(next);
      }
    }
  }
  return false;
}

void RenderOps(const std::vector<Op>& enc, const std::vector<Op>* dec,
               int indent, std::string* out) {
  for (size_t i = 0; i < enc.size(); ++i) {
    const Op& op = enc[i];
    const Op* twin =
        dec != nullptr && i < dec->size() && (*dec)[i].kind == op.kind
            ? &(*dec)[i]
            : nullptr;
    out->append(static_cast<size_t>(indent) * 2, ' ');
    switch (op.kind) {
      case Op::kRef:
        *out += "ref " + op.ref + "\n";
        break;
      case Op::kRepeat: {
        std::string count = !op.count.empty()
                                ? op.count
                                : twin != nullptr ? twin->count : "";
        *out += count.empty() ? "repeat\n" : "repeat count=" + count + "\n";
        RenderOps(op.arms[0], twin != nullptr ? &twin->arms[0] : nullptr,
                  indent + 1, out);
        break;
      }
      case Op::kOptional:
        *out += "optional\n";
        RenderOps(op.arms[0], twin != nullptr ? &twin->arms[0] : nullptr,
                  indent + 1, out);
        break;
      case Op::kBranch:
        *out += "branch\n";
        for (size_t a = 0; a < op.arms.size(); ++a) {
          out->append(static_cast<size_t>(indent + 1) * 2, ' ');
          std::string label = a < op.arm_labels.size() ? op.arm_labels[a] : "";
          if (label.empty() && twin != nullptr && a < twin->arm_labels.size()) {
            label = twin->arm_labels[a];
          }
          *out += label.empty() ? "arm\n" : "arm " + label + "\n";
          RenderOps(op.arms[a],
                    twin != nullptr && a < twin->arms.size() ? &twin->arms[a]
                                                             : nullptr,
                    indent + 2, out);
        }
        break;
      default: {
        std::string label =
            !op.label.empty() ? op.label : twin != nullptr ? twin->label : "";
        *out += std::string(OpKindName(op.kind));
        if (!label.empty()) {
          *out += " " + label;
        }
        *out += "\n";
        break;
      }
    }
  }
}

std::vector<std::string> SchemaLines(std::string_view text) {
  std::vector<std::string> lines;
  size_t i = 0;
  while (i <= text.size()) {
    size_t nl = text.find('\n', i);
    if (nl == std::string_view::npos) {
      nl = text.size();
    }
    std::string line(text.substr(i, nl - i));
    i = nl + 1;
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      if (nl == text.size()) {
        break;
      }
      continue;
    }
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    lines.push_back(line);
    if (nl == text.size()) {
      break;
    }
  }
  return lines;
}

// The structure-bearing part of a schema line: labels, count expressions (when
// not literal), function/file provenance, and the version line are wire-safe;
// everything else is wire-breaking.
std::string StructuralKey(const std::string& line) {
  size_t indent = line.find_first_not_of(' ');
  std::string lead = line.substr(0, indent);
  std::string_view body = std::string_view(line).substr(indent);
  size_t space = body.find(' ');
  std::string_view word = body.substr(0, space);
  if (word == "encode" || word == "decode" || word == "version") {
    return "";  // provenance / version: wire-safe by definition
  }
  if (word == "arm") {
    return lead + "arm";
  }
  if (word == "repeat") {
    std::string_view rest =
        space == std::string_view::npos ? std::string_view() : body.substr(space + 1);
    if (rest.size() > 6 && rest.substr(0, 6) == "count=" &&
        AllDigitsSv(rest.substr(6))) {
      return lead + std::string(body);  // literal counts are structural
    }
    return lead + "repeat";
  }
  if (word == "ref" || word == "codec") {
    return lead + std::string(body);  // referenced codec / codec name matter
  }
  return lead + std::string(word);  // primitive kind without its label
}

int ParseVersionLine(const std::vector<std::string>& lines) {
  for (const std::string& line : lines) {
    if (line.rfind("version ", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
  return 0;
}

}  // namespace

std::vector<Diagnostic> Analyze(const Program& program) {
  std::vector<Diagnostic> diags = program.scan_diagnostics;

  // Which codecs are referenced from inside another codec's tree? Those are
  // sub-decoders sharing the caller's reader; trailing-byte discipline is the
  // top-level decoder's job.
  std::set<std::string> referenced;
  std::map<std::string, std::set<std::string>> ref_graph;
  for (const Codec& codec : program.codecs) {
    std::set<std::string> refs;
    CollectRefs(codec.encode.ops, &refs);
    CollectRefs(codec.decode.ops, &refs);
    ref_graph[codec.name] = refs;
    for (const std::string& r : refs) {
      if (r != codec.name) {
        referenced.insert(r);
      }
    }
  }

  for (const Codec& codec : program.codecs) {
    if (codec.encode.present != codec.decode.present) {
      const CodecSide& side = codec.encode.present ? codec.encode : codec.decode;
      if (!Allowed(codec, kRuleMissingPair)) {
        diags.push_back({side.file, side.line, side.col, kRuleMissingPair,
                         "codec '" + codec.name + "' has " +
                             (codec.encode.present ? "an encode ('" + side.function +
                                                         "') but no decode"
                                                   : "a decode ('" + side.function +
                                                         "') but no encode")});
      }
      continue;
    }
    if (!codec.encode.present) {
      continue;
    }

    if (!Allowed(codec, kRuleSymmetry)) {
      Mismatch m;
      m.line = codec.decode.line;
      m.col = codec.decode.col;
      Unify(codec.encode.ops, codec.decode.ops, codec.encode.file,
            codec.decode.file, &m);
      if (m.found) {
        diags.push_back({codec.decode.file, m.line, m.col, kRuleSymmetry,
                         "codec '" + codec.name + "' does not round-trip: " +
                             m.message});
      }
    }

    if (referenced.count(codec.name) == 0 && !codec.decode.checks_trailing &&
        !Allowed(codec, kRuleTrailingBytes)) {
      diags.push_back(
          {codec.decode.file, codec.decode.line, codec.decode.col,
           kRuleTrailingBytes,
           "top-level decoder '" + codec.decode.function +
               "' neither checks AtEnd()/remaining() nor consumes a raw tail "
               "— trailing garbage is silently accepted"});
    }

    if (OnCycle(codec.name, ref_graph) && !codec.decode.has_depth_guard &&
        !Allowed(codec, kRuleRecursion)) {
      diags.push_back({codec.decode.file, codec.decode.line, codec.decode.col,
                       kRuleRecursion,
                       "decoder '" + codec.decode.function +
                           "' sits on a codec reference cycle without a depth "
                           "limit — crafted input can exhaust the stack"});
    }
  }

  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.file, a.line, a.col, a.rule, a.message) <
           std::tie(b.file, b.line, b.col, b.rule, b.message);
  });
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return std::tie(a.file, a.line, a.col, a.rule,
                                            a.message) ==
                                   std::tie(b.file, b.line, b.col, b.rule,
                                            b.message);
                          }),
              diags.end());
  return diags;
}

std::string RenderSchema(const Codec& codec) {
  std::string out;
  out += "# wirecheck golden schema -- regenerate with: wirecheck --update\n";
  out += "codec " + codec.name + "\n";
  out += "version " + std::to_string(codec.version) + "\n";
  if (codec.encode.present) {
    out += "encode " + codec.encode.function + " @ " + codec.encode.file + "\n";
  }
  if (codec.decode.present) {
    out += "decode " + codec.decode.function + " @ " + codec.decode.file + "\n";
  }
  out += "fields\n";
  if (codec.encode.present) {
    RenderOps(codec.encode.ops,
              codec.decode.present ? &codec.decode.ops : nullptr, 1, &out);
  } else if (codec.decode.present) {
    RenderOps(codec.decode.ops, nullptr, 1, &out);
  }
  out += "end\n";
  return out;
}

SchemaDiff DiffSchema(std::string_view golden, std::string_view current) {
  SchemaDiff diff;
  std::vector<std::string> old_lines = SchemaLines(golden);
  std::vector<std::string> new_lines = SchemaLines(current);
  diff.old_version = ParseVersionLine(old_lines);
  diff.new_version = ParseVersionLine(new_lines);

  std::vector<std::string> old_struct;
  std::vector<std::string> new_struct;
  for (const std::string& l : old_lines) {
    std::string key = StructuralKey(l);
    if (!key.empty()) {
      old_struct.push_back(key);
    }
  }
  for (const std::string& l : new_lines) {
    std::string key = StructuralKey(l);
    if (!key.empty()) {
      new_struct.push_back(key);
    }
  }
  size_t n = std::max(old_struct.size(), new_struct.size());
  for (size_t i = 0; i < n; ++i) {
    std::string o = i < old_struct.size() ? old_struct[i] : "<end>";
    std::string c = i < new_struct.size() ? new_struct[i] : "<end>";
    if (o != c) {
      diff.kind = SchemaDiff::kWireBreaking;
      diff.detail = "golden '" + o + "' vs current '" + c + "'";
      return diff;
    }
  }
  size_t m = std::max(old_lines.size(), new_lines.size());
  for (size_t i = 0; i < m; ++i) {
    std::string o = i < old_lines.size() ? old_lines[i] : "<end>";
    std::string c = i < new_lines.size() ? new_lines[i] : "<end>";
    if (o != c) {
      diff.kind = SchemaDiff::kWireSafe;
      diff.detail = "golden '" + o + "' vs current '" + c + "'";
      return diff;
    }
  }
  diff.kind = SchemaDiff::kSame;
  return diff;
}

std::vector<std::string> CodecNames(const Program& program) {
  std::vector<std::string> names;
  names.reserve(program.codecs.size());
  for (const Codec& codec : program.codecs) {
    names.push_back(codec.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace ibus::wirecheck
