// wirecheck: wire-schema extraction, Encode/Decode symmetry proofs, and
// decode-safety lint for every codec on the bus.
//
// The Information Bus's extensibility story rests on disciplined, versioned
// wire formats — and the repo now has ~20 hand-rolled codecs whose schemas
// exist only implicitly in paired Encode/Decode code. wirecheck completes the
// analyzer family (buslint -> tdlcheck -> hotlint -> wirecheck): a homegrown
// token scanner (no libclang) that
//
//   (a) extracts a wire-schema model from each annotated codec pair — the
//       ordered tree of primitive reads/writes (u8/u16/u32/u64/i64/f64/bool/
//       varint/length-prefixed string/bytes/raw) recovered from WireWriter/
//       WireReader call sequences, including loops, branches, switch arms,
//       helper functions (inlined), and cross-codec references;
//   (b) proves Encode/Decode symmetry — the write tree and the read tree must
//       unify node-by-node (type, order, structure, literal counts), with
//       mismatches reported as file:line:col diagnostics carrying both sides;
//   (c) enforces decode-safety rules on the untrusted-input path (see below);
//   (d) renders each schema to a stable text form pinned as a golden file in
//       schemas/<codec>.wire — wire-format changes fail CI unless the golden
//       is regenerated AND the version is bumped (wire-breaking vs wire-safe
//       classification in the tdlcheck DiffModels tradition).
//
// Decode-safety rules (all reported at the offending site):
//
//   symmetry            — Encode and Decode op trees do not unify.
//   missing-pair        — a codec annotation with only one side present.
//   version-first       — a codec with version >= 1 must read its version
//                         field among the leading ops and compare it before
//                         trusting any later field.
//   unchecked-count     — a decoded count that bounds a loop must be
//                         relationally validated (vs remaining()/a constant)
//                         between the read and the loop.
//   unclamped-alloc     — reserve()/resize() sized by a decoded value that was
//                         never validated (OOM lever for attackers).
//   raw-read-bound      — ReadRaw(n)/ReadBytes(n) where n is a decoded value
//                         never validated against remaining().
//   truncation-unsafe   — a Result from a Read* op dereferenced (*v, v.take())
//                         before its .ok() check.
//   trailing-bytes      — a top-level decoder (not referenced by any other
//                         codec) must consume-or-reject trailing bytes
//                         deliberately: check AtEnd()/remaining(), end with a
//                         raw tail op, or carry a justified allow.
//   unbounded-recursion — a decoder on a codec-reference cycle must guard with
//                         a depth limit (a 'depth' comparison in the body).
//   unchecked-index     — a decoded value used as a subscript/index without a
//                         prior range check.
//   bad-annotation      — a wirecheck annotation that cannot take effect.
//
// Annotation grammar (trailing or full-line `//` comments):
//
//   // wirecheck: codec(<name>, version=N)   - on or directly above an Encode
//                                              or Decode function definition;
//                                              the side is inferred from the
//                                              ops the body performs.
//   // wirecheck: op(<type>) -- <why>        - inject a wire op the scanner
//                                              cannot see (e.g. a payload tail
//                                              sliced straight from the frame
//                                              rather than read via the
//                                              reader API).
//   // wirecheck: allow(rule[,rule]) -- <why> - suppresses those rules on that
//                                              line (or, on the signature
//                                              lines, for whole-function
//                                              rules). Justification is
//                                              mandatory.
#ifndef SRC_WIRECHECK_WIRECHECK_H_
#define SRC_WIRECHECK_WIRECHECK_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace ibus::wirecheck {

// Rule names, exposed for the allow mechanism, the fixtures, and the docs.
inline constexpr char kRuleSymmetry[] = "symmetry";
inline constexpr char kRuleMissingPair[] = "missing-pair";
inline constexpr char kRuleVersionFirst[] = "version-first";
inline constexpr char kRuleUncheckedCount[] = "unchecked-count";
inline constexpr char kRuleUnclampedAlloc[] = "unclamped-alloc";
inline constexpr char kRuleRawReadBound[] = "raw-read-bound";
inline constexpr char kRuleTruncation[] = "truncation-unsafe";
inline constexpr char kRuleTrailingBytes[] = "trailing-bytes";
inline constexpr char kRuleRecursion[] = "unbounded-recursion";
inline constexpr char kRuleUncheckedIndex[] = "unchecked-index";
inline constexpr char kRuleBadAnnotation[] = "bad-annotation";

// Every rule an allow() may name (bad-annotation itself is not allowable).
const std::set<std::string>& KnownRules();

struct SourceFile {
  std::string path;     // repo-relative, e.g. "src/wire/wire.cc"
  std::string content;  // raw bytes of the file
};

// One node of the extracted wire-op tree. Primitive kinds mirror the
// WireWriter/WireReader API; structural kinds carry child sequences.
struct Op {
  enum Kind {
    kU8, kU16, kU32, kU64, kI64, kF64, kBool, kVarint, kString, kBytes, kRaw,
    kRef,       // a call into another annotated codec ("ref" names it)
    kRepeat,    // loop; arms[0] is the body, "count" the bound expression
    kOptional,  // conditionally present section; arms[0] is the body
    kBranch,    // alternative sections; one arm per if/else or case arm
  };
  Kind kind = kU8;
  std::string label;  // encode argument / decode target, informational only
  std::string count;  // kRepeat: normalized count expression
  std::string ref;    // kRef: referenced codec name
  int line = 0;
  int col = 0;
  std::vector<std::vector<Op>> arms;
  std::vector<std::string> arm_labels;  // kBranch: case labels, informational
};

// "u8", "repeat", ... — stable names used in schemas and diagnostics.
std::string_view OpKindName(Op::Kind kind);

struct CodecSide {
  bool present = false;
  std::string function;  // qualified name, e.g. "Message::Marshal"
  std::string file;
  int line = 0;
  int col = 0;
  std::vector<Op> ops;  // normalized tree
  // Facts Analyze() needs that only the scan (with body text in hand) can
  // establish: does the decoder consult AtEnd()/end with a raw tail, does it
  // carry a depth-limit comparison, and which rules its signature allows.
  bool checks_trailing = false;
  bool has_depth_guard = false;
  std::set<std::string> fn_allows;
};

struct Codec {
  std::string name;
  int version = 0;
  CodecSide encode;
  CodecSide decode;
};

struct Diagnostic {
  std::string file;
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;

  // "src/wire/wire.cc:120:7: [symmetry] ..." — what the ctest run prints.
  std::string ToString() const;
};

// The whole-program model: every annotated codec (sorted by name), plus every
// finding discovered while scanning (annotation problems and the per-decoder
// safety rules, which need the raw body text and are evaluated during the
// scan).
struct Program {
  std::vector<Codec> codecs;
  std::vector<Diagnostic> scan_diagnostics;
};

// Parses every file, attaches codec annotations to function definitions,
// extracts + normalizes op trees (inlining helpers, resolving codec refs), and
// evaluates the decode-safety rules. Pure text analysis; the scanned file set
// *is* the program.
Program BuildProgram(const std::vector<SourceFile>& files);

// Symmetry proofs + program-level rules (missing-pair, trailing-bytes on
// top-level decoders, unbounded-recursion on ref cycles), merged with the scan
// diagnostics, sorted by file/line/col.
std::vector<Diagnostic> Analyze(const Program& program);

// Renders the schema golden text for one codec (stable, diffable; see
// schemas/*.wire).
std::string RenderSchema(const Codec& codec);

// Classification of a golden-vs-current schema diff, tdlcheck DiffModels
// style: label-only changes are wire-safe; any structural change (op kinds,
// order, counts, nesting) is wire-breaking and demands a version bump.
struct SchemaDiff {
  enum Kind { kSame, kWireSafe, kWireBreaking } kind = kSame;
  int old_version = 0;
  int new_version = 0;
  std::string detail;  // first differing line, old vs new
};
SchemaDiff DiffSchema(std::string_view golden, std::string_view current);

// Names of every annotated codec, sorted — the drift-guard test cross-checks
// this against the expected codec table.
std::vector<std::string> CodecNames(const Program& program);

}  // namespace ibus::wirecheck

#endif  // SRC_WIRECHECK_WIRECHECK_H_
