// wirecheck model builder: scrubs each source file (comments/literals blanked,
// offsets preserved), recognizes function definitions with a forward structural
// scan (namespace/class scope stack), parses every function body into a wire-op
// tree (loops -> repeat, if/else and switch -> branch/optional, error-check ifs
// skipped, local lambdas inlined), resolves cross-function calls (helpers are
// inlined, annotated codec functions become refs), normalizes the trees, and
// evaluates the text-level decode-safety rules while the body text is still in
// hand. Pure text analysis in the buslint/hotlint tradition — no libclang; the
// scanned file set *is* the program.
#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/wirecheck/wirecheck.h"

namespace ibus::wirecheck {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------------

struct Annotation {
  enum Kind { kCodec, kOp, kAllow, kUnknown } kind = kUnknown;
  int line = 0;
  std::string codec_name;  // kCodec
  int version = 0;         // kCodec
  std::string op_type;     // kOp
  std::set<std::string> rules;  // kAllow
  bool justified = false;       // has a non-empty `-- reason`
  bool claimed = false;
  std::string text;  // for diagnostics
};

struct Scrubbed {
  std::string code;
  std::vector<size_t> line_starts;
  std::vector<Annotation> annotations;

  int LineOf(size_t offset) const {
    auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<int>(it - line_starts.begin());
  }
  int ColOf(size_t offset) const {
    int line = LineOf(offset);
    return static_cast<int>(offset - line_starts[static_cast<size_t>(line) - 1]) + 1;
  }
};

// Maps the op() annotation argument (and schema field tokens) to a kind.
const std::map<std::string, Op::Kind>& PrimNames() {
  static const std::map<std::string, Op::Kind> kMap = {
      {"u8", Op::kU8},     {"u16", Op::kU16},   {"u32", Op::kU32},
      {"u64", Op::kU64},   {"i64", Op::kI64},   {"f64", Op::kF64},
      {"bool", Op::kBool}, {"varint", Op::kVarint}, {"string", Op::kString},
      {"bytes", Op::kBytes}, {"raw", Op::kRaw},
  };
  return kMap;
}

// Parses "wirecheck: codec(name, version=N)|op(type)|allow(a,b) [-- why]".
void RecordAnnotation(std::string_view comment, int line, Scrubbed* out) {
  size_t at = comment.find("wirecheck:");
  if (at == std::string_view::npos) {
    return;
  }
  std::string_view rest = comment.substr(at + 10);
  size_t p = 0;
  while (p < rest.size() && std::isspace(static_cast<unsigned char>(rest[p])) != 0) {
    ++p;
  }
  rest = rest.substr(p);
  Annotation a;
  a.line = line;
  size_t dash = rest.find("--");
  if (dash != std::string_view::npos) {
    std::string_view why = rest.substr(dash + 2);
    a.justified = why.find_first_not_of(" \t") != std::string_view::npos;
  }
  auto inner_of = [&](size_t prefix_len) -> std::string_view {
    size_t close = rest.find(')', prefix_len);
    if (close == std::string_view::npos) {
      return std::string_view();
    }
    return rest.substr(prefix_len, close - prefix_len);
  };
  if (rest.substr(0, 6) == "codec(") {
    std::string_view inner = inner_of(6);
    a.text = "codec";
    size_t comma = inner.find(',');
    if (rest.find(')') == std::string_view::npos || comma == std::string_view::npos) {
      a.kind = Annotation::kUnknown;
      out->annotations.push_back(std::move(a));
      return;
    }
    auto trim = [](std::string_view v) {
      size_t b = v.find_first_not_of(" \t");
      size_t e = v.find_last_not_of(" \t");
      return b == std::string_view::npos ? std::string_view()
                                         : v.substr(b, e - b + 1);
    };
    std::string_view name = trim(inner.substr(0, comma));
    std::string_view ver = trim(inner.substr(comma + 1));
    bool name_ok = !name.empty();
    for (char c : name) {
      name_ok = name_ok && (IsIdentChar(c) || c == '-');
    }
    bool ver_ok = ver.substr(0, 8) == "version=" && ver.size() > 8;
    int version = 0;
    if (ver_ok) {
      for (char c : ver.substr(8)) {
        if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
          ver_ok = false;
          break;
        }
        version = version * 10 + (c - '0');
      }
    }
    if (!name_ok || !ver_ok) {
      a.kind = Annotation::kUnknown;
      out->annotations.push_back(std::move(a));
      return;
    }
    a.kind = Annotation::kCodec;
    a.codec_name = std::string(name);
    a.version = version;
  } else if (rest.substr(0, 3) == "op(") {
    std::string_view inner = inner_of(3);
    a.text = "op";
    if (rest.find(')') == std::string_view::npos) {
      a.kind = Annotation::kUnknown;
      out->annotations.push_back(std::move(a));
      return;
    }
    a.kind = Annotation::kOp;
    std::string type(inner);
    type.erase(std::remove_if(type.begin(), type.end(),
                              [](char c) {
                                return std::isspace(static_cast<unsigned char>(c)) != 0;
                              }),
               type.end());
    a.op_type = type;
  } else if (rest.substr(0, 6) == "allow(") {
    std::string_view inner = inner_of(6);
    a.text = "allow";
    if (rest.find(')') == std::string_view::npos) {
      a.kind = Annotation::kUnknown;
      out->annotations.push_back(std::move(a));
      return;
    }
    a.kind = Annotation::kAllow;
    std::stringstream ss{std::string(inner)};
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      rule.erase(std::remove_if(rule.begin(), rule.end(),
                                [](char c) {
                                  return std::isspace(static_cast<unsigned char>(c)) != 0;
                                }),
                 rule.end());
      if (!rule.empty()) {
        a.rules.insert(rule);
      }
    }
  } else {
    size_t e = 0;
    while (e < rest.size() && IsIdentChar(rest[e])) {
      ++e;
    }
    a.text = std::string(rest.substr(0, e));
    a.kind = Annotation::kUnknown;
  }
  out->annotations.push_back(std::move(a));
}

// Source text with comments, literal contents, and preprocessor lines blanked
// (newlines kept, so offsets/line numbers survive).
Scrubbed Scrub(std::string_view src) {
  Scrubbed out;
  out.code.assign(src.size(), ' ');
  out.line_starts.push_back(0);
  size_t i = 0;
  bool at_line_start = true;
  auto copy_nl = [&](size_t pos) {
    out.code[pos] = '\n';
    out.line_starts.push_back(pos + 1);
    at_line_start = true;
  };
  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      copy_nl(i);
      ++i;
      continue;
    }
    if (at_line_start && c == '#') {
      while (i < src.size()) {
        size_t end = src.find('\n', i);
        if (end == std::string_view::npos) {
          i = src.size();
          break;
        }
        bool continued = end > i && src[end - 1] == '\\';
        copy_nl(end);
        i = end + 1;
        if (!continued) {
          break;
        }
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) == 0) {
      at_line_start = false;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string_view::npos) {
        end = src.size();
      }
      RecordAnnotation(src.substr(i, end - i),
                       static_cast<int>(out.line_starts.size()), &out);
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      end = end == std::string_view::npos ? src.size() : end + 2;
      for (size_t j = i; j < end; ++j) {
        if (src[j] == '\n') {
          copy_nl(j);
        }
      }
      i = end;
      continue;
    }
    if (c == '"' || c == '\'') {
      if (c == '"' && i > 0 && src[i - 1] == 'R') {
        size_t paren = src.find('(', i);
        if (paren != std::string_view::npos) {
          std::string closer = ")" + std::string(src.substr(i + 1, paren - i - 1)) + "\"";
          size_t end = src.find(closer, paren + 1);
          if (end != std::string_view::npos) {
            out.code[i] = '"';
            size_t close_q = end + closer.size() - 1;
            out.code[close_q] = '"';
            for (size_t j = i; j < close_q; ++j) {
              if (src[j] == '\n') {
                copy_nl(j);
              }
            }
            i = close_q + 1;
            continue;
          }
        }
      }
      char quote = c;
      size_t start = i;
      ++i;
      while (i < src.size() && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < src.size()) {
          i += 2;
          continue;
        }
        if (src[i] == '\n') {
          break;
        }
        ++i;
      }
      out.code[start] = quote;
      if (i < src.size() && src[i] == quote) {
        out.code[i] = quote;
        ++i;
      }
      continue;
    }
    out.code[i] = c;
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------------

size_t SkipSpace(std::string_view s, size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

size_t PrevMeaningful(std::string_view s, size_t i) {
  while (i > 0) {
    --i;
    if (std::isspace(static_cast<unsigned char>(s[i])) == 0) {
      return i;
    }
  }
  return std::string_view::npos;
}

// Offset just past the matching close for the opener at `open`, or npos.
size_t MatchPair(std::string_view s, size_t open, char oc, char cc) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == oc) {
      ++depth;
    } else if (s[i] == cc) {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string_view::npos;
}

size_t MatchParen(std::string_view s, size_t open) { return MatchPair(s, open, '(', ')'); }
size_t MatchBrace(std::string_view s, size_t open) { return MatchPair(s, open, '{', '}'); }
size_t MatchBracket(std::string_view s, size_t open) { return MatchPair(s, open, '[', ']'); }

size_t MatchAngle(std::string_view s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    char c = s[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (c == ';' || c == '{' || c == '}') {
      return std::string_view::npos;
    }
  }
  return std::string_view::npos;
}

const std::unordered_set<std::string_view>& ControlKeywords() {
  static const std::unordered_set<std::string_view> kSet = {
      "if",       "for",     "while",    "switch",   "catch",       "return",
      "sizeof",   "alignof", "decltype", "noexcept", "static_cast", "dynamic_cast",
      "const_cast", "reinterpret_cast", "new", "delete", "else", "do", "case",
      "requires", "co_await", "co_return", "co_yield", "throw", "assert",
      "static_assert", "defined", "alignas", "typeid",
  };
  return kSet;
}

// Method/free-call names that can never be a wire helper worth resolving;
// filtering them keeps the call lists (and resolution ambiguity) small.
const std::unordered_set<std::string_view>& NoiseNames() {
  static const std::unordered_set<std::string_view> kSet = {
      "ok",       "status",  "take",   "value",  "size",    "empty",  "begin",
      "end",      "data",    "c_str",  "push_back", "emplace_back", "reserve",
      "resize",   "clear",   "insert", "erase",  "find",    "count",  "at",
      "substr",   "append",  "assign", "move",   "forward", "swap",   "get",
      "reset",    "release", "str",    "min",    "max",     "front",  "back",
      "remaining", "AtEnd",  "emplace", "Need",  "abs",     "to_string",
  };
  return kSet;
}

// Number of top-level arguments inside the '(' at `open` (0 for empty parens).
size_t CountArgs(std::string_view code, size_t open, size_t past) {
  size_t args = 0;
  int paren = 0;
  int angle = 0;
  int brace = 0;
  int bracket = 0;
  bool any = false;
  for (size_t i = open; i + 1 < past; ++i) {
    char c = code[i];
    if (c == '(') {
      ++paren;
      continue;
    }
    if (c == ')') {
      --paren;
      continue;
    }
    if (paren > 1) {
      continue;
    }
    if (c == '<') {
      ++angle;
    } else if (c == '>') {
      angle = angle > 0 ? angle - 1 : 0;
    } else if (c == '{') {
      ++brace;
    } else if (c == '}') {
      --brace;
    } else if (c == '[') {
      ++bracket;
    } else if (c == ']') {
      --bracket;
    } else if (c == ',' && angle == 0 && brace == 0 && bracket == 0) {
      ++args;
    } else if (std::isspace(static_cast<unsigned char>(c)) == 0) {
      any = true;
    }
  }
  return any ? args + 1 : 0;
}

// Counts parameters in [begin, end): min excludes defaulted ones, a pack or
// varargs widens max to "anything".
void CountParams(std::string_view code, size_t begin, size_t end, size_t* min_p,
                 size_t* max_p) {
  size_t total = 0;
  size_t defaulted = 0;
  bool pack = false;
  int paren = 0;
  int angle = 0;
  int brace = 0;
  size_t start = begin;
  auto flush = [&](size_t stop) {
    size_t s = SkipSpace(code, start);
    if (s >= stop) {
      return;
    }
    ++total;
    std::string_view t = code.substr(s, stop - s);
    int pd = 0;
    int ad = 0;
    for (size_t j = 0; j < t.size(); ++j) {
      char c = t[j];
      if (c == '(') {
        ++pd;
      } else if (c == ')') {
        --pd;
      } else if (c == '<') {
        ++ad;
      } else if (c == '>') {
        ad = ad > 0 ? ad - 1 : 0;
      } else if (c == '=' && pd == 0 && ad == 0) {
        ++defaulted;
        break;
      }
    }
    if (t.find("...") != std::string_view::npos) {
      pack = true;
    }
  };
  for (size_t i = begin; i < end; ++i) {
    char c = code[i];
    if (c == '(') {
      ++paren;
    } else if (c == ')') {
      --paren;
    } else if (c == '<') {
      ++angle;
    } else if (c == '>') {
      angle = angle > 0 ? angle - 1 : 0;
    } else if (c == '{') {
      ++brace;
    } else if (c == '}') {
      --brace;
    } else if (c == ',' && paren == 0 && angle == 0 && brace == 0) {
      flush(i);
      start = i + 1;
    }
  }
  flush(end);
  *min_p = total - defaulted;
  *max_p = pack ? static_cast<size_t>(-1) : total;
}

// ---------------------------------------------------------------------------------
// Declaration-head classification (ported from hotlint)
// ---------------------------------------------------------------------------------

struct HeadInfo {
  enum Kind { kOther, kNamespace, kClass, kFunction } kind = kOther;
  std::string name;
  size_t name_off = 0;
  std::vector<std::string> qualifiers;
  size_t params_begin = 0;
  size_t params_end = 0;
  size_t return_begin = 0;
  size_t return_end = 0;
  size_t tail_begin = 0;
};

HeadInfo ClassifyHead(std::string_view code, size_t begin, size_t end) {
  HeadInfo info;
  size_t i = SkipSpace(code, begin);
  while (i < end) {
    if (code.compare(i, 8, "template") == 0 &&
        (i + 8 >= end || !IsIdentChar(code[i + 8]))) {
      size_t lt = SkipSpace(code, i + 8);
      if (lt < end && code[lt] == '<') {
        size_t past = MatchAngle(code, lt);
        if (past == std::string_view::npos || past > end) {
          return info;
        }
        i = SkipSpace(code, past);
        continue;
      }
    }
    if (code.compare(i, 2, "[[") == 0) {
      size_t close = code.find("]]", i + 2);
      if (close == std::string_view::npos || close >= end) {
        return info;
      }
      i = SkipSpace(code, close + 2);
      continue;
    }
    break;
  }
  if (i >= end) {
    return info;
  }
  size_t head_begin = i;

  static const std::unordered_set<std::string_view> kScopeKeywords = {
      "namespace", "class", "struct", "union", "enum"};
  int paren = 0;
  size_t scope_kw_at = std::string_view::npos;
  std::string scope_kw;
  size_t first_paren = std::string_view::npos;
  {
    size_t j = head_begin;
    int angle = 0;
    while (j < end) {
      char c = code[j];
      if (IsIdentChar(c) && (j == 0 || !IsIdentChar(code[j - 1]))) {
        size_t k = j;
        while (k < end && IsIdentChar(code[k])) {
          ++k;
        }
        std::string_view tok = code.substr(j, k - j);
        if (paren == 0 && angle == 0 && first_paren == std::string_view::npos &&
            kScopeKeywords.count(tok) > 0) {
          scope_kw_at = j;
          scope_kw = std::string(tok);
          break;
        }
        j = k;
        continue;
      }
      if (c == '<') {
        size_t past = MatchAngle(code, j);
        if (past != std::string_view::npos && past <= end) {
          j = past;
          continue;
        }
      }
      if (c == '(') {
        if (paren == 0 && angle == 0 && first_paren == std::string_view::npos) {
          first_paren = j;
        }
        ++paren;
      } else if (c == ')') {
        --paren;
      }
      ++j;
    }
  }

  if (scope_kw_at != std::string_view::npos) {
    if (scope_kw == "namespace") {
      info.kind = HeadInfo::kNamespace;
    } else if (scope_kw == "class" || scope_kw == "struct") {
      info.kind = HeadInfo::kClass;
    } else {
      info.kind = HeadInfo::kOther;
      return info;
    }
    size_t j = SkipSpace(code, scope_kw_at + scope_kw.size());
    while (j < end && code.compare(j, 2, "[[") == 0) {
      size_t close = code.find("]]", j);
      if (close == std::string_view::npos) {
        break;
      }
      j = SkipSpace(code, close + 2);
    }
    size_t k = j;
    while (k < end && IsIdentChar(code[k])) {
      ++k;
    }
    info.name = std::string(code.substr(j, k - j));
    return info;
  }

  if (first_paren == std::string_view::npos) {
    return info;
  }
  size_t params_past = MatchParen(code, first_paren);
  if (params_past == std::string_view::npos || params_past > end) {
    return info;
  }

  size_t before = PrevMeaningful(code, first_paren);
  if (before == std::string_view::npos || before < head_begin) {
    return info;
  }
  size_t name_end = before + 1;
  size_t name_begin = name_end;
  if (IsIdentChar(code[before])) {
    while (name_begin > head_begin && IsIdentChar(code[name_begin - 1])) {
      --name_begin;
    }
  } else {
    size_t sym_begin = name_end;
    while (sym_begin > head_begin && !IsIdentChar(code[sym_begin - 1]) &&
           std::isspace(static_cast<unsigned char>(code[sym_begin - 1])) == 0) {
      --sym_begin;
    }
    size_t op_end = sym_begin;
    size_t op_begin = op_end;
    while (op_begin > head_begin && IsIdentChar(code[op_begin - 1])) {
      --op_begin;
    }
    if (code.substr(op_begin, op_end - op_begin) != "operator") {
      return info;
    }
    name_begin = op_begin;
  }
  std::string name(code.substr(name_begin, name_end - name_begin));
  if (name == "operator") {
    size_t next = SkipSpace(code, params_past);
    if (next < end && code[next] == '(') {
      size_t past2 = MatchParen(code, next);
      if (past2 == std::string_view::npos || past2 > end) {
        return info;
      }
      name = "operator()";
      first_paren = next;
      params_past = past2;
    } else {
      name += std::string(code.substr(name_end, first_paren - name_end));
      while (!name.empty() && std::isspace(static_cast<unsigned char>(name.back())) != 0) {
        name.pop_back();
      }
    }
  }
  if (name.empty() || ControlKeywords().count(name) > 0) {
    return info;
  }
  if (name_begin > head_begin) {
    size_t prev = PrevMeaningful(code, name_begin);
    if (prev != std::string_view::npos && prev >= head_begin && code[prev] == '~') {
      name = "~" + name;
      name_begin = prev;
    }
  }

  size_t chain_begin = name_begin;
  std::vector<std::string> quals;
  while (true) {
    size_t prev = PrevMeaningful(code, chain_begin);
    if (prev == std::string_view::npos || prev < head_begin || prev < 1 ||
        code[prev] != ':' || code[prev - 1] != ':') {
      break;
    }
    size_t q_end_pos = PrevMeaningful(code, prev - 1);
    if (q_end_pos == std::string_view::npos || q_end_pos < head_begin) {
      break;
    }
    if (code[q_end_pos] == '>') {
      int depth = 0;
      size_t j = q_end_pos + 1;
      while (j > head_begin) {
        --j;
        if (code[j] == '>') {
          ++depth;
        } else if (code[j] == '<') {
          if (--depth == 0) {
            break;
          }
        }
      }
      q_end_pos = PrevMeaningful(code, j);
      if (q_end_pos == std::string_view::npos || q_end_pos < head_begin ||
          !IsIdentChar(code[q_end_pos])) {
        break;
      }
    }
    if (!IsIdentChar(code[q_end_pos])) {
      break;
    }
    size_t q_begin = q_end_pos + 1;
    while (q_begin > head_begin && IsIdentChar(code[q_begin - 1])) {
      --q_begin;
    }
    quals.insert(quals.begin(), std::string(code.substr(q_begin, q_end_pos + 1 - q_begin)));
    chain_begin = q_begin;
  }

  info.kind = HeadInfo::kFunction;
  info.name = std::move(name);
  info.name_off = name_begin;
  info.qualifiers = std::move(quals);
  info.params_begin = first_paren + 1;
  info.params_end = params_past - 1;
  info.return_begin = head_begin;
  info.return_end = chain_begin;
  info.tail_begin = params_past;
  return info;
}

// ---------------------------------------------------------------------------------
// Per-function model
// ---------------------------------------------------------------------------------

// Pre-resolution op-tree node. kCall nodes are later inlined (helpers),
// replaced by kRef (annotated codecs), or dropped (no wire content).
struct PNode {
  enum Kind { kOp, kCall, kRepeat, kOptional, kBranch } kind = kOp;
  Op::Kind op = Op::kU8;
  bool is_read = false;
  std::string label;
  std::string count;
  std::string call_name;
  std::string call_qual;
  size_t argc = 0;
  int line = 0;
  int col = 0;
  std::vector<std::vector<PNode>> arms;
  std::vector<std::string> arm_labels;
};

struct ReadSite {
  std::string label;
  size_t off = 0;
  int line = 0;
  int col = 0;
  Op::Kind op = Op::kU8;
};

struct LoopSite {
  std::string count;   // normalized bound label ("" when not count-shaped)
  size_t header_off = 0;
  int line = 0;
  int col = 0;
};

struct FnInfo {
  std::string name;
  std::string qualified;
  std::string file;
  int file_index = 0;
  int line = 0;
  int col = 0;
  size_t body_begin = 0;
  size_t body_end = 0;
  size_t min_params = 0;
  size_t max_params = 0;
  bool saw_put = false;
  bool saw_read = false;
  std::vector<PNode> tree;
  bool annotated = false;
  std::string codec_name;
  int codec_version = 0;
  std::set<std::string> fn_allows;
  std::vector<ReadSite> reads;
  std::vector<LoopSite> loops;
};

struct AllowMap {
  std::unordered_map<int, std::set<std::string>> lines;

  bool Allowed(int line, std::string_view rule) const {
    auto it = lines.find(line);
    return it != lines.end() &&
           (it->second.count(std::string(rule)) > 0 || it->second.count("all") > 0);
  }
};

const std::map<std::string_view, Op::Kind>& PutMap() {
  static const std::map<std::string_view, Op::Kind> kMap = {
      {"PutU8", Op::kU8},     {"PutU16", Op::kU16},   {"PutU32", Op::kU32},
      {"PutU64", Op::kU64},   {"PutI64", Op::kI64},   {"PutF64", Op::kF64},
      {"PutBool", Op::kBool}, {"PutVarint", Op::kVarint},
      {"PutString", Op::kString}, {"PutBytes", Op::kBytes}, {"PutRaw", Op::kRaw},
  };
  return kMap;
}

const std::map<std::string_view, Op::Kind>& ReadMap() {
  static const std::map<std::string_view, Op::Kind> kMap = {
      {"ReadU8", Op::kU8},     {"ReadU16", Op::kU16},   {"ReadU32", Op::kU32},
      {"ReadU64", Op::kU64},   {"ReadI64", Op::kI64},   {"ReadF64", Op::kF64},
      {"ReadBool", Op::kBool}, {"ReadVarint", Op::kVarint},
      {"ReadString", Op::kString}, {"ReadStringView", Op::kString},
      {"ReadBytes", Op::kBytes},   {"ReadRaw", Op::kRaw},
  };
  return kMap;
}

// Last identifier run in `text` ("*count" -> "count", "i + 1" -> "1").
std::string LastIdent(std::string_view text) {
  size_t end = text.size();
  while (end > 0 && !IsIdentChar(text[end - 1])) {
    --end;
  }
  size_t begin = end;
  while (begin > 0 && IsIdentChar(text[begin - 1])) {
    --begin;
  }
  return std::string(text.substr(begin, end - begin));
}

// Normalizes an encode argument / count expression into a short field label:
// casts stripped, ".size()" -> "_count", receiver chains reduced to the final
// member. Labels are informational — symmetry never compares them.
std::string NormalizeLabel(std::string_view text) {
  std::string t;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) {
      t.push_back(c);
    }
  }
  for (int guard = 0; guard < 4; ++guard) {
    bool stripped = false;
    for (std::string_view cast :
         {std::string_view("static_cast<"), std::string_view("reinterpret_cast<"),
          std::string_view("const_cast<")}) {
      if (std::string_view(t).substr(0, cast.size()) == cast) {
        size_t open = t.find('(');
        if (open != std::string::npos) {
          size_t past = MatchParen(t, open);
          if (past != std::string::npos) {
            t = t.substr(open + 1, past - open - 2);
            stripped = true;
          }
        }
      }
    }
    if (!stripped) {
      break;
    }
  }
  size_t sz = t.find(".size()");
  if (sz != std::string::npos) {
    t = t.substr(0, sz) + "_count";
  }
  while (!t.empty() && (t.front() == '*' || t.front() == '&' || t.front() == '(')) {
    t.erase(t.begin());
  }
  while (!t.empty() && t.back() == ')') {
    t.pop_back();
  }
  // Reduce receiver chains: "msg.payload" / "this->hops_" -> final member.
  size_t dot = t.find_last_of('.');
  size_t arrow = t.rfind("->");
  size_t cut = std::string::npos;
  if (dot != std::string::npos) {
    cut = dot + 1;
  }
  if (arrow != std::string::npos && (cut == std::string::npos || arrow + 2 > cut)) {
    cut = arrow + 2;
  }
  if (cut != std::string::npos && cut < t.size()) {
    t = t.substr(cut);
  }
  // If operators remain ("seq&0x7f"), fall back to the last identifier run.
  bool pure = !t.empty();
  for (char c : t) {
    pure = pure && IsIdentChar(c);
  }
  if (!pure) {
    t = LastIdent(t);
  }
  return t;
}

// True when every `return` in [begin, end) is an error-shaped return: bare,
// false/nullopt, a known error constructor, or `<x>.status()`. Such ifs are
// pure error checks and carry no wire structure.
const std::unordered_set<std::string_view>& ErrorHeads() {
  static const std::unordered_set<std::string_view> kErrorHeads = {
      "DataLoss",       "Unimplemented", "FailedPrecondition", "InvalidArgument",
      "NotFound",       "Internal",      "Corruption",         "Status",
      "nullopt",        "false",
  };
  return kErrorHeads;
}

bool AllReturnsAreErrors(std::string_view code, size_t begin, size_t end) {
  const std::unordered_set<std::string_view>& kErrorHeads = ErrorHeads();
  size_t i = begin;
  bool any = false;
  while (i < end) {
    size_t at = code.find("return", i);
    if (at == std::string_view::npos || at >= end) {
      break;
    }
    i = at + 6;
    if ((at > 0 && IsIdentChar(code[at - 1])) || (i < end && IsIdentChar(code[i]))) {
      continue;
    }
    any = true;
    size_t semi = code.find(';', i);
    if (semi == std::string_view::npos || semi > end) {
      semi = end;
    }
    std::string_view expr = code.substr(i, semi - i);
    size_t b = SkipSpace(expr, 0);
    expr = expr.substr(b);
    if (expr.empty()) {
      continue;  // bare `return;`
    }
    if (expr.find(".status()") != std::string_view::npos) {
      continue;
    }
    size_t e = 0;
    while (e < expr.size() && (IsIdentChar(expr[e]) || expr[e] == ':')) {
      ++e;
    }
    std::string head(expr.substr(0, e));
    size_t colon = head.rfind(':');
    if (colon != std::string::npos) {
      head = head.substr(colon + 1);
    }
    if (kErrorHeads.count(head) == 0) {
      return false;
    }
  }
  return any;
}

// ---------------------------------------------------------------------------------
// Body parsing
// ---------------------------------------------------------------------------------

class BodyParser {
 public:
  BodyParser(std::string_view code, const Scrubbed& s, FnInfo* fn)
      : code_(code), s_(s), fn_(fn) {}

  struct BlockResult {
    std::vector<PNode> nodes;
    bool terminated = false;
  };

  BlockResult ParseBlock(size_t begin, size_t end) {
    BlockResult out;
    size_t i = begin;
    while (true) {
      i = SkipSpace(code_, i);
      if (i >= end) {
        break;
      }
      char c = code_[i];
      if (c == '{') {
        size_t past = MatchBrace(code_, i);
        if (past == std::string_view::npos || past > end) {
          break;
        }
        BlockResult sub = ParseBlock(i + 1, past - 1);
        Append(&out.nodes, std::move(sub.nodes));
        i = past;
        continue;
      }
      if (c == '}' || c == ';') {
        ++i;
        continue;
      }
      if (!IsIdentChar(c)) {
        // Operator soup at statement level (e.g. `++i;`): treat as statement.
        size_t semi = StmtEnd(i, end);
        ExtractStmt(i, semi, &out.nodes);
        i = semi + 1;
        continue;
      }
      size_t tok_end = i;
      while (tok_end < end && IsIdentChar(code_[tok_end])) {
        ++tok_end;
      }
      std::string_view tok = code_.substr(i, tok_end - i);
      if (tok == "for" || tok == "while") {
        i = ParseLoop(i, tok_end, end, &out.nodes);
        continue;
      }
      if (tok == "do") {
        i = ParseDo(tok_end, end, &out.nodes);
        continue;
      }
      if (tok == "if") {
        bool split = false;
        std::vector<PNode> then_nodes;
        bool then_term = false;
        size_t next = ParseIf(i, end, &out.nodes, &split, &then_nodes, &then_term);
        if (split) {
          // `if (x) { ...; return ...; }` with wire content (or a value
          // return): everything after the if is the other arm.
          BlockResult rest = ParseBlock(next, end);
          PNode node;
          node.kind = PNode::kBranch;
          node.line = s_.LineOf(i);
          node.col = s_.ColOf(i);
          node.arms.push_back(std::move(then_nodes));
          node.arms.push_back(std::move(rest.nodes));
          node.arm_labels = {"", ""};
          out.nodes.push_back(std::move(node));
          out.terminated = then_term && rest.terminated;
          return out;
        }
        i = next;
        continue;
      }
      if (tok == "switch") {
        i = ParseSwitch(i, end, &out.nodes);
        continue;
      }
      if (tok == "return") {
        size_t semi = StmtEnd(tok_end, end);
        ExtractStmt(tok_end, semi, &out.nodes);
        out.terminated = true;
        i = semi + 1;
        continue;
      }
      if (tok == "break" || tok == "continue") {
        size_t semi = code_.find(';', tok_end);
        i = semi == std::string_view::npos || semi >= end ? end : semi + 1;
        continue;
      }
      if (tok == "else" || tok == "case" || tok == "default") {
        i = tok_end;  // stray; the enclosing construct handles these
        continue;
      }
      // Generic statement; check for a local lambda definition first.
      size_t semi = StmtEnd(i, end);
      if (TryLambda(i, semi, end, &i)) {
        continue;
      }
      ExtractStmt(i, semi, &out.nodes);
      i = semi + 1;
    }
    return out;
  }

 private:
  // First top-level ';' from i (parens/brackets/braces tracked), or `end`.
  size_t StmtEnd(size_t i, size_t end) {
    int paren = 0;
    int bracket = 0;
    int brace = 0;
    for (size_t j = i; j < end; ++j) {
      char c = code_[j];
      if (c == '(') {
        ++paren;
      } else if (c == ')') {
        --paren;
      } else if (c == '[') {
        ++bracket;
      } else if (c == ']') {
        --bracket;
      } else if (c == '{') {
        ++brace;
      } else if (c == '}') {
        --brace;
      } else if (c == ';' && paren == 0 && bracket == 0 && brace == 0) {
        return j;
      }
    }
    return end;
  }

  // `auto f = [..](..) { ... };` — parse the body into the local helper map.
  bool TryLambda(size_t i, size_t semi, size_t end, size_t* next) {
    int paren = 0;
    int bracket = 0;
    size_t eq = std::string_view::npos;
    for (size_t j = i; j < semi; ++j) {
      char c = code_[j];
      if (c == '(') {
        ++paren;
      } else if (c == ')') {
        --paren;
      } else if (c == '[') {
        ++bracket;
      } else if (c == ']') {
        --bracket;
      } else if (c == '=' && paren == 0 && bracket == 0 &&
                 (j + 1 >= semi || code_[j + 1] != '=') &&
                 (j == 0 || std::string_view("=!<>+-*/|&^%").find(code_[j - 1]) ==
                                std::string_view::npos)) {
        eq = j;
        break;
      }
    }
    if (eq == std::string_view::npos) {
      return false;
    }
    size_t open = SkipSpace(code_, eq + 1);
    if (open >= end || code_[open] != '[') {
      return false;
    }
    size_t past_cap = MatchBracket(code_, open);
    if (past_cap == std::string_view::npos || past_cap > end) {
      return false;
    }
    size_t j = SkipSpace(code_, past_cap);
    if (j < end && code_[j] == '(') {
      size_t past = MatchParen(code_, j);
      if (past == std::string_view::npos || past > end) {
        return false;
      }
      j = SkipSpace(code_, past);
    }
    // Skip `mutable`, `-> Ret` etc. up to the body brace.
    while (j < end && code_[j] != '{' && code_[j] != ';') {
      ++j;
    }
    if (j >= end || code_[j] != '{') {
      return false;
    }
    size_t past_body = MatchBrace(code_, j);
    if (past_body == std::string_view::npos || past_body > end) {
      return false;
    }
    std::string name = LastIdent(code_.substr(i, eq - i));
    BlockResult body = ParseBlock(j + 1, past_body - 1);
    if (!name.empty()) {
      lambdas_[name] = std::move(body.nodes);
    }
    size_t after = code_.find(';', past_body);
    *next = after == std::string_view::npos || after >= end ? end : after + 1;
    return true;
  }

  size_t ParseLoop(size_t kw_begin, size_t kw_end, size_t end,
                   std::vector<PNode>* out) {
    size_t open = SkipSpace(code_, kw_end);
    if (open >= end || code_[open] != '(') {
      return kw_end;
    }
    size_t past_cond = MatchParen(code_, open);
    if (past_cond == std::string_view::npos || past_cond > end) {
      return end;
    }
    std::string count = LoopCount(open + 1, past_cond - 1);
    // Range-for loops bound themselves by the container they iterate; only
    // counter-style headers can over-iterate on a hostile decoded count.
    bool counter_style = true;
    {
      int paren = 0;
      bool has_semi = false;
      for (size_t j = open + 1; j + 1 < past_cond; ++j) {
        char c = code_[j];
        if (c == '(') {
          ++paren;
        } else if (c == ')') {
          --paren;
        } else if (c == ';' && paren == 0) {
          has_semi = true;
        } else if (c == ':' && paren == 0 && !has_semi && code_[j - 1] != ':' &&
                   code_[j + 1] != ':') {
          counter_style = false;
          break;
        }
      }
    }
    size_t body_begin = SkipSpace(code_, past_cond);
    BlockResult body;
    size_t next;
    if (body_begin < end && code_[body_begin] == '{') {
      size_t past = MatchBrace(code_, body_begin);
      if (past == std::string_view::npos || past > end) {
        return end;
      }
      body = ParseBlock(body_begin + 1, past - 1);
      next = past;
    } else {
      size_t semi = StmtEnd(body_begin, end);
      body = ParseBlock(body_begin, semi);
      next = semi + 1;
    }
    if (!body.nodes.empty()) {
      PNode node;
      node.kind = PNode::kRepeat;
      node.count = count;
      node.line = s_.LineOf(kw_begin);
      node.col = s_.ColOf(kw_begin);
      node.arms.push_back(std::move(body.nodes));
      out->push_back(std::move(node));
      if (counter_style) {
        fn_->loops.push_back({count, kw_begin, s_.LineOf(kw_begin), s_.ColOf(kw_begin)});
      }
    }
    return next;
  }

  size_t ParseDo(size_t kw_end, size_t end, std::vector<PNode>* out) {
    size_t body_begin = SkipSpace(code_, kw_end);
    if (body_begin >= end || code_[body_begin] != '{') {
      return kw_end;
    }
    size_t past = MatchBrace(code_, body_begin);
    if (past == std::string_view::npos || past > end) {
      return end;
    }
    BlockResult body = ParseBlock(body_begin + 1, past - 1);
    if (!body.nodes.empty()) {
      PNode node;
      node.kind = PNode::kRepeat;
      node.line = s_.LineOf(body_begin);
      node.col = s_.ColOf(body_begin);
      node.arms.push_back(std::move(body.nodes));
      out->push_back(std::move(node));
    }
    size_t semi = code_.find(';', past);
    return semi == std::string_view::npos || semi >= end ? end : semi + 1;
  }

  // Normalized loop-bound label from a for/while header: the RHS of the first
  // top-level `<` / `<=` / `!=`, or the range-for sequence after ':'.
  std::string LoopCount(size_t begin, size_t end) {
    int paren = 0;
    int angle_guard = 0;
    size_t colon = std::string_view::npos;
    bool has_semi = false;
    size_t cond_begin = begin;
    size_t cond_end = end;
    for (size_t j = begin; j < end; ++j) {
      char c = code_[j];
      if (c == '(') {
        ++paren;
      } else if (c == ')') {
        --paren;
      } else if (c == ';' && paren == 0) {
        if (!has_semi) {
          has_semi = true;
          cond_begin = j + 1;
        } else {
          cond_end = j;
          break;
        }
      } else if (c == ':' && paren == 0 && colon == std::string_view::npos &&
                 (j == 0 || code_[j - 1] != ':') &&
                 (j + 1 >= end || code_[j + 1] != ':')) {
        colon = j;
      }
      (void)angle_guard;
    }
    if (!has_semi) {
      if (colon != std::string_view::npos) {
        return NormalizeLabel(code_.substr(colon + 1, end - colon - 1));
      }
      cond_begin = begin;
      cond_end = end;
    }
    for (size_t j = cond_begin; j + 1 < cond_end; ++j) {
      char c = code_[j];
      char n = code_[j + 1];
      if ((c == '<' && n != '<' && n != '=') || (c == '<' && n == '=') ||
          (c == '!' && n == '=')) {
        size_t rhs = c == '<' && n != '=' ? j + 1 : j + 2;
        return NormalizeLabel(code_.substr(rhs, cond_end - rhs));
      }
    }
    return "";
  }

  // Parses an if statement starting at `i` ("if" keyword). Appends any
  // resulting node to `out`, or signals a control-flow split to the caller.
  size_t ParseIf(size_t i, size_t end, std::vector<PNode>* out, bool* split,
                 std::vector<PNode>* split_then, bool* split_term) {
    size_t open = code_.find('(', i);
    if (open == std::string_view::npos || open >= end) {
      return end;
    }
    size_t past_cond = MatchParen(code_, open);
    if (past_cond == std::string_view::npos || past_cond > end) {
      return end;
    }
    size_t then_begin = SkipSpace(code_, past_cond);
    BlockResult then_res;
    size_t then_src_begin = then_begin;
    size_t then_src_end = then_begin;
    size_t next;
    if (then_begin < end && code_[then_begin] == '{') {
      size_t past = MatchBrace(code_, then_begin);
      if (past == std::string_view::npos || past > end) {
        return end;
      }
      then_src_begin = then_begin + 1;
      then_src_end = past - 1;
      then_res = ParseBlock(then_src_begin, then_src_end);
      next = past;
    } else {
      size_t semi = StmtEnd(then_begin, end);
      then_src_end = semi;
      then_res = ParseBlock(then_begin, semi);
      if (code_.compare(then_begin, 6, "return") == 0 &&
          (then_begin + 6 >= end || !IsIdentChar(code_[then_begin + 6]))) {
        then_res.terminated = true;
      }
      next = semi < end ? semi + 1 : end;
    }

    // `else` / `else if` chain.
    size_t after = SkipSpace(code_, next);
    bool has_else = false;
    BlockResult else_res;
    if (after + 4 <= end && code_.compare(after, 4, "else") == 0 &&
        (after + 4 >= end || !IsIdentChar(code_[after + 4]))) {
      has_else = true;
      size_t eb = SkipSpace(code_, after + 4);
      if (eb + 2 <= end && code_.compare(eb, 2, "if") == 0 &&
          (eb + 2 >= end || !IsIdentChar(code_[eb + 2]))) {
        bool sub_split = false;
        std::vector<PNode> sub_then;
        bool sub_term = false;
        std::vector<PNode> chain;
        size_t sub_next = ParseIf(eb, end, &chain, &sub_split, &sub_then, &sub_term);
        if (sub_split) {
          // else-if arm with terminating wire content: fold into a plain arm.
          chain.clear();
          PNode node;
          node.kind = PNode::kBranch;
          node.arms.push_back(std::move(sub_then));
          node.arms.push_back({});
          node.arm_labels = {"", ""};
          chain.push_back(std::move(node));
        }
        else_res.nodes = std::move(chain);
        next = sub_next;
      } else if (eb < end && code_[eb] == '{') {
        size_t past = MatchBrace(code_, eb);
        if (past == std::string_view::npos || past > end) {
          return end;
        }
        else_res = ParseBlock(eb + 1, past - 1);
        next = past;
      } else {
        size_t semi = StmtEnd(eb, end);
        else_res = ParseBlock(eb, semi);
        if (code_.compare(eb, 6, "return") == 0) {
          else_res.terminated = true;
        }
        next = semi < end ? semi + 1 : end;
      }
    }

    bool then_ops = !then_res.nodes.empty();
    bool else_ops = !else_res.nodes.empty();
    if (has_else) {
      if (!then_ops && !else_ops) {
        return next;  // both arms pure checks
      }
      PNode node;
      node.kind = PNode::kBranch;
      node.line = s_.LineOf(i);
      node.col = s_.ColOf(i);
      node.arms.push_back(std::move(then_res.nodes));
      node.arms.push_back(std::move(else_res.nodes));
      node.arm_labels = {"", ""};
      out->push_back(std::move(node));
      return next;
    }
    if (then_ops) {
      if (then_res.terminated) {
        *split = true;
        *split_then = std::move(then_res.nodes);
        *split_term = true;
        return next;
      }
      PNode node;
      node.kind = PNode::kOptional;
      node.line = s_.LineOf(i);
      node.col = s_.ColOf(i);
      node.arms.push_back(std::move(then_res.nodes));
      out->push_back(std::move(node));
      return next;
    }
    if (then_res.terminated &&
        !AllReturnsAreErrors(code_, then_src_begin, then_src_end)) {
      // Op-free value return (`if (*marker == 0) return Value();`): the rest
      // of the function is conditionally absent on the wire.
      *split = true;
      split_then->clear();
      *split_term = true;
      return next;
    }
    return next;  // pure error check
  }

  size_t ParseSwitch(size_t i, size_t end, std::vector<PNode>* out) {
    size_t open = code_.find('(', i);
    if (open == std::string_view::npos || open >= end) {
      return end;
    }
    size_t past_cond = MatchParen(code_, open);
    if (past_cond == std::string_view::npos || past_cond > end) {
      return end;
    }
    size_t block = SkipSpace(code_, past_cond);
    if (block >= end || code_[block] != '{') {
      return past_cond;
    }
    size_t past_block = MatchBrace(code_, block);
    if (past_block == std::string_view::npos || past_block > end) {
      return end;
    }
    size_t b = block + 1;
    size_t e = past_block - 1;
    // Find top-level `case X:` / `default:` labels.
    struct Arm {
      std::string label;
      size_t begin = 0;
      size_t end = 0;
    };
    std::vector<Arm> arms;
    int depth = 0;
    size_t j = b;
    while (j < e) {
      char c = code_[j];
      if (c == '{') {
        ++depth;
        ++j;
        continue;
      }
      if (c == '}') {
        --depth;
        ++j;
        continue;
      }
      if (depth == 0 && IsIdentChar(c) && (j == b || !IsIdentChar(code_[j - 1]))) {
        size_t k = j;
        while (k < e && IsIdentChar(code_[k])) {
          ++k;
        }
        std::string_view tok = code_.substr(j, k - j);
        if (tok == "case" || tok == "default") {
          // Label text runs to the ':' (skipping '::').
          size_t le = k;
          while (le < e) {
            if (code_[le] == ':' && le + 1 < e && code_[le + 1] == ':') {
              le += 2;
              continue;
            }
            if (code_[le] == ':') {
              break;
            }
            ++le;
          }
          if (!arms.empty()) {
            arms.back().end = j;
          }
          Arm arm;
          arm.label = tok == "default" ? "default" : LastIdent(code_.substr(k, le - k));
          arm.begin = le < e ? le + 1 : e;
          arm.end = e;
          arms.push_back(arm);
          j = le + 1;
          continue;
        }
        j = k;
        continue;
      }
      ++j;
    }
    if (arms.empty()) {
      return past_block;
    }
    PNode node;
    node.kind = PNode::kBranch;
    node.line = s_.LineOf(i);
    node.col = s_.ColOf(i);
    bool any_ops = false;
    for (const Arm& arm : arms) {
      BlockResult res = ParseBlock(arm.begin, arm.end);
      any_ops = any_ops || !res.nodes.empty();
      node.arms.push_back(std::move(res.nodes));
      node.arm_labels.push_back(arm.label);
    }
    if (any_ops) {
      out->push_back(std::move(node));
    }
    return past_block;
  }

  // Statement-level op/call extraction.
  void ExtractStmt(size_t begin, size_t end, std::vector<PNode>* out) {
    std::string target = AssignTarget(begin, end);
    size_t i = begin;
    while (i < end) {
      if (!(IsIdentChar(code_[i]) && (i == 0 || !IsIdentChar(code_[i - 1])) &&
            std::isdigit(static_cast<unsigned char>(code_[i])) == 0)) {
        ++i;
        continue;
      }
      size_t j = i;
      while (j < end && IsIdentChar(code_[j])) {
        ++j;
      }
      std::string_view tok = code_.substr(i, j - i);
      size_t open = SkipSpace(code_, j);
      if (open >= end || code_[open] != '(' || ControlKeywords().count(tok) > 0) {
        i = j;
        continue;
      }
      size_t past = MatchParen(code_, open);
      if (past == std::string_view::npos || past > end + 1) {
        i = j;
        continue;
      }
      auto put_it = PutMap().find(tok);
      if (put_it != PutMap().end()) {
        PNode node;
        node.kind = PNode::kOp;
        node.op = put_it->second;
        node.label = NormalizeLabel(FirstArg(open, past));
        node.line = s_.LineOf(i);
        node.col = s_.ColOf(i);
        out->push_back(std::move(node));
        fn_->saw_put = true;
        i = open + 1;  // descend into args (nested puts impossible, calls are)
        continue;
      }
      auto read_it = ReadMap().find(tok);
      if (read_it != ReadMap().end()) {
        PNode node;
        node.kind = PNode::kOp;
        node.op = read_it->second;
        node.is_read = true;
        node.label = target;
        node.line = s_.LineOf(i);
        node.col = s_.ColOf(i);
        out->push_back(std::move(node));
        fn_->saw_read = true;
        fn_->reads.push_back({target, i, s_.LineOf(i), s_.ColOf(i), read_it->second});
        i = open + 1;
        continue;
      }
      if (NoiseNames().count(tok) > 0 || ErrorHeads().count(tok) > 0) {
        i = open + 1;  // error constructors carry no wire structure
        continue;
      }
      auto lam = lambdas_.find(std::string(tok));
      if (lam != lambdas_.end()) {
        Append(out, std::vector<PNode>(lam->second));
        i = open + 1;
        continue;
      }
      PNode node;
      node.kind = PNode::kCall;
      node.call_name = std::string(tok);
      node.argc = CountArgs(code_, open, past);
      node.line = s_.LineOf(i);
      node.col = s_.ColOf(i);
      // Explicit `X::f(...)` qualifier.
      size_t prev = PrevMeaningful(code_, i);
      if (prev != std::string_view::npos && prev >= 1 && code_[prev] == ':' &&
          code_[prev - 1] == ':') {
        size_t q_end = PrevMeaningful(code_, prev - 1);
        if (q_end != std::string_view::npos && IsIdentChar(code_[q_end])) {
          size_t q_begin = q_end + 1;
          while (q_begin > 0 && IsIdentChar(code_[q_begin - 1])) {
            --q_begin;
          }
          node.call_qual = std::string(code_.substr(q_begin, q_end + 1 - q_begin));
        }
      }
      out->push_back(std::move(node));
      i = open + 1;  // args may contain further calls
    }
  }

  // Identifier left of the first top-level '=' (skipping compound/comparison
  // operators and array suffixes): the Read* target name.
  std::string AssignTarget(size_t begin, size_t end) {
    int paren = 0;
    int bracket = 0;
    int brace = 0;
    for (size_t j = begin; j < end; ++j) {
      char c = code_[j];
      if (c == '(') {
        ++paren;
      } else if (c == ')') {
        --paren;
      } else if (c == '[') {
        ++bracket;
      } else if (c == ']') {
        --bracket;
      } else if (c == '{') {
        ++brace;
      } else if (c == '}') {
        --brace;
      } else if (c == '=' && paren == 0 && bracket == 0 && brace == 0) {
        if (j + 1 < end && code_[j + 1] == '=') {
          ++j;
          continue;
        }
        if (j > begin && std::string_view("=!<>+-*/|&^%").find(code_[j - 1]) !=
                             std::string_view::npos) {
          continue;
        }
        std::string_view lhs = code_.substr(begin, j - begin);
        size_t le = lhs.size();
        while (le > 0 && std::isspace(static_cast<unsigned char>(lhs[le - 1])) != 0) {
          --le;
        }
        if (le > 0 && lhs[le - 1] == ']') {
          size_t ob = lhs.rfind('[');
          if (ob != std::string_view::npos) {
            le = ob;
          }
        }
        return LastIdent(lhs.substr(0, le));
      }
    }
    return "";
  }

  std::string_view FirstArg(size_t open, size_t past) {
    int paren = 0;
    int angle = 0;
    int brace = 0;
    for (size_t j = open; j + 1 < past; ++j) {
      char c = code_[j];
      if (c == '(') {
        ++paren;
      } else if (c == ')') {
        --paren;
      } else if (c == '<') {
        ++angle;
      } else if (c == '>') {
        angle = angle > 0 ? angle - 1 : 0;
      } else if (c == '{') {
        ++brace;
      } else if (c == '}') {
        --brace;
      } else if (c == ',' && paren == 1 && angle == 0 && brace == 0) {
        return code_.substr(open + 1, j - open - 1);
      }
    }
    return code_.substr(open + 1, past - open - 2);
  }

  static void Append(std::vector<PNode>* out, std::vector<PNode>&& nodes) {
    for (PNode& n : nodes) {
      out->push_back(std::move(n));
    }
  }

  std::string_view code_;
  const Scrubbed& s_;
  FnInfo* fn_;
  std::map<std::string, std::vector<PNode>> lambdas_;
};

}  // namespace

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kRules = {
      kRuleSymmetry,     kRuleMissingPair,    kRuleVersionFirst,
      kRuleUncheckedCount, kRuleUnclampedAlloc, kRuleRawReadBound,
      kRuleTruncation,   kRuleTrailingBytes,  kRuleRecursion,
      kRuleUncheckedIndex,
  };
  return kRules;
}

std::string Diagnostic::ToString() const {
  return file + ":" + std::to_string(line) + ":" + std::to_string(col) + ": [" +
         rule + "] " + message;
}

std::string_view OpKindName(Op::Kind kind) {
  switch (kind) {
    case Op::kU8: return "u8";
    case Op::kU16: return "u16";
    case Op::kU32: return "u32";
    case Op::kU64: return "u64";
    case Op::kI64: return "i64";
    case Op::kF64: return "f64";
    case Op::kBool: return "bool";
    case Op::kVarint: return "varint";
    case Op::kString: return "string";
    case Op::kBytes: return "bytes";
    case Op::kRaw: return "raw";
    case Op::kRef: return "ref";
    case Op::kRepeat: return "repeat";
    case Op::kOptional: return "optional";
    case Op::kBranch: return "branch";
  }
  return "?";
}

}  // namespace ibus::wirecheck

// The rest of the pipeline (file scanning, call resolution, normalization,
// decode-safety rules, BuildProgram) shares the helpers above; single-TU
// include keeps them in one anonymous-namespace universe.
#include "src/wirecheck/build.inc"  // NOLINT(build/include)
