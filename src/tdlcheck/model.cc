// Model collection: the static class/function/method tables tdlcheck builds
// from a parsed script without executing it.
#include <algorithm>

#include "src/tdlcheck/tdlcheck.h"

namespace ibus::tdlcheck {

std::string Diagnostic::ToString() const {
  return file + ":" + std::to_string(line) + ":" + std::to_string(col) + ": [" + rule + "] " +
         message;
}

const SlotDecl* ClassDecl::FindSlot(const std::string& slot_name) const {
  for (const SlotDecl& s : slots) {
    if (s.name == slot_name) {
      return &s;
    }
  }
  return nullptr;
}

std::vector<SlotDecl> ScriptModel::AllSlots(const std::string& cls) const {
  // Supertype-first, mirroring TypeRegistry::AllAttributes. The chain walk is
  // cycle-safe: a (statically impossible to register, but parseable) circular
  // hierarchy terminates at the first repeat.
  std::vector<const ClassDecl*> chain;
  std::set<std::string> visited;
  for (auto it = classes.find(cls); it != classes.end(); it = classes.find(it->second.supertype)) {
    if (!visited.insert(it->first).second) {
      break;
    }
    chain.push_back(&it->second);
  }
  std::vector<SlotDecl> out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    out.insert(out.end(), (*it)->slots.begin(), (*it)->slots.end());
  }
  return out;
}

namespace {

bool IsSym(const Datum& d, const char* name) { return d.is_symbol() && d.AsSymbol() == name; }

// Records a (defclass name (super) (slots...)) form whose shape is close enough
// to read a declaration out of. Structural errors are the checker's job; the
// collector is deliberately lenient so a half-broken defclass still contributes
// whatever it declares (fewer cascading undefined-class diagnostics).
void CollectDefclass(const Datum::List& list, ScriptModel* model) {
  if (list.size() < 3 || !list[1].is_symbol() || !list[2].is_list()) {
    return;
  }
  ClassDecl decl;
  decl.name = list[1].AsSymbol();
  decl.line = list[1].line();
  decl.col = list[1].col();
  decl.supertype = "object";
  if (!list[2].AsList().empty() && list[2].AsList()[0].is_symbol()) {
    decl.supertype = list[2].AsList()[0].AsSymbol();
  }
  if (list.size() > 3 && list[3].is_list()) {
    for (const Datum& slot : list[3].AsList()) {
      SlotDecl s;
      if (slot.is_symbol()) {
        s = SlotDecl{slot.AsSymbol(), "any", slot.line(), slot.col()};
      } else if (slot.is_list() && !slot.AsList().empty() && slot.AsList()[0].is_symbol()) {
        const Datum::List& spec = slot.AsList();
        s = SlotDecl{spec[0].AsSymbol(), "any", spec[0].line(), spec[0].col()};
        for (size_t i = 1; i + 1 < spec.size(); i += 2) {
          if (IsSym(spec[i], ":type") && spec[i + 1].is_symbol()) {
            s.type_name = spec[i + 1].AsSymbol();
          }
        }
      } else {
        continue;
      }
      decl.slots.push_back(std::move(s));
    }
  }
  model->classes[decl.name] = std::move(decl);
}

void CollectDefun(const Datum::List& list, ScriptModel* model) {
  if (list.size() < 4 || !list[1].is_symbol() || !list[2].is_list()) {
    return;
  }
  FunctionDecl decl;
  decl.name = list[1].AsSymbol();
  decl.arity = list[2].AsList().size();
  decl.line = list[1].line();
  decl.col = list[1].col();
  model->functions[decl.name] = std::move(decl);
}

void CollectDefmethod(const Datum::List& list, ScriptModel* model) {
  if (list.size() < 4 || !list[1].is_symbol() || !list[2].is_list() ||
      list[2].AsList().empty()) {
    return;
  }
  const Datum& first = list[2].AsList()[0];
  if (!first.is_list() || first.AsList().size() != 2 || !first.AsList()[1].is_symbol()) {
    return;
  }
  MethodDecl decl;
  decl.specializer = first.AsList()[1].AsSymbol();
  decl.arity = list[2].AsList().size();
  decl.line = list[1].line();
  decl.col = list[1].col();
  model->generics[list[1].AsSymbol()].push_back(std::move(decl));
}

void CollectForm(const Datum& form, ScriptModel* model) {
  if (!form.is_list() || form.AsList().empty()) {
    return;
  }
  const Datum::List& list = form.AsList();
  if (list[0].is_symbol()) {
    const std::string& op = list[0].AsSymbol();
    if (op == "quote") {
      return;  // quoted data, not code
    }
    if (op == "defclass") {
      CollectDefclass(list, model);
    } else if (op == "defun") {
      CollectDefun(list, model);
    } else if (op == "defmethod") {
      CollectDefmethod(list, model);
    } else if (op == "setq" && list.size() >= 2 && list[1].is_symbol()) {
      // setq on an unbound name defines it; collected globally so scripts that
      // (setq s ...) at top level then reference s later check clean.
      model->assigned.insert(list[1].AsSymbol());
    }
  }
  for (const Datum& child : list) {
    CollectForm(child, model);
  }
}

}  // namespace

ScriptModel CollectModel(const std::vector<Datum>& forms) {
  ScriptModel model;
  for (const Datum& form : forms) {
    CollectForm(form, &model);
  }
  return model;
}

}  // namespace ibus::tdlcheck
