// Schema-evolution compatibility: statically diffs the class tables of two
// script versions and classifies every change as wire-safe or wire-breaking.
//
// The wire model: a publisher running new.tdl emits self-describing objects
// that subscribers compiled against old.tdl consume by attribute name (paper
// P2/P3). A change is wire-safe when every object the new script publishes
// still carries every slot, at the same type, that an old-script consumer may
// read. Appending slots, adding classes, and adding methods are safe (old
// consumers ignore what they never ask for); removing, renaming, or retyping a
// slot — or repointing the superclass, which changes the inherited slot set —
// strands them.
#include "src/tdlcheck/tdlcheck.h"

namespace ibus::tdlcheck {

namespace {

void Change(std::vector<CompatChange>* out, bool breaking, const std::string& subject,
            std::string message) {
  out->push_back(CompatChange{breaking, subject, std::move(message)});
}

void DiffClass(const ScriptModel& old_model, const ScriptModel& new_model,
               const ClassDecl& oc, std::vector<CompatChange>* out) {
  const ClassDecl& nc = new_model.classes.at(oc.name);
  if (oc.supertype != nc.supertype) {
    Change(out, true, oc.name,
           "superclass changed from '" + oc.supertype + "' to '" + nc.supertype +
               "' (inherited slot set differs)");
  }
  // Compare the *flattened* slot sets: a slot moving between a class and its
  // superclass is invisible on the wire, so only the effective set matters.
  std::vector<SlotDecl> old_slots = old_model.AllSlots(oc.name);
  std::vector<SlotDecl> new_slots = new_model.AllSlots(nc.name);
  auto find = [](const std::vector<SlotDecl>& slots, const std::string& name) -> const SlotDecl* {
    for (const SlotDecl& s : slots) {
      if (s.name == name) {
        return &s;
      }
    }
    return nullptr;
  };
  for (const SlotDecl& os : old_slots) {
    const SlotDecl* ns = find(new_slots, os.name);
    if (ns == nullptr) {
      // A removed slot accompanied by an appearing same-typed slot reads like a
      // rename; surface the hint, but a rename is just as breaking.
      std::string hint;
      for (const SlotDecl& cand : new_slots) {
        if (cand.type_name == os.type_name && find(old_slots, cand.name) == nullptr) {
          hint = " (renamed to '" + cand.name + "'?)";
          break;
        }
      }
      Change(out, true, oc.name, "slot '" + os.name + "' removed" + hint);
    } else if (ns->type_name != os.type_name) {
      Change(out, true, oc.name,
             "slot '" + os.name + "' retyped from " + os.type_name + " to " + ns->type_name);
    }
  }
  for (const SlotDecl& ns : new_slots) {
    if (find(old_slots, ns.name) == nullptr) {
      Change(out, false, oc.name, "slot '" + ns.name + "' appended (type " + ns.type_name + ")");
    }
  }
}

}  // namespace

std::string CompatChange::ToString() const {
  return subject + ": " + message + (breaking ? " [BREAKING]" : " [safe]");
}

std::vector<CompatChange> DiffModels(const ScriptModel& old_model,
                                     const ScriptModel& new_model) {
  std::vector<CompatChange> out;
  // std::map iteration gives a deterministic, name-sorted report.
  for (const auto& [name, oc] : old_model.classes) {
    if (new_model.classes.count(name) == 0) {
      Change(&out, true, name, "class removed");
      continue;
    }
    DiffClass(old_model, new_model, oc, &out);
  }
  for (const auto& [name, nc] : new_model.classes) {
    if (old_model.classes.count(name) == 0) {
      Change(&out, false, name, "new class (supertype '" + nc.supertype + "')");
    }
  }
  // Methods: dispatch is process-local, so method-set changes never break the
  // wire; new methods are reported as safe evolution, removals stay silent on
  // the wire but are surfaced for the reader.
  for (const auto& [name, methods] : new_model.generics) {
    auto old_it = old_model.generics.find(name);
    for (const MethodDecl& m : methods) {
      bool existed = false;
      if (old_it != old_model.generics.end()) {
        for (const MethodDecl& om : old_it->second) {
          if (om.specializer == m.specializer && om.arity == m.arity) {
            existed = true;
            break;
          }
        }
      }
      if (!existed) {
        Change(&out, false, name,
               "new method specialized on '" + m.specializer + "' (local dispatch only)");
      }
    }
  }
  for (const auto& [name, methods] : old_model.generics) {
    auto new_it = new_model.generics.find(name);
    for (const MethodDecl& m : methods) {
      bool still = false;
      if (new_it != new_model.generics.end()) {
        for (const MethodDecl& nm : new_it->second) {
          if (nm.specializer == m.specializer && nm.arity == m.arity) {
            still = true;
            break;
          }
        }
      }
      if (!still) {
        Change(&out, false, name,
               "method specialized on '" + m.specializer + "' removed (local dispatch only)");
      }
    }
  }
  return out;
}

}  // namespace ibus::tdlcheck
