// The tdlcheck rules engine: walks parsed TDL forms with a lexical scope stack
// and reports diagnostics, mirroring the interpreter's runtime checks (arity
// guards in builtins.cc, TypeRegistry::Define/Validate, subject validation)
// without executing anything.
#include <algorithm>
#include <cstddef>
#include <sstream>

#include "src/subject/subject.h"
#include "src/tdl/parser.h"
#include "src/tdlcheck/tdlcheck.h"
#include "src/types/type_descriptor.h"

namespace ibus::tdlcheck {

namespace {

constexpr size_t kVariadic = static_cast<size_t>(-1);

struct Arity {
  size_t min = 0;
  size_t max = kVariadic;
};

// What a bus binding expects in its first argument, so string literals can be
// run through the real src/subject grammar.
enum class SubjectKind { kNone, kSubject, kPattern };

struct BuiltinSig {
  Arity arity;
  SubjectKind subject = SubjectKind::kNone;
};

// Argument counts are copied from the runtime guards in src/tdl/builtins.cc and
// src/appbuilder/app_builder.cc. The BuiltinCoverage test cross-checks this
// table against TdlInterp::GlobalNames() so it cannot silently go stale.
const std::map<std::string, BuiltinSig>& Builtins() {
  static const std::map<std::string, BuiltinSig> kTable = {
      {"+", {{0, kVariadic}}},
      {"-", {{0, kVariadic}}},
      {"*", {{0, kVariadic}}},
      {"/", {{2, 2}}},
      {"mod", {{2, 2}}},
      {"=", {{2, kVariadic}}},
      {"<", {{2, kVariadic}}},
      {">", {{2, kVariadic}}},
      {"<=", {{2, kVariadic}}},
      {">=", {{2, kVariadic}}},
      {"eq", {{2, 2}}},
      {"not", {{1, 1}}},
      {"list", {{0, kVariadic}}},
      {"first", {{1, 1}}},
      {"rest", {{1, 1}}},
      {"second", {{1, 1}}},
      {"last", {{1, 1}}},
      {"reverse", {{1, 1}}},
      {"cons", {{2, 2}}},
      {"append", {{0, kVariadic}}},
      {"length", {{1, 1}}},
      {"nth", {{2, 2}}},
      {"mapcar", {{2, 2}}},
      {"filter", {{2, 2}}},
      {"assoc", {{2, 2}}},
      {"min", {{1, kVariadic}}},
      {"max", {{1, kVariadic}}},
      {"abs", {{1, 1}}},
      {"string-split", {{2, 2}}},
      {"concat", {{0, kVariadic}}},
      {"to-string", {{1, 1}}},
      {"string-contains", {{2, 2}}},
      {"string-downcase", {{1, 1}}},
      {"make-instance", {{1, kVariadic}}},
      {"slot-value", {{2, 2}}},
      {"set-slot-value!", {{3, 3}}},
      {"type-of", {{1, 1}}},
      {"isa?", {{2, 2}}},
      {"attributes", {{1, 1}}},
      {"describe", {{1, 1}}},
      {"print", {{0, kVariadic}}},
      // Bus bindings installed by the application builder.
      {"bus-publish", {{2, 2}, SubjectKind::kSubject}},
      {"bus-subscribe", {{2, 2}, SubjectKind::kPattern}},
      {"bus-invoke", {{4, 4}, SubjectKind::kSubject}},
      {"define-service", {{3, 3}, SubjectKind::kSubject}},
      {"list-services", {{1, 1}}},
  };
  return kTable;
}

const std::set<std::string>& SpecialForms() {
  static const std::set<std::string> kForms = {
      "quote", "if",     "cond",   "and",  "or",     "let",    "let*",     "lambda",
      "setq",  "progn",  "when",   "unless", "dolist", "while", "defun",   "defclass",
      "defmethod",
  };
  return kForms;
}

// Classes the registry pre-registers before any script runs.
bool IsRegistryBuiltinClass(const std::string& name) {
  return name == "object" || name == "property";
}

// Runtime dispatch (DispatchGeneric) maps non-object arguments onto these
// fundamental type names, so they are legal defmethod specializers.
bool IsDispatchableFundamental(const std::string& name) {
  return name == "string" || name == "i64" || name == "f64" || name == "bool" ||
         name == "list";
}

bool IsKeyword(const Datum& d) {
  return d.is_symbol() && !d.AsSymbol().empty() && d.AsSymbol()[0] == ':';
}

// The Value kind a TDL literal lands in after make-instance's ToValue
// conversion — what TypeRegistry::Validate compares against the slot type.
// Empty string when the datum is not a checkable literal.
std::string LiteralKind(const Datum& d) {
  if (d.is_int()) {
    return "i64";
  }
  if (d.is_double()) {
    return "f64";
  }
  if (d.is_string()) {
    return "string";
  }
  if (d.is_bool()) {
    return "bool";
  }
  return "";
}

class Checker {
 public:
  Checker(std::string file, const ScriptModel& model)
      : file_(std::move(file)), model_(model) {}

  void Run(const std::vector<Datum>& forms) {
    for (const Datum& form : forms) {
      CheckExpr(form);
    }
  }

  std::vector<Diagnostic> Take() { return std::move(diags_); }

 private:
  void Report(const Datum& at, const char* rule, std::string message) {
    diags_.push_back(Diagnostic{file_, at.line(), at.col(), rule, std::move(message)});
  }

  bool IsBound(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->count(name) > 0) {
        return true;
      }
    }
    return false;
  }

  void Bind(const std::string& name) { scopes_.back().insert(name); }

  struct Scope {
    explicit Scope(Checker* c) : c_(c) { c_->scopes_.emplace_back(); }
    ~Scope() { c_->scopes_.pop_back(); }
    Checker* c_;
  };

  // Binds the parameter list of a lambda/defun/defmethod into the current
  // scope; flags non-symbol parameters.
  void BindParams(const Datum& params) {
    for (const Datum& p : params.AsList()) {
      if (p.is_symbol()) {
        Bind(p.AsSymbol());
      } else if (p.is_list() && p.AsList().size() == 2 && p.AsList()[0].is_symbol()) {
        Bind(p.AsList()[0].AsSymbol());  // (param class) specializer pair
      } else {
        Report(p, kRuleMalformedForm, "parameter is not a symbol");
      }
    }
  }

  void CheckBody(const Datum::List& list, size_t from) {
    for (size_t i = from; i < list.size(); ++i) {
      CheckExpr(list[i]);
    }
  }

  void CheckSymbol(const Datum& d) {
    const std::string& name = d.AsSymbol();
    if (IsKeyword(d)) {
      return;  // keywords self-evaluate
    }
    if (IsBound(name) || model_.functions.count(name) > 0 ||
        model_.generics.count(name) > 0 || model_.assigned.count(name) > 0 ||
        IsKnownBuiltin(name)) {
      return;
    }
    Report(d, kRuleUndefinedSymbol, "'" + name + "' is not defined anywhere in this script");
  }

  void CheckLet(const Datum::List& list, bool sequential) {
    if (list.size() < 2 || !list[1].is_list()) {
      Report(list[0], kRuleMalformedForm, "let expects a binding list");
      return;
    }
    Scope scope(this);
    for (const Datum& binding : list[1].AsList()) {
      if (binding.is_symbol()) {
        Bind(binding.AsSymbol());
        continue;
      }
      if (!binding.is_list() || binding.AsList().size() != 2 ||
          !binding.AsList()[0].is_symbol()) {
        Report(binding, kRuleMalformedForm, "let binding must be (name value)");
        continue;
      }
      // In let, init expressions see only the outer scope; the sequential
      // approximation used here only mislabels a forward reference inside the
      // same binding list — rare, and legal in let* anyway.
      (void)sequential;
      CheckExpr(binding.AsList()[1]);
      Bind(binding.AsList()[0].AsSymbol());
    }
    CheckBody(list, 2);
  }

  void CheckDolist(const Datum::List& list) {
    if (list.size() < 3 || !list[1].is_list() || list[1].AsList().size() != 2 ||
        !list[1].AsList()[0].is_symbol()) {
      Report(list[0], kRuleMalformedForm, "dolist expects ((var list-expr) body...)");
      return;
    }
    CheckExpr(list[1].AsList()[1]);
    Scope scope(this);
    Bind(list[1].AsList()[0].AsSymbol());
    CheckBody(list, 2);
  }

  void CheckLambda(const Datum::List& list) {
    if (list.size() < 3 || !list[1].is_list()) {
      Report(list[0], kRuleMalformedForm, "lambda expects (lambda (params) body...)");
      return;
    }
    Scope scope(this);
    BindParams(list[1]);
    CheckBody(list, 2);
  }

  void CheckDefun(const Datum::List& list) {
    if (list.size() < 4 || !list[1].is_symbol() || !list[2].is_list()) {
      Report(list[0], kRuleMalformedForm, "defun expects (defun name (params) body...)");
      return;
    }
    Scope scope(this);
    BindParams(list[2]);
    CheckBody(list, 3);
  }

  void CheckDefmethod(const Datum::List& list) {
    if (list.size() < 4 || !list[1].is_symbol() || !list[2].is_list() ||
        list[2].AsList().empty()) {
      Report(list[0], kRuleMalformedForm,
             "defmethod expects (defmethod name ((arg class) ...) body...)");
      return;
    }
    const Datum& first = list[2].AsList()[0];
    if (!first.is_list() || first.AsList().size() != 2 || !first.AsList()[0].is_symbol() ||
        !first.AsList()[1].is_symbol()) {
      Report(first, kRuleMalformedForm,
             "defmethod's first parameter must be an (arg class) specializer pair");
      return;
    }
    const std::string& spec = first.AsList()[1].AsSymbol();
    if (!model_.HasClass(spec) && !IsRegistryBuiltinClass(spec) &&
        !IsDispatchableFundamental(spec)) {
      Report(first.AsList()[1], kRuleUnknownSpecializer,
             "defmethod specializer '" + spec + "' names an undefined class");
    }
    Scope scope(this);
    BindParams(list[2]);
    CheckBody(list, 3);
  }

  void CheckDefclass(const Datum::List& list) {
    if (list.size() < 4 || !list[1].is_symbol() || !list[2].is_list() || !list[3].is_list()) {
      Report(list[0], kRuleMalformedForm,
             "defclass expects (defclass name (supertype) (slots...))");
      return;
    }
    const std::string& name = list[1].AsSymbol();
    // Superclass: the registry requires the supertype to already be registered.
    std::string super = "object";
    if (!list[2].AsList().empty()) {
      const Datum& s = list[2].AsList()[0];
      if (s.is_symbol()) {
        super = s.AsSymbol();
        if (!model_.HasClass(super) && !IsRegistryBuiltinClass(super)) {
          Report(s, kRuleUnknownSuperclass,
                 "superclass '" + super + "' is not defined in this script or the registry");
        }
      }
    }
    // Slots: the registry rejects duplicates across the whole inheritance
    // chain, so a redeclared inherited slot is an error too.
    std::set<std::string> seen;
    for (const SlotDecl& s : model_.AllSlots(super)) {
      seen.insert(s.name);
    }
    for (const Datum& slot : list[3].AsList()) {
      const Datum* name_datum = nullptr;
      std::string slot_name;
      std::string type_name = "any";
      const Datum* type_datum = nullptr;
      if (slot.is_symbol()) {
        name_datum = &slot;
        slot_name = slot.AsSymbol();
      } else if (slot.is_list() && !slot.AsList().empty() && slot.AsList()[0].is_symbol()) {
        const Datum::List& spec = slot.AsList();
        name_datum = &spec[0];
        slot_name = spec[0].AsSymbol();
        for (size_t i = 1; i < spec.size(); i += 2) {
          if (i + 1 >= spec.size()) {
            Report(spec[i], kRuleMalformedForm,
                   "slot option '" + (spec[i].is_symbol() ? spec[i].AsSymbol() : "?") +
                       "' is missing its value");
            break;
          }
          if (spec[i].is_symbol() && spec[i].AsSymbol() == ":type" &&
              spec[i + 1].is_symbol()) {
            type_name = spec[i + 1].AsSymbol();
            type_datum = &spec[i + 1];
          }
        }
      } else {
        Report(slot, kRuleMalformedForm, "slot must be a symbol or (name :type type)");
        continue;
      }
      if (!seen.insert(slot_name).second) {
        Report(*name_datum, kRuleDuplicateSlot,
               "slot '" + slot_name + "' declared more than once in '" + name +
                   "' (inherited slots included)");
      }
      if (type_datum != nullptr && !IsFundamentalTypeName(type_name) &&
          !model_.HasClass(type_name) && !IsRegistryBuiltinClass(type_name)) {
        Report(*type_datum, kRuleUnknownSlotType,
               "slot type '" + type_name +
                   "' is neither a fundamental type nor a known class");
      }
    }
  }

  // Returns the class name when the datum is a (quote symbol) form, else "".
  static std::string QuotedClassName(const Datum& d) {
    if (d.is_list() && d.AsList().size() == 2 && d.AsList()[0].is_symbol() &&
        d.AsList()[0].AsSymbol() == "quote" && d.AsList()[1].is_symbol()) {
      return d.AsList()[1].AsSymbol();
    }
    return "";
  }

  void CheckMakeInstance(const Datum::List& list) {
    if (list.size() < 2) {
      return;  // arity check already reported
    }
    std::string cls = QuotedClassName(list[1]);
    if (cls.empty()) {
      CheckExpr(list[1]);  // class computed dynamically; nothing static to say
    } else if (!model_.HasClass(cls) && !IsRegistryBuiltinClass(cls)) {
      Report(list[1], kRuleUnknownClass,
             "make-instance of '" + cls + "', which is defined nowhere in this script");
      return;  // no class table to check the initializers against
    }
    std::vector<SlotDecl> slots =
        cls.empty() ? std::vector<SlotDecl>{} : model_.AllSlots(cls);
    for (size_t i = 2; i < list.size(); i += 2) {
      if (!IsKeyword(list[i])) {
        Report(list[i], kRuleMalformedForm,
               "make-instance initializers must be :keyword value pairs");
        CheckExpr(list[i]);
        continue;
      }
      if (i + 1 >= list.size()) {
        Report(list[i], kRuleMalformedForm,
               "initializer '" + list[i].AsSymbol() + "' is missing its value");
        break;
      }
      const std::string slot_name = list[i].AsSymbol().substr(1);
      const SlotDecl* slot = nullptr;
      for (const SlotDecl& s : slots) {
        if (s.name == slot_name) {
          slot = &s;
          break;
        }
      }
      if (!cls.empty() && slot == nullptr) {
        Report(list[i], kRuleUnknownSlotInit,
               "class '" + cls + "' has no slot named '" + slot_name + "'");
      }
      const Datum& value = list[i + 1];
      CheckExpr(value);
      std::string kind = LiteralKind(value);
      if (slot != nullptr && !kind.empty() && IsFundamentalTypeName(slot->type_name) &&
          slot->type_name != "any" && slot->type_name != "list" &&
          slot->type_name != "null" && kind != slot->type_name) {
        // TypeRegistry::Validate requires the value kind to equal the declared
        // fundamental type exactly (an i64 in an f64 slot fails at publish).
        Report(value, kRuleSlotTypeMismatch,
               "slot '" + slot_name + "' of '" + cls + "' is declared " + slot->type_name +
                   " but initialized with a " + kind + " literal");
      }
    }
  }

  // Validates a string literal passed where a bus binding expects a subject or
  // pattern, using the real grammar from src/subject.
  void CheckSubjectArg(const Datum& arg, SubjectKind kind, const std::string& callee) {
    if (!arg.is_string()) {
      return;  // computed at run-time; nothing static to say
    }
    Status s = kind == SubjectKind::kPattern ? ValidatePattern(arg.AsString())
                                             : ValidateSubject(arg.AsString());
    if (!s.ok()) {
      Report(arg, kRuleBadSubject,
             "\"" + arg.AsString() + "\" passed to " + callee + ": " + s.message());
    }
  }

  void CheckCall(const Datum::List& list) {
    const std::string& callee = list[0].AsSymbol();
    const size_t argc = list.size() - 1;
    auto builtin = Builtins().find(callee);
    auto fn = model_.functions.find(callee);
    auto generic = model_.generics.find(callee);
    if (builtin != Builtins().end()) {
      const Arity& a = builtin->second.arity;
      if (argc < a.min || argc > a.max) {
        std::ostringstream msg;
        msg << "'" << callee << "' expects ";
        if (a.max == kVariadic) {
          msg << "at least " << a.min << (a.min == 1 ? " argument" : " arguments");
        } else if (a.min == a.max) {
          msg << a.min << (a.min == 1 ? " argument" : " arguments");
        } else {
          msg << "between " << a.min << " and " << a.max << " arguments";
        }
        msg << ", got " << argc;
        Report(list[0], kRuleArityMismatch, msg.str());
      }
      if (builtin->second.subject != SubjectKind::kNone && argc >= 1) {
        CheckSubjectArg(list[1], builtin->second.subject, callee);
      }
      if (callee == "make-instance") {
        CheckMakeInstance(list);
        return;  // argument walk handled (keywords must not hit CheckSymbol)
      }
    } else if (fn != model_.functions.end()) {
      if (argc != fn->second.arity) {
        Report(list[0], kRuleArityMismatch,
               "'" + callee + "' expects " + std::to_string(fn->second.arity) +
                   (fn->second.arity == 1 ? " argument" : " arguments") + ", got " +
                   std::to_string(argc));
      }
    } else if (generic != model_.generics.end()) {
      bool any = false;
      for (const MethodDecl& m : generic->second) {
        if (m.arity == argc) {
          any = true;
          break;
        }
      }
      if (!any) {
        Report(list[0], kRuleArityMismatch,
               "no method on '" + callee + "' accepts " + std::to_string(argc) +
                   (argc == 1 ? " argument" : " arguments"));
      }
    } else if (!IsBound(callee) && model_.assigned.count(callee) == 0 &&
               !IsKeyword(list[0])) {
      Report(list[0], kRuleUndefinedSymbol,
             "call to '" + callee + "', which is not defined anywhere in this script");
    }
    for (size_t i = 1; i < list.size(); ++i) {
      CheckExpr(list[i]);
    }
  }

  void CheckExpr(const Datum& d) {
    if (d.is_symbol()) {
      CheckSymbol(d);
      return;
    }
    if (!d.is_list() || d.AsList().empty()) {
      return;  // literals check themselves
    }
    const Datum::List& list = d.AsList();
    if (!list[0].is_symbol()) {
      // Computed head, e.g. ((lambda (x) x) 1): check everything as expressions.
      for (const Datum& child : list) {
        CheckExpr(child);
      }
      return;
    }
    const std::string& op = list[0].AsSymbol();
    if (op == "quote") {
      return;  // data, not code
    }
    if (op == "if" || op == "when" || op == "unless" || op == "while" || op == "and" ||
        op == "or" || op == "progn") {
      CheckBody(list, 1);
      return;
    }
    if (op == "cond") {
      for (size_t i = 1; i < list.size(); ++i) {
        if (!list[i].is_list() || list[i].AsList().empty()) {
          Report(list[i], kRuleMalformedForm, "cond clause must be (test body...)");
          continue;
        }
        for (const Datum& part : list[i].AsList()) {
          CheckExpr(part);
        }
      }
      return;
    }
    if (op == "let" || op == "let*") {
      CheckLet(list, op == "let*");
      return;
    }
    if (op == "lambda") {
      CheckLambda(list);
      return;
    }
    if (op == "setq") {
      if (list.size() != 3 || !list[1].is_symbol()) {
        Report(list[0], kRuleMalformedForm, "setq expects (setq name value)");
        return;
      }
      CheckExpr(list[2]);
      return;
    }
    if (op == "dolist") {
      CheckDolist(list);
      return;
    }
    if (op == "defun") {
      CheckDefun(list);
      return;
    }
    if (op == "defclass") {
      CheckDefclass(list);
      return;
    }
    if (op == "defmethod") {
      CheckDefmethod(list);
      return;
    }
    CheckCall(list);
  }

  std::string file_;
  const ScriptModel& model_;
  std::vector<std::set<std::string>> scopes_{1};
  std::vector<Diagnostic> diags_;
};

// Parses "; tdlcheck: allow(rule)" suppressions out of the raw source, one map
// entry per line that carries at least one.
std::map<int, std::set<std::string>> CollectAllows(std::string_view source) {
  std::map<int, std::set<std::string>> allows;
  int line = 1;
  size_t start = 0;
  while (start <= source.size()) {
    size_t end = source.find('\n', start);
    std::string_view text = source.substr(
        start, end == std::string_view::npos ? std::string_view::npos : end - start);
    constexpr std::string_view kMarker = "tdlcheck: allow(";
    size_t at = text.find(kMarker);
    while (at != std::string_view::npos) {
      size_t open = at + kMarker.size();
      size_t close = text.find(')', open);
      if (close == std::string_view::npos) {
        break;
      }
      allows[line].insert(std::string(text.substr(open, close - open)));
      at = text.find(kMarker, close);
    }
    if (end == std::string_view::npos) {
      break;
    }
    start = end + 1;
    ++line;
  }
  return allows;
}

void SortDiagnostics(std::vector<Diagnostic>* diags) {
  std::stable_sort(diags->begin(), diags->end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.line != b.line) {
      return a.line < b.line;
    }
    if (a.col != b.col) {
      return a.col < b.col;
    }
    return a.rule < b.rule;
  });
}

}  // namespace

bool IsKnownBuiltin(const std::string& name) {
  return SpecialForms().count(name) > 0 || Builtins().count(name) > 0;
}

std::vector<Diagnostic> CheckForms(const std::string& file, const std::vector<Datum>& forms,
                                   const ScriptModel& model) {
  Checker checker(file, model);
  checker.Run(forms);
  std::vector<Diagnostic> diags = checker.Take();
  SortDiagnostics(&diags);
  return diags;
}

std::vector<Diagnostic> CheckScript(const std::string& file, std::string_view source) {
  TdlParseError parse_error;
  auto forms = ParseTdl(source, &parse_error);
  if (!forms.ok()) {
    Diagnostic d;
    d.file = file;
    d.line = parse_error.line > 0 ? parse_error.line : 1;
    d.col = parse_error.col > 0 ? parse_error.col : 1;
    d.rule = kRuleParseError;
    d.message = parse_error.line > 0 ? parse_error.what : std::string(forms.status().message());
    return {std::move(d)};
  }
  ScriptModel model = CollectModel(*forms);
  std::vector<Diagnostic> diags = CheckForms(file, *forms, model);
  auto allows = CollectAllows(source);
  if (!allows.empty()) {
    diags.erase(std::remove_if(diags.begin(), diags.end(),
                               [&allows](const Diagnostic& d) {
                                 auto it = allows.find(d.line);
                                 return it != allows.end() && it->second.count(d.rule) > 0;
                               }),
                diags.end());
  }
  return diags;
}

}  // namespace ibus::tdlcheck
