// tdlcheck: an AST-level static analyzer + schema-evolution compatibility
// checker for the TDL dynamic-classing language.
//
// The paper's evolution story (P3: new classes defined at run-time become
// instantly publishable) cuts both ways: a typo'd slot name, a wrong-arity
// call, or a wire-breaking class redefinition is only discovered when an
// adapter crashes mid-run. tdlcheck loads TDL scripts WITHOUT executing them
// and reports diagnostics with file:line:col spans:
//
//   parse-error         — the script does not parse (position of the bad token)
//   undefined-symbol    — reference to a variable/function bound nowhere:
//                         not a builtin, bus binding, defun, defmethod generic,
//                         defclass name, parameter, let/dolist binding, or setq
//   arity-mismatch      — call to a builtin/defun/defmethod with an argument
//                         count no signature accepts
//   malformed-form      — structurally broken special form (defclass without a
//                         slot list, make-instance with a dangling :keyword, …)
//   duplicate-slot      — defclass slot repeated, or shadowing an inherited
//                         slot (the registry rejects both at run-time)
//   unknown-slot-type   — slot :type names neither a fundamental type from the
//                         types::TypeRegistry scalar set nor a checked class
//   unknown-superclass  — defclass supertype is not 'object', a built-in
//                         registry type, or a class defined in the script
//   unknown-class       — make-instance of a class defined nowhere
//   unknown-slot-init   — make-instance :slot that the class does not declare
//                         (inherited slots included)
//   slot-type-mismatch  — make-instance literal initializer whose kind cannot
//                         inhabit the declared slot type (string into f64, …)
//   bad-subject         — subject/pattern literal passed to a bus binding that
//                         fails the real src/subject grammar, including the
//                         reserved "_ibus." namespace rule for publishes
//   unknown-specializer — defmethod specializer naming an undefined class
//
// Any script line can opt out with a trailing comment: ; tdlcheck: allow(rule)
//
// The second mode statically diffs the class tables of two script versions and
// classifies every change as wire-safe or wire-breaking (see DiffModels and
// tools/tdlcheck --compat), making the evolution story a CI-checkable property.
#ifndef SRC_TDLCHECK_TDLCHECK_H_
#define SRC_TDLCHECK_TDLCHECK_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/tdl/datum.h"

namespace ibus::tdlcheck {

struct Diagnostic {
  std::string file;
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;

  // "examples/scripts/x.tdl:4:12: [undefined-symbol] ..." — the exact format
  // the golden-diagnostics test locks.
  std::string ToString() const;
};

// Rule names, exposed for the allowlist mechanism and the tests.
inline constexpr char kRuleParseError[] = "parse-error";
inline constexpr char kRuleUndefinedSymbol[] = "undefined-symbol";
inline constexpr char kRuleArityMismatch[] = "arity-mismatch";
inline constexpr char kRuleMalformedForm[] = "malformed-form";
inline constexpr char kRuleDuplicateSlot[] = "duplicate-slot";
inline constexpr char kRuleUnknownSlotType[] = "unknown-slot-type";
inline constexpr char kRuleUnknownSuperclass[] = "unknown-superclass";
inline constexpr char kRuleUnknownClass[] = "unknown-class";
inline constexpr char kRuleUnknownSlotInit[] = "unknown-slot-init";
inline constexpr char kRuleSlotTypeMismatch[] = "slot-type-mismatch";
inline constexpr char kRuleBadSubject[] = "bad-subject";
inline constexpr char kRuleUnknownSpecializer[] = "unknown-specializer";

// --- The statically collected script model -----------------------------------------

struct SlotDecl {
  std::string name;
  std::string type_name;  // "any" when the slot spec carries no :type
  int line = 0;
  int col = 0;
};

struct ClassDecl {
  std::string name;
  std::string supertype;
  std::vector<SlotDecl> slots;
  int line = 0;
  int col = 0;

  const SlotDecl* FindSlot(const std::string& slot_name) const;
};

struct FunctionDecl {
  std::string name;
  size_t arity = 0;
  int line = 0;
  int col = 0;
};

struct MethodDecl {
  std::string specializer;
  size_t arity = 0;  // including the dispatch argument
  int line = 0;
  int col = 0;
};

struct ScriptModel {
  std::map<std::string, ClassDecl> classes;
  std::map<std::string, FunctionDecl> functions;          // defun
  std::map<std::string, std::vector<MethodDecl>> generics;  // defmethod
  std::set<std::string> assigned;                         // (setq name ...) targets

  bool HasClass(const std::string& name) const { return classes.count(name) > 0; }

  // All slots of `cls` including inherited ones along the in-model supertype
  // chain, supertype-first (mirrors TypeRegistry::AllAttributes). Cycle-safe.
  std::vector<SlotDecl> AllSlots(const std::string& cls) const;
};

// Collects every defclass/defun/defmethod/setq in the form tree,
// flow-insensitively: a defclass inside a function body still registers when
// the function runs, so the checker treats it as defined. Quoted data is not
// descended into.
ScriptModel CollectModel(const std::vector<Datum>& forms);

// True when `name` is a special form, an interpreter builtin, or a bus binding
// the checker knows the signature of. The tdlcheck tests cross-check this
// against TdlInterp::GlobalNames() so the table cannot drift from the
// interpreter.
bool IsKnownBuiltin(const std::string& name);

// Analyzes one script without executing it: parse, collect the model, run every
// rule. `file` appears verbatim in diagnostics. Diagnostics are sorted by
// position.
std::vector<Diagnostic> CheckScript(const std::string& file, std::string_view source);

// Checks already-parsed forms against a model (used by CheckScript; exposed for
// hosts that already hold parsed trees).
std::vector<Diagnostic> CheckForms(const std::string& file, const std::vector<Datum>& forms,
                                   const ScriptModel& model);

// --- Schema-evolution compatibility (tdlcheck --compat) ----------------------------

struct CompatChange {
  bool breaking = false;
  std::string subject;  // class name (or generic name for method changes)
  std::string message;

  // "recipe: slot 'steps' removed [BREAKING]" / "...appended (type string) [safe]"
  std::string ToString() const;
};

// Statically diffs the class tables (and method sets) of two script versions.
// Wire-safe: slot appended, new class, new method. Wire-breaking: slot
// removed/renamed/retyped, superclass changed, class removed.
std::vector<CompatChange> DiffModels(const ScriptModel& old_model,
                                     const ScriptModel& new_model);

}  // namespace ibus::tdlcheck

#endif  // SRC_TDLCHECK_TDLCHECK_H_
