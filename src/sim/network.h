// Simulated internetwork: hosts attached to shared-medium segments (Ethernet-like LANs
// or point-to-point WAN links), a UDP-style datagram service with hardware broadcast,
// and configurable fault injection (loss, duplication, jitter/reordering, partitions,
// host crashes). This substitutes for the paper's SunOS workstations on a lightly
// loaded 10 Mbit/s Ethernet; the medium model (per-frame serialization time on a
// shared half-duplex segment plus propagation delay) is what gives the appendix
// benchmarks their characteristic shapes.
#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sim/simulator.h"
#include "src/telemetry/metrics.h"

namespace ibus {

using HostId = uint32_t;
using SegmentId = uint32_t;
using Port = uint16_t;

constexpr HostId kNoHost = 0xFFFFFFFFu;
constexpr HostId kBroadcastHost = 0xFFFFFFFEu;

// Shared-medium segment parameters. Defaults model the paper's testbed: a lightly
// loaded 10 Mbit/s Ethernet with ~1500-byte frames.
struct SegmentConfig {
  double bandwidth_bps = 10.0 * 1000 * 1000;  // 10 Mbit/s Ethernet
  SimTime propagation_us = 50;                // cable + switch-free medium propagation
  size_t mtu = 1500;                          // max frame size, including frame overhead
  size_t frame_overhead = 42;                 // Ethernet + IP + UDP headers per frame
  bool broadcast_capable = true;              // WAN links are not
  // Host protocol-stack cost charged per frame in addition to wire serialization.
  // The paper's SPARCstation-2/SunOS-4.1.1 testbed could not "drive more than 300
  // Kb/sec through Ethernet with a raw UDP socket" — the send path, not the 10 Mbit
  // medium, was the bottleneck. Modelled as extra occupancy of the shared resource
  // (exact for a single sender, conservative for several).
  double host_cpu_us_per_frame = 0;
};

// Stochastic fault plan applied to datagram frames on a segment.
struct FaultPlan {
  double drop_prob = 0.0;       // independent per-frame loss
  double dup_prob = 0.0;        // independent per-frame duplication
  SimTime jitter_us = 0;        // extra uniform delay in [0, jitter]; causes reordering
};

struct Datagram {
  HostId src_host = kNoHost;
  Port src_port = 0;
  HostId dst_host = kNoHost;    // kBroadcastHost for segment broadcast
  Port dst_port = 0;
  Bytes payload;
};

// --- Wire-level capture ---------------------------------------------------------
//
// Every frame that touches a segment medium can be observed by attached taps with
// its final *fate* — the capture plane behind src/capture and tools/buscap. Host-
// local loopback IPC (client<->daemon datagrams on one host) never occupies a
// medium and is not captured.

// Why a frame ended the way it did on the simulated medium. Values are part of the
// capture-file and pcap formats; do not renumber.
enum class FrameFate : uint8_t {
  kDelivered = 1,          // handed to a bound socket with no medium queueing
  kQueuedDelay = 2,        // delivered, but waited behind earlier frames on the medium
  kDroppedFault = 3,       // lost to the segment's FaultPlan
  kDuplicated = 4,         // delivered extra copy manufactured by the FaultPlan
  kMtuRejected = 5,        // payload + frame overhead exceeded the segment MTU
  kDroppedPartition = 6,   // receiver unreachable: down host or partition boundary
  kDroppedNoListener = 7,  // no socket bound to the destination port
};

// Stable lower-case name ("delivered", "dropped_fault", ...) used by reports.
const char* FrameFateName(FrameFate f);

// What a tap sees for one frame. Broadcasts fan out into one record per receiver,
// all sharing `tx_id` (the medium was occupied once); fault-made duplicates also
// share the original's tx_id with `duplicate` set and zero `wire_us`.
struct CapturedFrame {
  uint64_t index = 0;        // monotonic capture sequence (assigned at send time)
  uint64_t tx_id = 0;        // one per medium transmission
  SegmentId segment = 0;
  HostId src_host = kNoHost;
  Port src_port = 0;
  HostId dst_host = kNoHost;  // concrete receiver (never kBroadcastHost)
  Port dst_port = 0;
  uint64_t conn_id = 0;      // nonzero for connection (stream) chunk frames
  uint64_t conn_msg_id = 0;  // groups the chunks of one connection message
  bool broadcast = false;
  bool duplicate = false;    // fault-manufactured extra copy
  // Connection chunks 2..n of a large message: the message bytes live on the first
  // chunk's record; continuation records carry an empty payload.
  bool continuation = false;
  FrameFate fate = FrameFate::kDelivered;
  SimTime sent_at = 0;       // when the sender handed the frame to the medium
  SimTime delivered_at = 0;  // delivery time, or when the drop was decided
  SimTime queued_us = 0;     // time spent waiting for the shared half-duplex medium
  SimTime wire_us = 0;       // serialization occupancy of this transmission
  uint32_t wire_bytes = 0;   // payload + frame overhead
  uint32_t frame_overhead = 0;
  Bytes payload;             // the frame payload (wire-format bus frame)
};

// Observer interface; implemented by capture::CaptureBuffer. OnFrame runs
// synchronously inside the simulation and must not mutate the network.
class NetworkTap {
 public:
  virtual ~NetworkTap() = default;
  virtual void OnFrame(const CapturedFrame& frame) = 0;
};

// Registry names of the network-owned drop counters (one per drop reason; host-down
// drops count as "partition" — an unreachable receiver either way).
inline constexpr char kMetricNetDropFault[] = "net.drop.fault";
inline constexpr char kMetricNetDropMtu[] = "net.drop.mtu";
inline constexpr char kMetricNetDropPartition[] = "net.drop.partition";
inline constexpr char kMetricNetDropNoListener[] = "net.drop.no_listener";

class Network;

// A bound datagram endpoint. Closing (destroying) the socket releases the port.
class UdpSocket {
 public:
  using Handler = std::function<void(const Datagram&)>;

  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  HostId host() const { return host_; }
  Port port() const { return port_; }

  // Sends to a specific host/port. Fails if the payload exceeds the segment MTU
  // (minus frame overhead); higher layers fragment.
  Status SendTo(HostId dst, Port dst_port, Bytes payload);

  // Segment-wide hardware broadcast; every socket bound to `dst_port` on an up host in
  // the same partition group receives it (including the sender's own host).
  Status Broadcast(Port dst_port, Bytes payload);

  void SetHandler(Handler handler) { handler_ = std::move(handler); }

 private:
  friend class Network;
  UdpSocket(Network* net, HostId host, Port port) : net_(net), host_(host), port_(port) {}

  Network* net_;
  HostId host_;
  Port port_;
  Handler handler_;
};

// TCP-like reliable, ordered, message-oriented connection. Messages of any size are
// chunked into MTU frames that consume segment bandwidth; delivery is in order and
// loss-free (retransmission is abstracted away), but partitions and host crashes break
// the connection.
class Connection {
 public:
  using MessageHandler = std::function<void(const Bytes&)>;
  using CloseHandler = std::function<void()>;

  HostId local_host() const { return local_host_; }
  HostId remote_host() const { return remote_host_; }
  bool open() const { return open_; }

  Status Send(Bytes message);
  // Outbound FIFO backlog of this side: how far the last in-flight message's
  // delivery time is ahead of now, i.e. how long a message sent now would queue
  // behind earlier sends. 0 when idle or closed. Feeds the router's link-backlog
  // gauge (see src/router).
  SimTime BacklogUs() const;
  void SetMessageHandler(MessageHandler handler) { on_message_ = std::move(handler); }
  void SetCloseHandler(CloseHandler handler) { on_close_ = std::move(handler); }
  void Close();

 private:
  friend class Network;
  Connection(Network* net, uint64_t id, HostId local, HostId remote)
      : net_(net), id_(id), local_host_(local), remote_host_(remote) {}

  Network* net_;
  uint64_t id_;
  HostId local_host_;
  HostId remote_host_;
  bool open_ = true;
  MessageHandler on_message_;
  CloseHandler on_close_;
};

using ConnectionPtr = std::shared_ptr<Connection>;

// Accepts inbound connections on (host, port).
class Listener {
 public:
  using AcceptHandler = std::function<void(ConnectionPtr)>;

  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  HostId host() const { return host_; }
  Port port() const { return port_; }

 private:
  friend class Network;
  Listener(Network* net, HostId host, Port port, AcceptHandler handler)
      : net_(net), host_(host), port_(port), handler_(std::move(handler)) {}

  Network* net_;
  HostId host_;
  Port port_;
  AcceptHandler handler_;
};

class Network {
 public:
  explicit Network(Simulator* sim, uint64_t fault_seed = 42);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator* sim() { return sim_; }

  // --- Topology -------------------------------------------------------------------
  SegmentId AddSegment(const SegmentConfig& config = SegmentConfig());
  HostId AddHost(const std::string& name, SegmentId segment);
  const std::string& HostName(HostId h) const;
  SegmentId HostSegment(HostId h) const;
  std::vector<HostId> HostsOnSegment(SegmentId s) const;
  // Per-host restart counter: the first daemon boot on a host gets epoch 0, each
  // later boot 1, 2, ... Daemons fold the epoch into their reliable stream id so a
  // restarted daemon looks like a brand-new sender to its peers instead of an old
  // stream whose low sequence numbers would be discarded as duplicates.
  uint32_t NextBootEpoch(HostId h);

  // --- Fault injection ------------------------------------------------------------
  void SetFaultPlan(SegmentId segment, const FaultPlan& plan);
  // Marks a host down: in-flight traffic to/from it is dropped, its connections break.
  void SetHostUp(HostId h, bool up);
  bool HostUp(HostId h) const;
  // Splits hosts into partition groups; traffic crosses only within a group.
  // An empty map heals all partitions.
  void SetPartitionGroups(const std::unordered_map<HostId, int>& groups);
  bool CanCommunicate(HostId a, HostId b) const;

  // --- Datagram service -----------------------------------------------------------
  // Binds a socket. port==0 picks an ephemeral port. Fails if the port is taken.
  Result<std::unique_ptr<UdpSocket>> OpenSocket(HostId host, Port port,
                                                UdpSocket::Handler handler);
  // Maximum datagram payload the given host's segment can carry in one frame.
  size_t MaxDatagramPayload(HostId host) const;

  // --- Connection service ---------------------------------------------------------
  Result<std::unique_ptr<Listener>> Listen(HostId host, Port port,
                                           Listener::AcceptHandler handler);
  // Asynchronous connect; the handler receives the connection or an error after the
  // simulated handshake completes.
  void Connect(HostId src, HostId dst, Port dst_port,
               std::function<void(Result<ConnectionPtr>)> done);

  // --- Capture --------------------------------------------------------------------
  // Attaches/detaches a wire-level observer. With no taps attached the capture path
  // costs one branch per frame. Taps see every medium frame with its fate.
  void AttachTap(NetworkTap* tap);
  void DetachTap(NetworkTap* tap);

  // --- Statistics -----------------------------------------------------------------
  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t frames_delivered = 0;
    uint64_t frames_dropped_fault = 0;
    uint64_t frames_dropped_down = 0;
    uint64_t frames_dropped_mtu = 0;
    uint64_t frames_dropped_no_listener = 0;
    uint64_t frames_duplicated = 0;
    uint64_t bytes_on_wire = 0;  // includes frame overhead
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  // Network-owned counters: the per-reason drop counters live here under "net.".
  telemetry::MetricsRegistry* metrics() { return &metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }

 private:
  friend class UdpSocket;
  friend class Connection;
  friend class Listener;

  struct Segment {
    SegmentConfig config;
    FaultPlan faults;
    SimTime busy_until = 0;  // shared half-duplex medium: next free transmit time
    std::vector<HostId> hosts;
  };

  struct Host {
    std::string name;
    SegmentId segment;
    bool up = true;
    int partition_group = 0;
    uint32_t boot_epochs = 0;
    Port next_ephemeral = 49152;
    // Local IPC is FIFO: a small datagram must not overtake a large one queued
    // earlier on the same host (kernels serialize the copy).
    SimTime loopback_tail = 0;
    std::unordered_map<Port, UdpSocket*> sockets;
    std::unordered_map<Port, Listener*> listeners;
  };

  struct ConnState {
    ConnectionPtr a;  // initiator side handle
    ConnectionPtr b;  // acceptor side handle
    // Per-direction queue tail: delivery time of the last in-flight message, used to
    // preserve FIFO ordering per connection.
    SimTime a_to_b_tail = 0;
    SimTime b_to_a_tail = 0;
  };

  // Occupancy of one frame on the shared medium: when it finished serializing, how
  // long it waited for the medium, and how long it occupied it.
  struct TxTiming {
    SimTime finish = 0;
    SimTime queued_us = 0;
    SimTime wire_us = 0;
  };

  // Partially-built capture record carried from the send site to the fate site.
  // `active` is false when no taps are attached (everything else is then unset).
  struct PendingTap {
    bool active = false;
    uint64_t index = 0;
    uint64_t tx_id = 0;
    SegmentId segment = 0;
    bool broadcast = false;
    bool duplicate = false;
    SimTime sent_at = 0;
    SimTime queued_us = 0;
    SimTime wire_us = 0;
    uint32_t wire_bytes = 0;
    uint32_t frame_overhead = 0;
  };

  // Schedules delivery of one already-validated frame on a segment. `wire_bytes`
  // includes the frame overhead.
  TxTiming TransmitFrame(Segment& seg, size_t wire_bytes);
  void DeliverDatagram(Datagram d, SimTime at);  // loopback path: no tap record
  void DeliverDatagram(Datagram d, SimTime at, PendingTap tap);
  Status SendDatagram(const Datagram& d);
  Status BroadcastDatagram(const Datagram& d);

  // Capture plumbing: fills a PendingTap at the send site (no-op with no taps) and
  // emits the finished record once the fate is known.
  PendingTap BeginTap(SegmentId segment, const TxTiming& tx, size_t wire_bytes,
                      uint32_t frame_overhead, bool broadcast);
  void EmitTap(const PendingTap& tap, const Datagram& d, FrameFate fate, SimTime at);

  Status ConnectionSend(Connection* conn, Bytes message);
  SimTime ConnectionBacklogUs(const Connection* conn) const;
  void ConnectionClose(Connection* conn, bool notify_peer);
  void CloseSocket(UdpSocket* s);
  void CloseListener(Listener* l);

  SimTime LocalLoopbackDelay(size_t bytes) const;

  Simulator* sim_;
  Rng rng_;
  std::vector<Segment> segments_;
  std::vector<Host> hosts_;
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, ConnState> connections_;
  Stats stats_;

  // Capture state. Counters advance only while a tap is attached, so untapped runs
  // pay nothing and replay identically to pre-capture builds.
  std::vector<NetworkTap*> taps_;
  uint64_t next_capture_index_ = 1;
  uint64_t next_tx_id_ = 1;
  uint64_t next_conn_msg_id_ = 1;

  // Network-owned drop counters; resolved once in the constructor.
  telemetry::MetricsRegistry metrics_;
  telemetry::Counter* drop_fault_;
  telemetry::Counter* drop_mtu_;
  telemetry::Counter* drop_partition_;
  telemetry::Counter* drop_no_listener_;
};

}  // namespace ibus

#endif  // SRC_SIM_NETWORK_H_
