// Simulated internetwork: hosts attached to shared-medium segments (Ethernet-like LANs
// or point-to-point WAN links), a UDP-style datagram service with hardware broadcast,
// and configurable fault injection (loss, duplication, jitter/reordering, partitions,
// host crashes). This substitutes for the paper's SunOS workstations on a lightly
// loaded 10 Mbit/s Ethernet; the medium model (per-frame serialization time on a
// shared half-duplex segment plus propagation delay) is what gives the appendix
// benchmarks their characteristic shapes.
#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sim/simulator.h"

namespace ibus {

using HostId = uint32_t;
using SegmentId = uint32_t;
using Port = uint16_t;

constexpr HostId kNoHost = 0xFFFFFFFFu;
constexpr HostId kBroadcastHost = 0xFFFFFFFEu;

// Shared-medium segment parameters. Defaults model the paper's testbed: a lightly
// loaded 10 Mbit/s Ethernet with ~1500-byte frames.
struct SegmentConfig {
  double bandwidth_bps = 10.0 * 1000 * 1000;  // 10 Mbit/s Ethernet
  SimTime propagation_us = 50;                // cable + switch-free medium propagation
  size_t mtu = 1500;                          // max frame size, including frame overhead
  size_t frame_overhead = 42;                 // Ethernet + IP + UDP headers per frame
  bool broadcast_capable = true;              // WAN links are not
  // Host protocol-stack cost charged per frame in addition to wire serialization.
  // The paper's SPARCstation-2/SunOS-4.1.1 testbed could not "drive more than 300
  // Kb/sec through Ethernet with a raw UDP socket" — the send path, not the 10 Mbit
  // medium, was the bottleneck. Modelled as extra occupancy of the shared resource
  // (exact for a single sender, conservative for several).
  double host_cpu_us_per_frame = 0;
};

// Stochastic fault plan applied to datagram frames on a segment.
struct FaultPlan {
  double drop_prob = 0.0;       // independent per-frame loss
  double dup_prob = 0.0;        // independent per-frame duplication
  SimTime jitter_us = 0;        // extra uniform delay in [0, jitter]; causes reordering
};

struct Datagram {
  HostId src_host = kNoHost;
  Port src_port = 0;
  HostId dst_host = kNoHost;    // kBroadcastHost for segment broadcast
  Port dst_port = 0;
  Bytes payload;
};

class Network;

// A bound datagram endpoint. Closing (destroying) the socket releases the port.
class UdpSocket {
 public:
  using Handler = std::function<void(const Datagram&)>;

  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  HostId host() const { return host_; }
  Port port() const { return port_; }

  // Sends to a specific host/port. Fails if the payload exceeds the segment MTU
  // (minus frame overhead); higher layers fragment.
  Status SendTo(HostId dst, Port dst_port, Bytes payload);

  // Segment-wide hardware broadcast; every socket bound to `dst_port` on an up host in
  // the same partition group receives it (including the sender's own host).
  Status Broadcast(Port dst_port, Bytes payload);

  void SetHandler(Handler handler) { handler_ = std::move(handler); }

 private:
  friend class Network;
  UdpSocket(Network* net, HostId host, Port port) : net_(net), host_(host), port_(port) {}

  Network* net_;
  HostId host_;
  Port port_;
  Handler handler_;
};

// TCP-like reliable, ordered, message-oriented connection. Messages of any size are
// chunked into MTU frames that consume segment bandwidth; delivery is in order and
// loss-free (retransmission is abstracted away), but partitions and host crashes break
// the connection.
class Connection {
 public:
  using MessageHandler = std::function<void(const Bytes&)>;
  using CloseHandler = std::function<void()>;

  HostId local_host() const { return local_host_; }
  HostId remote_host() const { return remote_host_; }
  bool open() const { return open_; }

  Status Send(Bytes message);
  void SetMessageHandler(MessageHandler handler) { on_message_ = std::move(handler); }
  void SetCloseHandler(CloseHandler handler) { on_close_ = std::move(handler); }
  void Close();

 private:
  friend class Network;
  Connection(Network* net, uint64_t id, HostId local, HostId remote)
      : net_(net), id_(id), local_host_(local), remote_host_(remote) {}

  Network* net_;
  uint64_t id_;
  HostId local_host_;
  HostId remote_host_;
  bool open_ = true;
  MessageHandler on_message_;
  CloseHandler on_close_;
};

using ConnectionPtr = std::shared_ptr<Connection>;

// Accepts inbound connections on (host, port).
class Listener {
 public:
  using AcceptHandler = std::function<void(ConnectionPtr)>;

  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  HostId host() const { return host_; }
  Port port() const { return port_; }

 private:
  friend class Network;
  Listener(Network* net, HostId host, Port port, AcceptHandler handler)
      : net_(net), host_(host), port_(port), handler_(std::move(handler)) {}

  Network* net_;
  HostId host_;
  Port port_;
  AcceptHandler handler_;
};

class Network {
 public:
  explicit Network(Simulator* sim, uint64_t fault_seed = 42);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator* sim() { return sim_; }

  // --- Topology -------------------------------------------------------------------
  SegmentId AddSegment(const SegmentConfig& config = SegmentConfig());
  HostId AddHost(const std::string& name, SegmentId segment);
  const std::string& HostName(HostId h) const;
  SegmentId HostSegment(HostId h) const;
  std::vector<HostId> HostsOnSegment(SegmentId s) const;

  // --- Fault injection ------------------------------------------------------------
  void SetFaultPlan(SegmentId segment, const FaultPlan& plan);
  // Marks a host down: in-flight traffic to/from it is dropped, its connections break.
  void SetHostUp(HostId h, bool up);
  bool HostUp(HostId h) const;
  // Splits hosts into partition groups; traffic crosses only within a group.
  // An empty map heals all partitions.
  void SetPartitionGroups(const std::unordered_map<HostId, int>& groups);
  bool CanCommunicate(HostId a, HostId b) const;

  // --- Datagram service -----------------------------------------------------------
  // Binds a socket. port==0 picks an ephemeral port. Fails if the port is taken.
  Result<std::unique_ptr<UdpSocket>> OpenSocket(HostId host, Port port,
                                                UdpSocket::Handler handler);
  // Maximum datagram payload the given host's segment can carry in one frame.
  size_t MaxDatagramPayload(HostId host) const;

  // --- Connection service ---------------------------------------------------------
  Result<std::unique_ptr<Listener>> Listen(HostId host, Port port,
                                           Listener::AcceptHandler handler);
  // Asynchronous connect; the handler receives the connection or an error after the
  // simulated handshake completes.
  void Connect(HostId src, HostId dst, Port dst_port,
               std::function<void(Result<ConnectionPtr>)> done);

  // --- Statistics -----------------------------------------------------------------
  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t frames_delivered = 0;
    uint64_t frames_dropped_fault = 0;
    uint64_t frames_dropped_down = 0;
    uint64_t frames_duplicated = 0;
    uint64_t bytes_on_wire = 0;  // includes frame overhead
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  friend class UdpSocket;
  friend class Connection;
  friend class Listener;

  struct Segment {
    SegmentConfig config;
    FaultPlan faults;
    SimTime busy_until = 0;  // shared half-duplex medium: next free transmit time
    std::vector<HostId> hosts;
  };

  struct Host {
    std::string name;
    SegmentId segment;
    bool up = true;
    int partition_group = 0;
    Port next_ephemeral = 49152;
    // Local IPC is FIFO: a small datagram must not overtake a large one queued
    // earlier on the same host (kernels serialize the copy).
    SimTime loopback_tail = 0;
    std::unordered_map<Port, UdpSocket*> sockets;
    std::unordered_map<Port, Listener*> listeners;
  };

  struct ConnState {
    ConnectionPtr a;  // initiator side handle
    ConnectionPtr b;  // acceptor side handle
    // Per-direction queue tail: delivery time of the last in-flight message, used to
    // preserve FIFO ordering per connection.
    SimTime a_to_b_tail = 0;
    SimTime b_to_a_tail = 0;
  };

  // Schedules delivery of one already-validated frame on a segment. `wire_bytes`
  // includes the frame overhead. Returns the time the frame finishes serializing.
  SimTime TransmitFrame(Segment& seg, size_t wire_bytes);
  void DeliverDatagram(Datagram d, SimTime at);
  Status SendDatagram(const Datagram& d);
  Status BroadcastDatagram(const Datagram& d);

  Status ConnectionSend(Connection* conn, Bytes message);
  void ConnectionClose(Connection* conn, bool notify_peer);
  void CloseSocket(UdpSocket* s);
  void CloseListener(Listener* l);

  SimTime LocalLoopbackDelay(size_t bytes) const;

  Simulator* sim_;
  Rng rng_;
  std::vector<Segment> segments_;
  std::vector<Host> hosts_;
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, ConnState> connections_;
  Stats stats_;
};

}  // namespace ibus

#endif  // SRC_SIM_NETWORK_H_
