// Stable (crash-surviving) storage abstraction used by guaranteed delivery and the
// store-and-forward router. Records are opaque byte strings appended to a log.
//
// This is the *block device* under src/journal: the write-ahead ledger batches its
// group commits into single device records and calls Sync() as its durability
// barrier. MemoryStableStore survives simulated host crashes (the object outlives
// the crashed component, modelling a disk). FileStableStore persists records to a
// real file with length-prefixed, checksummed framing, surviving process restarts.
#ifndef SRC_SIM_STABLE_STORE_H_
#define SRC_SIM_STABLE_STORE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/sim/simulator.h"

namespace ibus {

class StableStore {
 public:
  virtual ~StableStore() = default;

  // Appends a record; returns its sequence number (0-based, dense).
  virtual Result<uint64_t> Append(const Bytes& record) = 0;

  // Reads all records at or after `from_seq`, in order.
  virtual Result<std::vector<Bytes>> ReadFrom(uint64_t from_seq) const = 0;

  // Logically deletes all records below `seq` (retention trimming).
  virtual Status TruncateBefore(uint64_t seq) = 0;

  // Drops the record at `seq` and everything after it — tail repair after a torn
  // write is detected one layer up (the journal). Stores that cannot physically
  // discard a tail refuse with kUnimplemented.
  virtual Status TruncateFrom(uint64_t seq);

  // Sequence number the next Append will return.
  virtual uint64_t NextSeq() const = 0;

  // Durability barrier: every record appended before Sync() returns survives a
  // crash after it. Counted so group-commit policies are observable — a batching
  // journal performs one Sync per flushed block, not one per logical append.
  virtual Status Sync();
  uint64_t syncs() const { return syncs_; }

  // Simulated cost of a synchronous stable write, charged by protocols that must wait
  // for durability before sending (the paper: "logged to non-volatile storage before
  // it is sent").
  virtual SimTime WriteLatency() const = 0;

 protected:
  uint64_t syncs_ = 0;
};

class MemoryStableStore : public StableStore {
 public:
  explicit MemoryStableStore(SimTime write_latency_us = 500)
      : write_latency_(write_latency_us) {}

  Result<uint64_t> Append(const Bytes& record) override;
  Result<std::vector<Bytes>> ReadFrom(uint64_t from_seq) const override;
  Status TruncateBefore(uint64_t seq) override;
  Status TruncateFrom(uint64_t seq) override;
  uint64_t NextSeq() const override { return base_seq_ + records_.size(); }
  SimTime WriteLatency() const override { return write_latency_; }

 private:
  SimTime write_latency_;
  uint64_t base_seq_ = 0;
  std::vector<Bytes> records_;
};

class FileStableStore : public StableStore {
 public:
  // Opens (creating if needed) the log at `path` and recovers existing records.
  // Truncated or corrupt tails are discarded — and physically trimmed, so later
  // appends extend a clean log rather than burying garbage mid-file.
  static Result<std::unique_ptr<FileStableStore>> Open(const std::string& path,
                                                       SimTime write_latency_us = 500);
  ~FileStableStore() override;

  Result<uint64_t> Append(const Bytes& record) override;
  Result<std::vector<Bytes>> ReadFrom(uint64_t from_seq) const override;
  Status TruncateBefore(uint64_t seq) override;
  Status TruncateFrom(uint64_t seq) override;
  uint64_t NextSeq() const override { return base_seq_ + records_.size(); }
  // Flushes buffered appends to the OS. The write handle stays open between
  // appends, so the flush boundary is real and countable.
  Status Sync() override;
  SimTime WriteLatency() const override { return write_latency_; }

  const std::string& path() const { return path_; }

 private:
  FileStableStore(std::string path, SimTime write_latency_us)
      : path_(std::move(path)), write_latency_(write_latency_us) {}

  // Loads existing records; returns true when the file carried trailing garbage
  // (torn or corrupt records) that must be rewritten away.
  Result<bool> LoadExisting();
  // Rewrites the file to exactly the in-memory live records and reopens the
  // append handle.
  Status Rewrite();
  Status OpenAppendHandle();

  std::string path_;
  SimTime write_latency_;
  uint64_t base_seq_ = 0;  // in-memory mirror only trims logically
  std::vector<Bytes> records_;
  std::FILE* file_ = nullptr;
};

}  // namespace ibus

#endif  // SRC_SIM_STABLE_STORE_H_
