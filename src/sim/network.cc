#include "src/sim/network.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace ibus {

namespace {

// Local (same-host) IPC cost: fixed syscall/context-switch overhead plus a memcpy-rate
// term. Used for application<->daemon traffic, which the paper routes through a
// per-host daemon process.
constexpr SimTime kLoopbackFixedUs = 30;
constexpr double kLoopbackUsPerByte = 0.005;  // ~200 MB/s
constexpr size_t kLoopbackMaxPayload = 256 * 1024;

// Implicit WAN profile used for cross-segment connections (T1-class link).
SegmentConfig WanConfig() {
  SegmentConfig c;
  c.bandwidth_bps = 1.544 * 1000 * 1000;
  c.propagation_us = 2000;
  c.mtu = 1500;
  c.frame_overhead = 42;
  c.broadcast_capable = false;
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------------
// UdpSocket / Listener lifetime
// ---------------------------------------------------------------------------------

UdpSocket::~UdpSocket() { net_->CloseSocket(this); }

Status UdpSocket::SendTo(HostId dst, Port dst_port, Bytes payload) {
  Datagram d;
  d.src_host = host_;
  d.src_port = port_;
  d.dst_host = dst;
  d.dst_port = dst_port;
  d.payload = std::move(payload);
  return net_->SendDatagram(d);
}

Status UdpSocket::Broadcast(Port dst_port, Bytes payload) {
  Datagram d;
  d.src_host = host_;
  d.src_port = port_;
  d.dst_host = kBroadcastHost;
  d.dst_port = dst_port;
  d.payload = std::move(payload);
  return net_->BroadcastDatagram(d);
}

Listener::~Listener() { net_->CloseListener(this); }

// ---------------------------------------------------------------------------------
// Connection
// ---------------------------------------------------------------------------------

Status Connection::Send(Bytes message) {
  if (!open_) {
    return FailedPrecondition("connection closed");
  }
  return net_->ConnectionSend(this, std::move(message));
}

SimTime Connection::BacklogUs() const {
  return open_ ? net_->ConnectionBacklogUs(this) : 0;
}

void Connection::Close() {
  if (open_) {
    net_->ConnectionClose(this, /*notify_peer=*/true);
  }
}

// ---------------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------------

const char* FrameFateName(FrameFate f) {
  switch (f) {
    case FrameFate::kDelivered:
      return "delivered";
    case FrameFate::kQueuedDelay:
      return "queued_delay";
    case FrameFate::kDroppedFault:
      return "dropped_fault";
    case FrameFate::kDuplicated:
      return "duplicated";
    case FrameFate::kMtuRejected:
      return "mtu_rejected";
    case FrameFate::kDroppedPartition:
      return "dropped_partition";
    case FrameFate::kDroppedNoListener:
      return "dropped_no_listener";
  }
  return "unknown";
}

Network::Network(Simulator* sim, uint64_t fault_seed) : sim_(sim), rng_(fault_seed) {
  // Segment 0 is the implicit WAN used by cross-segment connections.
  segments_.push_back(Segment{WanConfig(), FaultPlan{}, 0, {}});
  drop_fault_ = metrics_.GetCounter(kMetricNetDropFault);
  drop_mtu_ = metrics_.GetCounter(kMetricNetDropMtu);
  drop_partition_ = metrics_.GetCounter(kMetricNetDropPartition);
  drop_no_listener_ = metrics_.GetCounter(kMetricNetDropNoListener);
}

void Network::AttachTap(NetworkTap* tap) { taps_.push_back(tap); }

void Network::DetachTap(NetworkTap* tap) {
  taps_.erase(std::remove(taps_.begin(), taps_.end(), tap), taps_.end());
}

Network::PendingTap Network::BeginTap(SegmentId segment, const TxTiming& tx,
                                      size_t wire_bytes, uint32_t frame_overhead,
                                      bool broadcast) {
  PendingTap tap;
  if (taps_.empty()) {
    return tap;
  }
  tap.active = true;
  tap.index = next_capture_index_++;
  tap.tx_id = next_tx_id_++;
  tap.segment = segment;
  tap.broadcast = broadcast;
  tap.sent_at = sim_->Now();
  tap.queued_us = tx.queued_us;
  tap.wire_us = tx.wire_us;
  tap.wire_bytes = static_cast<uint32_t>(wire_bytes);
  tap.frame_overhead = frame_overhead;
  return tap;
}

void Network::EmitTap(const PendingTap& tap, const Datagram& d, FrameFate fate,
                      SimTime at) {
  if (!tap.active || taps_.empty()) {
    return;
  }
  CapturedFrame f;
  f.index = tap.index;
  f.tx_id = tap.tx_id;
  f.segment = tap.segment;
  f.src_host = d.src_host;
  f.src_port = d.src_port;
  f.dst_host = d.dst_host;
  f.dst_port = d.dst_port;
  f.broadcast = tap.broadcast;
  f.duplicate = tap.duplicate;
  f.fate = fate;
  f.sent_at = tap.sent_at;
  f.delivered_at = at;
  f.queued_us = tap.queued_us;
  f.wire_us = tap.wire_us;
  f.wire_bytes = tap.wire_bytes;
  f.frame_overhead = tap.frame_overhead;
  f.payload = d.payload;
  for (NetworkTap* t : taps_) {
    t->OnFrame(f);
  }
}

SegmentId Network::AddSegment(const SegmentConfig& config) {
  segments_.push_back(Segment{config, FaultPlan{}, 0, {}});
  return static_cast<SegmentId>(segments_.size() - 1);
}

HostId Network::AddHost(const std::string& name, SegmentId segment) {
  Host h;
  h.name = name;
  h.segment = segment;
  hosts_.push_back(std::move(h));
  HostId id = static_cast<HostId>(hosts_.size() - 1);
  segments_.at(segment).hosts.push_back(id);
  return id;
}

const std::string& Network::HostName(HostId h) const { return hosts_.at(h).name; }

SegmentId Network::HostSegment(HostId h) const { return hosts_.at(h).segment; }

std::vector<HostId> Network::HostsOnSegment(SegmentId s) const { return segments_.at(s).hosts; }

uint32_t Network::NextBootEpoch(HostId h) { return hosts_.at(h).boot_epochs++; }

void Network::SetFaultPlan(SegmentId segment, const FaultPlan& plan) {
  segments_.at(segment).faults = plan;
}

void Network::SetHostUp(HostId h, bool up) {
  Host& host = hosts_.at(h);
  if (host.up == up) {
    return;
  }
  host.up = up;
  if (!up) {
    // Break every connection touching this host.
    std::vector<Connection*> to_close;
    for (auto& [id, state] : connections_) {
      if (state.a->local_host() == h || state.a->remote_host() == h) {
        to_close.push_back(state.a.get());
      }
    }
    for (Connection* c : to_close) {
      ConnectionClose(c, /*notify_peer=*/true);
    }
  }
}

bool Network::HostUp(HostId h) const { return hosts_.at(h).up; }

void Network::SetPartitionGroups(const std::unordered_map<HostId, int>& groups) {
  for (HostId h = 0; h < hosts_.size(); ++h) {
    auto it = groups.find(h);
    hosts_[h].partition_group = it == groups.end() ? 0 : it->second;
  }
  // Connections crossing a partition boundary break immediately.
  std::vector<Connection*> to_close;
  for (auto& [id, state] : connections_) {
    if (!CanCommunicate(state.a->local_host(), state.a->remote_host())) {
      to_close.push_back(state.a.get());
    }
  }
  for (Connection* c : to_close) {
    ConnectionClose(c, /*notify_peer=*/true);
  }
}

bool Network::CanCommunicate(HostId a, HostId b) const {
  const Host& ha = hosts_.at(a);
  const Host& hb = hosts_.at(b);
  return ha.up && hb.up && ha.partition_group == hb.partition_group;
}

Result<std::unique_ptr<UdpSocket>> Network::OpenSocket(HostId host, Port port,
                                                       UdpSocket::Handler handler) {
  Host& h = hosts_.at(host);
  if (port == 0) {
    while (h.sockets.count(h.next_ephemeral) > 0) {
      ++h.next_ephemeral;
    }
    port = h.next_ephemeral++;
  } else if (h.sockets.count(port) > 0) {
    return AlreadyExists("port " + std::to_string(port) + " in use on " + h.name);
  }
  auto sock = std::unique_ptr<UdpSocket>(new UdpSocket(this, host, port));
  sock->SetHandler(std::move(handler));
  h.sockets[port] = sock.get();
  return sock;
}

size_t Network::MaxDatagramPayload(HostId host) const {
  const Segment& seg = segments_.at(hosts_.at(host).segment);
  return seg.config.mtu - seg.config.frame_overhead;
}

Network::TxTiming Network::TransmitFrame(Segment& seg, size_t wire_bytes) {
  const double us =
      static_cast<double>(wire_bytes) * 8.0 * 1e6 / seg.config.bandwidth_bps +
      seg.config.host_cpu_us_per_frame;
  SimTime now = sim_->Now();
  SimTime start = std::max(now, seg.busy_until);
  SimTime finish = start + static_cast<SimTime>(std::llround(us));
  seg.busy_until = finish;
  stats_.frames_sent++;
  stats_.bytes_on_wire += wire_bytes;
  return TxTiming{finish, start - now, finish - start};
}

SimTime Network::LocalLoopbackDelay(size_t bytes) const {
  return kLoopbackFixedUs +
         static_cast<SimTime>(std::llround(static_cast<double>(bytes) * kLoopbackUsPerByte));
}

void Network::DeliverDatagram(Datagram d, SimTime at) {  // hotlint: hot
  DeliverDatagram(std::move(d), at, PendingTap());
}

void Network::DeliverDatagram(Datagram d, SimTime at, PendingTap tap) {  // hotlint: hot
  HostId dst = d.dst_host;
  sim_->ScheduleAt(
      at,
      [this, d = std::move(d), dst, tap, at]() {
        const Host& h = hosts_.at(dst);
        if (!h.up || !CanCommunicate(d.src_host, dst)) {
          stats_.frames_dropped_down++;
          drop_partition_->Inc();
          EmitTap(tap, d, FrameFate::kDroppedPartition, at);
          return;
        }
        auto it = h.sockets.find(d.dst_port);
        if (it == h.sockets.end()) {
          // No listener: silently dropped, like real UDP.
          stats_.frames_dropped_no_listener++;
          drop_no_listener_->Inc();
          EmitTap(tap, d, FrameFate::kDroppedNoListener, at);
          return;
        }
        stats_.frames_delivered++;
        FrameFate fate = tap.duplicate        ? FrameFate::kDuplicated
                         : tap.queued_us > 0  ? FrameFate::kQueuedDelay
                                              : FrameFate::kDelivered;
        EmitTap(tap, d, fate, at);
        UdpSocket* sock = it->second;
        if (sock->handler_) {
          sock->handler_(d);
        }
      },
      "net.datagram_deliver");
}

Status Network::SendDatagram(const Datagram& d) {  // hotlint: hot
  const Host& src = hosts_.at(d.src_host);
  if (!src.up) {
    return Unavailable("source host down");
  }
  if (d.dst_host >= hosts_.size()) {
    return InvalidArgument("no such host");
  }
  if (d.dst_host == d.src_host) {
    if (d.payload.size() > kLoopbackMaxPayload) {
      return InvalidArgument("loopback datagram too large");
    }
    Host& h = hosts_.at(d.src_host);
    SimTime at = std::max(sim_->Now() + LocalLoopbackDelay(d.payload.size()),
                          h.loopback_tail + 1);
    h.loopback_tail = at;
    DeliverDatagram(d, at);
    return OkStatus();
  }
  // Cross-host unicast: same segment uses that medium; different segments go over the
  // implicit WAN (application-level routers are expected for normal bus traffic).
  SegmentId src_seg = src.segment;
  SegmentId dst_seg = hosts_.at(d.dst_host).segment;
  SegmentId use_seg = src_seg == dst_seg ? src_seg : 0;
  Segment& seg = segments_.at(use_seg);
  SimTime extra_prop = 0;
  if (src_seg != dst_seg) {
    extra_prop = segments_.at(src_seg).config.propagation_us +
                 segments_.at(dst_seg).config.propagation_us;
  }
  const size_t wire_bytes = d.payload.size() + seg.config.frame_overhead;
  const uint32_t overhead = static_cast<uint32_t>(seg.config.frame_overhead);
  if (wire_bytes > seg.config.mtu) {
    stats_.frames_dropped_mtu++;
    drop_mtu_->Inc();
    EmitTap(BeginTap(use_seg, TxTiming(), wire_bytes, overhead, false), d,
            FrameFate::kMtuRejected, sim_->Now());
    return InvalidArgument("datagram exceeds MTU");
  }
  if (seg.faults.drop_prob > 0 && rng_.Chance(seg.faults.drop_prob)) {
    // Lost before occupying the medium: the sim charges no wire time for unicast
    // fault loss, so the capture record carries zero wire_us.
    stats_.frames_dropped_fault++;
    drop_fault_->Inc();
    EmitTap(BeginTap(use_seg, TxTiming(), wire_bytes, overhead, false), d,
            FrameFate::kDroppedFault, sim_->Now());
    return OkStatus();  // silently lost on the wire
  }
  TxTiming tx = TransmitFrame(seg, wire_bytes);
  PendingTap tap = BeginTap(use_seg, tx, wire_bytes, overhead, false);
  SimTime jitter = seg.faults.jitter_us > 0
                       ? static_cast<SimTime>(rng_.NextBelow(seg.faults.jitter_us + 1))
                       : 0;
  SimTime at = tx.finish + seg.config.propagation_us + extra_prop + jitter;
  DeliverDatagram(d, at, tap);
  if (seg.faults.dup_prob > 0 && rng_.Chance(seg.faults.dup_prob)) {
    stats_.frames_duplicated++;
    PendingTap dup_tap = tap;
    if (dup_tap.active) {
      dup_tap.index = next_capture_index_++;
      dup_tap.duplicate = true;
      dup_tap.wire_us = 0;
      dup_tap.queued_us = 0;
    }
    DeliverDatagram(d, at + 1 + static_cast<SimTime>(rng_.NextBelow(100)), dup_tap);
  }
  return OkStatus();
}

Status Network::BroadcastDatagram(const Datagram& d) {  // hotlint: hot
  const Host& src = hosts_.at(d.src_host);
  if (!src.up) {
    return Unavailable("source host down");
  }
  Segment& seg = segments_.at(src.segment);
  if (!seg.config.broadcast_capable) {
    return FailedPrecondition("segment not broadcast-capable");
  }
  const size_t wire_bytes = d.payload.size() + seg.config.frame_overhead;
  const uint32_t overhead = static_cast<uint32_t>(seg.config.frame_overhead);
  if (wire_bytes > seg.config.mtu) {
    stats_.frames_dropped_mtu++;
    drop_mtu_->Inc();
    EmitTap(BeginTap(src.segment, TxTiming(), wire_bytes, overhead, true), d,
            FrameFate::kMtuRejected, sim_->Now());
    return InvalidArgument("datagram exceeds MTU");
  }
  // One transmission on the shared medium reaches every host on the segment; faults
  // are drawn independently per receiver (receiver-side loss).
  TxTiming tx = TransmitFrame(seg, wire_bytes);
  // All per-receiver records (and fault-made duplicates) share the transmission's
  // tx_id; each gets its own capture index. The accountant de-dups medium time by
  // tx_id, so the one serialization is charged once.
  PendingTap base = BeginTap(src.segment, tx, wire_bytes, overhead, true);
  bool base_index_used = false;
  auto next_tap = [&](bool is_dup) {
    PendingTap t = base;
    if (t.active) {
      if (base_index_used) {
        t.index = next_capture_index_++;
      }
      base_index_used = true;
      if (is_dup) {
        t.duplicate = true;
        t.wire_us = 0;
        t.queued_us = 0;
      }
    }
    return t;
  };
  for (HostId h : seg.hosts) {
    if (seg.faults.drop_prob > 0 && rng_.Chance(seg.faults.drop_prob)) {
      stats_.frames_dropped_fault++;
      drop_fault_->Inc();
      if (base.active) {
        Datagram lost = d;
        lost.dst_host = h;
        EmitTap(next_tap(false), lost, FrameFate::kDroppedFault, sim_->Now());
      }
      continue;
    }
    SimTime jitter = seg.faults.jitter_us > 0
                         ? static_cast<SimTime>(rng_.NextBelow(seg.faults.jitter_us + 1))
                         : 0;
    Datagram copy = d;
    copy.dst_host = h;
    SimTime at = tx.finish + seg.config.propagation_us + jitter;
    if (seg.faults.dup_prob > 0 && rng_.Chance(seg.faults.dup_prob)) {
      stats_.frames_duplicated++;
      Datagram dup = copy;
      PendingTap dup_tap = next_tap(true);
      DeliverDatagram(std::move(dup), at + 1 + static_cast<SimTime>(rng_.NextBelow(100)),
                      dup_tap);
    }
    DeliverDatagram(std::move(copy), at, next_tap(false));
  }
  return OkStatus();
}

void Network::CloseSocket(UdpSocket* s) {
  Host& h = hosts_.at(s->host());
  auto it = h.sockets.find(s->port());
  if (it != h.sockets.end() && it->second == s) {
    h.sockets.erase(it);
  }
}

Result<std::unique_ptr<Listener>> Network::Listen(HostId host, Port port,
                                                  Listener::AcceptHandler handler) {
  Host& h = hosts_.at(host);
  if (h.listeners.count(port) > 0) {
    return AlreadyExists("listen port " + std::to_string(port) + " in use on " + h.name);
  }
  auto l = std::unique_ptr<Listener>(new Listener(this, host, port, std::move(handler)));
  h.listeners[port] = l.get();
  return l;
}

void Network::CloseListener(Listener* l) {
  Host& h = hosts_.at(l->host());
  auto it = h.listeners.find(l->port());
  if (it != h.listeners.end() && it->second == l) {
    h.listeners.erase(it);
  }
}

void Network::Connect(HostId src, HostId dst, Port dst_port,
                      std::function<void(Result<ConnectionPtr>)> done) {
  SegmentId src_seg = hosts_.at(src).segment;
  SegmentId dst_seg = hosts_.at(dst).segment;
  SimTime prop = src_seg == dst_seg
                     ? segments_.at(src_seg).config.propagation_us
                     : segments_.at(src_seg).config.propagation_us +
                           segments_.at(0).config.propagation_us +
                           segments_.at(dst_seg).config.propagation_us;
  // Three-way handshake: 1.5 round trips before the connection is usable.
  SimTime handshake = 3 * prop;
  sim_->ScheduleAfter(
      handshake,
      [this, src, dst, dst_port, done = std::move(done)]() {
        if (!CanCommunicate(src, dst)) {
          done(Unavailable("connect: host unreachable"));
          return;
        }
        const Host& h = hosts_.at(dst);
        auto it = h.listeners.find(dst_port);
        if (it == h.listeners.end()) {
          done(Unavailable("connect: connection refused"));
          return;
        }
        uint64_t id = next_conn_id_++;
        ConnState state;
        state.a = ConnectionPtr(new Connection(this, id, src, dst));
        state.b = ConnectionPtr(new Connection(this, id, dst, src));
        connections_[id] = state;
        it->second->handler_(state.b);
        done(state.a);
      },
      "net.handshake");
}

SimTime Network::ConnectionBacklogUs(const Connection* conn) const {
  auto it = connections_.find(conn->id_);
  if (it == connections_.end()) {
    return 0;
  }
  const ConnState& state = it->second;
  const bool from_a = conn == state.a.get();
  SimTime tail = from_a ? state.a_to_b_tail : state.b_to_a_tail;
  return tail > sim_->Now() ? tail - sim_->Now() : 0;
}

Status Network::ConnectionSend(Connection* conn, Bytes message) {
  auto it = connections_.find(conn->id_);
  if (it == connections_.end()) {
    return FailedPrecondition("connection closed");
  }
  ConnState& state = it->second;
  const bool from_a = conn == state.a.get();
  HostId src = conn->local_host();
  HostId dst = conn->remote_host();
  if (!CanCommunicate(src, dst)) {
    ConnectionClose(conn, /*notify_peer=*/true);
    return Unavailable("connection reset");
  }

  SegmentId src_seg = hosts_.at(src).segment;
  SegmentId dst_seg = hosts_.at(dst).segment;
  SimTime delivery;
  if (src == dst) {
    delivery = sim_->Now() + LocalLoopbackDelay(message.size());
  } else {
    SegmentId use_seg = src_seg == dst_seg ? src_seg : 0;
    Segment& seg = segments_.at(use_seg);
    SimTime extra_prop = 0;
    if (src_seg != dst_seg) {
      extra_prop = segments_.at(src_seg).config.propagation_us +
                   segments_.at(dst_seg).config.propagation_us;
    }
    // Chunk the message into MTU frames; each consumes medium time. Delivery happens
    // when the last frame lands.
    const size_t max_payload = seg.config.mtu - seg.config.frame_overhead;
    const uint32_t overhead = static_cast<uint32_t>(seg.config.frame_overhead);
    const bool tapped = !taps_.empty();
    const uint64_t conn_msg_id = tapped ? next_conn_msg_id_++ : 0;
    size_t remaining = message.size();
    size_t chunk_idx = 0;
    SimTime finish = sim_->Now();
    do {
      size_t chunk = std::min(remaining, max_payload);
      TxTiming tx = TransmitFrame(seg, chunk + seg.config.frame_overhead);
      finish = tx.finish;
      if (tapped) {
        // Connection chunks are loss-free (retransmission is abstracted away); only
        // the first chunk's record carries the message bytes, continuations are
        // timing-only.
        CapturedFrame f;
        f.index = next_capture_index_++;
        f.tx_id = next_tx_id_++;
        f.segment = use_seg;
        f.src_host = src;
        f.dst_host = dst;
        f.conn_id = conn->id_;
        f.conn_msg_id = conn_msg_id;
        f.continuation = chunk_idx > 0;
        f.fate = tx.queued_us > 0 ? FrameFate::kQueuedDelay : FrameFate::kDelivered;
        f.sent_at = sim_->Now();
        f.delivered_at = tx.finish + seg.config.propagation_us + extra_prop;
        f.queued_us = tx.queued_us;
        f.wire_us = tx.wire_us;
        f.wire_bytes = static_cast<uint32_t>(chunk + seg.config.frame_overhead);
        f.frame_overhead = overhead;
        if (chunk_idx == 0) {
          f.payload = message;
        }
        for (NetworkTap* t : taps_) {
          t->OnFrame(f);
        }
      }
      chunk_idx++;
      remaining -= chunk;
    } while (remaining > 0);
    delivery = finish + seg.config.propagation_us + extra_prop;
    // Connections ride the same medium as datagrams, so the segment's configured
    // jitter delays their arrival too (the FIFO clamp below keeps ordering; tap
    // records keep the un-jittered wire timing, as jitter models receive-path
    // scheduling rather than medium occupancy).
    if (seg.faults.jitter_us > 0) {
      delivery += static_cast<SimTime>(rng_.NextBelow(seg.faults.jitter_us + 1));
    }
  }

  // Preserve per-direction FIFO ordering.
  SimTime& tail = from_a ? state.a_to_b_tail : state.b_to_a_tail;
  delivery = std::max(delivery, tail);
  tail = delivery;

  uint64_t id = conn->id_;
  const bool to_b = from_a;
  sim_->ScheduleAt(
      delivery,
      [this, id, to_b, message = std::move(message)]() {
        auto cit = connections_.find(id);
        if (cit == connections_.end()) {
          return;
        }
        ConnectionPtr receiver = to_b ? cit->second.b : cit->second.a;
        if (!CanCommunicate(receiver->local_host(), receiver->remote_host())) {
          ConnectionClose(receiver.get(), /*notify_peer=*/true);
          return;
        }
        if (receiver->on_message_) {
          receiver->on_message_(message);
        }
      },
      "net.conn_deliver");
  return OkStatus();
}

void Network::ConnectionClose(Connection* conn, bool notify_peer) {
  auto it = connections_.find(conn->id_);
  if (it == connections_.end()) {
    conn->open_ = false;
    return;
  }
  ConnState state = it->second;
  connections_.erase(it);
  state.a->open_ = false;
  state.b->open_ = false;
  ConnectionPtr self = conn == state.a.get() ? state.a : state.b;
  ConnectionPtr peer = conn == state.a.get() ? state.b : state.a;
  if (self->on_close_) {
    auto cb = self->on_close_;
    sim_->ScheduleAfter(0, [cb]() { cb(); }, "net.conn_close");
  }
  if (notify_peer && peer->on_close_) {
    SimTime prop = segments_.at(hosts_.at(peer->local_host()).segment).config.propagation_us;
    auto cb = peer->on_close_;
    sim_->ScheduleAfter(prop, [cb]() { cb(); }, "net.conn_close");
  }
}

}  // namespace ibus
