// Discrete-event simulation kernel. All Information Bus components run as event
// handlers over a single Simulator; time is virtual (microseconds), which makes every
// run deterministic and lets the benchmarks reproduce the paper's latency/throughput
// curves independent of the machine they run on.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace ibus {

// Simulated time in microseconds since simulation start.
using SimTime = int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * 1000;

// A cancellable handle for a scheduled event.
using EventId = uint64_t;

// Observes every dispatched event. The profiler (src/prof/sim_profiler.h) hangs
// off this to count events/sec by kind; `kind` is the static string the
// scheduling site passed, so observers must not retain it past the callback
// unless they copy it.
class SimObserver {
 public:
  virtual ~SimObserver() = default;
  virtual void OnEventDispatched(const char* kind, SimTime at) = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute simulated time `t` (clamped to Now()).
  // `kind` labels the event for the sim profiler; pass a string literal (the
  // pointer is stored, not copied).
  EventId ScheduleAt(SimTime t, std::function<void()> fn, const char* kind = "event");

  // Schedules `fn` to run `delay` microseconds from now.
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn,  // hotlint: allow(hot-std-function) -- the event queue stores type-erased callables by design
                        const char* kind = "event") {
    return ScheduleAt(now_ + delay, std::move(fn), kind);
  }

  // Installs (or clears, with nullptr) the dispatch observer.
  void SetObserver(SimObserver* observer) { observer_ = observer; }

  // Cancels a pending event. Safe to call on already-fired or unknown ids.
  void Cancel(EventId id);

  // Runs the single earliest pending event. Returns false when the queue is empty.
  bool Step();

  // Runs events until the queue is empty or `max_events` have fired. Returns the count.
  size_t Run(size_t max_events = SIZE_MAX);

  // Runs every event scheduled at or before `t`, then advances the clock to `t`.
  size_t RunUntil(SimTime t);

  // Runs everything within the next `duration` microseconds.
  size_t RunFor(SimTime duration) { return RunUntil(now_ + duration); }

  size_t pending_events() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Event {
    SimTime time;
    EventId id;
    const char* kind;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      // Min-heap: earliest time first; FIFO among equal times via the monotonic id.
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.id > b.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  SimObserver* observer_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace ibus

#endif  // SRC_SIM_SIMULATOR_H_
