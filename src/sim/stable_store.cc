#include "src/sim/stable_store.h"

#include <cstdio>
#include <memory>

namespace ibus {

// ---------------------------------------------------------------------------------
// MemoryStableStore
// ---------------------------------------------------------------------------------

Result<uint64_t> MemoryStableStore::Append(const Bytes& record) {
  records_.push_back(record);  // hotlint: allow(hot-container-growth) -- the stable log is append-only by definition
  return base_seq_ + records_.size() - 1;
}

Result<std::vector<Bytes>> MemoryStableStore::ReadFrom(uint64_t from_seq) const {
  std::vector<Bytes> out;
  for (uint64_t s = std::max(from_seq, base_seq_); s < base_seq_ + records_.size(); ++s) {
    out.push_back(records_[s - base_seq_]);
  }
  return out;
}

Status MemoryStableStore::TruncateBefore(uint64_t seq) {
  if (seq <= base_seq_) {
    return OkStatus();
  }
  uint64_t limit = base_seq_ + records_.size();
  uint64_t cut = std::min(seq, limit);
  records_.erase(records_.begin(), records_.begin() + static_cast<ptrdiff_t>(cut - base_seq_));
  base_seq_ = cut;
  return OkStatus();
}

// ---------------------------------------------------------------------------------
// FileStableStore
//
// On-disk format: repeated records of
//   u32 length | u32 crc32(payload) | payload bytes
// in little-endian. A short or corrupt tail (torn write at crash) is dropped on open.
// ---------------------------------------------------------------------------------

namespace {

void PutU32(Bytes& out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<uint8_t>(v >> shift));  // hotlint: allow(hot-container-growth) -- 4-byte record header appended to the amortized log buffer
  }
}

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

Result<std::unique_ptr<FileStableStore>> FileStableStore::Open(const std::string& path,
                                                               SimTime write_latency_us) {
  auto store = std::unique_ptr<FileStableStore>(new FileStableStore(path, write_latency_us));
  Status s = store->LoadExisting();
  if (!s.ok()) {
    return s;
  }
  return store;
}

Status FileStableStore::LoadExisting() {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    return OkStatus();  // fresh log
  }
  Bytes header(8);
  while (true) {
    size_t got = std::fread(header.data(), 1, 8, f);
    if (got < 8) {
      break;  // clean EOF or torn header: stop
    }
    uint32_t len = ReadU32(header.data());
    uint32_t crc = ReadU32(header.data() + 4);
    if (len > 64u * 1024 * 1024) {
      break;  // implausible length: treat as corruption
    }
    Bytes payload(len);
    if (std::fread(payload.data(), 1, len, f) < len) {
      break;  // torn record
    }
    if (Crc32(payload) != crc) {
      break;  // corrupt record: drop it and everything after
    }
    records_.push_back(std::move(payload));
  }
  std::fclose(f);
  return OkStatus();
}

Status FileStableStore::AppendToFile(const Bytes& record) {
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) {
    return Internal("cannot open stable log " + path_);  // hotlint: allow(hot-string) -- log-file pathname assembly adjacent to disk I/O
  }
  Bytes framed;
  framed.reserve(record.size() + 8);
  PutU32(framed, static_cast<uint32_t>(record.size()));
  PutU32(framed, Crc32(record));
  framed.insert(framed.end(), record.begin(), record.end());
  size_t wrote = std::fwrite(framed.data(), 1, framed.size(), f);
  std::fflush(f);
  std::fclose(f);
  if (wrote != framed.size()) {
    return Internal("short write to stable log " + path_);  // hotlint: allow(hot-string) -- log-file pathname assembly adjacent to disk I/O
  }
  return OkStatus();
}

Result<uint64_t> FileStableStore::Append(const Bytes& record) {
  Status s = AppendToFile(record);
  if (!s.ok()) {
    return s;
  }
  records_.push_back(record);  // hotlint: allow(hot-container-growth) -- the stable log is append-only by definition
  return base_seq_ + records_.size() - 1;
}

Result<std::vector<Bytes>> FileStableStore::ReadFrom(uint64_t from_seq) const {
  std::vector<Bytes> out;
  for (uint64_t s = std::max(from_seq, base_seq_); s < base_seq_ + records_.size(); ++s) {
    out.push_back(records_[s - base_seq_]);
  }
  return out;
}

Status FileStableStore::TruncateBefore(uint64_t seq) {
  // Logical truncation only: readers skip trimmed records; the file keeps history.
  if (seq <= base_seq_) {
    return OkStatus();
  }
  uint64_t limit = base_seq_ + records_.size();
  uint64_t cut = std::min(seq, limit);
  records_.erase(records_.begin(), records_.begin() + static_cast<ptrdiff_t>(cut - base_seq_));
  base_seq_ = cut;
  return OkStatus();
}

}  // namespace ibus
