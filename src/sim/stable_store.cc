#include "src/sim/stable_store.h"

#include <cstdio>
#include <memory>

namespace ibus {

// ---------------------------------------------------------------------------------
// StableStore defaults
// ---------------------------------------------------------------------------------

Status StableStore::Sync() {
  // Memory-backed stores are durable the moment Append returns; the barrier only
  // needs counting so group-commit cadence stays observable.
  ++syncs_;
  return OkStatus();
}

Status StableStore::TruncateFrom(uint64_t seq) {
  (void)seq;
  return Unimplemented("stable store does not support tail truncation");
}

// ---------------------------------------------------------------------------------
// MemoryStableStore
// ---------------------------------------------------------------------------------

Result<uint64_t> MemoryStableStore::Append(const Bytes& record) {
  records_.push_back(record);  // hotlint: allow(hot-container-growth) -- the stable log is append-only by definition
  return base_seq_ + records_.size() - 1;
}

Result<std::vector<Bytes>> MemoryStableStore::ReadFrom(uint64_t from_seq) const {
  std::vector<Bytes> out;
  for (uint64_t s = std::max(from_seq, base_seq_); s < base_seq_ + records_.size(); ++s) {
    out.push_back(records_[s - base_seq_]);
  }
  return out;
}

Status MemoryStableStore::TruncateBefore(uint64_t seq) {
  if (seq <= base_seq_) {
    return OkStatus();
  }
  uint64_t limit = base_seq_ + records_.size();
  uint64_t cut = std::min(seq, limit);
  records_.erase(records_.begin(), records_.begin() + static_cast<ptrdiff_t>(cut - base_seq_));
  base_seq_ = cut;
  return OkStatus();
}

Status MemoryStableStore::TruncateFrom(uint64_t seq) {
  uint64_t limit = base_seq_ + records_.size();
  if (seq >= limit) {
    return OkStatus();
  }
  uint64_t cut = std::max(seq, base_seq_);
  records_.erase(records_.begin() + static_cast<ptrdiff_t>(cut - base_seq_), records_.end());
  return OkStatus();
}

// ---------------------------------------------------------------------------------
// FileStableStore
//
// On-disk format: repeated records of
//   u32 length | u32 crc32(payload) | payload bytes
// in little-endian. A short or corrupt tail (torn write at crash) is dropped on
// open — and the file is rewritten without it, so subsequent appends never land
// behind unreadable garbage.
// ---------------------------------------------------------------------------------

namespace {

void PutU32(Bytes& out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<uint8_t>(v >> shift));  // hotlint: allow(hot-container-growth) -- 4-byte record header appended to the amortized log buffer
  }
}

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

void FrameRecord(const Bytes& record, Bytes* framed) {
  framed->reserve(framed->size() + record.size() + 8);
  PutU32(*framed, static_cast<uint32_t>(record.size()));
  PutU32(*framed, Crc32(record));
  framed->insert(framed->end(), record.begin(), record.end());
}

}  // namespace

Result<std::unique_ptr<FileStableStore>> FileStableStore::Open(const std::string& path,
                                                               SimTime write_latency_us) {
  auto store = std::unique_ptr<FileStableStore>(new FileStableStore(path, write_latency_us));
  Result<bool> dirty = store->LoadExisting();
  if (!dirty.ok()) {
    return dirty.status();
  }
  Status s = *dirty ? store->Rewrite() : store->OpenAppendHandle();
  if (!s.ok()) {
    return s;
  }
  return store;
}

FileStableStore::~FileStableStore() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Result<bool> FileStableStore::LoadExisting() {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    return false;  // fresh log
  }
  Bytes header(8);
  bool dirty = false;
  while (true) {
    size_t got = std::fread(header.data(), 1, 8, f);
    if (got == 0) {
      break;  // clean EOF
    }
    if (got < 8) {
      dirty = true;  // torn header
      break;
    }
    uint32_t len = ReadU32(header.data());
    uint32_t crc = ReadU32(header.data() + 4);
    if (len > 64u * 1024 * 1024) {
      dirty = true;  // implausible length: treat as corruption
      break;
    }
    Bytes payload(len);
    if (std::fread(payload.data(), 1, len, f) < len) {
      dirty = true;  // torn record
      break;
    }
    if (Crc32(payload) != crc) {
      dirty = true;  // corrupt record: drop it and everything after
      break;
    }
    records_.push_back(std::move(payload));
  }
  std::fclose(f);
  return dirty;
}

Status FileStableStore::OpenAppendHandle() {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Internal("cannot open stable log " + path_);  // hotlint: allow(hot-string) -- open-failure detail: error path, not per-append
  }
  return OkStatus();
}

Status FileStableStore::Rewrite() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    return Internal("cannot rewrite stable log " + path_);
  }
  Bytes framed;
  for (const Bytes& record : records_) {
    framed.clear();
    FrameRecord(record, &framed);
    if (std::fwrite(framed.data(), 1, framed.size(), f) != framed.size()) {
      std::fclose(f);
      return Internal("short write rewriting stable log " + path_);
    }
  }
  if (std::fflush(f) != 0) {
    std::fclose(f);
    return Internal("flush failed rewriting stable log " + path_);
  }
  std::fclose(f);
  return OpenAppendHandle();
}

Result<uint64_t> FileStableStore::Append(const Bytes& record) {
  if (file_ == nullptr) {
    Status s = OpenAppendHandle();
    if (!s.ok()) {
      return s;
    }
  }
  Bytes framed;
  FrameRecord(record, &framed);
  size_t wrote = std::fwrite(framed.data(), 1, framed.size(), file_);
  if (wrote != framed.size()) {
    return Internal("short write to stable log " + path_);  // hotlint: allow(hot-string) -- log-file pathname assembly adjacent to disk I/O
  }
  records_.push_back(record);  // hotlint: allow(hot-container-growth) -- the stable log is append-only by definition
  return base_seq_ + records_.size() - 1;
}

Result<std::vector<Bytes>> FileStableStore::ReadFrom(uint64_t from_seq) const {
  std::vector<Bytes> out;
  for (uint64_t s = std::max(from_seq, base_seq_); s < base_seq_ + records_.size(); ++s) {
    out.push_back(records_[s - base_seq_]);
  }
  return out;
}

Status FileStableStore::TruncateBefore(uint64_t seq) {
  // Logical truncation only: readers skip trimmed records; the file keeps history.
  if (seq <= base_seq_) {
    return OkStatus();
  }
  uint64_t limit = base_seq_ + records_.size();
  uint64_t cut = std::min(seq, limit);
  records_.erase(records_.begin(), records_.begin() + static_cast<ptrdiff_t>(cut - base_seq_));
  base_seq_ = cut;
  return OkStatus();
}

Status FileStableStore::TruncateFrom(uint64_t seq) {
  uint64_t limit = base_seq_ + records_.size();
  if (seq >= limit) {
    return OkStatus();
  }
  uint64_t cut = std::max(seq, base_seq_);
  records_.erase(records_.begin() + static_cast<ptrdiff_t>(cut - base_seq_), records_.end());
  // Tail repair must be physical: the discarded bytes would otherwise resurface
  // as garbage under the next append.
  return Rewrite();
}

Status FileStableStore::Sync() {
  if (file_ != nullptr && std::fflush(file_) != 0) {
    return Internal("flush failed on stable log " + path_);
  }
  return StableStore::Sync();
}

}  // namespace ibus
