#include "src/sim/simulator.h"

#include <utility>

namespace ibus {

EventId Simulator::ScheduleAt(SimTime t, std::function<void()> fn,  // hotlint: allow(hot-std-function) -- the event queue stores type-erased callables by design
                              const char* kind) {
  if (t < now_) {
    t = now_;
  }
  EventId id = next_id_++;
  heap_.push(Event{t, id, kind, std::move(fn)});
  return id;
}

void Simulator::Cancel(EventId id) {
  if (id != 0 && id < next_id_) {
    cancelled_.insert(id);  // hotlint: allow(hot-container-growth) -- cancellation set, bounded by in-flight timers
  }
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    if (observer_ != nullptr) {
      observer_->OnEventDispatched(ev.kind, ev.time);
    }
    ev.fn();
    return true;
  }
  return false;
}

size_t Simulator::Run(size_t max_events) {
  size_t count = 0;
  while (count < max_events && Step()) {
    ++count;
  }
  return count;
}

size_t Simulator::RunUntil(SimTime t) {
  size_t count = 0;
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    if (cancelled_.count(top.id) > 0) {
      cancelled_.erase(top.id);
      heap_.pop();
      continue;
    }
    if (top.time > t) {
      break;
    }
    Step();
    ++count;
  }
  if (now_ < t) {
    now_ = t;
  }
  return count;
}

}  // namespace ibus
