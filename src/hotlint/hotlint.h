// hotlint: a call-graph-aware hot-path analyzer for the Information Bus sources.
//
// The per-message forwarding path (publish -> daemon dispatch -> deliver, router
// forward, sim network transmit, wire encode/decode) is the part of the bus that
// ROADMAP items 1-2 make ~10^4x hotter. hotlint keeps that path disciplined the
// same way buslint keeps the deterministic core deterministic: a homegrown
// token scanner (no libclang) parses the tree into a lightweight per-function
// model, builds a whole-program call graph, propagates *hot* membership
// transitively from `// hotlint: hot` roots, and reports a diagnostic whenever a
// hot function — directly or through any callee chain — performs work that has
// no business on the per-message path.
//
// Rules (every one is reported at the offending site with file:line:col and the
// root->site call chain):
//
//   hot-alloc            — heap allocation: `new`, make_unique/make_shared.
//   hot-container-growth — push_back/emplace_back/insert/emplace/resize/append
//                          on a receiver with no prior reserve() in the same
//                          function (the preallocation idiom suppresses it).
//   hot-string           — std::string construction/concat: std::string(...),
//                          std::to_string, substr, string-literal operands of
//                          binary `+`.
//   hot-by-value         — by-value std::string / Bytes / vector / map / set
//                          parameters or returns on a hot function. A parameter
//                          that is std::move'd in the body is a sink and is not
//                          flagged.
//   hot-std-function     — std::function construction or a by-value
//                          std::function parameter (the conversion from a lambda
//                          allocates even when the parameter is later moved).
//   hot-iostream         — iostream/printf/format/logging on the hot path.
//   hot-lock             — mutex/lock_guard/unique_lock/scoped_lock/.lock().
//   hot-recursion        — the function sits on a call-graph cycle reachable
//                          from a hot root (unbounded recursion until proven
//                          otherwise; bounded walks must say why in an allow).
//   hot-nondet           — transitive version of buslint's nondeterminism rule:
//                          a hot function may not *reach* rand/time/clock
//                          primitives, nor range-for over a pointer-keyed
//                          unordered container (address-ordered iteration).
//   bad-annotation       — a hotlint annotation that cannot take effect: an
//                          allow()/cold with no `-- justification`, an unknown
//                          rule name, or a `hot`/`cold` marker that attaches to
//                          no function definition.
//
// Annotation grammar (trailing or full-line comments):
//
//   // hotlint: hot                          - on or directly above a function
//                                              definition: marks a hot root.
//   // hotlint: cold -- <justification>      - cuts propagation: callers stay
//                                              hot, this function and its
//                                              callees are not analyzed.
//   // hotlint: allow(rule[,rule]) -- <why>  - suppresses those rules on that
//                                              line. The justification is
//                                              mandatory.
#ifndef SRC_HOTLINT_HOTLINT_H_
#define SRC_HOTLINT_HOTLINT_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace ibus::hotlint {

// Rule names, exposed for the allow mechanism, the fixtures, and the docs.
inline constexpr char kRuleAlloc[] = "hot-alloc";
inline constexpr char kRuleContainerGrowth[] = "hot-container-growth";
inline constexpr char kRuleString[] = "hot-string";
inline constexpr char kRuleByValue[] = "hot-by-value";
inline constexpr char kRuleStdFunction[] = "hot-std-function";
inline constexpr char kRuleIostream[] = "hot-iostream";
inline constexpr char kRuleLock[] = "hot-lock";
inline constexpr char kRuleRecursion[] = "hot-recursion";
inline constexpr char kRuleNondet[] = "hot-nondet";
inline constexpr char kRuleBadAnnotation[] = "bad-annotation";

// Every rule an allow() may name (bad-annotation itself is not allowable).
const std::set<std::string>& KnownRules();

struct SourceFile {
  std::string path;     // repo-relative, e.g. "src/bus/daemon.cc"
  std::string content;  // raw bytes of the file
};

// A direct, per-function observation made by the scanner. `rule` is one of the
// kRule* constants; findings are only emitted for effects of *hot* functions.
struct Effect {
  std::string rule;
  int line = 0;
  int col = 0;
  std::string detail;  // e.g. "make_unique" or "by-value std::string parameter 'subject'"
};

// One call site inside a function body. `qualifier` is the explicit `X::` text
// when the call is spelled qualified ("Message::Unmarshal"), empty otherwise.
struct CallSite {
  std::string name;
  std::string qualifier;
  int line = 0;
  int col = 0;
  // Number of top-level arguments at the site — used to filter overload
  // candidates so a 1-arg convenience wrapper calling its own 2-arg overload is
  // not mistaken for recursion.
  size_t argc = 0;
  // Spelled `obj.f()` / `ptr->f()` with a receiver other than `this` — such a
  // call can never be a self-call, so self-edges from it are dropped.
  bool object_receiver = false;
};

struct Function {
  std::string name;            // unqualified, e.g. "DispatchInbound"
  std::string qualified_name;  // class-qualified, e.g. "BusDaemon::DispatchInbound"
  std::string file;
  int line = 0;  // position of the name token in the definition
  int col = 0;
  bool hot_root = false;  // carries `// hotlint: hot`
  bool cold = false;      // carries a justified `// hotlint: cold`
  // Accepted argument-count range (defaults narrow it, packs/varargs widen it);
  // call resolution only considers candidates whose range admits the site.
  size_t min_params = 0;
  size_t max_params = 0;
  // Justified allow() rules on the signature lines — where graph-level findings
  // (hot-recursion) look for their opt-out.
  std::set<std::string> sig_allows;
  std::vector<CallSite> calls;
  std::vector<Effect> effects;
};

// One reported problem. `chain` is the root-to-site call path, one
// "Qualified::Name (file:line)" entry per hop, root first; empty for
// bad-annotation diagnostics.
struct Diagnostic {
  std::string file;
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;
  std::vector<std::string> chain;

  // "src/bus/daemon.cc:120:7: [hot-alloc] ..." — what the ctest run prints.
  std::string ToString() const;
};

// The whole-program model: every function definition the scanner recognized,
// plus annotation problems discovered while parsing.
struct Program {
  std::vector<Function> functions;
  std::vector<Diagnostic> annotation_diagnostics;
};

// Parses every file into the per-function model. Pure text analysis; no
// compiler, no include resolution — the scanned file set *is* the program.
Program BuildProgram(const std::vector<SourceFile>& files);

// Builds the call graph, propagates hotness from the annotated roots, and
// returns every finding (effects of hot functions, recursion cycles, annotation
// problems), sorted by file/line/col.
std::vector<Diagnostic> Analyze(const Program& program);

// Graphviz export of the call graph. Hot nodes are filled, roots are boxed,
// cold nodes are dashed.
std::string DotGraph(const Program& program);

// Qualified names of every annotated hot root, sorted — the drift-guard test
// cross-checks this against the expected root table.
std::vector<std::string> HotRoots(const Program& program);

}  // namespace ibus::hotlint

#endif  // SRC_HOTLINT_HOTLINT_H_
