// hotlint model builder: scrubs each source file (comments/literals blanked,
// offsets preserved), recognizes function definitions with a forward structural
// scan (namespace/class scope stack, brace/paren depth), and extracts the
// per-function callee list and conservative effect set that analyze.cc turns
// into findings. Pure text analysis in the buslint tradition — no libclang, no
// preprocessor; the scanned file set *is* the program.
#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/hotlint/hotlint.h"

namespace ibus::hotlint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------------

struct Annotation {
  enum Kind { kHot, kCold, kAllow, kUnknown } kind = kUnknown;
  int line = 0;
  std::set<std::string> rules;  // kAllow only
  bool justified = false;       // has a non-empty `-- reason`
  bool claimed = false;         // kHot/kCold: attached to a function definition
  std::string text;             // the word after "hotlint:" (diagnostics)
};

// Source text with comments, literal contents, and preprocessor lines blanked
// (newlines kept, so offsets/line numbers survive). hotlint annotations found in
// `//` comments are collected with their line numbers.
struct Scrubbed {
  std::string code;
  std::vector<size_t> line_starts;
  std::vector<Annotation> annotations;

  int LineOf(size_t offset) const {
    auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<int>(it - line_starts.begin());
  }
  int ColOf(size_t offset) const {
    int line = LineOf(offset);
    return static_cast<int>(offset - line_starts[static_cast<size_t>(line) - 1]) + 1;
  }
};

// Parses "hotlint: hot|cold|allow(a,b) [-- justification]" out of one comment.
void RecordAnnotation(std::string_view comment, int line, Scrubbed* out) {
  size_t at = comment.find("hotlint:");
  if (at == std::string_view::npos) {
    return;
  }
  std::string_view rest = comment.substr(at + 8);
  size_t p = 0;
  while (p < rest.size() && std::isspace(static_cast<unsigned char>(rest[p])) != 0) {
    ++p;
  }
  rest = rest.substr(p);
  Annotation a;
  a.line = line;
  size_t dash = rest.find("--");
  if (dash != std::string_view::npos) {
    std::string_view why = rest.substr(dash + 2);
    a.justified = why.find_first_not_of(" \t") != std::string_view::npos;
  }
  if (rest.substr(0, 6) == "allow(") {
    size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      a.kind = Annotation::kUnknown;
      a.text = "allow";
      out->annotations.push_back(std::move(a));
      return;
    }
    a.kind = Annotation::kAllow;
    std::stringstream ss{std::string(rest.substr(6, close - 6))};
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      rule.erase(std::remove_if(rule.begin(), rule.end(),
                                [](char c) {
                                  return std::isspace(static_cast<unsigned char>(c)) != 0;
                                }),
                 rule.end());
      if (!rule.empty()) {
        a.rules.insert(rule);
      }
    }
  } else {
    size_t e = 0;
    while (e < rest.size() && IsIdentChar(rest[e])) {
      ++e;
    }
    a.text = std::string(rest.substr(0, e));
    if (a.text == "hot") {
      a.kind = Annotation::kHot;
    } else if (a.text == "cold") {
      a.kind = Annotation::kCold;
    } else {
      a.kind = Annotation::kUnknown;
    }
  }
  out->annotations.push_back(std::move(a));
}

Scrubbed Scrub(std::string_view src) {
  Scrubbed out;
  out.code.assign(src.size(), ' ');
  out.line_starts.push_back(0);
  size_t i = 0;
  bool at_line_start = true;  // only whitespace seen since the last newline
  auto copy_nl = [&](size_t pos) {
    out.code[pos] = '\n';
    out.line_starts.push_back(pos + 1);
    at_line_start = true;
  };
  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      copy_nl(i);
      ++i;
      continue;
    }
    if (at_line_start && c == '#') {
      // Preprocessor line (plus backslash continuations): blank it so `#if`
      // alternatives and function-like macro bodies cannot unbalance braces.
      while (i < src.size()) {
        size_t end = src.find('\n', i);
        if (end == std::string_view::npos) {
          i = src.size();
          break;
        }
        bool continued = end > i && src[end - 1] == '\\';
        copy_nl(end);
        i = end + 1;
        if (!continued) {
          break;
        }
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) == 0) {
      at_line_start = false;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string_view::npos) {
        end = src.size();
      }
      RecordAnnotation(src.substr(i, end - i),
                       static_cast<int>(out.line_starts.size()), &out);
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      end = end == std::string_view::npos ? src.size() : end + 2;
      for (size_t j = i; j < end; ++j) {
        if (src[j] == '\n') {
          copy_nl(j);
        }
      }
      i = end;
      continue;
    }
    if (c == '"' || c == '\'') {
      if (c == '"' && i > 0 && src[i - 1] == 'R') {
        size_t paren = src.find('(', i);
        if (paren != std::string_view::npos) {
          std::string closer = ")" + std::string(src.substr(i + 1, paren - i - 1)) + "\"";
          size_t end = src.find(closer, paren + 1);
          if (end != std::string_view::npos) {
            out.code[i] = '"';
            size_t close_q = end + closer.size() - 1;
            out.code[close_q] = '"';
            for (size_t j = i; j < close_q; ++j) {
              if (src[j] == '\n') {
                copy_nl(j);
              }
            }
            i = close_q + 1;
            continue;
          }
        }
      }
      char quote = c;
      size_t start = i;
      ++i;
      while (i < src.size() && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < src.size()) {
          i += 2;
          continue;
        }
        if (src[i] == '\n') {
          break;  // unterminated literal; bail at line end
        }
        ++i;
      }
      out.code[start] = quote;
      if (i < src.size() && src[i] == quote) {
        out.code[i] = quote;
        ++i;
      }
      continue;
    }
    out.code[i] = c;
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------------
// Small token helpers
// ---------------------------------------------------------------------------------

size_t SkipSpace(std::string_view s, size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

size_t PrevMeaningful(std::string_view s, size_t i) {
  while (i > 0) {
    --i;
    if (std::isspace(static_cast<unsigned char>(s[i])) == 0) {
      return i;
    }
  }
  return std::string_view::npos;
}

// Offset just past the matching ')' for the '(' at `open`, or npos.
size_t MatchParen(std::string_view s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '(') {
      ++depth;
    } else if (s[i] == ')') {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string_view::npos;
}

// Offset just past the matching '>' for the '<' at `open`, or npos. Bails on
// chars that cannot occur inside template arguments (a lone '<' was a
// comparison, not a template list).
size_t MatchAngle(std::string_view s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    char c = s[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (c == ';' || c == '{' || c == '}') {
      return std::string_view::npos;
    }
  }
  return std::string_view::npos;
}

template <typename Fn>
void ForEachIdentifier(std::string_view code, size_t begin, size_t end, Fn&& fn) {
  size_t i = begin;
  while (i < end) {
    if (IsIdentChar(code[i]) && (i == 0 || !IsIdentChar(code[i - 1])) &&
        std::isdigit(static_cast<unsigned char>(code[i])) == 0) {
      size_t j = i;
      while (j < end && IsIdentChar(code[j])) {
        ++j;
      }
      fn(i, code.substr(i, j - i));
      i = j;
      continue;
    }
    ++i;
  }
}

const std::unordered_set<std::string_view>& ControlKeywords() {
  static const std::unordered_set<std::string_view> kSet = {
      "if",       "for",     "while",   "switch",   "catch",      "return",
      "sizeof",   "alignof", "decltype", "noexcept", "static_cast", "dynamic_cast",
      "const_cast", "reinterpret_cast", "new", "delete", "else", "do", "case",
      "requires", "co_await", "co_return", "co_yield", "throw", "assert",
      "static_assert", "defined", "alignas", "typeid",
  };
  return kSet;
}

// ---------------------------------------------------------------------------------
// Declaration-head classification
// ---------------------------------------------------------------------------------

struct HeadInfo {
  enum Kind { kOther, kNamespace, kClass, kFunction } kind = kOther;
  std::string name;            // scope name, or unqualified function name
  size_t name_off = 0;         // function name token offset
  std::vector<std::string> qualifiers;  // explicit A::B:: chain before the name
  size_t params_begin = 0;     // inside the '(' ... ')' group
  size_t params_end = 0;
  size_t return_begin = 0;     // [return_begin, return_end): return-type text
  size_t return_end = 0;
  size_t tail_begin = 0;       // [tail_begin, head_end): qualifiers / ctor-init list
};

// Classifies the declaration head [begin, end) that ends at a '{'.
HeadInfo ClassifyHead(std::string_view code, size_t begin, size_t end) {
  HeadInfo info;
  size_t i = SkipSpace(code, begin);
  // Skip template<...> introducers and [[attributes]].
  while (i < end) {
    if (code.compare(i, 8, "template") == 0 &&
        (i + 8 >= end || !IsIdentChar(code[i + 8]))) {
      size_t lt = SkipSpace(code, i + 8);
      if (lt < end && code[lt] == '<') {
        size_t past = MatchAngle(code, lt);
        if (past == std::string_view::npos || past > end) {
          return info;
        }
        i = SkipSpace(code, past);
        continue;
      }
    }
    if (code.compare(i, 2, "[[") == 0) {
      size_t close = code.find("]]", i + 2);
      if (close == std::string_view::npos || close >= end) {
        return info;
      }
      i = SkipSpace(code, close + 2);
      continue;
    }
    break;
  }
  if (i >= end) {
    return info;  // bare `{` — a plain block or an initializer
  }
  size_t head_begin = i;

  // Scope keywords before any top-level '(' make this a scope, not a function.
  static const std::unordered_set<std::string_view> kScopeKeywords = {
      "namespace", "class", "struct", "union", "enum"};
  int paren = 0;
  size_t scope_kw_at = std::string_view::npos;
  std::string scope_kw;
  size_t first_paren = std::string_view::npos;
  {
    size_t j = head_begin;
    int angle = 0;
    while (j < end) {
      char c = code[j];
      if (IsIdentChar(c) && (j == 0 || !IsIdentChar(code[j - 1]))) {
        size_t k = j;
        while (k < end && IsIdentChar(code[k])) {
          ++k;
        }
        std::string_view tok = code.substr(j, k - j);
        if (paren == 0 && angle == 0 && first_paren == std::string_view::npos &&
            kScopeKeywords.count(tok) > 0) {
          scope_kw_at = j;
          scope_kw = std::string(tok);
          break;
        }
        j = k;
        continue;
      }
      if (c == '<') {
        size_t past = MatchAngle(code, j);
        if (past != std::string_view::npos && past <= end) {
          j = past;
          continue;
        }
      }
      if (c == '(') {
        if (paren == 0 && angle == 0 && first_paren == std::string_view::npos) {
          first_paren = j;
        }
        ++paren;
      } else if (c == ')') {
        --paren;
      }
      ++j;
    }
  }

  if (scope_kw_at != std::string_view::npos) {
    if (scope_kw == "namespace") {
      info.kind = HeadInfo::kNamespace;
    } else if (scope_kw == "class" || scope_kw == "struct") {
      info.kind = HeadInfo::kClass;
    } else {
      info.kind = HeadInfo::kOther;  // enum/union: skip the body wholesale
      return info;
    }
    // Scope name: the identifier after the keyword (skipping attributes and,
    // for classes, stopping before bases `: public X`).
    size_t j = SkipSpace(code, scope_kw_at + scope_kw.size());
    while (j < end && code.compare(j, 2, "[[") == 0) {
      size_t close = code.find("]]", j);
      if (close == std::string_view::npos) {
        break;
      }
      j = SkipSpace(code, close + 2);
    }
    size_t k = j;
    while (k < end && IsIdentChar(code[k])) {
      ++k;
    }
    info.name = std::string(code.substr(j, k - j));  // may be empty (anonymous)
    return info;
  }

  if (first_paren == std::string_view::npos) {
    return info;  // no parameter list — initializer, lambda body, etc.
  }
  size_t params_past = MatchParen(code, first_paren);
  if (params_past == std::string_view::npos || params_past > end) {
    return info;
  }

  // The token directly before '(' must be the function name (identifier,
  // ~identifier destructor, or operator-something).
  size_t before = PrevMeaningful(code, first_paren);
  if (before == std::string_view::npos || before < head_begin) {
    return info;
  }
  size_t name_end = before + 1;
  size_t name_begin = name_end;
  if (IsIdentChar(code[before])) {
    while (name_begin > head_begin && IsIdentChar(code[name_begin - 1])) {
      --name_begin;
    }
  } else {
    // operator+ / operator== / operator() etc: symbols back to `operator`.
    size_t sym_begin = name_end;
    while (sym_begin > head_begin && !IsIdentChar(code[sym_begin - 1]) &&
           std::isspace(static_cast<unsigned char>(code[sym_begin - 1])) == 0) {
      --sym_begin;
    }
    size_t op_end = sym_begin;
    size_t op_begin = op_end;
    while (op_begin > head_begin && IsIdentChar(code[op_begin - 1])) {
      --op_begin;
    }
    if (code.substr(op_begin, op_end - op_begin) != "operator") {
      return info;
    }
    name_begin = op_begin;
  }
  std::string name(code.substr(name_begin, name_end - name_begin));
  if (name == "operator") {
    // `operator()` — the first paren group is part of the name; the parameter
    // list is the next group.
    size_t next = SkipSpace(code, params_past);
    if (next < end && code[next] == '(') {
      size_t past2 = MatchParen(code, next);
      if (past2 == std::string_view::npos || past2 > end) {
        return info;
      }
      name = "operator()";
      first_paren = next;
      params_past = past2;
    } else {
      name += std::string(code.substr(name_end, first_paren - name_end));
      while (!name.empty() && std::isspace(static_cast<unsigned char>(name.back())) != 0) {
        name.pop_back();
      }
    }
  }
  if (name.empty() || ControlKeywords().count(name) > 0) {
    return info;
  }
  // Destructor tilde.
  if (name_begin > head_begin) {
    size_t prev = PrevMeaningful(code, name_begin);
    if (prev != std::string_view::npos && prev >= head_begin && code[prev] == '~') {
      name = "~" + name;
      name_begin = prev;
    }
  }

  // Walk the explicit qualifier chain A::B:: backwards (skipping template args).
  size_t chain_begin = name_begin;
  std::vector<std::string> quals;
  while (true) {
    size_t prev = PrevMeaningful(code, chain_begin);
    if (prev == std::string_view::npos || prev < head_begin || prev < 1 ||
        code[prev] != ':' || code[prev - 1] != ':') {
      break;
    }
    size_t q_end_pos = PrevMeaningful(code, prev - 1);
    if (q_end_pos == std::string_view::npos || q_end_pos < head_begin) {
      break;
    }
    if (code[q_end_pos] == '>') {
      // Foo<T>::bar — scan back to the matching '<'.
      int depth = 0;
      size_t j = q_end_pos + 1;
      while (j > head_begin) {
        --j;
        if (code[j] == '>') {
          ++depth;
        } else if (code[j] == '<') {
          if (--depth == 0) {
            break;
          }
        }
      }
      q_end_pos = PrevMeaningful(code, j);
      if (q_end_pos == std::string_view::npos || q_end_pos < head_begin ||
          !IsIdentChar(code[q_end_pos])) {
        break;
      }
    }
    if (!IsIdentChar(code[q_end_pos])) {
      break;
    }
    size_t q_begin = q_end_pos + 1;
    while (q_begin > head_begin && IsIdentChar(code[q_begin - 1])) {
      --q_begin;
    }
    quals.insert(quals.begin(), std::string(code.substr(q_begin, q_end_pos + 1 - q_begin)));
    chain_begin = q_begin;
  }

  info.kind = HeadInfo::kFunction;
  info.name = std::move(name);
  info.name_off = name_begin;
  info.qualifiers = std::move(quals);
  info.params_begin = first_paren + 1;
  info.params_end = params_past - 1;
  info.return_begin = head_begin;
  info.return_end = chain_begin;
  info.tail_begin = params_past;
  return info;
}

// ---------------------------------------------------------------------------------
// Effect + callee extraction
// ---------------------------------------------------------------------------------

struct AllowMap {
  // line -> justified allow rules; kRuleBadAnnotation problems are reported
  // separately by the caller.
  std::unordered_map<int, std::set<std::string>> lines;

  bool Allowed(int line, std::string_view rule) const {
    auto it = lines.find(line);
    return it != lines.end() &&
           (it->second.count(std::string(rule)) > 0 || it->second.count("all") > 0);
  }
};

const std::unordered_set<std::string_view>& GrowthMethods() {
  static const std::unordered_set<std::string_view> kSet = {
      "push_back", "emplace_back", "push_front", "emplace_front",
      "insert",    "emplace",      "resize",     "append",
  };
  return kSet;
}

const std::unordered_set<std::string_view>& IostreamIdents() {
  static const std::unordered_set<std::string_view> kSet = {
      "cout",  "cerr",   "clog",          "printf",        "fprintf",
      "sprintf", "snprintf", "vsnprintf", "puts",          "putchar",
      "ostringstream", "istringstream",   "stringstream",  "endl",
      "format", "scanf",  "getline",      "IBUS_LOG",      "IBUS_WARN",
      "IBUS_INFO", "IBUS_ERROR", "IBUS_DEBUG",
  };
  return kSet;
}

const std::unordered_set<std::string_view>& LockIdents() {
  static const std::unordered_set<std::string_view> kSet = {
      "mutex", "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
      "condition_variable", "shared_mutex", "recursive_mutex",
  };
  return kSet;
}

const std::unordered_set<std::string_view>& NondetIdents() {
  static const std::unordered_set<std::string_view> kSet = {
      "srand",         "rand_r",       "drand48",
      "random_device", "mt19937",      "mt19937_64",
      "minstd_rand",   "default_random_engine",
      "system_clock",  "steady_clock", "high_resolution_clock",
      "getenv",        "gettimeofday", "clock_gettime",
      "localtime",     "gmtime",
  };
  return kSet;
}

// Identifiers that look like calls but never resolve to repo functions worth an
// edge; keeps the callee lists small.
const std::unordered_set<std::string_view>& UninterestingCallees() {
  static const std::unordered_set<std::string_view> kSet = {
      "move",  "forward", "swap",  "get",   "value", "begin", "end",
      "size",  "empty",   "data",  "front", "back",  "reset", "release",
      "count", "find",    "at",    "min",   "max",   "ok",
  };
  return kSet;
}

// Walks back over a receiver chain (`frame->payload`, `flows_`, `a.b.c`) from
// the offset of the '.' / '->' that precedes a method name. Spaces stripped.
std::string ReceiverChain(std::string_view code, size_t dot_off) {
  size_t i = dot_off;
  while (i > 0) {
    char c = code[i - 1];
    if (IsIdentChar(c) || c == '.' || c == '_' || c == ':' ||
        std::isspace(static_cast<unsigned char>(c)) != 0 ||
        (c == '>' && i >= 2 && code[i - 2] == '-') || c == '-') {
      --i;
      if (c == '>' ) {
        --i;  // consumed '->' as a pair
      }
      continue;
    }
    break;
  }
  std::string out;
  for (size_t j = i; j <= dot_off; ++j) {
    if (std::isspace(static_cast<unsigned char>(code[j])) == 0) {
      out.push_back(code[j]);
    }
  }
  return out;
}

// True when the identifier at [off, off+len) is a method call receiver-ed with
// '.' or '->'; fills `dot_off` with the offset of the '.' / '>' char.
bool MethodContext(std::string_view code, size_t off, size_t* dot_off) {
  size_t prev = PrevMeaningful(code, off);
  if (prev == std::string_view::npos) {
    return false;
  }
  if (code[prev] == '.') {
    *dot_off = prev;
    return true;
  }
  if (code[prev] == '>' && prev >= 1 && code[prev - 1] == '-') {
    *dot_off = prev;
    return true;
  }
  return false;
}

// Number of top-level arguments inside the '(' at `open` (0 for empty parens).
size_t CountArgs(std::string_view code, size_t open, size_t past) {
  size_t args = 0;
  int paren = 0;
  int angle = 0;
  int brace = 0;
  int bracket = 0;
  bool any = false;
  for (size_t i = open; i + 1 < past; ++i) {
    char c = code[i];
    if (c == '(') {
      ++paren;
      continue;
    }
    if (c == ')') {
      --paren;
      continue;
    }
    if (paren > 1) {
      continue;
    }
    if (c == '<') {
      ++angle;
    } else if (c == '>') {
      angle = angle > 0 ? angle - 1 : 0;
    } else if (c == '{') {
      ++brace;
    } else if (c == '}') {
      --brace;
    } else if (c == '[') {
      ++bracket;
    } else if (c == ']') {
      --bracket;
    } else if (c == ',' && angle == 0 && brace == 0 && bracket == 0) {
      ++args;
    } else if (std::isspace(static_cast<unsigned char>(c)) == 0) {
      any = true;
    }
  }
  return any ? args + 1 : 0;
}

// True if the body contains `move ( name )` (std::move'd sink parameter).
bool IsMovedInBody(std::string_view code, size_t begin, size_t end,
                   std::string_view name) {
  size_t i = begin;
  while (i < end) {
    size_t at = code.find("move", i);
    if (at == std::string_view::npos || at + 4 > end) {
      return false;
    }
    i = at + 4;
    if (at > 0 && IsIdentChar(code[at - 1])) {
      continue;
    }
    size_t p = SkipSpace(code, at + 4);
    if (p >= end || code[p] != '(') {
      continue;
    }
    p = SkipSpace(code, p + 1);
    if (p + name.size() > end || code.substr(p, name.size()) != name) {
      continue;
    }
    size_t q = SkipSpace(code, p + name.size());
    if (q < end && code[q] == ')') {
      return true;
    }
  }
  return false;
}

struct ParamDecl {
  std::string text;
  std::string name;  // last identifier, or empty
  size_t off = 0;    // offset of the first token
  bool has_default = false;
  bool is_pack = false;  // parameter pack / C varargs
};

std::vector<ParamDecl> SplitParams(std::string_view code, size_t begin, size_t end) {
  std::vector<ParamDecl> out;
  int paren = 0;
  int angle = 0;
  int brace = 0;
  size_t start = begin;
  auto flush = [&](size_t stop) {
    size_t s = SkipSpace(code, start);
    if (s >= stop) {
      return;
    }
    ParamDecl p;
    p.off = s;
    p.text = std::string(code.substr(s, stop - s));
    // Parameter name: the last identifier before any `= default` initializer.
    std::string_view t = code.substr(s, stop - s);
    size_t eq = std::string_view::npos;
    {
      int pd = 0;
      int ad = 0;
      for (size_t j = 0; j < t.size(); ++j) {
        char c = t[j];
        if (c == '(') {
          ++pd;
        } else if (c == ')') {
          --pd;
        } else if (c == '<') {
          ++ad;
        } else if (c == '>') {
          ad = ad > 0 ? ad - 1 : 0;
        } else if (c == '=' && pd == 0 && ad == 0) {
          eq = j;
          break;
        }
      }
    }
    p.has_default = eq != std::string_view::npos;
    p.is_pack = t.find("...") != std::string_view::npos;
    std::string_view decl = eq == std::string_view::npos ? t : t.substr(0, eq);
    size_t name_end = decl.size();
    while (name_end > 0 &&
           std::isspace(static_cast<unsigned char>(decl[name_end - 1])) != 0) {
      --name_end;
    }
    size_t name_begin = name_end;
    while (name_begin > 0 && IsIdentChar(decl[name_begin - 1])) {
      --name_begin;
    }
    if (name_end > name_begin && decl.back() != '>' && decl.back() != '&' &&
        decl.back() != '*') {
      p.name = std::string(decl.substr(name_begin, name_end - name_begin));
    }
    out.push_back(std::move(p));
  };
  for (size_t i = begin; i < end; ++i) {
    char c = code[i];
    if (c == '(') {
      ++paren;
    } else if (c == ')') {
      --paren;
    } else if (c == '<') {
      ++angle;
    } else if (c == '>') {
      angle = angle > 0 ? angle - 1 : 0;
    } else if (c == '{') {
      ++brace;
    } else if (c == '}') {
      --brace;
    } else if (c == ',' && paren == 0 && angle == 0 && brace == 0) {
      flush(i);
      start = i + 1;
    }
  }
  flush(end);
  return out;
}

// Copy-expensive types the by-value rule watches for, as exact token matches
// (so `string_view` does not count as `string`).
const std::unordered_set<std::string_view>& ValueTypes() {
  static const std::unordered_set<std::string_view> kSet = {
      "string", "Bytes", "vector", "map", "unordered_map",
      "set",    "unordered_set", "multimap", "deque", "list",
  };
  return kSet;
}

// First ValueTypes() token in [begin, end), or empty. Keyword/qualifier tokens
// never collide with the type set.
std::string FindValueType(std::string_view code, size_t begin, size_t end) {
  std::string hit;
  ForEachIdentifier(code, begin, end, [&](size_t, std::string_view tok) {
    if (hit.empty() && ValueTypes().count(tok) > 0) {
      hit = std::string(tok);
    }
  });
  return hit;
}

bool ContainsChar(std::string_view code, size_t begin, size_t end, char c) {
  for (size_t i = begin; i < end; ++i) {
    if (code[i] == c) {
      return true;
    }
  }
  return false;
}

struct FileContext {
  const std::string* path = nullptr;
  const Scrubbed* scrubbed = nullptr;
  const AllowMap* allows = nullptr;
  const std::set<std::string>* ptr_keyed_containers = nullptr;
};

void AddEffect(const FileContext& ctx, Function* fn, const char* rule, size_t off,
               std::string detail) {
  int line = ctx.scrubbed->LineOf(off);
  if (ctx.allows->Allowed(line, rule)) {
    return;
  }
  fn->effects.push_back({rule, line, ctx.scrubbed->ColOf(off), std::move(detail)});
}

// Scans one body (or ctor-init-list) range for callees and direct effects.
void ScanBody(const FileContext& ctx, size_t begin, size_t end, Function* fn) {
  std::string_view code = ctx.scrubbed->code;

  // Receivers that were reserve()d anywhere in this function: growth on them is
  // the preallocation idiom, not a finding.
  std::set<std::string> reserved;
  ForEachIdentifier(code, begin, end, [&](size_t off, std::string_view ident) {
    if (ident != "reserve") {
      return;
    }
    size_t dot = 0;
    if (MethodContext(code, off, &dot)) {
      reserved.insert(ReceiverChain(code, dot));
    }
  });

  std::set<std::string> seen_callees;
  ForEachIdentifier(code, begin, end, [&](size_t off, std::string_view ident) {
    size_t after = SkipSpace(code, off + ident.size());
    bool direct_call = after < end && code[after] == '(';
    bool templated_call = false;
    if (!direct_call && after < end && code[after] == '<') {
      size_t past = MatchAngle(code, after);
      if (past != std::string_view::npos && past <= end) {
        size_t p = SkipSpace(code, past);
        templated_call = p < end && code[p] == '(';
      }
    }
    bool is_call = direct_call || templated_call;

    // --- effects ---
    if (ident == "new") {
      size_t prev = PrevMeaningful(code, off);
      // `= delete`-style noise cannot appear with `new`; placement new is rare
      // enough to count as allocation until proven otherwise.
      if (prev == std::string_view::npos || code[prev] != '.') {
        AddEffect(ctx, fn, kRuleAlloc, off, "'new' expression");
      }
      return;
    }
    if (ident == "make_unique" || ident == "make_shared") {
      if (is_call) {
        AddEffect(ctx, fn, kRuleAlloc, off, "'" + std::string(ident) + "' call");
      }
      return;
    }
    size_t dot = 0;
    if (GrowthMethods().count(ident) > 0 && is_call && MethodContext(code, off, &dot)) {
      std::string recv = ReceiverChain(code, dot);
      if (reserved.count(recv) == 0) {
        AddEffect(ctx, fn, kRuleContainerGrowth, off,
                  "'" + recv + std::string(ident) +
                      "' grows a container with no prior reserve()");
      }
      // growth methods are methods on std containers, not repo functions
      return;
    }
    if (ident == "to_string" && is_call) {
      // (substr is deliberately absent: string_view::substr is free and the
      // scanner cannot see receiver types.)
      AddEffect(ctx, fn, kRuleString, off,
                "'" + std::string(ident) + "' constructs a std::string");
      return;
    }
    if (ident == "string" && direct_call) {
      AddEffect(ctx, fn, kRuleString, off, "std::string construction");
      return;
    }
    if (ident == "function" && after < end && code[after] == '<') {
      AddEffect(ctx, fn, kRuleStdFunction, off, "std::function construction");
      return;
    }
    if (IostreamIdents().count(ident) > 0) {
      AddEffect(ctx, fn, kRuleIostream, off,
                "'" + std::string(ident) + "' formats/streams on the hot path");
      return;
    }
    if (LockIdents().count(ident) > 0 ||
        ((ident == "lock" || ident == "unlock" || ident == "try_lock") && is_call &&
         MethodContext(code, off, &dot))) {
      AddEffect(ctx, fn, kRuleLock, off, "'" + std::string(ident) + "' locks");
      return;
    }
    bool nondet = NondetIdents().count(ident) > 0;
    if (!nondet && (ident == "rand" || ident == "time" || ident == "clock")) {
      nondet = is_call;
    }
    if (nondet) {
      AddEffect(ctx, fn, kRuleNondet, off,
                "'" + std::string(ident) + "' is nondeterministic");
      return;
    }

    // --- range-for over a pointer-keyed unordered container ---
    if (ident == "for" && direct_call) {
      size_t past = MatchParen(code, after);
      if (past != std::string_view::npos && past <= end) {
        int angle = 0;
        for (size_t j = after + 1; j + 1 < past; ++j) {
          char c = code[j];
          if (c == '<') {
            ++angle;
          } else if (c == '>') {
            angle = angle > 0 ? angle - 1 : 0;
          } else if (c == ':' && angle == 0 && code[j - 1] != ':' && code[j + 1] != ':') {
            // Last identifier of the ranged expression.
            std::string last;
            ForEachIdentifier(code, j + 1, past - 1, [&](size_t, std::string_view t) {
              last = std::string(t);
            });
            if (!last.empty() && ctx.ptr_keyed_containers->count(last) > 0) {
              AddEffect(ctx, fn, kRuleNondet, off,
                        "range-for over pointer-keyed unordered container '" + last +
                            "' iterates in address order");
            }
            break;
          }
        }
      }
      return;
    }

    // --- callees ---
    if (!is_call || ControlKeywords().count(ident) > 0 ||
        UninterestingCallees().count(ident) > 0 || ident == "reserve") {
      return;
    }
    CallSite site;
    site.name = std::string(ident);
    site.line = ctx.scrubbed->LineOf(off);
    site.col = ctx.scrubbed->ColOf(off);
    size_t args_open = direct_call ? after : SkipSpace(code, MatchAngle(code, after));
    size_t args_past = MatchParen(code, args_open);
    if (args_past != std::string_view::npos) {
      site.argc = CountArgs(code, args_open, args_past);
    }
    size_t recv_dot = 0;
    if (MethodContext(code, off, &recv_dot)) {
      std::string recv = ReceiverChain(code, recv_dot);
      site.object_receiver = recv != "this." && recv != "this->";
    }
    // Explicit qualifier chain: `Message::Unmarshal(`, `std::move(`.
    size_t qb = off;
    while (qb >= 2 && code[qb - 1] == ':' && code[qb - 2] == ':') {
      size_t q_end = qb - 2;
      size_t q_begin = q_end;
      while (q_begin > 0 && IsIdentChar(code[q_begin - 1])) {
        --q_begin;
      }
      if (q_begin == q_end) {
        break;
      }
      std::string part(code.substr(q_begin, q_end - q_begin));
      site.qualifier = site.qualifier.empty() ? part : part + "::" + site.qualifier;
      qb = q_begin;
    }
    std::string key = site.qualifier + "::" + site.name;
    if (seen_callees.insert(key).second) {
      fn->calls.push_back(std::move(site));
    }
  });

  // String-literal concatenation: `"..." + x` or `x + "..."`.
  for (size_t i = begin; i < end; ++i) {
    if (code[i] != '+') {
      continue;
    }
    if ((i + 1 < end && (code[i + 1] == '+' || code[i + 1] == '=')) ||
        (i > 0 && code[i - 1] == '+')) {
      continue;  // ++ / +=
    }
    size_t prev = PrevMeaningful(code, i);
    size_t next = SkipSpace(code, i + 1);
    bool lit = (prev != std::string_view::npos && code[prev] == '"') ||
               (next < end && code[next] == '"');
    if (lit) {
      AddEffect(ctx, fn, kRuleString, i, "string concatenation with a literal");
      i = next;
    }
  }
}

// Signature effects: by-value std::string/Bytes/container params + returns,
// by-value std::function params.
void ScanSignature(const FileContext& ctx, const HeadInfo& head, size_t body_begin,
                   size_t body_end, Function* fn) {
  std::string_view code = ctx.scrubbed->code;
  std::vector<ParamDecl> params = SplitParams(code, head.params_begin, head.params_end);
  for (const ParamDecl& p : params) {
    if (p.is_pack) {
      fn->max_params = SIZE_MAX;
    } else {
      if (!p.has_default) {
        ++fn->min_params;
      }
      if (fn->max_params != SIZE_MAX) {
        ++fn->max_params;
      }
    }
  }
  for (const ParamDecl& p : params) {
    size_t p_end = p.off + p.text.size();
    if (ContainsChar(code, p.off, p_end, '&') || ContainsChar(code, p.off, p_end, '*')) {
      continue;
    }
    bool is_function = false;
    ForEachIdentifier(code, p.off, p_end, [&](size_t, std::string_view tok) {
      if (tok == "function") {
        is_function = true;
      }
    });
    if (is_function) {
      AddEffect(ctx, fn, kRuleStdFunction, p.off,
                "by-value std::function parameter" +
                    (p.name.empty() ? std::string() : " '" + p.name + "'") +
                    " (converting a lambda allocates even when later moved)");
      continue;
    }
    std::string hit = FindValueType(code, p.off, p_end);
    if (hit.empty()) {
      continue;
    }
    if (!p.name.empty() && IsMovedInBody(code, body_begin, body_end, p.name)) {
      continue;  // sink parameter: moved, not copied
    }
    AddEffect(ctx, fn, kRuleByValue, p.off,
              "by-value " + hit + " parameter" +
                  (p.name.empty() ? std::string() : " '" + p.name + "'"));
  }
  if (head.return_end > head.return_begin &&
      !ContainsChar(code, head.return_begin, head.return_end, '&') &&
      !ContainsChar(code, head.return_begin, head.return_end, '*')) {
    std::string hit = FindValueType(code, head.return_begin, head.return_end);
    if (!hit.empty()) {
      AddEffect(ctx, fn, kRuleByValue, head.name_off,
                "returns a " + hit + " by value");
    }
  }
}

// ---------------------------------------------------------------------------------
// File parsing
// ---------------------------------------------------------------------------------

struct ScopeFrame {
  HeadInfo::Kind kind = HeadInfo::kOther;
  std::string name;
};

void ScanFile(const std::string& path, const Scrubbed& s, const AllowMap& allows,
               const std::set<std::string>& ptr_keyed, Program* out) {
  FileContext ctx{&path, &s, &allows, &ptr_keyed};
  std::string_view code = s.code;
  std::vector<ScopeFrame> scopes;
  std::vector<std::pair<int, int>> claimable;  // [first_line, last_line] per fn (unused placeholder)
  (void)claimable;

  // hot/cold annotations to attach; indexes into s.annotations.
  std::vector<size_t> markers;
  for (size_t i = 0; i < s.annotations.size(); ++i) {
    const Annotation& a = s.annotations[i];
    if (a.kind == Annotation::kHot || a.kind == Annotation::kCold) {
      markers.push_back(i);
    }
  }
  std::vector<bool> claimed(s.annotations.size(), false);

  size_t i = 0;
  size_t head_start = 0;
  int paren_depth = 0;
  while (i < code.size()) {
    char c = code[i];
    if (c == '(') {
      ++paren_depth;
      ++i;
      continue;
    }
    if (c == ')') {
      paren_depth = paren_depth > 0 ? paren_depth - 1 : 0;
      ++i;
      continue;
    }
    if (paren_depth > 0) {
      ++i;
      continue;
    }
    if (c == ';') {
      head_start = i + 1;
      ++i;
      continue;
    }
    if (c == '}') {
      if (!scopes.empty()) {
        scopes.pop_back();
      }
      head_start = i + 1;
      ++i;
      continue;
    }
    if (c == ':') {
      if (i + 1 < code.size() && code[i + 1] == ':') {
        i += 2;
        continue;
      }
      // Access specifiers reset the head; ctor-init `:` must not.
      size_t prev = PrevMeaningful(code, i);
      if (prev != std::string_view::npos && IsIdentChar(code[prev])) {
        size_t b = prev + 1;
        while (b > 0 && IsIdentChar(code[b - 1])) {
          --b;
        }
        std::string_view word = code.substr(b, prev + 1 - b);
        if (word == "public" || word == "private" || word == "protected") {
          head_start = i + 1;
        }
      }
      ++i;
      continue;
    }
    if (c != '{') {
      ++i;
      continue;
    }

    HeadInfo head = ClassifyHead(code, head_start, i);
    if (head.kind == HeadInfo::kNamespace || head.kind == HeadInfo::kClass) {
      scopes.push_back({head.kind, head.name});
      head_start = i + 1;
      ++i;
      continue;
    }
    if (head.kind != HeadInfo::kFunction) {
      scopes.push_back({HeadInfo::kOther, ""});
      head_start = i + 1;
      ++i;
      continue;
    }

    // Function body: match the closing brace.
    int depth = 0;
    size_t body_end = code.size();
    for (size_t j = i; j < code.size(); ++j) {
      if (code[j] == '{') {
        ++depth;
      } else if (code[j] == '}') {
        if (--depth == 0) {
          body_end = j;
          break;
        }
      }
    }

    Function fn;
    fn.name = head.name;
    std::string qual;
    for (const ScopeFrame& sf : scopes) {
      if (sf.kind == HeadInfo::kClass && !sf.name.empty()) {
        qual += sf.name + "::";
      }
    }
    for (const std::string& q : head.qualifiers) {
      // Skip namespace-style qualifiers already covered by scope (rare); keep all.
      qual += q + "::";
    }
    fn.qualified_name = qual + fn.name;
    fn.file = path;
    fn.line = s.LineOf(head.name_off);
    fn.col = s.ColOf(head.name_off);

    // Attach hot/cold markers: signature lines or the line directly above.
    int first_line = s.LineOf(head.return_begin != head.return_end
                                  ? head.return_begin
                                  : head.name_off);
    int open_line = s.LineOf(i);
    for (size_t mi : markers) {
      const Annotation& a = s.annotations[mi];
      if (claimed[mi] || a.line < first_line - 1 || a.line > open_line) {
        continue;
      }
      claimed[mi] = true;
      if (a.kind == Annotation::kHot) {
        fn.hot_root = true;
      } else if (a.justified) {
        fn.cold = true;
      } else {
        out->annotation_diagnostics.push_back(
            {path, a.line, 1, kRuleBadAnnotation,
             "'hotlint: cold' requires a '-- justification'", {}});
      }
    }
    for (int l = first_line - 1; l <= open_line; ++l) {
      auto it = allows.lines.find(l);
      if (it != allows.lines.end()) {
        fn.sig_allows.insert(it->second.begin(), it->second.end());
      }
    }
    if (fn.hot_root && fn.cold) {
      out->annotation_diagnostics.push_back(
          {path, fn.line, fn.col, kRuleBadAnnotation,
           "'" + fn.qualified_name + "' is marked both hot and cold", {}});
      fn.cold = false;
    }

    // The move-sink search covers the ctor-init list too (members are moved
    // there), hence tail_begin rather than the body brace.
    ScanSignature(ctx, head, head.tail_begin, body_end, &fn);
    // Ctor-init lists allocate too: scan [tail_begin, i) together with the body.
    if (head.tail_begin < i) {
      size_t t = SkipSpace(code, head.tail_begin);
      if (t < i && code[t] == ':') {
        ScanBody(ctx, t + 1, i, &fn);
      }
    }
    ScanBody(ctx, i + 1, body_end, &fn);
    out->functions.push_back(std::move(fn));

    i = body_end < code.size() ? body_end + 1 : code.size();
    head_start = i;
  }

  // Annotation problems: unknown markers, unjustified allows, unclaimed hot/cold.
  for (size_t ai = 0; ai < s.annotations.size(); ++ai) {
    const Annotation& a = s.annotations[ai];
    switch (a.kind) {
      case Annotation::kUnknown:
        out->annotation_diagnostics.push_back(
            {path, a.line, 1, kRuleBadAnnotation,
             "unknown hotlint annotation '" + a.text + "'", {}});
        break;
      case Annotation::kAllow: {
        if (!a.justified) {
          out->annotation_diagnostics.push_back(
              {path, a.line, 1, kRuleBadAnnotation,
               "hotlint: allow(...) requires a '-- justification'", {}});
        }
        for (const std::string& r : a.rules) {
          if (r != "all" && KnownRules().count(r) == 0) {
            out->annotation_diagnostics.push_back(
                {path, a.line, 1, kRuleBadAnnotation,
                 "allow() names unknown rule '" + r + "'", {}});
          }
        }
        break;
      }
      case Annotation::kHot:
      case Annotation::kCold:
        if (!claimed[ai]) {
          out->annotation_diagnostics.push_back(
              {path, a.line, 1, kRuleBadAnnotation,
               "'hotlint: " + a.text + "' does not attach to a function definition", {}});
        }
        break;
    }
  }
}

AllowMap BuildAllowMap(const Scrubbed& s) {
  AllowMap allows;
  for (const Annotation& a : s.annotations) {
    if (a.kind == Annotation::kAllow && a.justified) {
      for (const std::string& r : a.rules) {
        allows.lines[a.line].insert(r);
      }
    }
  }
  return allows;
}

// Names of unordered_map/unordered_set variables with pointer key types, across
// the whole program (members are declared in headers, iterated in .cc files).
void CollectPtrKeyedContainers(const Scrubbed& s, std::set<std::string>* out) {
  std::string_view code = s.code;
  ForEachIdentifier(code, 0, code.size(), [&](size_t off, std::string_view ident) {
    if (ident != "unordered_map" && ident != "unordered_set") {
      return;
    }
    size_t lt = SkipSpace(code, off + ident.size());
    if (lt >= code.size() || code[lt] != '<') {
      return;
    }
    size_t past = MatchAngle(code, lt);
    if (past == std::string_view::npos) {
      return;
    }
    // Key type = first top-level template argument.
    size_t key_end = past - 1;
    int depth = 0;
    for (size_t j = lt + 1; j < past - 1; ++j) {
      char c = code[j];
      if (c == '<') {
        ++depth;
      } else if (c == '>') {
        --depth;
      } else if (c == ',' && depth == 0) {
        key_end = j;
        break;
      }
    }
    if (!ContainsChar(code, lt + 1, key_end, '*')) {
      return;
    }
    // Declared variable name: identifier right after the closing '>'.
    size_t n = SkipSpace(code, past);
    size_t ne = n;
    while (ne < code.size() && IsIdentChar(code[ne])) {
      ++ne;
    }
    if (ne > n) {
      size_t after = SkipSpace(code, ne);
      if (after < code.size() &&
          (code[after] == ';' || code[after] == '=' || code[after] == '{')) {
        out->insert(std::string(code.substr(n, ne - n)));
      }
    }
  });
}

}  // namespace

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kRules = {
      kRuleAlloc,    kRuleContainerGrowth, kRuleString, kRuleByValue,
      kRuleStdFunction, kRuleIostream,     kRuleLock,   kRuleRecursion,
      kRuleNondet,
  };
  return kRules;
}

std::string Diagnostic::ToString() const {
  return file + ":" + std::to_string(line) + ":" + std::to_string(col) + ": [" +
         rule + "] " + message;
}

Program BuildProgram(const std::vector<SourceFile>& files) {
  Program out;
  std::vector<Scrubbed> scrubbed;
  scrubbed.reserve(files.size());
  std::set<std::string> ptr_keyed;
  for (const SourceFile& f : files) {
    scrubbed.push_back(Scrub(f.content));
    CollectPtrKeyedContainers(scrubbed.back(), &ptr_keyed);
  }
  for (size_t i = 0; i < files.size(); ++i) {
    AllowMap allows = BuildAllowMap(scrubbed[i]);
    ScanFile(files[i].path, scrubbed[i], allows, ptr_keyed, &out);
  }
  return out;
}

}  // namespace ibus::hotlint
