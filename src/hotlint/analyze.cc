// hotlint analysis: resolves call sites against the function model (conservative
// union over same-named functions, so overloads and virtual overriders are all
// edges), propagates hot-path membership from the annotated roots, and turns the
// direct effect sets of hot functions into diagnostics carrying the root->site
// call chain. Also finds call-graph cycles reachable from a root (hot-recursion)
// and renders the Graphviz export.
#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/hotlint/hotlint.h"

namespace ibus::hotlint {
namespace {

struct Graph {
  // adjacency[i] = indices of functions function i may call.
  std::vector<std::vector<size_t>> adjacency;
  std::vector<bool> hot;
  // parent[i] = caller that first reached i in the BFS (SIZE_MAX for roots).
  std::vector<size_t> parent;
};

std::string_view LastComponent(std::string_view qualified) {
  size_t at = qualified.rfind("::");
  return at == std::string_view::npos ? qualified : qualified.substr(at + 2);
}

Graph BuildGraph(const Program& p) {
  Graph g;
  const size_t n = p.functions.size();
  g.adjacency.resize(n);
  g.hot.assign(n, false);
  g.parent.assign(n, SIZE_MAX);

  std::map<std::string_view, std::vector<size_t>> by_name;
  for (size_t i = 0; i < n; ++i) {
    by_name[p.functions[i].name].push_back(i);
  }

  for (size_t i = 0; i < n; ++i) {
    std::set<size_t> targets;
    for (const CallSite& c : p.functions[i].calls) {
      auto it = by_name.find(std::string_view(c.name));
      if (it == by_name.end()) {
        continue;  // external (std::, libc, out-of-scan) — no edge
      }
      // Overload filter: a candidate must accept the site's argument count,
      // and `obj.f()` through a non-this receiver is never a self-call.
      std::vector<size_t> by_arity;
      for (size_t t : it->second) {
        const Function& cand = p.functions[t];
        if (c.argc < cand.min_params || c.argc > cand.max_params) {
          continue;
        }
        if (t == i && c.object_receiver) {
          continue;
        }
        by_arity.push_back(t);
      }
      if (by_arity.empty()) {
        continue;
      }
      if (!c.qualifier.empty()) {
        if (c.qualifier == "std" || c.qualifier.rfind("std::", 0) == 0) {
          continue;
        }
        // Prefer candidates whose qualified name matches `...Last::name`; fall
        // back to the name union when the qualifier was only a namespace.
        std::string_view last = LastComponent(c.qualifier);
        std::string want = std::string(last) + "::" + c.name;
        std::vector<size_t> exact;
        for (size_t t : by_arity) {
          const std::string& q = p.functions[t].qualified_name;
          if (q == want ||
              (q.size() >= want.size() + 2 &&
               q.compare(q.size() - want.size() - 2, 2, "::") == 0 &&
               q.compare(q.size() - want.size(), want.size(), want) == 0)) {
            exact.push_back(t);
          }
        }
        if (!exact.empty()) {
          targets.insert(exact.begin(), exact.end());
          continue;
        }
      }
      targets.insert(by_arity.begin(), by_arity.end());
    }
    g.adjacency[i].assign(targets.begin(), targets.end());
  }

  // BFS from the hot roots; cold functions absorb the edge but go no further
  // and are never analyzed.
  std::deque<size_t> queue;
  for (size_t i = 0; i < n; ++i) {
    if (p.functions[i].hot_root && !p.functions[i].cold) {
      g.hot[i] = true;
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    size_t at = queue.front();
    queue.pop_front();
    for (size_t t : g.adjacency[at]) {
      if (g.hot[t] || p.functions[t].cold) {
        continue;
      }
      g.hot[t] = true;
      g.parent[t] = at;
      queue.push_back(t);
    }
  }
  return g;
}

std::string HopLabel(const Function& f) {
  return f.qualified_name + " (" + f.file + ":" + std::to_string(f.line) + ")";
}

std::vector<std::string> ChainTo(const Program& p, const Graph& g, size_t i) {
  std::vector<std::string> chain;
  size_t at = i;
  while (at != SIZE_MAX) {
    chain.push_back(HopLabel(p.functions[at]));
    at = g.parent[at];
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

// Functions on a cycle within the hot subgraph: self-edges, plus every member
// of a strongly connected component with more than one node (iterative Tarjan).
std::vector<bool> HotCycleMembers(const Program& p, const Graph& g) {
  const size_t n = p.functions.size();
  std::vector<bool> on_cycle(n, false);
  std::vector<int> index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  int next_index = 0;

  struct Frame {
    size_t v;
    size_t edge = 0;
  };
  for (size_t start = 0; start < n; ++start) {
    if (!g.hot[start] || index[start] != -1) {
      continue;
    }
    std::vector<Frame> call_stack{{start}};
    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      size_t v = f.v;
      if (f.edge == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (f.edge < g.adjacency[v].size()) {
        size_t w = g.adjacency[v][f.edge++];
        if (!g.hot[w]) {
          continue;
        }
        if (index[w] == -1) {
          call_stack.push_back({w});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      }
      if (descended) {
        continue;
      }
      if (low[v] == index[v]) {
        std::vector<size_t> scc;
        while (true) {
          size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc.push_back(w);
          if (w == v) {
            break;
          }
        }
        bool cyclic = scc.size() > 1;
        if (!cyclic) {
          for (size_t t : g.adjacency[v]) {
            if (t == v) {
              cyclic = true;
            }
          }
        }
        if (cyclic) {
          for (size_t w : scc) {
            on_cycle[w] = true;
          }
        }
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        Frame& up = call_stack.back();
        low[up.v] = std::min(low[up.v], low[v]);
      }
    }
  }
  return on_cycle;
}

}  // namespace

std::vector<Diagnostic> Analyze(const Program& p) {
  Graph g = BuildGraph(p);
  std::vector<Diagnostic> out = p.annotation_diagnostics;

  for (size_t i = 0; i < p.functions.size(); ++i) {
    if (!g.hot[i]) {
      continue;
    }
    const Function& fn = p.functions[i];
    std::vector<std::string> chain = ChainTo(p, g, i);
    for (const Effect& e : fn.effects) {
      Diagnostic d;
      d.file = fn.file;
      d.line = e.line;
      d.col = e.col;
      d.rule = e.rule;
      d.message = e.detail + " in hot function '" + fn.qualified_name + "'";
      d.chain = chain;
      out.push_back(std::move(d));
    }
  }

  std::vector<bool> on_cycle = HotCycleMembers(p, g);
  for (size_t i = 0; i < p.functions.size(); ++i) {
    if (!on_cycle[i]) {
      continue;
    }
    const Function& fn = p.functions[i];
    if (fn.sig_allows.count(kRuleRecursion) > 0 || fn.sig_allows.count("all") > 0) {
      continue;
    }
    // Name the cycle: this function plus the hot callees that sit on it.
    std::string cycle = fn.qualified_name;
    for (size_t t : g.adjacency[i]) {
      if (on_cycle[t]) {
        cycle += " -> " + p.functions[t].qualified_name;
        break;
      }
    }
    Diagnostic d;
    d.file = fn.file;
    d.line = fn.line;
    d.col = fn.col;
    d.rule = kRuleRecursion;
    d.message = "'" + fn.qualified_name +
                "' sits on a call-graph cycle reachable from a hot root (" + cycle +
                " -> ...)";
    d.chain = ChainTo(p, g, i);
    out.push_back(std::move(d));
  }

  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) {
      return a.file < b.file;
    }
    if (a.line != b.line) {
      return a.line < b.line;
    }
    if (a.col != b.col) {
      return a.col < b.col;
    }
    return a.rule < b.rule;
  });
  return out;
}

std::vector<std::string> HotRoots(const Program& p) {
  std::set<std::string> roots;
  for (const Function& f : p.functions) {
    if (f.hot_root) {
      roots.insert(f.qualified_name);
    }
  }
  return {roots.begin(), roots.end()};
}

std::string DotGraph(const Program& p) {
  Graph g = BuildGraph(p);
  // Merge overloads: one node per qualified name; hot if any overload is hot.
  std::map<std::string, bool> node_hot;
  std::map<std::string, bool> node_root;
  std::map<std::string, bool> node_cold;
  for (size_t i = 0; i < p.functions.size(); ++i) {
    const Function& f = p.functions[i];
    node_hot[f.qualified_name] = node_hot[f.qualified_name] || g.hot[i];
    node_root[f.qualified_name] = node_root[f.qualified_name] || f.hot_root;
    node_cold[f.qualified_name] = node_cold[f.qualified_name] || f.cold;
  }
  std::set<std::pair<std::string, std::string>> edges;
  for (size_t i = 0; i < p.functions.size(); ++i) {
    for (size_t t : g.adjacency[i]) {
      if (p.functions[i].qualified_name != p.functions[t].qualified_name) {
        edges.insert({p.functions[i].qualified_name, p.functions[t].qualified_name});
      }
    }
  }
  std::string out = "digraph hotlint {\n  rankdir=LR;\n  node [fontsize=10];\n";
  for (const auto& [name, hot] : node_hot) {
    out += "  \"" + name + "\" [";
    if (node_root[name]) {
      out += "shape=box,";
    }
    if (node_cold[name]) {
      out += "style=dashed,";
    } else if (hot) {
      out += "style=filled,fillcolor=lightcoral,";
    }
    out += "];\n";
  }
  for (const auto& [from, to] : edges) {
    out += "  \"" + from + "\" -> \"" + to + "\";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace ibus::hotlint
