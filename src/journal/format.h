// On-device block format of the write-ahead ledger. See docs/JOURNAL.md.
//
// The journal writes *blocks* to its block device (a StableStore record each): one
// block per group commit. A block carries a fixed little-endian header followed by
// `count` records, each with its own fixed header:
//
//   u32 magic "IBJL" | u32 segment | u64 first_lsn | u32 count
//   count x ( u32 payload_len | u32 crc32(payload) | payload )
//
// Record LSNs inside a block are dense: first_lsn, first_lsn + 1, ... Blocks are
// the atomicity unit — a block that fails validation anywhere (magic, header,
// length, CRC) is rejected whole, so replay stops at the last record of the last
// intact block and never skips over damage.
#ifndef SRC_JOURNAL_FORMAT_H_
#define SRC_JOURNAL_FORMAT_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace ibus::journal {

// Log sequence number: dense, monotonic, assigned at Append, never reused.
using Lsn = uint64_t;

inline constexpr uint32_t kBlockMagic = 0x4C4A4249;  // "IBJL" read as little-endian u32
inline constexpr size_t kBlockHeaderBytes = 4 + 4 + 8 + 4;
inline constexpr size_t kRecordHeaderBytes = 4 + 4;

// One journal record as seen by readers.
struct Record {
  Lsn lsn = 0;
  uint32_t segment = 0;
  Bytes payload;
};

struct BlockHeader {
  uint32_t segment = 0;
  Lsn first_lsn = 0;
  uint32_t count = 0;
};

// Encodes one block from `payloads` (their LSNs become first_lsn, first_lsn+1, ...).
Bytes EncodeBlock(uint32_t segment, Lsn first_lsn, const std::vector<Bytes>& payloads);

// Decodes one device record. On success fills *header and appends the block's
// records to *out. Any damage — bad magic, short header, truncated record,
// CRC mismatch, trailing garbage — returns DataLoss and appends nothing.
Status DecodeBlock(const Bytes& block, BlockHeader* header, std::vector<Record>* out);

}  // namespace ibus::journal

#endif  // SRC_JOURNAL_FORMAT_H_
