// Crash/recovery scenario family shared by `busjournal --demo`, the journal tests,
// and sim_replay_check scenarios 7-9. Each scenario drives certified traffic over a
// journaled ledger, kills components mid-flight, recovers from the surviving device,
// and returns a deterministic text trace (deliveries, recovery health events,
// component stats, and the journal verify report) whose hash must be bit-identical
// across replays of the same seed.
#ifndef SRC_JOURNAL_DEMO_H_
#define SRC_JOURNAL_DEMO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/stable_store.h"

namespace ibus::journal {

// Daemon crash mid-retire: a certified publisher (group-commit journal on `device`)
// loses its daemon, client, and journal handle while retires are in flight; the
// device survives, the publisher's host reboots, and recovery re-arms what the
// ledger still holds. The surviving consumer dedups redeliveries, so the scenario
// also exercises the raced-retire idempotency fix. `device` must be empty.
std::vector<std::string> RunDaemonCrashScenario(uint64_t seed, StableStore* device);

// Router crash with queued certified WAN traffic: both WAN routers die while
// certified messages and acks are queued across them; the publisher crashes and
// recovers from its journal during the outage, the routers reconnect, and the
// retransmit machinery drains everything to the far LAN.
std::vector<std::string> RunRouterCrashScenario(uint64_t seed, StableStore* device);

// Ledger-tail truncation fuzzing: a run leaves a journal with pending certified
// messages; the device tail is then truncated mid-block at seed-derived offsets
// (three cuts), each reopened journal must stop at the last valid LSN and repair,
// and the final cut is recovered on the bus end-to-end.
std::vector<std::string> RunTailTruncationScenario(uint64_t seed);

}  // namespace ibus::journal

#endif  // SRC_JOURNAL_DEMO_H_
