#include "src/journal/demo.h"

#include <memory>

#include "src/bus/certified.h"
#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/common/rng.h"
#include "src/journal/journal.h"
#include "src/router/router.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/telemetry/health.h"

namespace ibus::journal {

namespace {

std::string TraceLine(SimTime t, const std::string& who, const Message& m) {
  return "t=" + std::to_string(t) + " " + who + " subj=" + m.subject +
         " payload=" + ToString(m.payload);
}

// Group-commit config shared by the scenarios: small blocks and segments so a short
// run still exercises batching, rotation, and compaction.
JournalConfig ScenarioJournalConfig(Simulator* sim) {
  JournalConfig jc;
  jc.flush_max_bytes = 192;
  jc.flush_deadline_us = 2 * kMillisecond;
  jc.segment_max_bytes = 512;
  jc.sim = sim;
  return jc;
}

// Subscribes `bus` to the health plane and appends every event to the trace —
// the recovery announcements are part of the replay-hashed output.
Status WatchHealth(BusClient* bus, Simulator* sim, std::vector<std::string>* trace) {
  auto sub = bus->Subscribe(telemetry::kHealthPattern, [sim, trace](const Message& m) {
    auto event = telemetry::HealthEvent::Unmarshal(m.payload);
    trace->push_back("t=" + std::to_string(sim->Now()) + " health " +
                     (event.ok() ? event->ToString() : "unparseable"));
  });
  return sub.ok() ? OkStatus() : sub.status();
}

void TracePublisherStats(const CertifiedPublisher& pub, const CertifiedSubscriber* sub,
                         std::vector<std::string>* trace) {
  trace->push_back("publisher published=" + std::to_string(pub.stats().published) +
                   " retransmits=" + std::to_string(pub.stats().retransmits) +
                   " retired=" + std::to_string(pub.stats().retired) +
                   " recovered=" + std::to_string(pub.stats().recovered) +
                   " pending=" + std::to_string(pub.pending()));
  if (sub != nullptr) {
    trace->push_back("subscriber delivered=" + std::to_string(sub->stats().delivered) +
                     " dup_dropped=" + std::to_string(sub->stats().duplicates_dropped) +
                     " acks=" + std::to_string(sub->stats().acks_sent));
  }
}

void TraceDevice(const StableStore& device, std::vector<std::string>* trace) {
  trace->push_back("device blocks=" + std::to_string(device.NextSeq()) +
                   " syncs=" + std::to_string(device.syncs()));
  trace->push_back(VerifyDevice(device).ToString());
}

}  // namespace

std::vector<std::string> RunDaemonCrashScenario(uint64_t seed, StableStore* device) {
  std::vector<std::string> trace;
  auto fail = [&trace](const std::string& what, const Status& s) {
    trace.clear();
    trace.push_back("error: " + what + ": " + s.ToString());
    return trace;
  };

  Simulator sim;
  Network net(&sim, seed);
  SegmentId lan = net.AddSegment();
  HostId h_pub = net.AddHost("producer-host", lan);
  HostId h_con = net.AddHost("consumer-host", lan);

  // The consumer side survives the whole scenario: its dedup state is what turns
  // post-recovery retransmits into exactly-once application deliveries.
  auto daemon_con = BusDaemon::Start(&net, h_con, BusConfig());
  if (!daemon_con.ok()) {
    return fail("consumer daemon", daemon_con.status());
  }
  auto con_bus = BusClient::Connect(&net, h_con, "consumer");
  if (!con_bus.ok()) {
    return fail("consumer bus", con_bus.status());
  }
  auto sub = CertifiedSubscriber::Create(
      con_bus->get(), "orders.>", "consumer",
      [&](const Message& m) { trace.push_back(TraceLine(sim.Now(), "consumer", m)); });
  if (!sub.ok()) {
    return fail("certified subscriber", sub.status());
  }
  Status watch = WatchHealth(con_bus->get(), &sim, &trace);
  if (!watch.ok()) {
    return fail("health watch", watch);
  }

  // --- Phase 1: journaled certified traffic, then a daemon crash mid-retire ------
  auto daemon_pub = BusDaemon::Start(&net, h_pub, BusConfig());
  if (!daemon_pub.ok()) {
    return fail("producer daemon", daemon_pub.status());
  }
  sim.RunFor(200 * kMillisecond);  // discovery handshake before faults
  FaultPlan faults;
  faults.drop_prob = 0.05;
  faults.jitter_us = 300;
  net.SetFaultPlan(lan, faults);

  auto pub_bus = BusClient::Connect(&net, h_pub, "producer");
  if (!pub_bus.ok()) {
    return fail("producer bus", pub_bus.status());
  }
  auto ledger = Journal::Open(device, ScenarioJournalConfig(&sim));
  if (!ledger.ok()) {
    return fail("journal open", ledger.status());
  }
  auto pub = CertifiedPublisher::Create(pub_bus->get(), ledger->get(), "orders-ledger");
  if (!pub.ok()) {
    return fail("certified publisher", pub.status());
  }
  for (int i = 0; i < 6; ++i) {
    Status s = (*pub)->Publish("orders.new", ToBytes("order" + std::to_string(i)));
    if (!s.ok()) {
      return fail("publish", s);
    }
    if (i < 5) {
      sim.RunFor(30 * kMillisecond);
    }
  }
  // Just long enough for the last publishes' acks to be in flight: the crash lands
  // mid-retire, with retire records racing the group-commit deadline.
  sim.RunFor(3 * kMillisecond);
  trace.push_back("phase1 published=" + std::to_string((*pub)->stats().published) +
                  " retired=" + std::to_string((*pub)->stats().retired) +
                  " pending=" + std::to_string((*pub)->pending()));

  // Crash: publisher, journal handle, client, and daemon all die. Only the block
  // device (the "disk") survives; buffered-but-unflushed ledger tail is lost.
  pub->reset();
  ledger->reset();
  pub_bus->reset();
  daemon_pub->reset();
  trace.push_back("crash blocks=" + std::to_string(device->NextSeq()) +
                  " syncs=" + std::to_string(device->syncs()));
  sim.RunFor(300 * kMillisecond);

  // --- Phase 2: reboot, replay the ledger, re-arm, keep publishing ---------------
  auto daemon_pub2 = BusDaemon::Start(&net, h_pub, BusConfig());
  if (!daemon_pub2.ok()) {
    return fail("producer daemon restart", daemon_pub2.status());
  }
  sim.RunFor(200 * kMillisecond);
  auto pub_bus2 = BusClient::Connect(&net, h_pub, "producer");
  if (!pub_bus2.ok()) {
    return fail("producer bus restart", pub_bus2.status());
  }
  auto ledger2 = Journal::Open(device, ScenarioJournalConfig(&sim));
  if (!ledger2.ok()) {
    return fail("journal reopen", ledger2.status());
  }
  trace.push_back("reopen recovered_records=" +
                  std::to_string((*ledger2)->stats().recovered_records) + " torn_tail=" +
                  std::to_string((*ledger2)->stats().torn_tail_blocks) + " next_lsn=" +
                  std::to_string((*ledger2)->next_lsn()));
  auto pub2 = CertifiedPublisher::Create(pub_bus2->get(), ledger2->get(), "orders-ledger");
  if (!pub2.ok()) {
    return fail("certified publisher restart", pub2.status());
  }
  Status rec = (*pub2)->Recover();
  if (!rec.ok()) {
    return fail("recover", rec);
  }
  for (int i = 6; i < 8; ++i) {
    Status s = (*pub2)->Publish("orders.new", ToBytes("order" + std::to_string(i)));
    if (!s.ok()) {
      return fail("publish after recovery", s);
    }
    sim.RunFor(30 * kMillisecond);
  }
  sim.RunFor(6 * kSecond);

  TracePublisherStats(**pub2, sub->get(), &trace);
  TraceDevice(*device, &trace);
  return trace;
}

std::vector<std::string> RunRouterCrashScenario(uint64_t seed, StableStore* device) {
  std::vector<std::string> trace;
  auto fail = [&trace](const std::string& what, const Status& s) {
    trace.clear();
    trace.push_back("error: " + what + ": " + s.ToString());
    return trace;
  };

  Simulator sim;
  Network net(&sim, seed);
  SegmentId lan_a = net.AddSegment();
  SegmentId lan_b = net.AddSegment();
  std::vector<HostId> a_hosts, b_hosts;
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  for (int i = 0; i < 2; ++i) {
    a_hosts.push_back(net.AddHost("a" + std::to_string(i), lan_a));
    b_hosts.push_back(net.AddHost("b" + std::to_string(i), lan_b));
  }
  for (HostId h : a_hosts) {
    auto d = BusDaemon::Start(&net, h, BusConfig());
    if (!d.ok()) {
      return fail("daemon a", d.status());
    }
    daemons.push_back(d.take());
  }
  for (HostId h : b_hosts) {
    auto d = BusDaemon::Start(&net, h, BusConfig());
    if (!d.ok()) {
      return fail("daemon b", d.status());
    }
    daemons.push_back(d.take());
  }

  auto router_bus_a = BusClient::Connect(&net, a_hosts[0], "_router:A");
  auto router_bus_b = BusClient::Connect(&net, b_hosts[0], "_router:B");
  if (!router_bus_a.ok() || !router_bus_b.ok()) {
    return fail("router bus",
                router_bus_a.ok() ? router_bus_b.status() : router_bus_a.status());
  }
  auto ra = InfoRouter::Listen(router_bus_a->get(), "_router:A", 8700);
  if (!ra.ok()) {
    return fail("router listen", ra.status());
  }
  sim.RunFor(50 * kMillisecond);
  auto rb = InfoRouter::Connect(router_bus_b->get(), "_router:B", a_hosts[0], 8700);
  if (!rb.ok()) {
    return fail("router connect", rb.status());
  }
  sim.RunFor(200 * kMillisecond);

  auto con_bus = BusClient::Connect(&net, b_hosts[1], "consumer");
  if (!con_bus.ok()) {
    return fail("consumer bus", con_bus.status());
  }
  auto sub = CertifiedSubscriber::Create(
      con_bus->get(), "orders.>", "consumer",
      [&](const Message& m) { trace.push_back(TraceLine(sim.Now(), "consumer", m)); });
  if (!sub.ok()) {
    return fail("certified subscriber", sub.status());
  }
  // The recovery announcement happens while the WAN is down, so watch it on the
  // publisher's own LAN.
  auto monitor_bus = BusClient::Connect(&net, a_hosts[0], "monitor");
  if (!monitor_bus.ok()) {
    return fail("monitor bus", monitor_bus.status());
  }
  Status watch = WatchHealth(monitor_bus->get(), &sim, &trace);
  if (!watch.ok()) {
    return fail("health watch", watch);
  }
  sim.RunFor(500 * kMillisecond);  // control plane (subs, adverts) crosses the WAN

  FaultPlan faults;
  faults.drop_prob = 0.05;
  faults.jitter_us = 300;
  net.SetFaultPlan(lan_a, faults);
  net.SetFaultPlan(lan_b, faults);

  auto pub_bus = BusClient::Connect(&net, a_hosts[1], "producer");
  if (!pub_bus.ok()) {
    return fail("producer bus", pub_bus.status());
  }
  auto ledger = Journal::Open(device, ScenarioJournalConfig(&sim));
  if (!ledger.ok()) {
    return fail("journal open", ledger.status());
  }
  auto pub = CertifiedPublisher::Create(pub_bus->get(), ledger->get(), "orders-ledger");
  if (!pub.ok()) {
    return fail("certified publisher", pub.status());
  }
  for (int i = 0; i < 4; ++i) {
    Status s = (*pub)->Publish("orders.new", ToBytes("order" + std::to_string(i)));
    if (!s.ok()) {
      return fail("publish", s);
    }
    sim.RunFor(40 * kMillisecond);
  }

  // Both routers die with certified traffic and acks queued across the WAN.
  rb->reset();
  ra->reset();
  router_bus_b->reset();
  router_bus_a->reset();
  trace.push_back("routers crashed at t=" + std::to_string(sim.Now()));
  for (int i = 4; i < 8; ++i) {
    Status s = (*pub)->Publish("orders.new", ToBytes("order" + std::to_string(i)));
    if (!s.ok()) {
      return fail("publish during outage", s);
    }
    sim.RunFor(40 * kMillisecond);
  }

  // The publisher crashes during the outage and recovers from its journal; the
  // pending WAN-bound messages ride on the recovered retransmit machinery.
  pub->reset();
  ledger->reset();
  pub_bus->reset();
  trace.push_back("publisher crashed blocks=" + std::to_string(device->NextSeq()) +
                  " syncs=" + std::to_string(device->syncs()));
  sim.RunFor(400 * kMillisecond);
  auto pub_bus2 = BusClient::Connect(&net, a_hosts[1], "producer");
  if (!pub_bus2.ok()) {
    return fail("producer bus restart", pub_bus2.status());
  }
  auto ledger2 = Journal::Open(device, ScenarioJournalConfig(&sim));
  if (!ledger2.ok()) {
    return fail("journal reopen", ledger2.status());
  }
  trace.push_back("reopen recovered_records=" +
                  std::to_string((*ledger2)->stats().recovered_records) + " torn_tail=" +
                  std::to_string((*ledger2)->stats().torn_tail_blocks) + " next_lsn=" +
                  std::to_string((*ledger2)->next_lsn()));
  auto pub2 = CertifiedPublisher::Create(pub_bus2->get(), ledger2->get(), "orders-ledger");
  if (!pub2.ok()) {
    return fail("certified publisher restart", pub2.status());
  }
  Status rec = (*pub2)->Recover();
  if (!rec.ok()) {
    return fail("recover", rec);
  }
  sim.RunFor(200 * kMillisecond);

  // Routers come back on the same port; retries finally drain across the WAN.
  auto router_bus_a2 = BusClient::Connect(&net, a_hosts[0], "_router:A");
  auto router_bus_b2 = BusClient::Connect(&net, b_hosts[0], "_router:B");
  if (!router_bus_a2.ok() || !router_bus_b2.ok()) {
    return fail("router bus restart",
                router_bus_a2.ok() ? router_bus_b2.status() : router_bus_a2.status());
  }
  auto ra2 = InfoRouter::Listen(router_bus_a2->get(), "_router:A", 8700);
  if (!ra2.ok()) {
    return fail("router relisten", ra2.status());
  }
  sim.RunFor(50 * kMillisecond);
  auto rb2 = InfoRouter::Connect(router_bus_b2->get(), "_router:B", a_hosts[0], 8700);
  if (!rb2.ok()) {
    return fail("router reconnect", rb2.status());
  }
  trace.push_back("routers restarted at t=" + std::to_string(sim.Now()));
  sim.RunFor(8 * kSecond);

  TracePublisherStats(**pub2, sub->get(), &trace);
  TraceDevice(*device, &trace);
  return trace;
}

std::vector<std::string> RunTailTruncationScenario(uint64_t seed) {
  std::vector<std::string> trace;
  auto fail = [&trace](const std::string& what, const Status& s) {
    trace.clear();
    trace.push_back("error: " + what + ": " + s.ToString());
    return trace;
  };

  Simulator sim;
  Network net(&sim, seed);
  SegmentId lan = net.AddSegment();
  HostId h_pub = net.AddHost("producer-host", lan);
  HostId h_con = net.AddHost("consumer-host", lan);
  auto daemon_pub = BusDaemon::Start(&net, h_pub, BusConfig());
  auto daemon_con = BusDaemon::Start(&net, h_con, BusConfig());
  if (!daemon_pub.ok() || !daemon_con.ok()) {
    return fail("daemon", daemon_pub.ok() ? daemon_con.status() : daemon_pub.status());
  }
  sim.RunFor(200 * kMillisecond);
  FaultPlan faults;
  faults.drop_prob = 0.05;
  faults.jitter_us = 300;
  net.SetFaultPlan(lan, faults);

  // --- Phase 1: build up a journal with retired history and a pending tail -------
  auto con_bus = BusClient::Connect(&net, h_con, "consumer");
  if (!con_bus.ok()) {
    return fail("consumer bus", con_bus.status());
  }
  auto sub = CertifiedSubscriber::Create(
      con_bus->get(), "orders.>", "consumer",
      [&](const Message& m) { trace.push_back(TraceLine(sim.Now(), "consumer", m)); });
  if (!sub.ok()) {
    return fail("certified subscriber", sub.status());
  }
  auto pub_bus = BusClient::Connect(&net, h_pub, "producer");
  if (!pub_bus.ok()) {
    return fail("producer bus", pub_bus.status());
  }
  MemoryStableStore pristine;
  auto ledger = Journal::Open(&pristine, ScenarioJournalConfig(&sim));
  if (!ledger.ok()) {
    return fail("journal open", ledger.status());
  }
  auto pub = CertifiedPublisher::Create(pub_bus->get(), ledger->get(), "orders-ledger");
  if (!pub.ok()) {
    return fail("certified publisher", pub.status());
  }
  for (int i = 0; i < 8; ++i) {
    Status s = (*pub)->Publish("orders.new", ToBytes("order" + std::to_string(i)));
    if (!s.ok()) {
      return fail("publish", s);
    }
    sim.RunFor(25 * kMillisecond);
  }
  trace.push_back("phase1 published=" + std::to_string((*pub)->stats().published) +
                  " retired=" + std::to_string((*pub)->stats().retired) +
                  " pending=" + std::to_string((*pub)->pending()) +
                  " blocks=" + std::to_string(pristine.NextSeq()));
  // Everything crashes — including the consumer, whose dedup state is allowed to
  // die with it: the gated property here is determinism of the recovery, not
  // exactly-once across a torn tail (certified delivery is at-least-once).
  pub->reset();
  ledger->reset();
  pub_bus->reset();
  sub->reset();
  con_bus->reset();

  // --- Tail fuzzing: three seed-derived mid-block cuts of the device tail --------
  auto blocks = pristine.ReadFrom(0);
  if (!blocks.ok() || blocks->empty()) {
    return fail("device read", blocks.ok() ? DataLoss("no blocks flushed") : blocks.status());
  }
  std::vector<std::unique_ptr<MemoryStableStore>> devices;
  std::unique_ptr<Journal> recovered;
  for (int k = 0; k < 3; ++k) {
    Rng rng(seed * 31 + 1700 + static_cast<uint64_t>(k));
    const Bytes& last = blocks->back();
    const size_t cut = 1 + static_cast<size_t>(rng.NextBelow(last.size() - 1));
    auto device = std::make_unique<MemoryStableStore>();
    for (size_t b = 0; b + 1 < blocks->size(); ++b) {
      (void)device->Append((*blocks)[b]);
    }
    (void)device->Append(Bytes(last.begin(), last.begin() + static_cast<ptrdiff_t>(cut)));
    auto reopened = Journal::Open(device.get(), ScenarioJournalConfig(&sim));
    if (!reopened.ok()) {
      return fail("journal reopen after cut", reopened.status());
    }
    trace.push_back("fuzz k=" + std::to_string(k) + " cut=" + std::to_string(cut) +
                    " recovered_records=" +
                    std::to_string((*reopened)->stats().recovered_records) + " torn_tail=" +
                    std::to_string((*reopened)->stats().torn_tail_blocks) + " next_lsn=" +
                    std::to_string((*reopened)->next_lsn()));
    trace.push_back("fuzz k=" + std::to_string(k) + " " + VerifyDevice(*device).ToString());
    devices.push_back(std::move(device));
    recovered = reopened.take();  // keep the last cut's journal for live recovery
  }

  // --- Live recovery on the bus from the last truncated device -------------------
  auto con_bus2 = BusClient::Connect(&net, h_con, "consumer");
  if (!con_bus2.ok()) {
    return fail("consumer bus restart", con_bus2.status());
  }
  auto sub2 = CertifiedSubscriber::Create(
      con_bus2->get(), "orders.>", "consumer",
      [&](const Message& m) { trace.push_back(TraceLine(sim.Now(), "consumer2", m)); });
  if (!sub2.ok()) {
    return fail("certified subscriber restart", sub2.status());
  }
  Status watch = WatchHealth(con_bus2->get(), &sim, &trace);
  if (!watch.ok()) {
    return fail("health watch", watch);
  }
  auto pub_bus2 = BusClient::Connect(&net, h_pub, "producer");
  if (!pub_bus2.ok()) {
    return fail("producer bus restart", pub_bus2.status());
  }
  auto pub2 = CertifiedPublisher::Create(pub_bus2->get(), recovered.get(), "orders-ledger");
  if (!pub2.ok()) {
    return fail("certified publisher restart", pub2.status());
  }
  Status rec = (*pub2)->Recover();
  if (!rec.ok()) {
    return fail("recover", rec);
  }
  Status s = (*pub2)->Publish("orders.new", ToBytes("order8"));
  if (!s.ok()) {
    return fail("publish after recovery", s);
  }
  sim.RunFor(5 * kSecond);

  TracePublisherStats(**pub2, sub2->get(), &trace);
  TraceDevice(*devices.back(), &trace);
  return trace;
}

}  // namespace ibus::journal
