// Durable write-ahead ledger: append-only, checksummed, with monotonic LSNs, group
// commit, segment rotation, and compaction. Layers on StableStore as its block
// device — one flushed block per device record — so the same code runs against the
// deterministic in-sim MemoryStableStore (replay hashes stay stable) and the
// real-file FileStableStore used by tools/busjournal. See docs/JOURNAL.md.
//
// Durability model: Append assigns an LSN immediately and buffers the payload.
// A flush encodes the buffer into one block, appends it to the device, and issues
// the device Sync barrier; the record counts as *durable* one device WriteLatency
// later (or immediately when no simulator is wired — the tool path). Callers that
// must wait for durability before acting (certified delivery: "logged to
// non-volatile storage before it is sent") register a WhenDurable callback.
#ifndef SRC_JOURNAL_JOURNAL_H_
#define SRC_JOURNAL_JOURNAL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/journal/format.h"
#include "src/sim/simulator.h"
#include "src/sim/stable_store.h"
#include "src/telemetry/metrics.h"

namespace ibus::journal {

struct JournalConfig {
  // Group commit: buffered appends flush as one block once the buffered payload
  // bytes reach flush_max_bytes, or after flush_deadline_us, whichever comes
  // first. A deadline of 0 — or no simulator — selects write-through: every
  // append flushes its own block immediately (the legacy StableStore timing).
  uint64_t flush_max_bytes = 4096;
  SimTime flush_deadline_us = 0;
  // A new segment opens once the current one holds at least this many block
  // bytes. Compaction retires whole segments only, keeping LSNs dense.
  uint64_t segment_max_bytes = 64 * 1024;
  // Appends larger than this are rejected; an oversized-but-legal record closes
  // the current segment instead of splitting (records never span blocks).
  uint64_t max_record_bytes = 16 * 1024 * 1024;
  // Required for deadline flushes and simulated durability latency. Null means
  // the tool path: flushes are synchronous and records are durable immediately.
  Simulator* sim = nullptr;
  // Optional registry for the journal.* counters and the commit-latency histogram.
  telemetry::MetricsRegistry* metrics = nullptr;
};

struct JournalStats {
  uint64_t appends = 0;
  uint64_t flushes = 0;       // blocks written to the device
  uint64_t rotations = 0;     // segments closed
  uint64_t compactions = 0;   // Compact calls that dropped at least one segment
  uint64_t recovered_records = 0;  // live records found by the Open scan
  uint64_t torn_tail_blocks = 0;   // invalid device blocks discarded by Open
};

// Metric names registered when JournalConfig.metrics is set.
inline constexpr char kMetricJournalAppends[] = "journal.appends";
inline constexpr char kMetricJournalFlushes[] = "journal.flushes";
inline constexpr char kMetricJournalRotations[] = "journal.rotations";
inline constexpr char kMetricJournalCompactions[] = "journal.compactions";
inline constexpr char kMetricJournalRecovered[] = "journal.recovered_records";
inline constexpr char kMetricJournalTornTail[] = "journal.torn_tail";
inline constexpr char kMetricJournalCommitLatency[] = "journal.commit_latency_us";

class Journal {
 public:
  // Scans the device, validates every block (magic, header continuity, CRCs),
  // and replays the intact prefix. A torn or corrupt tail is counted, physically
  // discarded via StableStore::TruncateFrom, and replay stops at the last valid
  // LSN — damage is never skipped over.
  static Result<std::unique_ptr<Journal>> Open(StableStore* device,
                                               const JournalConfig& config = {});
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Assigns the next LSN and buffers the payload per the flush policy.
  Result<Lsn> Append(const Bytes& payload);

  // Runs `fn` once every record up to and including `lsn` is durable; fires
  // immediately when it already is. Callbacks fire in LSN order.
  void WhenDurable(Lsn lsn, std::function<void()> fn);

  // Forces a flush of buffered appends plus a device barrier; everything
  // appended so far is durable when Sync returns.
  Status Sync();

  // Retires history: drops every *closed* segment whose records all have
  // lsn < retire_below. Only whole leading segments go, so surviving LSNs stay
  // dense and block headers still chain. Flushes buffered appends first.
  Status Compact(Lsn retire_below);

  // All live records in LSN order — flushed and still-buffered. Recovery/tool
  // path; cost is proportional to the journal size.
  std::vector<Record> Records() const;

  Lsn first_lsn() const { return first_lsn_; }
  Lsn next_lsn() const { return next_lsn_; }
  // Exclusive durability horizon: every lsn < durable_up_to() is durable.
  Lsn durable_up_to() const { return durable_up_to_; }

  const JournalStats& stats() const { return stats_; }
  StableStore* device() { return device_; }

 private:
  struct BlockInfo {
    uint64_t device_seq = 0;
    uint32_t segment = 0;
    Lsn first_lsn = 0;
    uint32_t count = 0;
    uint64_t bytes = 0;
  };
  struct Buffered {
    Lsn lsn = 0;
    Bytes payload;
    SimTime appended_at = 0;
  };

  Journal(StableStore* device, const JournalConfig& config);

  Status ScanDevice();
  Status Flush();
  void ScheduleDeadlineFlush();
  void AdvanceDurable(Lsn up_to);

  StableStore* device_;
  JournalConfig config_;

  // Live flushed records plus their device-block index, in order.
  std::vector<Record> records_;
  std::vector<BlockInfo> blocks_;
  std::vector<Buffered> buffered_;
  uint64_t buffered_bytes_ = 0;
  bool flush_scheduled_ = false;

  uint32_t current_segment_ = 0;
  uint64_t current_segment_bytes_ = 0;
  Lsn first_lsn_ = 0;
  Lsn next_lsn_ = 0;
  Lsn durable_up_to_ = 0;

  // Durability bookkeeping: appended-at times of flushed-but-not-yet-durable
  // records (for the commit-latency histogram) and ordered waiters.
  std::vector<Buffered> in_flight_;
  std::multimap<Lsn, std::function<void()>> waiters_;

  JournalStats stats_;
  telemetry::Counter* m_appends_ = nullptr;
  telemetry::Counter* m_flushes_ = nullptr;
  telemetry::Counter* m_rotations_ = nullptr;
  telemetry::Counter* m_compactions_ = nullptr;
  telemetry::Counter* m_recovered_ = nullptr;
  telemetry::Counter* m_torn_tail_ = nullptr;
  telemetry::LatencyHistogram* m_commit_latency_ = nullptr;

  // Guards scheduled flush/durability callbacks against outliving the journal.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

// Read-only integrity scan of a journal device: block-by-block magic/CRC checks,
// LSN continuity, segment monotonicity. Shared by `busjournal --verify` and the
// scenario assertions; never mutates the device.
struct VerifyReport {
  uint64_t blocks = 0;
  uint64_t records = 0;
  uint64_t segments = 0;
  uint64_t bytes = 0;
  Lsn first_lsn = 0;
  Lsn next_lsn = 0;
  std::vector<std::string> problems;
  bool clean() const { return problems.empty(); }
  // Deterministic one-line summary: "journal verify: ... clean|N problem(s)".
  std::string ToString() const;
};

VerifyReport VerifyDevice(const StableStore& device);

}  // namespace ibus::journal

#endif  // SRC_JOURNAL_JOURNAL_H_
