#include "src/journal/format.h"

#include "src/wire/wire.h"

namespace ibus::journal {

// wirecheck: codec(journal_block, version=0)
// hotlint: cold -- group-commit boundary: encodes one block per flush, not per message
Bytes EncodeBlock(uint32_t segment, Lsn first_lsn, const std::vector<Bytes>& payloads) {
  WireWriter w;
  w.PutU32(kBlockMagic);
  w.PutU32(segment);
  w.PutU64(first_lsn);
  w.PutU32(static_cast<uint32_t>(payloads.size()));
  for (const Bytes& p : payloads) {
    w.PutU32(static_cast<uint32_t>(p.size()));
    w.PutU32(Crc32(p));
    w.PutRaw(p);
  }
  return w.Take();
}

// wirecheck: codec(journal_block, version=0)
// hotlint: cold -- recovery/verify scan path: runs at open and in tools, never per message
Status DecodeBlock(const Bytes& block, BlockHeader* header, std::vector<Record>* out) {
  WireReader r(block);
  auto magic = r.ReadU32();
  if (!magic.ok() || *magic != kBlockMagic) {
    return DataLoss("journal block: bad magic");
  }
  auto segment = r.ReadU32();
  auto first_lsn = r.ReadU64();
  auto count = r.ReadU32();
  if (!segment.ok() || !first_lsn.ok() || !count.ok()) {
    return DataLoss("journal block: truncated header");
  }
  // Every record costs at least its 8-byte header, so a plausible count can
  // never exceed the bytes left in the block.
  if (*count > r.remaining()) {
    return DataLoss("journal block: implausible record count");
  }
  std::vector<Record> records;
  records.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto len = r.ReadU32();
    auto crc = r.ReadU32();
    if (!len.ok() || !crc.ok()) {
      return DataLoss("journal block: truncated record header");
    }
    if (*len > r.remaining()) {
      return DataLoss("journal block: record length exceeds block");
    }
    auto payload = r.ReadRaw(*len);
    if (!payload.ok()) {
      return DataLoss("journal block: truncated record payload");
    }
    if (Crc32(*payload) != *crc) {
      return DataLoss("journal block: record checksum mismatch");
    }
    Record rec;
    rec.lsn = *first_lsn + i;
    rec.segment = *segment;
    rec.payload = std::move(*payload);
    records.push_back(std::move(rec));
  }
  if (!r.AtEnd()) {
    return DataLoss("journal block: trailing garbage");
  }
  header->segment = *segment;
  header->first_lsn = *first_lsn;
  header->count = *count;
  out->insert(out->end(), std::make_move_iterator(records.begin()),
              std::make_move_iterator(records.end()));
  return OkStatus();
}

}  // namespace ibus::journal
