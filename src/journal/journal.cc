#include "src/journal/journal.h"

#include <algorithm>

namespace ibus::journal {

Journal::Journal(StableStore* device, const JournalConfig& config)
    : device_(device), config_(config) {
  if (config_.metrics != nullptr) {
    m_appends_ = config_.metrics->GetCounter(kMetricJournalAppends);
    m_flushes_ = config_.metrics->GetCounter(kMetricJournalFlushes);
    m_rotations_ = config_.metrics->GetCounter(kMetricJournalRotations);
    m_compactions_ = config_.metrics->GetCounter(kMetricJournalCompactions);
    m_recovered_ = config_.metrics->GetCounter(kMetricJournalRecovered);
    m_torn_tail_ = config_.metrics->GetCounter(kMetricJournalTornTail);
    m_commit_latency_ = config_.metrics->GetHistogram(kMetricJournalCommitLatency);
  }
}

Journal::~Journal() { *alive_ = false; }

Result<std::unique_ptr<Journal>> Journal::Open(StableStore* device,
                                               const JournalConfig& config) {
  auto j = std::unique_ptr<Journal>(new Journal(device, config));
  IBUS_RETURN_IF_ERROR(j->ScanDevice());
  return j;
}

// hotlint: cold -- recovery scan: runs once per open, proportional to journal size
Status Journal::ScanDevice() {
  auto blocks = device_->ReadFrom(0);
  if (!blocks.ok()) {
    return blocks.status();
  }
  const uint64_t first_seq = device_->NextSeq() - blocks->size();
  size_t valid = 0;
  for (; valid < blocks->size(); ++valid) {
    const Bytes& raw = (*blocks)[valid];
    BlockHeader h;
    std::vector<Record> recs;
    Status s = DecodeBlock(raw, &h, &recs);
    // Past the first block the header must also chain: dense LSNs, monotonic
    // segment ids. A break there is damage too — stop, never skip.
    bool ok = s.ok();
    if (ok && !blocks_.empty()) {
      ok = h.first_lsn == next_lsn_ && h.segment >= current_segment_;
    }
    if (!ok) {
      break;
    }
    if (blocks_.empty()) {
      first_lsn_ = h.first_lsn;
    }
    if (h.segment != current_segment_) {
      current_segment_bytes_ = 0;
    }
    current_segment_ = h.segment;
    current_segment_bytes_ += raw.size();
    blocks_.push_back(BlockInfo{first_seq + valid, h.segment, h.first_lsn, h.count, raw.size()});
    for (Record& rec : recs) {
      records_.push_back(std::move(rec));
    }
    next_lsn_ = h.first_lsn + h.count;
  }
  if (valid < blocks->size()) {
    // Torn or corrupt tail: count it, physically discard it so future appends
    // extend a clean device, and replay stops at the last valid LSN.
    stats_.torn_tail_blocks = blocks->size() - valid;
    IBUS_RETURN_IF_ERROR(device_->TruncateFrom(first_seq + valid));
  }
  stats_.recovered_records = records_.size();
  durable_up_to_ = next_lsn_;
  if (m_recovered_ != nullptr) {
    m_recovered_->Inc(stats_.recovered_records);
  }
  if (m_torn_tail_ != nullptr) {
    m_torn_tail_->Inc(stats_.torn_tail_blocks);
  }
  return OkStatus();
}

Result<Lsn> Journal::Append(const Bytes& payload) {
  if (payload.size() > config_.max_record_bytes) {
    return InvalidArgument("journal: record exceeds max_record_bytes");
  }
  const Lsn lsn = next_lsn_++;
  ++stats_.appends;
  if (m_appends_ != nullptr) {
    m_appends_->Inc();
  }
  const SimTime now = config_.sim != nullptr ? config_.sim->Now() : 0;
  buffered_.push_back(Buffered{lsn, payload, now});  // hotlint: allow(hot-container-growth) -- group-commit buffer: cleared by every flush, bounded by flush_max_bytes
  buffered_bytes_ += kRecordHeaderBytes + payload.size();
  const bool write_through = config_.sim == nullptr || config_.flush_deadline_us == 0;
  if (write_through || kBlockHeaderBytes + buffered_bytes_ >= config_.flush_max_bytes) {
    IBUS_RETURN_IF_ERROR(Flush());
  } else {
    ScheduleDeadlineFlush();
  }
  return lsn;
}

void Journal::ScheduleDeadlineFlush() {
  if (flush_scheduled_ || config_.sim == nullptr) {
    return;
  }
  flush_scheduled_ = true;
  config_.sim->ScheduleAfter(
      config_.flush_deadline_us,
      [this, alive = alive_] {
        if (!*alive) {
          return;
        }
        flush_scheduled_ = false;
        (void)Flush();  // a deadline flush has no caller to report to; stats still move
      },
      "journal.flush_deadline");
}

// hotlint: cold -- group-commit boundary: one device block + barrier per flush, not per append
Status Journal::Flush() {
  if (buffered_.empty()) {
    return OkStatus();
  }
  uint64_t block_bytes = kBlockHeaderBytes;
  for (const Buffered& b : buffered_) {
    block_bytes += kRecordHeaderBytes + b.payload.size();
  }
  // Records never span blocks and blocks never span segments: a block that would
  // push the current segment past its budget closes it and opens the next.
  if (current_segment_bytes_ > 0 &&
      current_segment_bytes_ + block_bytes > config_.segment_max_bytes) {
    ++current_segment_;
    current_segment_bytes_ = 0;
    ++stats_.rotations;
    if (m_rotations_ != nullptr) {
      m_rotations_->Inc();
    }
  }
  const Lsn first = buffered_.front().lsn;
  std::vector<Bytes> payloads;
  payloads.reserve(buffered_.size());
  for (Buffered& b : buffered_) {
    payloads.push_back(std::move(b.payload));
  }
  Bytes block = EncodeBlock(current_segment_, first, payloads);
  auto seq = device_->Append(block);
  if (!seq.ok()) {
    return seq.status();
  }
  IBUS_RETURN_IF_ERROR(device_->Sync());
  blocks_.push_back(BlockInfo{*seq, current_segment_, first,
                              static_cast<uint32_t>(payloads.size()), block.size()});
  current_segment_bytes_ += block.size();
  for (size_t i = 0; i < payloads.size(); ++i) {
    records_.push_back(Record{first + i, current_segment_, std::move(payloads[i])});
  }
  for (Buffered& b : buffered_) {
    b.payload.clear();
    in_flight_.push_back(std::move(b));
  }
  buffered_.clear();
  buffered_bytes_ = 0;
  ++stats_.flushes;
  if (m_flushes_ != nullptr) {
    m_flushes_->Inc();
  }
  const Lsn up_to = first + blocks_.back().count;
  if (config_.sim != nullptr) {
    config_.sim->ScheduleAfter(
        device_->WriteLatency(),
        [this, alive = alive_, up_to] {
          if (!*alive) {
            return;
          }
          AdvanceDurable(up_to);
        },
        "journal.device_write");
  } else {
    AdvanceDurable(up_to);
  }
  return OkStatus();
}

void Journal::AdvanceDurable(Lsn up_to) {
  if (up_to <= durable_up_to_) {
    return;
  }
  durable_up_to_ = up_to;
  const SimTime now = config_.sim != nullptr ? config_.sim->Now() : 0;
  while (!in_flight_.empty() && in_flight_.front().lsn < up_to) {
    if (m_commit_latency_ != nullptr) {
      m_commit_latency_->Record(static_cast<int64_t>(now - in_flight_.front().appended_at));
    }
    in_flight_.erase(in_flight_.begin());
  }
  while (!waiters_.empty() && waiters_.begin()->first < durable_up_to_) {
    auto fn = std::move(waiters_.begin()->second);
    waiters_.erase(waiters_.begin());
    fn();
  }
}

void Journal::WhenDurable(Lsn lsn, std::function<void()> fn) {
  if (lsn < durable_up_to_) {
    fn();
    return;
  }
  waiters_.emplace(lsn, std::move(fn));
}

Status Journal::Sync() {
  IBUS_RETURN_IF_ERROR(Flush());
  // The barrier semantics: when Sync returns, everything appended is on the
  // device and past its Sync call. Durability waiters fire now rather than after
  // the simulated write latency — callers that want the latency use WhenDurable.
  AdvanceDurable(next_lsn_);
  return OkStatus();
}

// hotlint: cold -- retention maintenance: runs when a certified ledger checkpoints
Status Journal::Compact(Lsn retire_below) {
  IBUS_RETURN_IF_ERROR(Flush());
  if (blocks_.empty()) {
    return OkStatus();
  }
  // Only whole closed segments retire, and never the newest one: surviving LSNs
  // stay dense, and the journal always keeps at least its latest block (which
  // carries next_lsn across a reopen).
  const uint32_t newest_segment = blocks_.back().segment;
  size_t cut = 0;
  while (cut < blocks_.size()) {
    const uint32_t seg = blocks_[cut].segment;
    if (seg == newest_segment) {
      break;
    }
    size_t end = cut;
    bool droppable = true;
    while (end < blocks_.size() && blocks_[end].segment == seg) {
      if (blocks_[end].first_lsn + blocks_[end].count > retire_below) {
        droppable = false;
      }
      ++end;
    }
    if (!droppable) {
      break;
    }
    cut = end;
  }
  if (cut == 0) {
    return OkStatus();
  }
  const Lsn new_first = blocks_[cut].first_lsn;
  IBUS_RETURN_IF_ERROR(device_->TruncateBefore(blocks_[cut].device_seq));
  blocks_.erase(blocks_.begin(), blocks_.begin() + static_cast<ptrdiff_t>(cut));
  auto keep = std::lower_bound(records_.begin(), records_.end(), new_first,
                               [](const Record& r, Lsn lsn) { return r.lsn < lsn; });
  records_.erase(records_.begin(), keep);
  first_lsn_ = new_first;
  ++stats_.compactions;
  if (m_compactions_ != nullptr) {
    m_compactions_->Inc();
  }
  return OkStatus();
}

// hotlint: cold -- recovery/tool read path: copies the whole live journal
std::vector<Record> Journal::Records() const {
  std::vector<Record> out = records_;
  out.reserve(out.size() + buffered_.size());
  for (const Buffered& b : buffered_) {
    out.push_back(Record{b.lsn, current_segment_, b.payload});
  }
  return out;
}

// hotlint: cold -- diagnostic scan shared by busjournal --verify and scenario assertions
VerifyReport VerifyDevice(const StableStore& device) {
  VerifyReport rep;
  auto blocks = device.ReadFrom(0);
  if (!blocks.ok()) {
    rep.problems.push_back("device read failed: " + blocks.status().ToString());
    return rep;
  }
  const uint64_t first_seq = device.NextSeq() - blocks->size();
  bool have_first = false;
  Lsn expect = 0;
  uint32_t seg = 0;
  for (size_t i = 0; i < blocks->size(); ++i) {
    const std::string at = "block seq " + std::to_string(first_seq + i);
    BlockHeader h;
    std::vector<Record> recs;
    Status s = DecodeBlock((*blocks)[i], &h, &recs);
    if (!s.ok()) {
      rep.problems.push_back(at + ": " + s.message());
      continue;
    }
    if (!have_first) {
      rep.first_lsn = h.first_lsn;
      have_first = true;
      ++rep.segments;
      seg = h.segment;
    } else {
      if (h.first_lsn != expect) {
        rep.problems.push_back(at + ": LSN discontinuity: expected " + std::to_string(expect) +
                               ", found " + std::to_string(h.first_lsn));
      }
      if (h.segment < seg) {
        rep.problems.push_back(at + ": segment id went backwards: " + std::to_string(seg) +
                               " -> " + std::to_string(h.segment));
      } else if (h.segment != seg) {
        ++rep.segments;
        seg = h.segment;
      }
    }
    ++rep.blocks;
    rep.records += h.count;
    rep.bytes += (*blocks)[i].size();
    expect = h.first_lsn + h.count;
    rep.next_lsn = expect;
  }
  return rep;
}

// hotlint: cold -- diagnostic report formatting for busjournal and scenario traces
std::string VerifyReport::ToString() const {
  std::string s = "journal verify: blocks=" + std::to_string(blocks) +
                  " records=" + std::to_string(records) +
                  " segments=" + std::to_string(segments) +
                  " bytes=" + std::to_string(bytes) + " lsn=[" + std::to_string(first_lsn) +
                  "," + std::to_string(next_lsn) + ")";
  if (clean()) {
    s += " clean";
  } else {
    s += " problems=" + std::to_string(problems.size());
    for (const std::string& p : problems) {
      s += "; " + p;
    }
  }
  return s;
}

}  // namespace ibus::journal
