// Information routers (paper §3.1): "To the Information Bus, these routers look like
// ordinary applications, but they actually integrate multiple instances of the bus.
// Messages are received by one router using a subscription, transmitted to another
// router, and then re-published on another bus. The router is intelligent about which
// messages are sent to which routers: messages are only re-published on buses for
// which there exists a subscription on that subject; the router can also perform
// other functions, such as transforming subjects or logging messages to non-volatile
// storage."
//
// Implementation: each InfoRouter is a bus client on its LAN, paired with a remote
// peer over a point-to-point (WAN) connection. Routers learn their LAN's subscription
// set from the daemons' control plane (kSubEventSubject events plus a kSubQuerySubject
// sweep at startup), advertise it to the peer, and subscribe locally to whatever the
// *peer's* LAN wants — so only traffic with a remote subscriber crosses the WAN.
#ifndef SRC_ROUTER_ROUTER_H_
#define SRC_ROUTER_ROUTER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/sim/stable_store.h"
#include "src/subject/subject.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/sketch.h"

namespace ibus {

// Prefix rewrite applied to subjects crossing this router outbound (paper:
// "transforming subjects"). A subject "fab5.x" with {"fab5", "site2.fab5"} becomes
// "site2.fab5.x".
struct SubjectRewrite {
  std::string from_prefix;
  std::string to_prefix;
};

struct RouterConfig {
  // Loop cap for multi-router topologies (rings).
  uint8_t max_hops = 8;
  // Outbound subject rewrites.
  std::vector<SubjectRewrite> rewrites;
  // Optional store-and-forward log: every forwarded message is appended before being
  // sent over the WAN link.
  StableStore* forward_log = nullptr;
  // Don't forward bus-internal control subjects across the WAN.
  bool forward_internal = false;
  // Reserved-namespace prefixes that cross the WAN even when forward_internal is
  // false: trace spans (so a collector sees the whole path), certified-delivery
  // acks (so certified publishes across a router can retire), health events (so
  // a busmon console anywhere sees the whole fleet's alerts), and busstat
  // time-series records (so a StatsAggregator anywhere merges the whole fleet;
  // the legacy per-host "_ibus.stats.<host>" snapshots stay LAN-local).
  std::vector<std::string> forward_internal_prefixes = {
      kReservedTracePrefix, kReservedCertPrefix, kReservedHealthPrefix,
      kReservedStatsTsPrefix};
  // Ring-buffer depth of the router's always-on flight recorder.
  size_t flight_recorder_capacity = 256;
  // Slot capacity of the router's WAN heavy-hitter sketches (src/telemetry/sketch.h).
  size_t sketch_capacity = telemetry::TopKSketch::kDefaultCapacity;
  // Dial-side resilience: when the WAN link drops (or the first dial fails), retry
  // this often. 0 disables redialing.
  SimTime redial_interval_us = 2 * 1000 * 1000;
};

// Registry names of the router-owned gauges (see InfoRouter::metrics()). Both
// carry a monotone "<name>.hwm" twin.
inline constexpr char kMetricRouterLinkBacklogUs[] = "router.link_backlog_us";
inline constexpr char kMetricRouterPeerSubs[] = "router.peer_subs";

struct RouterStats {
  uint64_t forwarded = 0;       // messages sent to the peer
  uint64_t republished = 0;     // messages received from the peer and republished
  uint64_t suppressed_loop = 0; // dropped by via/hop-cap checks
  uint64_t adverts_sent = 0;
  uint64_t remote_patterns = 0; // current count of peer-requested subscriptions
};

class InfoRouter {
 public:
  // Creates the listening half of a router pair on `bus`'s host.
  static Result<std::unique_ptr<InfoRouter>> Listen(BusClient* bus, const std::string& name,
                                                    Port port,
                                                    const RouterConfig& config = {});
  // Creates the connecting half; dials the peer at (peer_host, peer_port).
  static Result<std::unique_ptr<InfoRouter>> Connect(BusClient* bus, const std::string& name,
                                                     HostId peer_host, Port peer_port,
                                                     const RouterConfig& config = {});
  ~InfoRouter();
  InfoRouter(const InfoRouter&) = delete;
  InfoRouter& operator=(const InfoRouter&) = delete;

  const std::string& name() const { return name_; }
  bool linked() const { return link_ != nullptr && link_->open(); }
  const RouterStats& stats() const { return stats_; }

  // Per-subject-prefix WAN flow counters: `publishes` counts forwards to the peer,
  // `deliveries` republishes from it (bytes likewise, marshalled sizes).
  const std::map<std::string, SubjectFlow, std::less<>>& subject_flows() const { return flows_; }

  telemetry::FlightRecorder* flight_recorder() { return &recorder_; }
  const telemetry::FlightRecorder& flight_recorder() const { return recorder_; }

  // Fixed-memory heavy-hitter sketches over WAN-crossing traffic: which subjects
  // and which publishing peers dominate this router's link (src/telemetry/sketch.h).
  const telemetry::TopKSketch& subject_sketch() const { return subject_sketch_; }
  const telemetry::TopKSketch& peer_sketch() const { return peer_sketch_; }

  // Router-owned gauges: "router.link_backlog_us" (+ ".hwm") tracks how far the
  // WAN link's outbound FIFO runs ahead of now at each forward, and
  // "router.peer_subs" the peer-requested mirror count. busprof's queue plane
  // reads these next to the daemon's "proto.*" depths.
  telemetry::MetricsRegistry* metrics() { return &metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }

 private:
  InfoRouter(BusClient* bus, std::string name, const RouterConfig& config);

  Status Init();                      // control-plane subscriptions + startup sweep
  void AttachLink(ConnectionPtr link);
  void HandleLinkMessage(const Bytes& bytes);
  void HandleLinkClosed();
  void Dial();                        // connect-side: (re)establish the WAN link

  // Local subscription tracking -> peer advertisement.
  void NoteLocalPattern(const std::string& pattern, const std::string& owner, bool added);
  void SendAdvert();

  // Peer wants these patterns: mirror them as local subscriptions.
  void ApplyPeerAdvert(const std::vector<std::string>& patterns);
  void ForwardToPeer(const Message& m);
  void RepublishFromPeer(Message m);
  // Flow-map entry for `subject`, keyed by root element (capped like the daemon's).
  SubjectFlow& FlowFor(std::string_view subject);
  // True for reserved subjects/patterns allowed across the WAN regardless of
  // forward_internal (see RouterConfig::forward_internal_prefixes).
  bool InternalForwardable(const std::string& subject_or_pattern) const;
#if IBUS_TELEMETRY
  // Publishes a HopRecord span for `m` on the local LAN's trace namespace.
  void EmitHop(telemetry::HopKind kind, const Message& m);
#endif
  std::string RewriteSubject(const std::string& subject) const;
  // Maps a peer-requested pattern (expressed in OUR outbound namespace) back to the
  // local namespace, so the mirror subscription matches local traffic. The inverse of
  // RewriteSubject on prefixes; patterns not under any rewritten prefix pass through.
  std::string InverseRewritePattern(const std::string& pattern) const;

  BusClient* bus_;
  std::string name_;
  RouterConfig config_;

  std::unique_ptr<Listener> listener_;
  ConnectionPtr link_;
  bool advert_pending_ = false;
  // Set on the dialing side; kNoHost on the listening side.
  HostId peer_host_ = kNoHost;
  Port peer_port_ = 0;
  bool dialing_ = false;

  // Patterns subscribed somewhere on the local LAN (by non-router clients) with a
  // reference count across daemons.
  std::map<std::string, int> local_patterns_;
  // Patterns the peer asked for -> our local subscription id.
  std::map<std::string, uint64_t> peer_subs_;
  std::vector<uint64_t> control_subs_;
  RouterStats stats_;
  std::map<std::string, SubjectFlow, std::less<>> flows_;
  telemetry::TopKSketch subject_sketch_{telemetry::TopKSketch::kDefaultCapacity};
  telemetry::TopKSketch peer_sketch_{telemetry::TopKSketch::kDefaultCapacity};
  telemetry::MetricsRegistry metrics_;
  telemetry::QueueDepthGauge link_backlog_{nullptr, nullptr};
  telemetry::QueueDepthGauge peer_subs_gauge_{nullptr, nullptr};
  telemetry::FlightRecorder recorder_;
  std::shared_ptr<bool> alive_;
};

}  // namespace ibus

#endif  // SRC_ROUTER_ROUTER_H_
