#include "src/router/router.h"

#include <optional>

#include "src/common/logging.h"
#include "src/subject/subject.h"
#include "src/wire/wire.h"

namespace ibus {

namespace {
constexpr uint8_t kLinkAdvertFrame = 50;
constexpr uint8_t kLinkMessageFrame = 51;

bool IsRouterOwned(const std::string& owner) { return owner.rfind("_router", 0) == 0; }

// The link advert payload: the router's current local subscription patterns.
// wirecheck: codec(router_advert, version=0)
Bytes MarshalAdvert(const std::map<std::string, int>& patterns) {
  WireWriter w;
  w.PutVarint(patterns.size());
  for (const auto& [pattern, refs] : patterns) {
    w.PutString(pattern);
  }
  return w.Take();
}

// wirecheck: codec(router_advert, version=0)
std::optional<std::vector<std::string>> ParseAdvert(const Bytes& payload) {
  WireReader r(payload);
  auto count = r.ReadVarint();
  if (!count.ok()) {
    return std::nullopt;
  }
  // Every pattern costs at least its length byte on the wire, so a plausible
  // count can never exceed the remaining payload.
  if (*count > r.remaining()) {
    return std::nullopt;
  }
  std::vector<std::string> patterns;
  patterns.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto p = r.ReadString();
    if (!p.ok()) {
      return std::nullopt;
    }
    patterns.push_back(p.take());
  }
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return patterns;
}
}  // namespace

InfoRouter::InfoRouter(BusClient* bus, std::string name, const RouterConfig& config)
    : bus_(bus),
      name_(std::move(name)),
      config_(config),
      subject_sketch_(config.sketch_capacity),
      peer_sketch_(config.sketch_capacity),
      recorder_(name_, config.flight_recorder_capacity),
      alive_(std::make_shared<bool>(true)) {
  link_backlog_ = metrics_.GetQueueDepth(kMetricRouterLinkBacklogUs);
  peer_subs_gauge_ = metrics_.GetQueueDepth(kMetricRouterPeerSubs);
}

SubjectFlow& InfoRouter::FlowFor(std::string_view subject) {
  std::string_view root = subject.substr(0, subject.find(kSubjectSeparator));
  // Heterogeneous lookup: the steady-state (existing flow) path allocates nothing.
  auto it = flows_.find(root);
  if (it != flows_.end()) {
    return it->second;
  }
  if (flows_.size() >= kMaxFlowSubjects) {
    root = kFlowOverflowKey;
    if (auto ov = flows_.find(root); ov != flows_.end()) {
      return ov->second;
    }
  }
  return flows_.emplace(root, SubjectFlow{}).first->second;  // hotlint: allow(hot-container-growth) -- first sight of a flow root: once per root, not per message
}

InfoRouter::~InfoRouter() {
  *alive_ = false;
  for (uint64_t sub : control_subs_) {
    bus_->Unsubscribe(sub);
  }
  for (const auto& [pattern, sub] : peer_subs_) {
    bus_->Unsubscribe(sub);
  }
  if (link_ != nullptr) {
    link_->SetMessageHandler(nullptr);
    link_->SetCloseHandler(nullptr);
    link_->Close();
  }
}

Result<std::unique_ptr<InfoRouter>> InfoRouter::Listen(BusClient* bus, const std::string& name,
                                                       Port port, const RouterConfig& config) {
  auto router = std::unique_ptr<InfoRouter>(new InfoRouter(bus, name, config));
  auto listener = bus->network()->Listen(
      bus->host(), port, [r = router.get()](ConnectionPtr conn) { r->AttachLink(std::move(conn)); });
  if (!listener.ok()) {
    return listener.status();
  }
  router->listener_ = listener.take();
  IBUS_RETURN_IF_ERROR(router->Init());
  return router;
}

Result<std::unique_ptr<InfoRouter>> InfoRouter::Connect(BusClient* bus, const std::string& name,
                                                        HostId peer_host, Port peer_port,
                                                        const RouterConfig& config) {
  auto router = std::unique_ptr<InfoRouter>(new InfoRouter(bus, name, config));
  router->peer_host_ = peer_host;
  router->peer_port_ = peer_port;
  IBUS_RETURN_IF_ERROR(router->Init());
  router->Dial();
  return router;
}

void InfoRouter::Dial() {
  if (dialing_ || (link_ != nullptr && link_->open())) {
    return;
  }
  dialing_ = true;
  bus_->network()->Connect(
      bus_->host(), peer_host_, peer_port_,
      [this, alive = alive_](Result<ConnectionPtr> conn) {
        if (!*alive) {
          return;
        }
        dialing_ = false;
        if (conn.ok()) {
          AttachLink(conn.take());
          return;
        }
        if (config_.redial_interval_us > 0) {
          bus_->sim()->ScheduleAfter(
              config_.redial_interval_us,
              [this, alive]() {
                if (*alive) {
                  Dial();
                }
              },
              "router.redial");
        }
      });
}

Status InfoRouter::Init() {
  // Track live subscription changes on this LAN.
  auto event_sub = bus_->Subscribe(kSubEventSubject, [this](const Message& m) {
    WireReader r(m.payload);
    auto added = r.ReadBool();
    auto pattern = r.ReadString();
    auto owner = r.ReadString();
    if (added.ok() && pattern.ok() && owner.ok()) {
      NoteLocalPattern(*pattern, *owner, *added);
    }
  });
  if (!event_sub.ok()) {
    return event_sub.status();
  }
  control_subs_.push_back(*event_sub);

  // Startup sweep: ask every daemon for its current subscription table.
  std::string inbox = bus_->CreateInboxSubject();
  auto inbox_sub = bus_->Subscribe(inbox, [this](const Message& m) {
    WireReader r(m.payload);
    auto count = r.ReadVarint();
    if (!count.ok()) {
      return;
    }
    for (uint64_t i = 0; i < *count; ++i) {
      auto pattern = r.ReadString();
      auto owner = r.ReadString();
      if (!pattern.ok() || !owner.ok()) {
        return;
      }
      NoteLocalPattern(*pattern, *owner, /*added=*/true);
    }
  });
  if (!inbox_sub.ok()) {
    return inbox_sub.status();
  }
  control_subs_.push_back(*inbox_sub);

  Message query;
  query.subject = kSubQuerySubject;
  query.reply_subject = inbox;
  return bus_->PublishInternal(std::move(query));
}

void InfoRouter::AttachLink(ConnectionPtr link) {
  link_ = std::move(link);
  link_->SetMessageHandler([this](const Bytes& bytes) { HandleLinkMessage(bytes); });
  // ConnectionClose copies this handler into a scheduled event, so clearing it in
  // the destructor cannot cancel an already-queued close — guard with alive_.
  link_->SetCloseHandler([this, alive = alive_]() {
    if (*alive) {
      HandleLinkClosed();
    }
  });
  SendAdvert();
}

void InfoRouter::HandleLinkClosed() {
  link_ = nullptr;
  // Peer subscriptions are kept: messages simply stop flowing until a reconnect, and
  // the next advert re-syncs the peer. The dialing side re-establishes the link.
  if (peer_host_ != kNoHost && config_.redial_interval_us > 0) {
    bus_->sim()->ScheduleAfter(
        config_.redial_interval_us,
        [this, alive = alive_]() {
          if (*alive) {
            Dial();
          }
        },
        "router.redial");
  }
}

void InfoRouter::NoteLocalPattern(const std::string& pattern, const std::string& owner,
                                  bool added) {
  if (owner == bus_->name() || IsRouterOwned(owner)) {
    return;  // never advertise subscriptions created by routers (loop prevention)
  }
  if (!config_.forward_internal && IsReservedSubject(pattern) && !InternalForwardable(pattern)) {
    return;
  }
  bool changed = false;
  if (added) {
    changed = ++local_patterns_[pattern] == 1;
  } else {
    auto it = local_patterns_.find(pattern);
    if (it != local_patterns_.end() && --it->second == 0) {
      local_patterns_.erase(it);
      changed = true;
    }
  }
  if (changed) {
    SendAdvert();
  }
}

void InfoRouter::SendAdvert() {
  if (link_ == nullptr || !link_->open()) {
    return;
  }
  if (advert_pending_) {
    return;  // coalesce bursts (startup sweeps arrive as many events)
  }
  advert_pending_ = true;
  bus_->sim()->ScheduleAfter(
      kMillisecond,
      [this, alive = alive_]() {
        if (!*alive) {
          return;
        }
        advert_pending_ = false;
        if (link_ == nullptr || !link_->open()) {
          return;
        }
        link_->Send(FrameMessage(kLinkAdvertFrame, MarshalAdvert(local_patterns_)));
        stats_.adverts_sent++;
      },
      "router.advert");
}

void InfoRouter::HandleLinkMessage(const Bytes& bytes) {
  auto frame = ParseFrame(bytes);
  if (!frame.ok()) {
    return;
  }
  if (frame->frame_type == kLinkAdvertFrame) {
    auto patterns = ParseAdvert(frame->payload);
    if (!patterns.has_value()) {
      return;
    }
    ApplyPeerAdvert(*patterns);
  } else if (frame->frame_type == kLinkMessageFrame) {
    auto m = Message::Unmarshal(frame->payload);
    if (m.ok()) {
      RepublishFromPeer(m.take());
    }
  }
}

void InfoRouter::ApplyPeerAdvert(const std::vector<std::string>& patterns) {
  std::set<std::string> wanted(patterns.begin(), patterns.end());
  // Drop local mirrors the peer no longer wants.
  for (auto it = peer_subs_.begin(); it != peer_subs_.end();) {
    if (wanted.count(it->first) == 0) {
      bus_->Unsubscribe(it->second);
      it = peer_subs_.erase(it);
    } else {
      ++it;
    }
  }
  // Mirror new ones: "messages are only re-published on buses for which there exists
  // a subscription on that subject". The peer expresses patterns in our outbound
  // (possibly rewritten) namespace; subscribe to the local form.
  for (const std::string& pattern : wanted) {
    if (peer_subs_.count(pattern) > 0) {
      continue;
    }
    auto sub = bus_->Subscribe(InverseRewritePattern(pattern),
                               [this](const Message& m) { ForwardToPeer(m); });
    if (sub.ok()) {
      peer_subs_[pattern] = *sub;
    }
  }
  stats_.remote_patterns = peer_subs_.size();
  peer_subs_gauge_.Set(static_cast<int64_t>(peer_subs_.size()));
}

std::string InfoRouter::InverseRewritePattern(const std::string& pattern) const {
  for (const SubjectRewrite& rw : config_.rewrites) {
    if (pattern == rw.to_prefix) {
      return rw.from_prefix;
    }
    if (pattern.rfind(rw.to_prefix + ".", 0) == 0) {
      return rw.from_prefix + pattern.substr(rw.to_prefix.size());
    }
  }
  return pattern;
}

std::string InfoRouter::RewriteSubject(const std::string& subject) const {  // hotlint: allow(hot-by-value) -- the rewritten subject must be materialized for the forwarded copy
  for (const SubjectRewrite& rw : config_.rewrites) {
    if (subject == rw.from_prefix) {
      return rw.to_prefix;
    }
    if (subject.rfind(rw.from_prefix + ".", 0) == 0) {  // hotlint: allow(hot-string) -- prefix rewrite builds the forwarded subject once per WAN hop
      return rw.to_prefix + subject.substr(rw.from_prefix.size());
    }
  }
  return subject;
}

void InfoRouter::ForwardToPeer(const Message& m) {  // hotlint: hot
  if (link_ == nullptr || !link_->open()) {
    return;
  }
  if (m.via == name_ || m.hops >= config_.max_hops) {
    stats_.suppressed_loop++;
    recorder_.Record(bus_->sim()->Now(), telemetry::FlightEventKind::kDrop, m.subject,
                     m.via == name_ ? "loop: own via" : "loop: hop cap");
    return;
  }
  if (!config_.forward_internal && IsReservedSubject(m.subject) &&
      !InternalForwardable(m.subject)) {
    return;
  }
  Message out = m;
  out.subject = RewriteSubject(m.subject);
  out.hops = static_cast<uint8_t>(m.hops + 1);
  out.via = name_;
#if IBUS_TELEMETRY
  if (out.trace_id != 0) {
    out.trace_hop = static_cast<uint8_t>(m.trace_hop + 1);
  }
#endif
  Bytes marshalled = out.Marshal();
  if (config_.forward_log != nullptr) {
    config_.forward_log->Append(marshalled);
  }
  link_->Send(FrameMessage(kLinkMessageFrame, marshalled));
  stats_.forwarded++;
  subject_sketch_.Offer(out.subject);
  if (!out.sender.empty()) {
    peer_sketch_.Offer(out.sender);
  }
  link_backlog_.Set(link_->BacklogUs());
  SubjectFlow& flow = FlowFor(out.subject);
  flow.publishes++;
  flow.bytes_in += marshalled.size();
  recorder_.Record(bus_->sim()->Now(), telemetry::FlightEventKind::kPublish, out.subject,
                   "forward bytes=" + std::to_string(marshalled.size()));  // hotlint: allow(hot-string) -- flight-recorder entry: the ring stores owning strings by design
#if IBUS_TELEMETRY
  if (out.trace_id != 0) {
    EmitHop(telemetry::HopKind::kRouterForward, out);
  }
#endif
}

void InfoRouter::RepublishFromPeer(Message m) {  // hotlint: hot
  // Stamp ourselves so our own mirror subscriptions don't bounce it straight back.
  m.via = name_;
  stats_.republished++;
  subject_sketch_.Offer(m.subject);
  if (!m.sender.empty()) {
    peer_sketch_.Offer(m.sender);
  }
  SubjectFlow& flow = FlowFor(m.subject);
  flow.deliveries++;
  flow.bytes_out += m.payload.size();
  recorder_.Record(bus_->sim()->Now(), telemetry::FlightEventKind::kPublish, m.subject,
                   "republish bytes=" + std::to_string(m.payload.size()));  // hotlint: allow(hot-string) -- flight-recorder entry: the ring stores owning strings by design
#if IBUS_TELEMETRY
  if (m.trace_id != 0) {
    m.trace_hop = static_cast<uint8_t>(m.trace_hop + 1);
    EmitHop(telemetry::HopKind::kRouterRepublish, m);
  }
#endif
  bus_->PublishInternal(std::move(m));
}

bool InfoRouter::InternalForwardable(const std::string& subject_or_pattern) const {
  for (const std::string& prefix : config_.forward_internal_prefixes) {
    if (subject_or_pattern.rfind(prefix, 0) == 0) {
      return true;
    }
  }
  return false;
}

#if IBUS_TELEMETRY
void InfoRouter::EmitHop(telemetry::HopKind kind, const Message& m) {  // hotlint: cold -- trace-hop emission: runs only for traced messages, not the untraced fast path
  telemetry::HopRecord rec;
  rec.trace_id = m.trace_id;
  rec.hop = m.trace_hop;
  rec.kind = kind;
  rec.node = name_;
  rec.subject = m.subject;
  rec.at_us = bus_->sim()->Now();
  rec.certified_id = m.certified_id;
  Message span;
  span.subject = telemetry::HopSubject(kind);
  span.type_name = telemetry::kHopRecordType;
  span.payload = rec.Marshal();
  bus_->PublishInternal(std::move(span));
}
#endif

}  // namespace ibus
