// BusMon: the operator's cluster console, itself just a bus client (the paper's
// service-application pattern — the bus monitoring the bus). It subscribes to the
// three reserved observability feeds — "_ibus.stats.>" snapshots, "_ibus.health.>"
// alert transitions, "_ibus.trace.>" spans — and renders a fleet-wide view: per-host
// stats table, queue occupancy (depth/high-watermark per daemon protocol queue,
// from snapshot v3), top-K subject prefixes by flow, active alerts, per-stage
// latency derived from buffered trace spans (src/prof back-chain decomposition),
// and excerpts from any locally attached flight recorders. RenderSnapshot() is
// deterministic under the simulator, so replay checks can hash the whole frame.
#ifndef SRC_TELEMETRY_BUSMON_H_
#define SRC_TELEMETRY_BUSMON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/bus/client.h"
#include "src/services/bus_monitor.h"
#include "src/telemetry/busstat.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/health.h"
#include "src/telemetry/trace.h"

namespace ibus::telemetry {

struct BusMonOptions {
  size_t top_k = 5;          // subject prefixes shown in the flow ranking
  size_t recorder_tail = 4;  // events shown per attached flight recorder
  // Hop-record buffer bound: the console keeps the most recent traces (by trace
  // id) for the per-stage latency section and evicts the oldest beyond this.
  size_t max_traces = 256;
};

class BusMon {
 public:
  // Subscribes to the stats/health/trace feeds. Works under -DIB_TELEMETRY=OFF too:
  // the stats table stays live, health/trace sections simply stay empty (those
  // feeds are never published in an OFF build).
  static Result<std::unique_ptr<BusMon>> Create(BusClient* bus,
                                                const BusMonOptions& options = BusMonOptions());
  ~BusMon();
  BusMon(const BusMon&) = delete;
  BusMon& operator=(const BusMon&) = delete;

  // Flight recorders are per-process state, not bus traffic; a console co-hosted
  // with daemons/routers can attach theirs to get a post-mortem excerpt section.
  void AttachRecorder(const FlightRecorder* recorder);

  const std::map<std::string, DaemonStatsSnapshot>& snapshots() const { return snapshots_; }
  // The embedded busstat aggregator: "_ibus.stats.ts.*" records arriving on the
  // same stats subscription route here by version byte (kTsWireVersion), giving
  // the console merged sketches, quantiles, and per-node sampling rates.
  const StatsAggregator& timeseries() const { return timeseries_; }
  // Raised-and-not-yet-cleared alerts, keyed (kind, node, subject).
  size_t active_alert_count() const { return active_alerts_.size(); }
  // Every alert transition seen, in arrival order.
  const std::vector<HealthEvent>& alert_history() const { return alert_history_; }
  uint64_t spans_seen() const { return spans_seen_; }
  // Buffered hop records per trace id (arrival order; bounded by max_traces).
  const std::map<uint64_t, std::vector<HopRecord>>& traces() const { return traces_; }

  // The full console frame. Deterministic under the simulator (hashable).
  std::string RenderSnapshot() const;
  // FNV-1a hash of RenderSnapshot(), for replay checks.
  uint64_t SnapshotHash() const;

 private:
  BusMon(BusClient* bus, const BusMonOptions& options) : bus_(bus), options_(options) {}

  void HandleStats(const Message& m);
  void HandleHealth(const Message& m);
  void HandleTrace(const Message& m);

  BusClient* bus_;
  BusMonOptions options_;
  std::vector<uint64_t> subs_;

  std::map<std::string, DaemonStatsSnapshot> snapshots_;
  StatsAggregator timeseries_;
  std::map<std::tuple<uint8_t, std::string, std::string>, HealthEvent> active_alerts_;
  std::vector<HealthEvent> alert_history_;
  uint64_t spans_seen_ = 0;
  std::map<uint64_t, std::vector<HopRecord>> traces_;
  std::vector<const FlightRecorder*> recorders_;
};

}  // namespace ibus::telemetry

#endif  // SRC_TELEMETRY_BUSMON_H_
