#include "src/telemetry/busmon.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/telemetry/trace.h"

namespace ibus::telemetry {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

// A subject prefix's aggregate traffic across every reporting host.
struct FlowTotal {
  std::string prefix;
  uint64_t publishes = 0;
  uint64_t deliveries = 0;
  uint64_t bytes = 0;
};

}  // namespace

Result<std::unique_ptr<BusMon>> BusMon::Create(BusClient* bus, const BusMonOptions& options) {
  auto mon = std::unique_ptr<BusMon>(new BusMon(bus, options));
  struct Feed {
    std::string pattern;
    void (BusMon::*handler)(const Message&);
  };
  const Feed feeds[] = {
      {std::string(kReservedStatsPrefix) + ">", &BusMon::HandleStats},
      {kHealthPattern, &BusMon::HandleHealth},
      {kTracePattern, &BusMon::HandleTrace},
  };
  for (const Feed& feed : feeds) {
    auto sub = mon->bus_->Subscribe(
        feed.pattern, [m = mon.get(), h = feed.handler](const Message& msg) { (m->*h)(msg); });
    if (!sub.ok()) {
      return sub.status();
    }
    mon->subs_.push_back(*sub);
  }
  return mon;
}

BusMon::~BusMon() {
  for (uint64_t sub : subs_) {
    bus_->Unsubscribe(sub);
  }
}

void BusMon::AttachRecorder(const FlightRecorder* recorder) {
  recorders_.push_back(recorder);
}

void BusMon::HandleStats(const Message& m) {
  auto s = DaemonStatsSnapshot::Unmarshal(m.payload);
  if (s.ok()) {
    snapshots_[s->host_name] = s.take();
  }
}

void BusMon::HandleHealth(const Message& m) {
  if (m.type_name != kHealthEventType) {
    return;
  }
  auto e = HealthEvent::Unmarshal(m.payload);
  if (!e.ok()) {
    return;
  }
  auto key = std::make_tuple(static_cast<uint8_t>(e->kind), e->node, e->subject);
  if (e->severity == HealthSeverity::kClear) {
    active_alerts_.erase(key);
  } else {
    active_alerts_[key] = *e;
  }
  alert_history_.push_back(e.take());
}

void BusMon::HandleTrace(const Message& m) {
  if (m.type_name == kHopRecordType) {
    spans_seen_++;
  }
}

std::string BusMon::RenderSnapshot() const {
  std::ostringstream out;
  out << "== busmon @ " << bus_->sim()->Now() << "us ==\n";

  out << "hosts (" << snapshots_.size() << "):\n";
  out << "  host             pubs   disp  deliv   subs  churn  retrans  gaps\n";
  char line[200];
  for (const auto& [host, s] : snapshots_) {
    std::snprintf(line, sizeof(line), "  %-14s %6llu %6llu %6llu %6llu %6llu %8llu %5llu\n",
                  host.c_str(), static_cast<unsigned long long>(s.publishes),
                  static_cast<unsigned long long>(s.dispatched),
                  static_cast<unsigned long long>(s.deliveries),
                  static_cast<unsigned long long>(s.subscriptions),
                  static_cast<unsigned long long>(s.sub_churn),
                  static_cast<unsigned long long>(s.retransmits),
                  static_cast<unsigned long long>(s.receiver_gaps));
    out << line;
  }

  // Aggregate per-prefix flows across the fleet and rank by traffic.
  std::map<std::string, FlowTotal> totals;
  for (const auto& [host, s] : snapshots_) {
    for (const SubjectFlowEntry& f : s.flows) {
      FlowTotal& t = totals[f.prefix];
      t.prefix = f.prefix;
      t.publishes += f.publishes;
      t.deliveries += f.deliveries;
      t.bytes += f.bytes_in + f.bytes_out;
    }
  }
  std::vector<FlowTotal> ranked;
  ranked.reserve(totals.size());
  for (const auto& [prefix, t] : totals) {
    ranked.push_back(t);
  }
  std::sort(ranked.begin(), ranked.end(), [](const FlowTotal& a, const FlowTotal& b) {
    uint64_t wa = a.publishes + a.deliveries;
    uint64_t wb = b.publishes + b.deliveries;
    return wa != wb ? wa > wb : a.prefix < b.prefix;
  });
  if (ranked.size() > options_.top_k) {
    ranked.resize(options_.top_k);
  }
  out << "top subjects by flow:\n";
  for (const FlowTotal& t : ranked) {
    out << "  " << t.prefix << " pubs=" << t.publishes << " deliv=" << t.deliveries
        << " bytes=" << t.bytes << "\n";
  }

  if (active_alerts_.empty()) {
    out << "active alerts: none\n";
  } else {
    out << "active alerts (" << active_alerts_.size() << "):\n";
    for (const auto& [key, e] : active_alerts_) {
      out << "  " << e.ToString() << "\n";
    }
  }
  out << "alert transitions seen: " << alert_history_.size() << "\n";
  out << "trace spans seen: " << spans_seen_ << "\n";

  for (const FlightRecorder* rec : recorders_) {
    out << "flight recorder " << rec->node() << " (" << rec->total_recorded()
        << " recorded, tail " << options_.recorder_tail << "):\n";
    std::istringstream tail(rec->RenderTail(options_.recorder_tail));
    std::string tail_line;
    while (std::getline(tail, tail_line)) {
      out << "  " << tail_line << "\n";
    }
  }
  return out.str();
}

uint64_t BusMon::SnapshotHash() const {
  uint64_t h = kFnvOffset;
  for (char c : RenderSnapshot()) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace ibus::telemetry
