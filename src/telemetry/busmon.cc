#include "src/telemetry/busmon.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>

#include "src/prof/stages.h"
#include "src/telemetry/trace.h"

namespace ibus::telemetry {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

// A subject prefix's aggregate traffic across every reporting host.
struct FlowTotal {
  std::string prefix;
  uint64_t publishes = 0;
  uint64_t deliveries = 0;
  uint64_t bytes = 0;
};

}  // namespace

Result<std::unique_ptr<BusMon>> BusMon::Create(BusClient* bus, const BusMonOptions& options) {
  auto mon = std::unique_ptr<BusMon>(new BusMon(bus, options));
  struct Feed {
    std::string pattern;
    void (BusMon::*handler)(const Message&);
  };
  const Feed feeds[] = {
      {std::string(kReservedStatsPrefix) + ">", &BusMon::HandleStats},
      {kHealthPattern, &BusMon::HandleHealth},
      {kTracePattern, &BusMon::HandleTrace},
  };
  for (const Feed& feed : feeds) {
    auto sub = mon->bus_->Subscribe(
        feed.pattern, [m = mon.get(), h = feed.handler](const Message& msg) { (m->*h)(msg); });
    if (!sub.ok()) {
      return sub.status();
    }
    mon->subs_.push_back(*sub);
  }
  return mon;
}

BusMon::~BusMon() {
  for (uint64_t sub : subs_) {
    bus_->Unsubscribe(sub);
  }
}

void BusMon::AttachRecorder(const FlightRecorder* recorder) {
  recorders_.push_back(recorder);
}

void BusMon::HandleStats(const Message& m) {
  // The stats namespace carries two record families: legacy full snapshots
  // ("_ibus.stats.<host>") and busstat time-series samples ("_ibus.stats.ts.*").
  // Route by leading version byte — the two sets are deliberately disjoint.
  if (!m.payload.empty() && m.payload[0] == kTsWireVersion) {
    timeseries_.Consume(m.payload);
    return;
  }
  auto s = DaemonStatsSnapshot::Unmarshal(m.payload);
  if (s.ok()) {
    snapshots_[s->host_name] = s.take();
  }
}

void BusMon::HandleHealth(const Message& m) {
  if (m.type_name != kHealthEventType) {
    return;
  }
  auto e = HealthEvent::Unmarshal(m.payload);
  if (!e.ok()) {
    return;
  }
  auto key = std::make_tuple(static_cast<uint8_t>(e->kind), e->node, e->subject);
  if (e->severity == HealthSeverity::kClear) {
    active_alerts_.erase(key);
  } else {
    active_alerts_[key] = *e;
  }
  alert_history_.push_back(e.take());
}

void BusMon::HandleTrace(const Message& m) {
  if (m.type_name != kHopRecordType) {
    return;
  }
  spans_seen_++;
  auto rec = HopRecord::Unmarshal(m.payload);
  if (!rec.ok()) {
    return;
  }
  traces_[rec->trace_id].push_back(rec.take());
  // Bounded buffer: evict the lowest trace id (ids are allocated monotonically per
  // client, so the lowest is the oldest publish).
  while (traces_.size() > options_.max_traces) {
    traces_.erase(traces_.begin());
  }
}

std::string BusMon::RenderSnapshot() const {
  std::ostringstream out;
  out << "== busmon @ " << bus_->sim()->Now() << "us ==\n";

  out << "hosts (" << snapshots_.size() << "):\n";
  out << "  host             pubs   disp  deliv   subs  churn  retrans  gaps\n";
  char line[200];
  for (const auto& [host, s] : snapshots_) {
    std::snprintf(line, sizeof(line), "  %-14s %6llu %6llu %6llu %6llu %6llu %8llu %5llu\n",
                  host.c_str(), static_cast<unsigned long long>(s.publishes),
                  static_cast<unsigned long long>(s.dispatched),
                  static_cast<unsigned long long>(s.deliveries),
                  static_cast<unsigned long long>(s.subscriptions),
                  static_cast<unsigned long long>(s.sub_churn),
                  static_cast<unsigned long long>(s.retransmits),
                  static_cast<unsigned long long>(s.receiver_gaps));
    out << line;
  }

  // Queue-occupancy plane (snapshot v3): live depth / monotone high-watermark for
  // each daemon-side protocol queue.
  out << "queue occupancy (depth/hwm):\n";
  out << "  host            retained      batch      ready   partials\n";
  for (const auto& [host, s] : snapshots_) {
    char cell[4][24];
    const uint64_t pairs[4][2] = {{s.sender_retained_depth, s.sender_retained_hwm},
                                  {s.sender_batch_depth, s.sender_batch_hwm},
                                  {s.receiver_ready_depth, s.receiver_ready_hwm},
                                  {s.receiver_partials_depth, s.receiver_partials_hwm}};
    for (int i = 0; i < 4; ++i) {
      std::snprintf(cell[i], sizeof(cell[i]), "%llu/%llu",
                    static_cast<unsigned long long>(pairs[i][0]),
                    static_cast<unsigned long long>(pairs[i][1]));
    }
    std::snprintf(line, sizeof(line), "  %-14s %9s %10s %10s %10s\n", host.c_str(), cell[0],
                  cell[1], cell[2], cell[3]);
    out << line;
  }

  // Aggregate per-prefix flows across the fleet and rank by traffic.
  std::map<std::string, FlowTotal> totals;
  for (const auto& [host, s] : snapshots_) {
    for (const SubjectFlowEntry& f : s.flows) {
      FlowTotal& t = totals[f.prefix];
      t.prefix = f.prefix;
      t.publishes += f.publishes;
      t.deliveries += f.deliveries;
      t.bytes += f.bytes_in + f.bytes_out;
    }
  }
  std::vector<FlowTotal> ranked;
  ranked.reserve(totals.size());
  for (const auto& [prefix, t] : totals) {
    ranked.push_back(t);
  }
  std::sort(ranked.begin(), ranked.end(), [](const FlowTotal& a, const FlowTotal& b) {
    uint64_t wa = a.publishes + a.deliveries;
    uint64_t wb = b.publishes + b.deliveries;
    return wa != wb ? wa > wb : a.prefix < b.prefix;
  });
  if (ranked.size() > options_.top_k) {
    ranked.resize(options_.top_k);
  }
  out << "top subjects by flow:\n";
  for (const FlowTotal& t : ranked) {
    out << "  " << t.prefix << " pubs=" << t.publishes << " deliv=" << t.deliveries
        << " bytes=" << t.bytes << "\n";
  }

  // The busstat time-series plane: per-node sampling rates plus the merged
  // heavy-hitter sketches. All map-ordered, so the frame stays byte-deterministic.
  std::vector<std::string> ts_nodes = timeseries_.Nodes();
  if (ts_nodes.empty()) {
    out << "stats time series: none\n";
  } else {
    out << "stats time series (" << ts_nodes.size() << " nodes, "
        << timeseries_.samples_consumed() << " samples, " << timeseries_.desyncs()
        << " desyncs):\n";
    for (const std::string& node : ts_nodes) {
      const DecodedSample* s = timeseries_.Latest(node);
      if (s == nullptr) {
        continue;
      }
      const char* sampling = s->sample_period == 0   ? "off"
                             : s->sample_period == 1 ? "all"
                                                     : "1/";
      out << "  " << node << " seq=" << s->seq << " sampling=" << sampling;
      if (s->sample_period > 1) {
        out << s->sample_period;
      }
      out << "\n";
    }
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.6f", timeseries_.OverheadRatio());
    out << "telemetry overhead ratio: " << ratio << "\n";
    struct SketchSection {
      const char* title;
      TopKSketch sketch;
    };
    const SketchSection sections[] = {
        {"top subjects (heavy-hitter sketch):", timeseries_.MergedSubjectSketch()},
        {"top peers (heavy-hitter sketch):", timeseries_.MergedPeerSketch()},
    };
    for (const SketchSection& sec : sections) {
      out << sec.title << "\n";
      std::istringstream tbl(sec.sketch.RenderTable());
      std::string tbl_line;
      while (std::getline(tbl, tbl_line)) {
        out << "  " << tbl_line << "\n";
      }
    }
  }

  if (active_alerts_.empty()) {
    out << "active alerts: none\n";
  } else {
    out << "active alerts (" << active_alerts_.size() << "):\n";
    for (const auto& [key, e] : active_alerts_) {
      out << "  " << e.ToString() << "\n";
    }
  }
  out << "alert transitions seen: " << alert_history_.size() << "\n";
  out << "trace spans seen: " << spans_seen_ << "\n";

  // Per-stage latency from the buffered trace spans, via the profiler's back-chain
  // decomposition. Hop-only split: the console has no wire capture, so the whole
  // wire interval lands in medium_transit (see docs/TELEMETRY.md "Profiling").
  MetricsRegistry stage_registry;
  prof::StageAccumulator acc(&stage_registry);
  for (const auto& [id, unsorted] : traces_) {
    std::vector<HopRecord> timeline = unsorted;
    std::sort(timeline.begin(), timeline.end(), [](const HopRecord& a, const HopRecord& b) {
      return std::tie(a.at_us, a.hop, a.kind, a.node, a.subject) <
             std::tie(b.at_us, b.hop, b.kind, b.node, b.subject);
    });
    for (const prof::PathProfile& p : prof::DecomposeTimeline(timeline)) {
      acc.Add(p);
    }
  }
  out << "stage latency (" << acc.paths() << " paths over " << traces_.size()
      << " traces):\n";
  for (size_t i = 0; i < prof::kStageCount; ++i) {
    auto k = static_cast<prof::StageKind>(i);
    const LatencyHistogram* h = acc.histogram(k);
    if (acc.total_us(k) == 0 && (h == nullptr || h->count() == 0)) {
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "  %-18s count=%llu p50=%lldus p90=%lldus p99=%lldus total=%lldus\n",
                  prof::StageName(k), static_cast<unsigned long long>(h ? h->count() : 0),
                  static_cast<long long>(h ? h->p50() : 0),
                  static_cast<long long>(h ? h->p90() : 0),
                  static_cast<long long>(h ? h->p99() : 0),
                  static_cast<long long>(acc.total_us(k)));
    out << line;
  }

  for (const FlightRecorder* rec : recorders_) {
    out << "flight recorder " << rec->node() << " (" << rec->total_recorded()
        << " recorded, tail " << options_.recorder_tail << "):\n";
    std::istringstream tail(rec->RenderTail(options_.recorder_tail));
    std::string tail_line;
    while (std::getline(tail, tail_line)) {
      out << "  " << tail_line << "\n";
    }
  }
  return out.str();
}

uint64_t BusMon::SnapshotHash() const {
  uint64_t h = kFnvOffset;
  for (char c : RenderSnapshot()) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace ibus::telemetry
