#include "src/telemetry/health.h"

#include <sstream>

#include "src/wire/wire.h"

namespace ibus::telemetry {

std::string_view HealthEventKindName(HealthEventKind k) {
  switch (k) {
    case HealthEventKind::kSlowConsumer:
      return "slow_consumer";
    case HealthEventKind::kRetransmitStorm:
      return "retransmit_storm";
    case HealthEventKind::kSubscriptionChurn:
      return "subscription_churn";
    case HealthEventKind::kPartitionSuspected:
      return "partition_suspected";
    case HealthEventKind::kRecovery:
      return "recovery";
  }
  return "unknown";
}

std::string_view HealthSeverityName(HealthSeverity s) {
  switch (s) {
    case HealthSeverity::kClear:
      return "clear";
    case HealthSeverity::kWarning:
      return "warning";
    case HealthSeverity::kCritical:
      return "critical";
  }
  return "unknown";
}

std::string HealthSubject(HealthEventKind kind, const std::string& node) {
  return std::string(kReservedHealthPrefix) + std::string(HealthEventKindName(kind)) + "." +
         node;
}

// wirecheck: codec(health_event, version=1)
Bytes HealthEvent::Marshal() const {  // hotlint: allow(hot-by-value) -- serialization boundary: NRVO into the send buffer
  WireWriter w;
  w.PutU8(kWireVersion);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutU8(static_cast<uint8_t>(severity));
  w.PutString(node);
  w.PutString(subject);
  w.PutI64(value);
  w.PutI64(threshold);
  w.PutI64(at_us);
  return w.Take();
}

// wirecheck: codec(health_event, version=1)
Result<HealthEvent> HealthEvent::Unmarshal(const Bytes& b) {
  WireReader r(b);
  auto version = r.ReadU8();
  if (!version.ok()) {
    return DataLoss("health: truncated event");
  }
  if (*version != kWireVersion) {
    return Unimplemented("health: unknown event version " + std::to_string(*version));
  }
  auto kind = r.ReadU8();
  auto severity = r.ReadU8();
  auto node = r.ReadString();
  auto subject = r.ReadString();
  auto value = r.ReadI64();
  auto threshold = r.ReadI64();
  auto at_us = r.ReadI64();
  if (!kind.ok() || !severity.ok() || !node.ok() || !subject.ok() || !value.ok() ||
      !threshold.ok() || !at_us.ok()) {
    return DataLoss("health: truncated event");
  }
  if (*kind < static_cast<uint8_t>(HealthEventKind::kSlowConsumer) ||
      *kind > static_cast<uint8_t>(HealthEventKind::kRecovery)) {
    return DataLoss("health: bad event kind");
  }
  if (*severity > static_cast<uint8_t>(HealthSeverity::kCritical)) {
    return DataLoss("health: bad severity");
  }
  if (!r.AtEnd()) {
    return DataLoss("health: trailing bytes after event");
  }
  HealthEvent e;
  e.kind = static_cast<HealthEventKind>(*kind);
  e.severity = static_cast<HealthSeverity>(*severity);
  e.node = node.take();
  e.subject = subject.take();
  e.value = *value;
  e.threshold = *threshold;
  e.at_us = *at_us;
  return e;
}

std::string HealthEvent::ToString() const {  // hotlint: cold -- console/log rendering, never on the forwarding path
  std::ostringstream out;
  out << "t=" << at_us << "us [" << HealthSeverityName(severity) << "] "
      << HealthEventKindName(kind) << " node=" << node;
  if (!subject.empty()) {
    out << " subject=" << subject;
  }
  out << " value=" << value << " threshold=" << threshold;
  return out.str();
}

}  // namespace ibus::telemetry
