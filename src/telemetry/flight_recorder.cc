#include "src/telemetry/flight_recorder.h"

#include <cstdio>
#include <sstream>

namespace ibus::telemetry {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string_view FlightEventKindName(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::kPublish:
      return "publish";
    case FlightEventKind::kDrop:
      return "drop";
    case FlightEventKind::kRetransmit:
      return "retransmit";
    case FlightEventKind::kGap:
      return "gap";
    case FlightEventKind::kElection:
      return "election";
    case FlightEventKind::kHealth:
      return "health";
  }
  return "unknown";
}

std::string FlightEvent::ToJson(const std::string& node) const {
  std::string out = "{\"t\":" + std::to_string(at_us) + ",\"node\":\"";
  AppendJsonEscaped(&out, node);
  out += "\",\"kind\":\"";
  out += FlightEventKindName(kind);
  out += "\",\"subject\":\"";
  AppendJsonEscaped(&out, subject);
  out += "\",\"detail\":\"";
  AppendJsonEscaped(&out, detail);
  out += "\"}";
  return out;
}

FlightRecorder::FlightRecorder(std::string node, size_t capacity)
    : node_(std::move(node)), capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void FlightRecorder::Record(int64_t at_us, FlightEventKind kind, std::string subject,
                            std::string detail) {
  FlightEvent& slot = ring_[next_];
  slot.at_us = at_us;
  slot.kind = kind;
  slot.subject = std::move(subject);
  slot.detail = std::move(detail);
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) {
    ++size_;
  }
  ++total_recorded_;
}

std::vector<FlightEvent> FlightRecorder::Events() const {
  std::vector<FlightEvent> out;
  out.reserve(size_);
  size_t start = (size_ == capacity_) ? next_ : 0;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::string FlightRecorder::DumpJsonl() const {
  std::string out;
  for (const FlightEvent& e : Events()) {
    out += e.ToJson(node_);
    out += '\n';
  }
  return out;
}

uint64_t FlightRecorder::DumpHash() const {
  uint64_t h = kFnvOffset;
  for (char c : DumpJsonl()) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::string FlightRecorder::RenderTail(size_t n) const {
  std::vector<FlightEvent> events = Events();
  size_t start = events.size() > n ? events.size() - n : 0;
  std::ostringstream out;
  for (size_t i = start; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    out << "t=" << e.at_us << "us " << FlightEventKindName(e.kind);
    if (!e.subject.empty()) {
      out << " " << e.subject;
    }
    if (!e.detail.empty()) {
      out << " " << e.detail;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace ibus::telemetry
