#include "src/telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

namespace ibus::telemetry {

size_t LatencyHistogram::BucketOf(int64_t us) {
  if (us <= 0) {
    return 0;
  }
  size_t width = static_cast<size_t>(std::bit_width(static_cast<uint64_t>(us)));
  return width < kBuckets ? width : kBuckets - 1;
}

int64_t LatencyHistogram::BucketUpper(size_t b) {
  if (b == 0) {
    return 0;
  }
  if (b >= kBuckets - 1) {
    return std::numeric_limits<int64_t>::max();
  }
  return (int64_t{1} << b) - 1;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.total_ == 0) {
    return;
  }
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (size_t b = 0; b < kBuckets; b++) {
    counts_[b] += other.counts_[b];
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

void LatencyHistogram::RestoreBucket(size_t b, uint64_t count) {
  if (b >= kBuckets) {
    b = kBuckets - 1;
  }
  counts_[b] += count;
  total_ += count;
}

void LatencyHistogram::RestoreStats(int64_t sum, int64_t min, int64_t max) {
  sum_ = sum;
  min_ = min;
  max_ = max;
}

double LatencyHistogram::Mean() const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(sum_) / static_cast<double>(total_);
}

int64_t LatencyHistogram::Percentile(double q) const {
  if (total_ == 0) {
    return 0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  uint64_t needed = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total_)));
  if (needed == 0) {
    needed = 1;
  }
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kBuckets; b++) {
    cumulative += counts_[b];
    if (cumulative >= needed) {
      return BucketUpper(b);
    }
  }
  return max_;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<LatencyHistogram>();
  }
  return slot.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

int64_t MetricsRegistry::GaugeValue(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

const LatencyHistogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::RenderText() const {
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << name << " count=" << h->count() << " min=" << h->min() << " max=" << h->max()
        << " p50=" << h->p50() << " p90=" << h->p90() << " p99=" << h->p99() << "\n";
  }
  return out.str();
}

}  // namespace ibus::telemetry
