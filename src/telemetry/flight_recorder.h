// Per-node flight recorder: a fixed-capacity ring buffer of structured events
// (publishes, drops, retransmits, gaps, elections, health transitions). Recording is
// always on — it is cheap enough to leave enabled in production builds (no IBUS_TELEMETRY
// gate) — and the buffer can be dumped post-mortem as deterministic JSONL, so a replayed
// simulation produces a bit-identical dump. Daemons and routers each own one; protocol
// components (ReliableSender/Receiver, Election) borrow a pointer from their owner.
#ifndef SRC_TELEMETRY_FLIGHT_RECORDER_H_
#define SRC_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ibus::telemetry {

// Values are part of the JSONL dump format; do not renumber.
enum class FlightEventKind : uint8_t {
  kPublish = 1,     // a message entered the bus at this node
  kDrop = 2,        // a frame or message was discarded (undecodable, loop-suppressed)
  kRetransmit = 3,  // the reliable sender answered a NAK
  kGap = 4,         // the reliable receiver abandoned a sequence range
  kElection = 5,    // election state transition (candidacy, leadership, step-down)
  kHealth = 6,      // a health-evaluator alert transition
};

std::string_view FlightEventKindName(FlightEventKind k);

struct FlightEvent {
  int64_t at_us = 0;
  FlightEventKind kind = FlightEventKind::kPublish;
  std::string subject;  // message subject, or empty for protocol-level events
  std::string detail;   // kind-specific context, e.g. "stream=3 first=10 last=12"

  // One JSON object, stable field order, used for the JSONL dump.
  std::string ToJson(const std::string& node) const;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::string node, size_t capacity = 256);

  void Record(int64_t at_us, FlightEventKind kind, std::string subject,
              std::string detail = "");

  const std::string& node() const { return node_; }
  size_t capacity() const { return capacity_; }
  // Events currently held (<= capacity).
  size_t size() const { return size_; }
  // Total Record() calls over the recorder's lifetime.
  uint64_t total_recorded() const { return total_recorded_; }
  // How many events have been overwritten by newer ones.
  uint64_t overwritten() const {
    return total_recorded_ - static_cast<uint64_t>(size_);
  }

  // Retained events, oldest first.
  std::vector<FlightEvent> Events() const;

  // One JSON object per line, oldest first. Deterministic: a replayed simulation
  // produces a byte-identical dump.
  std::string DumpJsonl() const;

  // FNV-1a hash of DumpJsonl(), for replay checks.
  uint64_t DumpHash() const;

  // The most recent `n` events as "t=..us kind subject detail" lines (for busmon).
  std::string RenderTail(size_t n) const;

 private:
  std::string node_;
  size_t capacity_;
  std::vector<FlightEvent> ring_;
  size_t next_ = 0;  // slot the next event goes into
  size_t size_ = 0;
  uint64_t total_recorded_ = 0;
};

}  // namespace ibus::telemetry

#endif  // SRC_TELEMETRY_FLIGHT_RECORDER_H_
