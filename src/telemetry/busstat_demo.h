// The canonical busstat scenario: the certified-WAN topology (two LANs joined by
// an information-router pair, 10% loss + 300µs jitter) carrying a plain pub/sub
// workload with publisher-side trace sampling on, a BusStatReporter beside every
// daemon and router, and a StatsAggregator + TraceCollector on the far LAN merging
// the fleet. Shared by tools/busstat, the stats tests, sim_replay_check's busstat
// scenario, and bench/telemetry_overhead, so the CLI output, the unit assertions,
// the replay hashes, and the overhead series all describe the same bytes.
#ifndef SRC_TELEMETRY_BUSSTAT_DEMO_H_
#define SRC_TELEMETRY_BUSSTAT_DEMO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ibus::telemetry {

struct BusStatScenarioOptions {
  // Publisher-side trace sampling period (BusConfig::trace_sample_period):
  // 1 = trace everything, 64 = the default 1/64 sample, 0 = tracing off.
  uint32_t sample_period = 64;
  // Application workload: `messages` publishes of `payload_bytes` each.
  int messages = 300;
  size_t payload_bytes = 1024;
  int64_t publish_interval_us = 5000;
  // busstat reporter cadence.
  int64_t stats_interval_us = 1000000;
  size_t keyframe_every = 8;
};

struct BusStatScenario {
  // Deterministic event log: deliveries, per-node sample summaries, fleet stat
  // lines — the replay spine (first line is "error: ..." on setup failure).
  std::vector<std::string> trace;
  // StatsAggregator::RenderJson(): {"schema": "BUSSTAT_1", ...}, byte-stable per seed.
  std::string json;
  // StatsAggregator::RenderTable(): the operator console view.
  std::string table;
  // StatsAggregator::Hash() — FNV-1a over the JSON; bit-identical across replays.
  uint64_t hash = 0;

  // Workload + overhead accounting (the bench series).
  uint64_t delivered = 0;          // consumer deliveries observed
  uint64_t publish_bytes = 0;      // fleet bus.publish_bytes
  uint64_t self_bytes = 0;         // fleet telemetry.self.bytes
  uint64_t self_msgs = 0;          // fleet telemetry.self.msgs
  double overhead_ratio = 0.0;     // self_bytes / publish_bytes
  uint64_t samples_consumed = 0;   // aggregator-decoded time-series records
  uint64_t desyncs = 0;
  uint64_t traces_collected = 0;   // distinct sampled trace ids at the collector
  uint64_t trace_records = 0;      // hop spans received by the collector
};

BusStatScenario RunBusstatWanScenario(uint64_t seed,
                                      const BusStatScenarioOptions& options = {});

}  // namespace ibus::telemetry

#endif  // SRC_TELEMETRY_BUSSTAT_DEMO_H_
