// TraceCollector: a bus service (paper §service applications — the bus monitoring the
// bus) that subscribes to the reserved trace namespace and reconstructs, per traced
// message, the ordered hop timeline plus per-hop-kind latency histograms. Everything
// it sees arrives over the bus itself, so under the simulator the reconstruction is
// fully deterministic and hashable for replay checks.
#ifndef SRC_TELEMETRY_COLLECTOR_H_
#define SRC_TELEMETRY_COLLECTOR_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/bus/client.h"
#include "src/common/status.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace ibus::telemetry {

// Counts traces evicted from the collector's LRU cache (see TraceCollectorOptions).
inline constexpr char kMetricTraceEvictions[] = "telemetry.trace_evictions";

struct TraceCollectorOptions {
  // Most-recently-updated traces retained; older ones are evicted (a collector left
  // running for days must not grow without bound).
  size_t max_traces = 1024;
};

class TraceCollector {
 public:
  // Subscribes `bus` to the trace namespace. Fails with kFailedPrecondition when the
  // tree was built with -DIB_TELEMETRY=OFF (no spans are ever emitted then).
  static Result<std::unique_ptr<TraceCollector>> Create(
      BusClient* bus, const TraceCollectorOptions& options = TraceCollectorOptions());
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  uint64_t records_received() const { return records_received_; }
  size_t trace_count() const { return traces_.size(); }
  uint64_t evictions() const { return evictions_->value(); }
  // The collector's own registry (currently just the eviction counter).
  const MetricsRegistry& metrics() const { return metrics_; }
  // Trace ids seen so far, ascending.
  std::vector<uint64_t> trace_ids() const;

  // Hops of one trace, ordered by (time, hop, kind, node, subject). Empty when the
  // trace id is unknown.
  std::vector<HopRecord> Timeline(uint64_t trace_id) const;

  // Human-readable timeline, one hop per line with a delta to the first hop.
  std::string RenderTimeline(uint64_t trace_id) const;

  // FNV-1a hash over the rendered timeline: identical reruns of the same seed must
  // produce identical hashes (used by the sim replay check).
  uint64_t TimelineHash(uint64_t trace_id) const;
  // Hash over every timeline, in trace-id order.
  uint64_t AllTracesHash() const;

  // Latency from the previous hop in each timeline, bucketed per hop kind — e.g. the
  // kDeliver histogram holds dispatch→deliver latencies across all traces.
  std::map<HopKind, LatencyHistogram> HopLatencyHistograms() const;

 private:
  TraceCollector(BusClient* bus, const TraceCollectorOptions& options)
      : bus_(bus),
        options_(options),
        evictions_(metrics_.GetCounter(kMetricTraceEvictions)) {}

  void HandleSpan(const Message& m);
  // Moves `trace_id` to the recently-used end, evicting the coldest trace over cap.
  void TouchTrace(uint64_t trace_id);

  BusClient* bus_;
  TraceCollectorOptions options_;
  uint64_t sub_id_ = 0;
  uint64_t records_received_ = 0;
  std::map<uint64_t, std::vector<HopRecord>> traces_;
  // LRU bookkeeping: least-recently-updated trace at the front.
  std::list<uint64_t> lru_;
  std::map<uint64_t, std::list<uint64_t>::iterator> lru_pos_;
  MetricsRegistry metrics_;
  Counter* evictions_;
};

}  // namespace ibus::telemetry

#endif  // SRC_TELEMETRY_COLLECTOR_H_
