// busstat: the scale-ready stats plane (docs/TELEMETRY.md, "Sampling & sketches").
//
// Every observability layer before this one is full-fidelity — per-message spans,
// per-host full snapshots — which cannot survive Internet scale. busstat bounds the
// cost three ways: fixed-memory sketches (sketch.h), publisher-side trace sampling
// (trace.h), and this file's periodic time series: each node runs a BusStatReporter
// that publishes delta-encoded samples of its metrics registry, histograms, and
// heavy-hitter sketches on the reserved "_ibus.stats.ts.<node>" subject; a
// StatsAggregator anywhere on the bus decodes the streams and merges sketches and
// histograms across nodes into one fleet view. The plane observes itself: the
// overhead ratio (telemetry.self.bytes / bus.publish_bytes) rides in every sample.
//
// Wire discipline: sample records lead with kTsWireVersion (0xB5), deliberately
// disjoint from DaemonStatsSnapshot::kWireVersion so legacy "_ibus.stats.>"
// subscribers (StatsCollector, busmon's host table) version-skip them. Counters and
// gauges travel as a name dictionary established by periodic keyframes plus
// zigzag-varint deltas for changed values in between; histograms travel as sparse
// log-bucket deltas; sketches are small and ride whole. A decoder that joins late
// or desyncs waits for the next keyframe.
#ifndef SRC_TELEMETRY_BUSSTAT_H_
#define SRC_TELEMETRY_BUSSTAT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/bus/client.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/sketch.h"

namespace ibus::telemetry {

// Leading byte of every time-series record; must stay disjoint from
// DaemonStatsSnapshot::kWireVersion (see src/services/bus_monitor.h).
inline constexpr uint8_t kTsWireVersion = 0xB5;
// A keyframe carries the full dictionary + absolute values; a delta only changes.
inline constexpr uint8_t kTsKindKeyframe = 1;
inline constexpr uint8_t kTsKindDelta = 2;

// Registry-independent decoded form of one node's latest state.
struct DecodedSample {
  std::string node;
  uint64_t seq = 0;
  int64_t at_us = 0;
  uint32_t sample_period = 0;  // the node's trace sampling period (0=off, 1=all)
  // Counters and gauges, reconstructed to absolute values (gauges may be negative).
  std::map<std::string, int64_t> values;
  std::map<std::string, LatencyHistogram> histograms;
  TopKSketch subject_sketch{TopKSketch::kDefaultCapacity};
  TopKSketch peer_sketch{TopKSketch::kDefaultCapacity};
};

// Per-node encoder: owns the dictionary and last-sent values, decides keyframe vs
// delta by sequence number. One instance per publishing node (inside the reporter).
class StatSeriesEncoder {
 public:
  StatSeriesEncoder(std::string node, size_t keyframe_every)
      : node_(std::move(node)),
        keyframe_every_(keyframe_every == 0 ? 1 : keyframe_every) {}

  // Encodes the next sample. Values snapshot the registry at call time; the two
  // sketches may be null (encoded as empty).
  Bytes EncodeSample(const MetricsRegistry& registry, const TopKSketch* subject_sketch,
                     const TopKSketch* peer_sketch, int64_t at_us, uint32_t sample_period);

  uint64_t seq() const { return seq_; }

 private:
  std::string node_;
  size_t keyframe_every_;
  uint64_t seq_ = 0;
  // Dictionary state mirrored by decoders: entry i is ("c"/"g" tag, name); values
  // are the last encoded absolutes, parallel to the dictionary.
  std::vector<std::pair<uint8_t, std::string>> dict_;
  std::vector<int64_t> last_;
  // Histogram dictionary + last-sent bucket counts (sparse deltas need them).
  std::vector<std::string> hist_dict_;
  std::vector<std::vector<uint64_t>> hist_last_;
};

// Per-node decoder: rebuilds absolute state from the keyframe/delta stream. Joins
// (or re-joins after loss) at the next keyframe; out-of-sync deltas are counted
// and dropped, never misapplied.
class StatSeriesDecoder {
 public:
  // Applies one record. Returns kUnimplemented for foreign version bytes (callers
  // skip those quietly: legacy snapshots share the stats namespace), kDataLoss for
  // truncation, kFailedPrecondition for a delta that cannot be applied (no
  // keyframe yet, or a sequence gap).
  Status DecodeSample(const Bytes& record);

  const DecodedSample& latest() const { return latest_; }
  bool synced() const { return synced_; }
  uint64_t desyncs() const { return desyncs_; }

 private:
  bool synced_ = false;
  uint64_t desyncs_ = 0;
  DecodedSample latest_;
  // Mirror of the encoder's dictionaries; delta records index into these.
  std::vector<std::pair<uint8_t, std::string>> dict_;
  std::vector<std::string> hist_dict_;
};

struct BusStatReporterOptions {
  SimTime interval_us = kSecond;
  // A keyframe every N samples bounds how long a late-joining aggregator waits.
  size_t keyframe_every = 8;
  // Advertised trace sampling period (BusConfig::trace_sample_period).
  uint32_t sample_period = kDefaultTraceSamplePeriod;
};

// Publishes one node's metric stream on "_ibus.stats.ts.<node>" every interval.
// Works for daemons and routers alike: pass the component's registry and sketches.
// The registry pointer must outlive the reporter.
class BusStatReporter {
 public:
  static Result<std::unique_ptr<BusStatReporter>> Create(
      BusClient* bus, const std::string& node, const MetricsRegistry* registry,
      const TopKSketch* subject_sketch, const TopKSketch* peer_sketch,
      const BusStatReporterOptions& options = {});
  ~BusStatReporter();
  BusStatReporter(const BusStatReporter&) = delete;
  BusStatReporter& operator=(const BusStatReporter&) = delete;

  uint64_t samples_published() const { return samples_; }

 private:
  BusStatReporter(BusClient* bus, const std::string& node, const MetricsRegistry* registry,
                  const TopKSketch* subject_sketch, const TopKSketch* peer_sketch,
                  const BusStatReporterOptions& options);

  void PublishSample();

  BusClient* bus_;
  std::string node_;
  const MetricsRegistry* registry_;
  const TopKSketch* subject_sketch_;
  const TopKSketch* peer_sketch_;
  BusStatReporterOptions options_;
  StatSeriesEncoder encoder_;
  uint64_t samples_ = 0;
  std::shared_ptr<bool> alive_;
};

// One node's recent history: a fixed ring of (seq, at_us, value-map) snapshots.
inline constexpr size_t kStatsRingDepth = 32;

// Merges every node's time series into one fleet view. Either subscribe it on a
// bus (Create) or embed it and feed records by hand (Consume) — busmon does the
// latter from its existing stats subscription.
class StatsAggregator {
 public:
  StatsAggregator() = default;
  StatsAggregator(const StatsAggregator&) = delete;
  StatsAggregator& operator=(const StatsAggregator&) = delete;

  static Result<std::unique_ptr<StatsAggregator>> Create(BusClient* bus);
  ~StatsAggregator();

  // Feeds one "_ibus.stats.ts.*" payload. Foreign-version records are skipped.
  void Consume(const Bytes& record);

  // Nodes seen so far, name-ordered.
  std::vector<std::string> Nodes() const;
  // Latest decoded state for a node; null when unknown.
  const DecodedSample* Latest(const std::string& node) const;

  struct RingEntry {
    uint64_t seq = 0;
    int64_t at_us = 0;
    std::map<std::string, int64_t> values;
  };
  // Up to kStatsRingDepth most recent samples for a node, oldest first.
  std::vector<RingEntry> History(const std::string& node) const;

  // Fleet roll-ups over each node's latest sample.
  int64_t FleetValue(const std::string& metric) const;   // sum across nodes
  LatencyHistogram MergedHistogram(const std::string& name) const;
  TopKSketch MergedSubjectSketch() const;
  TopKSketch MergedPeerSketch() const;
  // telemetry.self.bytes / bus.publish_bytes across the fleet; 0 when no traffic.
  double OverheadRatio() const;

  uint64_t samples_consumed() const { return samples_; }
  uint64_t decode_errors() const { return decode_errors_; }
  uint64_t desyncs() const;

  // Deterministic renderings: same stream of records -> same bytes, any node order
  // of arrival. The JSON carries {"schema": "BUSSTAT_1", ...}.
  std::string RenderJson() const;
  std::string RenderTable() const;
  // FNV-1a over RenderJson(): the replay-check fingerprint.
  uint64_t Hash() const;

 private:
  struct NodeState {
    StatSeriesDecoder decoder;
    std::vector<RingEntry> ring;  // bounded at kStatsRingDepth
    size_t ring_next = 0;
    uint64_t ring_seen = 0;
  };

  BusClient* bus_ = nullptr;
  uint64_t sub_ = 0;
  uint64_t samples_ = 0;
  uint64_t decode_errors_ = 0;
  std::map<std::string, NodeState> nodes_;
};

}  // namespace ibus::telemetry

#endif  // SRC_TELEMETRY_BUSSTAT_H_
