#include "src/telemetry/busstat_demo.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "src/bus/client.h"
#include "src/bus/daemon.h"
#include "src/router/router.h"
#include "src/sim/simulator.h"
#include "src/telemetry/busstat.h"
#include "src/telemetry/collector.h"

namespace ibus::telemetry {

namespace {

std::string Record(SimTime t, const std::string& who, const Message& m) {
  return "t=" + std::to_string(t) + " " + who + " subj=" + m.subject +
         " bytes=" + std::to_string(m.payload.size());
}

}  // namespace

BusStatScenario RunBusstatWanScenario(uint64_t seed,
                                      const BusStatScenarioOptions& options) {
  BusStatScenario result;
  auto fail = [&result](const std::string& what, const Status& s) {
    result.trace.clear();
    result.trace.push_back("error: " + what + ": " + s.ToString());
    return result;
  };

  Simulator sim;
  Network net(&sim, seed);
  SegmentId lan_a = net.AddSegment();
  SegmentId lan_b = net.AddSegment();
  std::vector<HostId> a_hosts, b_hosts;
  BusConfig config;
  config.trace_publishes = true;
  config.trace_sample_period = options.sample_period;
  for (int i = 0; i < 2; ++i) {
    a_hosts.push_back(net.AddHost("a" + std::to_string(i), lan_a));
    b_hosts.push_back(net.AddHost("b" + std::to_string(i), lan_b));
  }
  std::vector<std::unique_ptr<BusDaemon>> daemons;
  std::vector<HostId> daemon_hosts;
  for (HostId h : {a_hosts[0], a_hosts[1], b_hosts[0], b_hosts[1]}) {
    auto d = BusDaemon::Start(&net, h, config);
    if (!d.ok()) {
      return fail("daemon", d.status());
    }
    daemons.push_back(d.take());
    daemon_hosts.push_back(h);
  }

  auto router_bus_a = BusClient::Connect(&net, a_hosts[0], "_router:A");
  auto router_bus_b = BusClient::Connect(&net, b_hosts[0], "_router:B");
  if (!router_bus_a.ok() || !router_bus_b.ok()) {
    return fail("router bus",
                router_bus_a.ok() ? router_bus_b.status() : router_bus_a.status());
  }
  auto ra = InfoRouter::Listen(router_bus_a->get(), "_router:A", 8700);
  if (!ra.ok()) {
    return fail("router listen", ra.status());
  }
  sim.RunFor(50 * kMillisecond);
  auto rb = InfoRouter::Connect(router_bus_b->get(), "_router:B", a_hosts[0], 8700);
  if (!rb.ok()) {
    return fail("router connect", rb.status());
  }
  sim.RunFor(200 * kMillisecond);

  // Fleet view + trace collector on the far LAN: busstat time-series records and
  // sampled spans cross the WAN via the routers' reserved-prefix forwarding.
  auto monitor_bus = BusClient::Connect(&net, b_hosts[0], "monitor");
  if (!monitor_bus.ok()) {
    return fail("monitor bus", monitor_bus.status());
  }
  auto aggregator = StatsAggregator::Create(monitor_bus->get());
  if (!aggregator.ok()) {
    return fail("aggregator", aggregator.status());
  }
  auto collector = TraceCollector::Create(monitor_bus->get());
  const bool telemetry_on = collector.ok();  // false under IB_TELEMETRY=OFF

  auto sub_bus = BusClient::Connect(&net, b_hosts[1], "consumer", config);
  if (!sub_bus.ok()) {
    return fail("consumer bus", sub_bus.status());
  }
  uint64_t delivered = 0;
  SimTime last_delivery_at = 0;
  auto sub = sub_bus.value()->Subscribe("orders.>", [&](const Message& m) {
    delivered++;
    last_delivery_at = sim.Now();
    // Log a bounded prefix of deliveries: enough for the replay spine without the
    // trace growing linearly in the bench's message count.
    if (delivered <= 20) {
      result.trace.push_back(Record(sim.Now(), "consumer", m));
    }
  });
  if (!sub.ok()) {
    return fail("subscribe", sub.status());
  }
  sim.RunFor(500 * kMillisecond);  // control plane (subs, adverts) crosses the WAN

  // One busstat reporter beside every daemon and router. Each daemon's reporter
  // publishes through a client on its own host so the sample bytes run the same
  // client->daemon->bus path (and self-overhead accounting) as any other message.
  BusStatReporterOptions ropts;
  ropts.interval_us = options.stats_interval_us;
  ropts.keyframe_every = options.keyframe_every;
  ropts.sample_period = options.sample_period;
  std::vector<std::unique_ptr<BusClient>> reporter_buses;
  std::vector<std::unique_ptr<BusStatReporter>> reporters;
  for (size_t i = 0; i < daemons.size(); ++i) {
    auto bus = BusClient::Connect(&net, daemon_hosts[i], "_busstat");
    if (!bus.ok()) {
      return fail("reporter bus", bus.status());
    }
    std::string node = net.HostName(daemon_hosts[i]);
    auto rep = BusStatReporter::Create(bus->get(), node, daemons[i]->metrics(),
                                       &daemons[i]->subject_sketch(),
                                       &daemons[i]->peer_sketch(), ropts);
    if (!rep.ok()) {
      return fail("reporter", rep.status());
    }
    reporter_buses.push_back(bus.take());
    reporters.push_back(rep.take());
  }
  struct RouterRep {
    InfoRouter* router;
    BusClient* bus;
    const char* node;
  };
  for (const RouterRep& rr : {RouterRep{ra->get(), router_bus_a->get(), "routerA"},
                              RouterRep{rb->get(), router_bus_b->get(), "routerB"}}) {
    auto rep = BusStatReporter::Create(rr.bus, rr.node, rr.router->metrics(),
                                       &rr.router->subject_sketch(),
                                       &rr.router->peer_sketch(), ropts);
    if (!rep.ok()) {
      return fail("router reporter", rep.status());
    }
    reporters.push_back(rep.take());
  }

  // Faults only after the handshake so every replay starts aligned.
  FaultPlan faults;
  faults.drop_prob = 0.10;
  faults.jitter_us = 300;
  net.SetFaultPlan(lan_a, faults);
  net.SetFaultPlan(lan_b, faults);

  auto pub_bus = BusClient::Connect(&net, a_hosts[1], "producer", config);
  if (!pub_bus.ok()) {
    return fail("producer bus", pub_bus.status());
  }
  Bytes payload(options.payload_bytes, 0x5A);
  for (int i = 0; i < options.messages; ++i) {
    Status s = pub_bus.value()->Publish("orders.new", payload);
    if (!s.ok()) {
      return fail("publish", s);
    }
    sim.RunFor(options.publish_interval_us);
  }
  // Drain: repairs retire and at least one more stats interval fires everywhere.
  sim.RunFor(2 * options.stats_interval_us + kSecond);

  result.delivered = delivered;
  result.samples_consumed = (*aggregator)->samples_consumed();
  result.desyncs = (*aggregator)->desyncs();
  result.publish_bytes = static_cast<uint64_t>((*aggregator)->FleetValue(kMetricPublishBytes));
  result.self_bytes = static_cast<uint64_t>((*aggregator)->FleetValue(kMetricSelfBytes));
  result.self_msgs = static_cast<uint64_t>((*aggregator)->FleetValue(kMetricSelfMsgs));
  result.overhead_ratio = (*aggregator)->OverheadRatio();
  if (telemetry_on) {
    result.traces_collected = (*collector)->trace_count();
    result.trace_records = (*collector)->records_received();
  }

  for (const std::string& node : (*aggregator)->Nodes()) {
    const DecodedSample* s = (*aggregator)->Latest(node);
    if (s == nullptr) {
      continue;
    }
    result.trace.push_back("node " + node + " seq=" + std::to_string(s->seq) +
                           " sample_period=" + std::to_string(s->sample_period) +
                           " subjects_offered=" + std::to_string(s->subject_sketch.offered()));
  }
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.6f", result.overhead_ratio);
  result.trace.push_back(
      "busstat delivered=" + std::to_string(result.delivered) +
      " last_delivery_at=" + std::to_string(last_delivery_at) +
      " samples=" + std::to_string(result.samples_consumed) +
      " desyncs=" + std::to_string(result.desyncs) +
      " publish_bytes=" + std::to_string(result.publish_bytes) +
      " self_bytes=" + std::to_string(result.self_bytes) + " overhead=" + ratio +
      " traces=" + std::to_string(result.traces_collected) +
      " trace_records=" + std::to_string(result.trace_records));

  result.json = (*aggregator)->RenderJson();
  result.table = (*aggregator)->RenderTable();
  result.hash = (*aggregator)->Hash();
  result.trace.push_back("busstat hash=" + std::to_string(result.hash));
  return result;
}

}  // namespace ibus::telemetry
